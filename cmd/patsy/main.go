// Command patsy runs off-line file-system simulations: pick a trace
// profile (or a recorded trace file), a flush policy — or "all" to
// compare the paper's four concurrently on the experiment engine —
// and the component configuration, replay, and print the
// measurements.
//
//	patsy -trace 1a -policy ups -duration 10m
//	patsy -trace 1b -policy all
//	patsy -tracefile sprite.tr -policy writedelay -stats
//	patsy -trace 1a -volumes 4 -placement striped -stripe 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	var (
		traceName = flag.String("trace", "1a", "trace profile: 1a 1b 2a 2b 3 4 5")
		traceFile = flag.String("tracefile", "", "replay a recorded trace file instead")
		format    = flag.String("format", "sprite", "trace file format: sprite or coda")
		policy    = flag.String("policy", "writedelay", "flush policy: writedelay, ups, nvram-whole, nvram-partial, or all")
		nvramKB   = flag.Int("nvram", 4096, "NVRAM size in KB for the nvram policies")
		scaleName = flag.String("scale", "paper", "topology scale: paper or quick")
		duration  = flag.Duration("duration", 10*time.Minute, "trace duration")
		seed      = flag.Int64("seed", experiments.DefaultSeed, "deterministic seed")
		workers   = flag.Int("workers", 0, "concurrent simulations for -policy all (0 = one per CPU)")
		replace   = flag.String("replace", "lru", "cache replacement: lru random lfu slru lru2")
		qsched    = flag.String("qsched", "clook", "disk queue scheduler")
		layoutN   = flag.String("layout", "lfs", "storage layout: lfs or ffs")
		diskModel = flag.String("disk", "hp97560", "disk model: hp97560 or naive")
		volumes   = flag.Int("volumes", 0, "volume-array width: build this many bus+disk+layout stacks behind one volume manager (0 = classic multi-volume topology)")
		placement = flag.String("placement", "affinity", "array placement policy: affinity, striped, mirrored, or parity")
		stripe    = flag.Int("stripe", 8, "stripe/chunk width in 4KB blocks for striped and redundant placements")
		cluster   = flag.Int("cluster", 0, "clustered-transfer run cap in blocks (0 or 1 = off, the classic simulator)")
		showCDF   = flag.Bool("cdf", false, "print the full latency CDF")
		showInt   = flag.Bool("intervals", false, "print 15-minute interval reports")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "paper":
		scale = experiments.PaperScale()
	case "quick":
		scale = experiments.QuickScale()
	default:
		fatalf("unknown scale %q", *scaleName)
	}
	scale.Duration = *duration
	if *volumes > 0 {
		// Array mode: one front-end volume over a -volumes wide
		// array; the trace targets that single volume.
		scale = experiments.ArrayScale(scale)
	}

	nvBlocks := *nvramKB / 4
	var policies []cache.FlushConfig
	switch *policy {
	case "writedelay":
		policies = []cache.FlushConfig{cache.WriteDelay()}
	case "ups":
		policies = []cache.FlushConfig{cache.UPS()}
	case "nvram-whole":
		policies = []cache.FlushConfig{cache.NVRAMWhole(nvBlocks)}
	case "nvram-partial":
		policies = []cache.FlushConfig{cache.NVRAMPartial(nvBlocks)}
	case "all":
		policies = []cache.FlushConfig{
			cache.WriteDelay(), cache.UPS(),
			cache.NVRAMWhole(nvBlocks), cache.NVRAMPartial(nvBlocks),
		}
	default:
		fatalf("unknown policy %q", *policy)
	}

	var recs []trace.Record
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatalf("open trace: %v", err)
		}
		codec, ok := trace.NewFormat(*format)
		if !ok {
			fatalf("unknown format %q", *format)
		}
		recs, err = codec.Read(f)
		f.Close()
		if err != nil {
			fatalf("read trace: %v", err)
		}
	} else {
		recs = scale.Trace(*traceName, *seed)
	}

	// Every run — single policy or comparison — is a job matrix on
	// the experiment engine; one job per policy, shared records.
	jobs := make([]experiments.Job, len(policies))
	for i, fc := range policies {
		cfg := scale.Config(*seed, fc)
		cfg.Replace = *replace
		cfg.QueueSched = *qsched
		cfg.Layout = *layoutN
		cfg.DiskModel = *diskModel
		cfg.ClusterRunBlocks = *cluster
		if *volumes > 0 {
			cfg.ArrayVolumes = *volumes
			cfg.Placement = *placement
			cfg.StripeBlocks = *stripe
		}
		jobs[i] = experiments.Job{
			Cell: experiments.Cell{Trace: *traceName, Policy: fc.Name, Seed: *seed},
			Cfg:  cfg,
			Recs: recs,
		}
	}
	start := time.Now()
	results, err := (&experiments.Engine{Workers: *workers}).Run(jobs)
	if err != nil {
		fatalf("simulation: %v", err)
	}
	wall := time.Since(start).Round(time.Millisecond)

	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		rep := res.Report
		fmt.Printf("trace %s, policy %s: %d ops in %v simulated\n",
			rep.TraceName, rep.Policy, rep.WallOps, rep.SimTime.Round(time.Second))
		fmt.Printf("mean latency      %v\n", rep.MeanLatency().Round(time.Microsecond))
		fmt.Printf("p50 / p90 / p99   %v / %v / %v\n",
			rep.Result.Overall.Quantile(0.5).Round(time.Microsecond),
			rep.Result.Overall.Quantile(0.9).Round(time.Microsecond),
			rep.Result.Overall.Quantile(0.99).Round(time.Microsecond))
		fmt.Printf("read hit rate     %.1f%%\n", 100*rep.ReadHit)
		fmt.Printf("blocks flushed    %d\n", rep.Flushed)
		fmt.Printf("writes saved      %d\n", rep.Saved)
		fmt.Printf("nvram waits       %d\n", rep.NVRAMWaits)
		fmt.Printf("dirty high water  %d blocks\n", rep.DirtyHW)
		fmt.Printf("errors            %d\n", rep.Result.Errors)
		if *volumes > 1 {
			fmt.Printf("per-volume blocks ")
			for i, v := range rep.PerVolume {
				if i > 0 {
					fmt.Printf("  ")
				}
				fmt.Printf("%s r%d/w%d", v.Name, v.BlocksRead, v.BlocksWritten)
			}
			fmt.Println()
		}
		if *showInt {
			fmt.Println("\nintervals:")
			for _, iv := range rep.Result.Intervals.Reports {
				fmt.Printf("  %s\n", iv)
			}
		}
		if *showCDF {
			fmt.Println()
			fmt.Println(rep.Result.Overall.Render())
		}
	}
	fmt.Printf("\n(%d simulation(s), %v wall)\n", len(results), wall)
}

func fatalf(f string, args ...any) {
	fmt.Fprintf(os.Stderr, f+"\n", args...)
	os.Exit(1)
}
