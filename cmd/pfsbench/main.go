// Command pfsbench is the serving-path load harness and the CI perf
// gate. In bench mode it drives the closed-loop workload of
// internal/bench against both instantiations of the component
// library — the real pfs+nfs server over loopback TCP and Patsy
// under the virtual kernel — for each client count, and writes the
// cells (ops/sec, p50/p95/p99, cache and volume counters) as JSON.
// In compare mode it gates a fresh result file against a committed
// baseline.
//
//	pfsbench -quick -out BENCH_3.json
//	pfsbench -quick -kernel virtual -out bench_baseline.json   # refresh the CI baseline
//	pfsbench -quick -clients 4 -shards 1 -pipeline 1 -readahead -1   # the "before" engine
//	pfsbench -compare BENCH_3.json -baseline bench_baseline.json
//
// Real-kernel cells measure this machine (wall-clock ops/sec);
// virtual-kernel cells are deterministic ops per simulated second,
// machine-independent — which is why the committed baseline pins
// them. The gate ignores cells missing from the baseline, so the
// matrix can grow freely.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "CI smoke sizing (8 MB working set over a 4 MB cache, 300 ops/client)")
		kernel    = flag.String("kernel", "both", "which instantiation to drive: real, virtual, or both")
		clients   = flag.String("clients", "1,4", "comma-separated client counts")
		depth     = flag.Int("depth", 4, "pipelined calls in flight per real client connection")
		ops       = flag.Int("ops", 0, "ops per client (0 = mode default)")
		shards    = flag.Int("shards", 0, "cache shards (0 = instantiation default: 8 real, 1 virtual)")
		pipeline  = flag.Int("pipeline", 0, "per-connection NFS window (0 = default, 1 = no pipelining)")
		readahead = flag.Int("readahead", 0, "readahead blocks (0 = instantiation default: 8 real, off virtual; -1 = off)")
		cluster   = flag.Int("cluster", 0, "clustered-transfer run cap in blocks (0 = instantiation default: 16 real, off virtual; -1 = off)")
		novector  = flag.Bool("novector", false, "real cells run the flat staging-buffer I/O paths instead of vectored scatter-gather (the zero-copy 'before' engine)")
		ab        = flag.Bool("ab", false, "append the flat-path (-novector) twin of every real-kernel cell — the zero-copy A/B pair in one file")
		workload  = flag.String("workload", "", "comma-separated canned workloads per cell: coldstream (pure streaming reads), writeburst (pure random writes); empty = the classic 80/20 mix")
		think     = flag.Duration("think", 0, "per-op client think time")
		seed      = flag.Int64("seed", 1996, "workload seed")
		scrape    = flag.Bool("scrape", false, "boot the admin endpoint per real cell and embed /metrics deltas in the JSON")
		placement = flag.String("placement", "", "redundant array placement for every cell: mirrored or parity (empty = classic single stack)")
		width     = flag.Int("width", 3, "array width when -placement is set")
		stripe    = flag.Int("stripeblocks", 0, "chunk width for redundant placements (0 = volume default)")
		degraded  = flag.Bool("degraded", false, "kill a member after the prefill so cells measure degraded serving (needs -placement)")
		degMember = flag.Int("degmember", 1, "which member -degraded kills")
		rebuild   = flag.Bool("rebuild", false, "run the online rebuild concurrently with the measurement (implies -degraded)")
		selfheal  = flag.Bool("selfheal", false, "kill a member at the fault seam mid-measurement and serve through the supervised repair — detection, spare promotion, online rebuild, scrub verify (real kernel only; implies -placement mirrored when unset)")
		redundant = flag.Bool("redundant", false, "append the redundant-serving cells (mirrored+parity x healthy+degraded, 4 clients) to the matrix — the CI gate's degraded coverage")
		out       = flag.String("out", "", "write the JSON result file here (default stdout)")
		dir       = flag.String("dir", "", "directory for real-kernel image files (default TMPDIR)")
		note      = flag.String("note", "", "free-form note recorded in the file")
		zeroStage = flag.String("assertzerostaged", "", "assert mode: every clustered vectored real-kernel classic cell in this result file must report zero staged-copy bytes")
		compare   = flag.String("compare", "", "compare mode: gate this result file against -baseline")
		baseline  = flag.String("baseline", "bench_baseline.json", "baseline file for -compare")
		threshold = flag.Float64("threshold", 0.25, "max allowed ops/sec regression for -compare")
	)
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, *baseline, *threshold))
	}
	if *zeroStage != "" {
		os.Exit(runZeroStaged(*zeroStage))
	}

	counts, err := parseCounts(*clients)
	die(err)
	workloads, err := parseWorkloads(*workload)
	die(err)
	file := &bench.File{Bench: 3, GOMAXPROCS: runtime.GOMAXPROCS(0), Note: *note}
	imgDir := *dir
	if imgDir == "" {
		imgDir = os.TempDir()
	}
	for _, c := range counts {
		for _, wl := range workloads {
			cfg := bench.Quick(c)
			if !*quick {
				cfg.Ops = 1000
				cfg.Files = 16
				cfg.FileBlocks = 256
				cfg.CacheBlocks = 2048
			}
			cfg.Depth = *depth
			cfg.Seed = *seed
			cfg.Think = *think
			cfg.Shards = *shards
			cfg.Pipeline = *pipeline
			cfg.Readahead = *readahead
			cfg.Cluster = *cluster
			cfg.NoVector = *novector
			cfg.Workload = wl
			cfg.Scrape = *scrape
			cfg.Placement = *placement
			cfg.Width = *width
			cfg.StripeBlocks = *stripe
			cfg.Degrade = *degraded
			cfg.DegradeMember = *degMember
			cfg.Rebuild = *rebuild
			cfg.SelfHeal = *selfheal
			if *ops > 0 {
				cfg.Ops = *ops
			}
			if (*kernel == "virtual" || *kernel == "both") && !cfg.SelfHeal {
				start := time.Now()
				res, err := bench.RunSim(cfg)
				die(err)
				file.Runs = append(file.Runs, res)
				progress(res, time.Since(start))
			}
			if *kernel == "real" || *kernel == "both" {
				start := time.Now()
				res, err := bench.RunReal(imgDir, cfg)
				die(err)
				file.Runs = append(file.Runs, res)
				progress(res, time.Since(start))
				if *ab && !cfg.NoVector {
					// The flat-path twin: same cell, staging-buffer
					// engine — the zero-copy comparison pair.
					cfgB := cfg
					cfgB.NoVector = true
					start := time.Now()
					res, err := bench.RunReal(imgDir, cfgB)
					die(err)
					file.Runs = append(file.Runs, res)
					progress(res, time.Since(start))
				}
			}
		}
	}
	if *redundant {
		// The fixed redundant matrix: mirrored and parity at width 3,
		// healthy and degraded, 4 clients — the cells the committed
		// baseline pins so a degraded-path slowdown fails the gate.
		for _, pl := range []string{"mirrored", "parity"} {
			for _, degr := range []bool{false, true} {
				cfg := bench.Quick(4)
				if !*quick {
					cfg.Ops = 1000
					cfg.Files = 16
					cfg.FileBlocks = 256
					cfg.CacheBlocks = 2048
				}
				cfg.Seed = *seed
				cfg.Placement = pl
				cfg.Degrade = degr
				cfg.DegradeMember = 1
				if *kernel == "virtual" || *kernel == "both" {
					start := time.Now()
					res, err := bench.RunSim(cfg)
					die(err)
					file.Runs = append(file.Runs, res)
					progress(res, time.Since(start))
				}
				if *kernel == "real" || *kernel == "both" {
					start := time.Now()
					res, err := bench.RunReal(imgDir, cfg)
					die(err)
					file.Runs = append(file.Runs, res)
					progress(res, time.Since(start))
				}
			}
		}
	}
	data, err := file.Encode()
	die(err)
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	die(os.WriteFile(*out, data, 0o644))
	fmt.Printf("wrote %s (%d cells)\n", *out, len(file.Runs))
}

func progress(r bench.Result, wall time.Duration) {
	fmt.Fprintf(os.Stderr, "%-32s %10.1f ops/sec %8.1f MB/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  hit %4.1f%%  blk/req %5.2f  staged %s  (%v)\n",
		r.Key(), r.OpsPerSec, r.MBPerSec, r.P50MS, r.P95MS, r.P99MS, 100*r.Cache.HitRate, r.Volume.BlocksPerReq,
		sizeStr(r.StagedCopyBytes), wall.Round(time.Millisecond))
}

// sizeStr renders a byte count compactly for the progress line.
func sizeStr(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// runZeroStaged is the zero-copy gate: on a vectored real-kernel cell
// with clustering on, payload must flow cache-frame-to-iovec with no
// flat staging memcpy, so staged_copy_bytes must be exactly zero.
// Flat (-novector) cells, virtual cells (no payload in the sim), and
// redundant placements (parity arithmetic stages by construction) are
// exempt.
func runZeroStaged(path string) int {
	f, err := readFile(path)
	die(err)
	checked, bad := 0, 0
	for _, r := range f.Runs {
		if r.Kernel != "real" || r.NoVector || r.Cluster < 2 || r.Placement != "" {
			continue
		}
		checked++
		if r.StagedCopyBytes != 0 {
			fmt.Printf("STAGED COPIES %s: %d bytes memcpy'd on a vectored cell\n", r.Key(), r.StagedCopyBytes)
			bad++
		}
	}
	fmt.Printf("pfsbench zero-staged: %d clustered vectored real cells checked, %d dirty\n", checked, bad)
	if bad > 0 {
		return 1
	}
	if checked == 0 {
		fmt.Println("WARNING: no cells matched the zero-staged gate")
	}
	return 0
}

func runCompare(currentPath, baselinePath string, threshold float64) int {
	cur, err := readFile(currentPath)
	die(err)
	base, err := readFile(baselinePath)
	die(err)
	regs := bench.Compare(cur, base, threshold)
	matched := 0
	keys := make(map[string]bool, len(base.Runs))
	for _, r := range base.Runs {
		keys[r.Key()] = true
	}
	for _, r := range cur.Runs {
		if keys[r.Key()] {
			matched++
		}
	}
	fmt.Printf("pfsbench compare: %d cells, %d gated against %s (threshold %.0f%%)\n",
		len(cur.Runs), matched, baselinePath, 100*threshold)
	if len(regs) == 0 {
		fmt.Println("OK: no ops/sec regression")
		return 0
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s\n", r)
	}
	return 1
}

func readFile(path string) (*bench.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return bench.Decode(data)
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -clients entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-clients is empty")
	}
	return out, nil
}

func parseWorkloads(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return []string{""}, nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		switch part {
		case "coldstream", "writeburst":
			out = append(out, part)
		case "":
		default:
			return nil, fmt.Errorf("bad -workload entry %q (want coldstream or writeburst)", part)
		}
	}
	if len(out) == 0 {
		return []string{""}, nil
	}
	return out, nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
