// Command mktrace hand-crafts a work load with the probabilistic
// generator and writes it as a trace file for later replay.
//
//	mktrace -profile 1b -duration 30m -o trace1b.tr
//	mktrace -profile 3 -format coda -o compile.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/trace"
)

func main() {
	var (
		profile  = flag.String("profile", "1a", "work-load profile: 1a 1b 2a 2b 3 4 5")
		duration = flag.Duration("duration", 10*time.Minute, "trace duration")
		seed     = flag.Int64("seed", 1996, "deterministic seed")
		zipf     = flag.Float64("zipf", 0, "Zipf exponent of file popularity (> 1; 0 keeps the profile default 1.2); larger values concentrate traffic on fewer hot files, exercising hot/cold placement across volume arrays")
		format   = flag.String("format", "sprite", "output format: sprite (binary) or coda (text)")
		out      = flag.String("o", "", "output path (default stdout)")
		summary  = flag.Bool("summary", false, "print an op-count summary to stderr")
	)
	flag.Parse()

	p, ok := trace.Profiles()[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q (have %v)\n", *profile, trace.ProfileNames())
		os.Exit(2)
	}
	if *zipf != 0 {
		if *zipf <= 1 {
			fmt.Fprintf(os.Stderr, "-zipf must be > 1 (got %v)\n", *zipf)
			os.Exit(2)
		}
		p.ZipfS = *zipf
	}
	recs := trace.Generate(p, *seed, *duration)

	codec, ok := trace.NewFormat(*format)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := codec.Write(w, recs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *summary {
		fmt.Fprintf(os.Stderr, "%d records: %v\n", len(recs), trace.Summary(recs))
	}
}
