// Command experiments regenerates the paper's figures and claim
// checks, plus the ablations DESIGN.md indexes.
//
//	experiments -fig all                 # figures 2-5 at paper scale
//	experiments -fig 2 -cdf              # figure 2 with full CDF dump
//	experiments -ablations               # the ablation suite
//	experiments -scale quick -fig 5      # fast shrunken rig
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 2, 3, 4, 5, all")
		scaleName = flag.String("scale", "paper", "experiment scale: paper or quick")
		duration  = flag.Duration("duration", 0, "override trace duration (e.g. 10m)")
		seed      = flag.Int64("seed", 1996, "deterministic seed")
		ablations = flag.Bool("ablations", false, "run the ablation suite instead of figures")
		fullCDF   = flag.Bool("cdf", false, "dump the full CDF tables (plottable)")
		intervals = flag.Bool("intervals", false, "print 15-minute interval reports")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "paper":
		scale = experiments.PaperScale()
	case "quick":
		scale = experiments.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *duration > 0 {
		scale.Duration = *duration
	}

	if *ablations {
		runAblations(scale, *seed)
		return
	}

	figTraces := map[string]string{"2": "1a", "3": "1b", "4": "5"}
	start := time.Now()
	switch *fig {
	case "2", "3", "4":
		tn := figTraces[*fig]
		runs, err := experiments.RunTrace(scale, tn, *seed)
		die(err)
		fmt.Println(experiments.FigureCDF("Figure "+*fig, tn, runs))
		if *fullCDF {
			for _, r := range runs {
				fmt.Printf("--- full CDF, policy %s ---\n%s\n", r.Policy, experiments.FullCDF(r.Report))
			}
		}
		if *intervals {
			for _, r := range runs {
				fmt.Printf("--- intervals, policy %s ---\n%s", r.Policy, experiments.RenderIntervals(r.Report))
			}
		}
	case "5":
		rows, err := experiments.RunFigure5(scale, *seed, nil)
		die(err)
		fmt.Println(experiments.Figure5(rows))
	case "all":
		for _, f := range []string{"2", "3", "4"} {
			tn := figTraces[f]
			runs, err := experiments.RunTrace(scale, tn, *seed)
			die(err)
			fmt.Println(experiments.FigureCDF("Figure "+f, tn, runs))
		}
		rows, err := experiments.RunFigure5(scale, *seed, nil)
		die(err)
		fmt.Println(experiments.Figure5(rows))
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	fmt.Printf("(wall time %v, scale %s, trace duration %v)\n",
		time.Since(start).Round(time.Millisecond), scale.Name, scale.Duration)
}

func runAblations(scale experiments.Scale, seed int64) {
	type ab struct {
		name string
		run  func() (string, error)
	}
	abs := []ab{
		{"replacement", func() (string, error) { return experiments.AblateReplacement(scale, "1a", seed) }},
		{"queue-sched", func() (string, error) { return experiments.AblateQueueSched(scale, "1a", seed) }},
		{"layout", func() (string, error) { return experiments.AblateLayout(scale, "1a", seed) }},
		{"disk-model", func() (string, error) { return experiments.AblateDiskModel(scale, "1a", seed) }},
		{"cleaner", func() (string, error) { return experiments.AblateCleaner(scale, seed) }},
		{"nvram-size", func() (string, error) { return experiments.AblateNVRAMSize(scale, seed) }},
		{"sched-seeds", func() (string, error) { return experiments.AblateSchedulerPolicy(scale, "1a", seed) }},
	}
	for _, a := range abs {
		out, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablation %s: %v\n", a.name, err)
			continue
		}
		fmt.Println(out)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
