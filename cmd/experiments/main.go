// Command experiments regenerates the paper's figures and claim
// checks, plus the ablations DESIGN.md indexes. The evaluation is a
// matrix of independent simulations, so it runs on the parallel job
// engine by default — one worker per CPU, deterministically merged,
// byte-identical to a sequential run at the same seeds.
//
//	experiments -fig all                 # figures 2-5 at paper scale
//	experiments -fig 2 -cdf              # figure 2 with full CDF dump
//	experiments -ablations               # the ablation suite
//	experiments -scale quick -fig 5      # fast shrunken rig
//	experiments -fig 5 -seeds 5          # figure 5 as mean ± stderr over 5 seeds
//	experiments -workers 1               # sequential engine (timing baseline)
//	experiments -disks 1,2,4,8           # array-scaling study on the volume manager
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 2, 3, 4, 5, all")
		scaleName  = flag.String("scale", "paper", "experiment scale: paper or quick")
		duration   = flag.Duration("duration", 0, "override trace duration (e.g. 10m)")
		seed       = flag.Int64("seed", experiments.DefaultSeed, "deterministic seed")
		seeds      = flag.Int("seeds", 1, "replication: run every cell at this many seeds and report mean ± stderr")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = one per CPU)")
		seq        = flag.Bool("seq", false, "use the pre-engine sequential path (reference for A/B timing)")
		ablations  = flag.Bool("ablations", false, "run the ablation suite instead of figures")
		fullCDF    = flag.Bool("cdf", false, "dump the full CDF tables (plottable)")
		intervals  = flag.Bool("intervals", false, "print 15-minute interval reports")
		serving    = flag.Bool("serving", false, "run the hot-path serving study (sharded cache, pipelined NFS, readahead) instead of figures")
		servingC   = flag.String("servingclients", "4", "client counts for the serving study's real-kernel cells")
		disks      = flag.String("disks", "", "array-scaling study: comma-separated array widths (e.g. 1,2,4,8) to replay -scaletrace on, under all four write policies")
		scTrace    = flag.String("scaletrace", "1a", "trace for the array-scaling study")
		placement  = flag.String("placement", "striped", "array placement for the scaling study: striped or affinity")
		stripe     = flag.Int("stripe", 8, "stripe width in 4KB blocks for the scaling study")
		reliab     = flag.Bool("reliability", false, "run the crash-reliability study (power cut + recovery per policy × layout × width) instead of figures")
		relVols    = flag.String("relvolumes", "1,2", "array widths for the reliability study")
		relOut     = flag.String("relout", "BENCH_4.json", "write the reliability study as JSON here (empty = don't; -relintents defaults to BENCH_6.json)")
		relIntents = flag.Bool("relintents", false, "attach the metadata intent log to the reliability study: cells gain the namespace-op loss column (BENCH_6 revision)")
		clust      = flag.Bool("clustering", false, "run the I/O clustering study (run-size cap × layout, requests vs blocks) instead of figures")
		clTrace    = flag.String("cltrace", "1b", "trace for the clustering study (1b's large writers exercise the write runs)")
		clCaps     = flag.String("clcaps", "0,8,32", "run-size caps for the clustering study (0 = off)")
		clReal     = flag.Bool("clreal", false, "append the real-kernel pfsbench cells (clustering off vs on) to the clustering study")
		clOut      = flag.String("clout", "BENCH_5.json", "write the clustering study as JSON here (empty = don't)")
		degraded   = flag.Bool("degraded", false, "run the degraded-serving study (healthy vs degraded vs rebuilding per redundant placement) instead of figures")
		degPlace   = flag.String("degplacements", "mirrored,parity", "redundant placements for the degraded study")
		degWidth   = flag.Int("degwidth", 3, "array width for the degraded study")
		degOut     = flag.String("degout", "BENCH_8.json", "write the degraded study as JSON here (empty = don't)")
		selfheal   = flag.Bool("selfheal", false, "run the self-heal study (healthy baseline vs supervised repair per redundant placement, real kernel) instead of figures")
		shPlace    = flag.String("shplacements", "mirrored,parity", "redundant placements for the self-heal study")
		shWidth    = flag.Int("shwidth", 3, "array width for the self-heal study")
		shOut      = flag.String("shout", "BENCH_10.json", "write the self-heal study as JSON here (empty = don't)")
		shDir      = flag.String("shdir", "", "directory for the self-heal study's image files (default TMPDIR)")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "paper":
		scale = experiments.PaperScale()
	case "quick":
		scale = experiments.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *duration > 0 {
		scale.Duration = *duration
	}
	engine := &experiments.Engine{Workers: *workers}

	if *serving {
		counts, err := parseWidths(*servingC)
		die(err)
		start := time.Now()
		rows, err := experiments.RunServingStudy(os.TempDir(), counts)
		die(err)
		fmt.Println(experiments.ServingTable(rows))
		fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *clust {
		caps, err := parseCaps(*clCaps)
		die(err)
		start := time.Now()
		st, err := experiments.RunClusteringStudy(engine, scale, *clTrace, *seed, nil, caps)
		die(err)
		if *clReal {
			die(experiments.AddClusteringBench(st, os.TempDir(), 2))
		}
		fmt.Println(experiments.ClusteringTable(st))
		if *clOut != "" {
			out, err := experiments.ClusteringJSON(st)
			die(err)
			die(os.WriteFile(*clOut, out, 0o644))
			fmt.Printf("(wrote %s)\n", *clOut)
		}
		fmt.Printf("(wall time %v, scale %s, trace duration %v)\n",
			time.Since(start).Round(time.Millisecond), scale.Name, scale.Duration)
		return
	}

	if *degraded {
		var placements []string
		for _, p := range strings.Split(*degPlace, ",") {
			if p = strings.TrimSpace(p); p != "" {
				placements = append(placements, p)
			}
		}
		start := time.Now()
		st, err := experiments.RunDegradedStudy(*seed, placements, *degWidth)
		die(err)
		fmt.Println(experiments.DegradedTable(st))
		if *degOut != "" {
			out, err := experiments.DegradedJSON(st)
			die(err)
			die(os.WriteFile(*degOut, out, 0o644))
			fmt.Printf("(wrote %s)\n", *degOut)
		}
		fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *selfheal {
		var placements []string
		for _, p := range strings.Split(*shPlace, ",") {
			if p = strings.TrimSpace(p); p != "" {
				placements = append(placements, p)
			}
		}
		dir := *shDir
		if dir == "" {
			dir = os.TempDir()
		}
		start := time.Now()
		st, err := experiments.RunSelfHealStudy(dir, *seed, placements, *shWidth)
		die(err)
		fmt.Println(experiments.SelfHealTable(st))
		if *shOut != "" {
			out, err := experiments.SelfHealJSON(st)
			die(err)
			die(os.WriteFile(*shOut, out, 0o644))
			fmt.Printf("(wrote %s)\n", *shOut)
		}
		fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *reliab {
		widths, err := parseWidths(*relVols)
		die(err)
		run := experiments.RunReliabilityStudy
		if *relIntents {
			run = experiments.RunReliabilityIntentStudy
			// The intent-log revision is a different artifact; don't
			// clobber BENCH_4 unless -relout was given explicitly.
			relOutSet := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "relout" {
					relOutSet = true
				}
			})
			if !relOutSet {
				*relOut = "BENCH_6.json"
			}
		}
		start := time.Now()
		st, err := run(engine, scale, *scTrace, *seed, nil, widths)
		die(err)
		fmt.Println(experiments.ReliabilityTable(st))
		if *relOut != "" {
			out, err := experiments.ReliabilityJSON(st)
			die(err)
			die(os.WriteFile(*relOut, out, 0o644))
			fmt.Printf("(wrote %s)\n", *relOut)
		}
		fmt.Printf("(wall time %v, scale %s, trace duration %v)\n",
			time.Since(start).Round(time.Millisecond), scale.Name, scale.Duration)
		return
	}

	if *disks != "" {
		widths, err := parseWidths(*disks)
		die(err)
		if *seeds > 1 {
			fmt.Fprintf(os.Stderr, "note: -seeds replication applies to figure 5 only; the scaling study runs at seed %d\n", *seed)
		}
		scEngine := engine
		if *seq {
			scEngine = experiments.Sequential()
		}
		start := time.Now()
		rows, err := experiments.RunArrayScaling(scEngine, scale, *scTrace, *seed, widths, *placement, *stripe)
		die(err)
		fmt.Println(experiments.ArrayScalingTable(rows, *scTrace, *placement, *stripe))
		fmt.Printf("(wall time %v, scale %s, trace duration %v)\n",
			time.Since(start).Round(time.Millisecond), scale.Name, scale.Duration)
		return
	}

	if *ablations {
		ablEngine := engine
		if *seq {
			ablEngine = experiments.Sequential()
		}
		runAblations(ablEngine, scale, *seed)
		return
	}

	runTrace := func(tn string, sd int64) ([]experiments.PolicyRun, error) {
		if *seq {
			return experiments.RunTraceSequential(scale, tn, sd)
		}
		return experiments.RunTraceWith(engine, scale, tn, sd)
	}
	runFig5 := func(sd int64) ([]experiments.Fig5Row, error) {
		if *seq {
			return experiments.RunFigure5Sequential(scale, sd, nil)
		}
		return experiments.RunFigure5With(engine, scale, sd, nil)
	}
	fig5 := func() {
		if *seeds > 1 {
			// Replication has no pre-engine path; -seq degrades to a
			// one-worker engine, which runs the jobs in matrix order.
			repEngine := engine
			if *seq {
				repEngine = experiments.Sequential()
			}
			sds := experiments.ReplicateSeeds(*seed, *seeds)
			rows, err := repEngine.RunReplicated(scale, nil, sds)
			die(err)
			fmt.Println(experiments.Figure5Replicated(rows, sds))
			return
		}
		rows, err := runFig5(*seed)
		die(err)
		fmt.Println(experiments.Figure5(rows))
	}
	if *seeds > 1 && *fig != "5" {
		fmt.Fprintf(os.Stderr, "note: -seeds replication applies to figure 5 only; figures 2-4 run at seed %d\n", *seed)
	}

	figTraces := map[string]string{"2": "1a", "3": "1b", "4": "5"}
	start := time.Now()
	switch *fig {
	case "2", "3", "4":
		tn := figTraces[*fig]
		runs, err := runTrace(tn, *seed)
		die(err)
		fmt.Println(experiments.FigureCDF("Figure "+*fig, tn, runs))
		if *fullCDF {
			for _, r := range runs {
				fmt.Printf("--- full CDF, policy %s ---\n%s\n", r.Policy, experiments.FullCDF(r.Report))
			}
		}
		if *intervals {
			for _, r := range runs {
				fmt.Printf("--- intervals, policy %s ---\n%s", r.Policy, experiments.RenderIntervals(r.Report))
			}
		}
	case "5":
		fig5()
	case "all":
		for _, f := range []string{"2", "3", "4"} {
			tn := figTraces[f]
			runs, err := runTrace(tn, *seed)
			die(err)
			fmt.Println(experiments.FigureCDF("Figure "+f, tn, runs))
		}
		fig5()
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	mode := fmt.Sprintf("engine, %d workers", engineWorkers(*workers))
	if *seq {
		mode = "sequential"
	}
	fmt.Printf("(wall time %v, scale %s, trace duration %v, %s)\n",
		time.Since(start).Round(time.Millisecond), scale.Name, scale.Duration, mode)
}

// parseCaps parses the clustering study's run caps (0 allowed = off).
func parseCaps(s string) ([]int, error) {
	var caps []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c < 0 {
			return nil, fmt.Errorf("bad -clcaps entry %q (want non-negative integers, e.g. 0,8,32)", part)
		}
		caps = append(caps, c)
	}
	if len(caps) == 0 {
		return nil, fmt.Errorf("-clcaps given but empty")
	}
	return caps, nil
}

func parseWidths(s string) ([]int, error) {
	var widths []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -disks entry %q (want positive integers, e.g. 1,2,4,8)", part)
		}
		widths = append(widths, w)
	}
	if len(widths) == 0 {
		return nil, fmt.Errorf("-disks given but empty")
	}
	return widths, nil
}

func engineWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

func runAblations(e *experiments.Engine, scale experiments.Scale, seed int64) {
	type ab struct {
		name string
		run  func() (string, error)
	}
	abs := []ab{
		{"replacement", func() (string, error) { return experiments.AblateReplacement(e, scale, "1a", seed) }},
		{"queue-sched", func() (string, error) { return experiments.AblateQueueSched(e, scale, "1a", seed) }},
		{"layout", func() (string, error) { return experiments.AblateLayout(e, scale, "1a", seed) }},
		{"disk-model", func() (string, error) { return experiments.AblateDiskModel(e, scale, "1a", seed) }},
		{"cleaner", func() (string, error) { return experiments.AblateCleaner(e, scale, seed) }},
		{"nvram-size", func() (string, error) { return experiments.AblateNVRAMSize(e, scale, seed) }},
		{"sched-seeds", func() (string, error) { return experiments.AblateSchedulerPolicy(e, scale, "1a", seed) }},
	}
	for _, a := range abs {
		out, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablation %s: %v\n", a.name, err)
			continue
		}
		fmt.Println(out)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
