// Command pfscli is the PFS network client: a small shell over the
// NFS-like protocol.
//
//	pfscli -addr 127.0.0.1:20490 ls /
//	pfscli put /docs/readme.txt < README.md
//	pfscli cat /docs/readme.txt
//	pfscli mkdir /docs ; pfscli rm /tmp/x ; pfscli mv /a /b
//	pfscli stat /docs ; pfscli statfs
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fsys"
	"repro/internal/nfs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:20490", "server address")
	vol := flag.Uint("vol", 1, "volume to mount")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cl, err := nfs.Dial(*addr)
	die(err)
	defer cl.Close()
	root, _, err := cl.Mount(core.VolumeID(*vol))
	die(err)

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ls":
		path := "/"
		if len(rest) > 0 {
			path = rest[0]
		}
		fh, _, err := walk(cl, root, path)
		die(err)
		ents, err := cl.Readdir(fh)
		die(err)
		for _, e := range ents {
			_, attr, err := cl.Lookup(fh, e.Name)
			if err != nil {
				fmt.Printf("?         %s\n", e.Name)
				continue
			}
			fmt.Printf("%-10s %10d  %s\n", attr.Type, attr.Size, e.Name)
		}
	case "cat":
		need(rest, 1)
		fh, attr, err := walk(cl, root, rest[0])
		die(err)
		var off int64
		for off < attr.Size {
			data, err := cl.Read(fh, off, nfs.MaxIO)
			die(err)
			if len(data) == 0 {
				break
			}
			os.Stdout.Write(data)
			off += int64(len(data))
		}
	case "put":
		need(rest, 1)
		dir, name := split(rest[0])
		dfh, _, err := walk(cl, root, dir)
		die(err)
		fh, _, err := cl.Create(dfh, name)
		if errors.Is(err, core.ErrExists) {
			fh, _, err = cl.Lookup(dfh, name)
			if err == nil {
				_, err = cl.SetSize(fh, 0)
			}
		}
		die(err)
		var off int64
		buf := make([]byte, nfs.MaxIO)
		for {
			n, rerr := io.ReadFull(os.Stdin, buf)
			if n > 0 {
				_, werr := cl.Write(fh, off, buf[:n])
				die(werr)
				off += int64(n)
			}
			if rerr != nil {
				break
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d bytes\n", off)
	case "mkdir":
		need(rest, 1)
		dir, name := split(rest[0])
		dfh, _, err := walk(cl, root, dir)
		die(err)
		_, _, err = cl.Mkdir(dfh, name)
		die(err)
	case "rm":
		need(rest, 1)
		dir, name := split(rest[0])
		dfh, _, err := walk(cl, root, dir)
		die(err)
		die(cl.Remove(dfh, name))
	case "rmdir":
		need(rest, 1)
		dir, name := split(rest[0])
		dfh, _, err := walk(cl, root, dir)
		die(err)
		die(cl.Rmdir(dfh, name))
	case "mv":
		need(rest, 2)
		fd, fn := split(rest[0])
		td, tn := split(rest[1])
		ffh, _, err := walk(cl, root, fd)
		die(err)
		tfh, _, err := walk(cl, root, td)
		die(err)
		die(cl.Rename(ffh, fn, tfh, tn))
	case "stat":
		need(rest, 1)
		_, attr, err := walk(cl, root, rest[0])
		die(err)
		printAttr(attr)
	case "ln":
		need(rest, 2)
		dir, name := split(rest[0])
		dfh, _, err := walk(cl, root, dir)
		die(err)
		_, _, err = cl.Symlink(dfh, name, rest[1])
		die(err)
	case "readlink":
		need(rest, 1)
		fh, _, err := walk(cl, root, rest[0])
		die(err)
		target, err := cl.Readlink(fh)
		die(err)
		fmt.Println(target)
	case "statfs":
		info, err := cl.StatFS(root)
		die(err)
		fmt.Printf("layout %s, block size %d, free %d blocks (%d MB)\n",
			info.Layout, info.BlockSize, info.FreeBlocks,
			info.FreeBlocks*int64(info.BlockSize)>>20)
	default:
		usage()
	}
}

// walk resolves a /-separated path from the root handle.
func walk(cl *nfs.Client, root nfs.FH, path string) (nfs.FH, fsys.FileAttr, error) {
	fh := root
	attr, err := cl.Getattr(root)
	if err != nil {
		return fh, attr, err
	}
	for _, comp := range strings.Split(path, "/") {
		if comp == "" || comp == "." {
			continue
		}
		fh, attr, err = cl.Lookup(fh, comp)
		if err != nil {
			return fh, attr, err
		}
	}
	return fh, attr, nil
}

// split separates a path into (parent, leaf).
func split(path string) (string, string) {
	path = strings.TrimSuffix(path, "/")
	i := strings.LastIndex(path, "/")
	if i < 0 {
		return "/", path
	}
	return path[:i], path[i+1:]
}

func printAttr(a fsys.FileAttr) {
	fmt.Printf("inode %d  type %s  size %d  nlink %d  mtime %v\n",
		a.ID, a.Type, a.Size, a.Nlink, time.Duration(a.MTime).Round(time.Millisecond))
}

func need(rest []string, n int) {
	if len(rest) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pfscli [-addr host:port] <cmd> [args]
  ls [path]        list a directory
  cat path         print a file
  put path         store stdin as a file
  mkdir path       create a directory
  rm path          remove a file
  rmdir path       remove an empty directory
  mv from to       rename
  stat path        show attributes
  ln path target   create a symlink
  readlink path    show a symlink target
  statfs           show volume info`)
	os.Exit(2)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfscli:", err)
		os.Exit(1)
	}
}
