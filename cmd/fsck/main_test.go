package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/sched"
)

// mkImage builds a PFS image (set) in dir and returns its path. The
// shutdown mode decides what fsck will find: "close" syncs
// everything, "crash" pulls the power with dirty state outstanding.
func mkImage(t *testing.T, dir, layout string, volumes int, shutdown string) string {
	t.Helper()
	path := filepath.Join(dir, "img")
	flush := cache.UPS()
	if shutdown == "crash" && layout == "lfs" {
		// A tiny NVRAM bound forces flushes into the log without a
		// checkpoint — the state only -rollforward can recover.
		flush = cache.NVRAMWhole(4)
	}
	srv, err := pfs.Open(pfs.Config{
		Path:        path,
		Blocks:      2048,
		Volumes:     volumes,
		Layout:      layout,
		SegBlocks:   32,
		CacheBlocks: 96,
		Flush:       flush,
	})
	if err != nil {
		t.Fatalf("pfs.Open: %v", err)
	}
	err = srv.Do(func(tk sched.Task) error {
		v := srv.Vol
		h, err := v.Create(tk, "/a", core.TypeRegular)
		if err != nil {
			return err
		}
		buf := make([]byte, core.BlockSize)
		for i := range buf {
			buf[i] = 0x3C
		}
		for b := 0; b < 6; b++ {
			if err := v.WriteAt(tk, h, int64(b)*core.BlockSize, buf, core.BlockSize); err != nil {
				return err
			}
		}
		if shutdown == "crash" && layout == "lfs" {
			// Checkpoint the baseline, then overwrite: the NVRAM
			// bound pushes the new versions into the log, where only
			// roll-forward can find them.
			if err := v.Fsync(tk, h); err != nil {
				return err
			}
			for i := range buf {
				buf[i] = 0x4D
			}
			for b := 0; b < 6; b++ {
				if err := v.WriteAt(tk, h, int64(b)*core.BlockSize, buf, core.BlockSize); err != nil {
					return err
				}
			}
		}
		return v.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	if shutdown == "crash" {
		srv.Crash()
	} else if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// mkRedundantImage builds a width-3 mirrored or parity array image
// set with one known-content file and closes it cleanly.
func mkRedundantImage(t *testing.T, dir, placement string) string {
	t.Helper()
	path := filepath.Join(dir, "img")
	srv, err := pfs.Open(pfs.Config{
		Path:         path,
		Blocks:       2048,
		Volumes:      3,
		Layout:       "lfs",
		SegBlocks:    32,
		CacheBlocks:  96,
		Flush:        cache.UPS(),
		Placement:    placement,
		StripeBlocks: 2,
	})
	if err != nil {
		t.Fatalf("pfs.Open(%s): %v", placement, err)
	}
	err = srv.Do(func(tk sched.Task) error {
		v := srv.Vol
		h, err := v.Create(tk, "/a", core.TypeRegular)
		if err != nil {
			return err
		}
		buf := make([]byte, core.BlockSize)
		for i := range buf {
			buf[i] = 0x3C
		}
		for b := 0; b < 6; b++ {
			if err := v.WriteAt(tk, h, int64(b)*core.BlockSize, buf, core.BlockSize); err != nil {
				return err
			}
		}
		return v.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// mkSparedImage builds a mirrored array with one idle hot spare
// pre-provisioned next to the member set and closes it cleanly: the
// "<image>.s0" file is what fsck's spare-pool report must find.
func mkSparedImage(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "img")
	srv, err := pfs.Open(pfs.Config{
		Path:         path,
		Blocks:       2048,
		Volumes:      3,
		Layout:       "lfs",
		SegBlocks:    32,
		CacheBlocks:  96,
		Flush:        cache.UPS(),
		Placement:    "mirrored",
		StripeBlocks: 2,
		Spares:       1,
	})
	if err != nil {
		t.Fatalf("pfs.Open(spared): %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// mkHealedImage drives a supervised repair to completion — member 1
// marked dead, the spare promoted, rebuilt and scrub-verified — then
// shuts down. The surviving set carries the self-heal provenance fsck
// must surface: member 1's label records spare slot 0 as its origin,
// and the pool is empty.
func mkHealedImage(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "img")
	srv, err := pfs.Open(pfs.Config{
		Path:           path,
		Blocks:         2048,
		Volumes:        3,
		Layout:         "lfs",
		SegBlocks:      32,
		CacheBlocks:    96,
		Flush:          cache.UPS(),
		Placement:      "mirrored",
		StripeBlocks:   2,
		Spares:         1,
		SelfHeal:       true,
		HealthInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("pfs.Open(healed): %v", err)
	}
	err = srv.Do(func(tk sched.Task) error {
		v := srv.Vol
		h, err := v.Create(tk, "/a", core.TypeRegular)
		if err != nil {
			return err
		}
		buf := bytes.Repeat([]byte{0x3C}, core.BlockSize)
		for b := 0; b < 6; b++ {
			if err := v.WriteAt(tk, h, int64(b)*core.BlockSize, buf, core.BlockSize); err != nil {
				return err
			}
		}
		return v.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	if err := srv.MarkMemberDead(1); err != nil {
		t.Fatalf("MarkMemberDead: %v", err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for len(srv.HealEvents()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no supervised repair within 20s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ev := srv.HealEvents()[0]; ev.Err != "" || ev.Spare != 0 {
		t.Fatalf("heal event %+v, want clean promotion of spare 0", ev)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	return path
}

// flipDataByte corrupts one byte inside a data block of the image
// set: it scans the members for a block-aligned run holding the test
// file's fill byte and flips its first byte. The per-member check
// cannot see this (data blocks carry no member-local checksum) — only
// the redundancy cross-check can.
func flipDataByte(t *testing.T, base string) {
	t.Helper()
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("%s.v%d", base, i)
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for off := int64(0); off+core.BlockSize <= int64(len(buf)); off += core.BlockSize {
			blk := buf[off : off+core.BlockSize]
			full := true
			for _, b := range blk {
				if b != 0x3C {
					full = false
					break
				}
			}
			if !full {
				continue
			}
			blk[0] ^= 0xFF
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatal("no data block found to corrupt")
}

// TestExitCodeTable is the golden table: every (image state, flags)
// row must produce its documented exit code and output.
func TestExitCodeTable(t *testing.T) {
	cleanLFS := mkImage(t, t.TempDir(), "lfs", 1, "close")
	crashedLFS := mkImage(t, t.TempDir(), "lfs", 1, "crash")
	crashedFFS := mkImage(t, t.TempDir(), "ffs", 1, "crash")
	array3 := mkImage(t, t.TempDir(), "lfs", 3, "close")
	mirror3 := mkRedundantImage(t, t.TempDir(), "mirrored")
	parity3 := mkRedundantImage(t, t.TempDir(), "parity")
	degraded := mkRedundantImage(t, t.TempDir(), "parity")
	if err := os.Remove(degraded + ".v1"); err != nil {
		t.Fatal(err)
	}
	lost2 := mkRedundantImage(t, t.TempDir(), "mirrored")
	for _, m := range []string{".v1", ".v2"} {
		if err := os.Remove(lost2 + m); err != nil {
			t.Fatal(err)
		}
	}
	spared := mkSparedImage(t, t.TempDir())
	healed := mkHealedImage(t, t.TempDir())
	affinityLost := mkImage(t, t.TempDir(), "lfs", 3, "close")
	if err := os.Remove(affinityLost + ".v2"); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(garbage, make([]byte, 1<<20), 0o644); err != nil {
		t.Fatal(err)
	}

	// An NVRAM intent dump plus a corrupted copy (one body byte
	// flipped, so a record checksum must fail).
	dump := cache.EncodeIntents([]cache.Intent{
		{Seq: 1, Op: cache.IntentCreate, Vol: 1, File: 9, Parent: 2, Name: "a", Gen: 7},
		{Seq: 2, Op: cache.IntentRename, Vol: 1, File: 9, Parent: 2, Name: "a", Parent2: 2, Name2: "b"},
		{Seq: 3, Op: cache.IntentRemove, Vol: 1, File: 9, Parent: 2, Name: "b"},
	})
	goodDump := filepath.Join(t.TempDir(), "intents.bin")
	if err := os.WriteFile(goodDump, dump, 0o644); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), dump...)
	bad[20] ^= 0xFF
	badDump := filepath.Join(t.TempDir(), "intents-corrupt.bin")
	if err := os.WriteFile(badDump, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	rows := []struct {
		name string
		args []string
		want int
		grep string
	}{
		{"clean-lfs", []string{"-image", cleanLFS}, 0, "clean"},
		{"missing-image", []string{"-image", filepath.Join(t.TempDir(), "nope")}, 2, ""},
		{"garbage-image", []string{"-image", garbage}, 2, "mount:"},
		{"crashed-ffs-dirty", []string{"-image", crashedFFS, "-layout", "ffs"}, 1, "inconsistencies"},
		{"crashed-ffs-repaired", []string{"-image", crashedFFS, "-layout", "ffs", "-repair"}, 0, "repaired"},
		{"crashed-lfs-rollforward", []string{"-image", crashedLFS, "-rollforward"}, 0, "rolled forward"},
		{"clean-array", []string{"-image", array3, "-volumes", "3"}, 0, "array label: 3 volumes"},
		{"mirrored-array-clean", []string{"-image", mirror3, "-volumes", "3"}, 0, "redundancy cross-check:"},
		{"parity-array-clean", []string{"-image", parity3, "-volumes", "3"}, 0, "0 mismatches"},
		{"parity-member-dead", []string{"-image", degraded, "-volumes", "3"}, 0, "member dead"},
		{"spare-pool-idle", []string{"-image", spared, "-volumes", "3"}, 0, "spare pool: 1 idle image(s)"},
		{"healed-lineage", []string{"-image", healed, "-volumes", "3"}, 0, "member 1: promoted from spare slot 0 (self-heal rebuild)"},
		{"two-members-missing", []string{"-image", lost2, "-volumes", "3"}, 2, ""},
		{"nonredundant-member-missing", []string{"-image", affinityLost, "-volumes", "3"}, 2, "not redundant"},
		{"array-rollforward", []string{"-image", array3, "-volumes", "3", "-rollforward"}, 0, "array label: 3 volumes"},
		{"array-width-mismatch", []string{"-image", array3, "-volumes", "2"}, 1, "label says 3 volumes, checked 2"},
		{"repair-on-lfs-misuse", []string{"-image", cleanLFS, "-repair"}, 2, ""},
		{"rollforward-on-ffs-misuse", []string{"-image", crashedFFS, "-layout", "ffs", "-rollforward"}, 2, ""},
		{"intents-valid", []string{"-intents", goodDump}, 0, "3 intents, all checksums verified"},
		{"intents-rename-record", []string{"-intents", goodDump}, 0, `rename vol=1 file=9 parent=2 name="a" parent2=2 name2="b"`},
		{"intents-corrupt", []string{"-intents", badDump}, 1, "checksum mismatch"},
		{"intents-missing", []string{"-intents", filepath.Join(t.TempDir(), "nope.bin")}, 2, ""},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			got := run(row.args, &out, &errb)
			if got != row.want {
				t.Fatalf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s", got, row.want, out.String(), errb.String())
			}
			if row.grep != "" && !strings.Contains(out.String(), row.grep) {
				t.Fatalf("output lacks %q:\n%s", row.grep, out.String())
			}
		})
	}

	// Repair converges: the repaired FFS image now checks clean
	// without flags, and repeated rollforward stays clean.
	var out bytes.Buffer
	if got := run([]string{"-image", crashedFFS, "-layout", "ffs"}, &out, &out); got != 0 {
		t.Fatalf("ffs image dirty again after repair (exit %d):\n%s", got, out.String())
	}
	out.Reset()
	if got := run([]string{"-image", crashedLFS}, &out, &out); got != 0 {
		t.Fatalf("lfs image dirty after rollforward (exit %d):\n%s", got, out.String())
	}

	// The degraded JSON shape: the dead member is called out, the
	// cross-check skips its columns, and the set is still clean.
	out.Reset()
	if got := run([]string{"-image", degraded, "-volumes", "3", "-json"}, &out, &out); got != 0 {
		t.Fatalf("degraded set not clean (exit %d):\n%s", got, out.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	switch {
	case !rep.Clean || !rep.Degraded:
		t.Fatalf("degraded set: clean=%v degraded=%v", rep.Clean, rep.Degraded)
	case rep.DeadMember == nil || *rep.DeadMember != 1 || !rep.Volumes[1].Dead:
		t.Fatalf("dead member not reported: %+v", rep)
	case rep.Scrub == nil || rep.Scrub.Skipped == 0 || rep.Scrub.Mismatches != 0:
		t.Fatalf("cross-check stats: %+v", rep.Scrub)
	}

	// The spare-pool JSON shape: the idle image is counted and listed,
	// and a pool is informative — never dirties a clean set.
	out.Reset()
	if got := run([]string{"-image", spared, "-volumes", "3", "-json"}, &out, &out); got != 0 {
		t.Fatalf("spared set not clean (exit %d):\n%s", got, out.String())
	}
	rep = report{}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	switch {
	case !rep.Clean || rep.Degraded:
		t.Fatalf("spared set: clean=%v degraded=%v", rep.Clean, rep.Degraded)
	case rep.Spares == nil || rep.Spares.Count != 1 || len(rep.Spares.Images) != 1:
		t.Fatalf("spare pool not reported: %+v", rep.Spares)
	case rep.Spares.Images[0] != spared+".s0":
		t.Fatalf("spare image %q, want %q", rep.Spares.Images[0], spared+".s0")
	case rep.Health != nil:
		t.Fatalf("untouched set reports promotions: %+v", rep.Health)
	}

	// The healed JSON shape: lineage on the rebuilt member, the pool
	// consumed, the set clean and fully redundant again.
	out.Reset()
	if got := run([]string{"-image", healed, "-volumes", "3", "-json"}, &out, &out); got != 0 {
		t.Fatalf("healed set not clean (exit %d):\n%s", got, out.String())
	}
	rep = report{}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	switch {
	case !rep.Clean || rep.Degraded:
		t.Fatalf("healed set: clean=%v degraded=%v", rep.Clean, rep.Degraded)
	case rep.Volumes[1].Origin == nil || *rep.Volumes[1].Origin != 0:
		t.Fatalf("member 1 lineage missing: %+v", rep.Volumes[1])
	case rep.Health == nil || len(rep.Health.Promoted) != 1 ||
		rep.Health.Promoted[0] != (promotion{Member: 1, Spare: 0}):
		t.Fatalf("promotion not reported: %+v", rep.Health)
	case rep.Spares != nil:
		t.Fatalf("consumed pool still reported: %+v", rep.Spares)
	case rep.Scrub == nil || rep.Scrub.Mismatches != 0 || rep.Scrub.Skipped != 0:
		t.Fatalf("healed cross-check: %+v", rep.Scrub)
	}

	// A silently diverged copy: the per-member checks pass, but the
	// cross-check finds the mismatch and the set exits dirty.
	corrupt := mkRedundantImage(t, t.TempDir(), "mirrored")
	flipDataByte(t, corrupt)
	out.Reset()
	if got := run([]string{"-image", corrupt, "-volumes", "3"}, &out, &out); got != 1 {
		t.Fatalf("corrupted mirror exit %d, want 1:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "mismatched columns") {
		t.Fatalf("output lacks mismatch report:\n%s", out.String())
	}
}

// TestJSONReport pins the machine-readable shape.
func TestJSONReport(t *testing.T) {
	img := mkImage(t, t.TempDir(), "lfs", 1, "close")
	var out, errb bytes.Buffer
	if got := run([]string{"-image", img, "-json"}, &out, &errb); got != 0 {
		t.Fatalf("exit %d: %s", got, errb.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if !rep.Clean || len(rep.Volumes) != 1 || rep.Volumes[0].Layout != "lfs" {
		t.Fatalf("unexpected report: %+v", rep)
	}
}
