package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/sched"
)

// mkImage builds a PFS image (set) in dir and returns its path. The
// shutdown mode decides what fsck will find: "close" syncs
// everything, "crash" pulls the power with dirty state outstanding.
func mkImage(t *testing.T, dir, layout string, volumes int, shutdown string) string {
	t.Helper()
	path := filepath.Join(dir, "img")
	flush := cache.UPS()
	if shutdown == "crash" && layout == "lfs" {
		// A tiny NVRAM bound forces flushes into the log without a
		// checkpoint — the state only -rollforward can recover.
		flush = cache.NVRAMWhole(4)
	}
	srv, err := pfs.Open(pfs.Config{
		Path:        path,
		Blocks:      2048,
		Volumes:     volumes,
		Layout:      layout,
		SegBlocks:   32,
		CacheBlocks: 96,
		Flush:       flush,
	})
	if err != nil {
		t.Fatalf("pfs.Open: %v", err)
	}
	err = srv.Do(func(tk sched.Task) error {
		v := srv.Vol
		h, err := v.Create(tk, "/a", core.TypeRegular)
		if err != nil {
			return err
		}
		buf := make([]byte, core.BlockSize)
		for i := range buf {
			buf[i] = 0x3C
		}
		for b := 0; b < 6; b++ {
			if err := v.WriteAt(tk, h, int64(b)*core.BlockSize, buf, core.BlockSize); err != nil {
				return err
			}
		}
		if shutdown == "crash" && layout == "lfs" {
			// Checkpoint the baseline, then overwrite: the NVRAM
			// bound pushes the new versions into the log, where only
			// roll-forward can find them.
			if err := v.Fsync(tk, h); err != nil {
				return err
			}
			for i := range buf {
				buf[i] = 0x4D
			}
			for b := 0; b < 6; b++ {
				if err := v.WriteAt(tk, h, int64(b)*core.BlockSize, buf, core.BlockSize); err != nil {
					return err
				}
			}
		}
		return v.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	if shutdown == "crash" {
		srv.Crash()
	} else if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// TestExitCodeTable is the golden table: every (image state, flags)
// row must produce its documented exit code and output.
func TestExitCodeTable(t *testing.T) {
	cleanLFS := mkImage(t, t.TempDir(), "lfs", 1, "close")
	crashedLFS := mkImage(t, t.TempDir(), "lfs", 1, "crash")
	crashedFFS := mkImage(t, t.TempDir(), "ffs", 1, "crash")
	array3 := mkImage(t, t.TempDir(), "lfs", 3, "close")
	garbage := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(garbage, make([]byte, 1<<20), 0o644); err != nil {
		t.Fatal(err)
	}

	// An NVRAM intent dump plus a corrupted copy (one body byte
	// flipped, so a record checksum must fail).
	dump := cache.EncodeIntents([]cache.Intent{
		{Seq: 1, Op: cache.IntentCreate, Vol: 1, File: 9, Parent: 2, Name: "a", Gen: 7},
		{Seq: 2, Op: cache.IntentRename, Vol: 1, File: 9, Parent: 2, Name: "a", Parent2: 2, Name2: "b"},
		{Seq: 3, Op: cache.IntentRemove, Vol: 1, File: 9, Parent: 2, Name: "b"},
	})
	goodDump := filepath.Join(t.TempDir(), "intents.bin")
	if err := os.WriteFile(goodDump, dump, 0o644); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), dump...)
	bad[20] ^= 0xFF
	badDump := filepath.Join(t.TempDir(), "intents-corrupt.bin")
	if err := os.WriteFile(badDump, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	rows := []struct {
		name string
		args []string
		want int
		grep string
	}{
		{"clean-lfs", []string{"-image", cleanLFS}, 0, "clean"},
		{"missing-image", []string{"-image", filepath.Join(t.TempDir(), "nope")}, 2, ""},
		{"garbage-image", []string{"-image", garbage}, 2, "mount:"},
		{"crashed-ffs-dirty", []string{"-image", crashedFFS, "-layout", "ffs"}, 1, "inconsistencies"},
		{"crashed-ffs-repaired", []string{"-image", crashedFFS, "-layout", "ffs", "-repair"}, 0, "repaired"},
		{"crashed-lfs-rollforward", []string{"-image", crashedLFS, "-rollforward"}, 0, "rolled forward"},
		{"clean-array", []string{"-image", array3, "-volumes", "3"}, 0, "array label: 3 volumes"},
		{"array-rollforward", []string{"-image", array3, "-volumes", "3", "-rollforward"}, 0, "array label: 3 volumes"},
		{"array-width-mismatch", []string{"-image", array3, "-volumes", "2"}, 1, "label says 3 volumes, checked 2"},
		{"repair-on-lfs-misuse", []string{"-image", cleanLFS, "-repair"}, 2, ""},
		{"rollforward-on-ffs-misuse", []string{"-image", crashedFFS, "-layout", "ffs", "-rollforward"}, 2, ""},
		{"intents-valid", []string{"-intents", goodDump}, 0, "3 intents, all checksums verified"},
		{"intents-rename-record", []string{"-intents", goodDump}, 0, `rename vol=1 file=9 parent=2 name="a" parent2=2 name2="b"`},
		{"intents-corrupt", []string{"-intents", badDump}, 1, "checksum mismatch"},
		{"intents-missing", []string{"-intents", filepath.Join(t.TempDir(), "nope.bin")}, 2, ""},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			got := run(row.args, &out, &errb)
			if got != row.want {
				t.Fatalf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s", got, row.want, out.String(), errb.String())
			}
			if row.grep != "" && !strings.Contains(out.String(), row.grep) {
				t.Fatalf("output lacks %q:\n%s", row.grep, out.String())
			}
		})
	}

	// Repair converges: the repaired FFS image now checks clean
	// without flags, and repeated rollforward stays clean.
	var out bytes.Buffer
	if got := run([]string{"-image", crashedFFS, "-layout", "ffs"}, &out, &out); got != 0 {
		t.Fatalf("ffs image dirty again after repair (exit %d):\n%s", got, out.String())
	}
	out.Reset()
	if got := run([]string{"-image", crashedLFS}, &out, &out); got != 0 {
		t.Fatalf("lfs image dirty after rollforward (exit %d):\n%s", got, out.String())
	}
}

// TestJSONReport pins the machine-readable shape.
func TestJSONReport(t *testing.T) {
	img := mkImage(t, t.TempDir(), "lfs", 1, "close")
	var out, errb bytes.Buffer
	if got := run([]string{"-image", img, "-json"}, &out, &errb); got != 0 {
		t.Fatalf("exit %d: %s", got, errb.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if !rep.Clean || len(rep.Volumes) != 1 || rep.Volumes[0].Layout != "lfs" {
		t.Fatalf("unexpected report: %+v", rep)
	}
}
