// Command fsck checks a PFS image for consistency: it mounts the
// segmented log read-only-in-effect (nothing is written), loads
// every live inode, and verifies the log invariants — address
// ranges, double claims, segment usage counts and the free list.
//
//	fsck -image /var/tmp/pfs.img
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
)

func main() {
	image := flag.String("image", "pfs.img", "backing image file")
	verbose := flag.Bool("v", false, "print volume summary")
	flag.Parse()

	fi, err := os.Stat(*image)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsck:", err)
		os.Exit(1)
	}
	blocks := fi.Size() / core.BlockSize
	if blocks < 16 {
		fmt.Fprintf(os.Stderr, "fsck: %s too small to hold a file system\n", *image)
		os.Exit(1)
	}

	k := sched.NewReal(0)
	drv, err := device.NewFileDriver(k, "fsck", *image, blocks, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsck:", err)
		os.Exit(1)
	}
	part := layout.NewPartition(drv, 0, 0, blocks, false)
	l := lfs.New(k, "fsck", part, lfs.Config{})

	errc := make(chan int, 1)
	k.Go("fsck", func(t sched.Task) {
		if err := l.Mount(t); err != nil {
			fmt.Fprintf(os.Stderr, "fsck: mount: %v\n", err)
			errc <- 2
			return
		}
		if *verbose {
			fmt.Printf("%s: %s, %d free blocks\n", *image, l, l.FreeBlocks())
		}
		errs := l.Check(t)
		for _, e := range errs {
			fmt.Println(e)
		}
		if len(errs) > 0 {
			fmt.Printf("%s: %d inconsistencies\n", *image, len(errs))
			errc <- 1
			return
		}
		fmt.Printf("%s: clean\n", *image)
		errc <- 0
	})
	os.Exit(<-errc)
}
