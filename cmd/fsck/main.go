// Command fsck checks a PFS image — or a multi-volume array image
// set — for consistency: each volume's segmented log is mounted
// read-only-in-effect (nothing is written), every live inode is
// loaded, and the log invariants are verified — address ranges,
// double claims, segment usage counts and the free list. For arrays
// it also reads the geometry label off member 0 and cross-checks the
// width it was formatted with.
//
//	fsck -image /var/tmp/pfs.img
//	fsck -image /var/tmp/pfs.img -volumes 4 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
	"repro/internal/volume"
)

// volReport is one volume image's result.
type volReport struct {
	Image      string   `json:"image"`
	Blocks     int64    `json:"blocks"`
	FreeBlocks int64    `json:"free_blocks"`
	Layout     string   `json:"layout"`
	Errors     []string `json:"errors"`
}

// report is the machine-readable summary.
type report struct {
	Image     string      `json:"image"`
	Volumes   []volReport `json:"volumes"`
	Label     *labelInfo  `json:"label,omitempty"`
	Clean     bool        `json:"clean"`
	ErrorText string      `json:"error,omitempty"`
}

// labelInfo is the array geometry read off member 0.
type labelInfo struct {
	Volumes      int    `json:"volumes"`
	Placement    string `json:"placement"`
	StripeBlocks int    `json:"stripe_blocks"`
}

func main() {
	image := flag.String("image", "pfs.img", "backing image file (base name with -volumes > 1)")
	volumes := flag.Int("volumes", 1, "array width: check images <image>.v0 .. <image>.v(N-1)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON summary")
	verbose := flag.Bool("v", false, "print volume summaries")
	flag.Parse()

	rep := report{Image: *image, Clean: true}
	k := sched.NewReal(0)
	fatal := false // could not even check an image (vs. checked and dirty)
	for i := 0; i < *volumes; i++ {
		path := *image
		if *volumes > 1 {
			path = fmt.Sprintf("%s.v%d", *image, i)
		}
		vr, f := checkVolume(k, path, i == 0 && *volumes > 1, &rep)
		fatal = fatal || f
		rep.Volumes = append(rep.Volumes, vr)
		if len(vr.Errors) > 0 {
			rep.Clean = false
		}
	}
	emit(&rep, *jsonOut, *verbose, fatal)
}

// checkVolume mounts and checks one image; on the first member of an
// array it also reads the geometry label into rep. The second result
// reports whether the image could not be checked at all.
func checkVolume(k *sched.RKernel, path string, wantLabel bool, rep *report) (volReport, bool) {
	vr := volReport{Image: path, Layout: "lfs", Errors: []string{}}
	fatal := false
	fail := func(f string, args ...any) (volReport, bool) {
		vr.Errors = append(vr.Errors, fmt.Sprintf(f, args...))
		return vr, true
	}
	fi, err := os.Stat(path)
	if err != nil {
		return fail("%v", err)
	}
	blocks := fi.Size() / core.BlockSize
	vr.Blocks = blocks
	if blocks < 16 {
		return fail("%s too small to hold a file system", path)
	}
	drv, err := device.NewFileDriver(k, "fsck:"+path, path, blocks, nil)
	if err != nil {
		return fail("%v", err)
	}
	part := layout.NewPartition(drv, 0, 0, blocks, false)
	l := lfs.New(k, "fsck", part, lfs.Config{})

	done := make(chan struct{})
	k.Go("fsck", func(t sched.Task) {
		defer close(done)
		if err := l.Mount(t); err != nil {
			vr.Errors = append(vr.Errors, fmt.Sprintf("mount: %v", err))
			fatal = true
			return
		}
		vr.FreeBlocks = l.FreeBlocks()
		for _, e := range l.Check(t) {
			vr.Errors = append(vr.Errors, e.Error())
		}
		if wantLabel {
			n, pl, sw, found, err := volume.ReadLabel(t, l)
			if err != nil {
				vr.Errors = append(vr.Errors, fmt.Sprintf("array label: %v", err))
			} else if found {
				rep.Label = &labelInfo{Volumes: n, Placement: pl, StripeBlocks: sw}
			}
		}
	})
	<-done
	return vr, fatal
}

// emit prints the report and exits: 0 clean, 1 inconsistencies
// found, 2 an image could not be checked at all.
func emit(rep *report, jsonOut, verbose, fatal bool) {
	if rep.Label != nil && rep.Label.Volumes != len(rep.Volumes) {
		rep.Clean = false
		rep.ErrorText = fmt.Sprintf("array label says %d volumes, checked %d",
			rep.Label.Volumes, len(rep.Volumes))
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "fsck:", err)
			os.Exit(2)
		}
	} else {
		for _, v := range rep.Volumes {
			if verbose {
				fmt.Printf("%s: %d blocks, %d free\n", v.Image, v.Blocks, v.FreeBlocks)
			}
			for _, e := range v.Errors {
				fmt.Println(e)
			}
			if len(v.Errors) > 0 {
				fmt.Printf("%s: %d inconsistencies\n", v.Image, len(v.Errors))
			} else {
				fmt.Printf("%s: clean\n", v.Image)
			}
		}
		if rep.Label != nil {
			fmt.Printf("array label: %d volumes, %s placement, stripe %d blocks\n",
				rep.Label.Volumes, rep.Label.Placement, rep.Label.StripeBlocks)
		}
		if rep.ErrorText != "" {
			fmt.Println("fsck:", rep.ErrorText)
		}
	}
	if fatal {
		os.Exit(2)
	}
	if !rep.Clean {
		os.Exit(1)
	}
}
