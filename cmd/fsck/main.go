// Command fsck checks a PFS image — or a multi-volume array image
// set — for consistency, and optionally repairs it: each volume is
// mounted and every invariant of its layout verified (LFS: address
// ranges, double claims, segment usage counts, the free list; FFS:
// bitmap/table agreement, block claims, leaks). For arrays it also
// reads the geometry labels and cross-checks the width. With
// -rollforward an LFS volume is recovered through the newer
// checkpoint plus the post-checkpoint segment summaries; with
// -repair an FFS volume's bitmaps are rebuilt from its inode table.
//
//	fsck -image /var/tmp/pfs.img
//	fsck -image /var/tmp/pfs.img -volumes 4 -json
//	fsck -image /var/tmp/pfs.img -rollforward          # LFS recovery
//	fsck -image /var/tmp/pfs.img -layout ffs -repair   # FFS fsck -y
//	fsck -intents /var/tmp/intents.bin                 # NVRAM intent dump
//
// With -intents the image flags are ignored: the argument is a
// serialized NVRAM intent dump (the crash harness writes one next to
// its images) whose records are checksummed, sequence-checked, and
// printed one per line.
//
// For a redundant array (the label says mirrored or parity), one
// missing member image is not fatal: the member is declared dead, the
// geometry is read off the first surviving member, and the set is
// reported degraded (`"degraded"` / `"dead_member"` in -json). The
// check then mounts the whole array and walks the redundancy
// invariant — mirror copies agree, parity equals the XOR of its
// stripe — reporting the scrub counters under `"scrub"`; columns that
// need the dead member are skipped (they are exactly what a rebuild
// recomputes). Any mismatch marks the set dirty.
//
// Exit codes: 0 the image (set) is clean — including after a
// successful repair, and including a degraded-but-consistent
// redundant set — or the intent dump verifies; 1 inconsistencies
// remain or the dump is corrupt; 2 an image or dump could not be
// read at all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ffs"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
	"repro/internal/volume"
)

// volReport is one volume image's result.
type volReport struct {
	Image      string   `json:"image"`
	Blocks     int64    `json:"blocks"`
	FreeBlocks int64    `json:"free_blocks"`
	Layout     string   `json:"layout"`
	Dead       bool     `json:"dead,omitempty"`
	Origin     *int     `json:"origin,omitempty"`
	Repairs    []string `json:"repairs,omitempty"`
	Errors     []string `json:"errors"`
}

// report is the machine-readable summary.
type report struct {
	Image      string      `json:"image"`
	Volumes    []volReport `json:"volumes"`
	Label      *labelInfo  `json:"label,omitempty"`
	Degraded   bool        `json:"degraded,omitempty"`
	DeadMember *int        `json:"dead_member,omitempty"`
	Scrub      *scrubInfo  `json:"scrub,omitempty"`
	Spares     *spareInfo  `json:"spares,omitempty"`
	Health     *healthInfo `json:"health,omitempty"`
	Clean      bool        `json:"clean"`
	ErrorText  string      `json:"error,omitempty"`
}

// spareInfo reports the hot-spare images found next to the member set
// ("<image>.s<j>") — idle replacements a self-healing server promotes.
type spareInfo struct {
	Count  int      `json:"count"`
	Images []string `json:"images"`
}

// healthInfo is the set's self-heal provenance: members whose
// geometry label records spare lineage were rebuilt onto a hot spare
// by a supervised repair.
type healthInfo struct {
	Promoted []promotion `json:"promoted,omitempty"`
}

// promotion records that a member was rebuilt onto spare slot Spare.
type promotion struct {
	Member int `json:"member"`
	Spare  int `json:"spare"`
}

// scrubInfo is the redundancy cross-check result: every file's data
// columns walked, mirror copies compared, parity XOR verified.
// Skipped counts columns that need the dead member and so cannot be
// verified until a rebuild.
type scrubInfo struct {
	Files      int64 `json:"files"`
	Blocks     int64 `json:"blocks"`
	Skipped    int64 `json:"skipped"`
	Mismatches int64 `json:"mismatches"`
}

// labelInfo is the array geometry read off member 0.
type labelInfo struct {
	Volumes      int    `json:"volumes"`
	Placement    string `json:"placement"`
	StripeBlocks int    `json:"stripe_blocks"`
}

// options is the parsed command line.
type options struct {
	image       string
	volumes     int
	layoutName  string
	repair      bool
	rollforward bool
	intents     string
	jsonOut     bool
	verbose     bool
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and an exit code — the golden
// test drives the full table through it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.image, "image", "pfs.img", "backing image file (base name with -volumes > 1)")
	fs.IntVar(&o.volumes, "volumes", 1, "array width: check images <image>.v0 .. <image>.v(N-1)")
	fs.StringVar(&o.layoutName, "layout", "lfs", "storage layout of the image(s): lfs or ffs")
	fs.BoolVar(&o.repair, "repair", false, "ffs: rebuild the allocation bitmaps from the inode table, then re-check")
	fs.BoolVar(&o.rollforward, "rollforward", false, "lfs: recover through the newer checkpoint and the post-checkpoint segments, then re-check")
	fs.StringVar(&o.intents, "intents", "", "dump and verify a serialized NVRAM intent ring instead of checking an image")
	fs.BoolVar(&o.jsonOut, "json", false, "emit a machine-readable JSON summary")
	fs.BoolVar(&o.verbose, "v", false, "print volume summaries")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.intents != "" {
		return dumpIntents(o, stdout, stderr)
	}
	if o.repair && o.layoutName != "ffs" {
		fmt.Fprintln(stderr, "fsck: -repair applies to -layout ffs (use -rollforward for lfs)")
		return 2
	}
	if o.rollforward && o.layoutName != "lfs" {
		fmt.Fprintln(stderr, "fsck: -rollforward applies to -layout lfs (use -repair for ffs)")
		return 2
	}

	rep := report{Image: o.image, Clean: true}
	k := sched.NewReal(0)
	fatal := false // could not even check an image (vs. checked and dirty)
	if o.volumes > 1 && (o.repair || o.rollforward) {
		// Recovering an array is an array-level operation: member
		// recovery alone leaves the cross-member invariants (lockstep
		// allocation, shadow sizes, labels) unrepaired.
		fatal = recoverArray(k, o, &rep)
	} else {
		paths := make([]string, o.volumes)
		for i := range paths {
			paths[i] = o.image
			if o.volumes > 1 {
				paths[i] = fmt.Sprintf("%s.v%d", o.image, i)
			}
		}
		// One missing member image is the single-fault the redundant
		// placements are built to survive (the disk died and took its
		// image with it): skip it here, check the survivors, and judge
		// it once the label has told us whether its share is still
		// represented. Two or more missing stay fatal as before.
		missing := -1
		if o.volumes > 1 {
			for i, p := range paths {
				if _, err := os.Stat(p); err == nil {
					continue
				}
				if missing >= 0 {
					missing = -2 // beyond the single-fault model
					break
				}
				missing = i
			}
		}
		vrs := make([]volReport, o.volumes)
		for i, path := range paths {
			if i == missing {
				vrs[i] = volReport{Image: path, Layout: o.layoutName, Errors: []string{}}
				continue
			}
			// The geometry label lives on every member, so the first
			// surviving one can supply it even when member 0 is gone.
			vr, f := checkVolume(k, path, o, o.volumes > 1 && rep.Label == nil, &rep)
			fatal = fatal || f
			vrs[i] = vr
		}
		redundant := rep.Label != nil &&
			(rep.Label.Placement == volume.PlacementMirrored || rep.Label.Placement == volume.PlacementParity)
		if missing >= 0 {
			if redundant {
				vrs[missing].Dead = true
				rep.Degraded = true
				m := missing
				rep.DeadMember = &m
			} else {
				vrs[missing].Errors = append(vrs[missing].Errors, fmt.Sprintf(
					"%s: member image missing and the placement is not redundant", paths[missing]))
				fatal = true
			}
		}
		if !fatal && redundant {
			fatal = crossCheck(k, o, paths, missing, &rep, vrs)
		}
		rep.Volumes = append(rep.Volumes, vrs...)
	}
	for _, vr := range rep.Volumes {
		if len(vr.Errors) > 0 {
			rep.Clean = false
		}
	}
	return emit(&rep, o, stdout, stderr, fatal)
}

// dumpIntents verifies and prints a serialized NVRAM intent dump —
// what the battery-backed domain held at a crash. Exit 0 when every
// record's checksum and sequence verify, 1 when the dump is corrupt,
// 2 when the file cannot be read.
func dumpIntents(o options, stdout, stderr io.Writer) int {
	buf, err := os.ReadFile(o.intents)
	if err != nil {
		fmt.Fprintln(stderr, "fsck:", err)
		return 2
	}
	ints, err := cache.DecodeIntents(buf)
	if err != nil {
		fmt.Fprintln(stdout, "fsck:", err)
		return 1
	}
	if o.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ints); err != nil {
			fmt.Fprintln(stderr, "fsck:", err)
			return 2
		}
	} else {
		for _, it := range ints {
			fmt.Fprintf(stdout, "#%d @%dns %s vol=%d file=%d", it.Seq, int64(it.At), it.Op, it.Vol, it.File)
			if it.Gen != 0 {
				fmt.Fprintf(stdout, " gen=%d", it.Gen)
			}
			if it.Parent != 0 {
				fmt.Fprintf(stdout, " parent=%d", it.Parent)
			}
			if it.Name != "" {
				fmt.Fprintf(stdout, " name=%q", it.Name)
			}
			if it.Op == cache.IntentRename {
				fmt.Fprintf(stdout, " parent2=%d name2=%q", it.Parent2, it.Name2)
			} else if it.Name2 != "" {
				fmt.Fprintf(stdout, " target=%q", it.Name2)
			}
			if it.Op == cache.IntentTruncate {
				fmt.Fprintf(stdout, " size=%d", it.Size)
			}
			fmt.Fprintln(stdout)
		}
		fmt.Fprintf(stdout, "%s: %d intents, all checksums verified\n", o.intents, len(ints))
	}
	return 0
}

// newLayout builds one member layout over a partition.
func newLayout(k *sched.RKernel, name, layoutName string, part *layout.Partition) layout.Layout {
	if layoutName == "ffs" {
		return ffs.New(k, name, part, ffs.Config{})
	}
	return lfs.New(k, name, part, lfs.Config{})
}

// recoverArray recovers a multi-volume image set through
// volume.Array.Recover: a probe of member 0 supplies the geometry,
// the array recovers every member plus the cross-member invariants,
// and each member is then checked. Returns whether the set could not
// be recovered at all.
func recoverArray(k *sched.RKernel, o options, rep *report) bool {
	paths := make([]string, o.volumes)
	drvs := make([]device.Driver, o.volumes)
	vrs := make([]volReport, o.volumes)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s.v%d", o.image, i)
		vrs[i] = volReport{Image: paths[i], Layout: o.layoutName, Errors: []string{}}
	}
	defer func() { rep.Volumes = append(rep.Volumes, vrs...) }()
	fail := func(i int, f string, args ...any) bool {
		vrs[i].Errors = append(vrs[i].Errors, fmt.Sprintf(f, args...))
		return true
	}
	blocks := make([]int64, o.volumes)
	for i, path := range paths {
		fi, err := os.Stat(path)
		if err != nil {
			return fail(i, "%v", err)
		}
		blocks[i] = fi.Size() / core.BlockSize
		vrs[i].Blocks = blocks[i]
		if blocks[i] < 16 {
			return fail(i, "%s too small to hold a file system", path)
		}
		drv, err := device.NewFileDriver(k, "fsck:"+path, path, blocks[i], nil)
		if err != nil {
			return fail(i, "%v", err)
		}
		defer drv.Close()
		drvs[i] = drv
	}

	fatal := false
	done := make(chan struct{})
	k.Go("fsck.array", func(t sched.Task) {
		defer close(done)
		// Probe member 0: recover it alone and read the geometry
		// label the array must be rebuilt with.
		probe := newLayout(k, "fsck.probe", o.layoutName,
			layout.NewPartition(drvs[0], 0, 0, blocks[0], false))
		rec := probe.(layout.Recoverer)
		if _, err := rec.Recover(t); err != nil {
			fatal = fail(0, "recover: %v", err)
			return
		}
		li, found, err := volume.ReadLabel(t, probe)
		if err != nil {
			fatal = fail(0, "array label: %v", err)
			return
		}
		cfg := volume.Config{}
		if found {
			rep.Label = &labelInfo{Volumes: li.Volumes, Placement: li.Placement, StripeBlocks: li.StripeBlocks}
			if li.Volumes != o.volumes {
				fail(0, "array label says %d volumes, recovering %d", li.Volumes, o.volumes)
				return
			}
			cfg.Placement = li.Placement
			cfg.StripeBlocks = li.StripeBlocks
		} else {
			vrs[0].Repairs = append(vrs[0].Repairs,
				"no geometry label found; recovering with default (affinity) routing")
		}

		subs := make([]layout.Layout, o.volumes)
		for i := range subs {
			subs[i] = newLayout(k, fmt.Sprintf("fsck.d%d", i), o.layoutName,
				layout.NewPartition(drvs[i], i, 0, blocks[i], false))
		}
		arr, err := volume.New(k, "fsck", subs, cfg)
		if err != nil {
			fatal = fail(0, "%v", err)
			return
		}
		st, err := arr.Recover(t)
		vrs[0].Repairs = append(vrs[0].Repairs, st.Repairs...)
		if st.RolledSegments > 0 || st.DataBlocks > 0 || st.InodeRecords > 0 {
			vrs[0].Repairs = append(vrs[0].Repairs, fmt.Sprintf(
				"rolled forward %d segments: %d data blocks, %d inode records, %d orphans",
				st.RolledSegments, st.DataBlocks, st.InodeRecords, st.OrphanBlocks))
		}
		if err != nil {
			fatal = fail(0, "array recover: %v", err)
			return
		}
		for i, sub := range arr.Subs() {
			vrs[i].FreeBlocks = sub.FreeBlocks()
			for _, e := range checkFn(sub)(t) {
				vrs[i].Errors = append(vrs[i].Errors, e.Error())
			}
			if mi, ok, err := volume.ReadLabel(t, sub); err == nil && ok && mi.Origin >= 0 {
				org := mi.Origin
				vrs[i].Origin = &org
			}
		}
	})
	<-done
	return fatal
}

// crossCheck mounts the whole redundant array over the member images
// and walks the redundancy invariant: mirror copies agree, parity
// equals the XOR of its stripe. A dead member is stood in for by a
// blank placeholder that is never read — the array mounts around it —
// and the columns that need it are counted as skipped, not verified:
// they are exactly what a rebuild recomputes. Mismatches mark the set
// dirty (exit 1); returns whether the array could not be mounted at
// all.
func crossCheck(k *sched.RKernel, o options, paths []string, dead int, rep *report, vrs []volReport) bool {
	subs := make([]layout.Layout, o.volumes)
	var blocks int64
	for i, path := range paths {
		if i == dead {
			continue
		}
		fi, err := os.Stat(path)
		if err != nil {
			vrs[i].Errors = append(vrs[i].Errors, err.Error())
			return true
		}
		n := fi.Size() / core.BlockSize
		drv, err := device.NewFileDriver(k, "fsck.x:"+path, path, n, nil)
		if err != nil {
			vrs[i].Errors = append(vrs[i].Errors, err.Error())
			return true
		}
		defer drv.Close()
		subs[i] = newLayout(k, fmt.Sprintf("fsck.x%d", i), o.layoutName,
			layout.NewPartition(drv, i, 0, n, false))
		if blocks == 0 {
			blocks = n
		}
	}
	if dead >= 0 {
		drv := device.NewMemDriver(k, "fsck.dead", blocks, nil)
		subs[dead] = newLayout(k, fmt.Sprintf("fsck.x%d", dead), o.layoutName,
			layout.NewPartition(drv, dead, 0, blocks, false))
	}
	arr, err := volume.New(k, "fsck", subs,
		volume.Config{Placement: rep.Label.Placement, StripeBlocks: rep.Label.StripeBlocks})
	if err != nil {
		rep.ErrorText = fmt.Sprintf("redundancy cross-check: %v", err)
		return true
	}
	if dead >= 0 {
		if err := arr.KillMember(dead); err != nil {
			rep.ErrorText = fmt.Sprintf("redundancy cross-check: %v", err)
			return true
		}
	}
	fatal := false
	done := make(chan struct{})
	k.Go("fsck.crosscheck", func(t sched.Task) {
		defer close(done)
		if err := arr.Mount(t); err != nil {
			rep.ErrorText = fmt.Sprintf("redundancy cross-check: mount: %v", err)
			fatal = true
			return
		}
		st, err := arr.Scrub(t, false)
		if err != nil {
			rep.ErrorText = fmt.Sprintf("redundancy cross-check: %v", err)
			fatal = true
			return
		}
		rep.Scrub = &scrubInfo{
			Files:      st.Files,
			Blocks:     st.Blocks,
			Skipped:    st.Skipped,
			Mismatches: st.Mismatches,
		}
		if st.Mismatches > 0 {
			rep.Clean = false
			rep.ErrorText = fmt.Sprintf(
				"redundancy cross-check: %d mismatched columns (run fsck -rollforward, or rebuild the member)",
				st.Mismatches)
		}
	})
	<-done
	return fatal
}

// checkFn returns the layout's fsck pass.
func checkFn(lay layout.Layout) func(t sched.Task) []error {
	switch l := lay.(type) {
	case *lfs.LFS:
		return l.Check
	case *ffs.FFS:
		return l.Check
	default:
		return func(sched.Task) []error { return nil }
	}
}

// checkVolume mounts (or recovers) and checks one image; with
// wantLabel set (the first surviving member of an array) it also
// reads the geometry label into rep. The second result reports
// whether the image could not be checked at all.
func checkVolume(k *sched.RKernel, path string, o options, wantLabel bool, rep *report) (volReport, bool) {
	vr := volReport{Image: path, Layout: o.layoutName, Errors: []string{}}
	fatal := false
	fail := func(f string, args ...any) (volReport, bool) {
		vr.Errors = append(vr.Errors, fmt.Sprintf(f, args...))
		return vr, true
	}
	fi, err := os.Stat(path)
	if err != nil {
		return fail("%v", err)
	}
	blocks := fi.Size() / core.BlockSize
	vr.Blocks = blocks
	if blocks < 16 {
		return fail("%s too small to hold a file system", path)
	}
	drv, err := device.NewFileDriver(k, "fsck:"+path, path, blocks, nil)
	if err != nil {
		return fail("%v", err)
	}
	defer drv.Close()
	part := layout.NewPartition(drv, 0, 0, blocks, false)

	if o.layoutName != "lfs" && o.layoutName != "ffs" {
		return fail("unknown layout %q", o.layoutName)
	}
	lay := newLayout(k, "fsck", o.layoutName, part)
	check := checkFn(lay)

	done := make(chan struct{})
	k.Go("fsck", func(t sched.Task) {
		defer close(done)
		if o.repair || o.rollforward {
			rec := lay.(layout.Recoverer)
			st, err := rec.Recover(t)
			vr.Repairs = append(vr.Repairs, st.Repairs...)
			if st.RolledSegments > 0 || st.DataBlocks > 0 || st.InodeRecords > 0 {
				vr.Repairs = append(vr.Repairs, fmt.Sprintf(
					"rolled forward %d segments: %d data blocks, %d inode records, %d orphans",
					st.RolledSegments, st.DataBlocks, st.InodeRecords, st.OrphanBlocks))
			}
			if err != nil {
				vr.Errors = append(vr.Errors, fmt.Sprintf("recover: %v", err))
				fatal = true
				return
			}
		} else if err := lay.Mount(t); err != nil {
			vr.Errors = append(vr.Errors, fmt.Sprintf("mount: %v", err))
			fatal = true
			return
		}
		vr.FreeBlocks = lay.FreeBlocks()
		for _, e := range check(t) {
			vr.Errors = append(vr.Errors, e.Error())
		}
		if o.volumes > 1 {
			li, found, err := volume.ReadLabel(t, lay)
			if err != nil {
				vr.Errors = append(vr.Errors, fmt.Sprintf("array label: %v", err))
			} else if found {
				// Lineage: a promoted member's label names the spare
				// slot it was rebuilt onto.
				if li.Origin >= 0 {
					org := li.Origin
					vr.Origin = &org
				}
				if wantLabel {
					rep.Label = &labelInfo{Volumes: li.Volumes, Placement: li.Placement, StripeBlocks: li.StripeBlocks}
				}
			}
		}
	})
	<-done
	return vr, fatal
}

// emit prints the report and returns the exit code: 0 clean, 1
// inconsistencies found, 2 an image could not be checked at all.
func emit(rep *report, o options, stdout, stderr io.Writer, fatal bool) int {
	if rep.Label != nil && rep.Label.Volumes != len(rep.Volumes) {
		rep.Clean = false
		rep.ErrorText = fmt.Sprintf("array label says %d volumes, checked %d",
			rep.Label.Volumes, len(rep.Volumes))
	}
	// Spare pool and self-heal provenance: informative, never dirty.
	if o.volumes > 1 {
		if sp, _ := filepath.Glob(o.image + ".s*"); len(sp) > 0 {
			sort.Strings(sp)
			rep.Spares = &spareInfo{Count: len(sp), Images: sp}
		}
		var promos []promotion
		for i, vr := range rep.Volumes {
			if vr.Origin != nil {
				promos = append(promos, promotion{Member: i, Spare: *vr.Origin})
			}
		}
		if len(promos) > 0 {
			rep.Health = &healthInfo{Promoted: promos}
		}
	}
	if o.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "fsck:", err)
			return 2
		}
	} else {
		for _, v := range rep.Volumes {
			if v.Dead {
				fmt.Fprintf(stdout, "%s: missing — member dead, share served from redundancy\n", v.Image)
				continue
			}
			if o.verbose {
				fmt.Fprintf(stdout, "%s: %d blocks, %d free\n", v.Image, v.Blocks, v.FreeBlocks)
			}
			for _, r := range v.Repairs {
				fmt.Fprintf(stdout, "%s: repaired: %s\n", v.Image, r)
			}
			for _, e := range v.Errors {
				fmt.Fprintln(stdout, e)
			}
			if len(v.Errors) > 0 {
				fmt.Fprintf(stdout, "%s: %d inconsistencies\n", v.Image, len(v.Errors))
			} else {
				fmt.Fprintf(stdout, "%s: clean\n", v.Image)
			}
		}
		if rep.Label != nil {
			fmt.Fprintf(stdout, "array label: %d volumes, %s placement, stripe %d blocks\n",
				rep.Label.Volumes, rep.Label.Placement, rep.Label.StripeBlocks)
		}
		if rep.Degraded && rep.DeadMember != nil {
			fmt.Fprintf(stdout, "array degraded: member %d dead\n", *rep.DeadMember)
		}
		if rep.Scrub != nil {
			fmt.Fprintf(stdout, "redundancy cross-check: %d files, %d blocks, %d skipped (dead member), %d mismatches\n",
				rep.Scrub.Files, rep.Scrub.Blocks, rep.Scrub.Skipped, rep.Scrub.Mismatches)
		}
		if rep.Spares != nil {
			fmt.Fprintf(stdout, "spare pool: %d idle image(s)\n", rep.Spares.Count)
		}
		if rep.Health != nil {
			for _, p := range rep.Health.Promoted {
				fmt.Fprintf(stdout, "member %d: promoted from spare slot %d (self-heal rebuild)\n", p.Member, p.Spare)
			}
		}
		if rep.ErrorText != "" {
			fmt.Fprintln(stdout, "fsck:", rep.ErrorText)
		}
	}
	if fatal {
		return 2
	}
	if !rep.Clean {
		return 1
	}
	return 0
}
