// Command pfsd runs the on-line Pegasus file system: a real cache,
// a segmented LFS on a Unix file acting as the disk (or a striped
// array of them), and the NFS-like network front-end.
//
//	pfsd -image /var/tmp/pfs.img -blocks 65536 -addr 127.0.0.1:2049
//	pfsd -image /var/tmp/pfs.img -volumes 4 -placement striped
//
// With -volumes N the server runs on an N-wide volume array backed
// by images <image>.v0 .. <image>.v(N-1); the on-image label makes a
// reopen with different -volumes/-placement/-stripe fail loudly.
// The mirrored and parity placements add redundancy: the array keeps
// serving reads and writes through a single member death and can
// rebuild the lost member online (pfs.Server.KillMember /
// RebuildMember / Scrub drive this programmatically).
//
// On SIGINT/SIGTERM the server drains: it stops accepting calls,
// lets in-flight NFS requests complete, syncs every volume, and only
// then exits. A second signal forces an immediate shutdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cache"
	"repro/internal/pfs"
)

func main() {
	var (
		image     = flag.String("image", "pfs.img", "backing image file (base name with -volumes > 1)")
		blocks    = flag.Int64("blocks", 16384, "per-volume size in 4KB blocks")
		volumes   = flag.Int("volumes", 1, "volume-array width: one image+driver+LFS stack per member")
		placement = flag.String("placement", "affinity", "array placement policy: affinity, striped, mirrored, or parity")
		stripe    = flag.Int("stripe", 8, "stripe/chunk width in 4KB blocks for striped and redundant placements")
		cacheB    = flag.Int("cache", 4096, "cache size in 4KB blocks")
		shards    = flag.Int("shards", 0, "cache lock stripes (0 = default 8, 1 = classic single-lock cache)")
		pipeline  = flag.Int("pipeline", 0, "per-connection NFS window (0 = default 8, 1 = no pipelining)")
		readahead = flag.Int("readahead", 0, "sequential readahead window in blocks (0 = default 8, -1 = off)")
		cluster   = flag.Int("cluster", 0, "clustered-transfer run cap in blocks (0 = default 16, -1 = off)")
		addr      = flag.String("addr", "127.0.0.1:20490", "listen address")
		admin     = flag.String("admin", "", "admin HTTP endpoint: /metrics, /healthz, /statusz, pprof (empty = disabled)")
		slowOp    = flag.Duration("slowop", 0, "slow-op log capture threshold (0 = default 100ms)")
		policy    = flag.String("policy", "ups", "flush policy: writedelay, ups, nvram-whole, nvram-partial")
		nvramKB   = flag.Int("nvram", 4096, "NVRAM size in KB for nvram policies")
		noIntents = flag.Bool("nointentlog", false, "disable the metadata intent log (exposes the historical create+write+crash drop)")
		spares    = flag.Int("spares", 0, "hot-spare pool size: idle replacement member stacks pre-provisioned for promotion (redundant placements)")
		selfHeal  = flag.Bool("selfheal", false, "supervised self-healing: health monitor + automatic spare promotion and online rebuild on member death")
		healthInt = flag.Duration("healthint", 0, "health monitor sweep interval (0 = default)")
		statsOut  = flag.Bool("stats", false, "print statistics on shutdown")
	)
	flag.Parse()

	var fc cache.FlushConfig
	switch *policy {
	case "writedelay":
		fc = cache.WriteDelay()
	case "ups":
		fc = cache.UPS()
	case "nvram-whole":
		fc = cache.NVRAMWhole(*nvramKB / 4)
	case "nvram-partial":
		fc = cache.NVRAMPartial(*nvramKB / 4)
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	srv, err := pfs.Open(pfs.Config{
		Path:             *image,
		Blocks:           *blocks,
		Volumes:          *volumes,
		Placement:        *placement,
		StripeBlocks:     *stripe,
		CacheBlocks:      *cacheB,
		CacheShards:      *shards,
		Pipeline:         *pipeline,
		ReadaheadBlocks:  *readahead,
		ClusterRunBlocks: *cluster,
		Flush:            fc,
		SlowOpThreshold:  *slowOp,
		NoIntentLog:      *noIntents,
		Spares:           *spares,
		SelfHeal:         *selfHeal,
		HealthInterval:   *healthInt,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bound, err := srv.ServeNFS(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	layoutName := srv.Vol.LayoutName()
	fmt.Printf("pfsd: serving volume 1 (%s, %d×%d blocks, layout %s, policy %s) on %s\n",
		*image, *volumes, *blocks, layoutName, fc.Name, bound)
	if *admin != "" {
		adminBound, err := srv.ServeAdmin(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("pfsd: admin endpoint (metrics, healthz, statusz, pprof) on http://%s\n", adminBound)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("pfsd: draining in-flight requests and syncing all volumes")
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown() }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "pfsd: second signal, forcing shutdown")
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	if *statsOut {
		fmt.Println(srv.Set.Render())
		// The clustering observability line: how many blocks each
		// device request carried, per member.
		for _, drv := range srv.Drivers {
			ds := drv.DriverStats()
			fmt.Printf("%s: %d requests, %.2f blocks/request\n",
				drv.Name(), ds.Requests(), ds.BlocksPerRequest())
		}
	}
}
