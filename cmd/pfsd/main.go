// Command pfsd runs the on-line Pegasus file system: a real cache,
// a segmented LFS on a Unix file acting as the disk, and the
// NFS-like network front-end.
//
//	pfsd -image /var/tmp/pfs.img -blocks 65536 -addr 127.0.0.1:2049
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/cache"
	"repro/internal/pfs"
)

func main() {
	var (
		image    = flag.String("image", "pfs.img", "backing image file")
		blocks   = flag.Int64("blocks", 16384, "volume size in 4KB blocks")
		cacheB   = flag.Int("cache", 4096, "cache size in 4KB blocks")
		addr     = flag.String("addr", "127.0.0.1:20490", "listen address")
		policy   = flag.String("policy", "ups", "flush policy: writedelay, ups, nvram-whole, nvram-partial")
		nvramKB  = flag.Int("nvram", 4096, "NVRAM size in KB for nvram policies")
		statsOut = flag.Bool("stats", false, "print statistics on shutdown")
	)
	flag.Parse()

	var fc cache.FlushConfig
	switch *policy {
	case "writedelay":
		fc = cache.WriteDelay()
	case "ups":
		fc = cache.UPS()
	case "nvram-whole":
		fc = cache.NVRAMWhole(*nvramKB / 4)
	case "nvram-partial":
		fc = cache.NVRAMPartial(*nvramKB / 4)
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	srv, err := pfs.Open(pfs.Config{
		Path:        *image,
		Blocks:      *blocks,
		CacheBlocks: *cacheB,
		Flush:       fc,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bound, err := srv.ServeNFS(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("pfsd: serving volume 1 (%s, %d blocks, policy %s) on %s\n",
		*image, *blocks, fc.Name, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("pfsd: syncing and shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if *statsOut {
		fmt.Println(srv.Set.Render())
	}
}
