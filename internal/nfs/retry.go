package nfs

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/xdr"
)

// Transient-fault retry. A server surviving a member death keeps
// serving, but the window around detection and repair can drop a TCP
// connection or stall a frame mid-flight. DialRetry wraps the plain
// transports with a bounded redial-and-reissue loop so clients ride
// through those blips instead of surfacing them.
//
// The classification discipline is strict:
//
//   - A status error (the server answered with a non-OK status) means
//     the call EXECUTED. It is returned immediately, never retried —
//     reissuing a Remove that answered "not found" would be wrong, and
//     reissuing one that answered "ok" would double-apply.
//   - A transport error (dial failure, frame read/write failure, xid
//     mismatch, sticky pipeline fault) means the call may or may not
//     have reached the server. Only idempotent procedures are
//     reissued; non-idempotent ones (Create, Remove, Rename, ...)
//     surface the error so the caller decides — blind reissue could
//     double-apply a side effect.
//
// Retries back off exponentially with seeded jitter so a client herd
// cut by the same fault does not reconnect in lockstep.

// statusError marks an error decoded from a server reply: the call
// executed, so a retrying transport must not reissue it. Unwrap keeps
// errors.Is(err, core.ErrNotFound) etc. working for callers.
type statusError struct{ err error }

func (e statusError) Error() string { return e.err.Error() }
func (e statusError) Unwrap() error { return e.err }

// RetryConfig tunes DialRetry. The zero value gets sane defaults.
type RetryConfig struct {
	// Attempts bounds total tries per call, first included (default 4).
	Attempts int
	// Backoff is the delay before the first retry, doubling per retry
	// (default 5ms).
	Backoff time.Duration
	// MaxBackoff caps the doubled delay (default 250ms).
	MaxBackoff time.Duration
	// Seed feeds the jitter source; 0 derives one from the address so
	// distinct clients decorrelate.
	Seed int64
	// Window > 0 redials with pipelined transports of that window;
	// otherwise the serial transport is used.
	Window int
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts <= 0 {
		c.Attempts = 4
	}
	if c.Backoff <= 0 {
		c.Backoff = 5 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	return c
}

// idempotentProc reports whether proc can be blindly reissued after
// an ambiguous transport failure. Write qualifies: it is an
// absolute-offset overwrite, so applying it twice converges. The
// namespace mutators do not.
func idempotentProc(proc uint32) bool {
	switch proc {
	case ProcNull, ProcMount, ProcGetattr, ProcSetattr, ProcLookup,
		ProcRead, ProcWrite, ProcReaddir, ProcReadlink, ProcStatFS:
		return true
	}
	return false
}

// DialRetry connects like Dial (or DialPipeline when cfg.Window > 0)
// but returns a client that transparently redials and re-issues
// idempotent calls on transport failures, bounded by cfg. The initial
// dial is attempted once so a bad address fails fast.
func DialRetry(addr string, cfg RetryConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Seed == 0 {
		for _, b := range []byte(addr) {
			cfg.Seed = cfg.Seed*131 + int64(b)
		}
		cfg.Seed |= 1
	}
	dial := func() (transport, error) {
		if cfg.Window > 0 {
			c, err := DialPipeline(addr, cfg.Window)
			if err != nil {
				return nil, err
			}
			return c.tr, nil
		}
		c, err := Dial(addr)
		if err != nil {
			return nil, err
		}
		return c.tr, nil
	}
	rt := newRetryTransport(dial, cfg)
	if _, err := rt.current(); err != nil {
		return nil, err
	}
	return &Client{tr: rt}, nil
}

// RetryStats reports the retry transport's counters: connections
// re-established and calls re-issued. Zero for non-retry clients.
func (c *Client) RetryStats() (redials, reissues int64) {
	if rt, ok := c.tr.(*retryTransport); ok {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return rt.redials, rt.reissues
	}
	return 0, 0
}

// retryTransport owns a replaceable inner transport plus the retry
// policy. It is safe for concurrent use: a transport failure drops
// the shared inner transport once; every caller then redials through
// current().
type retryTransport struct {
	dial func() (transport, error)
	cfg  RetryConfig

	mu       sync.Mutex
	tr       transport // nil when dropped
	dialed   bool      // tr was ever established
	rng      *rand.Rand
	redials  int64
	reissues int64
	closed   bool
}

func newRetryTransport(dial func() (transport, error), cfg RetryConfig) *retryTransport {
	return &retryTransport{
		dial: dial,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// current returns the live inner transport, dialing a fresh one if
// the previous failed.
func (r *retryTransport) current() (transport, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errors.New("nfs: client closed")
	}
	if r.tr != nil {
		return r.tr, nil
	}
	tr, err := r.dial()
	if err != nil {
		return nil, err
	}
	if r.dialed {
		r.redials++
	}
	r.dialed = true
	r.tr = tr
	return tr, nil
}

// drop discards tr if it is still the shared inner transport, so
// concurrent callers hitting the same dead connection close it once.
func (r *retryTransport) drop(tr transport) {
	r.mu.Lock()
	if r.tr == tr {
		r.tr = nil
		r.mu.Unlock()
		_ = tr.close()
		return
	}
	r.mu.Unlock()
}

func (r *retryTransport) close() error {
	r.mu.Lock()
	r.closed = true
	tr := r.tr
	r.tr = nil
	r.mu.Unlock()
	if tr != nil {
		return tr.close()
	}
	return nil
}

// backoff computes the pre-retry delay: exponential in the attempt
// number with up to 50% subtractive jitter.
func (r *retryTransport) backoff(attempt int) time.Duration {
	d := r.cfg.Backoff << uint(attempt)
	if d > r.cfg.MaxBackoff || d <= 0 {
		d = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.mu.Unlock()
	return d - j
}

func (r *retryTransport) call(proc uint32, args func(*xdr.Encoder)) (*xdr.Decoder, error) {
	var lastErr error
	for attempt := 0; attempt < r.cfg.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(r.backoff(attempt - 1))
			r.mu.Lock()
			r.reissues++
			r.mu.Unlock()
		}
		tr, err := r.current()
		if err != nil {
			// Dial failures are always retryable: nothing was issued.
			lastErr = err
			continue
		}
		d, err := tr.call(proc, args)
		if err == nil {
			return d, nil
		}
		var se statusError
		if errors.As(err, &se) {
			// The server executed the call; its answer stands.
			return nil, err
		}
		// Transport fault: connection state is suspect either way.
		r.drop(tr)
		if !idempotentProc(proc) {
			// The call may have executed; reissue could double-apply.
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}
