package nfs

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fsys"
	"repro/internal/xdr"
)

// fakeTransport is a scriptable server stand-in for the retry layer:
// failBefore injects a transport error before the call reaches the
// "server", failAfter injects one after it executed (the ambiguous
// case), and anything else executes against canned replies. calls
// counts attempts seen, executed counts calls that took effect.
type fakeTransport struct {
	mu       sync.Mutex
	calls    map[uint32]int
	executed map[uint32]int
	// failBefore(proc, n) returns a transport error to inject on the
	// n-th attempt (0-based) of proc, before execution. failAfter is
	// the same but after execution. status returns a non-OK reply.
	failBefore func(proc uint32, n int) error
	failAfter  func(proc uint32, n int) error
	status     func(proc uint32, n int) error
}

func newFakeTransport() *fakeTransport {
	return &fakeTransport{calls: map[uint32]int{}, executed: map[uint32]int{}}
}

func (f *fakeTransport) call(proc uint32, args func(*xdr.Encoder)) (*xdr.Decoder, error) {
	f.mu.Lock()
	n := f.calls[proc]
	f.calls[proc]++
	f.mu.Unlock()
	if f.failBefore != nil {
		if err := f.failBefore(proc, n); err != nil {
			return nil, err
		}
	}
	if f.status != nil {
		if err := f.status(proc, n); err != nil {
			return nil, statusError{err}
		}
	}
	f.mu.Lock()
	f.executed[proc]++
	f.mu.Unlock()
	if f.failAfter != nil {
		if err := f.failAfter(proc, n); err != nil {
			return nil, err
		}
	}
	// A canned empty-attr reply body satisfies every decoder the
	// tests below exercise (Null decodes nothing).
	e := xdr.NewEncoder()
	encodeFH(e, FH{Vol: 1, File: 2, Gen: 3})
	encodeAttr(e, fsys.FileAttr{})
	return xdr.NewDecoder(e.Bytes()), nil
}

func (f *fakeTransport) close() error { return nil }

func (f *fakeTransport) count(proc uint32) (calls, executed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[proc], f.executed[proc]
}

func retryOver(f *fakeTransport, cfg RetryConfig) *Client {
	cfg = cfg.withDefaults()
	cfg.Backoff = time.Microsecond
	cfg.MaxBackoff = 10 * time.Microsecond
	cfg.Seed = 1
	rt := newRetryTransport(func() (transport, error) { return f, nil }, cfg)
	return &Client{tr: rt}
}

// TestRetryIdempotentConverges drives an idempotent call through a
// transport that fails two of every three attempts: the client must
// converge without surfacing an error, with the reissues counted.
func TestRetryIdempotentConverges(t *testing.T) {
	f := newFakeTransport()
	f.failBefore = func(proc uint32, n int) error {
		if n%3 != 2 {
			return io.ErrUnexpectedEOF
		}
		return nil
	}
	cl := retryOver(f, RetryConfig{Attempts: 4})
	for i := 0; i < 5; i++ {
		if err := cl.Null(); err != nil {
			t.Fatalf("null %d through flaky transport: %v", i, err)
		}
		if _, err := cl.Getattr(FH{Vol: 1, File: 2, Gen: 3}); err != nil {
			t.Fatalf("getattr %d through flaky transport: %v", i, err)
		}
	}
	_, reissues := cl.RetryStats()
	if reissues == 0 {
		t.Fatalf("flaky transport survived without reissues")
	}
	if calls, executed := f.count(ProcGetattr); executed != 5 || calls != 15 {
		t.Fatalf("getattr calls=%d executed=%d, want 15/5", calls, executed)
	}
}

// TestRetryExhaustsAttempts pins the bound: a permanently failing
// transport surfaces the last transport error after cfg.Attempts
// tries, not an infinite loop.
func TestRetryExhaustsAttempts(t *testing.T) {
	f := newFakeTransport()
	f.failBefore = func(uint32, int) error { return io.ErrUnexpectedEOF }
	cl := retryOver(f, RetryConfig{Attempts: 3})
	if err := cl.Null(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("exhausted retry returned %v, want ErrUnexpectedEOF", err)
	}
	if calls, _ := f.count(ProcNull); calls != 3 {
		t.Fatalf("dead transport tried %d times, want 3", calls)
	}
}

// TestRetryNonIdempotentNotReissued is the double-apply guard: a
// Create whose reply frame is lost (the call executed server-side)
// must surface the transport error without a reissue.
func TestRetryNonIdempotentNotReissued(t *testing.T) {
	f := newFakeTransport()
	f.failAfter = func(proc uint32, n int) error {
		if proc == ProcCreate && n == 0 {
			return io.ErrUnexpectedEOF
		}
		return nil
	}
	cl := retryOver(f, RetryConfig{Attempts: 4})
	if _, _, err := cl.Create(FH{Vol: 1, File: 1, Gen: 1}, "x"); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("lost create reply returned %v, want the transport error", err)
	}
	if calls, executed := f.count(ProcCreate); calls != 1 || executed != 1 {
		t.Fatalf("create calls=%d executed=%d, want exactly one (no blind reissue)", calls, executed)
	}
	// The same failure on an idempotent Write IS reissued: an
	// absolute-offset overwrite converges when applied twice.
	f.failAfter = func(proc uint32, n int) error {
		if proc == ProcWrite && n == 0 {
			return io.ErrUnexpectedEOF
		}
		return nil
	}
	if _, err := cl.Write(FH{Vol: 1, File: 2, Gen: 3}, 0, []byte("a")); err != nil {
		t.Fatalf("write through lost reply: %v", err)
	}
	if calls, executed := f.count(ProcWrite); calls != 2 || executed != 2 {
		t.Fatalf("write calls=%d executed=%d, want 2/2 (reissued once)", calls, executed)
	}
}

// TestRetryStatusErrorsNotRetried pins the execution-vs-transport
// split: a server answer — even an error answer — means the call ran,
// so it must come back on the first attempt with the core sentinel
// intact through the wrapper.
func TestRetryStatusErrorsNotRetried(t *testing.T) {
	f := newFakeTransport()
	f.status = func(proc uint32, n int) error {
		if proc == ProcLookup {
			return core.ErrNotFound
		}
		return nil
	}
	cl := retryOver(f, RetryConfig{Attempts: 4})
	if _, _, err := cl.Lookup(FH{Vol: 1, File: 1, Gen: 1}, "ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("lookup returned %v, want ErrNotFound through the retry layer", err)
	}
	if calls, _ := f.count(ProcLookup); calls != 1 {
		t.Fatalf("status error retried: %d calls, want 1", calls)
	}
}

// TestRetryRedials proves a failed transport is dropped and the next
// call dials fresh — the recovery path a server restart exercises.
func TestRetryRedials(t *testing.T) {
	f := newFakeTransport()
	dead := true
	f.failBefore = func(uint32, int) error {
		if dead {
			return io.ErrUnexpectedEOF
		}
		return nil
	}
	var dials int
	rt := newRetryTransport(func() (transport, error) { dials++; return f, nil },
		RetryConfig{Attempts: 2, Backoff: time.Microsecond, MaxBackoff: time.Microsecond, Seed: 1}.withDefaults())
	cl := &Client{tr: rt}
	if err := cl.Null(); err == nil {
		t.Fatalf("dead transport did not surface an error")
	}
	dead = false
	if err := cl.Null(); err != nil {
		t.Fatalf("null after revival: %v", err)
	}
	redials, _ := cl.RetryStats()
	if dials < 2 || redials == 0 {
		t.Fatalf("dials=%d redials=%d, want a fresh dial after the drop", dials, redials)
	}
}
