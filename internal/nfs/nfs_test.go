package nfs_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/pfs"
)

// startServer boots a PFS and its network front-end on loopback.
func startServer(t *testing.T) (*pfs.Server, *nfs.Client) {
	srv, cl, _ := startServerAddr(t)
	return srv, cl
}

func startServerAddr(t *testing.T) (*pfs.Server, *nfs.Client, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pfs.img")
	srv, err := pfs.Open(pfs.Config{Path: path, Blocks: 2048, CacheBlocks: 128})
	if err != nil {
		t.Fatalf("pfs.Open: %v", err)
	}
	addr, err := srv.ServeNFS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeNFS: %v", err)
	}
	cl, err := nfs.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
	})
	return srv, cl, addr
}

func TestNullAndMount(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Null(); err != nil {
		t.Fatalf("Null: %v", err)
	}
	root, attr, err := cl.Mount(1)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	if attr.Type != core.TypeDirectory || root.File != core.RootFile {
		t.Fatalf("root attr %+v handle %+v", attr, root)
	}
	if _, _, err := cl.Mount(99); err != core.ErrNotFound {
		t.Fatalf("mount of missing volume: %v", err)
	}
}

func TestCreateWriteReadOverWire(t *testing.T) {
	_, cl := startServer(t)
	root, _, _ := cl.Mount(1)
	fh, _, err := cl.Create(root, "wire.txt")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	payload := bytes.Repeat([]byte("abcd"), 3000) // 12 KB, 3 blocks
	attr, err := cl.Write(fh, 0, payload)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if attr.Size != int64(len(payload)) {
		t.Fatalf("size after write %d", attr.Size)
	}
	got, err := cl.Read(fh, 0, len(payload))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("wire round trip mismatch")
	}
	// Offset read.
	part, err := cl.Read(fh, 4096, 100)
	if err != nil || !bytes.Equal(part, payload[4096:4196]) {
		t.Fatalf("offset read: %v", err)
	}
}

func TestLookupAndGetattr(t *testing.T) {
	_, cl := startServer(t)
	root, _, _ := cl.Mount(1)
	fh, _, _ := cl.Create(root, "f")
	got, attr, err := cl.Lookup(root, "f")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if got != fh {
		t.Fatalf("lookup handle %+v, want %+v", got, fh)
	}
	attr2, err := cl.Getattr(fh)
	if err != nil || attr2.ID != attr.ID {
		t.Fatalf("Getattr: %+v %v", attr2, err)
	}
	if _, _, err := cl.Lookup(root, "missing"); err != core.ErrNotFound {
		t.Fatalf("missing lookup: %v", err)
	}
}

func TestMkdirReaddirRemove(t *testing.T) {
	_, cl := startServer(t)
	root, _, _ := cl.Mount(1)
	dir, _, err := cl.Mkdir(root, "sub")
	if err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	cl.Create(dir, "x")
	cl.Create(dir, "y")
	ents, err := cl.Readdir(dir)
	if err != nil || len(ents) != 2 || ents[0].Name != "x" || ents[1].Name != "y" {
		t.Fatalf("Readdir: %v %v", ents, err)
	}
	if err := cl.Rmdir(root, "sub"); err != core.ErrNotEmpty {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	cl.Remove(dir, "x")
	cl.Remove(dir, "y")
	if err := cl.Rmdir(root, "sub"); err != nil {
		t.Fatalf("rmdir empty: %v", err)
	}
}

func TestRenameOverWire(t *testing.T) {
	_, cl := startServer(t)
	root, _, _ := cl.Mount(1)
	cl.Create(root, "old")
	if err := cl.Rename(root, "old", root, "new"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, _, err := cl.Lookup(root, "old"); err != core.ErrNotFound {
		t.Fatal("old name survived")
	}
	if _, _, err := cl.Lookup(root, "new"); err != nil {
		t.Fatalf("new name missing: %v", err)
	}
}

func TestSymlinkOverWire(t *testing.T) {
	_, cl := startServer(t)
	root, _, _ := cl.Mount(1)
	fh, attr, err := cl.Symlink(root, "ln", "/target/path")
	if err != nil || attr.Type != core.TypeSymlink {
		t.Fatalf("Symlink: %+v %v", attr, err)
	}
	target, err := cl.Readlink(fh)
	if err != nil || target != "/target/path" {
		t.Fatalf("Readlink: %q %v", target, err)
	}
}

func TestSetSizeTruncates(t *testing.T) {
	_, cl := startServer(t)
	root, _, _ := cl.Mount(1)
	fh, _, _ := cl.Create(root, "t")
	cl.Write(fh, 0, bytes.Repeat([]byte{1}, 8192))
	attr, err := cl.SetSize(fh, 100)
	if err != nil || attr.Size != 100 {
		t.Fatalf("SetSize: %+v %v", attr, err)
	}
	data, _ := cl.Read(fh, 0, 8192)
	if len(data) != 100 {
		t.Fatalf("read after truncate: %d bytes", len(data))
	}
}

func TestStatFS(t *testing.T) {
	_, cl := startServer(t)
	root, _, _ := cl.Mount(1)
	info, err := cl.StatFS(root)
	if err != nil {
		t.Fatalf("StatFS: %v", err)
	}
	if info.BlockSize != core.BlockSize || info.Layout != "lfs" || info.FreeBlocks <= 0 {
		t.Fatalf("FSInfo %+v", info)
	}
}

func TestStaleHandle(t *testing.T) {
	_, cl := startServer(t)
	root, _, _ := cl.Mount(1)
	bad := nfs.FH{Vol: 42, File: 7}
	if _, err := cl.Getattr(bad); err != core.ErrStale {
		t.Fatalf("stale volume: %v", err)
	}
	gone := nfs.FH{Vol: root.Vol, File: 9999}
	if _, err := cl.Getattr(gone); err != core.ErrNotFound {
		t.Fatalf("missing file: %v", err)
	}
}

// TestHammerConcurrentClients drives the server hard from many
// connections at once — each client churns creates, multi-block
// writes, reads, renames and removes in its own directory while
// sharing the volume — and then verifies every surviving file's
// contents. Run under -race this is the server path's concurrency
// certificate.
func TestHammerConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test in -short mode")
	}
	_, cl, addr := startServerAddr(t)
	root, _, err := cl.Mount(1)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	const (
		clients = 8
		rounds  = 12
	)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		id := i
		go func() {
			errs <- func() error {
				c, err := nfs.Dial(addr)
				if err != nil {
					return fmt.Errorf("client %d: dial: %w", id, err)
				}
				defer c.Close()
				dir, _, err := c.Mkdir(root, fmt.Sprintf("c%d", id))
				if err != nil {
					return fmt.Errorf("client %d: mkdir: %w", id, err)
				}
				payload := bytes.Repeat([]byte{byte('A' + id)}, 3*core.BlockSize/2)
				for r := 0; r < rounds; r++ {
					name := fmt.Sprintf("f%d", r)
					fh, _, err := c.Create(dir, name)
					if err != nil {
						return fmt.Errorf("client %d round %d: create: %w", id, r, err)
					}
					if _, err := c.Write(fh, 0, payload); err != nil {
						return fmt.Errorf("client %d round %d: write: %w", id, r, err)
					}
					got, err := c.Read(fh, 0, len(payload))
					if err != nil {
						return fmt.Errorf("client %d round %d: read: %w", id, r, err)
					}
					if !bytes.Equal(got, payload) {
						return fmt.Errorf("client %d round %d: read-back mismatch", id, r)
					}
					switch r % 3 {
					case 0: // keep under a new name
						if err := c.Rename(dir, name, dir, name+".kept"); err != nil {
							return fmt.Errorf("client %d round %d: rename: %w", id, r, err)
						}
					case 1: // delete
						if err := c.Remove(dir, name); err != nil {
							return fmt.Errorf("client %d round %d: remove: %w", id, r, err)
						}
					case 2: // truncate and keep
						if _, err := c.SetSize(fh, int64(core.BlockSize)); err != nil {
							return fmt.Errorf("client %d round %d: setsize: %w", id, r, err)
						}
					}
					if _, err := c.Readdir(dir); err != nil {
						return fmt.Errorf("client %d round %d: readdir: %w", id, r, err)
					}
				}
				// Verify the survivors.
				ents, err := c.Readdir(dir)
				if err != nil {
					return fmt.Errorf("client %d: final readdir: %w", id, err)
				}
				if want := rounds - rounds/3; len(ents) != want {
					return fmt.Errorf("client %d: %d files survived, want %d", id, len(ents), want)
				}
				for _, ent := range ents {
					fh, attr, err := c.Lookup(dir, ent.Name)
					if err != nil {
						return fmt.Errorf("client %d: lookup %s: %w", id, ent.Name, err)
					}
					got, err := c.Read(fh, 0, len(payload))
					if err != nil {
						return fmt.Errorf("client %d: read %s: %w", id, ent.Name, err)
					}
					if !bytes.Equal(got, payload[:attr.Size]) {
						return fmt.Errorf("client %d: %s corrupted", id, ent.Name)
					}
				}
				return nil
			}()
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// The shared root holds exactly the per-client directories.
	ents, err := cl.Readdir(root)
	if err != nil || len(ents) != clients {
		t.Fatalf("root entries %v (err %v), want %d dirs", ents, err, clients)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, cl, addr := startServerAddr(t)
	root, _, _ := cl.Mount(1)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		go func() {
			c2, err := nfs.Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c2.Close()
			fh, _, err := c2.Create(root, name)
			if err != nil {
				done <- err
				return
			}
			if _, err := c2.Write(fh, 0, []byte(name)); err != nil {
				done <- err
				return
			}
			got, err := c2.Read(fh, 0, 10)
			if err == nil && string(got) != name {
				err = core.ErrInval
			}
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent client: %v", err)
		}
	}
	ents, _ := cl.Readdir(root)
	if len(ents) != 4 {
		t.Fatalf("entries %v", ents)
	}
}
