package nfs

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/fsys"
	"repro/internal/xdr"
)

// Client speaks the PFS protocol to a server. It is safe for
// concurrent use. A Dial client serializes calls over its
// connection; a DialPipeline client keeps a window of calls in
// flight, letting the server's per-connection pipeline overlap
// decode and execution.
type Client struct {
	tr transport
}

// transport moves one call's frames and hands back a decoder
// positioned at the results.
type transport interface {
	call(proc uint32, args func(*xdr.Encoder)) (*xdr.Decoder, error)
	close() error
}

// Dial connects to a server with the classic one-call-at-a-time
// transport.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{tr: &syncTransport{conn: conn}}, nil
}

// DialPipeline connects with a pipelined transport: up to window
// calls may be outstanding on the wire at once (callers beyond that
// block), matched to replies by xid. window <= 0 means
// DefaultPipeline.
func DialPipeline(addr string, window int) (*Client, error) {
	if window <= 0 {
		window = DefaultPipeline
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &pipeTransport{
		conn:    conn,
		sem:     make(chan struct{}, window),
		pending: make(map[uint32]chan pipeResult),
		done:    make(chan struct{}),
	}
	go p.readLoop()
	return &Client{tr: p}, nil
}

// Close drops the connection; outstanding pipelined calls fail.
func (c *Client) Close() error { return c.tr.close() }

func (c *Client) call(proc uint32, args func(*xdr.Encoder)) (*xdr.Decoder, error) {
	d, err := c.tr.call(proc, args)
	// The statusError marker only matters inside the transport stack
	// (a retrying transport must not reissue a call the server
	// answered); callers get the bare sentinel.
	var se statusError
	if errors.As(err, &se) {
		return d, se.err
	}
	return d, err
}

// syncTransport performs one RPC at a time under a lock.
type syncTransport struct {
	mu   sync.Mutex
	conn net.Conn
	xid  uint32
}

func (c *syncTransport) close() error { return c.conn.Close() }

// call performs one RPC; args encodes after the header, and the
// returned decoder is positioned at the results.
func (c *syncTransport) call(proc uint32, args func(*xdr.Encoder)) (*xdr.Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.xid++
	e := xdr.NewEncoder()
	e.Uint32(c.xid)
	e.Uint32(MsgCall)
	e.Uint32(proc)
	if args != nil {
		args(e)
	}
	if err := writeFrame(c.conn, e.Bytes()); err != nil {
		return nil, err
	}
	frame, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	d := xdr.NewDecoder(frame)
	xid, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if xid != c.xid {
		return nil, fmt.Errorf("nfs: reply xid %d, want %d", xid, c.xid)
	}
	if dir, err := d.Uint32(); err != nil || dir != MsgReply {
		return nil, fmt.Errorf("nfs: bad reply direction")
	}
	status, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if status != OK {
		return nil, statusError{ErrorOf(status)}
	}
	return d, nil
}

// pipeTransport keeps up to cap(sem) calls outstanding, writing
// frames under wmu and matching replies to callers by xid on a
// dedicated reader goroutine.
type pipeTransport struct {
	conn net.Conn
	sem  chan struct{} // outstanding-call window
	wmu  sync.Mutex    // serializes frame writes

	mu      sync.Mutex
	xid     uint32
	pending map[uint32]chan pipeResult
	err     error // sticky transport failure

	done chan struct{} // closed when the reader exits
}

type pipeResult struct {
	d   *xdr.Decoder
	err error
}

func (p *pipeTransport) close() error {
	err := p.conn.Close()
	<-p.done // reader has failed all pending calls
	return err
}

func (p *pipeTransport) call(proc uint32, args func(*xdr.Encoder)) (*xdr.Decoder, error) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()

	p.mu.Lock()
	if p.err != nil {
		p.mu.Unlock()
		return nil, p.err
	}
	p.xid++
	xid := p.xid
	ch := make(chan pipeResult, 1)
	p.pending[xid] = ch
	p.mu.Unlock()

	e := xdr.NewEncoder()
	e.Uint32(xid)
	e.Uint32(MsgCall)
	e.Uint32(proc)
	if args != nil {
		args(e)
	}
	p.wmu.Lock()
	err := writeFrame(p.conn, e.Bytes())
	p.wmu.Unlock()
	if err != nil {
		p.mu.Lock()
		delete(p.pending, xid)
		p.mu.Unlock()
		return nil, err
	}
	res := <-ch
	if res.err != nil {
		return nil, res.err
	}
	return res.d, nil
}

// readLoop demultiplexes replies to their callers until the
// connection dies, then fails every outstanding call.
func (p *pipeTransport) readLoop() {
	defer close(p.done)
	for {
		frame, err := readFrame(p.conn)
		if err != nil {
			p.failAll(err)
			return
		}
		d := xdr.NewDecoder(frame)
		xid, err := d.Uint32()
		if err != nil {
			p.failAll(err)
			return
		}
		if dir, err := d.Uint32(); err != nil || dir != MsgReply {
			p.failAll(fmt.Errorf("nfs: bad reply direction"))
			return
		}
		status, err := d.Uint32()
		if err != nil {
			p.failAll(err)
			return
		}
		p.mu.Lock()
		ch := p.pending[xid]
		delete(p.pending, xid)
		p.mu.Unlock()
		if ch == nil {
			p.failAll(fmt.Errorf("nfs: reply for unknown xid %d", xid))
			return
		}
		if status != OK {
			ch <- pipeResult{err: statusError{ErrorOf(status)}}
		} else {
			ch <- pipeResult{d: d}
		}
	}
}

func (p *pipeTransport) failAll(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	for xid, ch := range p.pending {
		ch <- pipeResult{err: err}
		delete(p.pending, xid)
	}
	p.mu.Unlock()
}

// Null pings the server.
func (c *Client) Null() error {
	_, err := c.call(ProcNull, nil)
	return err
}

// Mount returns the root handle and attributes of a volume.
func (c *Client) Mount(vol core.VolumeID) (FH, fsys.FileAttr, error) {
	d, err := c.call(ProcMount, func(e *xdr.Encoder) { e.Uint32(uint32(vol)) })
	if err != nil {
		return FH{}, fsys.FileAttr{}, err
	}
	return decodeFHAttr(d)
}

// Getattr fetches attributes.
func (c *Client) Getattr(fh FH) (fsys.FileAttr, error) {
	d, err := c.call(ProcGetattr, func(e *xdr.Encoder) { encodeFH(e, fh) })
	if err != nil {
		return fsys.FileAttr{}, err
	}
	return decodeAttr(d)
}

// SetSize truncates or extends a file.
func (c *Client) SetSize(fh FH, size int64) (fsys.FileAttr, error) {
	d, err := c.call(ProcSetattr, func(e *xdr.Encoder) {
		encodeFH(e, fh)
		e.Int64(size)
	})
	if err != nil {
		return fsys.FileAttr{}, err
	}
	return decodeAttr(d)
}

// Lookup resolves name in directory dir.
func (c *Client) Lookup(dir FH, name string) (FH, fsys.FileAttr, error) {
	d, err := c.call(ProcLookup, func(e *xdr.Encoder) {
		encodeFH(e, dir)
		e.String(name)
	})
	if err != nil {
		return FH{}, fsys.FileAttr{}, err
	}
	return decodeFHAttr(d)
}

// Read fetches up to count bytes at off.
func (c *Client) Read(fh FH, off int64, count int) ([]byte, error) {
	d, err := c.call(ProcRead, func(e *xdr.Encoder) {
		encodeFH(e, fh)
		e.Int64(off)
		e.Uint32(uint32(count))
	})
	if err != nil {
		return nil, err
	}
	return d.Opaque()
}

// Write stores data at off and returns the new attributes.
func (c *Client) Write(fh FH, off int64, data []byte) (fsys.FileAttr, error) {
	d, err := c.call(ProcWrite, func(e *xdr.Encoder) {
		encodeFH(e, fh)
		e.Int64(off)
		e.Opaque(data)
	})
	if err != nil {
		return fsys.FileAttr{}, err
	}
	return decodeAttr(d)
}

// Create makes a regular file in dir.
func (c *Client) Create(dir FH, name string) (FH, fsys.FileAttr, error) {
	return c.makeNode(ProcCreate, dir, name)
}

// Mkdir makes a directory in dir.
func (c *Client) Mkdir(dir FH, name string) (FH, fsys.FileAttr, error) {
	return c.makeNode(ProcMkdir, dir, name)
}

func (c *Client) makeNode(proc uint32, dir FH, name string) (FH, fsys.FileAttr, error) {
	d, err := c.call(proc, func(e *xdr.Encoder) {
		encodeFH(e, dir)
		e.String(name)
	})
	if err != nil {
		return FH{}, fsys.FileAttr{}, err
	}
	return decodeFHAttr(d)
}

// Remove unlinks a file from dir.
func (c *Client) Remove(dir FH, name string) error {
	_, err := c.call(ProcRemove, func(e *xdr.Encoder) {
		encodeFH(e, dir)
		e.String(name)
	})
	return err
}

// Rmdir removes an empty directory from dir.
func (c *Client) Rmdir(dir FH, name string) error {
	_, err := c.call(ProcRmdir, func(e *xdr.Encoder) {
		encodeFH(e, dir)
		e.String(name)
	})
	return err
}

// Rename moves fromName in fromDir to toName in toDir.
func (c *Client) Rename(fromDir FH, fromName string, toDir FH, toName string) error {
	_, err := c.call(ProcRename, func(e *xdr.Encoder) {
		encodeFH(e, fromDir)
		e.String(fromName)
		encodeFH(e, toDir)
		e.String(toName)
	})
	return err
}

// DirEntry is one readdir result.
type DirEntry struct {
	Name string
	ID   core.FileID
}

// Readdir lists dir.
func (c *Client) Readdir(dir FH) ([]DirEntry, error) {
	d, err := c.call(ProcReaddir, func(e *xdr.Encoder) { encodeFH(e, dir) })
	if err != nil {
		return nil, err
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		name, err := d.String()
		if err != nil {
			return nil, err
		}
		id, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		out = append(out, DirEntry{Name: name, ID: core.FileID(id)})
	}
	return out, nil
}

// Symlink creates a symbolic link in dir.
func (c *Client) Symlink(dir FH, name, target string) (FH, fsys.FileAttr, error) {
	d, err := c.call(ProcSymlink, func(e *xdr.Encoder) {
		encodeFH(e, dir)
		e.String(name)
		e.String(target)
	})
	if err != nil {
		return FH{}, fsys.FileAttr{}, err
	}
	return decodeFHAttr(d)
}

// Readlink fetches a symlink's target.
func (c *Client) Readlink(fh FH) (string, error) {
	d, err := c.call(ProcReadlink, func(e *xdr.Encoder) { encodeFH(e, fh) })
	if err != nil {
		return "", err
	}
	return d.String()
}

// FSInfo is the statfs result.
type FSInfo struct {
	BlockSize  uint32
	FreeBlocks int64
	Layout     string
}

// StatFS reports volume capacity.
func (c *Client) StatFS(fh FH) (FSInfo, error) {
	d, err := c.call(ProcStatFS, func(e *xdr.Encoder) { encodeFH(e, fh) })
	if err != nil {
		return FSInfo{}, err
	}
	bs, err := d.Uint32()
	if err != nil {
		return FSInfo{}, err
	}
	free, err := d.Int64()
	if err != nil {
		return FSInfo{}, err
	}
	lay, err := d.String()
	if err != nil {
		return FSInfo{}, err
	}
	return FSInfo{BlockSize: bs, FreeBlocks: free, Layout: lay}, nil
}

func decodeFHAttr(d *xdr.Decoder) (FH, fsys.FileAttr, error) {
	fh, err := decodeFH(d)
	if err != nil {
		return FH{}, fsys.FileAttr{}, err
	}
	attr, err := decodeAttr(d)
	return fh, attr, err
}
