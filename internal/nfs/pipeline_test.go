package nfs_test

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/nfs"
	"repro/internal/xdr"
)

// rawConn speaks the wire format directly, bypassing the client
// transports, so tests control exactly what is on the wire.
type rawConn struct {
	t    *testing.T
	conn net.Conn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn}
}

func (r *rawConn) send(xid, proc uint32, args func(*xdr.Encoder)) {
	e := xdr.NewEncoder()
	e.Uint32(xid)
	e.Uint32(0) // MsgCall
	e.Uint32(proc)
	if args != nil {
		args(e)
	}
	payload := e.Bytes()
	hdr := []byte{byte(len(payload) >> 24), byte(len(payload) >> 16), byte(len(payload) >> 8), byte(len(payload))}
	if _, err := r.conn.Write(append(hdr, payload...)); err != nil {
		r.t.Errorf("send: %v", err)
	}
}

// recvXID reads one reply frame and returns its xid.
func (r *rawConn) recvXID() (uint32, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.conn, hdr[:]); err != nil {
		return 0, err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.conn, payload); err != nil {
		return 0, err
	}
	d := xdr.NewDecoder(payload)
	xid, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	return xid, nil
}

// encodeRawFH mirrors the wire handle layout (vol uint32, file
// uint64) without the unexported helpers.
func encodeRawFH(e *xdr.Encoder, fh nfs.FH) {
	e.Uint32(uint32(fh.Vol))
	e.Uint64(uint64(fh.File))
}

// Pipelined calls on one connection must come back in request
// order, even when a mix of cheap and expensive procedures is
// queued and several connections hammer the server concurrently.
func TestPipelineReplyOrdering(t *testing.T) {
	_, cl, addr := startServerAddr(t)
	root, _, err := cl.Mount(1)
	if err != nil {
		t.Fatalf("mount: %v", err)
	}
	fh, _, err := cl.Create(root, "ordered.dat")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	payload := bytes.Repeat([]byte("x"), 32<<10)
	if _, err := cl.Write(fh, 0, payload); err != nil {
		t.Fatalf("write: %v", err)
	}

	const conns = 4
	const calls = 120
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		raw := dialRaw(t, addr)
		go func() {
			defer wg.Done()
			// Writer: fire the whole pipeline without waiting.
			go func() {
				for i := uint32(1); i <= calls; i++ {
					switch i % 3 {
					case 0:
						raw.send(i, nfs.ProcNull, nil)
					case 1:
						raw.send(i, nfs.ProcRead, func(e *xdr.Encoder) {
							encodeRawFH(e, fh)
							e.Int64(0)
							e.Uint32(32 << 10)
						})
					default:
						raw.send(i, nfs.ProcGetattr, func(e *xdr.Encoder) { encodeRawFH(e, fh) })
					}
				}
			}()
			for i := uint32(1); i <= calls; i++ {
				xid, err := raw.recvXID()
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				if xid != i {
					t.Errorf("reply %d has xid %d: replies out of order", i, xid)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// The pipelined client transport demultiplexes concurrent callers
// on one connection correctly: every caller gets its own reply.
func TestPipeClientConcurrent(t *testing.T) {
	_, cl, addr := startServerAddr(t)
	root, _, _ := cl.Mount(1)
	// One file per worker with distinct content.
	const workers = 8
	fhs := make([]nfs.FH, workers)
	for i := range fhs {
		fh, _, err := cl.Create(root, fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := cl.Write(fh, 0, bytes.Repeat([]byte{byte('a' + i)}, 4096)); err != nil {
			t.Fatalf("write: %v", err)
		}
		fhs[i] = fh
	}
	pc, err := nfs.DialPipeline(addr, 4)
	if err != nil {
		t.Fatalf("DialPipeline: %v", err)
	}
	defer pc.Close()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			want := bytes.Repeat([]byte{byte('a' + w)}, 4096)
			for i := 0; i < 50; i++ {
				got, err := pc.Read(fhs[w], 0, 4096)
				if err != nil {
					t.Errorf("worker %d read: %v", w, err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("worker %d got another worker's data", w)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Drain under load: calls admitted into a connection's pipeline
// before the drain all complete with replies before Drain returns;
// nothing new is admitted afterwards.
func TestDrainUnderLoadPipelined(t *testing.T) {
	srv, cl, _ := startServerAddr(t)
	root, _, _ := cl.Mount(1)
	fh, _, err := cl.Create(root, "drain.dat")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cl.Write(fh, 0, bytes.Repeat([]byte("d"), 16<<10)); err != nil {
		t.Fatalf("write: %v", err)
	}
	// A dedicated pipelined server front-end we can Drain directly.
	net2, err := nfs.ServeOpts(srv.K, srv.FS, "127.0.0.1:0", nfs.Options{Pipeline: 8})
	if err != nil {
		t.Fatalf("ServeOpts: %v", err)
	}
	defer net2.Close()

	raw := dialRaw(t, net2.Addr())
	const burst = 6
	for i := uint32(1); i <= burst; i++ {
		raw.send(i, nfs.ProcRead, func(e *xdr.Encoder) {
			encodeRawFH(e, fh)
			e.Int64(0)
			e.Uint32(16 << 10)
		})
	}
	// First reply proves the burst is admitted and executing.
	if xid, err := raw.recvXID(); err != nil || xid != 1 {
		t.Fatalf("first reply: xid %d err %v", xid, err)
	}
	drained := make(chan struct{})
	go func() {
		net2.Drain()
		close(drained)
	}()
	// Every admitted call's reply still arrives, in order.
	for i := uint32(2); i <= burst; i++ {
		xid, err := raw.recvXID()
		if err != nil {
			t.Fatalf("reply %d after drain: %v", i, err)
		}
		if xid != i {
			t.Fatalf("reply %d has xid %d", i, xid)
		}
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after in-flight calls completed")
	}
	// The drained connection is closed once its pipeline empties:
	// nothing new gets a reply. (The write itself may fail — the
	// server has already closed the connection — which is equally
	// conclusive.)
	e := xdr.NewEncoder()
	e.Uint32(burst + 1)
	e.Uint32(0)
	e.Uint32(nfs.ProcNull)
	payload := e.Bytes()
	hdr := []byte{0, 0, byte(len(payload) >> 8), byte(len(payload))}
	if _, err := raw.conn.Write(append(hdr, payload...)); err == nil {
		if xid, err := raw.recvXID(); err == nil {
			t.Fatalf("got reply xid %d after drain", xid)
		}
	}
}
