package nfs

import (
	"repro/internal/stats"
)

// ServerStats is the NFS server's statistics plug-in: per-procedure
// call counts and latency (admission to reply, so pipeline queueing
// is included), non-OK replies, and the pipeline-depth distribution
// observed at each admission.
type ServerStats struct {
	Calls   *stats.Group
	Errors  *stats.Counter
	Depth   *stats.Histogram
	Latency [NumProcs]*stats.LogHistogram
}

func newServerStats() *ServerStats {
	st := &ServerStats{
		Calls:  stats.NewGroup("nfs.calls"),
		Errors: stats.NewCounter("nfs.errors"),
		Depth:  stats.NewHistogram("nfs.pipeline_depth", 0, 1, 2, 4, 8, 16, 32),
	}
	for i := 0; i < NumProcs; i++ {
		st.Calls.Member(procNames[i])
		st.Latency[i] = stats.NewLatencyHistogram("nfs.latency." + procNames[i])
	}
	return st
}

// Register adds the sources to set.
func (st *ServerStats) Register(set *stats.Set) {
	set.Add(st.Calls)
	set.Add(st.Errors)
	set.Add(st.Depth)
	for _, h := range st.Latency {
		set.Add(h)
	}
}
