package nfs_test

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/nfs"
	"repro/internal/pfs"
	"repro/internal/sched"
)

// TestStaleHandleAfterReuse pins the generation check on the layout
// that recycles inode numbers: after remove+create reuses the slot,
// the old handle must answer ErrStale — never the new file's bytes.
func TestStaleHandleAfterReuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	srv, err := pfs.Open(pfs.Config{Path: path, Blocks: 2048, CacheBlocks: 128, Layout: "ffs"})
	if err != nil {
		t.Fatalf("pfs.Open: %v", err)
	}
	defer srv.Close()
	addr, err := srv.ServeNFS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeNFS: %v", err)
	}
	cl, err := nfs.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	root, _, err := cl.Mount(1)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}

	old, _, err := cl.Create(root, "a")
	if err != nil {
		t.Fatalf("Create a: %v", err)
	}
	if _, err := cl.Write(old, 0, bytes.Repeat([]byte{0xAA}, core.BlockSize)); err != nil {
		t.Fatalf("Write a: %v", err)
	}
	if err := cl.Remove(root, "a"); err != nil {
		t.Fatalf("Remove a: %v", err)
	}
	fresh, _, err := cl.Create(root, "b")
	if err != nil {
		t.Fatalf("Create b: %v", err)
	}
	if fresh.File != old.File {
		t.Fatalf("ffs did not reuse inode %d (got %d); the aliasing case is not exercised", old.File, fresh.File)
	}
	if fresh.Gen == old.Gen {
		t.Fatalf("reused inode %d kept generation %d", fresh.File, fresh.Gen)
	}
	if _, err := cl.Getattr(old); err != core.ErrStale {
		t.Fatalf("getattr via reused handle: %v, want ErrStale", err)
	}
	if _, err := cl.Read(old, 0, core.BlockSize); err != core.ErrStale {
		t.Fatalf("read via reused handle: %v, want ErrStale", err)
	}
	if _, err := cl.Getattr(fresh); err != nil {
		t.Fatalf("getattr via fresh handle: %v", err)
	}
}

// wfile is one pre-crash file a worker journaled: its name, the handle
// the server minted, its content tag, and what the worker knows was
// acknowledged before the cut.
type wfile struct {
	name        string
	fh          nfs.FH
	tag         byte
	writeAcked  bool
	removeAcked bool
	loose       bool // touched by an unacknowledged op: state indeterminate
}

// TestNFSCrashSemantics cuts the power under pipelined NFS clients,
// recovers (roll-forward + NVRAM/intent replay), restarts the network
// front-end over the recovered file system, and checks the protocol's
// crash contract: every acknowledged create/write/remove is reflected,
// and every pre-crash handle either still names its file or is cleanly
// stale — recovery may renumber an inode, but a handle must never
// alias another file's bytes.
func TestNFSCrashSemantics(t *testing.T) {
	dir := t.TempDir()
	cfg := pfs.Config{
		Path:        filepath.Join(dir, "crash.img"),
		Blocks:      2048,
		Volumes:     1,
		CacheBlocks: 96,
		CacheShards: 1,
		Flush:       cache.NVRAMWhole(12),
		SegBlocks:   64,
		Layout:      "ffs",
		Seed:        11,
		Fault:       &device.FaultConfig{Seed: 11},
	}
	srv, err := pfs.Open(cfg)
	if err != nil {
		t.Fatalf("pfs.Open: %v", err)
	}
	addr, err := srv.ServeNFS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeNFS: %v", err)
	}
	cl, err := nfs.DialPipeline(addr, 8)
	if err != nil {
		t.Fatalf("DialPipeline: %v", err)
	}
	root, _, err := cl.Mount(1)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	if err := srv.Sync(); err != nil {
		t.Fatalf("baseline sync: %v", err)
	}

	// Arm the cut, counting device I/Os from the durable baseline.
	plan := device.NewFaultPlan(device.FaultConfig{Seed: 11, CutAfterIO: 40, CutTearsWrite: true})
	plan.OnCut(srv.Cache.PowerOff)
	for _, drv := range srv.Drivers {
		drv.SetInjector(plan)
	}

	// Pipelined churn from several workers sharing the connection:
	// create+write+remove streams racing the cut.
	const workers = 4
	journals := make([][]wfile, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var files []wfile
			defer func() { journals[id] = files }()
			for r := 0; r < 200 && !plan.HasCut(); r++ {
				name := fmt.Sprintf("w%d-%d", id, r)
				tag := byte(10 + (id*50+r)%200)
				fh, _, err := cl.Create(root, name)
				if err != nil {
					return
				}
				f := wfile{name: name, fh: fh, tag: tag}
				if plan.HasCut() {
					f.loose = true
					files = append(files, f)
					return
				}
				_, werr := cl.Write(fh, 0, bytes.Repeat([]byte{tag}, core.BlockSize))
				if werr == nil && !plan.HasCut() {
					f.writeAcked = true
				} else {
					f.loose = true
					files = append(files, f)
					return
				}
				files = append(files, f)
				if r%3 == 2 && r >= 1 {
					victim := &files[len(files)-2]
					err := cl.Remove(root, victim.name)
					if err == nil && !plan.HasCut() {
						victim.removeAcked = true
					} else {
						victim.loose = true
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if !plan.HasCut() {
		plan.Cut() // workload drained first: crash at quiescence
	}
	cl.Close()
	rep := srv.Crash()

	// Power restored: recover over the same images and re-serve.
	cfg.Fault = nil
	cfg.Recover = true
	srv2, err := pfs.Open(cfg)
	if err != nil {
		t.Fatalf("recovery mount: %v", err)
	}
	defer srv2.Close()
	err = srv2.Do(func(st sched.Task) error {
		if _, err := srv2.FS.ReplayNVRAM(st, rep.Survivors, rep.Intents); err != nil {
			return err
		}
		return srv2.FS.SyncAll(st)
	})
	if err != nil {
		t.Fatalf("NVRAM replay: %v", err)
	}
	addr2, err := srv2.ServeNFS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeNFS after recovery: %v", err)
	}
	cl2, err := nfs.Dial(addr2)
	if err != nil {
		t.Fatalf("Dial after recovery: %v", err)
	}
	defer cl2.Close()
	root2, _, err := cl2.Mount(1)
	if err != nil {
		t.Fatalf("Mount after recovery: %v", err)
	}

	checked := 0
	for _, files := range journals {
		for _, f := range files {
			if f.loose {
				continue // indeterminate at the cut: either outcome is legal
			}
			if f.removeAcked {
				// An acknowledged remove must hold, and the dead handle
				// must be stale — not an alias for whoever reuses the slot.
				if _, _, err := cl2.Lookup(root2, f.name); err != core.ErrNotFound {
					t.Fatalf("%s: removed file resurrected (lookup: %v)", f.name, err)
				}
				if _, err := cl2.Getattr(f.fh); err != core.ErrStale && err != core.ErrNotFound {
					t.Fatalf("%s: dead handle answered %v, want stale", f.name, err)
				}
				checked++
				continue
			}
			// Acknowledged create+write: the file must exist with its
			// bytes. The pre-crash handle is valid only if recovery kept
			// the inode's generation; a replayed create renumbers and the
			// old handle must then be cleanly stale.
			fh, attr, err := cl2.Lookup(root2, f.name)
			if err != nil {
				t.Fatalf("%s: acknowledged create lost (lookup: %v)", f.name, err)
			}
			if f.writeAcked {
				got, err := cl2.Read(fh, 0, core.BlockSize)
				if err != nil {
					t.Fatalf("%s: read after recovery: %v", f.name, err)
				}
				want := bytes.Repeat([]byte{f.tag}, core.BlockSize)
				if !bytes.Equal(got, want[:len(got)]) || len(got) != core.BlockSize {
					t.Fatalf("%s: acknowledged bytes corrupted after recovery", f.name)
				}
			}
			_, gerr := cl2.Getattr(f.fh)
			switch {
			case gerr == nil:
				if attr.Gen != f.fh.Gen || fh.File != f.fh.File {
					t.Fatalf("%s: old handle valid but file renumbered (gen %d vs %d)",
						f.name, f.fh.Gen, attr.Gen)
				}
			case errors.Is(gerr, core.ErrStale) || errors.Is(gerr, core.ErrNotFound):
				if attr.Gen == f.fh.Gen && fh.File == f.fh.File {
					t.Fatalf("%s: handle stale but inode unchanged", f.name)
				}
			default:
				t.Fatalf("%s: old handle answered %v", f.name, gerr)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("cut tripped before any operation was acknowledged; nothing verified")
	}
}
