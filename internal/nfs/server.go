package nfs

import (
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/fsys"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/xdr"
)

// Server is the PFS client interface: it listens on TCP, spawns a
// framework thread per connection, and dispatches each call onto the
// abstract client interface — the derived-class structure of the
// paper's NFS component.
//
// Each connection is served by two tasks: a reader that decodes the
// next call off the socket while the previous one executes, and an
// executor that dispatches the queued calls strictly in arrival
// order and writes the replies — so replies stay in per-connection
// request order while decode, execution and the client's own
// think time overlap. The queue depth is Options.Pipeline.
type Server struct {
	fs     *fsys.FS
	k      sched.Kernel
	ln     net.Listener
	window int
	st     *ServerStats
	tracer *telemetry.Tracer // nil = untraced

	// vectored enables zero-copy read replies: ProcRead borrows the
	// cache frames (fsys.ReadBorrowAt) and writev's them straight to
	// the socket instead of copying into a reply buffer.
	vectored bool

	mu        sync.Mutex
	closed    bool
	draining  bool
	conns     map[net.Conn]*connState
	inflightN int // admitted calls not yet replied, server-wide
	inflight  sync.WaitGroup
}

// call is one admitted request: the decoded frame plus its admission
// time, from which the executor derives the pipeline-queue wait.
type call struct {
	frame []byte
	at    sched.Time
}

// connState counts a connection's admitted calls (decoded, queued or
// executing, reply not yet written), so a drain can cut idle
// connections immediately and let busy ones finish their pipeline.
type connState struct {
	inflight int
}

// Options tunes the server.
type Options struct {
	// Pipeline is the per-connection window: how many calls may be
	// admitted at once (one executing plus the rest decoded and
	// queued). 1 disables pipelining — the classic one-call-at-a-
	// time loop; 0 means DefaultPipeline.
	Pipeline int
	// Tracer, when non-nil, traces every call: the executor binds an
	// op to its task so the layers below charge their stage time, and
	// slow calls land in the tracer's ring.
	Tracer *telemetry.Tracer
}

// DefaultPipeline is the per-connection window Serve uses.
const DefaultPipeline = 8

// Serve starts a server on addr (e.g. "127.0.0.1:0") over the given
// front-end with default options. It returns once the listener is
// ready.
func Serve(k sched.Kernel, fs *fsys.FS, addr string) (*Server, error) {
	return ServeOpts(k, fs, addr, Options{})
}

// ServeOpts is Serve with explicit options.
func ServeOpts(k sched.Kernel, fs *fsys.FS, addr string, o Options) (*Server, error) {
	if o.Pipeline <= 0 {
		o.Pipeline = DefaultPipeline
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{fs: fs, k: k, ln: ln, window: o.Pipeline, st: newServerStats(),
		tracer: o.Tracer, conns: make(map[net.Conn]*connState)}
	k.Go("nfs.accept", s.acceptLoop)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetVectored enables zero-copy read replies (see the vectored
// field). Takes effect for subsequent calls; set it before serving
// traffic. The front-end must have vectoring on too, or ProcRead
// falls back to the copying path.
func (s *Server) SetVectored(on bool) { s.vectored = on }

// VectoredIO reports whether zero-copy read replies are enabled.
func (s *Server) VectoredIO() bool { return s.vectored }

// ServerStats returns the statistics plug-in.
func (s *Server) ServerStats() *ServerStats { return s.st }

// Stats registers the server's sources with set.
func (s *Server) Stats(set *stats.Set) { s.st.Register(set) }

// Connections returns the number of open connections.
func (s *Server) Connections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// InflightCalls returns the number of admitted calls whose reply has
// not been written yet, across all connections.
func (s *Server) InflightCalls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflightN
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close stops the listener and all connections immediately,
// dropping whatever is in flight.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return s.ln.Close()
}

// Drain is the graceful half of shutdown: it stops accepting new
// connections and new calls, closes idle connections, and blocks
// until every in-flight call has completed and its reply has been
// written. Busy connections close themselves right after that reply.
// The file system is quiescent (from the network's point of view)
// when Drain returns.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	var idle []net.Conn
	for c, st := range s.conns {
		if st.inflight == 0 {
			idle = append(idle, c)
		}
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range idle {
		c.Close() // unblocks the conn task parked in readFrame
	}
	s.inflight.Wait()
}

func (s *Server) acceptLoop(t sched.Task) {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = &connState{}
		s.mu.Unlock()
		c := conn
		s.k.Go("nfs.conn", func(ct sched.Task) {
			defer func() {
				c.Close()
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
			}()
			s.serveConn(ct, c)
		})
	}
}

// serveConn is a connection's reader half: it decodes frames off the
// socket and queues them for the executor. Admission (the in-flight
// count) happens here, so Drain's accounting covers
// queued-but-not-yet-executing calls too. The slots semaphore is
// acquired before the socket read and released by the executor after
// the reply, so at most `window` calls are admitted at once — and
// with a window of 1 the reader does not even touch the socket while
// a call executes, exactly the classic one-call-at-a-time loop.
func (s *Server) serveConn(t sched.Task, conn net.Conn) {
	queue := make(chan call, s.window) // slots bounds it; sends never block
	slots := make(chan struct{}, s.window)
	done := make(chan struct{})
	s.k.Go("nfs.conn.exec", func(et sched.Task) {
		s.execLoop(et, conn, queue, slots, done)
	})
	for {
		slots <- struct{}{} // wait for an admission slot
		frame, err := readFrame(conn)
		if err != nil {
			break
		}
		// A drained server serves what is already admitted but
		// starts nothing new.
		s.mu.Lock()
		st := s.conns[conn]
		if s.draining || s.closed || st == nil {
			s.mu.Unlock()
			break
		}
		st.inflight++
		depth := st.inflight
		s.inflightN++
		s.inflight.Add(1)
		s.mu.Unlock()
		s.st.Depth.Observe(int64(depth))
		queue <- call{frame: frame, at: s.k.Now()}
	}
	close(queue)
	<-done
}

// execLoop is a connection's executor half: it dispatches admitted
// calls strictly in arrival order and writes each reply before
// starting the next, keeping per-connection replies ordered. After a
// protocol or write error it keeps consuming the queue (so the
// reader is never stuck on a full window) but only settles the
// accounting.
func (s *Server) execLoop(t sched.Task, conn net.Conn, queue chan call, slots chan struct{}, done chan struct{}) {
	defer close(done)
	failed := false
	for c := range queue {
		if !failed && !s.execute(t, conn, c) {
			failed = true
			conn.Close() // unblocks the reader; repeat closes are harmless
		}
		s.finishCall(conn)
		<-slots // free the admission slot: the reader may read again
	}
}

// execute runs one call: decode, dispatch onto the abstract client
// interface, write the reply. It reports whether the connection is
// still usable.
func (s *Server) execute(t sched.Task, conn net.Conn, c call) bool {
	d := xdr.NewDecoder(c.frame)
	xid, err := d.Uint32()
	if err != nil {
		return false
	}
	dir, err := d.Uint32()
	if err != nil || dir != MsgCall {
		return false
	}
	proc, err := d.Uint32()
	if err != nil {
		return false
	}
	// The traced op starts at admission, so the pipeline-queue wait
	// (dispatch start minus admission) is its first stage; the layers
	// below find the op through the task binding.
	op := s.tracer.Begin(ProcName(proc), c.at)
	if op != nil {
		op.Add(telemetry.StageQueue, s.k.Now().Sub(c.at))
		s.tracer.Bind(t, op)
	}
	e := xdr.NewEncoder()
	e.Uint32(xid)
	e.Uint32(MsgReply)
	var release func(sched.Task)
	status := s.dispatch(t, proc, d, e, &release)
	if op != nil {
		s.tracer.Unbind(t)
	}
	end := s.k.Now()
	s.tracer.Finish(op, end)
	if int(proc) < NumProcs {
		s.st.Calls.Add(int(proc), 1)
		s.st.Latency[proc].Observe(end.Sub(c.at))
	}
	if status != OK {
		s.st.Errors.Inc()
	}
	// Splice the status in after (xid, MsgReply): emit a fresh head
	// with the final status word and strip the placeholder from the
	// body. The body may carry segments borrowed from cache frames
	// (a zero-copy read reply); one vectored write sends head, owned
	// pieces and frames alike, then the loans are returned.
	head := xdr.NewEncoder()
	head.Uint32(xid)
	head.Uint32(MsgReply)
	head.Uint32(status)
	body := e.Parts()
	body[0] = body[0][8:] // drop the placeholder (xid, MsgReply)
	parts := append([][]byte{head.Bytes()}, body...)
	err = writeFrameVec(conn, parts)
	if release != nil {
		release(t)
	}
	return err == nil
}

// finishCall settles one admitted call's accounting; a draining
// connection closes itself right after its last reply.
func (s *Server) finishCall(conn net.Conn) {
	s.mu.Lock()
	closeNow := false
	if st := s.conns[conn]; st != nil {
		st.inflight--
		closeNow = s.draining && st.inflight == 0
	}
	s.inflightN--
	s.mu.Unlock()
	s.inflight.Done()
	if closeNow {
		conn.Close()
	}
}

// resolve maps a handle to its volume and validates the generation:
// a handle minted for an earlier life of the inode slot (removed and
// re-created, or re-allocated by crash recovery) is cleanly stale,
// never an alias for the slot's current file. Handles without a
// generation (zero) skip the check.
func (s *Server) resolve(t sched.Task, fh FH) (*fsys.Volume, uint32) {
	v := s.fs.Vol(fh.Vol)
	if v == nil {
		return nil, ErrStale
	}
	if fh.Gen != 0 {
		gen, err := v.GenOf(t, fh.File)
		if err != nil {
			return nil, StatusOf(err)
		}
		if gen != fh.Gen {
			return nil, ErrStale
		}
	}
	return v, OK
}

// dispatch decodes args from d, performs the procedure, encodes
// results into e (after an 8-byte placeholder the caller strips),
// and returns the status. A procedure that lends resources into the
// reply (a zero-copy read borrowing cache frames) stores a cleanup
// in *rel; the caller runs it after the reply is on the wire.
func (s *Server) dispatch(t sched.Task, proc uint32, d *xdr.Decoder, e *xdr.Encoder, rel *func(sched.Task)) uint32 {
	switch proc {
	case ProcNull:
		return OK

	case ProcMount:
		volID, err := d.Uint32()
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(core.VolumeID(volID))
		if v == nil {
			return ErrNoent
		}
		root := v.Root()
		attr, err := v.StatByID(t, root)
		if err != nil {
			return StatusOf(err)
		}
		encodeFH(e, FH{Vol: core.VolumeID(volID), File: root, Gen: attr.Gen})
		encodeAttr(e, attr)
		return OK

	case ProcGetattr:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		v, st := s.resolve(t, fh)
		if st != OK {
			return st
		}
		attr, err := v.StatByID(t, fh.File)
		if err != nil {
			return StatusOf(err)
		}
		encodeAttr(e, attr)
		return OK

	case ProcSetattr:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		size, err := d.Int64()
		if err != nil {
			return ErrInval
		}
		v, st := s.resolve(t, fh)
		if st != OK {
			return st
		}
		attr, err := v.SetSizeByID(t, fh.File, size)
		if err != nil {
			return StatusOf(err)
		}
		encodeAttr(e, attr)
		return OK

	case ProcLookup:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		name, err := d.String()
		if err != nil {
			return ErrInval
		}
		v, st := s.resolve(t, fh)
		if st != OK {
			return st
		}
		attr, err := v.LookupIn(t, fh.File, name)
		if err != nil {
			return StatusOf(err)
		}
		encodeFH(e, FH{Vol: fh.Vol, File: attr.ID, Gen: attr.Gen})
		encodeAttr(e, attr)
		return OK

	case ProcRead:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		off, err := d.Int64()
		if err != nil {
			return ErrInval
		}
		count, err := d.Uint32()
		if err != nil {
			return ErrInval
		}
		if count > MaxIO {
			count = MaxIO
		}
		v, st := s.resolve(t, fh)
		if st != OK {
			return st
		}
		h, err := v.OpenByID(t, fh.File)
		if err != nil {
			return StatusOf(err)
		}
		if s.vectored {
			segs, n, release, ok, rerr := v.ReadBorrowAt(t, h, off, int64(count))
			if ok {
				if rerr != nil {
					v.Close(t, h)
					return StatusOf(rerr)
				}
				// The frames stay borrowed until the reply is written;
				// the handle stays open until then too, so its close
				// (which may destroy an unlinked file and wait for the
				// pins) runs strictly after the loans are returned.
				*rel = func(rt sched.Task) {
					release(rt)
					v.Close(rt, h)
				}
				e.OpaqueVec(segs, int(n))
				return OK
			}
		}
		buf := make([]byte, count)
		n, err := v.ReadAt(t, h, off, buf, int64(count))
		v.Close(t, h)
		if err != nil {
			return StatusOf(err)
		}
		e.Opaque(buf[:n])
		return OK

	case ProcWrite:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		off, err := d.Int64()
		if err != nil {
			return ErrInval
		}
		// Borrow the payload straight out of the frame: WriteAt
		// copies it into the cache before this call returns, and the
		// frame buffer is private to this call (readFrame allocates
		// per message), so the no-copy aliasing rules hold.
		data, err := d.OpaqueBorrow()
		if err != nil {
			return ErrInval
		}
		v, st := s.resolve(t, fh)
		if st != OK {
			return st
		}
		h, err := v.OpenByID(t, fh.File)
		if err != nil {
			return StatusOf(err)
		}
		err = v.WriteAt(t, h, off, data, int64(len(data)))
		if err == nil {
			attr := v.StatHandle(t, h)
			encodeAttr(e, attr)
		}
		v.Close(t, h)
		return StatusOf(err)

	case ProcCreate, ProcMkdir:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		name, err := d.String()
		if err != nil {
			return ErrInval
		}
		v, st := s.resolve(t, fh)
		if st != OK {
			return st
		}
		typ := core.TypeRegular
		if proc == ProcMkdir {
			typ = core.TypeDirectory
		}
		attr, err := v.CreateIn(t, fh.File, name, typ)
		if err != nil {
			return StatusOf(err)
		}
		encodeFH(e, FH{Vol: fh.Vol, File: attr.ID, Gen: attr.Gen})
		encodeAttr(e, attr)
		return OK

	case ProcRemove, ProcRmdir:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		name, err := d.String()
		if err != nil {
			return ErrInval
		}
		v, st := s.resolve(t, fh)
		if st != OK {
			return st
		}
		return StatusOf(v.RemoveIn(t, fh.File, name))

	case ProcRename:
		from, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		fromName, err := d.String()
		if err != nil {
			return ErrInval
		}
		to, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		toName, err := d.String()
		if err != nil {
			return ErrInval
		}
		if from.Vol != to.Vol {
			return ErrInval
		}
		v, st := s.resolve(t, from)
		if st != OK {
			return st
		}
		if _, st := s.resolve(t, to); st != OK {
			return st
		}
		return StatusOf(v.RenameIn(t, from.File, fromName, to.File, toName))

	case ProcReaddir:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		v, st := s.resolve(t, fh)
		if st != OK {
			return st
		}
		ents, err := v.ReaddirByID(t, fh.File)
		if err != nil {
			return StatusOf(err)
		}
		e.Uint32(uint32(len(ents)))
		for _, ent := range ents {
			e.String(ent.Name)
			e.Uint64(uint64(ent.ID))
		}
		return OK

	case ProcSymlink:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		name, err := d.String()
		if err != nil {
			return ErrInval
		}
		target, err := d.String()
		if err != nil {
			return ErrInval
		}
		v, st := s.resolve(t, fh)
		if st != OK {
			return st
		}
		attr, err := v.SymlinkIn(t, fh.File, name, target)
		if err != nil {
			return StatusOf(err)
		}
		encodeFH(e, FH{Vol: fh.Vol, File: attr.ID, Gen: attr.Gen})
		encodeAttr(e, attr)
		return OK

	case ProcReadlink:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		v, st := s.resolve(t, fh)
		if st != OK {
			return st
		}
		target, err := v.ReadlinkByID(t, fh.File)
		if err != nil {
			return StatusOf(err)
		}
		e.String(target)
		return OK

	case ProcStatFS:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		v, st := s.resolve(t, fh)
		if st != OK {
			return st
		}
		e.Uint32(core.BlockSize)
		e.Int64(v.FreeBlocks())
		e.String(v.LayoutName())
		return OK
	}
	return ErrInval // unknown procedure
}
