package nfs

import (
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/fsys"
	"repro/internal/sched"
	"repro/internal/xdr"
)

// Server is the PFS client interface: it listens on TCP, spawns a
// framework thread per connection, and dispatches each call onto the
// abstract client interface — the derived-class structure of the
// paper's NFS component.
type Server struct {
	fs *fsys.FS
	k  sched.Kernel
	ln net.Listener

	mu       sync.Mutex
	closed   bool
	draining bool
	conns    map[net.Conn]*connState
	inflight sync.WaitGroup
}

// connState tracks whether a connection is mid-dispatch, so a drain
// can cut idle connections immediately and let busy ones finish
// their current call.
type connState struct {
	busy bool
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") over the given
// front-end. It returns once the listener is ready.
func Serve(k sched.Kernel, fs *fsys.FS, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{fs: fs, k: k, ln: ln, conns: make(map[net.Conn]*connState)}
	k.Go("nfs.accept", s.acceptLoop)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections immediately,
// dropping whatever is in flight.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return s.ln.Close()
}

// Drain is the graceful half of shutdown: it stops accepting new
// connections and new calls, closes idle connections, and blocks
// until every in-flight call has completed and its reply has been
// written. Busy connections close themselves right after that reply.
// The file system is quiescent (from the network's point of view)
// when Drain returns.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	var idle []net.Conn
	for c, st := range s.conns {
		if !st.busy {
			idle = append(idle, c)
		}
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range idle {
		c.Close() // unblocks the conn task parked in readFrame
	}
	s.inflight.Wait()
}

func (s *Server) acceptLoop(t sched.Task) {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = &connState{}
		s.mu.Unlock()
		c := conn
		s.k.Go("nfs.conn", func(ct sched.Task) {
			defer func() {
				c.Close()
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
			}()
			s.serveConn(ct, c)
		})
	}
}

// serveConn handles one connection's calls in order; each call acts
// as a client representative inside the file system while the
// request is in progress.
func (s *Server) serveConn(t sched.Task, conn net.Conn) {
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		// A drained server serves what is already in flight but
		// starts nothing new; the busy window also keeps Drain's
		// in-flight accounting exact.
		s.mu.Lock()
		st := s.conns[conn]
		if s.draining || s.closed || st == nil {
			s.mu.Unlock()
			return
		}
		st.busy = true
		s.inflight.Add(1)
		s.mu.Unlock()

		d := xdr.NewDecoder(frame)
		ok := func() bool {
			defer func() {
				s.mu.Lock()
				st.busy = false
				s.mu.Unlock()
				s.inflight.Done()
			}()
			xid, err := d.Uint32()
			if err != nil {
				return false
			}
			dir, err := d.Uint32()
			if err != nil || dir != MsgCall {
				return false
			}
			proc, err := d.Uint32()
			if err != nil {
				return false
			}
			e := xdr.NewEncoder()
			e.Uint32(xid)
			e.Uint32(MsgReply)
			status := s.dispatch(t, proc, d, e)
			// Splice the status in after (xid, MsgReply): rebuild
			// with the final status word.
			out := xdr.NewEncoder()
			out.Uint32(xid)
			out.Uint32(MsgReply)
			out.Uint32(status)
			outBytes := append(out.Bytes(), e.Bytes()[8:]...)
			return writeFrame(conn, outBytes) == nil
		}()
		if !ok {
			return
		}
		s.mu.Lock()
		draining := s.draining || s.closed
		s.mu.Unlock()
		if draining {
			return // reply delivered; the server is going away
		}
	}
}

// dispatch decodes args from d, performs the procedure, encodes
// results into e (after an 8-byte placeholder the caller strips),
// and returns the status.
func (s *Server) dispatch(t sched.Task, proc uint32, d *xdr.Decoder, e *xdr.Encoder) uint32 {
	switch proc {
	case ProcNull:
		return OK

	case ProcMount:
		volID, err := d.Uint32()
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(core.VolumeID(volID))
		if v == nil {
			return ErrNoent
		}
		root := v.Root()
		attr, err := v.StatByID(t, root)
		if err != nil {
			return StatusOf(err)
		}
		encodeFH(e, FH{Vol: core.VolumeID(volID), File: root})
		encodeAttr(e, attr)
		return OK

	case ProcGetattr:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(fh.Vol)
		if v == nil {
			return ErrStale
		}
		attr, err := v.StatByID(t, fh.File)
		if err != nil {
			return StatusOf(err)
		}
		encodeAttr(e, attr)
		return OK

	case ProcSetattr:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		size, err := d.Int64()
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(fh.Vol)
		if v == nil {
			return ErrStale
		}
		attr, err := v.SetSizeByID(t, fh.File, size)
		if err != nil {
			return StatusOf(err)
		}
		encodeAttr(e, attr)
		return OK

	case ProcLookup:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		name, err := d.String()
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(fh.Vol)
		if v == nil {
			return ErrStale
		}
		attr, err := v.LookupIn(t, fh.File, name)
		if err != nil {
			return StatusOf(err)
		}
		encodeFH(e, FH{Vol: fh.Vol, File: attr.ID})
		encodeAttr(e, attr)
		return OK

	case ProcRead:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		off, err := d.Int64()
		if err != nil {
			return ErrInval
		}
		count, err := d.Uint32()
		if err != nil {
			return ErrInval
		}
		if count > MaxIO {
			count = MaxIO
		}
		v := s.fs.Vol(fh.Vol)
		if v == nil {
			return ErrStale
		}
		h, err := v.OpenByID(t, fh.File)
		if err != nil {
			return StatusOf(err)
		}
		buf := make([]byte, count)
		n, err := v.ReadAt(t, h, off, buf, int64(count))
		v.Close(t, h)
		if err != nil {
			return StatusOf(err)
		}
		e.Opaque(buf[:n])
		return OK

	case ProcWrite:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		off, err := d.Int64()
		if err != nil {
			return ErrInval
		}
		data, err := d.Opaque()
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(fh.Vol)
		if v == nil {
			return ErrStale
		}
		h, err := v.OpenByID(t, fh.File)
		if err != nil {
			return StatusOf(err)
		}
		err = v.WriteAt(t, h, off, data, int64(len(data)))
		if err == nil {
			attr := v.StatHandle(t, h)
			encodeAttr(e, attr)
		}
		v.Close(t, h)
		return StatusOf(err)

	case ProcCreate, ProcMkdir:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		name, err := d.String()
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(fh.Vol)
		if v == nil {
			return ErrStale
		}
		typ := core.TypeRegular
		if proc == ProcMkdir {
			typ = core.TypeDirectory
		}
		attr, err := v.CreateIn(t, fh.File, name, typ)
		if err != nil {
			return StatusOf(err)
		}
		encodeFH(e, FH{Vol: fh.Vol, File: attr.ID})
		encodeAttr(e, attr)
		return OK

	case ProcRemove, ProcRmdir:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		name, err := d.String()
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(fh.Vol)
		if v == nil {
			return ErrStale
		}
		return StatusOf(v.RemoveIn(t, fh.File, name))

	case ProcRename:
		from, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		fromName, err := d.String()
		if err != nil {
			return ErrInval
		}
		to, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		toName, err := d.String()
		if err != nil {
			return ErrInval
		}
		if from.Vol != to.Vol {
			return ErrInval
		}
		v := s.fs.Vol(from.Vol)
		if v == nil {
			return ErrStale
		}
		return StatusOf(v.RenameIn(t, from.File, fromName, to.File, toName))

	case ProcReaddir:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(fh.Vol)
		if v == nil {
			return ErrStale
		}
		ents, err := v.ReaddirByID(t, fh.File)
		if err != nil {
			return StatusOf(err)
		}
		e.Uint32(uint32(len(ents)))
		for _, ent := range ents {
			e.String(ent.Name)
			e.Uint64(uint64(ent.ID))
		}
		return OK

	case ProcSymlink:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		name, err := d.String()
		if err != nil {
			return ErrInval
		}
		target, err := d.String()
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(fh.Vol)
		if v == nil {
			return ErrStale
		}
		attr, err := v.SymlinkIn(t, fh.File, name, target)
		if err != nil {
			return StatusOf(err)
		}
		encodeFH(e, FH{Vol: fh.Vol, File: attr.ID})
		encodeAttr(e, attr)
		return OK

	case ProcReadlink:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(fh.Vol)
		if v == nil {
			return ErrStale
		}
		target, err := v.ReadlinkByID(t, fh.File)
		if err != nil {
			return StatusOf(err)
		}
		e.String(target)
		return OK

	case ProcStatFS:
		fh, err := decodeFH(d)
		if err != nil {
			return ErrInval
		}
		v := s.fs.Vol(fh.Vol)
		if v == nil {
			return ErrStale
		}
		e.Uint32(core.BlockSize)
		e.Int64(v.FreeBlocks())
		e.String(v.LayoutName())
		return OK
	}
	return ErrInval // unknown procedure
}
