// Package nfs implements PFS's client interface: an NFS-v2-like
// stateless file protocol over TCP with XDR encoding. It substitutes
// for the paper's SunRPC/UDP NFS plumbing while preserving what the
// framework cares about — stateless file handles, a thread-per-
// request server dispatching onto the abstract client interface, and
// idempotent procedures.
//
// Wire format: each message is a record-marked frame (big-endian
// uint32 length, then payload). Calls carry (xid, MsgCall, proc,
// args); replies carry (xid, MsgReply, status, results).
package nfs

import (
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/core"
	"repro/internal/fsys"
	"repro/internal/xdr"
)

// Procedures.
const (
	ProcNull uint32 = iota
	ProcMount
	ProcGetattr
	ProcSetattr
	ProcLookup
	ProcRead
	ProcWrite
	ProcCreate
	ProcRemove
	ProcRename
	ProcMkdir
	ProcRmdir
	ProcReaddir
	ProcSymlink
	ProcReadlink
	ProcStatFS
	// NumProcs bounds the procedure space (per-proc stat arrays).
	NumProcs = int(ProcStatFS) + 1
)

// procNames indexes procedure names by number — the `op` label of
// the exported per-procedure metrics.
var procNames = [NumProcs]string{
	"null", "mount", "getattr", "setattr", "lookup", "read", "write",
	"create", "remove", "rename", "mkdir", "rmdir", "readdir",
	"symlink", "readlink", "statfs",
}

// ProcName names a procedure ("read", "write", ...), or "proc<N>"
// for an unknown number.
func ProcName(proc uint32) string {
	if int(proc) < NumProcs {
		return procNames[proc]
	}
	return fmt.Sprintf("proc%d", proc)
}

// Message directions.
const (
	MsgCall  uint32 = 0
	MsgReply uint32 = 1
)

// Status codes, NFSERR-style.
const (
	OK uint32 = iota
	ErrNoent
	ErrExist
	ErrNotdir
	ErrIsdir
	ErrNotempty
	ErrNospc
	ErrStale
	ErrInval
	ErrNameTooLong
	ErrRofs
	ErrIO
)

// StatusOf maps framework errors onto wire status codes.
func StatusOf(err error) uint32 {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, core.ErrNotFound):
		return ErrNoent
	case errors.Is(err, core.ErrExists):
		return ErrExist
	case errors.Is(err, core.ErrNotDir):
		return ErrNotdir
	case errors.Is(err, core.ErrIsDir):
		return ErrIsdir
	case errors.Is(err, core.ErrNotEmpty):
		return ErrNotempty
	case errors.Is(err, core.ErrNoSpace):
		return ErrNospc
	case errors.Is(err, core.ErrStale):
		return ErrStale
	case errors.Is(err, core.ErrNameTooLon):
		return ErrNameTooLong
	case errors.Is(err, core.ErrInval):
		return ErrInval
	case errors.Is(err, core.ErrRofs):
		return ErrRofs
	default:
		return ErrIO
	}
}

// ErrorOf inverts StatusOf for the client side.
func ErrorOf(status uint32) error {
	switch status {
	case OK:
		return nil
	case ErrNoent:
		return core.ErrNotFound
	case ErrExist:
		return core.ErrExists
	case ErrNotdir:
		return core.ErrNotDir
	case ErrIsdir:
		return core.ErrIsDir
	case ErrNotempty:
		return core.ErrNotEmpty
	case ErrNospc:
		return core.ErrNoSpace
	case ErrStale:
		return core.ErrStale
	case ErrNameTooLong:
		return core.ErrNameTooLon
	case ErrInval:
		return core.ErrInval
	case ErrRofs:
		return core.ErrRofs
	default:
		return fmt.Errorf("nfs: server error (status %d)", status)
	}
}

// FH is the stateless file handle: volume, inode number and the
// inode's generation. The generation pins the handle to one life of
// the inode slot — layouts that recycle inode numbers (FFS after a
// remove, any layout after crash recovery re-creates a file) mint a
// fresh generation, and the server answers ErrStale for the old one
// instead of silently serving the new file's bytes.
type FH struct {
	Vol  core.VolumeID
	File core.FileID
	Gen  uint64
}

// encodeFH appends the handle.
func encodeFH(e *xdr.Encoder, h FH) {
	e.Uint32(uint32(h.Vol))
	e.Uint64(uint64(h.File))
	e.Uint64(h.Gen)
}

// decodeFH reads a handle.
func decodeFH(d *xdr.Decoder) (FH, error) {
	v, err := d.Uint32()
	if err != nil {
		return FH{}, err
	}
	f, err := d.Uint64()
	if err != nil {
		return FH{}, err
	}
	g, err := d.Uint64()
	if err != nil {
		return FH{}, err
	}
	return FH{Vol: core.VolumeID(v), File: core.FileID(f), Gen: g}, nil
}

// encodeAttr appends file attributes.
func encodeAttr(e *xdr.Encoder, a fsys.FileAttr) {
	e.Uint64(uint64(a.ID))
	e.Uint32(uint32(a.Type))
	e.Int64(a.Size)
	e.Uint32(a.Nlink)
	e.Uint32(a.Mode)
	e.Int64(a.MTime)
	e.Int64(a.CTime)
	e.Uint64(a.Gen)
}

// decodeAttr reads file attributes.
func decodeAttr(d *xdr.Decoder) (fsys.FileAttr, error) {
	var a fsys.FileAttr
	id, err := d.Uint64()
	if err != nil {
		return a, err
	}
	typ, err := d.Uint32()
	if err != nil {
		return a, err
	}
	size, err := d.Int64()
	if err != nil {
		return a, err
	}
	nlink, err := d.Uint32()
	if err != nil {
		return a, err
	}
	mode, err := d.Uint32()
	if err != nil {
		return a, err
	}
	mtime, err := d.Int64()
	if err != nil {
		return a, err
	}
	ctime, err := d.Int64()
	if err != nil {
		return a, err
	}
	gen, err := d.Uint64()
	if err != nil {
		return a, err
	}
	a.Gen = gen
	a.ID = core.FileID(id)
	a.Type = core.FileType(typ)
	a.Size = size
	a.Nlink = nlink
	a.Mode = mode
	a.MTime = mtime
	a.CTime = ctime
	return a, nil
}

// MaxFrame bounds a single message (64 KB data plus headroom).
const MaxFrame = 1 << 20

// MaxIO is the largest read or write payload per call.
const MaxIO = 64 << 10

// writeFrame sends one record-marked message.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("nfs: frame of %d bytes exceeds maximum", len(payload))
	}
	var hdr [4]byte
	hdr[0] = byte(len(payload) >> 24)
	hdr[1] = byte(len(payload) >> 16)
	hdr[2] = byte(len(payload) >> 8)
	hdr[3] = byte(len(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeFrameVec sends one record-marked message whose payload is a
// list of segments, in a single vectored write: net.Buffers turns
// into writev on a TCP connection, so segments borrowed from cache
// frames reach the wire without ever being copied into a contiguous
// reply buffer.
func writeFrameVec(w io.Writer, parts [][]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total > MaxFrame {
		return fmt.Errorf("nfs: frame of %d bytes exceeds maximum", total)
	}
	bufs := make(net.Buffers, 0, len(parts)+1)
	hdr := []byte{byte(total >> 24), byte(total >> 16), byte(total >> 8), byte(total)}
	bufs = append(bufs, hdr)
	for _, p := range parts {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	_, err := bufs.WriteTo(w)
	return err
}

// readFrame receives one record-marked message.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n > MaxFrame {
		return nil, fmt.Errorf("nfs: frame of %d bytes exceeds maximum", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
