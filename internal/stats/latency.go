package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// LatencyDist records every sample of an operation latency so that
// exact cumulative distributions — the paper's Figures 2-4 — can be
// produced. Samples are durations in nanoseconds.
type LatencyDist struct {
	name    string
	mu      sync.Mutex
	samples []int64
	sorted  bool
	sum     int64
}

// NewLatencyDist returns a named latency distribution.
func NewLatencyDist(name string) *LatencyDist {
	return &LatencyDist{name: name}
}

// Observe records one latency.
func (d *LatencyDist) Observe(lat time.Duration) {
	d.mu.Lock()
	d.samples = append(d.samples, int64(lat))
	d.sum += int64(lat)
	d.sorted = false
	d.mu.Unlock()
}

// N returns the sample count.
func (d *LatencyDist) N() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.samples)
}

// Name returns the distribution's name.
func (d *LatencyDist) Name() string { return d.name }

// Mean returns the mean latency.
func (d *LatencyDist) Mean() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.meanLocked()
}

func (d *LatencyDist) meanLocked() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	return time.Duration(d.sum / int64(len(d.samples)))
}

func (d *LatencyDist) sortLocked() {
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
}

// Quantile returns the q-quantile latency (0 <= q <= 1).
func (d *LatencyDist) Quantile(q float64) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.quantileLocked(q)
}

func (d *LatencyDist) quantileLocked(q float64) time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	d.sortLocked()
	i := int(q * float64(len(d.samples)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(d.samples) {
		i = len(d.samples) - 1
	}
	return time.Duration(d.samples[i])
}

// FracBelow returns the fraction of operations that completed within
// lat — one point of the cumulative distribution.
func (d *LatencyDist) FracBelow(lat time.Duration) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fracBelowLocked(lat)
}

func (d *LatencyDist) fracBelowLocked(lat time.Duration) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sortLocked()
	i := sort.Search(len(d.samples), func(i int) bool { return d.samples[i] > int64(lat) })
	return float64(i) / float64(len(d.samples))
}

// CDFPoint is one (latency, cumulative fraction) pair.
type CDFPoint struct {
	Lat  time.Duration
	Frac float64
}

// CDF evaluates the cumulative distribution at each given latency.
func (d *LatencyDist) CDF(at []time.Duration) []CDFPoint {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]CDFPoint, len(at))
	for i, lat := range at {
		out[i] = CDFPoint{lat, d.fracBelowLocked(lat)}
	}
	return out
}

// DefaultCDFGrid is the latency grid the figure harness evaluates
// CDFs on: fine resolution through the rotational region (the paper
// discusses the 2 ms cache floor and the 17 ms full-rotation bump),
// then coarser out to the queueing tail.
func DefaultCDFGrid() []time.Duration {
	var grid []time.Duration
	for ms := 1; ms <= 30; ms++ { // 1..30ms at 1ms
		grid = append(grid, time.Duration(ms)*time.Millisecond)
	}
	for ms := 35; ms <= 100; ms += 5 {
		grid = append(grid, time.Duration(ms)*time.Millisecond)
	}
	for ms := 125; ms <= 500; ms += 25 {
		grid = append(grid, time.Duration(ms)*time.Millisecond)
	}
	for ms := 600; ms <= 2000; ms += 100 {
		grid = append(grid, time.Duration(ms)*time.Millisecond)
	}
	return grid
}

// Render prints the CDF as a two-column table followed by mean and
// selected quantiles, the plotted form of Figures 2-4.
func (d *LatencyDist) Render() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%v p50=%v p90=%v p99=%v\n",
		d.name, len(d.samples), d.meanLocked().Round(time.Microsecond),
		d.quantileLocked(0.50).Round(time.Microsecond),
		d.quantileLocked(0.90).Round(time.Microsecond),
		d.quantileLocked(0.99).Round(time.Microsecond))
	for _, lat := range DefaultCDFGrid() {
		frac := d.fracBelowLocked(lat)
		if frac >= 0.9999 && lat > d.quantileLocked(1.0) {
			break
		}
		fmt.Fprintf(&b, "  %8s %7.4f %s\n", lat, frac, strings.Repeat("*", int(60*frac)))
	}
	return b.String()
}

// Merge folds other's samples into d.
func (d *LatencyDist) Merge(other *LatencyDist) {
	other.mu.Lock()
	samples, sum := append([]int64(nil), other.samples...), other.sum
	other.mu.Unlock()
	d.mu.Lock()
	d.samples = append(d.samples, samples...)
	d.sum += sum
	d.sorted = false
	d.mu.Unlock()
}

// Reset discards all samples.
func (d *LatencyDist) Reset() {
	d.mu.Lock()
	d.samples = d.samples[:0]
	d.sum = 0
	d.sorted = true
	d.mu.Unlock()
}
