package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// LatencyDist records every sample of an operation latency so that
// exact cumulative distributions — the paper's Figures 2-4 — can be
// produced. Samples are durations in nanoseconds.
//
// The sample store is split in two so that quantile polling (the
// admin server scrapes quantiles on every /metrics hit) never makes
// Observe re-pay a full sort: Observe appends to a small pending
// buffer under its own lock, and queries merge the pending batch
// into an always-sorted view — O(k log k + n) for k new samples
// instead of O(n log n) per poll.
type LatencyDist struct {
	name string

	// pmu guards the write side: Observe only ever touches these, so
	// a slow query pass never blocks the operation hot path.
	pmu     sync.Mutex
	pending []int64
	psum    int64

	// mu guards the read side; sorted is always in ascending order.
	// Lock order: mu before pmu (absorbLocked), never the reverse.
	mu     sync.Mutex
	sorted []int64
	sum    int64
}

// NewLatencyDist returns a named latency distribution.
func NewLatencyDist(name string) *LatencyDist {
	return &LatencyDist{name: name}
}

// Observe records one latency.
func (d *LatencyDist) Observe(lat time.Duration) {
	d.pmu.Lock()
	d.pending = append(d.pending, int64(lat))
	d.psum += int64(lat)
	d.pmu.Unlock()
}

// absorbLocked folds the pending batch into the sorted view. Caller
// holds d.mu.
func (d *LatencyDist) absorbLocked() {
	d.pmu.Lock()
	batch, bsum := d.pending, d.psum
	d.pending, d.psum = nil, 0
	d.pmu.Unlock()
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i] < batch[j] })
	d.sum += bsum
	if len(d.sorted) == 0 {
		d.sorted = batch
		return
	}
	// Merge the two sorted runs back to front into one grown slice.
	old := d.sorted
	merged := append(old, batch...)
	i, j := len(old)-1, len(batch)-1
	for k := len(merged) - 1; j >= 0; k-- {
		if i >= 0 && old[i] > batch[j] {
			merged[k] = old[i]
			i--
		} else {
			merged[k] = batch[j]
			j--
		}
	}
	d.sorted = merged
}

// N returns the sample count.
func (d *LatencyDist) N() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pmu.Lock()
	n := len(d.sorted) + len(d.pending)
	d.pmu.Unlock()
	return n
}

// Name returns the distribution's name.
func (d *LatencyDist) Name() string { return d.name }

// Mean returns the mean latency.
func (d *LatencyDist) Mean() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.absorbLocked()
	return d.meanLocked()
}

func (d *LatencyDist) meanLocked() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return time.Duration(d.sum / int64(len(d.sorted)))
}

// Quantile returns the q-quantile latency (0 <= q <= 1).
func (d *LatencyDist) Quantile(q float64) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.absorbLocked()
	return d.quantileLocked(q)
}

func (d *LatencyDist) quantileLocked(q float64) time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(d.sorted)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(d.sorted) {
		i = len(d.sorted) - 1
	}
	return time.Duration(d.sorted[i])
}

// FracBelow returns the fraction of operations that completed within
// lat — one point of the cumulative distribution.
func (d *LatencyDist) FracBelow(lat time.Duration) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.absorbLocked()
	return d.fracBelowLocked(lat)
}

func (d *LatencyDist) fracBelowLocked(lat time.Duration) float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	i := sort.Search(len(d.sorted), func(i int) bool { return d.sorted[i] > int64(lat) })
	return float64(i) / float64(len(d.sorted))
}

// CDFPoint is one (latency, cumulative fraction) pair.
type CDFPoint struct {
	Lat  time.Duration
	Frac float64
}

// CDF evaluates the cumulative distribution at each given latency.
func (d *LatencyDist) CDF(at []time.Duration) []CDFPoint {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.absorbLocked()
	out := make([]CDFPoint, len(at))
	for i, lat := range at {
		out[i] = CDFPoint{lat, d.fracBelowLocked(lat)}
	}
	return out
}

// DefaultCDFGrid is the latency grid the figure harness evaluates
// CDFs on: fine resolution through the rotational region (the paper
// discusses the 2 ms cache floor and the 17 ms full-rotation bump),
// then coarser out to the queueing tail.
func DefaultCDFGrid() []time.Duration {
	var grid []time.Duration
	for ms := 1; ms <= 30; ms++ { // 1..30ms at 1ms
		grid = append(grid, time.Duration(ms)*time.Millisecond)
	}
	for ms := 35; ms <= 100; ms += 5 {
		grid = append(grid, time.Duration(ms)*time.Millisecond)
	}
	for ms := 125; ms <= 500; ms += 25 {
		grid = append(grid, time.Duration(ms)*time.Millisecond)
	}
	for ms := 600; ms <= 2000; ms += 100 {
		grid = append(grid, time.Duration(ms)*time.Millisecond)
	}
	return grid
}

// Render prints the CDF as a two-column table followed by mean and
// selected quantiles, the plotted form of Figures 2-4.
func (d *LatencyDist) Render() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.absorbLocked()
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%v p50=%v p90=%v p99=%v\n",
		d.name, len(d.sorted), d.meanLocked().Round(time.Microsecond),
		d.quantileLocked(0.50).Round(time.Microsecond),
		d.quantileLocked(0.90).Round(time.Microsecond),
		d.quantileLocked(0.99).Round(time.Microsecond))
	for _, lat := range DefaultCDFGrid() {
		frac := d.fracBelowLocked(lat)
		if frac >= 0.9999 && lat > d.quantileLocked(1.0) {
			break
		}
		fmt.Fprintf(&b, "  %8s %7.4f %s\n", lat, frac, strings.Repeat("*", int(60*frac)))
	}
	return b.String()
}

// Merge folds other's samples into d.
func (d *LatencyDist) Merge(other *LatencyDist) {
	other.mu.Lock()
	other.absorbLocked()
	samples, sum := append([]int64(nil), other.sorted...), other.sum
	other.mu.Unlock()
	d.pmu.Lock()
	d.pending = append(d.pending, samples...)
	d.psum += sum
	d.pmu.Unlock()
}

// Reset discards all samples.
func (d *LatencyDist) Reset() {
	d.mu.Lock()
	d.pmu.Lock()
	d.pending, d.psum = nil, 0
	d.pmu.Unlock()
	d.sorted = d.sorted[:0]
	d.sum = 0
	d.mu.Unlock()
}
