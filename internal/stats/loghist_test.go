package stats

import (
	"sync"
	"testing"
	"time"
)

func TestLogHistogramBuckets(t *testing.T) {
	h := NewLogHistogram("t", time.Millisecond, 2, 4) // bounds 1,2,4,8 ms
	h.Observe(-time.Second)                           // clamps to 0 -> first bucket
	h.Observe(time.Millisecond)                       // on the bound -> first bucket
	h.Observe(3 * time.Millisecond)                   // -> 4ms bucket
	h.Observe(time.Hour)                              // -> +Inf overflow
	bounds, counts, total, sum := h.Snapshot()
	if len(bounds) != 4 || len(counts) != 5 {
		t.Fatalf("shape: %d bounds, %d counts", len(bounds), len(counts))
	}
	if total != 4 {
		t.Fatalf("total = %d", total)
	}
	if want := time.Millisecond + 3*time.Millisecond + time.Hour; sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	if counts[0] != 2 || counts[2] != 1 || counts[4] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	if n != total {
		t.Fatalf("counts sum %d != total %d", n, total)
	}
}

func TestLogHistogramQuantile(t *testing.T) {
	h := NewLatencyHistogram("t")
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 <= 0 || p99 <= p50 {
		t.Fatalf("p50=%v p99=%v not increasing", p50, p99)
	}
	// Bucketed estimates stay inside the right bucket: the true p50 is
	// ~500ms, whose owning bucket is (256ms, 512ms]; p99 ~990ms lands
	// in (512ms, 1.024s].
	if p50 < 256*time.Millisecond || p50 > 512*time.Millisecond {
		t.Fatalf("p50=%v outside its bucket", p50)
	}
	if p99 < 512*time.Millisecond || p99 > 1100*time.Millisecond {
		t.Fatalf("p99=%v outside its bucket", p99)
	}
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("quantile clamping broken")
	}
}

func TestLogHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram("t")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Microsecond)
				if i%100 == 0 {
					h.Quantile(0.9)
					h.Snapshot()
					_ = h.String()
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Total() != 4000 {
		t.Fatalf("total = %d", h.Total())
	}
}
