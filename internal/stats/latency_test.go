package stats

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Interleaving queries with observations must not change what the
// distribution reports: the pending-buffer merge is equivalent to
// observing everything up front.
func TestLatencyDistInterleavedQueriesEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]time.Duration, 5000)
	for i := range samples {
		samples[i] = time.Duration(rng.Intn(1_000_000)) * time.Microsecond
	}
	plain := NewLatencyDist("plain")
	polled := NewLatencyDist("polled")
	for i, s := range samples {
		plain.Observe(s)
		polled.Observe(s)
		if i%37 == 0 { // force a mid-stream absorb on one of them
			polled.Quantile(0.5)
			polled.FracBelow(time.Millisecond)
		}
	}
	if plain.N() != polled.N() {
		t.Fatalf("n: %d vs %d", plain.N(), polled.N())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a, b := plain.Quantile(q), polled.Quantile(q); a != b {
			t.Fatalf("q%.2f: %v vs %v", q, a, b)
		}
	}
	if a, b := plain.Mean(), polled.Mean(); a != b {
		t.Fatalf("mean: %v vs %v", a, b)
	}
	for _, at := range []time.Duration{time.Microsecond, time.Millisecond, 500 * time.Millisecond} {
		if a, b := plain.FracBelow(at), polled.FracBelow(at); a != b {
			t.Fatalf("frac(%v): %v vs %v", at, a, b)
		}
	}
}

// Concurrent observers and pollers: the shape a live server sees,
// with /metrics scraping summaries while the workload observes.
func TestLatencyDistConcurrentScrape(t *testing.T) {
	d := NewLatencyDist("t")
	const observers, perObserver = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < observers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perObserver; i++ {
				d.Observe(time.Duration(g*perObserver+i) * time.Microsecond)
			}
		}(g)
	}
	var scrapes sync.WaitGroup
	for s := 0; s < 3; s++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Quantiles from separate calls interleave with
				// observers, so only sanity is asserted here; the
				// race detector is the real check.
				for _, q := range []float64{0.5, 0.9, 0.99} {
					if v := d.Quantile(q); v < 0 {
						t.Errorf("negative quantile %v", v)
						return
					}
				}
				d.Mean()
				d.CDF([]time.Duration{time.Millisecond, time.Second})
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()
	if n := d.N(); n != observers*perObserver {
		t.Fatalf("n = %d, want %d", n, observers*perObserver)
	}
	if d.Quantile(1) != time.Duration(observers*perObserver-1)*time.Microsecond {
		t.Fatalf("max = %v", d.Quantile(1))
	}
}

func TestLatencyDistMergeAndReset(t *testing.T) {
	a, b := NewLatencyDist("a"), NewLatencyDist("b")
	for i := 1; i <= 10; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 11; i <= 20; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	if a.N() != 20 {
		t.Fatalf("merged n = %d", a.N())
	}
	if a.Quantile(1) != 20*time.Millisecond || a.Quantile(0) != time.Millisecond {
		t.Fatalf("merged range [%v, %v]", a.Quantile(0), a.Quantile(1))
	}
	a.Reset()
	if a.N() != 0 || a.Mean() != 0 {
		t.Fatalf("reset left n=%d mean=%v", a.N(), a.Mean())
	}
}
