package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Source is anything that can summarize itself for the periodic
// report: counters, histograms, distributions, component stats.
type Source interface {
	Name() string
	String() string
}

// Set is a collection of plug-in statistics objects. Simulator
// components register their sources with the assembly's Set; the
// reporter renders them at each interval and at the end of a run.
// A Set is safe for concurrent use.
type Set struct {
	mu      sync.Mutex
	sources []Source
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// Add registers src; it returns src's concrete value through the
// given pointer pattern at call sites (callers keep their own
// typed reference).
func (s *Set) Add(src Source) {
	s.mu.Lock()
	s.sources = append(s.sources, src)
	s.mu.Unlock()
}

// Render prints every source, sorted by name for stable output.
func (s *Set) Render() string {
	s.mu.Lock()
	srcs := append([]Source(nil), s.sources...)
	s.mu.Unlock()
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Name() < srcs[j].Name() })
	var b strings.Builder
	for _, src := range srcs {
		line := src.String()
		b.WriteString(line)
		if !strings.HasSuffix(line, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Len returns the number of registered sources.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sources)
}

// IntervalReport is one periodic report line: how many operations
// completed in the interval and their mean latency, printed every 15
// minutes of simulation time as in the paper.
type IntervalReport struct {
	Start, End time.Duration
	Ops        int
	MeanLat    time.Duration
}

func (r IntervalReport) String() string {
	return fmt.Sprintf("[%8s - %8s] ops=%-8d mean=%v",
		r.Start.Round(time.Second), r.End.Round(time.Second), r.Ops,
		r.MeanLat.Round(time.Microsecond))
}

// IntervalTracker accumulates per-interval operation statistics.
// The replayer observes each completed operation; Cut closes the
// current interval and returns its report. Reports may be read
// directly once observation has stopped.
type IntervalTracker struct {
	mu      sync.Mutex
	start   time.Duration
	ops     int
	latSum  time.Duration
	Reports []IntervalReport
}

// NewIntervalTracker returns a tracker starting at time zero.
func NewIntervalTracker() *IntervalTracker { return &IntervalTracker{} }

// Observe records one completed operation.
func (t *IntervalTracker) Observe(lat time.Duration) {
	t.mu.Lock()
	t.ops++
	t.latSum += lat
	t.mu.Unlock()
}

// Cut closes the interval ending at end and starts the next one.
func (t *IntervalTracker) Cut(end time.Duration) IntervalReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := IntervalReport{Start: t.start, End: end, Ops: t.ops}
	if t.ops > 0 {
		r.MeanLat = t.latSum / time.Duration(t.ops)
	}
	t.Reports = append(t.Reports, r)
	t.start = end
	t.ops = 0
	t.latSum = 0
	return r
}
