package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	c := NewCounter("ops")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if c.Name() != "ops" || !strings.Contains(c.String(), "ops=10") {
		t.Fatalf("bad render %q", c.String())
	}
}

func TestMomentsKnownValues(t *testing.T) {
	m := NewMoments("x")
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Observe(v)
	}
	if m.N() != 8 || m.Mean() != 5 {
		t.Fatalf("n=%d mean=%v, want 8/5", m.N(), m.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if math.Abs(m.Var()-32.0/7.0) > 1e-9 {
		t.Fatalf("var = %v, want %v", m.Var(), 32.0/7.0)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("min/max = %v/%v", m.Min(), m.Max())
	}
}

func TestMomentsEmpty(t *testing.T) {
	m := NewMoments("e")
	if m.Mean() != 0 || m.Var() != 0 || m.Min() != 0 || m.Max() != 0 {
		t.Fatal("empty moments should read as zero")
	}
}

// TestMomentsMatchesNaive cross-checks Welford against the direct
// two-pass computation on random data.
func TestMomentsMatchesNaive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		m := NewMoments("p")
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
			sum += xs[i]
			m.Observe(xs[i])
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(n-1)
		return math.Abs(m.Mean()-mean) < 1e-6 && math.Abs(m.Var()-v) < 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("q", 1, 2, 4, 8)
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 5, 8, 9, 100} {
		h.Observe(v)
	}
	want := []int64{3, 1, 2, 2, 2} // <=1,<=2,<=4,<=8,>8
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if h.Total() != 10 {
		t.Fatalf("total = %d", h.Total())
	}
	if math.Abs(h.Mean()-13.3) > 1e-9 {
		t.Fatalf("mean = %v, want 13.3", h.Mean())
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	NewHistogram("bad", 5, 3)
}

func TestLinearHistogram(t *testing.T) {
	h := NewLinearHistogram("lin", 10, 3) // bounds 10,20,30
	h.Observe(10)
	h.Observe(11)
	h.Observe(31)
	if h.Bucket(0) != 1 || h.Bucket(1) != 1 || h.Bucket(3) != 1 {
		t.Fatalf("linear histogram buckets wrong: %v", h.String())
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram("render", 1)
	h.Observe(1)
	s := h.String()
	if !strings.Contains(s, "render") || !strings.Contains(s, "100.0%") {
		t.Fatalf("render missing fields: %q", s)
	}
}

func TestLatencyDistBasics(t *testing.T) {
	d := NewLatencyDist("lat")
	for ms := 1; ms <= 100; ms++ {
		d.Observe(time.Duration(ms) * time.Millisecond)
	}
	if d.N() != 100 {
		t.Fatalf("n = %d", d.N())
	}
	if d.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", d.Mean())
	}
	if got := d.FracBelow(10 * time.Millisecond); got != 0.10 {
		t.Fatalf("FracBelow(10ms) = %v, want 0.10", got)
	}
	if got := d.FracBelow(time.Second); got != 1.0 {
		t.Fatalf("FracBelow(1s) = %v, want 1", got)
	}
	if q := d.Quantile(0.5); q < 50*time.Millisecond || q > 51*time.Millisecond {
		t.Fatalf("median = %v", q)
	}
}

func TestLatencyDistEmpty(t *testing.T) {
	d := NewLatencyDist("e")
	if d.Mean() != 0 || d.Quantile(0.5) != 0 || d.FracBelow(time.Second) != 0 {
		t.Fatal("empty distribution should read as zero")
	}
}

// TestCDFMonotone is the defining property of a CDF: nondecreasing
// in the latency argument, between 0 and 1.
func TestCDFMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewLatencyDist("p")
		for i := 0; i < 200; i++ {
			d.Observe(time.Duration(rng.Intn(40)) * time.Millisecond)
		}
		pts := d.CDF(DefaultCDFGrid())
		prev := -1.0
		for _, p := range pts {
			if p.Frac < prev || p.Frac < 0 || p.Frac > 1 {
				return false
			}
			prev = p.Frac
		}
		return pts[len(pts)-1].Frac == 1.0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyMergeAndReset(t *testing.T) {
	a := NewLatencyDist("a")
	b := NewLatencyDist("b")
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	a.Merge(b)
	if a.N() != 2 || a.Mean() != 2*time.Millisecond {
		t.Fatalf("merge: n=%d mean=%v", a.N(), a.Mean())
	}
	a.Reset()
	if a.N() != 0 || a.Mean() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestLatencyRenderShape(t *testing.T) {
	d := NewLatencyDist("ops")
	d.Observe(500 * time.Microsecond)
	d.Observe(17 * time.Millisecond)
	out := d.Render()
	if !strings.Contains(out, "ops: n=2") {
		t.Fatalf("render header missing: %q", out)
	}
	if !strings.Contains(out, "1ms") {
		t.Fatalf("render grid missing: %q", out)
	}
}

func TestSetRenderSorted(t *testing.T) {
	s := NewSet()
	s.Add(NewCounter("zeta"))
	s.Add(NewCounter("alpha"))
	out := s.Render()
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatalf("set output not sorted: %q", out)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestIntervalTracker(t *testing.T) {
	tr := NewIntervalTracker()
	tr.Observe(10 * time.Millisecond)
	tr.Observe(30 * time.Millisecond)
	r := tr.Cut(15 * time.Minute)
	if r.Ops != 2 || r.MeanLat != 20*time.Millisecond {
		t.Fatalf("interval 1: %+v", r)
	}
	r2 := tr.Cut(30 * time.Minute)
	if r2.Ops != 0 || r2.Start != 15*time.Minute {
		t.Fatalf("interval 2: %+v", r2)
	}
	if len(tr.Reports) != 2 {
		t.Fatalf("reports = %d", len(tr.Reports))
	}
	if !strings.Contains(r.String(), "ops=2") {
		t.Fatalf("render: %q", r.String())
	}
}

func TestQuantileOrderedProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewLatencyDist("p")
		for _, v := range raw {
			d.Observe(time.Duration(v % 1e6))
		}
		qs := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		vals := make([]time.Duration, len(qs))
		for i, q := range qs {
			vals[i] = d.Quantile(q)
		}
		return sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) ||
			isNonDecreasing(vals)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func isNonDecreasing(v []time.Duration) bool {
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			return false
		}
	}
	return true
}
