// Package stats provides the framework's plug-in statistics objects:
// counters, running moments, histograms, full-sample latency
// distributions with CDF output, and the periodic reporter that
// prints results every 15 minutes of simulation time, as the paper's
// general simulation class does.
//
// Every statistics object is safe for concurrent use. The simulator
// never needs that (exactly one virtual-kernel task runs at a time),
// but the same components instantiated on-line — PFS under the real
// kernel — observe from truly concurrent tasks.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	n    atomic.Int64
}

// NewCounter returns a named counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

func (c *Counter) String() string { return fmt.Sprintf("%s=%d", c.name, c.Value()) }

// Moments accumulates mean and variance online (Welford's method),
// plus min and max.
type Moments struct {
	name     string
	mu       sync.Mutex
	n        int64
	mean, m2 float64
	min, max float64
}

// NewMoments returns a named moments accumulator.
func NewMoments(name string) *Moments {
	return &Moments{name: name, min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one sample.
func (m *Moments) Observe(x float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
	if x < m.min {
		m.min = x
	}
	if x > m.max {
		m.max = x
	}
}

// N returns the number of samples.
func (m *Moments) N() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Mean returns the sample mean, or 0 with no samples.
func (m *Moments) Mean() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.meanLocked()
}

func (m *Moments) meanLocked() float64 {
	if m.n == 0 {
		return 0
	}
	return m.mean
}

// Var returns the sample variance.
func (m *Moments) Var() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.varLocked()
}

func (m *Moments) varLocked() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Stddev returns the sample standard deviation.
func (m *Moments) Stddev() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest sample, or 0 with no samples.
func (m *Moments) Min() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.minLocked()
}

func (m *Moments) minLocked() float64 {
	if m.n == 0 {
		return 0
	}
	return m.min
}

// Max returns the largest sample, or 0 with no samples.
func (m *Moments) Max() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.maxLocked()
}

func (m *Moments) maxLocked() float64 {
	if m.n == 0 {
		return 0
	}
	return m.max
}

// Name returns the accumulator's name.
func (m *Moments) Name() string { return m.name }

func (m *Moments) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("%s: n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		m.name, m.n, m.meanLocked(), math.Sqrt(m.varLocked()), m.minLocked(), m.maxLocked())
}

// Histogram is a fixed-bucket histogram over int64 values (the
// framework uses it for queue depths and sector counts). Bounds are
// inclusive upper bounds; values above the last bound land in the
// overflow bucket.
type Histogram struct {
	name   string
	bounds []int64
	mu     sync.Mutex
	counts []int64
	total  int64
	sum    int64
}

// NewHistogram returns a histogram with the given ascending upper
// bounds.
func NewHistogram(name string, bounds ...int64) *Histogram {
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic("stats: histogram bounds must ascend")
	}
	return &Histogram{name: name, bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// NewLinearHistogram returns a histogram with n buckets of the given
// width starting at width.
func NewLinearHistogram(name string, width int64, n int) *Histogram {
	bounds := make([]int64, n)
	for i := range bounds {
		bounds[i] = width * int64(i+1)
	}
	return NewHistogram(name, bounds...)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += v
	h.mu.Unlock()
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.meanLocked()
}

func (h *Histogram) meanLocked() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Snapshot returns the bucket upper bounds (shared, immutable), a
// copy of the per-bucket counts (len(bounds)+1), the total count and
// the value sum — one consistent view for exporters.
func (h *Histogram) Snapshot() (bounds []int64, counts []int64, total int64, sum int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bounds, append([]int64(nil), h.counts...), h.total, h.sum
}

// Bucket returns the count in bucket i (len(bounds)+1 buckets).
func (h *Histogram) Bucket(i int) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counts[i]
}

// Name returns the histogram's name.
func (h *Histogram) Name() string { return h.name }

// String renders the histogram as an aligned text table with a bar
// per bucket, the style of the paper's "standard statistics output
// with histograms".
func (h *Histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%.2f\n", h.name, h.total, h.meanLocked())
	if h.total == 0 {
		return b.String()
	}
	maxC := int64(1)
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.counts {
		var label string
		if i < len(h.bounds) {
			label = fmt.Sprintf("<=%d", h.bounds[i])
		} else {
			label = fmt.Sprintf("> %d", h.bounds[len(h.bounds)-1])
		}
		bar := strings.Repeat("#", int(40*c/maxC))
		fmt.Fprintf(&b, "  %10s %9d %5.1f%% %s\n", label, c, 100*float64(c)/float64(h.total), bar)
	}
	return b.String()
}
