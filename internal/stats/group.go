package stats

import (
	"fmt"
	"strings"
	"sync"
)

// Group merges a family of per-member counters — one per volume of a
// storage array, one per shard, one per worker — into a single
// array-level source: the rendered line carries the total plus the
// per-member split, so a multi-volume report reads as one statistic.
// Members are ordinary Counters; Add is safe for concurrent use.
type Group struct {
	name string

	mu      sync.Mutex
	labels  []string
	members []*Counter
}

// NewGroup returns an empty group named name.
func NewGroup(name string) *Group { return &Group{name: name} }

// Member appends a member counter labelled label and returns it. The
// member's index is its position in creation order.
func (g *Group) Member(label string) *Counter {
	c := NewCounter(g.name + "." + label)
	g.mu.Lock()
	g.labels = append(g.labels, label)
	g.members = append(g.members, c)
	g.mu.Unlock()
	return c
}

// Add increments member i by n.
func (g *Group) Add(i int, n int64) {
	g.mu.Lock()
	c := g.members[i]
	g.mu.Unlock()
	c.Add(n)
}

// Len returns the number of members.
func (g *Group) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// Total returns the sum over all members.
func (g *Group) Total() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var sum int64
	for _, c := range g.members {
		sum += c.Value()
	}
	return sum
}

// Labels snapshots the member labels in creation order.
func (g *Group) Labels() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.labels...)
}

// Values snapshots the member values in creation order.
func (g *Group) Values() []int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int64, len(g.members))
	for i, c := range g.members {
		out[i] = c.Value()
	}
	return out
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// String renders the merged line: total plus per-member split.
func (g *Group) String() string {
	g.mu.Lock()
	labels := append([]string(nil), g.labels...)
	vals := make([]int64, len(g.members))
	for i, c := range g.members {
		vals[i] = c.Value()
	}
	g.mu.Unlock()
	var sum int64
	parts := make([]string, len(vals))
	for i, v := range vals {
		sum += v
		parts[i] = fmt.Sprintf("%s=%d", labels[i], v)
	}
	return fmt.Sprintf("%s: total=%d (%s)", g.name, sum, strings.Join(parts, " "))
}
