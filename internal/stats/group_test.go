package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestGroupTotalsAndRender(t *testing.T) {
	g := NewGroup("vol.blocks")
	d0 := g.Member("d0")
	g.Member("d1")
	g.Member("d2")
	d0.Add(5)
	g.Add(1, 7)
	g.Add(2, 1)
	if g.Total() != 13 {
		t.Fatalf("total %d, want 13", g.Total())
	}
	vals := g.Values()
	if len(vals) != 3 || vals[0] != 5 || vals[1] != 7 || vals[2] != 1 {
		t.Fatalf("values %v", vals)
	}
	want := "vol.blocks: total=13 (d0=5 d1=7 d2=1)"
	if got := g.String(); got != want {
		t.Fatalf("render %q, want %q", got, want)
	}
	if g.Name() != "vol.blocks" {
		t.Fatalf("name %q", g.Name())
	}
}

func TestGroupInSet(t *testing.T) {
	s := NewSet()
	g := NewGroup("arr.reads")
	g.Member("d0")
	s.Add(g)
	if !strings.Contains(s.Render(), "arr.reads: total=0 (d0=0)") {
		t.Fatalf("set render missing group line:\n%s", s.Render())
	}
}

// TestGroupConcurrent certifies Add/Total/Values under -race.
func TestGroupConcurrent(t *testing.T) {
	g := NewGroup("c")
	for i := 0; i < 4; i++ {
		g.Member("m")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(w%4, 1)
				_ = g.Total()
				_ = g.Values()
			}
		}()
	}
	wg.Wait()
	if g.Total() != 8000 {
		t.Fatalf("total %d, want 8000", g.Total())
	}
}
