package stats

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"
)

// LogHistogram is a bounded log-bucket latency histogram: a fixed
// set of exponentially growing duration buckets plus sum and count.
// Unlike LatencyDist it never stores individual samples, so a
// long-running server can observe forever in constant memory — the
// production counterpart to the simulator's exact-CDF object. It is
// what the telemetry registry exports as a Prometheus histogram.
type LogHistogram struct {
	name   string
	bounds []int64 // inclusive upper bounds in nanoseconds, ascending
	mu     sync.Mutex
	counts []int64 // len(bounds)+1; the last bucket is +Inf overflow
	total  int64
	sum    int64 // nanoseconds
}

// NewLogHistogram returns a histogram whose i-th upper bound is
// min*factor^i, for n buckets (plus the implicit +Inf overflow).
func NewLogHistogram(name string, min time.Duration, factor float64, n int) *LogHistogram {
	if min <= 0 || factor <= 1 || n <= 0 {
		panic("stats: LogHistogram needs min > 0, factor > 1, n > 0")
	}
	bounds := make([]int64, n)
	b := float64(min)
	for i := range bounds {
		bounds[i] = int64(math.Round(b))
		b *= factor
	}
	return &LogHistogram{name: name, bounds: bounds, counts: make([]int64, n+1)}
}

// NewLatencyHistogram returns the standard operation-latency shape:
// 26 doubling buckets from 16µs to ~9 minutes, covering everything
// from a warm cache hit to a pathological queueing stall.
func NewLatencyHistogram(name string) *LogHistogram {
	return NewLogHistogram(name, 16*time.Microsecond, 2, 26)
}

// Observe records one duration. Negative durations clamp to zero.
func (h *LogHistogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	// The bounds grow geometrically, so a linear scan beats binary
	// search for the short tails that dominate; still O(len(bounds))
	// worst case over ~26 entries.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += v
	h.mu.Unlock()
}

// Name returns the histogram's name.
func (h *LogHistogram) Name() string { return h.name }

// Total returns the observation count.
func (h *LogHistogram) Total() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the accumulated duration over all observations.
func (h *LogHistogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.sum)
}

// Mean returns the mean observation.
func (h *LogHistogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Snapshot returns the bucket upper bounds (shared, immutable), a
// copy of the per-bucket counts (len(bounds)+1), the total count and
// the sum — one consistent view for exporters.
func (h *LogHistogram) Snapshot() (bounds []int64, counts []int64, total int64, sum time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bounds, append([]int64(nil), h.counts...), h.total, time.Duration(h.sum)
}

// Quantile estimates the q-quantile by linear interpolation inside
// the owning bucket — the best a bucketed histogram can do.
func (h *LogHistogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(h.counts)-1 {
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return time.Duration(lo) + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return time.Duration(h.bounds[len(h.bounds)-1])
}

// String renders the non-empty buckets as an aligned table.
func (h *LogHistogram) String() string {
	bounds, counts, total, sum := h.Snapshot()
	var b strings.Builder
	mean := time.Duration(0)
	if total > 0 {
		mean = sum / time.Duration(total)
	}
	fmt.Fprintf(&b, "%s: n=%d mean=%v\n", h.name, total, mean.Round(time.Microsecond))
	if total == 0 {
		return b.String()
	}
	maxC := int64(1)
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		var label string
		if i < len(bounds) {
			label = "<=" + time.Duration(bounds[i]).String()
		} else {
			label = "> " + time.Duration(bounds[len(bounds)-1]).String()
		}
		bar := strings.Repeat("#", int(40*c/maxC))
		fmt.Fprintf(&b, "  %14s %9d %5.1f%% %s\n", label, c, 100*float64(c)/float64(total), bar)
	}
	return b.String()
}
