// Package bench is the closed-loop load harness for the serving hot
// path. It drives the same mixed read/write workload through both
// instantiations of the component library — N concurrent clients
// against a real pfs+nfs server over TCP, and N client tasks
// against Patsy under the virtual kernel — and reports throughput,
// latency quantiles and cache/volume counters as machine-readable
// JSON (the BENCH_* performance trajectory and the CI perf gate
// feed off it).
//
// The virtual-kernel numbers are deterministic per seed and
// machine-independent (ops per simulated second), which is what the
// committed baseline pins; the real-kernel numbers measure this
// machine and are recorded for the trajectory.
package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/stats"
)

// Config parameterizes one benchmark cell.
type Config struct {
	// Clients is the number of concurrent closed-loop clients (one
	// TCP connection each on the real kernel; one task each on the
	// virtual kernel).
	Clients int
	// Depth is the number of calls each real client keeps in flight
	// on its pipelined connection (1 = classic synchronous client).
	// The virtual driver runs its clients at depth 1: VKernel
	// clients are tasks, so concurrency comes from Clients.
	Depth int
	// Ops is the number of operations per client.
	Ops int
	// Files and FileBlocks size the working set.
	Files      int
	FileBlocks int
	// IOBytes is the transfer size per operation.
	IOBytes int
	// ReadFrac is the fraction of operations that stream reads
	// (the rest are random block-aligned writes).
	ReadFrac float64
	// Workload names a canned ReadFrac: "coldstream" pins 1.0 (pure
	// streaming reads over a working set twice the cache, so the
	// stream keeps missing), "writeburst" pins 0.0 (pure random
	// block-aligned writes). Empty keeps ReadFrac as configured — the
	// classic 80/20 mix — and the cell key unchanged.
	Workload string
	// Seed drives the per-client operation streams.
	Seed int64
	// Think is per-op client think time. Zero is the pure
	// closed-loop hammer; a few milliseconds models interactive
	// clients and gives readahead idle disk time to work ahead
	// into.
	Think time.Duration

	// Hot-path knobs under test.
	CacheBlocks int
	Shards      int // cache lock stripes (0 = instantiation default)
	Pipeline    int // per-connection NFS window (real kernel only)
	Readahead   int // sequential readahead window (negative = off)
	// Cluster caps clustered multi-block transfers per device
	// request: 0 = instantiation default (real kernel on at
	// layout.DefaultClusterRun, virtual off), -1 = off, > 1 = cap.
	Cluster int
	// NoVector, on the real kernel, restores the flat staging-buffer
	// I/O paths (the pre-vectoring engine) — the "before" cell of the
	// zero-copy A/B pair. The virtual kernel always runs flat (no
	// payload moves in the sim), so the knob is ignored there.
	NoVector bool
	// Scrape, on the real kernel, boots the admin endpoint and
	// embeds the /metrics deltas of the measurement phase in the
	// result (Result.Scrape).
	Scrape bool

	// Redundant-array axes. Placement, when set to "mirrored" or
	// "parity", runs the cell over a Width-member redundant array
	// (default width 3); empty keeps the classic single-stack cell —
	// keys and numbers unchanged, so the committed baseline stays
	// valid. Degrade kills DegradeMember after the prefill, so the
	// measurement runs against the degraded read/write paths;
	// Rebuild (implies Degrade) additionally runs the online rebuild
	// concurrently with the measurement — the "rebuilding" cell.
	Placement     string
	Width         int
	StripeBlocks  int
	Degrade       bool
	DegradeMember int
	Rebuild       bool
	// SelfHeal (real kernel, redundant placements only) runs the cell
	// through a supervised repair: the server boots with one hot spare
	// and the health supervisor on, DegradeMember is killed at the
	// fault seam shortly after the measurement starts, and the clients
	// — riding the transient-fault retry transport — serve through
	// detection, spare promotion, online rebuild and scrub-verify. The
	// result records the supervisor's detection latency and MTTR
	// alongside the serving numbers.
	SelfHeal bool
}

// Quick is the CI smoke cell: a working set twice the cache (8 MB
// over a 4 MB cache) so streaming reads actually miss — readahead
// and shard contention are exercised — while staying a few seconds
// end to end.
func Quick(clients int) Config {
	return Config{
		Clients:     clients,
		Depth:       4,
		Ops:         300,
		Files:       8,
		FileBlocks:  256,
		IOBytes:     16 << 10,
		ReadFrac:    0.8,
		Seed:        1996,
		CacheBlocks: 1024,
	}
}

// CacheCounters is the cache's contribution to a result.
type CacheCounters struct {
	Lookups        int64   `json:"lookups"`
	Hits           int64   `json:"hits"`
	HitRate        float64 `json:"hit_rate"`
	Evictions      int64   `json:"evictions"`
	FlushedBlocks  int64   `json:"flushed_blocks"`
	ReadaheadFills int64   `json:"readahead_fills"`
}

// VolumeCounters is the disk stacks' contribution to a result:
// block traffic plus the requests that carried it, so the clustering
// win shows up as a transfer-size ratio, not just wall clock.
type VolumeCounters struct {
	BlocksRead    int64 `json:"blocks_read"`
	BlocksWritten int64 `json:"blocks_written"`
	ReadReqs      int64 `json:"read_reqs"`
	WriteReqs     int64 `json:"write_reqs"`
	// BlocksPerReq is the mean transfer size the disks saw.
	BlocksPerReq float64 `json:"blocks_per_req"`
}

// Result is one benchmark cell's measurements.
type Result struct {
	Kernel    string  `json:"kernel"` // "real" or "virtual"
	Clients   int     `json:"clients"`
	Depth     int     `json:"depth"`
	Shards    int     `json:"shards"`
	Pipeline  int     `json:"pipeline"`
	Readahead int     `json:"readahead"`
	Cluster   int     `json:"cluster"` // effective run cap (1 = off)
	Ops       int64   `json:"ops"`
	WallMS    float64 `json:"wall_ms"`
	SimMS     float64 `json:"sim_ms,omitempty"`
	// OpsPerSec is ops over wall time on the real kernel and ops
	// over simulated time on the virtual kernel.
	OpsPerSec float64 `json:"ops_per_sec"`
	// MBPerSec is the payload volume the clients moved (ops times
	// transfer size) over the same denominator as OpsPerSec.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// StagedCopyBytes counts payload bytes the server memcpy'd into
	// flat staging buffers during the measurement phase. Zero on a
	// fully vectored real-kernel cell — the zero-copy claim, as a
	// number. Virtual cells report 0 (the sim carries no payload).
	StagedCopyBytes int64 `json:"staged_copy_bytes"`
	// NoVector marks a real-kernel cell that ran the flat staging
	// paths (Config.NoVector); keyed separately so the A/B pair can
	// live in one file.
	NoVector bool `json:"no_vector,omitempty"`
	// Workload is the canned-ReadFrac name when the cell ran one
	// (Config.Workload); empty on classic mixed cells.
	Workload string         `json:"workload,omitempty"`
	MeanMS   float64        `json:"mean_ms"`
	P50MS    float64        `json:"p50_ms"`
	P95MS    float64        `json:"p95_ms"`
	P99MS    float64        `json:"p99_ms"`
	Cache    CacheCounters  `json:"cache"`
	Volume   VolumeCounters `json:"volume"`
	// Scrape holds the measurement-phase /metrics deltas when the
	// cell ran with Config.Scrape (family-level series only; the
	// le=/quantile= expansions stay on the endpoint).
	Scrape map[string]float64 `json:"scrape,omitempty"`
	// Redundant-array cell identity (empty/false on classic cells,
	// which keeps their JSON byte-identical).
	Placement string `json:"placement,omitempty"`
	Width     int    `json:"width,omitempty"`
	Degraded  bool   `json:"degraded,omitempty"`
	Rebuild   bool   `json:"rebuild,omitempty"`
	// RebuildMS is the online rebuild's duration in the rebuilding
	// cell (simulated ms on the virtual kernel).
	RebuildMS float64 `json:"rebuild_ms,omitempty"`
	// SelfHeal marks a supervised-repair cell; DetectMS is the time
	// from the kill to the monitor's confirmed verdict, MTTRMS the
	// time from the kill to the scrub-verified rebuilt array (both
	// wall-clock: the repair races real client load).
	SelfHeal bool    `json:"self_heal,omitempty"`
	DetectMS float64 `json:"detect_ms,omitempty"`
	MTTRMS   float64 `json:"mttr_ms,omitempty"`
}

// Key identifies a cell for baseline comparison. Redundant-array
// cells append placement and serving-state suffixes; classic cells
// keep their pre-redundancy keys, so the committed baseline gates
// them unchanged while the matrix grows.
func (r Result) Key() string {
	k := fmt.Sprintf("%s/c%d/d%d/s%d/p%d/ra%d/cl%d",
		r.Kernel, r.Clients, r.Depth, r.Shards, r.Pipeline, r.Readahead, r.Cluster)
	if r.Workload != "" {
		k += "/" + r.Workload
	}
	if r.NoVector {
		// Only the flat-path cells grow a suffix: vectored cells keep
		// the pre-vectoring keys, so the committed baseline gates the
		// default engine unchanged.
		k += "/novec"
	}
	if r.Placement != "" {
		k += fmt.Sprintf("/%s%d", r.Placement, r.Width)
		switch {
		case r.SelfHeal:
			k += "/selfheal"
		case r.Rebuild:
			k += "/rebuilding"
		case r.Degraded:
			k += "/degraded"
		default:
			k += "/healthy"
		}
	}
	return k
}

// File is the BENCH_*.json format.
type File struct {
	Bench      int      `json:"bench"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Note       string   `json:"note,omitempty"`
	Runs       []Result `json:"runs"`
}

// Encode renders the file as indented JSON with a trailing newline.
func (f *File) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a BENCH_*.json file.
func Decode(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// Regression is one cell whose throughput fell past the threshold.
type Regression struct {
	Key      string
	Current  float64
	Baseline float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.1f ops/sec vs baseline %.1f (%.1f%%)",
		r.Key, r.Current, r.Baseline, 100*r.Current/r.Baseline)
}

// Compare gates current against baseline: any cell present in both
// whose ops/sec dropped by more than threshold (e.g. 0.25) is a
// regression. Cells missing from the baseline are ignored, so the
// matrix can grow without invalidating the committed baseline.
func Compare(current, baseline *File, threshold float64) []Regression {
	base := make(map[string]Result, len(baseline.Runs))
	for _, r := range baseline.Runs {
		base[r.Key()] = r
	}
	var regs []Regression
	for _, r := range current.Runs {
		b, ok := base[r.Key()]
		if !ok || b.OpsPerSec <= 0 {
			continue
		}
		if r.OpsPerSec < (1-threshold)*b.OpsPerSec {
			regs = append(regs, Regression{Key: r.Key(), Current: r.OpsPerSec, Baseline: b.OpsPerSec})
		}
	}
	return regs
}

// --- deterministic per-client operation streams ---

// op is one generated operation.
type op struct {
	read bool
	file int
	off  int64
	n    int
}

// opGen derives client ci's operation stream: sequential streaming
// reads over the client's home file, random block-aligned writes
// over the whole working set.
type opGen struct {
	rng  *rand.Rand
	cfg  *Config
	home int
	pos  int64
}

func newOpGen(cfg *Config, ci int) *opGen {
	return &opGen{
		rng:  rand.New(rand.NewSource(cfg.Seed + int64(ci)*1_000_003)),
		cfg:  cfg,
		home: ci % cfg.Files,
	}
}

func (g *opGen) next() op {
	size := int64(g.cfg.FileBlocks) * core.BlockSize
	n := g.cfg.IOBytes
	if int64(n) > size {
		n = int(size)
	}
	if g.rng.Float64() < g.cfg.ReadFrac {
		if g.pos+int64(n) > size {
			g.pos = 0 // wrap: restart the stream
		}
		o := op{read: true, file: g.home, off: g.pos, n: n}
		g.pos += int64(n)
		return o
	}
	blocks := int64(g.cfg.FileBlocks)
	maxStart := blocks - int64((n+core.BlockSize-1)/core.BlockSize)
	if maxStart < 0 {
		maxStart = 0
	}
	off := g.rng.Int63n(maxStart+1) * core.BlockSize
	return op{read: false, file: g.rng.Intn(g.cfg.Files), off: off, n: n}
}

// fill derives the defaults every driver applies.
func (c *Config) fill() {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Depth <= 0 {
		c.Depth = 1
	}
	if c.Ops <= 0 {
		c.Ops = 100
	}
	if c.Files <= 0 {
		c.Files = 4
	}
	if c.FileBlocks <= 0 {
		c.FileBlocks = 64
	}
	if c.IOBytes <= 0 {
		c.IOBytes = 16 << 10
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 {
		c.ReadFrac = 0.8
	}
	switch c.Workload {
	case "coldstream":
		c.ReadFrac = 1
	case "writeburst":
		c.ReadFrac = 0
	}
	if c.CacheBlocks <= 0 {
		c.CacheBlocks = 1024
	}
	if c.SelfHeal {
		// The supervised-repair cell owns the whole kill→rebuild arc:
		// the pre-kill and manual-rebuild knobs would double up.
		if c.Placement == "" {
			c.Placement = "mirrored"
		}
		c.Degrade = false
		c.Rebuild = false
	}
	if c.Placement != "" && c.Width <= 0 {
		c.Width = 3
	}
	if c.Rebuild {
		c.Degrade = true
	}
}

// fileName names working-set file i.
func fileName(i int) string { return fmt.Sprintf("bench%03d", i) }

// placementTag distinguishes redundant cells' image files.
func placementTag(c Config) string {
	if c.Placement == "" {
		return ""
	}
	return fmt.Sprintf("-%s%d", c.Placement, c.Width)
}

// quantilesMS extracts the latency summary in milliseconds.
func quantilesMS(d *stats.LatencyDist) (mean, p50, p95, p99 float64) {
	ms := func(v time.Duration) float64 { return float64(v) / float64(time.Millisecond) }
	return ms(d.Mean()), ms(d.Quantile(0.50)), ms(d.Quantile(0.95)), ms(d.Quantile(0.99))
}

// cacheCounters snapshots the cache statistics.
func cacheCounters(cs *cache.Stats) CacheCounters {
	c := CacheCounters{
		Lookups:        cs.Lookups.Value(),
		Hits:           cs.Hits.Value(),
		Evictions:      cs.Evictions.Value(),
		FlushedBlocks:  cs.FlushedBlocks.Value(),
		ReadaheadFills: cs.ReadaheadFills.Value(),
	}
	if c.Lookups > 0 {
		c.HitRate = float64(c.Hits) / float64(c.Lookups)
	}
	return c
}

// volumeCounters sums the disk stacks' I/O counters.
func volumeCounters(drvs []device.Driver) VolumeCounters {
	var v VolumeCounters
	for _, drv := range drvs {
		ds := drv.DriverStats()
		v.BlocksRead += ds.BlocksRead.Value()
		v.BlocksWritten += ds.BlocksWritten.Value()
		v.ReadReqs += ds.Reads.Value()
		v.WriteReqs += ds.Writes.Value()
	}
	return v.withRatio()
}

// withRatio derives the mean transfer size.
func (v VolumeCounters) withRatio() VolumeCounters {
	if reqs := v.ReadReqs + v.WriteReqs; reqs > 0 {
		v.BlocksPerReq = float64(v.BlocksRead+v.BlocksWritten) / float64(reqs)
	} else {
		v.BlocksPerReq = 0
	}
	return v
}

// sub returns the measurement-phase delta of two volume snapshots.
func (v VolumeCounters) sub(base VolumeCounters) VolumeCounters {
	return VolumeCounters{
		BlocksRead:    v.BlocksRead - base.BlocksRead,
		BlocksWritten: v.BlocksWritten - base.BlocksWritten,
		ReadReqs:      v.ReadReqs - base.ReadReqs,
		WriteReqs:     v.WriteReqs - base.WriteReqs,
	}.withRatio()
}

// sub returns the measurement-phase delta of two snapshots, so the
// reported counters exclude working-set setup.
func (c CacheCounters) sub(base CacheCounters) CacheCounters {
	d := CacheCounters{
		Lookups:        c.Lookups - base.Lookups,
		Hits:           c.Hits - base.Hits,
		Evictions:      c.Evictions - base.Evictions,
		FlushedBlocks:  c.FlushedBlocks - base.FlushedBlocks,
		ReadaheadFills: c.ReadaheadFills - base.ReadaheadFills,
	}
	if d.Lookups > 0 {
		d.HitRate = float64(d.Hits) / float64(d.Lookups)
	}
	return d
}
