package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/nfs"
	"repro/internal/pfs"
	"repro/internal/stats"
)

// RunReal drives the real instantiation: a pfs server (fresh image
// under dir) behind its NFS front-end on a loopback TCP port,
// hammered by cfg.Clients pipelined connections with cfg.Depth
// calls in flight each. Returns the measured cell.
func RunReal(dir string, cfg Config) (Result, error) {
	cfg.fill()
	vecTag := ""
	if cfg.NoVector {
		vecTag = "-novec"
	}
	if cfg.Workload != "" {
		vecTag += "-" + cfg.Workload
	}
	if cfg.SelfHeal {
		vecTag += "-selfheal"
	}
	img := filepath.Join(dir, fmt.Sprintf("bench-c%d-s%d-p%d-ra%d-cl%d%s%s.img",
		cfg.Clients, cfg.Shards, cfg.Pipeline, cfg.Readahead, cfg.Cluster, placementTag(cfg), vecTag))
	pcfg := pfs.Config{
		Path:             img,
		Blocks:           8192, // 32 MB image (per member on an array)
		CacheBlocks:      cfg.CacheBlocks,
		CacheShards:      cfg.Shards,
		Pipeline:         cfg.Pipeline,
		ReadaheadBlocks:  cfg.Readahead,
		ClusterRunBlocks: cfg.Cluster,
		Flush:            cache.UPS(),
		Seed:             cfg.Seed,
		NoVectorIO:       cfg.NoVector,
	}
	if cfg.Placement != "" {
		pcfg.Volumes = cfg.Width
		pcfg.Placement = cfg.Placement
		pcfg.StripeBlocks = cfg.StripeBlocks
	}
	if cfg.SelfHeal {
		pcfg.Spares = 1
		pcfg.SelfHeal = true
		pcfg.HealthInterval = 10 * time.Millisecond
		pcfg.Fault = &device.FaultConfig{Seed: cfg.Seed}
	}
	removeImages := func() {
		os.Remove(img)
		for i := 0; i < cfg.Width; i++ {
			os.Remove(fmt.Sprintf("%s.v%d", img, i))
			os.Remove(fmt.Sprintf("%s.s%d", img, i))
		}
	}
	removeImages()
	srv, err := pfs.Open(pcfg)
	if err != nil {
		return Result{}, err
	}
	done := false
	defer func() {
		if !done {
			srv.Close()
		}
		removeImages()
	}()
	addr, err := srv.ServeNFS("127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}

	// Build the working set through one setup connection.
	setup, err := nfs.Dial(addr)
	if err != nil {
		return Result{}, err
	}
	root, _, err := setup.Mount(1)
	if err != nil {
		setup.Close()
		return Result{}, err
	}
	fhs := make([]nfs.FH, cfg.Files)
	chunk := make([]byte, nfs.MaxIO)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	for i := 0; i < cfg.Files; i++ {
		fh, _, err := setup.Create(root, fileName(i))
		if err != nil {
			setup.Close()
			return Result{}, fmt.Errorf("bench: create %s: %w", fileName(i), err)
		}
		fhs[i] = fh
		size := int64(cfg.FileBlocks) * core.BlockSize
		for off := int64(0); off < size; off += int64(len(chunk)) {
			n := int64(len(chunk))
			if off+n > size {
				n = size - off
			}
			if _, err := setup.Write(fh, off, chunk[:n]); err != nil {
				setup.Close()
				return Result{}, fmt.Errorf("bench: prefill %s: %w", fileName(i), err)
			}
		}
	}
	setup.Close()
	// Flush the prefill so measurement starts from a steady state
	// (clean cache, data on the image).
	if err := srv.Sync(); err != nil {
		return Result{}, err
	}
	if cfg.Degrade {
		// The member dies after the prefill: the measurement runs
		// entirely against the degraded serving paths.
		if err := srv.KillMember(cfg.DegradeMember); err != nil {
			return Result{}, err
		}
	}
	base := cacheCounters(srv.Cache.CacheStats())
	baseVol := volumeCounters(srv.AllDrivers())
	baseStaged := srv.StagedCopyBytes()
	var adminAddr string
	var baseScrape map[string]float64
	if cfg.Scrape {
		if adminAddr, err = srv.ServeAdmin("127.0.0.1:0"); err != nil {
			return Result{}, err
		}
		if baseScrape, err = scrapeMetrics(adminAddr); err != nil {
			return Result{}, err
		}
	}

	// Closed loop: every client connection keeps Depth calls in
	// flight; each worker owns a deterministic operation stream.
	lat := stats.NewLatencyDist("bench")
	var wg sync.WaitGroup
	errc := make(chan error, cfg.Clients*cfg.Depth)
	clients := make([]*nfs.Client, cfg.Clients)
	for i := range clients {
		if cfg.SelfHeal {
			// Repair-window realism: the clients ride the transient-fault
			// retry transport, the way a deployment serving through a
			// member death would.
			clients[i], err = nfs.DialRetry(addr, nfs.RetryConfig{
				Attempts: 6, Window: cfg.Depth, Seed: cfg.Seed + int64(i) + 1,
			})
		} else {
			clients[i], err = nfs.DialPipeline(addr, cfg.Depth)
		}
		if err != nil {
			return Result{}, err
		}
		defer clients[i].Close()
	}
	start := time.Now()
	if cfg.SelfHeal {
		// Kill the member at the fault seam shortly into the measurement:
		// the supervisor must detect, promote and rebuild under this load.
		go func() {
			time.Sleep(25 * time.Millisecond)
			srv.Fault.Kill(cfg.DegradeMember)
		}()
	}
	var rebuildDur time.Duration
	rebuildErr := make(chan error, 1)
	if cfg.Rebuild {
		// The online rebuild competes with the client load; the cell
		// measures serving throughput while the copy runs.
		go func() {
			t0 := time.Now()
			err := srv.RebuildMember(cfg.DegradeMember)
			rebuildDur = time.Since(t0)
			rebuildErr <- err
		}()
	}
	var totalOps int64
	for ci := 0; ci < cfg.Clients; ci++ {
		for w := 0; w < cfg.Depth; w++ {
			cl := clients[ci]
			gen := newOpGen(&cfg, ci*cfg.Depth+w)
			ops := cfg.Ops / cfg.Depth
			if w < cfg.Ops%cfg.Depth {
				ops++
			}
			totalOps += int64(ops)
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, cfg.IOBytes)
				for i := range buf {
					buf[i] = byte(i)
				}
				for i := 0; i < ops; i++ {
					o := gen.next()
					t0 := time.Now()
					var err error
					if o.read {
						_, err = cl.Read(fhs[o.file], o.off, o.n)
					} else {
						_, err = cl.Write(fhs[o.file], o.off, buf[:o.n])
					}
					if err != nil {
						errc <- err
						return
					}
					lat.Observe(time.Since(t0))
					if cfg.Think > 0 {
						time.Sleep(cfg.Think)
					}
				}
			}()
		}
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errc:
		return Result{}, fmt.Errorf("bench: client op: %w", err)
	default:
	}
	if cfg.Rebuild {
		if err := <-rebuildErr; err != nil {
			return Result{}, fmt.Errorf("bench: rebuild: %w", err)
		}
	}
	var healEv pfs.HealEvent
	if cfg.SelfHeal {
		// The repair may still be running when the clients drain; wait
		// for the supervisor to close the incident.
		deadline := time.Now().Add(60 * time.Second)
		for {
			if evs := srv.HealEvents(); len(evs) > 0 {
				healEv = evs[0]
				break
			}
			if time.Now().After(deadline) {
				return Result{}, fmt.Errorf("bench: no supervised repair within 60s of the kill")
			}
			time.Sleep(5 * time.Millisecond)
		}
		if healEv.Err != "" {
			return Result{}, fmt.Errorf("bench: supervised repair failed: %s", healEv.Err)
		}
		if srv.Array.Degraded() {
			return Result{}, fmt.Errorf("bench: array still degraded after supervised repair")
		}
	}

	pipeline := cfg.Pipeline
	if pipeline == 0 {
		pipeline = nfs.DefaultPipeline
	}
	res := Result{
		Kernel:          "real",
		Clients:         cfg.Clients,
		Depth:           cfg.Depth,
		Shards:          srv.Cache.Shards(),
		Pipeline:        pipeline,
		Readahead:       srv.FS.Readahead(),
		Cluster:         srv.ClusterRun(),
		Ops:             totalOps,
		WallMS:          float64(wall) / float64(time.Millisecond),
		OpsPerSec:       float64(totalOps) / wall.Seconds(),
		MBPerSec:        float64(totalOps) * float64(cfg.IOBytes) / (1 << 20) / wall.Seconds(),
		StagedCopyBytes: srv.StagedCopyBytes() - baseStaged,
		NoVector:        cfg.NoVector,
		Workload:        cfg.Workload,
		Cache:           cacheCounters(srv.Cache.CacheStats()).sub(base),
		Volume:          volumeCounters(srv.AllDrivers()).sub(baseVol),
	}
	if cfg.Placement != "" {
		res.Placement = cfg.Placement
		res.Width = cfg.Width
		res.Degraded = cfg.Degrade
		res.Rebuild = cfg.Rebuild
		res.RebuildMS = float64(rebuildDur) / float64(time.Millisecond)
	}
	if cfg.SelfHeal {
		res.SelfHeal = true
		res.DetectMS = healEv.DetectMS
		res.MTTRMS = healEv.MTTRMS
	}
	res.MeanMS, res.P50MS, res.P95MS, res.P99MS = quantilesMS(lat)
	if cfg.Scrape {
		after, err := scrapeMetrics(adminAddr)
		if err != nil {
			return Result{}, err
		}
		res.Scrape = scrapeDelta(baseScrape, after)
	}
	done = true
	return res, srv.Shutdown()
}
