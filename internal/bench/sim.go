package bench

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fsys"
	"repro/internal/patsy"
	"repro/internal/sched"
	"repro/internal/stats"
)

// RunSim drives the same workload through Patsy under the virtual
// kernel: cfg.Clients closed-loop client tasks against one
// simulated disk stack. Throughput is ops per simulated second —
// deterministic per seed and machine-independent, which is what the
// committed CI baseline pins. Depth and Pipeline do not apply (no
// network; VKernel concurrency is per task) and are reported as 1
// and 0.
func RunSim(cfg Config) (Result, error) {
	cfg.fill()
	if cfg.SelfHeal {
		// The supervised-repair arc (health supervisor, wall-clock
		// timers, fault seam) lives on the real kernel only.
		return Result{}, fmt.Errorf("bench: SelfHeal cells require the real kernel")
	}
	cluster := cfg.Cluster
	if cluster < 2 {
		cluster = 0 // virtual default: clustering off (0 and -1 alike)
	}
	pcfg := patsy.Config{
		Seed:             cfg.Seed,
		Buses:            1,
		DisksPerBus:      []int{1},
		Volumes:          1,
		DiskModel:        "hp97560",
		QueueSched:       "clook",
		CacheBlocks:      cfg.CacheBlocks,
		Replace:          "lru",
		Flush:            cache.UPS(),
		SegBlocks:        128,
		Cleaner:          "cost-benefit",
		Layout:           "lfs",
		CacheShards:      cfg.Shards,
		ReadaheadBlocks:  cfg.Readahead,
		ClusterRunBlocks: cluster,
	}
	if cfg.Placement != "" {
		// Redundant cell: one disk stack per array member.
		pcfg.ArrayVolumes = cfg.Width
		pcfg.Placement = cfg.Placement
		pcfg.StripeBlocks = cfg.StripeBlocks
	}
	sys, err := patsy.Build(pcfg)
	if err != nil {
		return Result{}, err
	}
	lat := stats.NewLatencyDist("bench")
	var runErr error
	var simDur, rebuildDur time.Duration
	var base CacheCounters
	var baseVol VolumeCounters
	sys.K.Go("bench.main", func(t sched.Task) {
		defer sys.K.Stop()
		if err := sys.Init(t); err != nil {
			runErr = err
			return
		}
		v := sys.FS.Vol(1)
		handles := make([]*fsys.Handle, cfg.Files)
		size := int64(cfg.FileBlocks) * core.BlockSize
		for i := range handles {
			h, err := v.EnsureFile(t, "/"+fileName(i), 0, false)
			if err != nil {
				runErr = err
				return
			}
			for off := int64(0); off < size; off += int64(cfg.IOBytes) {
				n := int64(cfg.IOBytes)
				if off+n > size {
					n = size - off
				}
				if err := v.WriteAt(t, h, off, nil, n); err != nil {
					runErr = err
					return
				}
			}
			handles[i] = h
		}
		// Flush the prefill: measurement starts from a steady state
		// (clean cache, data on disk), not from a cache full of
		// setup dirt that blocks readahead and skews the first ops.
		if err := sys.FS.SyncAll(t); err != nil {
			runErr = err
			return
		}
		if cfg.Degrade {
			// The member dies after the prefill: the measurement runs
			// entirely against the degraded serving paths.
			if err := sys.KillMember(cfg.DegradeMember); err != nil {
				runErr = err
				return
			}
		}
		base = cacheCounters(sys.Cache.CacheStats())
		baseVol = volumeCounters(sys.Drivers)
		start := sys.K.Now()
		done := sys.K.NewEvent("bench.done")
		rebuilt := sys.K.NewEvent("bench.rebuilt")
		if cfg.Rebuild {
			// The online rebuild competes with the client load; the
			// cell measures serving throughput while the copy runs.
			sys.K.Go("bench.rebuild", func(rt sched.Task) {
				defer rebuilt.Signal()
				t0 := sys.K.Now()
				if err := sys.RebuildMember(rt, cfg.DegradeMember); err != nil && runErr == nil {
					runErr = err
					return
				}
				rebuildDur = sys.K.Now().Sub(t0)
			})
		}
		for ci := 0; ci < cfg.Clients; ci++ {
			gen := newOpGen(&cfg, ci)
			sys.K.Go(fmt.Sprintf("bench.client%d", ci), func(ct sched.Task) {
				defer done.Signal()
				for i := 0; i < cfg.Ops; i++ {
					o := gen.next()
					t0 := sys.K.Now()
					// Mirror the NFS dispatch path: resolve a fresh
					// handle per call, transfer, close.
					h, err := v.OpenByID(ct, handles[o.file].ID())
					if err != nil {
						runErr = err
						return
					}
					if o.read {
						_, err = v.ReadAt(ct, h, o.off, nil, int64(o.n))
					} else {
						err = v.WriteAt(ct, h, o.off, nil, int64(o.n))
					}
					v.Close(ct, h)
					if err != nil {
						runErr = err
						return
					}
					lat.Observe(sys.K.Now().Sub(t0))
					if cfg.Think > 0 {
						ct.Sleep(cfg.Think)
					}
				}
			})
		}
		for i := 0; i < cfg.Clients; i++ {
			done.Wait(t)
		}
		simDur = sys.K.Now().Sub(start)
		if cfg.Rebuild {
			rebuilt.Wait(t)
		}
		for _, h := range handles {
			v.Close(t, h)
		}
	})
	if err := sys.K.Run(); err != nil {
		return Result{}, err
	}
	if runErr != nil {
		return Result{}, runErr
	}
	totalOps := int64(cfg.Clients) * int64(cfg.Ops)
	resCluster := cluster
	if resCluster < 1 {
		resCluster = 1
	}
	res := Result{
		Kernel:    "virtual",
		Clients:   cfg.Clients,
		Depth:     1,
		Shards:    sys.Cache.Shards(),
		Pipeline:  0,
		Readahead: sys.FS.Readahead(),
		Cluster:   resCluster,
		Ops:       totalOps,
		SimMS:     float64(simDur) / float64(time.Millisecond),
		OpsPerSec: float64(totalOps) / simDur.Seconds(),
		MBPerSec:  float64(totalOps) * float64(cfg.IOBytes) / (1 << 20) / simDur.Seconds(),
		Workload:  cfg.Workload,
		Cache:     cacheCounters(sys.Cache.CacheStats()).sub(base),
		Volume:    volumeCounters(sys.Drivers).sub(baseVol),
	}
	if cfg.Placement != "" {
		res.Placement = cfg.Placement
		res.Width = cfg.Width
		res.Degraded = cfg.Degrade
		res.Rebuild = cfg.Rebuild
		res.RebuildMS = float64(rebuildDur) / float64(time.Millisecond)
	}
	res.MeanMS, res.P50MS, res.P95MS, res.P99MS = quantilesMS(lat)
	return res, nil
}
