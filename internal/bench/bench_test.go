package bench

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func tiny() Config {
	return Config{
		Clients:     2,
		Depth:       2,
		Ops:         40,
		Files:       2,
		FileBlocks:  32,
		IOBytes:     8 << 10,
		ReadFrac:    0.75,
		Seed:        1996,
		CacheBlocks: 128,
	}
}

// The virtual driver is fully deterministic: same config, same
// numbers — the property the committed CI baseline relies on.
func TestSimDeterministic(t *testing.T) {
	a, err := RunSim(tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("virtual runs differ:\n%+v\n%+v", a, b)
	}
	if a.Ops != 80 || a.OpsPerSec <= 0 || a.P50MS <= 0 || a.SimMS <= 0 {
		t.Fatalf("implausible result: %+v", a)
	}
	if a.Kernel != "virtual" {
		t.Fatalf("kernel = %q", a.Kernel)
	}
}

// Readahead on the streaming cell turns cold sequential misses into
// hits and cuts p50 latency — the sim-side before/after the serving
// study reports.
func TestSimReadaheadImproves(t *testing.T) {
	cfg := Config{
		Clients: 1, Ops: 100, Files: 1, FileBlocks: 1024,
		IOBytes: 16 << 10, ReadFrac: 1.0, Seed: 1996,
		CacheBlocks: 256, Think: 60 * time.Millisecond,
	}
	off, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Readahead = 8
	on, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.Cache.ReadaheadFills == 0 {
		t.Fatal("readahead cell issued no fills")
	}
	if on.P50MS >= off.P50MS {
		t.Fatalf("readahead p50 %.2fms not better than %.2fms", on.P50MS, off.P50MS)
	}
	if on.Cache.HitRate <= off.Cache.HitRate {
		t.Fatalf("readahead hit rate %.2f not better than %.2f", on.Cache.HitRate, off.Cache.HitRate)
	}
}

// The real driver round-trips over loopback TCP with pipelined
// clients and reports sane numbers.
func TestRealSmoke(t *testing.T) {
	res, err := RunReal(t.TempDir(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "real" || res.Ops != 80 || res.OpsPerSec <= 0 || res.P50MS <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Shards != 8 || res.Pipeline != 8 || res.Readahead != 8 {
		t.Fatalf("default knobs not recorded: %+v", res)
	}
	if res.Cache.Lookups == 0 {
		t.Fatal("no cache traffic recorded")
	}
}

// The real driver honors the classic-engine knobs.
func TestRealClassicKnobs(t *testing.T) {
	cfg := tiny()
	cfg.Shards, cfg.Pipeline, cfg.Readahead = 1, 1, -1
	res, err := RunReal(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 1 || res.Pipeline != 1 || res.Readahead != 0 {
		t.Fatalf("classic knobs not honored: %+v", res)
	}
	if res.Cache.ReadaheadFills != 0 {
		t.Fatalf("readahead fills with readahead off: %d", res.Cache.ReadaheadFills)
	}
}

// With Scrape on, the real cell embeds /metrics deltas that agree
// with the natively snapshotted counters over the same window.
func TestRealScrapeEmbed(t *testing.T) {
	cfg := tiny()
	cfg.Scrape = true
	res, err := RunReal(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scrape) == 0 {
		t.Fatal("no scrape deltas embedded")
	}
	if d := res.Scrape["pfs_cache_lookups_total"]; d != float64(res.Cache.Lookups) {
		t.Fatalf("scrape lookups delta %v != native %d", d, res.Cache.Lookups)
	}
	if d := res.Scrape[`pfs_nfs_calls_total{op="read"}`] + res.Scrape[`pfs_nfs_calls_total{op="write"}`]; int64(d) != res.Ops {
		t.Fatalf("scrape call delta %v != ops %d", d, res.Ops)
	}
	for k := range res.Scrape {
		if strings.Contains(k, `le="`) || strings.Contains(k, `quantile="`) {
			t.Fatalf("distribution expansion leaked into the embed: %s", k)
		}
	}
	// The embed survives the JSON round trip.
	data, err := (&File{Runs: []Result{res}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Runs[0].Scrape, res.Scrape) {
		t.Fatal("scrape map did not round-trip")
	}
	// An unscraped cell stays scrape-free (omitempty keeps old files
	// byte-compatible).
	if plain, err := RunReal(t.TempDir(), tiny()); err != nil || plain.Scrape != nil {
		t.Fatalf("plain cell scrape = %v (err %v)", plain.Scrape, err)
	}
}

// Compare flags only cells that regressed past the threshold and
// ignores cells missing from the baseline.
func TestCompare(t *testing.T) {
	cell := func(kernel string, clients int, ops float64) Result {
		return Result{Kernel: kernel, Clients: clients, Depth: 1, Shards: 1, OpsPerSec: ops}
	}
	baseline := &File{Runs: []Result{
		cell("virtual", 1, 1000),
		cell("virtual", 4, 2000),
	}}
	current := &File{Runs: []Result{
		cell("virtual", 1, 800),  // -20%: within threshold
		cell("virtual", 4, 1400), // -30%: regression
		cell("real", 4, 1),       // not in baseline: ignored
	}}
	regs := Compare(current, baseline, 0.25)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v", regs)
	}
	if regs[0].Key != (cell("virtual", 4, 0)).Key() {
		t.Fatalf("wrong cell flagged: %v", regs[0])
	}
	if got := regs[0].String(); got == "" {
		t.Fatal("empty regression description")
	}
}

// The JSON file round-trips.
func TestFileRoundTrip(t *testing.T) {
	f := &File{Bench: 3, GOMAXPROCS: 2, Note: "test", Runs: []Result{{Kernel: "virtual", Clients: 1, OpsPerSec: 42}}}
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bench != 3 || len(got.Runs) != 1 || got.Runs[0].OpsPerSec != 42 {
		t.Fatalf("round trip: %+v", got)
	}
}
