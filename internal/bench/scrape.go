package bench

// Scrape support: with Config.Scrape set, RunReal boots the server's
// admin endpoint, scrapes /metrics at the same points the native
// counters snapshot (post-prefill and post-measurement), and embeds
// the per-series deltas in the result cell. The embed keeps family-
// level series (counters, gauges, histogram/summary _sum and _count)
// and drops the le= / quantile= expansions — the full distributions
// stay on the endpoint; the JSON carries the deltas a trajectory
// wants to diff.

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// scrapeMetrics GETs http://addr/metrics and parses the Prometheus
// text exposition into series -> value.
func scrapeMetrics(addr string) (map[string]float64, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("bench: scrape: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("bench: scrape: %s", resp.Status)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue // +Inf / NaN samples are not embeddable
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: scrape: %w", err)
	}
	return out, nil
}

// scrapeDelta returns after-minus-base per series, dropping bucket
// and quantile expansions and zero deltas.
func scrapeDelta(base, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range after {
		if strings.Contains(k, `le="`) || strings.Contains(k, `quantile="`) {
			continue
		}
		if d := v - base[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}
