package bus

import (
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/stats"
)

func TestWireTime(t *testing.T) {
	k := sched.NewVirtual(1)
	b := New(k, SCSI2("scsi0"))
	// 10 MB at 10 MB/s is one second plus the per-message cost.
	got := b.WireTime(10 << 20)
	want := time.Second + 100*time.Microsecond
	if got != want {
		t.Fatalf("WireTime(10MB) = %v, want %v", got, want)
	}
}

func TestSendDelaysSender(t *testing.T) {
	k := sched.NewVirtual(1)
	b := New(k, SCSI2("scsi0"))
	var took time.Duration
	k.Go("sender", func(tk sched.Task) {
		start := k.Now()
		b.Send(tk, 1<<20) // 1 MB ≈ 100 ms on a 10 MB/s bus
		took = k.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if took < 100*time.Millisecond || took > 105*time.Millisecond {
		t.Fatalf("1MB send took %v, want ≈100ms", took)
	}
}

func TestContentionSerializes(t *testing.T) {
	k := sched.NewVirtual(7)
	b := New(k, SCSI2("scsi0"))
	var finished []time.Duration
	for i := 0; i < 3; i++ {
		k.Go("xfer", func(tk sched.Task) {
			b.Send(tk, 1<<20)
			finished = append(finished, time.Duration(k.Now()))
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(finished) != 3 {
		t.Fatalf("finished %d transfers", len(finished))
	}
	// Three 1 MB transfers must serialize: last ends ≈ 300 ms.
	last := finished[2]
	if last < 300*time.Millisecond {
		t.Fatalf("transfers overlapped: last finished at %v", last)
	}
}

func TestDefaultBandwidthApplied(t *testing.T) {
	k := sched.NewVirtual(1)
	b := New(k, Params{Name: "x"}) // zero bandwidth gets the default
	if b.WireTime(10<<20) > 2*time.Second {
		t.Fatal("default bandwidth not applied")
	}
}

func TestStatsRegistered(t *testing.T) {
	k := sched.NewVirtual(1)
	b := New(k, SCSI2("scsi0"))
	set := stats.NewSet()
	b.Stats(set)
	if set.Len() != 4 {
		t.Fatalf("registered %d sources, want 4", set.Len())
	}
	k.Go("s", func(tk sched.Task) { b.Send(tk, 4096) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Utilization() == "" {
		t.Fatal("empty utilization summary")
	}
}
