// Package bus models the connection between host and disk
// sub-system: the paper's SCSI-2 bus at 10 MB/s with arbitration,
// contention between controllers sharing the connection, and
// disconnect/reconnect within a transaction (the bus is held only
// while requests or data actually move, not during seeks or
// rotation).
//
// As no real data moves through a simulated connection, Transfer
// simply delays the calling task by the time the bytes would take.
package bus

import (
	"fmt"
	"time"

	"repro/internal/sched"
	"repro/internal/stats"
)

// Params describes a bus.
type Params struct {
	Name        string
	BytesPerSec int64         // raw transfer bandwidth
	Arbitration time.Duration // cost of winning arbitration
	PerMessage  time.Duration // fixed cost of each message/selection
}

// SCSI2 returns the paper's SCSI-2 parameters: 10 MB/s transfer
// rate with conventional arbitration and selection overheads.
func SCSI2(name string) Params {
	return Params{
		Name:        name,
		BytesPerSec: 10 << 20,
		Arbitration: 10 * time.Microsecond,
		PerMessage:  100 * time.Microsecond,
	}
}

// Bus is one host/disk connection. Multiple disks (and the host
// initiator) contend for it; arbitration is FIFO through the
// kernel's mutex hand-off.
type Bus struct {
	p  Params
	k  sched.Kernel
	mu sched.Mutex

	transfers *stats.Counter
	bytes     *stats.Counter
	waitTime  *stats.Moments // µs spent waiting for the bus
	heldTime  *stats.Moments // µs the bus is held per transaction
}

// New creates a bus on kernel k.
func New(k sched.Kernel, p Params) *Bus {
	if p.BytesPerSec <= 0 {
		p.BytesPerSec = 10 << 20
	}
	return &Bus{
		p:         p,
		k:         k,
		mu:        k.NewMutex("bus " + p.Name),
		transfers: stats.NewCounter(p.Name + ".transfers"),
		bytes:     stats.NewCounter(p.Name + ".bytes"),
		waitTime:  stats.NewMoments(p.Name + ".wait_us"),
		heldTime:  stats.NewMoments(p.Name + ".held_us"),
	}
}

// Name returns the bus name.
func (b *Bus) Name() string { return b.p.Name }

// Acquire wins arbitration for the calling task, blocking while the
// bus is in use by another controller.
func (b *Bus) Acquire(t sched.Task) {
	start := b.k.Now()
	b.mu.Lock(t)
	b.waitTime.Observe(float64(b.k.Now().Sub(start)) / 1e3)
	if b.p.Arbitration > 0 {
		t.Sleep(b.p.Arbitration)
	}
}

// Release disconnects from the bus, letting the next waiter win
// arbitration.
func (b *Bus) Release(t sched.Task) { b.mu.Unlock(t) }

// Transfer moves n message bytes while the bus is held, delaying the
// task by the wire time. It must be called between Acquire and
// Release.
func (b *Bus) Transfer(t sched.Task, n int64) {
	d := b.p.PerMessage + time.Duration(n*int64(time.Second)/b.p.BytesPerSec)
	t.Sleep(d)
	b.transfers.Inc()
	b.bytes.Add(n)
}

// Send is the common transaction shape: acquire, transfer n bytes,
// release. It returns the time the bus was held.
func (b *Bus) Send(t sched.Task, n int64) time.Duration {
	b.Acquire(t)
	start := b.k.Now()
	b.Transfer(t, n)
	held := b.k.Now().Sub(start)
	b.Release(t)
	b.heldTime.Observe(float64(held) / 1e3)
	return held
}

// WireTime reports how long n bytes occupy the bus, without moving
// them — used by capacity planning and tests.
func (b *Bus) WireTime(n int64) time.Duration {
	return b.p.PerMessage + time.Duration(n*int64(time.Second)/b.p.BytesPerSec)
}

// Stats registers the bus's statistics sources into set.
func (b *Bus) Stats(set *stats.Set) {
	set.Add(b.transfers)
	set.Add(b.bytes)
	set.Add(b.waitTime)
	set.Add(b.heldTime)
}

// Utilization summarises the bus for reports.
func (b *Bus) Utilization() string {
	return fmt.Sprintf("%s: %d transfers, %d bytes, mean wait %.1fµs, mean held %.1fµs",
		b.p.Name, b.transfers.Value(), b.bytes.Value(), b.waitTime.Mean(), b.heldTime.Mean())
}
