package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bench"
)

// This file is the hot-path serving study: the before/after
// microbenchmark for the PR-3 optimizations, run on the same
// internal/bench harness the CI perf gate uses.
//
// Two axes, matched to where each optimization can show up:
//
//   - Streaming (virtual kernel, deterministic): one client reads a
//     file front to back with think time between requests, readahead
//     off vs on. Readahead turns cold sequential misses into cache
//     hits by working ahead into the disk's idle time.
//
//   - Contention (real kernel, this machine): N closed-loop client
//     connections hammer the server with the classic engine
//     (1 cache shard, no NFS pipelining, no readahead) vs the
//     default engine (8 shards, window-8 pipelining, readahead 8).
//     The win needs real parallelism, so it scales with cores — on
//     a single-core host the two land close together.

// ServingRow is one study cell.
type ServingRow struct {
	Name string
	Res  bench.Result
}

// streamCell is the streaming workload: cold sequential reads with
// idle disk time to work ahead into.
func streamCell(ra int) bench.Config {
	return bench.Config{
		Clients:     1,
		Ops:         200,
		Files:       1,
		FileBlocks:  2048, // 8 MB file over a 4 MB cache: always cold
		IOBytes:     16 << 10,
		ReadFrac:    1.0,
		Seed:        DefaultSeed,
		CacheBlocks: 1024,
		Think:       60 * time.Millisecond,
		Readahead:   ra,
	}
}

// RunServingStudy measures both axes. dir holds the real-kernel
// image files; realClients picks the contention cells (nil = {4}).
func RunServingStudy(dir string, realClients []int) ([]ServingRow, error) {
	if len(realClients) == 0 {
		realClients = []int{4}
	}
	var rows []ServingRow

	before, err := bench.RunSim(streamCell(-1))
	if err != nil {
		return nil, err
	}
	rows = append(rows, ServingRow{Name: "virtual stream, readahead off", Res: before})
	after, err := bench.RunSim(streamCell(8))
	if err != nil {
		return nil, err
	}
	rows = append(rows, ServingRow{Name: "virtual stream, readahead 8", Res: after})

	for _, c := range realClients {
		classic := bench.Quick(c)
		classic.Shards, classic.Pipeline, classic.Readahead = 1, 1, -1
		res, err := bench.RunReal(dir, classic)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ServingRow{Name: fmt.Sprintf("real %d clients, classic engine", c), Res: res})

		tuned := bench.Quick(c)
		res, err = bench.RunReal(dir, tuned)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ServingRow{Name: fmt.Sprintf("real %d clients, sharded+pipelined", c), Res: res})
	}
	return rows, nil
}

// ServingTable renders the study.
func ServingTable(rows []ServingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot-path serving study: sharded cache, pipelined NFS, readahead\n")
	fmt.Fprintf(&b, "(virtual cells are deterministic ops per simulated second; real cells measure this machine)\n\n")
	fmt.Fprintf(&b, "%-36s %12s %9s %9s %9s %7s %9s\n",
		"cell", "ops/sec", "p50 ms", "p95 ms", "p99 ms", "hit", "ra fills")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %12.1f %9.2f %9.2f %9.2f %6.1f%% %9d\n",
			r.Name, r.Res.OpsPerSec, r.Res.P50MS, r.Res.P95MS, r.Res.P99MS,
			100*r.Res.Cache.HitRate, r.Res.Cache.ReadaheadFills)
	}
	return b.String()
}
