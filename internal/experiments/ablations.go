package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/patsy"
)

// AblationRow is one variant's outcome.
type AblationRow struct {
	Variant string
	Report  *patsy.Report
}

// renderAblation prints a variant table.
func renderAblation(title string, rows []AblationRow, extra func(*patsy.Report) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		line := fmt.Sprintf("  %-16s mean=%-12s ops=%-7d flushed=%-8d",
			r.Variant, r.Report.MeanLatency().Round(time.Microsecond),
			r.Report.WallOps, r.Report.Flushed)
		if extra != nil {
			line += " " + extra(r.Report)
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// AblateReplacement compares cache replacement policies on one
// trace (the paper's RR/LFU/SLRU/LRU-K policy point). The cache is
// shrunk so replacement actually happens: policies only differ
// under eviction pressure.
func AblateReplacement(s Scale, traceName string, seed int64) (string, error) {
	recs := s.Trace(traceName, seed)
	small := s.CacheBlocks / 16
	if small < 128 {
		small = 128
	}
	var rows []AblationRow
	for _, rp := range []string{"lru", "random", "lfu", "slru", "lru2"} {
		cfg := s.Config(seed, cache.WriteDelay())
		cfg.CacheBlocks = small
		cfg.Replace = rp
		rep, err := patsy.Run(cfg, traceName, recs)
		if err != nil {
			return "", err
		}
		rows = append(rows, AblationRow{Variant: rp, Report: rep})
	}
	return renderAblation(
		fmt.Sprintf("Ablation: cache replacement policy (trace %s, write-delay, %d-block cache)", traceName, small),
		rows, func(r *patsy.Report) string {
			return fmt.Sprintf("readhit=%.1f%%", 100*r.ReadHit)
		}), nil
}

// AblateQueueSched compares disk-queue schedulers on the write-heavy
// trace 5, where disk queues actually build depth.
func AblateQueueSched(s Scale, traceName string, seed int64) (string, error) {
	if traceName == "" || traceName == "1a" {
		traceName = "5"
	}
	recs := s.Trace(traceName, seed)
	var rows []AblationRow
	for _, qs := range []string{"fcfs", "sstf", "look", "clook", "cscan", "scan-edf"} {
		cfg := s.Config(seed, cache.WriteDelay())
		cfg.QueueSched = qs
		rep, err := patsy.Run(cfg, traceName, recs)
		if err != nil {
			return "", err
		}
		rows = append(rows, AblationRow{Variant: qs, Report: rep})
	}
	return renderAblation(
		fmt.Sprintf("Ablation: disk queue scheduler (trace %s, write-delay)", traceName),
		rows, nil), nil
}

// AblateLayout compares the segmented LFS against the FFS-like
// in-place layout.
func AblateLayout(s Scale, traceName string, seed int64) (string, error) {
	recs := s.Trace(traceName, seed)
	var rows []AblationRow
	for _, lay := range []string{"lfs", "ffs"} {
		cfg := s.Config(seed, cache.WriteDelay())
		cfg.Layout = lay
		rep, err := patsy.Run(cfg, traceName, recs)
		if err != nil {
			return "", err
		}
		rows = append(rows, AblationRow{Variant: lay, Report: rep})
	}
	return renderAblation(
		fmt.Sprintf("Ablation: storage layout (trace %s, write-delay)", traceName),
		rows, nil), nil
}

// AblateDiskModel reproduces the paper's motivation: a naive
// fixed-latency disk model versus the detailed HP 97560 model
// (Ruemmler reported errors up to 112% from simple models).
func AblateDiskModel(s Scale, traceName string, seed int64) (string, error) {
	recs := s.Trace(traceName, seed)
	var rows []AblationRow
	for _, dm := range []string{"hp97560", "naive"} {
		cfg := s.Config(seed, cache.WriteDelay())
		cfg.DiskModel = dm
		rep, err := patsy.Run(cfg, traceName, recs)
		if err != nil {
			return "", err
		}
		rows = append(rows, AblationRow{Variant: dm, Report: rep})
	}
	out := renderAblation(
		fmt.Sprintf("Ablation: disk model fidelity (trace %s, write-delay)", traceName),
		rows, nil)
	if len(rows) == 2 {
		a, b := rows[0].Report.MeanLatency(), rows[1].Report.MeanLatency()
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo > 0 {
			out += fmt.Sprintf("  naive-vs-detailed divergence: %.0f%% (the 'simple models mislead' effect)\n",
				100*float64(hi-lo)/float64(lo))
		}
	}
	return out, nil
}

// AblateCleaner compares log-cleaner policies on the churn-heavy
// compile trace, with volumes capped small enough that the log
// wraps within the trace.
func AblateCleaner(s Scale, seed int64) (string, error) {
	recs := s.Trace("3", seed)
	var rows []AblationRow
	for _, cl := range []string{"greedy", "cost-benefit"} {
		cfg := s.Config(seed, cache.WriteDelay())
		cfg.Cleaner = cl
		cfg.MaxVolBlocks = 2048 // 8 MB volumes force cleaning
		rep, err := patsy.Run(cfg, "3", recs)
		if err != nil {
			return "", err
		}
		rows = append(rows, AblationRow{Variant: cl, Report: rep})
	}
	return renderAblation("Ablation: LFS cleaner policy (trace 3, write-delay, 8 MB volumes)", rows, nil), nil
}

// AblateNVRAMSize sweeps the NVRAM buffer on the write-heavy trace
// 1b, the question Baker et al. left open.
func AblateNVRAMSize(s Scale, seed int64) (string, error) {
	recs := s.Trace("1b", seed)
	sizes := []int{s.NVRAMBlocks / 4, s.NVRAMBlocks / 2, s.NVRAMBlocks, s.NVRAMBlocks * 2}
	var rows []AblationRow
	for _, n := range sizes {
		if n < 8 {
			continue
		}
		cfg := s.Config(seed, cache.NVRAMWhole(n))
		rep, err := patsy.Run(cfg, "1b", recs)
		if err != nil {
			return "", err
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("%dKB", n*4),
			Report:  rep,
		})
	}
	return renderAblation("Ablation: NVRAM size (trace 1b, whole-file flush)", rows,
		func(r *patsy.Report) string {
			return fmt.Sprintf("nvram-waits=%d", r.NVRAMWaits)
		}), nil
}

// AblateSchedulerPolicy compares thread-scheduler policies — the
// paper's derived-scheduler-class point (random is the default).
func AblateSchedulerPolicy(s Scale, traceName string, seed int64) (string, error) {
	// The policy lives in the kernel; patsy seeds random dispatch.
	// Two seeds stand in for distinct random schedules; identical
	// results would reveal a determinism bug, wildly different ones
	// an instability.
	recs := s.Trace(traceName, seed)
	var rows []AblationRow
	for i, sd := range []int64{seed, seed + 1, seed + 2} {
		rep, err := patsy.Run(s.Config(sd, cache.WriteDelay()), traceName, recs)
		if err != nil {
			return "", err
		}
		rows = append(rows, AblationRow{Variant: fmt.Sprintf("seed%d", i), Report: rep})
	}
	return renderAblation(
		fmt.Sprintf("Ablation: scheduler randomness sensitivity (trace %s)", traceName),
		rows, nil), nil
}
