package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/patsy"
)

// AblationRow is one variant's outcome.
type AblationRow struct {
	Variant string
	Report  *patsy.Report
}

// renderAblation prints a variant table.
func renderAblation(title string, rows []AblationRow, extra func(*patsy.Report) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		line := fmt.Sprintf("  %-16s mean=%-12s ops=%-7d flushed=%-8d",
			r.Variant, r.Report.MeanLatency().Round(time.Microsecond),
			r.Report.WallOps, r.Report.Flushed)
		if extra != nil {
			line += " " + extra(r.Report)
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// runVariants replays one trace under write-delay across the given
// config variants on e (nil = the machine-wide parallel engine) and
// returns the rows in variant order.
func runVariants(e *Engine, s Scale, traceName string, seed int64, variants []Variant) ([]AblationRow, error) {
	if e == nil {
		e = Parallel()
	}
	results, err := e.RunMatrix(Matrix{
		Scale:    s,
		Traces:   []string{traceName},
		Policies: []cache.FlushConfig{cache.WriteDelay()},
		Variants: variants,
		Seeds:    []int64{seed},
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, len(results))
	for i, r := range results {
		rows[i] = AblationRow{Variant: r.Cell.Variant, Report: r.Report}
	}
	return rows, nil
}

// AblateReplacement compares cache replacement policies on one
// trace (the paper's RR/LFU/SLRU/LRU-K policy point). The cache is
// shrunk so replacement actually happens: policies only differ
// under eviction pressure.
func AblateReplacement(e *Engine, s Scale, traceName string, seed int64) (string, error) {
	small := s.CacheBlocks / 16
	if small < 128 {
		small = 128
	}
	var variants []Variant
	for _, rp := range []string{"lru", "random", "lfu", "slru", "lru2"} {
		rp := rp
		variants = append(variants, Variant{Name: rp, Mutate: func(cfg *patsy.Config) {
			cfg.CacheBlocks = small
			cfg.Replace = rp
		}})
	}
	rows, err := runVariants(e, s, traceName, seed, variants)
	if err != nil {
		return "", err
	}
	return renderAblation(
		fmt.Sprintf("Ablation: cache replacement policy (trace %s, write-delay, %d-block cache)", traceName, small),
		rows, func(r *patsy.Report) string {
			return fmt.Sprintf("readhit=%.1f%%", 100*r.ReadHit)
		}), nil
}

// AblateQueueSched compares disk-queue schedulers on the write-heavy
// trace 5, where disk queues actually build depth.
func AblateQueueSched(e *Engine, s Scale, traceName string, seed int64) (string, error) {
	if traceName == "" || traceName == "1a" {
		traceName = "5"
	}
	var variants []Variant
	for _, qs := range []string{"fcfs", "sstf", "look", "clook", "cscan", "scan-edf"} {
		qs := qs
		variants = append(variants, Variant{Name: qs, Mutate: func(cfg *patsy.Config) {
			cfg.QueueSched = qs
		}})
	}
	rows, err := runVariants(e, s, traceName, seed, variants)
	if err != nil {
		return "", err
	}
	return renderAblation(
		fmt.Sprintf("Ablation: disk queue scheduler (trace %s, write-delay)", traceName),
		rows, nil), nil
}

// AblateLayout compares the segmented LFS against the FFS-like
// in-place layout.
func AblateLayout(e *Engine, s Scale, traceName string, seed int64) (string, error) {
	var variants []Variant
	for _, lay := range []string{"lfs", "ffs"} {
		lay := lay
		variants = append(variants, Variant{Name: lay, Mutate: func(cfg *patsy.Config) {
			cfg.Layout = lay
		}})
	}
	rows, err := runVariants(e, s, traceName, seed, variants)
	if err != nil {
		return "", err
	}
	return renderAblation(
		fmt.Sprintf("Ablation: storage layout (trace %s, write-delay)", traceName),
		rows, nil), nil
}

// AblateDiskModel reproduces the paper's motivation: a naive
// fixed-latency disk model versus the detailed HP 97560 model
// (Ruemmler reported errors up to 112% from simple models).
func AblateDiskModel(e *Engine, s Scale, traceName string, seed int64) (string, error) {
	var variants []Variant
	for _, dm := range []string{"hp97560", "naive"} {
		dm := dm
		variants = append(variants, Variant{Name: dm, Mutate: func(cfg *patsy.Config) {
			cfg.DiskModel = dm
		}})
	}
	rows, err := runVariants(e, s, traceName, seed, variants)
	if err != nil {
		return "", err
	}
	out := renderAblation(
		fmt.Sprintf("Ablation: disk model fidelity (trace %s, write-delay)", traceName),
		rows, nil)
	if len(rows) == 2 {
		a, b := rows[0].Report.MeanLatency(), rows[1].Report.MeanLatency()
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo > 0 {
			out += fmt.Sprintf("  naive-vs-detailed divergence: %.0f%% (the 'simple models mislead' effect)\n",
				100*float64(hi-lo)/float64(lo))
		}
	}
	return out, nil
}

// AblateCleaner compares log-cleaner policies on the churn-heavy
// compile trace, with volumes capped small enough that the log
// wraps within the trace.
func AblateCleaner(e *Engine, s Scale, seed int64) (string, error) {
	var variants []Variant
	for _, cl := range []string{"greedy", "cost-benefit"} {
		cl := cl
		variants = append(variants, Variant{Name: cl, Mutate: func(cfg *patsy.Config) {
			cfg.Cleaner = cl
			cfg.MaxVolBlocks = 2048 // 8 MB volumes force cleaning
		}})
	}
	rows, err := runVariants(e, s, "3", seed, variants)
	if err != nil {
		return "", err
	}
	return renderAblation("Ablation: LFS cleaner policy (trace 3, write-delay, 8 MB volumes)", rows, nil), nil
}

// AblateNVRAMSize sweeps the NVRAM buffer on the write-heavy trace
// 1b, the question Baker et al. left open.
func AblateNVRAMSize(e *Engine, s Scale, seed int64) (string, error) {
	sizes := []int{s.NVRAMBlocks / 4, s.NVRAMBlocks / 2, s.NVRAMBlocks, s.NVRAMBlocks * 2}
	var variants []Variant
	for _, n := range sizes {
		if n < 8 {
			continue
		}
		n := n
		variants = append(variants, Variant{
			Name: fmt.Sprintf("%dKB", n*4),
			Mutate: func(cfg *patsy.Config) {
				cfg.Flush = cache.NVRAMWhole(n)
			},
		})
	}
	rows, err := runVariants(e, s, "1b", seed, variants)
	if err != nil {
		return "", err
	}
	return renderAblation("Ablation: NVRAM size (trace 1b, whole-file flush)", rows,
		func(r *patsy.Report) string {
			return fmt.Sprintf("nvram-waits=%d", r.NVRAMWaits)
		}), nil
}

// AblateSchedulerPolicy compares thread-scheduler policies — the
// paper's derived-scheduler-class point (random is the default).
func AblateSchedulerPolicy(e *Engine, s Scale, traceName string, seed int64) (string, error) {
	// The policy lives in the kernel; patsy seeds random dispatch.
	// Distinct seeds stand in for distinct random schedules; identical
	// results would reveal a determinism bug, wildly different ones
	// an instability.
	var variants []Variant
	for i, sd := range []int64{seed, seed + 1, seed + 2} {
		sd := sd
		variants = append(variants, Variant{
			Name:   fmt.Sprintf("seed%d", i),
			Mutate: func(cfg *patsy.Config) { cfg.Seed = sd },
		})
	}
	rows, err := runVariants(e, s, traceName, seed, variants)
	if err != nil {
		return "", err
	}
	return renderAblation(
		fmt.Sprintf("Ablation: scheduler randomness sensitivity (trace %s)", traceName),
		rows, nil), nil
}
