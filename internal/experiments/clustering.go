package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/patsy"
)

// This file is the end-to-end I/O clustering study: the same trace
// replayed with clustered multi-block transfers off and on (at
// several run-size caps) under both storage layouts, measuring the
// number the paper's disk economics turn on — requests issued and
// blocks per request — next to the latency it buys. Readahead runs
// in every cell so the read side exercises ReadRun, and the
// whole-file write-delay policy gives the flusher contiguous dirty
// runs to coalesce. Every cell is one deterministic simulation on
// the parallel engine; the optional real-kernel bench cells measure
// the same toggle on the on-line server.

// ClusteringCell is one (layout, run-cap) measurement.
type ClusteringCell struct {
	Layout  string `json:"layout"`
	Cluster int    `json:"cluster"` // run cap in blocks (0 = off)
	Policy  string `json:"policy"`

	// Requests and blocks the disks saw (cleaner traffic included).
	ReadReqs      int64   `json:"read_reqs"`
	WriteReqs     int64   `json:"write_reqs"`
	BlocksRead    int64   `json:"blocks_read"`
	BlocksWritten int64   `json:"blocks_written"`
	BlocksPerReq  float64 `json:"blocks_per_req"`

	MeanLatencyMS float64 `json:"mean_latency_ms"`
	Ops           int     `json:"ops"`
}

// ClusteringStudy is the full grid plus its provenance and the
// real-kernel bench cells.
type ClusteringStudy struct {
	Trace    string           `json:"trace"`
	Scale    string           `json:"scale"`
	Seed     int64            `json:"seed"`
	Layouts  []string         `json:"layouts"`
	Caps     []int            `json:"caps"`
	Cells    []ClusteringCell `json:"cells"`
	Bench    []bench.Result   `json:"bench,omitempty"`
	Note     string           `json:"note,omitempty"`
	Kind     string           `json:"kind"`
	Revision int              `json:"revision"`
}

// RunClusteringStudy replays traceName for every layout × run-cap
// cell (cap 0 = clustering off). One engine matrix; deterministic
// per seed at any worker count.
func RunClusteringStudy(e *Engine, s Scale, traceName string, seed int64, layouts []string, caps []int) (*ClusteringStudy, error) {
	if len(layouts) == 0 {
		layouts = []string{"lfs", "ffs"}
	}
	if len(caps) == 0 {
		caps = []int{0, 8, 32}
	}
	as := ArrayScale(s)
	type cellKey struct {
		layout string
		cap    int
	}
	var variants []Variant
	byVariant := make(map[string]cellKey)
	for _, lay := range layouts {
		for _, runCap := range caps {
			lay, runCap := lay, runCap
			name := fmt.Sprintf("%s-cl%d", lay, runCap)
			byVariant[name] = cellKey{lay, runCap}
			variants = append(variants, Variant{
				Name: name,
				Mutate: func(cfg *patsy.Config) {
					cfg.Layout = lay
					cfg.ArrayVolumes = 1
					cfg.ClusterRunBlocks = runCap
					cfg.ReadaheadBlocks = 8
				},
			})
		}
	}
	results, err := e.RunMatrix(Matrix{
		Scale:    as,
		Traces:   []string{traceName},
		Policies: []cache.FlushConfig{cache.WriteDelay()},
		Variants: variants,
		Seeds:    []int64{seed},
	})
	if err != nil {
		return nil, err
	}
	study := &ClusteringStudy{
		Trace:    traceName,
		Scale:    s.Name,
		Seed:     seed,
		Layouts:  layouts,
		Caps:     caps,
		Kind:     "clustering",
		Revision: 5,
	}
	for _, r := range results {
		k, ok := byVariant[r.Cell.Variant]
		if !ok {
			return nil, fmt.Errorf("clustering study: unknown variant %q in results", r.Cell.Variant)
		}
		cell := ClusteringCell{
			Layout:        k.layout,
			Cluster:       k.cap,
			Policy:        r.Cell.Policy,
			BlocksPerReq:  r.Report.BlocksPerRequest(),
			MeanLatencyMS: float64(r.Report.MeanLatency()) / 1e6,
			Ops:           r.Report.WallOps,
		}
		for _, v := range r.Report.PerVolume {
			cell.ReadReqs += v.Reads
			cell.WriteReqs += v.Writes
			cell.BlocksRead += v.BlocksRead
			cell.BlocksWritten += v.BlocksWritten
		}
		study.Cells = append(study.Cells, cell)
	}
	return study, nil
}

// AddClusteringBench appends the real-kernel cells: a cold
// sequential streaming workload (4 MB files over a 2 MB cache, pure
// reads) with clustering off vs on, on this machine. Sequential
// cold reads are where clustering pays on the serving path —
// readahead batches become one device request per run instead of
// one per block.
func AddClusteringBench(study *ClusteringStudy, dir string, clients int) error {
	if clients <= 0 {
		clients = 2
	}
	for _, cl := range []int{-1, 0} { // off, then the server default
		cfg := bench.Config{
			Clients:     clients,
			Depth:       2,
			Ops:         400,
			Files:       clients,
			FileBlocks:  1024,
			IOBytes:     32 << 10,
			ReadFrac:    1.0,
			Seed:        DefaultSeed,
			CacheBlocks: 512,
			Cluster:     cl,
		}
		res, err := bench.RunReal(dir, cfg)
		if err != nil {
			return err
		}
		study.Bench = append(study.Bench, res)
	}
	return nil
}

// ClusteringTable renders the study for the terminal.
func ClusteringTable(st *ClusteringStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "I/O clustering study: trace %s, policy write-delay, readahead 8\n", st.Trace)
	fmt.Fprintf(&b, "(cluster = run-size cap per device request, 0 = off; blk/req is the mean transfer\n")
	fmt.Fprintf(&b, " size the disks saw — per-request overhead divides by exactly that factor)\n\n")
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %12s %12s %8s %12s\n",
		"layout", "cluster", "read reqs", "write reqs", "blocks read", "blocks wrtn", "blk/req", "latency")
	for _, c := range st.Cells {
		fmt.Fprintf(&b, "%-6s %8d %10d %10d %12d %12d %8.2f %10.2fms\n",
			c.Layout, c.Cluster, c.ReadReqs, c.WriteReqs, c.BlocksRead, c.BlocksWritten,
			c.BlocksPerReq, c.MeanLatencyMS)
	}
	if len(st.Bench) > 0 {
		fmt.Fprintf(&b, "\nreal-kernel cells (this machine):\n")
		for _, r := range st.Bench {
			fmt.Fprintf(&b, "%-28s %10.1f ops/sec  p95 %7.2fms  blk/req %5.2f\n",
				r.Key(), r.OpsPerSec, r.P95MS, r.Volume.BlocksPerReq)
		}
	}
	return b.String()
}

// ClusteringJSON is the committed-artifact form (BENCH_5.json).
func ClusteringJSON(st *ClusteringStudy) ([]byte, error) {
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
