package experiments

import (
	"fmt"
	"testing"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/disk"
	"repro/internal/fsys"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
)

// TestCutAndPasteEquivalence is the paper's thesis as a test: the
// same component code, instantiated once as the on-line system
// (real-time kernel, real memory, real bytes on a RAM disk) and once
// as the simulator (virtual-time kernel, no data, modeled disk),
// runs the same operation script and ends in the same file-system
// state — names, sizes, types, link counts.
func TestCutAndPasteEquivalence(t *testing.T) {
	script := func(tk sched.Task, v *fsys.Volume) error {
		if err := v.Mkdir(tk, "/home"); err != nil {
			return err
		}
		if err := v.Mkdir(tk, "/home/user"); err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			h, err := v.Create(tk, fmt.Sprintf("/home/user/f%d", i), core.TypeRegular)
			if err != nil {
				return err
			}
			if err := v.Write(tk, h, nilOrBytes(v, (i+1)*3000), int64((i+1)*3000)); err != nil {
				return err
			}
			if err := v.Close(tk, h); err != nil {
				return err
			}
		}
		if err := v.Remove(tk, "/home/user/f1"); err != nil {
			return err
		}
		if err := v.Rename(tk, "/home/user/f2", "/home/user/renamed"); err != nil {
			return err
		}
		h, err := v.Open(tk, "/home/user/f3")
		if err != nil {
			return err
		}
		if err := v.Truncate(tk, h, 1000); err != nil {
			return err
		}
		if err := v.Close(tk, h); err != nil {
			return err
		}
		if err := v.Symlink(tk, "/home/user/link", "/home/user/f0"); err != nil {
			return err
		}
		return nil
	}

	type entry struct {
		name string
		typ  core.FileType
		size int64
	}
	snapshot := func(tk sched.Task, v *fsys.Volume) ([]entry, error) {
		names, err := v.Readdir(tk, "/home/user")
		if err != nil {
			return nil, err
		}
		var out []entry
		for _, n := range names {
			st, err := v.Stat(tk, "/home/user/"+n)
			if err != nil {
				return nil, err
			}
			out = append(out, entry{name: n, typ: st.Type, size: st.Size})
		}
		return out, nil
	}

	// On-line instantiation: real kernel, real data, RAM device.
	var realState []entry
	{
		k := sched.NewReal(1)
		drv := device.NewMemDriver(k, "mem0", 4096, nil)
		part := layout.NewPartition(drv, 0, 0, 4096, false)
		lay := lfs.New(k, "real", part, lfs.Config{SegBlocks: 32})
		store := fsys.NewStore()
		c := cache.New(k, cache.Config{Blocks: 128, Flush: cache.UPS()}, store)
		fs := fsys.New(k, c, core.RealMover{})
		store.Bind(fs)
		c.Start()
		errc := make(chan error, 1)
		k.Go("script", func(tk sched.Task) {
			err := func() error {
				if err := lay.Format(tk); err != nil {
					return err
				}
				if err := lay.Mount(tk); err != nil {
					return err
				}
				v, err := fs.AddVolume(tk, 1, lay, false)
				if err != nil {
					return err
				}
				if err := script(tk, v); err != nil {
					return err
				}
				realState, err = snapshot(tk, v)
				return err
			}()
			errc <- err
		})
		if err := <-errc; err != nil {
			t.Fatalf("on-line run: %v", err)
		}
		k.Stop()
	}

	// Simulated instantiation: virtual kernel, modeled HP 97560, no
	// data anywhere.
	var simState []entry
	{
		k := sched.NewVirtual(1)
		b := bus.New(k, bus.SCSI2("scsi0"))
		dd := disk.New(k, disk.HP97560("d0"), b)
		dd.Start()
		drv := device.NewSimDriver(k, "d0.drv", dd, b, nil)
		part := layout.NewPartition(drv, 0, 0, 4096, true)
		lay := lfs.New(k, "sim", part, lfs.Config{SegBlocks: 32})
		store := fsys.NewStore()
		c := cache.New(k, cache.Config{Blocks: 128, Flush: cache.UPS(), Simulated: true}, store)
		fs := fsys.New(k, c, core.DefaultSimMover())
		store.Bind(fs)
		c.Start()
		k.Go("script", func(tk sched.Task) {
			defer k.Stop()
			if err := lay.Format(tk); err != nil {
				t.Errorf("sim format: %v", err)
				return
			}
			if err := lay.Mount(tk); err != nil {
				t.Errorf("sim mount: %v", err)
				return
			}
			v, err := fs.AddVolume(tk, 1, lay, true)
			if err != nil {
				t.Errorf("sim volume: %v", err)
				return
			}
			if err := script(tk, v); err != nil {
				t.Errorf("sim script: %v", err)
				return
			}
			simState, err = snapshot(tk, v)
			if err != nil {
				t.Errorf("sim snapshot: %v", err)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatalf("sim run: %v", err)
		}
	}

	// The two worlds must agree exactly.
	if len(realState) != len(simState) {
		t.Fatalf("state size differs: real %v, sim %v", realState, simState)
	}
	for i := range realState {
		if realState[i] != simState[i] {
			t.Errorf("entry %d differs: real %+v, sim %+v", i, realState[i], simState[i])
		}
	}
	want := []string{"f0", "f3", "f4", "link", "renamed"}
	for i, e := range realState {
		if e.name != want[i] {
			t.Fatalf("final namespace %v, want names %v", realState, want)
		}
	}
}

// nilOrBytes gives the real instantiation actual bytes and the
// simulated one nil, matching each world's data discipline. The
// volume's layout name is the same either way — the probe is whether
// its partition carries data.
func nilOrBytes(v *fsys.Volume, n int) []byte {
	if v.Simulated() {
		return nil
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}
