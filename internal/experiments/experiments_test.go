package experiments

import (
	"strings"
	"testing"
	"time"
)

// tinyScale keeps experiment tests fast.
func tinyScale() Scale {
	s := QuickScale()
	s.Duration = 45 * time.Second
	return s
}

func TestRunTraceAllPolicies(t *testing.T) {
	runs, err := RunTrace(tinyScale(), "1a", 3)
	if err != nil {
		t.Fatalf("RunTrace: %v", err)
	}
	if len(runs) != 4 {
		t.Fatalf("%d policy runs, want 4", len(runs))
	}
	names := map[string]bool{}
	for _, r := range runs {
		names[r.Policy] = true
		if r.Report.WallOps == 0 {
			t.Fatalf("policy %s completed no ops", r.Policy)
		}
	}
	for _, want := range []string{"writedelay", "ups", "nvram-whole", "nvram-partial"} {
		if !names[want] {
			t.Fatalf("missing policy %s", want)
		}
	}
}

func TestFigureCDFRender(t *testing.T) {
	runs, err := RunTrace(tinyScale(), "1a", 5)
	if err != nil {
		t.Fatal(err)
	}
	out := FigureCDF("Figure 2", "1a", runs)
	for _, want := range []string{"Figure 2", "writedelay", "ups", "mean", "17ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CDF output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure5AndClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trace figure in -short mode")
	}
	rows, err := RunFigure5(tinyScale(), 7, []string{"1a", "1b", "5"})
	if err != nil {
		t.Fatalf("RunFigure5: %v", err)
	}
	out := Figure5(rows)
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "1b") {
		t.Fatalf("figure 5 render incomplete:\n%s", out)
	}
	claims := ClaimChecks(rows)
	if !strings.Contains(claims, "UPS faster than write-delay") {
		t.Fatalf("claims missing:\n%s", claims)
	}
	// The headline result must reproduce at this scale: the
	// write-saving claim about disk traffic.
	if !strings.Contains(claims, "[PASS] UPS writes fewer blocks") {
		t.Fatalf("write-saving claim failed:\n%s", claims)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	s := tinyScale()
	s.Duration = 30 * time.Second
	if out, err := AblateLayout(nil, s, "2a", 11); err != nil || !strings.Contains(out, "lfs") {
		t.Fatalf("layout ablation: %v\n%s", err, out)
	}
	if out, err := AblateDiskModel(nil, s, "1a", 11); err != nil || !strings.Contains(out, "naive") {
		t.Fatalf("disk-model ablation: %v\n%s", err, out)
	}
	if out, err := AblateQueueSched(nil, s, "1a", 11); err != nil || !strings.Contains(out, "clook") {
		t.Fatalf("queue ablation: %v\n%s", err, out)
	}
}

func TestScaleTraceOverrides(t *testing.T) {
	s := QuickScale()
	recs := s.Trace("1b", 1)
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	for _, r := range recs {
		if int(r.Vol) > s.Volumes {
			t.Fatalf("record on volume %d beyond scale's %d", r.Vol, s.Volumes)
		}
	}
}

func TestUnknownTracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown trace accepted")
		}
	}()
	QuickScale().Trace("zzz", 1)
}
