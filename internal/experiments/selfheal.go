package experiments

// The self-heal study (BENCH_10.json): what a supervised repair costs
// the serving path, and how fast the loop closes. For each redundant
// placement the same closed-loop workload runs twice on the real
// kernel — once healthy (the baseline), once through the full
// supervised-repair arc: a member killed at the fault seam
// mid-measurement, the health monitor confirming the death from
// driver evidence, the hot spare promoted, the online rebuild racing
// the clients, and the scrub verify closing the incident. The repair
// cells report the detection latency and MTTR alongside the serving
// numbers. Both are wall-clock (the repair races real load), so this
// study is a per-machine trajectory artifact, not a pinned baseline.

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/bench"
)

// SelfHealStudy is the measured grid plus its provenance.
type SelfHealStudy struct {
	Seed       int64          `json:"seed"`
	Placements []string       `json:"placements"`
	Width      int            `json:"width"`
	Cells      []bench.Result `json:"cells"`
	Note       string         `json:"note,omitempty"`
	Kind       string         `json:"kind"`
	Revision   int            `json:"revision"`
}

// selfHealCell shares the degraded study's workload shape (an 8 MB
// working set over a 2 MB cache, 70/30 mix, four closed-loop
// clients), sized up in ops so the repair arc completes under load
// rather than after the clients drain.
func selfHealCell(placement string, heal bool, width int, seed int64) bench.Config {
	cfg := degradedCell(placement, "healthy", width, seed)
	cfg.Ops = 600
	cfg.SelfHeal = heal
	return cfg
}

// RunSelfHealStudy measures every placement twice: healthy baseline
// and supervised repair. dir holds the scratch images.
func RunSelfHealStudy(dir string, seed int64, placements []string, width int) (*SelfHealStudy, error) {
	if len(placements) == 0 {
		placements = []string{"mirrored", "parity"}
	}
	if width <= 0 {
		width = 3
	}
	study := &SelfHealStudy{
		Seed:       seed,
		Placements: placements,
		Width:      width,
		Kind:       "selfheal",
		Revision:   10,
		Note:       "real-kernel wall-clock cells: per-machine trajectory, not a pinned baseline",
	}
	for _, pl := range placements {
		for _, heal := range []bool{false, true} {
			res, err := bench.RunReal(dir, selfHealCell(pl, heal, width, seed))
			if err != nil {
				return nil, fmt.Errorf("selfheal study %s/heal=%v: %w", pl, heal, err)
			}
			study.Cells = append(study.Cells, res)
		}
	}
	return study, nil
}

// SelfHealTable renders the study for the terminal.
func SelfHealTable(st *SelfHealStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Self-heal study: width %d, seed %d (real kernel, wall clock)\n", st.Width, st.Seed)
	fmt.Fprintf(&b, "(selfheal = member killed mid-measurement; detection, spare promotion,\n")
	fmt.Fprintf(&b, " online rebuild and scrub verify all race the client load)\n\n")
	fmt.Fprintf(&b, "%-10s %-9s %10s %8s %8s %8s %10s %10s\n",
		"placement", "state", "ops/sec", "p50", "p95", "p99", "detect", "mttr")
	for _, r := range st.Cells {
		state, det, mttr := "healthy", "-", "-"
		if r.SelfHeal {
			state = "selfheal"
			det = fmt.Sprintf("%.0fms", r.DetectMS)
			mttr = fmt.Sprintf("%.0fms", r.MTTRMS)
		}
		fmt.Fprintf(&b, "%-10s %-9s %10.1f %7.2fm %7.2fm %7.2fm %10s %10s\n",
			r.Placement, state, r.OpsPerSec, r.P50MS, r.P95MS, r.P99MS, det, mttr)
	}
	return b.String()
}

// SelfHealJSON is the artifact form (BENCH_10.json).
func SelfHealJSON(st *SelfHealStudy) ([]byte, error) {
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
