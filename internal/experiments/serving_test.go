package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
)

// The study's virtual cells are deterministic and show the
// before/after: readahead turns the cold stream into cache hits.
func TestServingStudyVirtualCells(t *testing.T) {
	before, err := bench.RunSim(streamCell(-1))
	if err != nil {
		t.Fatal(err)
	}
	after, err := bench.RunSim(streamCell(8))
	if err != nil {
		t.Fatal(err)
	}
	if after.P50MS >= before.P50MS {
		t.Fatalf("readahead p50 %.2f not better than %.2f", after.P50MS, before.P50MS)
	}
	again, err := bench.RunSim(streamCell(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, after) {
		t.Fatal("virtual study cell is not deterministic")
	}
}

func TestServingTableRenders(t *testing.T) {
	rows := []ServingRow{
		{Name: "virtual stream, readahead off", Res: bench.Result{Kernel: "virtual", OpsPerSec: 13.2, P50MS: 15.2}},
		{Name: "virtual stream, readahead 8", Res: bench.Result{Kernel: "virtual", OpsPerSec: 16.5, P50MS: 0.2}},
	}
	out := ServingTable(rows)
	if !strings.Contains(out, "readahead off") || !strings.Contains(out, "ops/sec") {
		t.Fatalf("table missing content:\n%s", out)
	}
}
