package experiments

import (
	"bytes"
	"testing"
	"time"
)

// reliabilityScale shrinks the quick rig further so the study's 16
// cells stay test-sized.
func reliabilityScale() Scale {
	s := QuickScale()
	s.Duration = 40 * time.Second
	return s
}

// TestReliabilityStudyGuarantees runs the full policy × layout ×
// width grid into a crash and checks the paper's reliability claims
// hold in the measurements: persistent policies lose nothing and
// recover what they preserved; write-delay's loss window respects
// the update daemon's bound.
func TestReliabilityStudyGuarantees(t *testing.T) {
	st, err := RunReliabilityStudy(Parallel(), reliabilityScale(), "1a", DefaultSeed,
		[]string{"lfs", "ffs"}, []int{1, 2})
	if err != nil {
		t.Fatalf("RunReliabilityStudy: %v", err)
	}
	if len(st.Cells) != 4*2*2 {
		t.Fatalf("cells = %d, want 16", len(st.Cells))
	}
	sawLoss := false
	for _, c := range st.Cells {
		if !c.Recovered {
			t.Errorf("%s/%s/%dvol: recovery did not complete", c.Policy, c.Layout, c.Volumes)
		}
		if c.Persistent {
			if c.LostBlocks != 0 || c.LossWindowMS != 0 {
				t.Errorf("%s/%s/%dvol: persistent policy lost %d blocks (window %.0fms)",
					c.Policy, c.Layout, c.Volumes, c.LostBlocks, c.LossWindowMS)
			}
			if c.ReplayedBlocks+c.DroppedBlocks != c.SurvivorBlocks {
				t.Errorf("%s/%s/%dvol: %d survivors but %d replayed + %d dropped",
					c.Policy, c.Layout, c.Volumes, c.SurvivorBlocks, c.ReplayedBlocks, c.DroppedBlocks)
			}
		} else {
			if c.SurvivorBlocks != 0 {
				t.Errorf("%s/%s/%dvol: volatile policy kept %d survivors",
					c.Policy, c.Layout, c.Volumes, c.SurvivorBlocks)
			}
			// The 30s update rule bounds the loss window: a dirty
			// block older than MaxAge is flushed within one scan, so
			// nothing lost can be older than MaxAge + ScanInterval
			// (plus the drain second the crash task allows).
			if bound := 36 * time.Second; time.Duration(c.LossWindowMS)*time.Millisecond > bound {
				t.Errorf("%s/%s/%dvol: loss window %.0fms exceeds the write-delay bound %v",
					c.Policy, c.Layout, c.Volumes, c.LossWindowMS, bound)
			}
			if c.LostBlocks > 0 {
				sawLoss = true
			}
		}
		if c.RecoveryMS <= 0 {
			t.Errorf("%s/%s/%dvol: recovery took no virtual time", c.Policy, c.Layout, c.Volumes)
		}
	}
	if !sawLoss {
		t.Error("no write-delay cell measured any loss — the crash landed on an empty cache?")
	}
}

// TestReliabilityIntentStudy runs the intent-log revision of the grid
// and checks the namespace half of the paper's guarantee: persistent
// policies lose no acknowledged namespace operation, replay accounts
// for every surviving intent, and volatile policies keep none.
func TestReliabilityIntentStudy(t *testing.T) {
	st, err := RunReliabilityIntentStudy(Parallel(), reliabilityScale(), "1a", DefaultSeed,
		[]string{"lfs", "ffs"}, []int{1, 2})
	if err != nil {
		t.Fatalf("RunReliabilityIntentStudy: %v", err)
	}
	if st.Revision != 6 {
		t.Fatalf("revision = %d, want 6", st.Revision)
	}
	sawOps := false
	for _, c := range st.Cells {
		ns := c.Namespace
		if ns == nil {
			t.Fatalf("%s/%s/%dvol: intent study cell has no namespace column", c.Policy, c.Layout, c.Volumes)
		}
		if ns.Ops > 0 {
			sawOps = true
		}
		if c.Persistent {
			if ns.LostIntents != 0 || ns.LossWindowMS != 0 {
				t.Errorf("%s/%s/%dvol: persistent policy lost %d intents (window %.0fms)",
					c.Policy, c.Layout, c.Volumes, ns.LostIntents, ns.LossWindowMS)
			}
			if ns.Replayed+ns.Noop+ns.Dropped != ns.SurvivorIntents {
				t.Errorf("%s/%s/%dvol: %d surviving intents but %d replayed + %d noop + %d dropped",
					c.Policy, c.Layout, c.Volumes, ns.SurvivorIntents, ns.Replayed, ns.Noop, ns.Dropped)
			}
		} else if ns.SurvivorIntents != 0 {
			t.Errorf("%s/%s/%dvol: volatile policy kept %d intents",
				c.Policy, c.Layout, c.Volumes, ns.SurvivorIntents)
		}
	}
	if !sawOps {
		t.Error("no cell recorded any namespace operation — the trace replay created nothing?")
	}
}

// TestReliabilityStudyDeterministic pins the study's JSON byte-for-
// byte across worker counts — the engine contract.
func TestReliabilityStudyDeterministic(t *testing.T) {
	s := reliabilityScale()
	s.Duration = 20 * time.Second
	a, err := RunReliabilityStudy(Sequential(), s, "1a", DefaultSeed, []string{"lfs"}, []int{1, 2})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	b, err := RunReliabilityStudy(Parallel(), s, "1a", DefaultSeed, []string{"lfs"}, []int{1, 2})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	ja, _ := ReliabilityJSON(a)
	jb, _ := ReliabilityJSON(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("study not deterministic across worker counts:\n%s\nvs\n%s", ja, jb)
	}
}
