package experiments

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/patsy"
	"repro/internal/trace"
)

func TestParallelDoCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 37
		counts := make([]atomic.Int32, n)
		parallelDo(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
	parallelDo(4, 0, func(int) { t.Fatal("ran f with n=0") })
}

func TestMatrixExpansionOrderAndSharing(t *testing.T) {
	s := tinyScale()
	m := Matrix{
		Scale:  s,
		Traces: []string{"1a", "1b"},
		Seeds:  []int64{7, 8},
	}
	jobs := m.Jobs()
	// trace-major, then variant (identity), then the 4 policies, then
	// the 2 seeds: 2*4*2 = 16 jobs.
	if len(jobs) != 16 {
		t.Fatalf("%d jobs, want 16", len(jobs))
	}
	want := []Cell{
		{"1a", "writedelay", "", 7}, {"1a", "writedelay", "", 8},
		{"1a", "ups", "", 7}, {"1a", "ups", "", 8},
		{"1a", "nvram-whole", "", 7}, {"1a", "nvram-whole", "", 8},
		{"1a", "nvram-partial", "", 7}, {"1a", "nvram-partial", "", 8},
		{"1b", "writedelay", "", 7}, {"1b", "writedelay", "", 8},
		{"1b", "ups", "", 7}, {"1b", "ups", "", 8},
		{"1b", "nvram-whole", "", 7}, {"1b", "nvram-whole", "", 8},
		{"1b", "nvram-partial", "", 7}, {"1b", "nvram-partial", "", 8},
	}
	for i, j := range jobs {
		if j.Cell != want[i] {
			t.Fatalf("job %d cell %+v, want %+v", i, j.Cell, want[i])
		}
		if j.Cfg.Seed != j.Cell.Seed {
			t.Fatalf("job %d config seed %d, cell seed %d", i, j.Cfg.Seed, j.Cell.Seed)
		}
	}
	// One record stream per (trace, seed), shared across policies.
	if &jobs[0].Recs[0] != &jobs[2].Recs[0] {
		t.Fatal("policies of one (trace, seed) do not share the record stream")
	}
	if &jobs[0].Recs[0] == &jobs[1].Recs[0] {
		t.Fatal("different seeds share a record stream")
	}
	if &jobs[0].Recs[0] == &jobs[8].Recs[0] {
		t.Fatal("different traces share a record stream")
	}
}

func TestMatrixDefaults(t *testing.T) {
	jobs := Matrix{Scale: tinyScale()}.Jobs()
	wantJobs := len(trace.ProfileNames()) * 4
	if len(jobs) != wantJobs {
		t.Fatalf("%d default jobs, want %d", len(jobs), wantJobs)
	}
	for _, j := range jobs {
		if j.Cell.Seed != DefaultSeed {
			t.Fatalf("default seed %d, want %d", j.Cell.Seed, DefaultSeed)
		}
	}
}

// TestEngineMatchesSequential is the engine's core contract: the
// parallel path renders byte-identical figures to the plain
// sequential loop at the same seeds.
func TestEngineMatchesSequential(t *testing.T) {
	s := tinyScale()
	seq, err := RunTraceSequential(s, "1a", 7)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := RunTraceWith(&Engine{Workers: 8}, s, "1a", 7)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	seqOut := FigureCDF("Figure 2", "1a", seq)
	parOut := FigureCDF("Figure 2", "1a", par)
	if seqOut != parOut {
		t.Fatalf("parallel output diverges from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}
}

// TestEngineFullQuickMatrixRace drives the whole quick matrix —
// every trace × every policy — through a wide worker pool. Run under
// -race this is the engine's data-race certificate.
func TestEngineFullQuickMatrixRace(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	s := QuickScale()
	s.Duration = 30 * time.Second
	results, err := (&Engine{Workers: 8}).RunMatrix(Matrix{Scale: s})
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	wantJobs := len(trace.ProfileNames()) * 4
	if len(results) != wantJobs {
		t.Fatalf("%d results, want %d", len(results), wantJobs)
	}
	for _, r := range results {
		if r.Report == nil || r.Report.WallOps == 0 {
			t.Fatalf("%s: empty report", r.Cell)
		}
	}
}

func TestEngineErrorPropagation(t *testing.T) {
	s := tinyScale()
	variants := []Variant{
		{Name: "good"},
		{Name: "bad", Mutate: func(cfg *patsy.Config) { cfg.QueueSched = "no-such-sched" }},
	}
	results, err := Parallel().RunMatrix(Matrix{
		Scale:    s,
		Traces:   []string{"1a"},
		Policies: []cache.FlushConfig{cache.WriteDelay()},
		Variants: variants,
	})
	if err == nil {
		t.Fatal("bad variant accepted")
	}
	if !strings.Contains(err.Error(), "variant bad") {
		t.Fatalf("error does not name the failing cell: %v", err)
	}
	// Sibling jobs still completed.
	if len(results) != 2 || results[0].Err != nil || results[0].Report == nil {
		t.Fatalf("good sibling did not complete: %+v", results)
	}
}

func TestReplicateSeeds(t *testing.T) {
	got := ReplicateSeeds(100, 3)
	if len(got) != 3 || got[0] != 100 || got[1] != 101 || got[2] != 102 {
		t.Fatalf("seeds %v", got)
	}
	if got := ReplicateSeeds(5, 0); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate seeds %v", got)
	}
}

func TestRunReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated run in -short mode")
	}
	s := tinyScale()
	seeds := ReplicateSeeds(7, 3)
	rows, err := Parallel().RunReplicated(s, []string{"1a"}, seeds)
	if err != nil {
		t.Fatalf("replicated: %v", err)
	}
	if len(rows) != 1 || rows[0].Trace != "1a" || len(rows[0].Cells) != 4 {
		t.Fatalf("rows %+v", rows)
	}
	for _, c := range rows[0].Cells {
		if len(c.Reports) != 3 || len(c.Seeds) != 3 {
			t.Fatalf("cell %s has %d reports over seeds %v", c.Policy, len(c.Reports), c.Seeds)
		}
		if c.MeanLatency() <= 0 {
			t.Fatalf("cell %s mean %v", c.Policy, c.MeanLatency())
		}
		if c.StderrLatency() < 0 {
			t.Fatalf("cell %s stderr %v", c.Policy, c.StderrLatency())
		}
	}
	out := Figure5Replicated(rows, seeds)
	for _, want := range []string{"replicated over 3 seeds", "1a", "writedelay", "±"} {
		if !strings.Contains(out, want) {
			t.Fatalf("replicated figure missing %q:\n%s", want, out)
		}
	}
}

func TestReplicateStatsDegenerate(t *testing.T) {
	r := &Replicate{}
	if r.MeanLatency() != 0 || r.StderrLatency() != 0 {
		t.Fatal("empty replicate has nonzero stats")
	}
}
