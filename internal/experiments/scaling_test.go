package experiments

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/patsy"
)

// scalingScale is a small rig for the scaling tests.
func scalingScale() Scale {
	s := QuickScale()
	s.Duration = 45 * time.Second
	return s
}

// TestArrayScalingDeterministic runs the striped scaling study on
// the parallel engine at several worker counts and demands the
// rendered table be byte-identical — the array code must draw
// nothing from outside its virtual kernel.
func TestArrayScalingDeterministic(t *testing.T) {
	s := scalingScale()
	widths := []int{1, 2, 4}
	var want string
	for _, workers := range []int{1, 2, 4} {
		rows, err := RunArrayScaling(&Engine{Workers: workers}, s, "1a", DefaultSeed, widths, "striped", 8)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := ArrayScalingTable(rows, "1a", "striped", 8)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("scaling table differs at %d workers:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestArrayWidth1MatchesDirect runs the same trace once through a
// width-1 array and once through the classic single-stack topology
// and compares the full reports: the volume manager must be a
// transparent passthrough at width 1.
func TestArrayWidth1MatchesDirect(t *testing.T) {
	s := ArrayScale(scalingScale())
	recs := s.Trace("1a", DefaultSeed)
	fc := cache.UPS()

	arrayCfg := s.Config(DefaultSeed, fc)
	arrayCfg.ArrayVolumes = 1
	arrayCfg.Placement = "striped"
	arrayCfg.StripeBlocks = 8
	arrayRep, err := patsy.Run(arrayCfg, "1a", recs)
	if err != nil {
		t.Fatalf("array run: %v", err)
	}

	directCfg := s.Config(DefaultSeed, fc)
	directRep, err := patsy.Run(directCfg, "1a", recs)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	if a, d := arrayRep.MeanLatency(), directRep.MeanLatency(); a != d {
		t.Errorf("mean latency: array %v, direct %v", a, d)
	}
	if a, d := arrayRep.Result.Overall.Render(), directRep.Result.Overall.Render(); a != d {
		t.Errorf("latency CDF differs between width-1 array and direct run")
	}
	if a, d := arrayRep.Flushed, directRep.Flushed; a != d {
		t.Errorf("flushed blocks: array %d, direct %d", a, d)
	}
	if a, d := arrayRep.SimTime, directRep.SimTime; a != d {
		t.Errorf("simulated time: array %v, direct %v", a, d)
	}
	if len(arrayRep.PerVolume) != 1 || len(directRep.PerVolume) != 1 {
		t.Fatalf("per-volume arity: %d vs %d", len(arrayRep.PerVolume), len(directRep.PerVolume))
	}
	if a, d := arrayRep.PerVolume[0], directRep.PerVolume[0]; a != d {
		t.Errorf("disk traffic: array %+v, direct %+v", a, d)
	}
}

// TestArrayScalingSpreadsWrites checks the striped study actually
// uses the array: at width 4 every disk stack sees write traffic.
func TestArrayScalingSpreadsWrites(t *testing.T) {
	s := scalingScale()
	rows, err := RunArrayScaling(Parallel(), s, "1b", DefaultSeed, []int{4}, "striped", 8)
	if err != nil {
		t.Fatal(err)
	}
	rep := pickPolicy(rows[0].Runs, "ups")
	if rep == nil {
		t.Fatal("no ups run")
	}
	if len(rep.PerVolume) != 4 {
		t.Fatalf("want 4 disk stacks, got %d", len(rep.PerVolume))
	}
	for i, v := range rep.PerVolume {
		if v.BlocksWritten == 0 {
			t.Errorf("disk stack %d (%s) saw no writes", i, v.Name)
		}
	}
}
