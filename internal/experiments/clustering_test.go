package experiments

import (
	"strconv"
	"testing"
	"time"
)

// clusteringScale shrinks the quick rig so the 2-layout × 3-cap grid
// stays test-sized while the large writers still produce runs.
func clusteringScale() Scale {
	s := QuickScale()
	s.Duration = 60 * time.Second
	return s
}

// TestClusteringStudyRatioDrops runs the grid and checks the
// headline claim: with clustering on, both layouts issue fewer
// device requests for (at least) the same traffic — the blocks-per-
// request ratio rises and the request count falls.
func TestClusteringStudyRatioDrops(t *testing.T) {
	st, err := RunClusteringStudy(Parallel(), clusteringScale(), "1b", DefaultSeed,
		[]string{"lfs", "ffs"}, []int{0, 8})
	if err != nil {
		t.Fatalf("RunClusteringStudy: %v", err)
	}
	if len(st.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(st.Cells))
	}
	byKey := map[string]ClusteringCell{}
	for _, c := range st.Cells {
		byKey[c.Layout+"-"+strconv.Itoa(c.Cluster)] = c
	}
	for _, lay := range []string{"lfs", "ffs"} {
		off, on := byKey[lay+"-0"], byKey[lay+"-8"]
		if off.ReadReqs+off.WriteReqs == 0 {
			t.Fatalf("%s: empty off cell", lay)
		}
		if on.BlocksPerReq <= off.BlocksPerReq {
			t.Errorf("%s: blocks/request did not rise: %.2f off vs %.2f on",
				lay, off.BlocksPerReq, on.BlocksPerReq)
		}
		if on.ReadReqs+on.WriteReqs >= off.ReadReqs+off.WriteReqs {
			t.Errorf("%s: requests did not drop: %d off vs %d on",
				lay, off.ReadReqs+off.WriteReqs, on.ReadReqs+on.WriteReqs)
		}
	}
}

// TestClusteringStudyDeterministic pins the engine contract: the
// same study at 1 worker and N workers renders byte-identically.
func TestClusteringStudyDeterministic(t *testing.T) {
	s := clusteringScale()
	s.Duration = 30 * time.Second
	a, err := RunClusteringStudy(Sequential(), s, "1b", DefaultSeed, []string{"lfs"}, []int{0, 8})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	b, err := RunClusteringStudy(Parallel(), s, "1b", DefaultSeed, []string{"lfs"}, []int{0, 8})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	aj, err := ClusteringJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := ClusteringJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("clustering study not deterministic across workers:\n%s\nvs\n%s", aj, bj)
	}
}
