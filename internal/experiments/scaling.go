package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/patsy"
)

// This file is the array-scaling study the volume manager opens up:
// replay one trace on a striped (or affinity) disk array of growing
// width — every width under all four write policies — and render a
// Figure-5-style table of mean latencies plus the aggregate disk
// throughput and the per-volume balance. The whole study is one job
// matrix on the parallel engine (widths are the variant axis), so it
// is deterministic and byte-identical at any worker count.

// ScaleRow is one array width's row: the four policy runs.
type ScaleRow struct {
	Width int
	Runs  []PolicyRun
}

// ArrayScale derives the single-front-end-volume scale the scaling
// study replays: the base scale's cache and duration, all traffic on
// one mounted volume (the array).
func ArrayScale(s Scale) Scale {
	as := s
	as.Name = s.Name + "-array"
	as.Buses = 1
	as.DisksPerBus = []int{1}
	as.Volumes = 1
	return as
}

// ArrayVariants builds the width axis of the scaling matrix.
func ArrayVariants(widths []int, placement string, stripe int) []Variant {
	vars := make([]Variant, len(widths))
	for i, w := range widths {
		w := w
		vars[i] = Variant{
			Name: fmt.Sprintf("%dvol", w),
			Mutate: func(cfg *patsy.Config) {
				cfg.ArrayVolumes = w
				cfg.Placement = placement
				cfg.StripeBlocks = stripe
			},
		}
	}
	return vars
}

// RunArrayScaling replays traceName on arrays of every given width
// under the scale's four write policies, one engine matrix.
func RunArrayScaling(e *Engine, s Scale, traceName string, seed int64, widths []int, placement string, stripe int) ([]ScaleRow, error) {
	if len(widths) == 0 {
		widths = []int{1, 2, 4, 8}
	}
	as := ArrayScale(s)
	results, err := e.RunMatrix(Matrix{
		Scale:    as,
		Traces:   []string{traceName},
		Variants: ArrayVariants(widths, placement, stripe),
		Seeds:    []int64{seed},
	})
	if err != nil {
		return nil, err
	}
	// Jobs expand variant-major within the single trace, so the flat
	// results regroup into one row per width.
	perRow := len(as.Policies())
	rows := make([]ScaleRow, 0, len(widths))
	for i, r := range results {
		if i%perRow == 0 {
			rows = append(rows, ScaleRow{Width: widths[len(rows)]})
		}
		row := &rows[len(rows)-1]
		row.Runs = append(row.Runs, PolicyRun{Policy: r.Cell.Policy, Report: r.Report})
	}
	return rows, nil
}

// mbPerSec renders a block count over a duration as MB/s of disk
// traffic.
func mbPerSec(blocks int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(blocks) * core.BlockSize / (1 << 20) / d.Seconds()
}

// ArrayScalingTable renders the study: mean latency and aggregate
// disk throughput per width × policy, plus the per-volume write
// balance of each width's UPS run.
func ArrayScalingTable(rows []ScaleRow, traceName, placement string, stripe int) string {
	var b strings.Builder
	head := fmt.Sprintf("Array scaling: trace %s on a %s disk array", traceName, placement)
	if placement == "striped" {
		head += fmt.Sprintf(" (stripe %d blocks)", stripe)
	}
	fmt.Fprintf(&b, "%s\n\n", head)
	if len(rows) == 0 {
		return b.String()
	}

	fmt.Fprintf(&b, "mean file-system latency:\n%-8s", "volumes")
	for _, r := range rows[0].Runs {
		fmt.Fprintf(&b, "%16s", r.Policy)
	}
	fmt.Fprintf(&b, "\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8d", row.Width)
		for _, r := range row.Runs {
			fmt.Fprintf(&b, "%16s", r.Report.MeanLatency().Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "\n")
	}

	fmt.Fprintf(&b, "\naggregate disk throughput (MB/s):\n%-8s", "volumes")
	for _, r := range rows[0].Runs {
		fmt.Fprintf(&b, "%16s", r.Policy)
	}
	fmt.Fprintf(&b, "\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8d", row.Width)
		for _, r := range row.Runs {
			fmt.Fprintf(&b, "%16.3f", mbPerSec(r.Report.DiskBlocks(), r.Report.SimTime))
		}
		fmt.Fprintf(&b, "\n")
	}

	fmt.Fprintf(&b, "\nper-volume write balance (ups): blocks written per disk stack\n")
	for _, row := range rows {
		rep := pickPolicy(row.Runs, "ups")
		if rep == nil {
			continue
		}
		min, max := int64(-1), int64(-1)
		parts := make([]string, 0, len(rep.PerVolume))
		for _, v := range rep.PerVolume {
			if min < 0 || v.BlocksWritten < min {
				min = v.BlocksWritten
			}
			if v.BlocksWritten > max {
				max = v.BlocksWritten
			}
			parts = append(parts, fmt.Sprintf("%d", v.BlocksWritten))
		}
		fmt.Fprintf(&b, "  %d vol: [%s]  min=%d max=%d\n", row.Width, strings.Join(parts, " "), min, max)
	}
	return b.String()
}

func pickPolicy(runs []PolicyRun, policy string) *patsy.Report {
	for _, r := range runs {
		if r.Policy == policy {
			return r.Report
		}
	}
	return nil
}
