package experiments

// The degraded-serving study (BENCH_8.json): what a member death
// costs the serving path. The same closed-loop workload runs over a
// redundant array in its three states — healthy, degraded (one
// member dead, its share served from the mirror partner or by parity
// reconstruction), and rebuilding (the online rebuild competing with
// the clients) — for each redundant placement. Every cell is one
// deterministic virtual-kernel simulation (ops per simulated second,
// machine-independent), sized so streaming reads miss the cache and
// actually reach the degraded read path.

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/bench"
)

// DegradedStudy is the full grid plus its provenance.
type DegradedStudy struct {
	Seed       int64          `json:"seed"`
	Placements []string       `json:"placements"`
	Width      int            `json:"width"`
	States     []string       `json:"states"`
	Cells      []bench.Result `json:"cells"`
	Note       string         `json:"note,omitempty"`
	Kind       string         `json:"kind"`
	Revision   int            `json:"revision"`
}

// degradedStates is the serving-state axis, in reporting order.
var degradedStates = []string{"healthy", "degraded", "rebuilding"}

// degradedCell is the study's workload shape: an 8 MB working set
// over a 2 MB cache (streaming reads miss; the degraded read path is
// exercised, not just the cache), a 70/30 read/write mix (degraded
// writes exercise the parity RMW planner and its partial-parity
// guard), four closed-loop clients.
func degradedCell(placement, state string, width int, seed int64) bench.Config {
	return bench.Config{
		Clients:       4,
		Ops:           250,
		Files:         8,
		FileBlocks:    256,
		IOBytes:       16 << 10,
		ReadFrac:      0.7,
		Seed:          seed,
		CacheBlocks:   512,
		Placement:     placement,
		Width:         width,
		StripeBlocks:  8,
		Degrade:       state != "healthy",
		DegradeMember: 1,
		Rebuild:       state == "rebuilding",
	}
}

// RunDegradedStudy measures every placement × serving-state cell.
// Deterministic per seed.
func RunDegradedStudy(seed int64, placements []string, width int) (*DegradedStudy, error) {
	if len(placements) == 0 {
		placements = []string{"mirrored", "parity"}
	}
	if width <= 0 {
		width = 3
	}
	study := &DegradedStudy{
		Seed:       seed,
		Placements: placements,
		Width:      width,
		States:     degradedStates,
		Kind:       "degraded",
		Revision:   8,
	}
	for _, pl := range placements {
		for _, state := range degradedStates {
			res, err := bench.RunSim(degradedCell(pl, state, width, seed))
			if err != nil {
				return nil, fmt.Errorf("degraded study %s/%s: %w", pl, state, err)
			}
			study.Cells = append(study.Cells, res)
		}
	}
	return study, nil
}

// DegradedTable renders the study for the terminal.
func DegradedTable(st *DegradedStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degraded-serving study: width %d, seed %d (virtual kernel, ops per simulated second)\n", st.Width, st.Seed)
	fmt.Fprintf(&b, "(degraded = member 1 dead, share served from redundancy; rebuilding = online\n")
	fmt.Fprintf(&b, " rebuild competing with the clients)\n\n")
	fmt.Fprintf(&b, "%-10s %-11s %10s %8s %8s %8s %8s %12s\n",
		"placement", "state", "ops/sec", "p50", "p95", "p99", "hit", "rebuild")
	for _, r := range st.Cells {
		state := "healthy"
		switch {
		case r.Rebuild:
			state = "rebuilding"
		case r.Degraded:
			state = "degraded"
		}
		reb := "-"
		if r.Rebuild {
			reb = fmt.Sprintf("%.0fms", r.RebuildMS)
		}
		fmt.Fprintf(&b, "%-10s %-11s %10.1f %7.2fm %7.2fm %7.2fm %7.1f%% %12s\n",
			r.Placement, state, r.OpsPerSec, r.P50MS, r.P95MS, r.P99MS, 100*r.Cache.HitRate, reb)
	}
	return b.String()
}

// DegradedJSON is the committed-artifact form (BENCH_8.json).
func DegradedJSON(st *DegradedStudy) ([]byte, error) {
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
