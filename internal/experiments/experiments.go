// Package experiments regenerates the paper's evaluation: Figures
// 2-4 (cumulative latency distributions for traces 1a, 1b and 5
// under the four write policies), Figure 5 (mean latencies for every
// trace), the in-text claims, and the ablations DESIGN.md calls out.
// Both cmd/experiments and the root benchmark suite drive it.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/patsy"
	"repro/internal/trace"
)

// Scale sizes an experiment: the paper's full Sun 4/280 replay, or a
// shrunken rig for quick runs and benchmarks.
type Scale struct {
	Name        string
	Buses       int
	DisksPerBus []int
	Volumes     int
	CacheBlocks int
	NVRAMBlocks int
	Duration    time.Duration
	// Work-load overrides (0 keeps the profile's own value).
	Clients      int
	LargeWriters int
	Preexist     int
}

// PaperScale reproduces the paper's topology: 3 SCSI-2 buses, 10
// HP 97560 disks, 14 volumes, 64 MB cache, 4 MB NVRAM. Traces run 30
// simulated minutes by default (the paper replays 24 h; the shapes
// stabilize long before).
func PaperScale() Scale {
	return Scale{
		Name:        "paper",
		Buses:       3,
		DisksPerBus: []int{4, 3, 3},
		Volumes:     14,
		CacheBlocks: 16384,
		NVRAMBlocks: patsy.NVRAMBlocks4MB,
		Duration:    30 * time.Minute,
	}
}

// QuickScale is the benchmark rig: 1 bus, 2 disks, 4 volumes, 4 MB
// cache, 512 KB NVRAM, 2-minute traces.
func QuickScale() Scale {
	return Scale{
		Name:         "quick",
		Buses:        1,
		DisksPerBus:  []int{2},
		Volumes:      4,
		CacheBlocks:  1024,
		NVRAMBlocks:  128,
		Duration:     2 * time.Minute,
		Clients:      8,
		LargeWriters: 4,
		Preexist:     40,
	}
}

// Config builds the simulator configuration for one policy run.
func (s Scale) Config(seed int64, flush cache.FlushConfig) patsy.Config {
	cfg := patsy.DefaultConfig(seed, flush)
	cfg.Buses = s.Buses
	cfg.DisksPerBus = s.DisksPerBus
	cfg.Volumes = s.Volumes
	cfg.CacheBlocks = s.CacheBlocks
	return cfg
}

// Trace generates the named profile at this scale.
func (s Scale) Trace(name string, seed int64) []trace.Record {
	p, ok := trace.Profiles()[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown trace %q", name))
	}
	p.Volumes = s.Volumes
	if p.HotVolumes >= s.Volumes {
		p.HotVolumes = 1
	}
	if s.Clients > 0 {
		p.Clients = s.Clients
	}
	if s.LargeWriters > 0 && p.LargeWriters > 0 {
		p.LargeWriters = s.LargeWriters
	}
	if s.Preexist > 0 {
		p.PreexistingFiles = s.Preexist
	}
	return trace.Generate(p, seed, s.Duration)
}

// Policies returns the paper's four write policies at this scale's
// NVRAM size: write-delay (30 s update), UPS write-saving, NVRAM
// whole-file and NVRAM partial-file.
func (s Scale) Policies() []cache.FlushConfig {
	return []cache.FlushConfig{
		cache.WriteDelay(),
		cache.UPS(),
		cache.NVRAMWhole(s.NVRAMBlocks),
		cache.NVRAMPartial(s.NVRAMBlocks),
	}
}

// PolicyRun is one (policy, trace) simulation.
type PolicyRun struct {
	Policy string
	Report *patsy.Report
}

// RunTrace replays one trace under every policy, one concurrent
// simulation per policy. Results come back in policy order, so the
// rendered figures match RunTraceSequential byte for byte.
func RunTrace(s Scale, traceName string, seed int64) ([]PolicyRun, error) {
	return RunTraceWith(Parallel(), s, traceName, seed)
}

// RunTraceWith is RunTrace on an explicit engine.
func RunTraceWith(e *Engine, s Scale, traceName string, seed int64) ([]PolicyRun, error) {
	results, err := e.RunMatrix(Matrix{
		Scale:  s,
		Traces: []string{traceName},
		Seeds:  []int64{seed},
	})
	if err != nil {
		return nil, err
	}
	out := make([]PolicyRun, len(results))
	for i, r := range results {
		out[i] = PolicyRun{Policy: r.Cell.Policy, Report: r.Report}
	}
	return out, nil
}

// RunTraceSequential is the pre-engine reference path: a plain loop
// over the policies on the caller's goroutine. The integration tests
// assert the parallel engine reproduces its output exactly.
func RunTraceSequential(s Scale, traceName string, seed int64) ([]PolicyRun, error) {
	recs := s.Trace(traceName, seed)
	var out []PolicyRun
	for _, fc := range s.Policies() {
		rep, err := patsy.Run(s.Config(seed, fc), traceName, recs)
		if err != nil {
			return nil, fmt.Errorf("trace %s policy %s: %w", traceName, fc.Name, err)
		}
		out = append(out, PolicyRun{Policy: fc.Name, Report: rep})
	}
	return out, nil
}

// FigureCDF renders a Figure 2-4 style report: the cumulative
// distribution of operation latencies per policy, with the regions
// the paper narrates annotated.
func FigureCDF(figure, traceName string, runs []PolicyRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: cumulative distribution of file-system latencies, trace %s\n", figure, traceName)
	fmt.Fprintf(&b, "(<=2ms: cache-served floor; 2-17ms: rotation+overhead; ~17ms bump: full rotation; beyond: queueing)\n\n")
	grid := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 17 * time.Millisecond, 25 * time.Millisecond,
		50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
		500 * time.Millisecond, time.Second,
	}
	fmt.Fprintf(&b, "%-16s", "latency<=")
	for _, g := range grid {
		fmt.Fprintf(&b, "%8s", g)
	}
	fmt.Fprintf(&b, "%10s%8s\n", "mean", "ops")
	for _, r := range runs {
		fmt.Fprintf(&b, "%-16s", r.Policy)
		for _, g := range grid {
			fmt.Fprintf(&b, "%8.3f", r.Report.Result.Overall.FracBelow(g))
		}
		fmt.Fprintf(&b, "%10s%8d\n",
			r.Report.MeanLatency().Round(time.Microsecond), r.Report.WallOps)
	}
	fmt.Fprintf(&b, "\nper-policy detail: read-hit-rate / blocks-flushed / writes-saved / nvram-waits\n")
	for _, r := range runs {
		fmt.Fprintf(&b, "  %-16s %5.1f%% / %d / %d / %d\n", r.Policy,
			100*r.Report.ReadHit, r.Report.Flushed, r.Report.Saved, r.Report.NVRAMWaits)
	}
	return b.String()
}

// Fig5Row is one trace's row in Figure 5.
type Fig5Row struct {
	Trace string
	Runs  []PolicyRun
}

// RunFigure5 replays every trace under every policy as one flat
// parallel batch — the whole figure is a single matrix of
// independent simulations.
func RunFigure5(s Scale, seed int64, traces []string) ([]Fig5Row, error) {
	return RunFigure5With(Parallel(), s, seed, traces)
}

// RunFigure5With is RunFigure5 on an explicit engine.
func RunFigure5With(e *Engine, s Scale, seed int64, traces []string) ([]Fig5Row, error) {
	if len(traces) == 0 {
		traces = trace.ProfileNames()
	}
	results, err := e.RunMatrix(Matrix{
		Scale:  s,
		Traces: traces,
		Seeds:  []int64{seed},
	})
	if err != nil {
		return nil, err
	}
	// Jobs expand trace-major, so the flat results regroup into rows
	// by consecutive runs of the trace name.
	var rows []Fig5Row
	for _, r := range results {
		if len(rows) == 0 || rows[len(rows)-1].Trace != r.Cell.Trace {
			rows = append(rows, Fig5Row{Trace: r.Cell.Trace})
		}
		row := &rows[len(rows)-1]
		row.Runs = append(row.Runs, PolicyRun{Policy: r.Cell.Policy, Report: r.Report})
	}
	return rows, nil
}

// RunFigure5Sequential is the pre-engine reference path for the full
// figure, one trace after another on the caller's goroutine.
func RunFigure5Sequential(s Scale, seed int64, traces []string) ([]Fig5Row, error) {
	if len(traces) == 0 {
		traces = trace.ProfileNames()
	}
	var rows []Fig5Row
	for _, tn := range traces {
		runs, err := RunTraceSequential(s, tn, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{Trace: tn, Runs: runs})
	}
	return rows, nil
}

// Figure5 renders the mean-latency matrix plus the paper's claim
// checks.
func Figure5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: mean file-system latencies, all traces × all policies\n\n")
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-8s", "trace")
	for _, r := range rows[0].Runs {
		fmt.Fprintf(&b, "%16s", r.Policy)
	}
	fmt.Fprintf(&b, "\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8s", row.Trace)
		for _, r := range row.Runs {
			fmt.Fprintf(&b, "%16s", r.Report.MeanLatency().Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "\n")
	}
	b.WriteString("\n")
	b.WriteString(ClaimChecks(rows))
	return b.String()
}

// ClaimChecks verifies the paper's narrated results against the
// measured runs and reports each as PASS/fail text.
func ClaimChecks(rows []Fig5Row) string {
	var b strings.Builder
	get := func(row Fig5Row, policy string) *patsy.Report {
		for _, r := range row.Runs {
			if r.Policy == policy {
				return r.Report
			}
		}
		return nil
	}
	check := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "MISS"
		}
		fmt.Fprintf(&b, "  [%s] %s — %s\n", status, name, detail)
	}

	// Claim 1: UPS beats write-delay on most traces ("in general,
	// the UPS experiment performs better...").
	upsWins := 0
	for _, row := range rows {
		ups, wd := get(row, "ups"), get(row, "writedelay")
		if ups != nil && wd != nil && ups.MeanLatency() < wd.MeanLatency() {
			upsWins++
		}
	}
	check("UPS faster than write-delay (majority of traces)",
		upsWins*2 > len(rows),
		fmt.Sprintf("%d of %d traces", upsWins, len(rows)))

	// Claim 2: whole-file NVRAM flush beats partial-file. On traces
	// whose NVRAM never fills the two are identical, so a 5% band
	// counts as consistent.
	wholeWins := 0
	for _, row := range rows {
		w, p := get(row, "nvram-whole"), get(row, "nvram-partial")
		if w != nil && p != nil &&
			float64(w.MeanLatency()) <= 1.05*float64(p.MeanLatency()) {
			wholeWins++
		}
	}
	check("whole-file NVRAM flush <= partial-file (majority, 5% band)",
		wholeWins*2 > len(rows),
		fmt.Sprintf("%d of %d traces", wholeWins, len(rows)))

	// Claim 3: write-saving writes fewer blocks to disk. Checked on
	// the total and on a majority of traces: a write-flooded trace
	// whose files outlive the window can tie.
	fewer, traced := 0, 0
	var fUPS, fWD int64
	for _, row := range rows {
		ups, wd := get(row, "ups"), get(row, "writedelay")
		if ups == nil || wd == nil {
			continue
		}
		traced++
		fUPS += ups.Flushed
		fWD += wd.Flushed
		if ups.Flushed < wd.Flushed {
			fewer++
		}
	}
	check("UPS writes fewer blocks than write-delay",
		fUPS < fWD && fewer*2 > traced,
		fmt.Sprintf("total %d vs %d blocks; fewer on %d of %d traces", fUPS, fWD, fewer, traced))

	// Claim 4: write-saving lowers read cache hit rates (trades
	// hits for fewer writes) yet still wins overall.
	lower := 0
	total := 0
	for _, row := range rows {
		ups, wd := get(row, "ups"), get(row, "writedelay")
		if ups == nil || wd == nil {
			continue
		}
		total++
		if ups.ReadHit <= wd.ReadHit+0.02 {
			lower++
		}
	}
	check("UPS read hit rate not above write-delay's (cache clutter)",
		lower*2 >= total, fmt.Sprintf("%d of %d traces", lower, total))

	// Claim 5: trace 1b bottlenecks the NVRAM ("new writes are
	// waiting for the NVRAM to drain").
	for _, row := range rows {
		if row.Trace != "1b" {
			continue
		}
		nv := get(row, "nvram-partial")
		if nv != nil {
			check("trace 1b: writes wait for NVRAM drain",
				nv.NVRAMWaits > 0,
				fmt.Sprintf("%d NVRAM stalls", nv.NVRAMWaits))
		}
	}
	return b.String()
}

// SortRunsByMean orders runs fastest-first (reporting convenience).
func SortRunsByMean(runs []PolicyRun) {
	sort.Slice(runs, func(i, j int) bool {
		return runs[i].Report.MeanLatency() < runs[j].Report.MeanLatency()
	})
}

// RenderIntervals prints the 15-minute interval reports of a run.
func RenderIntervals(r *patsy.Report) string {
	var b strings.Builder
	for _, iv := range r.Result.Intervals.Reports {
		fmt.Fprintf(&b, "  %s\n", iv)
	}
	return b.String()
}

// FullCDF returns the complete Render of a run's distribution (the
// plottable form of Figures 2-4).
func FullCDF(r *patsy.Report) string { return r.Result.Overall.Render() }
