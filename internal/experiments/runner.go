package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/patsy"
	"repro/internal/trace"
)

// This file is the parallel experiment engine. The paper's whole
// evaluation is a matrix of independent simulations — every cell owns
// its virtual-time kernel, its Patsy instance and its stats.Set, so
// cells can run concurrently on real CPUs while each simulation stays
// perfectly deterministic inside. The engine expands a Matrix
// (traces × variants × policies × seeds) into Jobs, executes them on
// a worker pool, and merges the results back in matrix order, so the
// rendered figures are byte-identical to a sequential run at the same
// seeds.

// Cell names one matrix position: which trace, which policy (or
// ablation variant), which seed.
type Cell struct {
	Trace   string
	Policy  string
	Variant string
	Seed    int64
}

func (c Cell) String() string {
	s := fmt.Sprintf("trace %s policy %s seed %d", c.Trace, c.Policy, c.Seed)
	if c.Variant != "" {
		s += " variant " + c.Variant
	}
	return s
}

// Job is one fully prepared simulation: a configuration plus the
// trace records to replay. Records are shared read-only between the
// jobs of one trace — the replayer copies before mutating — so
// expansion generates each (trace, seed) stream once.
type Job struct {
	Cell Cell
	Cfg  patsy.Config
	Recs []trace.Record
}

// JobResult pairs a job's cell with its report (or error).
type JobResult struct {
	Cell   Cell
	Report *patsy.Report
	Err    error
}

// Variant mutates a base configuration — the ablation axis of the
// matrix. A nil Mutate is the identity.
type Variant struct {
	Name   string
	Mutate func(*patsy.Config)
}

// Matrix is the full experiment grid. Zero-value axes default to
// sensible singletons: no Traces means all profiles, no Policies
// means the scale's four write policies, no Variants means identity,
// no Seeds means {DefaultSeed}.
type Matrix struct {
	Scale    Scale
	Traces   []string
	Policies []cache.FlushConfig
	Variants []Variant
	Seeds    []int64
}

// DefaultSeed is the paper's year, the seed every figure defaults to.
const DefaultSeed = 1996

type traceKey struct {
	name string
	seed int64
}

// Jobs expands the matrix in deterministic order — trace-major, then
// variant, then policy, then seed — generating each distinct
// (trace, seed) record stream exactly once (concurrently across
// streams).
func (m Matrix) Jobs() []Job {
	traces := m.Traces
	if len(traces) == 0 {
		traces = trace.ProfileNames()
	}
	policies := m.Policies
	if len(policies) == 0 {
		policies = m.Scale.Policies()
	}
	variants := m.Variants
	if len(variants) == 0 {
		variants = []Variant{{}}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []int64{DefaultSeed}
	}

	// Generate the distinct record streams concurrently.
	keys := make([]traceKey, 0, len(traces)*len(seeds))
	seen := make(map[traceKey]bool)
	for _, tn := range traces {
		for _, sd := range seeds {
			k := traceKey{tn, sd}
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	streams := make([][]trace.Record, len(keys))
	parallelDo(0, len(keys), func(i int) {
		streams[i] = m.Scale.Trace(keys[i].name, keys[i].seed)
	})
	recsFor := make(map[traceKey][]trace.Record, len(keys))
	for i, k := range keys {
		recsFor[k] = streams[i]
	}

	var jobs []Job
	for _, tn := range traces {
		for _, v := range variants {
			for _, fc := range policies {
				for _, sd := range seeds {
					cfg := m.Scale.Config(sd, fc)
					if v.Mutate != nil {
						v.Mutate(&cfg)
					}
					jobs = append(jobs, Job{
						Cell: Cell{Trace: tn, Policy: fc.Name, Variant: v.Name, Seed: sd},
						Cfg:  cfg,
						Recs: recsFor[traceKey{tn, sd}],
					})
				}
			}
		}
	}
	return jobs
}

// Engine executes jobs on a bounded worker pool. The zero value runs
// one worker per available CPU; Workers=1 degenerates to the
// sequential path, producing identical results.
type Engine struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
}

// Sequential returns a one-worker engine — the reference path the
// parallel engine is tested against.
func Sequential() *Engine { return &Engine{Workers: 1} }

// Parallel returns an engine sized to the machine.
func Parallel() *Engine { return &Engine{} }

// workers resolves the pool size for n jobs.
func (e *Engine) workers(n int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every job and returns the results in job order. Every
// job runs to completion even when siblings fail; the returned error
// is the first failure in matrix order, so error reporting is as
// deterministic as the results.
func (e *Engine) Run(jobs []Job) ([]JobResult, error) {
	results := make([]JobResult, len(jobs))
	parallelDo(e.workers(len(jobs)), len(jobs), func(i int) {
		j := jobs[i]
		rep, err := patsy.Run(j.Cfg, j.Cell.Trace, j.Recs)
		if err != nil {
			err = fmt.Errorf("%s: %w", j.Cell, err)
		}
		results[i] = JobResult{Cell: j.Cell, Report: rep, Err: err}
	})
	for _, r := range results {
		if r.Err != nil {
			return results, r.Err
		}
	}
	return results, nil
}

// RunMatrix expands and executes a matrix in one call.
func (e *Engine) RunMatrix(m Matrix) ([]JobResult, error) {
	return e.Run(m.Jobs())
}

// parallelDo runs f(0..n-1) on a pool of workers and waits. A
// non-positive worker count means GOMAXPROCS. Iterations are handed
// out by an atomic counter, so workers stay busy regardless of how
// uneven individual jobs are.
func parallelDo(workers, n int, f func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// --- Multi-seed replication ---

// Replicate aggregates one (trace, policy) cell across seeds.
type Replicate struct {
	Trace   string
	Policy  string
	Seeds   []int64
	Reports []*patsy.Report
}

// MeanLatency is the mean of the per-seed mean latencies.
func (r *Replicate) MeanLatency() time.Duration {
	if len(r.Reports) == 0 {
		return 0
	}
	var sum time.Duration
	for _, rep := range r.Reports {
		sum += rep.MeanLatency()
	}
	return sum / time.Duration(len(r.Reports))
}

// StderrLatency is the standard error of the per-seed means — the
// "± error" half-width of the replicated figure.
func (r *Replicate) StderrLatency() time.Duration {
	n := len(r.Reports)
	if n < 2 {
		return 0
	}
	mean := float64(r.MeanLatency())
	var ss float64
	for _, rep := range r.Reports {
		d := float64(rep.MeanLatency()) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n)))
}

// ReplicateSeeds derives n seeds from a base seed, the replication
// axis of the matrix.
func ReplicateSeeds(base int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// RepRow is one trace's row of replicated cells, one per policy.
type RepRow struct {
	Trace string
	Cells []*Replicate
}

// RunReplicated replays the traces×policies×seeds matrix and folds
// the seed axis into mean ± error cells.
func (e *Engine) RunReplicated(s Scale, traces []string, seeds []int64) ([]RepRow, error) {
	if len(traces) == 0 {
		traces = trace.ProfileNames()
	}
	m := Matrix{Scale: s, Traces: traces, Seeds: seeds}
	results, err := e.RunMatrix(m)
	if err != nil {
		return nil, err
	}
	byCell := make(map[[2]string]*Replicate)
	var rows []RepRow
	rowIx := make(map[string]int)
	for _, res := range results {
		key := [2]string{res.Cell.Trace, res.Cell.Policy}
		rep := byCell[key]
		if rep == nil {
			rep = &Replicate{Trace: res.Cell.Trace, Policy: res.Cell.Policy}
			byCell[key] = rep
			ix, ok := rowIx[res.Cell.Trace]
			if !ok {
				ix = len(rows)
				rowIx[res.Cell.Trace] = ix
				rows = append(rows, RepRow{Trace: res.Cell.Trace})
			}
			rows[ix].Cells = append(rows[ix].Cells, rep)
		}
		rep.Seeds = append(rep.Seeds, res.Cell.Seed)
		rep.Reports = append(rep.Reports, res.Report)
	}
	return rows, nil
}

// Figure5Replicated renders the mean-latency matrix with the
// across-seed standard error in every cell.
func Figure5Replicated(rows []RepRow, seeds []int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (replicated over %d seeds): mean ± stderr of file-system latency\n\n", len(seeds))
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-8s", "trace")
	for _, c := range rows[0].Cells {
		fmt.Fprintf(&b, "%24s", c.Policy)
	}
	fmt.Fprintf(&b, "\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8s", row.Trace)
		for _, c := range row.Cells {
			cell := fmt.Sprintf("%s ±%s",
				c.MeanLatency().Round(time.Microsecond),
				c.StderrLatency().Round(time.Microsecond))
			fmt.Fprintf(&b, "%24s", cell)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
