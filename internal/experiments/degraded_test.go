package experiments

import "testing"

// TestDegradedStudy checks the study's shape and the properties the
// committed BENCH_8 artifact leans on: deterministic cells, a
// degraded cell that really runs degraded (reconstruction happened),
// and a rebuilding cell whose rebuild actually took simulated time.
func TestDegradedStudy(t *testing.T) {
	placements := []string{"mirrored", "parity"}
	if testing.Short() {
		placements = []string{"parity"}
	}
	st, err := RunDegradedStudy(DefaultSeed, placements, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cells) != 3*len(placements) {
		t.Fatalf("%d cells, want %d", len(st.Cells), 3*len(placements))
	}
	byKey := map[string]float64{}
	for i, r := range st.Cells {
		pl := placements[i/3]
		state := degradedStates[i%3]
		if r.Placement != pl {
			t.Fatalf("cell %d: placement %q, want %q", i, r.Placement, pl)
		}
		if r.Degraded != (state != "healthy") || r.Rebuild != (state == "rebuilding") {
			t.Fatalf("cell %d (%s/%s): state flags degraded=%v rebuild=%v", i, pl, state, r.Degraded, r.Rebuild)
		}
		if r.OpsPerSec <= 0 {
			t.Fatalf("cell %s: ops/sec %f", r.Key(), r.OpsPerSec)
		}
		if r.Rebuild && r.RebuildMS <= 0 {
			t.Fatalf("cell %s: rebuild took no simulated time", r.Key())
		}
		byKey[r.Key()] = r.OpsPerSec
	}
	if len(byKey) != len(st.Cells) {
		t.Fatalf("cell keys collide: %d unique of %d", len(byKey), len(st.Cells))
	}
	// Determinism: the same seed reproduces the same numbers (this is
	// what lets BENCH_8 be a committed artifact and a CI gate).
	again, err := RunDegradedStudy(DefaultSeed, placements[:1], 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range again.Cells {
		if got, ok := byKey[r.Key()]; !ok || got != r.OpsPerSec {
			t.Fatalf("cell %s not deterministic: %f then %f", r.Key(), got, r.OpsPerSec)
		}
	}
}
