package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/device"
	"repro/internal/patsy"
)

// This file is the reliability study the crash seam opens up: replay
// a trace into a power cut under every write policy × layout × array
// width, and measure what the paper's comparison only argued — the
// data-loss window of the volatile write-delay policy, the zero loss
// of the UPS/NVRAM policies, and the virtual-time cost of recovery
// (remount scan + NVRAM replay + checkpoint). Every cell is one
// deterministic simulation on the parallel engine; the emitted JSON
// (BENCH_4.json) is machine-independent.

// ReliabilityCell is one (policy, layout, width) crash measurement.
type ReliabilityCell struct {
	Policy  string `json:"policy"`
	Layout  string `json:"layout"`
	Volumes int    `json:"volumes"`

	Persistent bool `json:"persistent"`
	// Crash exposure.
	LostBlocks        int     `json:"lost_blocks"`
	LossWindowMS      float64 `json:"loss_window_ms"`
	SurvivorBlocks    int     `json:"survivor_blocks"`
	DiskVolatileBytes int64   `json:"disk_volatile_bytes"`
	// Recovery.
	Recovered      bool    `json:"recovered"`
	RecoveryMS     float64 `json:"recovery_ms"`
	ReplayedBlocks int     `json:"replayed_blocks"`
	DroppedBlocks  int     `json:"dropped_blocks"`
	// Context.
	CrashAtMS float64 `json:"crash_at_ms"`
	Ops       int     `json:"ops"`
	// Namespace is the intent log's crash exposure — present only in
	// intent-log studies (BENCH_6); its absence keeps the pre-intent
	// BENCH_4 artifact byte-identical.
	Namespace *NamespaceCell `json:"namespace,omitempty"`
}

// NamespaceCell measures acknowledged namespace operations (create,
// remove, rename, truncate, symlink) across the cut: intents the
// battery-backed domain preserved or volatile memory lost, the age of
// the oldest lost one, and what replay did with the survivors.
type NamespaceCell struct {
	Ops             uint64  `json:"ops"`
	SurvivorIntents int     `json:"survivor_intents"`
	LostIntents     int     `json:"lost_intents"`
	LossWindowMS    float64 `json:"loss_window_ms"`
	Replayed        int     `json:"replayed"`
	Noop            int     `json:"noop"`
	Dropped         int     `json:"dropped"`
}

// ReliabilityStudy is the full grid plus its provenance.
type ReliabilityStudy struct {
	Trace    string            `json:"trace"`
	Scale    string            `json:"scale"`
	Seed     int64             `json:"seed"`
	CrashAt  string            `json:"crash_at"`
	Layouts  []string          `json:"layouts"`
	Volumes  []int             `json:"volumes"`
	Cells    []ReliabilityCell `json:"cells"`
	Note     string            `json:"note,omitempty"`
	Kind     string            `json:"kind"`
	Revision int               `json:"revision"`
}

// RunReliabilityStudy replays traceName into a power cut at 2/3 of
// the trace duration for every write policy × layout × width, with
// recovery played and timed inside each simulation. One engine
// matrix; deterministic per seed at any worker count.
func RunReliabilityStudy(e *Engine, s Scale, traceName string, seed int64, layouts []string, widths []int) (*ReliabilityStudy, error) {
	return runReliability(e, s, traceName, seed, layouts, widths, false)
}

// RunReliabilityIntentStudy is the intent-log revision of the study
// (BENCH_6): the same grid with the metadata intent log attached, so
// every cell also measures acknowledged-namespace-op exposure — zero
// loss under the persistent policies, a bounded window under
// write-delay.
func RunReliabilityIntentStudy(e *Engine, s Scale, traceName string, seed int64, layouts []string, widths []int) (*ReliabilityStudy, error) {
	return runReliability(e, s, traceName, seed, layouts, widths, true)
}

func runReliability(e *Engine, s Scale, traceName string, seed int64, layouts []string, widths []int, intents bool) (*ReliabilityStudy, error) {
	if len(layouts) == 0 {
		layouts = []string{"lfs", "ffs"}
	}
	if len(widths) == 0 {
		widths = []int{1, 2}
	}
	crashAt := s.Duration * 2 / 3
	as := ArrayScale(s)
	var variants []Variant
	for _, lay := range layouts {
		for _, w := range widths {
			lay, w := lay, w
			variants = append(variants, Variant{
				Name: fmt.Sprintf("%s-%dvol", lay, w),
				Mutate: func(cfg *patsy.Config) {
					cfg.Layout = lay
					cfg.ArrayVolumes = w
					cfg.Placement = "striped"
					cfg.Fault = &device.FaultConfig{Seed: seed}
					cfg.CrashAt = crashAt
					cfg.CrashRecover = true
					cfg.IntentLog = intents
				},
			})
		}
	}
	results, err := e.RunMatrix(Matrix{
		Scale:    as,
		Traces:   []string{traceName},
		Variants: variants,
		Seeds:    []int64{seed},
	})
	if err != nil {
		return nil, err
	}
	study := &ReliabilityStudy{
		Trace:    traceName,
		Scale:    s.Name,
		Seed:     seed,
		CrashAt:  crashAt.String(),
		Layouts:  layouts,
		Volumes:  widths,
		Kind:     "reliability",
		Revision: 4,
	}
	if intents {
		study.Revision = 6
		study.Note = "metadata intent log attached: namespace column measures acknowledged-op exposure"
	}
	for _, r := range results {
		c := r.Report.Crash
		if c == nil {
			return nil, fmt.Errorf("cell %s: no crash info", r.Cell)
		}
		parts := strings.SplitN(r.Cell.Variant, "-", 2)
		width := 0
		fmt.Sscanf(parts[1], "%dvol", &width)
		cell := ReliabilityCell{
			Policy:            r.Cell.Policy,
			Layout:            parts[0],
			Volumes:           width,
			Persistent:        c.Persistent,
			LostBlocks:        c.LostBlocks,
			LossWindowMS:      float64(c.LossWindow) / 1e6,
			SurvivorBlocks:    c.SurvivorBlocks,
			DiskVolatileBytes: c.DiskVolatileBytes,
			Recovered:         c.Recovered,
			RecoveryMS:        float64(c.RecoveryTime) / 1e6,
			ReplayedBlocks:    c.ReplayedBlocks,
			DroppedBlocks:     c.DroppedBlocks,
			CrashAtMS:         float64(c.At) / 1e6,
			Ops:               r.Report.WallOps,
		}
		if ns := c.Namespace; ns != nil {
			cell.Namespace = &NamespaceCell{
				Ops:             ns.Ops,
				SurvivorIntents: ns.SurvivorIntents,
				LostIntents:     ns.LostIntents,
				LossWindowMS:    float64(ns.LossWindow) / 1e6,
				Replayed:        ns.Replayed,
				Noop:            ns.Noop,
				Dropped:         ns.Dropped,
			}
		}
		study.Cells = append(study.Cells, cell)
	}
	return study, nil
}

// ReliabilityTable renders the study for the terminal.
func ReliabilityTable(st *ReliabilityStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reliability study: trace %s, power cut at %s, recovery measured in virtual time\n",
		st.Trace, st.CrashAt)
	fmt.Fprintf(&b, "(lost = dirty blocks volatile memory dropped; window = age of oldest lost write;\n")
	fmt.Fprintf(&b, " NVRAM/UPS cells must lose nothing; write-delay's window is bounded by the 30s+scan rule)\n\n")
	withNS := false
	for _, c := range st.Cells {
		if c.Namespace != nil {
			withNS = true
			break
		}
	}
	fmt.Fprintf(&b, "%-14s %-6s %4s %6s %10s %10s %8s %10s %8s %9s",
		"policy", "layout", "vols", "lost", "window", "survivors", "diskKB", "recovery", "replayed", "dropped")
	if withNS {
		fmt.Fprintf(&b, " %7s %7s %10s", "nsLost", "nsRepl", "nsWindow")
	}
	b.WriteByte('\n')
	for _, c := range st.Cells {
		fmt.Fprintf(&b, "%-14s %-6s %4d %6d %9.0fms %10d %8.1f %8.1fms %8d %9d",
			c.Policy, c.Layout, c.Volumes, c.LostBlocks, c.LossWindowMS,
			c.SurvivorBlocks, float64(c.DiskVolatileBytes)/1024, c.RecoveryMS,
			c.ReplayedBlocks, c.DroppedBlocks)
		if ns := c.Namespace; ns != nil {
			fmt.Fprintf(&b, " %7d %7d %8.0fms", ns.LostIntents, ns.Replayed, ns.LossWindowMS)
		} else if withNS {
			fmt.Fprintf(&b, " %7s %7s %10s", "-", "-", "-")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ReliabilityJSON is the committed-artifact form (BENCH_4.json, or
// BENCH_6.json for the intent-log revision).
func ReliabilityJSON(st *ReliabilityStudy) ([]byte, error) {
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
