package device

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Driver is the file system's view of a disk: submit block requests
// and wait for completion. The simulated and real drivers implement
// exactly the same interface — the system itself does not know it is
// communicating with a "fake" disk.
type Driver interface {
	Name() string
	// Submit queues r; completion is signaled through Wait.
	Submit(t sched.Task, r *Request)
	// Wait blocks until r completes.
	Wait(t sched.Task, r *Request)
	// Do submits r and waits, returning r.Err.
	Do(t sched.Task, r *Request) error
	// QueueLen is the current number of queued (unstarted) requests.
	QueueLen() int
	// CapacityBlocks is the disk size in file-system blocks.
	CapacityBlocks() int64
	// DriverStats exposes the driver's statistics plug-in.
	DriverStats() *DriverStats
	// SetInjector installs (nil clears) the fault interceptor
	// consulted at the hardware boundary; see Interceptor.
	SetInjector(ij Interceptor)
	// Close releases the driver's backing resources (the image file
	// of a file-backed driver). The driver must be idle.
	Close() error
}

// DriverStats is the per-driver statistics plug-in: I/O counts,
// queue-size histogram (sampled at each arrival, as the paper's
// disk-queue statistics object does), and wait/service times.
type DriverStats struct {
	Reads, Writes *stats.Counter
	BlocksRead    *stats.Counter
	BlocksWritten *stats.Counter
	// VecReads/VecWrites count the requests that carried a
	// scatter-gather vector (a vectored request is one request —
	// these are a subset of Reads/Writes, never an addition).
	VecReads      *stats.Counter
	VecWrites     *stats.Counter
	QueueHist     *stats.Histogram
	WaitMS        *stats.Moments
	ServiceMS     *stats.Moments
	DiskCacheHits *stats.Counter
	// Health evidence, accumulated at request completion: transient
	// I/O errors, permanent dead-member rejections, and completions
	// over the latency SLO. A health monitor polls these cumulative
	// counters to build its evidence window; everything here is an
	// atomic so a sampler never touches kernel state.
	IOErrors   *stats.Counter
	DeadErrors *stats.Counter
	SlowIOs    *stats.Counter
	consecErrs atomic.Int64
	sloMicros  atomic.Int64
}

func newDriverStats(name string) *DriverStats {
	return &DriverStats{
		Reads:         stats.NewCounter(name + ".reads"),
		Writes:        stats.NewCounter(name + ".writes"),
		BlocksRead:    stats.NewCounter(name + ".blocks_read"),
		BlocksWritten: stats.NewCounter(name + ".blocks_written"),
		VecReads:      stats.NewCounter(name + ".vec_reads"),
		VecWrites:     stats.NewCounter(name + ".vec_writes"),
		QueueHist:     stats.NewHistogram(name+".queue_len", 0, 1, 2, 4, 8, 16, 32, 64),
		WaitMS:        stats.NewMoments(name + ".wait_ms"),
		ServiceMS:     stats.NewMoments(name + ".service_ms"),
		DiskCacheHits: stats.NewCounter(name + ".disk_cache_hits"),
		IOErrors:      stats.NewCounter(name + ".io_errors"),
		DeadErrors:    stats.NewCounter(name + ".dead_errors"),
		SlowIOs:       stats.NewCounter(name + ".slow_ios"),
	}
}

// SetLatencySLO arms the slow-I/O counter: completions whose service
// time exceeds d count as SLO breaches. Zero disables (the default —
// the simulator's modeled latencies should not trip it accidentally).
func (s *DriverStats) SetLatencySLO(d time.Duration) {
	s.sloMicros.Store(d.Microseconds())
}

// ConsecutiveErrors returns the current run of back-to-back failed
// requests; any success resets it to zero.
func (s *DriverStats) ConsecutiveErrors() int64 { return s.consecErrs.Load() }

// noteCompletion folds one completed request into the health
// evidence. Power-cut errors are excluded: a cut is a whole-system
// event, not evidence against one member.
func (s *DriverStats) noteCompletion(err error, serviceMS float64) {
	if slo := s.sloMicros.Load(); slo > 0 && serviceMS*1000 > float64(slo) {
		s.SlowIOs.Inc()
	}
	switch {
	case err == nil:
		s.consecErrs.Store(0)
	case errors.Is(err, ErrPowerCut):
	case errors.Is(err, ErrDiskDead):
		s.DeadErrors.Inc()
		s.consecErrs.Add(1)
	default:
		s.IOErrors.Inc()
		s.consecErrs.Add(1)
	}
}

// Requests returns the total requests the driver has issued.
func (s *DriverStats) Requests() int64 {
	return s.Reads.Value() + s.Writes.Value()
}

// BlocksPerRequest returns the mean transfer size in blocks — the
// clustering observability number: per-request overhead (bus
// arbitration, controller setup, the seek/rotation a transfer
// amortizes) divides by exactly this factor.
func (s *DriverStats) BlocksPerRequest() float64 {
	reqs := s.Requests()
	if reqs == 0 {
		return 0
	}
	return float64(s.BlocksRead.Value()+s.BlocksWritten.Value()) / float64(reqs)
}

// Register adds all sources to set.
func (s *DriverStats) Register(set *stats.Set) {
	set.Add(s.Reads)
	set.Add(s.Writes)
	set.Add(s.BlocksRead)
	set.Add(s.BlocksWritten)
	set.Add(s.VecReads)
	set.Add(s.VecWrites)
	set.Add(s.QueueHist)
	set.Add(s.WaitMS)
	set.Add(s.ServiceMS)
	set.Add(s.DiskCacheHits)
	set.Add(s.IOErrors)
	set.Add(s.DeadErrors)
	set.Add(s.SlowIOs)
}

// backend performs one request synchronously; the generic driver
// engine supplies queueing, scheduling and statistics around it.
type backend interface {
	capacityBlocks() int64
	perform(t sched.Task, r *Request)
}

// driver is the engine shared by the simulated and real drivers.
type driver struct {
	name    string
	k       sched.Kernel
	queue   Scheduler
	be      backend
	mu      sched.Mutex
	work    sched.Event
	headLBA int64
	st      *DriverStats
	closed  bool

	// ijMu guards the injector pointer with a plain mutex: harnesses
	// install and clear plans from outside any kernel task.
	ijMu sync.Mutex
	ij   Interceptor
}

func newDriver(k sched.Kernel, name string, q Scheduler, be backend) *driver {
	d := &driver{
		name:  name,
		k:     k,
		queue: q,
		be:    be,
		mu:    k.NewMutex(name + ".q"),
		work:  k.NewEvent(name + ".work"),
		st:    newDriverStats(name),
	}
	k.Go(name+".worker", d.workerLoop)
	return d
}

// Name returns the driver name.
func (d *driver) Name() string { return d.name }

// DriverStats returns the statistics plug-in.
func (d *driver) DriverStats() *DriverStats { return d.st }

// SetInjector installs the fault interceptor (nil = none).
func (d *driver) SetInjector(ij Interceptor) {
	d.ijMu.Lock()
	d.ij = ij
	d.ijMu.Unlock()
}

func (d *driver) injector() Interceptor {
	d.ijMu.Lock()
	defer d.ijMu.Unlock()
	return d.ij
}

// Close releases the backing resources of back-ends that hold any
// (the image file); in-memory and simulated back-ends are no-ops.
func (d *driver) Close() error {
	if c, ok := d.be.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// perform runs one request against the hardware, routing it through
// the fault seam first: an interceptor may fail it outright, let a
// prefix of a write through (torn write), or — after a power cut —
// swallow it entirely.
func (d *driver) perform(t sched.Task, r *Request) {
	ij := d.injector()
	if ij == nil {
		d.be.perform(t, r)
		return
	}
	dec := ij.Intercept(r)
	if dec.Err == nil {
		d.be.perform(t, r)
		return
	}
	if r.Op == OpWrite && dec.TornBlocks > 0 && dec.TornBlocks < r.Blocks {
		torn := *r
		torn.Blocks = dec.TornBlocks
		if r.Vec != nil {
			// The persisted prefix of a vectored write may end
			// mid-iovec; ClipVec trims the last segment to fit.
			torn.Vec = ClipVec(r.Vec, dec.TornBlocks*core.BlockSize)
		}
		torn.done = nil
		d.be.perform(t, &torn)
	} else if r.Op == OpWrite && r.Blocks == 1 && dec.TornBytes > 0 &&
		dec.TornBytes < core.BlockSize && (r.Data != nil || r.Vec != nil) {
		// Sub-block tear: splice the new byte prefix onto the old
		// block contents (read-modify-write against the back-end).
		old := &Request{Op: OpRead, Addr: r.Addr, Blocks: 1, Data: make([]byte, core.BlockSize)}
		d.be.perform(t, old)
		if old.Err == nil {
			if r.Vec != nil {
				copyVecPrefix(old.Data[:dec.TornBytes], r.Vec)
			} else {
				copy(old.Data[:dec.TornBytes], r.Data[:dec.TornBytes])
			}
			torn := &Request{Op: OpWrite, Addr: r.Addr, Blocks: 1, Data: old.Data}
			d.be.perform(t, torn)
		}
	}
	r.Err = dec.Err
}

// CapacityBlocks returns the backing capacity.
func (d *driver) CapacityBlocks() int64 { return d.be.capacityBlocks() }

// Submit queues r for the worker.
func (d *driver) Submit(t sched.Task, r *Request) {
	if r.Blocks <= 0 {
		panic(fmt.Sprintf("device %s: request with %d blocks", d.name, r.Blocks))
	}
	r.Enqueued = d.k.Now()
	if r.done == nil {
		r.done = d.k.NewEvent("req.done")
	}
	d.mu.Lock(t)
	d.st.QueueHist.Observe(int64(d.queue.Len()))
	d.queue.Push(r)
	d.mu.Unlock(t)
	d.work.Signal()
}

// Wait blocks until r completes.
func (d *driver) Wait(t sched.Task, r *Request) {
	if r.done == nil {
		panic("device: Wait before Submit")
	}
	r.done.Wait(t)
}

// Do submits and waits.
func (d *driver) Do(t sched.Task, r *Request) error {
	d.Submit(t, r)
	d.Wait(t, r)
	return r.Err
}

// QueueLen returns the number of requests not yet dispatched.
func (d *driver) QueueLen() int { return d.queue.Len() }

func (d *driver) workerLoop(t sched.Task) {
	for {
		d.work.Wait(t)
		d.mu.Lock(t)
		r := d.queue.Pop(d.headLBA)
		d.mu.Unlock(t)
		if r == nil {
			continue
		}
		r.Started = d.k.Now()
		d.headLBA = r.Addr.LBA
		d.st.WaitMS.Observe(float64(r.Started.Sub(r.Enqueued)) / 1e6)
		d.perform(t, r)
		r.Completed = d.k.Now()
		serviceMS := float64(r.Completed.Sub(r.Started)) / 1e6
		d.st.ServiceMS.Observe(serviceMS)
		d.st.noteCompletion(r.Err, serviceMS)
		if r.Op == OpRead {
			d.st.Reads.Inc()
			d.st.BlocksRead.Add(int64(r.Blocks))
			if r.Vec != nil {
				d.st.VecReads.Inc()
			}
		} else {
			d.st.Writes.Inc()
			d.st.BlocksWritten.Add(int64(r.Blocks))
			if r.Vec != nil {
				d.st.VecWrites.Inc()
			}
		}
		if r.CacheHit {
			d.st.DiskCacheHits.Inc()
		}
		r.done.Signal()
	}
}

// Conn is the driver's view of the host/disk connection.
type Conn interface {
	Send(t sched.Task, n int64) time.Duration
}

// simBackend talks to a simulated disk over a simulated connection:
// acquire the connection, transfer the request (with data for
// writes), let the drive work, and receive the completion the drive
// sends back.
type simBackend struct {
	k    sched.Kernel
	conn Conn
	dsk  *disk.Disk
}

func (b *simBackend) capacityBlocks() int64 { return b.dsk.CapacityBlocks() }

func (b *simBackend) perform(t sched.Task, r *Request) {
	bytes := int64(r.Blocks) * core.BlockSize
	req := int64(32)
	if r.Op == OpWrite {
		req += bytes // data travels with the request
	}
	b.conn.Send(t, req)
	io := &disk.IOReq{
		Op:      disk.Read,
		LBA:     r.Addr.LBA * core.SectorsPerBlock,
		Sectors: r.Blocks * core.SectorsPerBlock,
		Done:    b.k.NewEvent("io.done"),
	}
	if r.Op == OpWrite {
		io.Op = disk.Write
	}
	b.dsk.Submit(t, io)
	io.Done.Wait(t)
	r.CacheHit = io.CacheHit
}

// NewSimDriver creates the simulated driver for dsk reached over
// conn, using queue scheduler q (C-LOOK when q is nil).
func NewSimDriver(k sched.Kernel, name string, dsk *disk.Disk, conn Conn, q Scheduler) Driver {
	if q == nil {
		q = &CLOOK{}
	}
	return newDriver(k, name, q, &simBackend{k: k, conn: conn, dsk: dsk})
}
