//go:build !linux

package device

import "os"

// Portable scatter-gather fallback: one positioned transfer per
// segment, no gather copy.

func readVec(f *os.File, vec [][]byte, off int64) error {
	for _, s := range vec {
		if len(s) == 0 {
			continue
		}
		if _, err := f.ReadAt(s, off); err != nil {
			return err
		}
		off += int64(len(s))
	}
	return nil
}

func writeVec(f *os.File, vec [][]byte, off int64) error {
	for _, s := range vec {
		if len(s) == 0 {
			continue
		}
		if _, err := f.WriteAt(s, off); err != nil {
			return err
		}
		off += int64(len(s))
	}
	return nil
}
