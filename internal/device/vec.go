package device

// Helpers for scatter-gather request vectors.

// VecLen is the total byte length of a request vector.
func VecLen(vec [][]byte) int {
	n := 0
	for _, s := range vec {
		n += len(s)
	}
	return n
}

// copyVecPrefix gathers vec's leading bytes into dst, stopping when
// dst is full or vec runs out; it returns the bytes copied.
func copyVecPrefix(dst []byte, vec [][]byte) int {
	n := 0
	for _, s := range vec {
		if n == len(dst) {
			break
		}
		n += copy(dst[n:], s)
	}
	return n
}

// ClipVec returns a prefix of vec totalling exactly n bytes; the last
// returned segment may be a partial slice of one of vec's segments
// (a torn vectored write ends mid-iovec). The returned segments alias
// vec's backing arrays.
func ClipVec(vec [][]byte, n int) [][]byte {
	out := make([][]byte, 0, len(vec))
	for _, s := range vec {
		if n <= 0 {
			break
		}
		if len(s) > n {
			out = append(out, s[:n])
			n = 0
			break
		}
		out = append(out, s)
		n -= len(s)
	}
	return out
}
