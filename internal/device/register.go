package device

import "repro/internal/core"

func init() {
	r := core.Components()
	for _, name := range []string{"fcfs", "sstf", "look", "clook", "cscan", "scan-edf"} {
		n := name
		r.Register(core.KindQueueSched, n, func() (Scheduler, bool) { return NewScheduler(n) })
	}
}
