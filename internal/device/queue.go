// Package device implements disk-drivers: components that own the
// disk I/O queues, order outstanding requests with a pluggable
// scheduling policy (C-LOOK by default, as in the paper), and talk
// to either a simulated disk over a simulated connection or to a
// real Unix file acting as the disk back-end. Both drivers present
// the same interface; the file system cannot tell which it has.
package device

import (
	"sort"

	"repro/internal/core"
	"repro/internal/sched"
)

// Request is one block-level I/O operation submitted by the file
// system. Addresses and counts are in file-system blocks.
type Request struct {
	Op     Op
	Addr   core.DiskAddr
	Blocks int
	// Data carries real bytes in the on-line system; it is nil in
	// the simulator. For reads the driver fills it, for writes the
	// driver consumes it.
	Data []byte
	// Vec is the scatter-gather form of Data: when non-nil the
	// back-end transfers into/out of the segments in order (preadv/
	// pwritev) and Data is ignored. The segments' total length must
	// equal Blocks*BlockSize. The caller must keep every segment
	// resident — and, for writes, unmodified — from Submit until the
	// request completes: segments typically alias cache frames, and
	// the pinning that guarantees this (frame Flushing/fill-claim
	// state, borrow counts) is the caller's responsibility. Fault
	// injection may persist a prefix of a vectored write that ends
	// mid-segment.
	Vec [][]byte
	// Deadline, when nonzero, is used by the scan-EDF scheduler for
	// requests with real-time constraints (continuous media).
	Deadline sched.Time

	// Timing, filled by the driver.
	Enqueued  sched.Time
	Started   sched.Time
	Completed sched.Time
	// CacheHit reports that the disk serviced the request from its
	// internal cache (including immediate-reported writes).
	CacheHit bool
	Err      error

	done sched.Event
	next *Request // intrusive FIFO link
}

// Op is the request direction.
type Op uint8

const (
	// OpRead reads blocks from disk.
	OpRead Op = iota
	// OpWrite writes blocks to disk.
	OpWrite
)

func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Scheduler is the disk-queue scheduling policy: the paper names
// SCAN, C-SCAN, LOOK, C-LOOK and scan-EDF as the candidates and uses
// C-LOOK as the default. Pop chooses the next request given the
// current head position (block LBA of the last dispatched request).
type Scheduler interface {
	Name() string
	Push(r *Request)
	Pop(headLBA int64) *Request
	Len() int
}

// NewScheduler builds the named scheduler; it powers the registry
// constructors and the ablation benchmarks.
func NewScheduler(name string) (Scheduler, bool) {
	switch name {
	case "fcfs":
		return &FCFS{}, true
	case "sstf":
		return &SSTF{}, true
	case "look", "scan":
		return &LOOK{}, true
	case "clook", "c-look":
		return &CLOOK{}, true
	case "cscan", "c-scan":
		return &CSCAN{}, true
	case "scan-edf":
		return &ScanEDF{}, true
	}
	return nil, false
}

// FCFS serves requests in arrival order.
type FCFS struct {
	head, tail *Request
	n          int
}

// Name returns "fcfs".
func (q *FCFS) Name() string { return "fcfs" }

// Push appends r.
func (q *FCFS) Push(r *Request) {
	r.next = nil
	if q.tail == nil {
		q.head, q.tail = r, r
	} else {
		q.tail.next = r
		q.tail = r
	}
	q.n++
}

// Pop removes the oldest request.
func (q *FCFS) Pop(int64) *Request {
	if q.head == nil {
		return nil
	}
	r := q.head
	q.head = r.next
	if q.head == nil {
		q.tail = nil
	}
	r.next = nil
	q.n--
	return r
}

// Len returns the queue length.
func (q *FCFS) Len() int { return q.n }

// sortedQueue is the shared machinery of the positional policies: a
// slice kept sorted by LBA.
type sortedQueue struct {
	reqs []*Request
}

func (q *sortedQueue) Push(r *Request) {
	i := sort.Search(len(q.reqs), func(i int) bool { return q.reqs[i].Addr.LBA >= r.Addr.LBA })
	q.reqs = append(q.reqs, nil)
	copy(q.reqs[i+1:], q.reqs[i:])
	q.reqs[i] = r
}

func (q *sortedQueue) Len() int { return len(q.reqs) }

func (q *sortedQueue) take(i int) *Request {
	r := q.reqs[i]
	q.reqs = append(q.reqs[:i], q.reqs[i+1:]...)
	return r
}

// firstAtOrAbove returns the index of the first request at or above
// lba, or len if none.
func (q *sortedQueue) firstAtOrAbove(lba int64) int {
	return sort.Search(len(q.reqs), func(i int) bool { return q.reqs[i].Addr.LBA >= lba })
}

// SSTF serves the request closest to the head.
type SSTF struct{ sortedQueue }

// Name returns "sstf".
func (q *SSTF) Name() string { return "sstf" }

// Pop removes the request nearest to headLBA.
func (q *SSTF) Pop(headLBA int64) *Request {
	if len(q.reqs) == 0 {
		return nil
	}
	i := q.firstAtOrAbove(headLBA)
	best := i
	if i == len(q.reqs) {
		best = i - 1
	} else if i > 0 {
		up := q.reqs[i].Addr.LBA - headLBA
		down := headLBA - q.reqs[i-1].Addr.LBA
		if down < up {
			best = i - 1
		}
	}
	return q.take(best)
}

// LOOK is the elevator: sweep toward increasing LBA, reverse at the
// last request in each direction.
type LOOK struct {
	sortedQueue
	down bool // zero value: sweeping toward increasing LBA
}

// Name returns "look".
func (q *LOOK) Name() string { return "look" }

// Pop continues the sweep from headLBA, reversing when the sweep
// direction has no requests left.
func (q *LOOK) Pop(headLBA int64) *Request {
	if len(q.reqs) == 0 {
		return nil
	}
	if q.down {
		// Sweeping down: take the largest request <= head.
		i := q.firstAtOrAbove(headLBA + 1)
		if i > 0 {
			return q.take(i - 1)
		}
		q.down = false
	}
	i := q.firstAtOrAbove(headLBA)
	if i < len(q.reqs) {
		return q.take(i)
	}
	q.down = true
	return q.take(len(q.reqs) - 1)
}

// CLOOK is the paper's default: sweep only toward increasing LBA,
// and when the sweep passes the last request jump back to the lowest
// one (circular LOOK).
type CLOOK struct{ sortedQueue }

// Name returns "clook".
func (q *CLOOK) Name() string { return "clook" }

// Pop takes the lowest request at or above headLBA, wrapping to the
// global lowest when none remain above.
func (q *CLOOK) Pop(headLBA int64) *Request {
	if len(q.reqs) == 0 {
		return nil
	}
	i := q.firstAtOrAbove(headLBA)
	if i == len(q.reqs) {
		i = 0 // wrap
	}
	return q.take(i)
}

// CSCAN sweeps to the end of the disk before wrapping; with LBA
// queues this behaves like CLOOK except the sweep notionally passes
// the disk edge — the distinction matters to seek accounting, not
// ordering, so Pop matches CLOOK.
type CSCAN struct{ CLOOK }

// Name returns "cscan".
func (q *CSCAN) Name() string { return "cscan" }

// ScanEDF orders by deadline first (earliest deadline first) and
// uses C-LOOK order among requests whose deadlines fall in the same
// quantum, following Reddy & Wyllie. Requests without deadlines sort
// after all deadline traffic.
type ScanEDF struct {
	reqs []*Request
	// Quantum groups deadlines; within a group the scan order wins.
	Quantum sched.Time
}

// Name returns "scan-edf".
func (q *ScanEDF) Name() string { return "scan-edf" }

// Push appends r (ordering happens in Pop).
func (q *ScanEDF) Push(r *Request) { q.reqs = append(q.reqs, r) }

// Len returns the queue length.
func (q *ScanEDF) Len() int { return len(q.reqs) }

// Pop removes the request with the earliest deadline quantum,
// breaking ties by C-LOOK position.
func (q *ScanEDF) Pop(headLBA int64) *Request {
	if len(q.reqs) == 0 {
		return nil
	}
	quantum := q.Quantum
	if quantum == 0 {
		quantum = sched.Time(50 * 1e6) // 50 ms default quantum
	}
	bucket := func(r *Request) sched.Time {
		if r.Deadline == 0 {
			return sched.Forever
		}
		return r.Deadline / quantum
	}
	best := 0
	for i := 1; i < len(q.reqs); i++ {
		bi, bb := bucket(q.reqs[i]), bucket(q.reqs[best])
		switch {
		case bi < bb:
			best = i
		case bi == bb && clookBefore(q.reqs[i], q.reqs[best], headLBA):
			best = i
		}
	}
	r := q.reqs[best]
	q.reqs = append(q.reqs[:best], q.reqs[best+1:]...)
	return r
}

// clookBefore reports whether a comes before b in C-LOOK order from
// the given head position.
func clookBefore(a, b *Request, headLBA int64) bool {
	aUp, bUp := a.Addr.LBA >= headLBA, b.Addr.LBA >= headLBA
	if aUp != bUp {
		return aUp // ahead of the head wins over wrapped
	}
	return a.Addr.LBA < b.Addr.LBA
}
