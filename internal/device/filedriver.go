package device

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sched"
)

// fileBackend is the real disk back-end: an ordinary Unix file (or
// raw device) addressed in file-system blocks, as PFS's only real
// driver uses. Latencies are whatever the host delivers.
type fileBackend struct {
	f      *os.File
	blocks int64
}

func (b *fileBackend) capacityBlocks() int64 { return b.blocks }

// Close releases the image file (crash harnesses cycle many driver
// incarnations per process).
func (b *fileBackend) Close() error { return b.f.Close() }

func (b *fileBackend) perform(t sched.Task, r *Request) {
	want := r.Blocks * core.BlockSize
	off := r.Addr.LBA * core.BlockSize
	if r.Vec != nil {
		if got := VecLen(r.Vec); got != want {
			r.Err = fmt.Errorf("device: request %s %v has %d vector bytes, need %d",
				r.Op, r.Addr, got, want)
			return
		}
		if r.Op == OpRead {
			r.Err = readVec(b.f, r.Vec, off)
		} else {
			r.Err = writeVec(b.f, r.Vec, off)
		}
		return
	}
	if len(r.Data) < want {
		r.Err = fmt.Errorf("device: request %s %v has %d data bytes, need %d",
			r.Op, r.Addr, len(r.Data), want)
		return
	}
	var err error
	if r.Op == OpRead {
		_, err = b.f.ReadAt(r.Data[:want], off)
	} else {
		_, err = b.f.WriteAt(r.Data[:want], off)
	}
	r.Err = err
}

// NewFileDriver opens (creating if needed) a file-backed driver of
// the given capacity in blocks. The file is sized up front so block
// addresses are always readable.
func NewFileDriver(k sched.Kernel, name, path string, blocks int64, q Scheduler) (Driver, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(blocks * core.BlockSize); err != nil {
		f.Close()
		return nil, err
	}
	if q == nil {
		q = &CLOOK{}
	}
	return newDriver(k, name, q, &fileBackend{f: f, blocks: blocks}), nil
}

// memBackend is an in-memory disk for tests and the quickstart
// example: real data movement without touching the host file system.
type memBackend struct {
	data   []byte
	blocks int64
}

func (b *memBackend) capacityBlocks() int64 { return b.blocks }

func (b *memBackend) perform(t sched.Task, r *Request) {
	want := r.Blocks * core.BlockSize
	off := r.Addr.LBA * core.BlockSize
	if off < 0 || off+int64(want) > int64(len(b.data)) {
		r.Err = fmt.Errorf("device: %s %v beyond capacity", r.Op, r.Addr)
		return
	}
	if r.Vec != nil {
		if got := VecLen(r.Vec); got != want {
			r.Err = fmt.Errorf("device: request %s %v has %d vector bytes, need %d",
				r.Op, r.Addr, got, want)
			return
		}
		pos := off
		for _, s := range r.Vec {
			if r.Op == OpRead {
				copy(s, b.data[pos:])
			} else {
				copy(b.data[pos:], s)
			}
			pos += int64(len(s))
		}
		return
	}
	if len(r.Data) < want {
		r.Err = fmt.Errorf("device: request %s %v has %d data bytes, need %d",
			r.Op, r.Addr, len(r.Data), want)
		return
	}
	if r.Op == OpRead {
		copy(r.Data[:want], b.data[off:])
	} else {
		copy(b.data[off:], r.Data[:want])
	}
}

// NewMemDriver creates a RAM-backed driver of the given capacity.
func NewMemDriver(k sched.Kernel, name string, blocks int64, q Scheduler) Driver {
	if q == nil {
		q = &CLOOK{}
	}
	return newDriver(k, name, q, &memBackend{
		data:   make([]byte, blocks*core.BlockSize),
		blocks: blocks,
	})
}
