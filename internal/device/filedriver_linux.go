//go:build linux

package device

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// iovMax is the kernel's per-call iovec limit (UIO_MAXIOV); longer
// vectors go out as several preadv/pwritev calls.
const iovMax = 1024

// readVec fills vec from f starting at off using preadv, looping over
// iovec-limit chunks and short transfers. A zero-length transfer is
// an error: the image is truncated to capacity up front, so every
// block address is readable in full.
func readVec(f *os.File, vec [][]byte, off int64) error {
	return vecSyscall(f, vec, off, syscall.SYS_PREADV, "preadv")
}

// writeVec writes vec to f starting at off using pwritev.
func writeVec(f *os.File, vec [][]byte, off int64) error {
	return vecSyscall(f, vec, off, syscall.SYS_PWRITEV, "pwritev")
}

func vecSyscall(f *os.File, vec [][]byte, off int64, trap uintptr, name string) error {
	// SyscallConn pins the descriptor for the duration of the
	// transfer: a concurrent Close (server crash teardown with a
	// request still in flight) waits instead of racing the raw
	// syscalls below, matching the safety os.File gives ReadAt.
	sc, err := f.SyscallConn()
	if err != nil {
		return err
	}
	var ioErr error
	if cerr := sc.Control(func(fd uintptr) {
		ioErr = vecLoop(fd, vec, off, trap, name)
	}); cerr != nil {
		return cerr
	}
	return ioErr
}

func vecLoop(fd uintptr, vec [][]byte, off int64, trap uintptr, name string) error {
	// Work on a copy of the segment headers: short transfers advance
	// the front segment in place.
	segs := make([][]byte, 0, len(vec))
	for _, s := range vec {
		if len(s) > 0 {
			segs = append(segs, s)
		}
	}
	iov := make([]syscall.Iovec, 0, min(len(segs), iovMax))
	for len(segs) > 0 {
		iov = iov[:0]
		for _, s := range segs {
			if len(iov) == iovMax {
				break
			}
			v := syscall.Iovec{Base: &s[0]}
			v.SetLen(len(s))
			iov = append(iov, v)
		}
		// preadv/pwritev split the offset across two registers; the
		// kernel ORs (pos_h << 32) with pos_l, so passing the full
		// offset as pos_l is correct on 64-bit too.
		got, _, errno := syscall.Syscall6(trap, fd,
			uintptr(unsafe.Pointer(&iov[0])), uintptr(len(iov)),
			uintptr(off), uintptr(off>>32), 0)
		runtime.KeepAlive(segs)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return os.NewSyscallError(name, errno)
		}
		if got == 0 {
			return fmt.Errorf("device: %s: unexpected EOF at offset %d", name, off)
		}
		off += int64(got)
		segs = advanceVec(segs, int(got))
	}
	return nil
}

// advanceVec drops n transferred bytes off the front of segs,
// trimming the first remaining segment on a mid-segment stop.
func advanceVec(segs [][]byte, n int) [][]byte {
	for n > 0 && len(segs) > 0 {
		if n >= len(segs[0]) {
			n -= len(segs[0])
			segs = segs[1:]
			continue
		}
		segs[0] = segs[0][n:]
		n = 0
	}
	return segs
}
