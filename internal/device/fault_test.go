package device

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// doIO runs one request through drv on a kernel task.
func doIO(t *testing.T, k *sched.RKernel, drv Driver, r *Request) error {
	t.Helper()
	errc := make(chan error, 1)
	k.Go("io", func(tk sched.Task) { errc <- drv.Do(tk, r) })
	return <-errc
}

func blockOf(b byte) []byte {
	buf := make([]byte, core.BlockSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// TestFaultPlanPowerCut checks the cut trips at exactly the Nth I/O,
// the tripping write is swallowed, and everything after fails without
// reaching the media.
func TestFaultPlanPowerCut(t *testing.T) {
	k := sched.NewReal(1)
	defer k.Stop()
	drv := NewMemDriver(k, "mem", 64, nil)
	plan := NewFaultPlan(FaultConfig{CutAfterIO: 3})
	drv.SetInjector(plan)

	var cutSeen bool
	plan.OnCut(func() { cutSeen = true })

	for i := 0; i < 2; i++ {
		r := &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: int64(i)}, Blocks: 1, Data: blockOf(0xAA)}
		if err := doIO(t, k, drv, r); err != nil {
			t.Fatalf("pre-cut write %d: %v", i, err)
		}
	}
	r := &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: 2}, Blocks: 1, Data: blockOf(0xBB)}
	if err := doIO(t, k, drv, r); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut write: err=%v, want ErrPowerCut", err)
	}
	if !cutSeen {
		t.Fatal("OnCut callback never ran")
	}
	if got := plan.CutIO(); got != 3 {
		t.Fatalf("CutIO = %d, want 3", got)
	}
	// Post-cut: reads and writes fail, nothing reaches the media.
	if err := doIO(t, k, drv, &Request{Op: OpRead, Addr: core.DiskAddr{LBA: 0}, Blocks: 1, Data: make([]byte, core.BlockSize)}); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut read err=%v, want ErrPowerCut", err)
	}
	// Restore and verify the swallowed block never hit the media while
	// the pre-cut ones did.
	plan.Restore()
	chk := make([]byte, core.BlockSize)
	if err := doIO(t, k, drv, &Request{Op: OpRead, Addr: core.DiskAddr{LBA: 1}, Blocks: 1, Data: chk}); err != nil {
		t.Fatalf("restored read: %v", err)
	}
	if !bytes.Equal(chk, blockOf(0xAA)) {
		t.Fatal("pre-cut write lost")
	}
	if err := doIO(t, k, drv, &Request{Op: OpRead, Addr: core.DiskAddr{LBA: 2}, Blocks: 1, Data: chk}); err != nil {
		t.Fatalf("restored read: %v", err)
	}
	if bytes.Equal(chk, blockOf(0xBB)) {
		t.Fatal("cut write reached the media")
	}
}

// TestFaultPlanTornWrite checks a torn multi-block write persists
// exactly a non-empty proper prefix.
func TestFaultPlanTornWrite(t *testing.T) {
	k := sched.NewReal(1)
	defer k.Stop()
	drv := NewMemDriver(k, "mem", 64, nil)
	plan := NewFaultPlan(FaultConfig{Seed: 7, TornRate: 1})
	drv.SetInjector(plan)

	data := make([]byte, 8*core.BlockSize)
	for i := range data {
		data[i] = 0xCD
	}
	r := &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: 8}, Blocks: 8, Data: data}
	if err := doIO(t, k, drv, r); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("torn write err=%v, want ErrTornWrite", err)
	}
	drv.SetInjector(nil)
	written := 0
	chk := make([]byte, core.BlockSize)
	for b := 0; b < 8; b++ {
		if err := doIO(t, k, drv, &Request{Op: OpRead, Addr: core.DiskAddr{LBA: 8 + int64(b)}, Blocks: 1, Data: chk}); err != nil {
			t.Fatalf("read back: %v", err)
		}
		if chk[0] == 0xCD {
			if written != b {
				t.Fatalf("torn write left a hole before block %d", b)
			}
			written++
		}
	}
	if written == 0 || written == 8 {
		t.Fatalf("torn write persisted %d of 8 blocks, want a proper prefix", written)
	}
}

// TestFaultPlanTornVectoredWrite checks a torn vectored write
// persists exactly a non-empty proper prefix of the scatter-gather
// payload — including a tear that lands mid-segment, since the
// persisted prefix is counted in blocks while the vector's segments
// span several.
func TestFaultPlanTornVectoredWrite(t *testing.T) {
	k := sched.NewReal(1)
	defer k.Stop()
	drv := NewMemDriver(k, "mem", 64, nil)
	plan := NewFaultPlan(FaultConfig{Seed: 7, TornRate: 1})
	drv.SetInjector(plan)

	// 8 blocks in three uneven segments (3+1+4), each block carrying
	// its index, so most tear points fall inside a segment.
	payload := make([]byte, 8*core.BlockSize)
	for b := 0; b < 8; b++ {
		for i := 0; i < core.BlockSize; i++ {
			payload[b*core.BlockSize+i] = 0xC0 + byte(b)
		}
	}
	vec := [][]byte{
		payload[:3*core.BlockSize],
		payload[3*core.BlockSize : 4*core.BlockSize],
		payload[4*core.BlockSize:],
	}
	r := &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: 8}, Blocks: 8, Vec: vec}
	if err := doIO(t, k, drv, r); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("torn vectored write err=%v, want ErrTornWrite", err)
	}
	drv.SetInjector(nil)
	written := 0
	chk := make([]byte, core.BlockSize)
	for b := 0; b < 8; b++ {
		if err := doIO(t, k, drv, &Request{Op: OpRead, Addr: core.DiskAddr{LBA: 8 + int64(b)}, Blocks: 1, Data: chk}); err != nil {
			t.Fatalf("read back: %v", err)
		}
		if chk[0] == 0xC0+byte(b) {
			if written != b {
				t.Fatalf("torn vectored write left a hole before block %d", b)
			}
			if !bytes.Equal(chk, payload[b*core.BlockSize:(b+1)*core.BlockSize]) {
				t.Fatalf("block %d persisted with wrong content", b)
			}
			written++
		}
	}
	if written == 0 || written == 8 {
		t.Fatalf("torn vectored write persisted %d of 8 blocks, want a proper prefix", written)
	}
}

// TestFaultPlanTornVectoredSubBlock checks a sub-block tear of a
// single-block vectored write persists a byte prefix gathered across
// the vector's segments, with the rest of the block keeping its old
// content.
func TestFaultPlanTornVectoredSubBlock(t *testing.T) {
	k := sched.NewReal(1)
	defer k.Stop()
	drv := NewMemDriver(k, "mem", 64, nil)

	old := blockOf(0x11)
	if err := doIO(t, k, drv, &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: 5}, Blocks: 1, Data: old}); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	plan := NewFaultPlan(FaultConfig{Seed: 9, CutAfterIO: 1, CutTearsSubBlock: true})
	drv.SetInjector(plan)
	half := core.BlockSize / 2
	payload := make([]byte, core.BlockSize)
	for i := range payload {
		if i < half {
			payload[i] = 0xAA
		} else {
			payload[i] = 0xBB
		}
	}
	vec := [][]byte{payload[:half], payload[half:]}
	r := &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: 5}, Blocks: 1, Vec: vec}
	if err := doIO(t, k, drv, r); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("sub-block torn vectored write err=%v, want ErrPowerCut", err)
	}
	plan.Restore()
	chk := make([]byte, core.BlockSize)
	if err := doIO(t, k, drv, &Request{Op: OpRead, Addr: core.DiskAddr{LBA: 5}, Blocks: 1, Data: chk}); err != nil {
		t.Fatalf("read back: %v", err)
	}
	tb := 0
	for tb < core.BlockSize && chk[tb] != 0x11 {
		tb++
	}
	if tb == 0 || tb == core.BlockSize {
		t.Fatalf("sub-block tear persisted %d bytes, want a proper prefix", tb)
	}
	if !bytes.Equal(chk[:tb], payload[:tb]) {
		t.Fatal("persisted prefix does not match the vectored payload")
	}
	for i := tb; i < core.BlockSize; i++ {
		if chk[i] != 0x11 {
			t.Fatalf("byte %d past the tear changed (got %#x)", i, chk[i])
		}
	}
}

// TestFaultPlanVectoredCountsOneIO checks the fault plan's I/O
// accounting treats one scatter-gather request as ONE I/O, however
// many segments it carries: CutAfterIO=3 must survive two vectored
// writes and trip exactly on the third request.
func TestFaultPlanVectoredCountsOneIO(t *testing.T) {
	k := sched.NewReal(1)
	defer k.Stop()
	drv := NewMemDriver(k, "mem", 64, nil)
	plan := NewFaultPlan(FaultConfig{CutAfterIO: 3})
	drv.SetInjector(plan)

	fourBlockVec := func() [][]byte {
		var vec [][]byte
		for b := 0; b < 4; b++ {
			vec = append(vec, blockOf(0xE0+byte(b)))
		}
		return vec
	}
	for i := 0; i < 2; i++ {
		r := &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: int64(4 * i)}, Blocks: 4, Vec: fourBlockVec()}
		if err := doIO(t, k, drv, r); err != nil {
			t.Fatalf("vectored write %d (I/O %d of 3): %v", i, i+1, err)
		}
	}
	r := &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: 8}, Blocks: 4, Vec: fourBlockVec()}
	if err := doIO(t, k, drv, r); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("third vectored request err=%v, want ErrPowerCut", err)
	}
	if got := plan.IOs(); got != 3 {
		t.Fatalf("IOs = %d, want 3 (a vectored request is one I/O)", got)
	}
}

// TestFaultPlanErrorRates checks injected errors fail requests
// without killing the stack, and rate 0 injects nothing.
func TestFaultPlanErrorRates(t *testing.T) {
	k := sched.NewReal(1)
	defer k.Stop()
	drv := NewMemDriver(k, "mem", 64, nil)
	plan := NewFaultPlan(FaultConfig{Seed: 3, ReadErrRate: 0.5})
	drv.SetInjector(plan)

	failed, passed := 0, 0
	for i := 0; i < 64; i++ {
		err := doIO(t, k, drv, &Request{Op: OpRead, Addr: core.DiskAddr{LBA: int64(i)}, Blocks: 1, Data: make([]byte, core.BlockSize)})
		switch {
		case err == nil:
			passed++
		case errors.Is(err, ErrInjected):
			failed++
		default:
			t.Fatalf("read %d: unexpected error %v", i, err)
		}
		// Writes are not subject to the read error rate.
		if err := doIO(t, k, drv, &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: int64(i)}, Blocks: 1, Data: blockOf(1)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if failed == 0 || passed == 0 {
		t.Fatalf("rate 0.5 over 64 reads: %d failed, %d passed", failed, passed)
	}
	if plan.HasCut() {
		t.Fatal("error rates must not trip the power cut")
	}
}
