package device

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sched"
)

func req(lba int64) *Request {
	return &Request{Op: OpRead, Addr: core.DiskAddr{Disk: 0, LBA: lba}, Blocks: 1}
}

func popAll(q Scheduler, head int64) []int64 {
	var out []int64
	for q.Len() > 0 {
		r := q.Pop(head)
		out = append(out, r.Addr.LBA)
		head = r.Addr.LBA
	}
	return out
}

func TestFCFSOrder(t *testing.T) {
	q := &FCFS{}
	for _, lba := range []int64{5, 1, 9, 3} {
		q.Push(req(lba))
	}
	got := popAll(q, 0)
	if fmt.Sprint(got) != "[5 1 9 3]" {
		t.Fatalf("FCFS order %v", got)
	}
}

func TestCLOOKSweepAndWrap(t *testing.T) {
	q := &CLOOK{}
	for _, lba := range []int64{10, 50, 20, 5, 80} {
		q.Push(req(lba))
	}
	// Head at 15: ascending from 15, then wrap to the lowest.
	got := popAll(q, 15)
	if fmt.Sprint(got) != "[20 50 80 5 10]" {
		t.Fatalf("C-LOOK order %v, want [20 50 80 5 10]", got)
	}
}

func TestLOOKElevator(t *testing.T) {
	q := &LOOK{}
	for _, lba := range []int64{10, 50, 20, 5, 80} {
		q.Push(req(lba))
	}
	// Head at 15 going up: 20 50 80, reverse: 10 5.
	got := popAll(q, 15)
	if fmt.Sprint(got) != "[20 50 80 10 5]" {
		t.Fatalf("LOOK order %v, want [20 50 80 10 5]", got)
	}
}

func TestSSTFNearest(t *testing.T) {
	q := &SSTF{}
	for _, lba := range []int64{100, 30, 40, 90} {
		q.Push(req(lba))
	}
	got := popAll(q, 35)
	// From 35: 30 or 40 tie-ish (40-35=5, 35-30=5; firstAtOrAbove
	// picks 40 when up distance <= down). Then greedy nearest.
	if fmt.Sprint(got) != "[40 30 90 100]" && fmt.Sprint(got) != "[30 40 90 100]" {
		t.Fatalf("SSTF order %v", got)
	}
}

func TestScanEDFDeadlinesFirst(t *testing.T) {
	q := &ScanEDF{Quantum: sched.Time(10 * time.Millisecond)}
	a := req(100)
	b := req(10)
	b.Deadline = sched.Time(5 * time.Millisecond)
	c := req(50)
	c.Deadline = sched.Time(200 * time.Millisecond)
	q.Push(a)
	q.Push(b)
	q.Push(c)
	got := popAll(q, 0)
	if fmt.Sprint(got) != "[10 50 100]" {
		t.Fatalf("scan-EDF order %v, want deadline order [10 50 100]", got)
	}
}

func TestScanEDFSameQuantumUsesScan(t *testing.T) {
	q := &ScanEDF{Quantum: sched.Time(time.Second)}
	a := req(80)
	a.Deadline = sched.Time(10 * time.Millisecond)
	b := req(20)
	b.Deadline = sched.Time(400 * time.Millisecond) // same 1s bucket
	q.Push(a)
	q.Push(b)
	got := popAll(q, 0)
	if fmt.Sprint(got) != "[20 80]" {
		t.Fatalf("same-quantum order %v, want scan order [20 80]", got)
	}
}

func TestNewSchedulerNames(t *testing.T) {
	for _, name := range []string{"fcfs", "sstf", "look", "scan", "clook", "cscan", "scan-edf"} {
		q, ok := NewScheduler(name)
		if !ok || q == nil {
			t.Fatalf("NewScheduler(%q) failed", name)
		}
	}
	if _, ok := NewScheduler("nope"); ok {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestSimDriverCompletesRequests(t *testing.T) {
	k := sched.NewVirtual(21)
	b := bus.New(k, bus.SCSI2("scsi0"))
	dsk := disk.New(k, disk.HP97560("d0"), b)
	dsk.Start()
	drv := NewSimDriver(k, "drv0", dsk, b, nil)
	var lat time.Duration
	k.Go("fs", func(tk sched.Task) {
		r := &Request{Op: OpRead, Addr: core.DiskAddr{LBA: 5000}, Blocks: 2}
		start := k.Now()
		if err := drv.Do(tk, r); err != nil {
			t.Errorf("Do: %v", err)
		}
		lat = k.Now().Sub(start)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if lat < 2*time.Millisecond || lat > 50*time.Millisecond {
		t.Fatalf("sim read latency %v out of plausible window", lat)
	}
	st := drv.DriverStats()
	if st.Reads.Value() != 1 || st.BlocksRead.Value() != 2 {
		t.Fatalf("stats reads=%d blocks=%d", st.Reads.Value(), st.BlocksRead.Value())
	}
}

func TestSimDriverQueueBuildsUnderLoad(t *testing.T) {
	k := sched.NewVirtual(23)
	b := bus.New(k, bus.SCSI2("scsi0"))
	dsk := disk.New(k, disk.HP97560("d0"), b)
	dsk.Start()
	drv := NewSimDriver(k, "drv0", dsk, b, nil)
	done := 0
	for i := 0; i < 20; i++ {
		lba := int64(i * 37777)
		k.Go("client", func(tk sched.Task) {
			r := &Request{Op: OpRead, Addr: core.DiskAddr{LBA: lba % dsk.CapacityBlocks()}, Blocks: 1}
			drv.Do(tk, r)
			done++
			if done == 20 {
				k.Stop()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
	// Under a burst the queue histogram must have seen depth > 1.
	h := drv.DriverStats().QueueHist
	if h.Total() != 20 {
		t.Fatalf("queue samples = %d", h.Total())
	}
	deep := int64(0)
	for i := 2; i < 9; i++ {
		deep += h.Bucket(i)
	}
	if deep == 0 {
		t.Fatal("burst never queued more than one request")
	}
}

func TestMemDriverRoundTrip(t *testing.T) {
	k := sched.NewVirtual(1)
	drv := NewMemDriver(k, "mem0", 128, nil)
	k.Go("fs", func(tk sched.Task) {
		out := bytes.Repeat([]byte{0xAB}, core.BlockSize)
		w := &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: 7}, Blocks: 1, Data: out}
		if err := drv.Do(tk, w); err != nil {
			t.Errorf("write: %v", err)
		}
		in := make([]byte, core.BlockSize)
		r := &Request{Op: OpRead, Addr: core.DiskAddr{LBA: 7}, Blocks: 1, Data: in}
		if err := drv.Do(tk, r); err != nil {
			t.Errorf("read: %v", err)
		}
		if !bytes.Equal(in, out) {
			t.Error("round trip mismatch")
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMemDriverBoundsChecked(t *testing.T) {
	k := sched.NewVirtual(1)
	drv := NewMemDriver(k, "mem0", 4, nil)
	k.Go("fs", func(tk sched.Task) {
		r := &Request{Op: OpRead, Addr: core.DiskAddr{LBA: 99}, Blocks: 1,
			Data: make([]byte, core.BlockSize)}
		if err := drv.Do(tk, r); err == nil {
			t.Error("out-of-range read succeeded")
		}
		short := &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: 0}, Blocks: 1, Data: []byte{1}}
		if err := drv.Do(tk, short); err == nil {
			t.Error("short buffer accepted")
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFileDriverPersists(t *testing.T) {
	k := sched.NewVirtual(1)
	path := filepath.Join(t.TempDir(), "disk.img")
	drv, err := NewFileDriver(k, "f0", path, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if drv.CapacityBlocks() != 64 {
		t.Fatalf("capacity = %d", drv.CapacityBlocks())
	}
	k.Go("fs", func(tk sched.Task) {
		out := bytes.Repeat([]byte{0x5C}, core.BlockSize)
		if err := drv.Do(tk, &Request{Op: OpWrite, Addr: core.DiskAddr{LBA: 3}, Blocks: 1, Data: out}); err != nil {
			t.Errorf("write: %v", err)
		}
		in := make([]byte, core.BlockSize)
		if err := drv.Do(tk, &Request{Op: OpRead, Addr: core.DiskAddr{LBA: 3}, Blocks: 1, Data: in}); err != nil {
			t.Errorf("read: %v", err)
		}
		if !bytes.Equal(in, out) {
			t.Error("file round trip mismatch")
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBlockRequestPanics(t *testing.T) {
	k := sched.NewVirtual(1)
	drv := NewMemDriver(k, "mem0", 4, nil)
	caught := false
	k.Go("fs", func(tk sched.Task) {
		defer func() {
			if recover() != nil {
				caught = true
			}
			k.Stop()
		}()
		drv.Submit(tk, &Request{Op: OpRead, Addr: core.DiskAddr{LBA: 0}, Blocks: 0})
	})
	_ = k.Run()
	if !caught {
		t.Fatal("zero-block request accepted")
	}
}
