package device

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
)

// This file is the storage stack's fault/persistence seam. The
// driver engine consults an Interceptor at the exact point where a
// request would reach the hardware — after queueing and scheduling,
// before the bus transfer / disk mechanism / backing file — so one
// seam covers the simulated bus+disk stack and both real back-ends,
// and everything above the driver (volume, cache, layouts) runs
// unchanged over an injectable stack.

// Injected fault errors.
var (
	// ErrInjected is a transient injected I/O failure.
	ErrInjected = errors.New("device: injected I/O error")
	// ErrTornWrite is a write that reached the media only partially.
	ErrTornWrite = errors.New("device: torn write")
	// ErrPowerCut means the (simulated) machine lost power: the
	// request, and every request after it, never reaches the media.
	ErrPowerCut = errors.New("device: power cut")
	// ErrDiskDead means the request's disk has died permanently:
	// unlike ErrInjected, no retry will ever succeed. The volume
	// manager reacts by marking the member dead and serving from
	// redundancy.
	ErrDiskDead = errors.New("device: disk dead")
)

// Decision is an interceptor's verdict on one request.
type Decision struct {
	// Err, when non-nil, fails the request. With a nil Err the
	// request proceeds to the hardware untouched.
	Err error
	// TornBlocks, with a non-nil Err on a write, is the prefix of the
	// request that still reaches the media before the failure — the
	// torn-write model. Zero means nothing was written.
	TornBlocks int
	// TornBytes, with a non-nil Err on a single-block write, is the
	// byte prefix of the block that reaches the media; the rest of
	// the block keeps its old contents — the sub-block tear that
	// splices half an inode-table or bitmap update onto stale bytes.
	TornBytes int
}

// Interceptor observes every request at the driver/hardware boundary
// and may fail, tear or swallow it. Implementations must be safe for
// concurrent use: the real kernel runs one worker task per driver.
type Interceptor interface {
	Intercept(r *Request) Decision
}

// FaultConfig parameterizes a FaultPlan.
type FaultConfig struct {
	// Seed drives the plan's private random source (independent of
	// the kernel's, so installing a plan with zero rates leaves a
	// simulation's schedule untouched).
	Seed int64
	// ReadErrRate / WriteErrRate are per-request failure
	// probabilities (0..1).
	ReadErrRate  float64
	WriteErrRate float64
	// TornRate is the probability that a multi-block write is torn:
	// a random non-empty prefix reaches the media, then the request
	// fails with ErrTornWrite.
	TornRate float64
	// CutAfterIO, when positive, trips a power cut at the Nth
	// intercepted I/O (1-based): that request and everything after
	// it fail with ErrPowerCut and never reach the media.
	CutAfterIO int64
	// CutTearsWrite tears the cut request instead of swallowing it
	// whole when it is a multi-block write — the torn final segment
	// or checkpoint a real power cut leaves behind.
	CutTearsWrite bool
	// CutTearsSubBlock extends CutTearsWrite to single-block writes:
	// the cut request persists only a byte prefix of its one block,
	// modeling a sector-granular tear through an inode table or
	// allocation bitmap. Only meaningful with real (data-carrying)
	// back-ends; simulated stacks ignore the byte prefix.
	CutTearsSubBlock bool
	// KillAfterIO, when positive, kills disk KillMember at the Nth
	// intercepted I/O (1-based): that request and every later one
	// addressed to the member fail with ErrDiskDead — the permanent
	// member-loss fault, as opposed to the transient error rates.
	KillAfterIO int64
	// KillMember is the disk index (Request.Addr.Disk) that
	// KillAfterIO kills.
	KillMember int
}

// FaultPlan is the standard Interceptor: I/O error rates, torn
// writes, and a power cut that freezes the whole stack at an
// arbitrary I/O. One plan is shared by every driver of a system so
// the cut is atomic across an array: the global I/O counter orders
// requests across members, and once it trips nothing anywhere
// reaches the media.
type FaultPlan struct {
	mu     sync.Mutex
	cfg    FaultConfig
	rng    *rand.Rand
	ios    int64
	cut    bool
	cutIO  int64
	onCut  []func()
	dead   int // disk index killed by the death fault, -1 none
	killIO int64
	onKill []func(member int)

	// Injection telemetry, by outcome kind.
	injRead, injWrite, injTorn, cutRejects, deadRejects int64
}

// NewFaultPlan builds a plan from cfg.
func NewFaultPlan(cfg FaultConfig) *FaultPlan {
	return &FaultPlan{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), dead: -1}
}

// Intercept implements Interceptor.
func (p *FaultPlan) Intercept(r *Request) Decision {
	p.mu.Lock()
	if p.cut {
		p.cutRejects++
		p.mu.Unlock()
		return Decision{Err: ErrPowerCut}
	}
	p.ios++
	if p.cfg.KillAfterIO > 0 && p.ios >= p.cfg.KillAfterIO && p.dead < 0 {
		fns := p.killLocked(p.cfg.KillMember)
		dead := p.dead
		p.mu.Unlock()
		for _, fn := range fns {
			fn(dead)
		}
		p.mu.Lock()
	}
	if p.dead >= 0 && r.Addr.Disk == p.dead {
		p.deadRejects++
		p.mu.Unlock()
		return Decision{Err: ErrDiskDead}
	}
	if p.cfg.CutAfterIO > 0 && p.ios >= p.cfg.CutAfterIO {
		p.cutIO = p.ios
		dec := Decision{Err: ErrPowerCut}
		if p.cfg.CutTearsWrite && r.Op == OpWrite && r.Blocks > 1 {
			dec.TornBlocks = 1 + p.rng.Intn(r.Blocks-1)
		} else if p.cfg.CutTearsSubBlock && r.Op == OpWrite && r.Blocks == 1 {
			dec.TornBytes = 1 + p.rng.Intn(core.BlockSize-1)
		}
		fns := p.cutLocked()
		p.mu.Unlock()
		for _, fn := range fns {
			fn()
		}
		return dec
	}
	rate := p.cfg.ReadErrRate
	if r.Op == OpWrite {
		rate = p.cfg.WriteErrRate
	}
	if rate > 0 && p.rng.Float64() < rate {
		if r.Op == OpWrite {
			p.injWrite++
		} else {
			p.injRead++
		}
		p.mu.Unlock()
		return Decision{Err: ErrInjected}
	}
	if r.Op == OpWrite && r.Blocks > 1 && p.cfg.TornRate > 0 && p.rng.Float64() < p.cfg.TornRate {
		p.injTorn++
		dec := Decision{Err: ErrTornWrite, TornBlocks: 1 + p.rng.Intn(r.Blocks-1)}
		p.mu.Unlock()
		return dec
	}
	p.mu.Unlock()
	return Decision{}
}

// cutLocked trips the cut and returns the callbacks to run (with the
// lock released, so a callback may inspect the plan). The trigger is
// one-shot: Restore turns the power back on without re-tripping.
func (p *FaultPlan) cutLocked() []func() {
	p.cut = true
	p.cfg.CutAfterIO = 0
	fns := p.onCut
	p.onCut = nil
	return fns
}

// Cut trips the power cut now (the time-based crash path). Pending
// and future requests fail with ErrPowerCut.
func (p *FaultPlan) Cut() {
	p.mu.Lock()
	if p.cut {
		p.mu.Unlock()
		return
	}
	p.cutIO = p.ios
	fns := p.cutLocked()
	p.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// ArmCut arms (or re-arms) the I/O-count cut trigger n device I/Os
// from now, so a cut can target a phase that starts mid-run — e.g.
// the I/Os of a supervised repair, not the baseline traffic that
// preceded it. n <= 0 disarms.
func (p *FaultPlan) ArmCut(n int64) {
	p.mu.Lock()
	if n > 0 {
		p.cfg.CutAfterIO = p.ios + n
	} else {
		p.cfg.CutAfterIO = 0
	}
	p.mu.Unlock()
}

// Restore turns the power back on: requests flow to the media again.
// Simulated recovery reuses the crashed stack this way; a real
// recovery would reopen the devices instead.
func (p *FaultPlan) Restore() {
	p.mu.Lock()
	p.cut = false
	p.mu.Unlock()
}

// OnCut registers fn to run once at the instant the cut trips (from
// the task performing the fatal I/O). A plan already cut runs fn
// immediately.
func (p *FaultPlan) OnCut(fn func()) {
	p.mu.Lock()
	if p.cut {
		p.mu.Unlock()
		fn()
		return
	}
	p.onCut = append(p.onCut, fn)
	p.mu.Unlock()
}

// killLocked marks member dead and returns the callbacks to run with
// the lock released. The trigger is one-shot.
func (p *FaultPlan) killLocked(member int) []func(int) {
	p.dead = member
	p.killIO = p.ios
	p.cfg.KillAfterIO = 0
	fns := p.onKill
	p.onKill = nil
	return fns
}

// Kill declares disk member dead now: every request addressed to it
// from here on fails with ErrDiskDead. Idempotent; only one member
// can be dead per plan (single-fault model).
func (p *FaultPlan) Kill(member int) {
	p.mu.Lock()
	if p.dead >= 0 {
		p.mu.Unlock()
		return
	}
	fns := p.killLocked(member)
	p.mu.Unlock()
	for _, fn := range fns {
		fn(member)
	}
}

// OnKill registers fn to run once when the death fault trips (from
// the task performing the fatal I/O), with the dead member's index.
// A plan whose member already died runs fn immediately.
func (p *FaultPlan) OnKill(fn func(member int)) {
	p.mu.Lock()
	if p.dead >= 0 {
		dead := p.dead
		p.mu.Unlock()
		fn(dead)
		return
	}
	p.onKill = append(p.onKill, fn)
	p.mu.Unlock()
}

// Revive clears the death fault — the harness swaps in a replacement
// disk for the dead member and lets I/O flow to it again.
func (p *FaultPlan) Revive() {
	p.mu.Lock()
	p.dead = -1
	p.mu.Unlock()
}

// DeadMember returns the index of the killed disk, -1 when none.
func (p *FaultPlan) DeadMember() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// KillIO returns the ordinal of the request that tripped the death
// fault (0 when it has not tripped).
func (p *FaultPlan) KillIO() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead < 0 && p.killIO == 0 {
		return 0
	}
	return p.killIO
}

// DeadRejects returns how many requests were rejected because their
// disk was dead.
func (p *FaultPlan) DeadRejects() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deadRejects
}

// HasCut reports whether the power cut has tripped.
func (p *FaultPlan) HasCut() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cut
}

// Injected returns the injection tallies: transient read and write
// errors, torn writes, and requests rejected after a power cut.
func (p *FaultPlan) Injected() (readErrs, writeErrs, torn, cutRejects int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injRead, p.injWrite, p.injTorn, p.cutRejects
}

// IOs returns the number of requests intercepted so far.
func (p *FaultPlan) IOs() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ios
}

// CutIO returns the ordinal of the request that tripped the cut
// (0 when it has not tripped).
func (p *FaultPlan) CutIO() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.cut {
		return 0
	}
	return p.cutIO
}

func (p *FaultPlan) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("faultplan(ios=%d cut=%v rerr=%g werr=%g torn=%g)",
		p.ios, p.cut, p.cfg.ReadErrRate, p.cfg.WriteErrRate, p.cfg.TornRate)
}
