package sched

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"
)

// VKernel is the virtual-time kernel: a deterministic cooperative
// discrete-event scheduler. Exactly one task goroutine executes at
// any moment; control passes between the scheduler loop and tasks by
// channel hand-off, so no kernel state needs locking.
type VKernel struct {
	now      Time
	horizon  Time
	policy   Policy
	rng      *rand.Rand
	runnable []*vtask
	timers   timerHeap
	live     int
	nextSeq  uint64

	yielded chan *vtask   // a task parked; scheduler may continue
	aborted chan struct{} // closed on Stop/horizon to unwind tasks
	stopped bool
	running bool
	current *vtask

	// Synchronization objects register themselves here so deadlock
	// reports can name what each blocked task waits on.
	events  []*vevent
	mutexes []*vmutex
	conds   []*vcond
}

// NewVirtual returns a virtual kernel seeded with seed and using the
// paper's random dispatch policy.
func NewVirtual(seed int64) *VKernel {
	return NewVirtualPolicy(seed, RandomPolicy{})
}

// NewVirtualPolicy returns a virtual kernel with an explicit
// scheduling policy.
func NewVirtualPolicy(seed int64, p Policy) *VKernel {
	return &VKernel{
		horizon: Forever,
		policy:  p,
		rng:     rand.New(rand.NewSource(seed)),
		yielded: make(chan *vtask),
		aborted: make(chan struct{}),
	}
}

// Virtual reports true.
func (k *VKernel) Virtual() bool { return true }

// Now returns the current virtual time.
func (k *VKernel) Now() Time { return k.now }

// Rand returns the kernel's seeded random source.
func (k *VKernel) Rand() *rand.Rand { return k.rng }

// SetHorizon bounds the virtual clock.
func (k *VKernel) SetHorizon(at Time) { k.horizon = at }

// Live returns the number of live tasks.
func (k *VKernel) Live() int { return k.live }

type vstate uint8

const (
	vReady vstate = iota
	vRunning
	vSleeping
	vBlocked
	vDead
)

type vtask struct {
	k        *VKernel
	name     string
	seq      uint64
	state    vstate
	resume   chan struct{}
	wakeAt   Time // valid when sleeping
	timerI   int  // heap index, -1 when not queued
	waitOn   string
	signaled bool // event wake-up reason
	// unwound is set by the task's own goroutine when Stop aborts it
	// mid-park. Unwinding tasks run concurrently with each other and
	// with the scheduler's caller, so their exit path must not touch
	// kernel state or the yielded channel.
	unwound bool
}

// Name returns the task name.
func (t *vtask) Name() string { return t.name }

// Kernel returns the owning kernel.
func (t *vtask) Kernel() Kernel { return t.k }

// Go creates a task. It may be called before Run or from a running
// task; the new task becomes runnable and will be dispatched by the
// scheduler loop. Spawning on a stopped kernel is a programming
// error: the task could never run, which silently voids tests.
func (k *VKernel) Go(name string, fn func(Task)) Task {
	if k.stopped {
		panic("sched: Go on a stopped kernel (create a new kernel per run)")
	}
	k.nextSeq++
	t := &vtask{
		k:      k,
		name:   fmt.Sprintf("%s#%d", name, k.nextSeq),
		seq:    k.nextSeq,
		state:  vReady,
		resume: make(chan struct{}, 1),
		timerI: -1,
	}
	k.live++
	k.runnable = append(k.runnable, t)
	go func() {
		select {
		case <-t.resume: // wait for first dispatch
		case <-k.aborted: // stopped before ever running
			return
		}
		defer func() {
			if t.unwound {
				// Aborted by Stop: the scheduler loop has exited and
				// sibling tasks unwind concurrently, so shared kernel
				// state is off limits and nobody receives yielded.
				return
			}
			t.state = vDead
			k.live--
			k.yielded <- t
		}()
		fn(t)
	}()
	return t
}

// park hands control back to the scheduler and blocks until this
// task is dispatched again. The caller must already have recorded
// why the task is parked (state, timers, wait queues).
func (t *vtask) park() {
	t.k.yielded <- t
	select {
	case <-t.resume:
		t.k.current = t
	case <-t.k.aborted:
		t.unwound = true
		runtime.Goexit()
	}
}

// ready moves t onto the runnable queue.
func (k *VKernel) ready(t *vtask) {
	t.state = vReady
	k.runnable = append(k.runnable, t)
}

// Sleep parks the current task until now+d.
func (t *vtask) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.SleepUntil(t.k.now.Add(d))
}

// SleepUntil parks the current task until the clock reaches at.
func (t *vtask) SleepUntil(at Time) {
	k := t.k
	k.checkCurrent(t, "SleepUntil")
	if at <= k.now {
		t.Yield()
		return
	}
	t.state = vSleeping
	t.wakeAt = at
	heap.Push(&k.timers, t)
	t.park()
}

// Yield reschedules the current task without advancing time.
func (t *vtask) Yield() {
	k := t.k
	k.checkCurrent(t, "Yield")
	k.ready(t)
	t.park()
}

// block parks the current task outside the timer queue; some other
// task must eventually k.ready() it. why names the wait for
// deadlock reports.
func (t *vtask) block(why string) {
	k := t.k
	k.checkCurrent(t, "Wait")
	t.state = vBlocked
	t.waitOn = why
	t.park()
	t.waitOn = ""
}

func (k *VKernel) checkCurrent(t *vtask, op string) {
	if k.current != t {
		panic(fmt.Sprintf("sched: %s called on task %q which is not running (current %v); blocking methods must be called with the caller's own Task", op, t.name, k.currentName()))
	}
}

func (k *VKernel) currentName() string {
	if k.current == nil {
		return "<scheduler>"
	}
	return k.current.name
}

// Run drives the simulation: dispatch runnable tasks (policy pick),
// advance the clock over the timer queue when none are runnable,
// stop at the horizon, on deadlock, or when every task has exited.
func (k *VKernel) Run() error {
	if k.running {
		return fmt.Errorf("sched: Run reentered")
	}
	if k.stopped {
		return fmt.Errorf("sched: Run on a stopped kernel")
	}
	k.running = true
	defer func() { k.running = false }()
	for !k.stopped {
		if len(k.runnable) == 0 {
			if k.live == 0 {
				return nil // clean completion
			}
			if k.timers.Len() == 0 {
				err := &DeadlockError{At: k.now, Blocked: k.blockedNames()}
				k.Stop()
				return err
			}
			wake := k.timers[0].wakeAt
			if wake > k.horizon {
				k.now = k.horizon
				k.Stop()
				return nil
			}
			k.now = wake
			for k.timers.Len() > 0 && k.timers[0].wakeAt == k.now {
				k.ready(heap.Pop(&k.timers).(*vtask))
			}
			continue
		}
		i := k.policy.Pick(k.rng, k.taskView())
		t := k.runnable[i]
		k.runnable = append(k.runnable[:i], k.runnable[i+1:]...)
		t.state = vRunning
		k.current = t
		t.resume <- struct{}{}
		<-k.yielded
		k.current = nil
	}
	return nil
}

// taskView exposes the runnable queue to the policy as []Task.
func (k *VKernel) taskView() []Task {
	v := make([]Task, len(k.runnable))
	for i, t := range k.runnable {
		v[i] = t
	}
	return v
}

func (k *VKernel) blockedNames() []string {
	// Only blocked (not sleeping) tasks are deadlock suspects;
	// sleeping tasks would have advanced the clock.
	names := k.collectBlocked()
	sort.Strings(names)
	return names
}

// collectBlocked is best-effort: the kernel does not keep a list of
// all tasks, so blocked names are gathered from event wait queues
// registered at creation time.
func (k *VKernel) collectBlocked() []string {
	var names []string
	for _, ev := range k.events {
		for _, t := range ev.waiters {
			names = append(names, t.name+" on "+ev.name)
		}
	}
	for _, m := range k.mutexes {
		for _, t := range m.waiters {
			names = append(names, t.name+" on mutex "+m.name)
		}
	}
	for _, c := range k.conds {
		for _, w := range c.waiters {
			names = append(names, w.t.name+" on cond "+c.name)
		}
	}
	return names
}

// Stop unwinds every parked task and ends Run.
func (k *VKernel) Stop() {
	if !k.stopped {
		k.stopped = true
		close(k.aborted)
	}
}

// Stopped reports whether the kernel has been stopped.
func (k *VKernel) Stopped() bool { return k.stopped }

// timerHeap orders sleeping tasks by wake time, breaking ties by
// spawn order so runs are reproducible.
type timerHeap []*vtask

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].wakeAt != h[j].wakeAt {
		return h[i].wakeAt < h[j].wakeAt
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].timerI = i
	h[j].timerI = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*vtask)
	t.timerI = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.timerI = -1
	*h = old[:n-1]
	return t
}
