package sched

import (
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// RKernel is the real-time kernel: the same scheduler interface
// mapped onto ordinary goroutines and the wall clock, used when the
// component library is instantiated into the on-line file system.
type RKernel struct {
	start time.Time
	rng   *rand.Rand
	rngMu sync.Mutex

	mu      sync.Mutex
	cond    *sync.Cond
	live    int
	stopped bool
}

// NewReal returns a real-time kernel. The seed only affects
// Rand-driven policy decisions (e.g. random scheduling choices made
// by components), not goroutine interleaving, which the Go runtime
// owns.
func NewReal(seed int64) *RKernel {
	k := &RKernel{start: time.Now(), rng: rand.New(rand.NewSource(seed))}
	k.cond = sync.NewCond(&k.mu)
	return k
}

// Virtual reports false.
func (k *RKernel) Virtual() bool { return false }

// Now returns the time since the kernel was created.
func (k *RKernel) Now() Time { return Time(time.Since(k.start)) }

// Rand returns a mutex-guarded random source shared by all tasks.
func (k *RKernel) Rand() *rand.Rand { return k.rng }

// LockedRand draws one int63 under the kernel's rng lock; real
// components should prefer it over Rand() in hot concurrent paths.
func (k *RKernel) LockedRand() int64 {
	k.rngMu.Lock()
	defer k.rngMu.Unlock()
	return k.rng.Int63()
}

type rtask struct {
	k    *RKernel
	name string
}

// Name returns the task name.
func (t *rtask) Name() string { return t.name }

// Kernel returns the owning kernel.
func (t *rtask) Kernel() Kernel { return t.k }

// Sleep suspends the goroutine for d of wall time.
func (t *rtask) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// SleepUntil suspends the goroutine until kernel time at.
func (t *rtask) SleepUntil(at Time) { t.Sleep(at.Sub(t.k.Now())) }

// Yield hints the runtime to run something else.
func (t *rtask) Yield() { runtime.Gosched() }

// Go starts fn on a new goroutine.
func (k *RKernel) Go(name string, fn func(Task)) Task {
	t := &rtask{k: k, name: name}
	k.mu.Lock()
	k.live++
	k.mu.Unlock()
	go func() {
		defer func() {
			k.mu.Lock()
			k.live--
			k.cond.Broadcast()
			k.mu.Unlock()
		}()
		fn(t)
	}()
	return t
}

// Run blocks until every task has exited or Stop is called.
func (k *RKernel) Run() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	for k.live > 0 && !k.stopped {
		k.cond.Wait()
	}
	return nil
}

// SetHorizon is a no-op: the wall clock has no horizon.
func (k *RKernel) SetHorizon(Time) {}

// Stop releases Run. Real tasks cannot be unwound from outside;
// components own their shutdown (closing listeners, draining
// queues) before the assembly calls Stop.
func (k *RKernel) Stop() {
	k.mu.Lock()
	k.stopped = true
	k.cond.Broadcast()
	k.mu.Unlock()
}

// Live returns the number of live tasks.
func (k *RKernel) Live() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.live
}

// revent is a counting event over a condition variable.
type revent struct {
	name    string
	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	waiting int
}

// NewEvent creates a counting event.
func (k *RKernel) NewEvent(name string) Event {
	e := &revent{name: name}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Wait consumes one signal, blocking until available.
func (e *revent) Wait(Task) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.waiting++
	for e.count == 0 {
		e.cond.Wait()
	}
	e.waiting--
	e.count--
}

// WaitTimeout consumes one signal or gives up after d.
func (e *revent) WaitTimeout(_ Task, d time.Duration) bool {
	deadline := time.Now().Add(d)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.waiting++
	defer func() { e.waiting-- }()
	for e.count == 0 {
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		timer := time.AfterFunc(remain, func() {
			e.mu.Lock()
			e.cond.Broadcast()
			e.mu.Unlock()
		})
		e.cond.Wait()
		timer.Stop()
	}
	e.count--
	return true
}

// Signal banks one signal and wakes a waiter.
func (e *revent) Signal() {
	e.mu.Lock()
	e.count++
	e.cond.Signal()
	e.mu.Unlock()
}

// Broadcast releases every task currently waiting.
func (e *revent) Broadcast() {
	e.mu.Lock()
	if e.waiting > e.count {
		e.count = e.waiting
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// rmutex wraps sync.Mutex.
type rmutex struct {
	name string
	mu   sync.Mutex
}

// NewMutex creates a mutex.
func (k *RKernel) NewMutex(name string) Mutex { return &rmutex{name: name} }

// Lock acquires the mutex.
func (m *rmutex) Lock(Task) { m.mu.Lock() }

// Unlock releases the mutex.
func (m *rmutex) Unlock(Task) { m.mu.Unlock() }

// rcond is a condition variable usable with any kernel Mutex made
// by the same kernel.
type rcond struct {
	name string
	mu   sync.Mutex
	ch   chan struct{}
}

// NewCond creates a condition variable.
func (k *RKernel) NewCond(name string) Cond {
	return &rcond{name: name, ch: make(chan struct{})}
}

// Wait releases m, blocks until Signal/Broadcast, reacquires m.
func (c *rcond) Wait(t Task, m Mutex) {
	c.mu.Lock()
	ch := c.ch
	c.mu.Unlock()
	m.Unlock(t)
	<-ch
	m.Lock(t)
}

// Signal wakes at least one waiter (channel-generation broadcast is
// used for both; spurious wake-ups are absorbed by the caller's
// recheck loop, the contract Cond.Wait requires anyway).
func (c *rcond) Signal() { c.Broadcast() }

// Broadcast wakes every waiter by retiring the generation channel.
func (c *rcond) Broadcast() {
	c.mu.Lock()
	close(c.ch)
	c.ch = make(chan struct{})
	c.mu.Unlock()
}
