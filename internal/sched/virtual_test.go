package sched

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// runKernel runs k and fails the test on error.
func runKernel(t *testing.T, k *VKernel) {
	t.Helper()
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestVirtualClockStartsAtZero(t *testing.T) {
	k := NewVirtual(1)
	if k.Now() != 0 {
		t.Fatalf("Now = %v, want 0", k.Now())
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewVirtual(1)
	var woke Time
	k.Go("sleeper", func(tk Task) {
		tk.Sleep(250 * time.Millisecond)
		woke = k.Now()
	})
	runKernel(t, k)
	if woke != Time(250*time.Millisecond) {
		t.Fatalf("woke at %v, want 250ms", woke)
	}
}

func TestSleepersWakeInOrder(t *testing.T) {
	k := NewVirtual(42)
	var order []int
	for i := 5; i >= 1; i-- {
		d := time.Duration(i) * time.Second
		id := i
		k.Go(fmt.Sprintf("s%d", i), func(tk Task) {
			tk.Sleep(d)
			order = append(order, id)
		})
	}
	runKernel(t, k)
	if !sort.IntsAreSorted(order) {
		t.Fatalf("wake order %v, want ascending", order)
	}
	if k.Now() != Time(5*time.Second) {
		t.Fatalf("final time %v, want 5s", k.Now())
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	k := NewVirtual(1)
	n := 0
	k.Go("z", func(tk Task) {
		tk.Sleep(0)
		n++
		tk.Sleep(-time.Second)
		n++
	})
	runKernel(t, k)
	if n != 2 {
		t.Fatalf("task did not complete, n=%d", n)
	}
	if k.Now() != 0 {
		t.Fatalf("time advanced to %v on zero sleeps", k.Now())
	}
}

func TestSleepUntilPast(t *testing.T) {
	k := NewVirtual(1)
	done := false
	k.Go("p", func(tk Task) {
		tk.Sleep(time.Second)
		tk.SleepUntil(0) // in the past: returns after a yield
		done = true
	})
	runKernel(t, k)
	if !done || k.Now() != Time(time.Second) {
		t.Fatalf("done=%v now=%v", done, k.Now())
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func(seed int64) []string {
		k := NewVirtual(seed)
		var log []string
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("t%d", i)
			k.Go(name, func(tk Task) {
				for j := 0; j < 3; j++ {
					log = append(log, fmt.Sprintf("%s.%d", name, j))
					tk.Yield()
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return log
	}
	a := run(7)
	b := run(7)
	c := run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed differed:\n%v\n%v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical interleaving (suspicious): %v", a)
	}
}

func TestEventHandoff(t *testing.T) {
	k := NewVirtual(1)
	ev := k.NewEvent("io-done")
	var got Time
	k.Go("waiter", func(tk Task) {
		ev.Wait(tk)
		got = k.Now()
	})
	k.Go("io", func(tk Task) {
		tk.Sleep(17 * time.Millisecond)
		ev.Signal()
	})
	runKernel(t, k)
	if got != Time(17*time.Millisecond) {
		t.Fatalf("waiter released at %v, want 17ms", got)
	}
}

func TestEventSignalBeforeWaitIsNotLost(t *testing.T) {
	k := NewVirtual(1)
	ev := k.NewEvent("pre")
	ok := false
	k.Go("sig", func(tk Task) { ev.Signal() })
	k.Go("wait", func(tk Task) {
		tk.Sleep(time.Second) // guarantee the signal happens first
		ev.Wait(tk)
		ok = true
	})
	runKernel(t, k)
	if !ok {
		t.Fatal("banked signal was lost")
	}
}

func TestEventCountsMultipleSignals(t *testing.T) {
	k := NewVirtual(1)
	ev := k.NewEvent("n")
	served := 0
	k.Go("producer", func(tk Task) {
		for i := 0; i < 5; i++ {
			ev.Signal()
		}
	})
	k.Go("consumer", func(tk Task) {
		tk.Sleep(time.Millisecond)
		for i := 0; i < 5; i++ {
			ev.Wait(tk)
			served++
		}
	})
	runKernel(t, k)
	if served != 5 {
		t.Fatalf("served %d, want 5", served)
	}
}

func TestEventWaitTimeoutExpires(t *testing.T) {
	k := NewVirtual(1)
	ev := k.NewEvent("never")
	var ok bool
	var at Time
	k.Go("w", func(tk Task) {
		ok = ev.WaitTimeout(tk, 300*time.Millisecond)
		at = k.Now()
	})
	runKernel(t, k)
	if ok {
		t.Fatal("WaitTimeout reported success with no signal")
	}
	if at != Time(300*time.Millisecond) {
		t.Fatalf("timed out at %v, want 300ms", at)
	}
}

func TestEventWaitTimeoutSignaled(t *testing.T) {
	k := NewVirtual(1)
	ev := k.NewEvent("soon")
	var ok bool
	var at Time
	k.Go("w", func(tk Task) {
		ok = ev.WaitTimeout(tk, time.Hour)
		at = k.Now()
	})
	k.Go("s", func(tk Task) {
		tk.Sleep(50 * time.Millisecond)
		ev.Signal()
	})
	runKernel(t, k)
	if !ok || at != Time(50*time.Millisecond) {
		t.Fatalf("ok=%v at=%v, want signal at 50ms", ok, at)
	}
}

func TestEventBroadcastWakesAll(t *testing.T) {
	k := NewVirtual(3)
	ev := k.NewEvent("gate")
	woke := 0
	for i := 0; i < 7; i++ {
		k.Go(fmt.Sprintf("w%d", i), func(tk Task) {
			ev.Wait(tk)
			woke++
		})
	}
	k.Go("b", func(tk Task) {
		tk.Sleep(time.Millisecond)
		ev.Broadcast()
	})
	runKernel(t, k)
	if woke != 7 {
		t.Fatalf("broadcast woke %d of 7", woke)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := NewVirtual(11)
	m := k.NewMutex("m")
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		k.Go(fmt.Sprintf("t%d", i), func(tk Task) {
			for j := 0; j < 4; j++ {
				m.Lock(tk)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				tk.Sleep(time.Millisecond) // block while holding
				inside--
				m.Unlock(tk)
			}
		})
	}
	runKernel(t, k)
	if maxInside != 1 {
		t.Fatalf("max concurrent critical sections = %d, want 1", maxInside)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	k := NewVirtual(1)
	m := k.NewMutex("m")
	paniced := false
	k.Go("a", func(tk Task) { m.Lock(tk) })
	k.Go("b", func(tk Task) {
		tk.Sleep(time.Millisecond)
		defer func() {
			if recover() != nil {
				paniced = true
			}
		}()
		m.Unlock(tk)
	})
	_ = k.Run() // task a still holds the lock at exit; ignore
	if !paniced {
		t.Fatal("unlock by non-owner did not panic")
	}
}

func TestCondWaitSignal(t *testing.T) {
	k := NewVirtual(5)
	m := k.NewMutex("m")
	c := k.NewCond("c")
	queue := 0
	consumed := 0
	k.Go("consumer", func(tk Task) {
		m.Lock(tk)
		for consumed < 3 {
			for queue == 0 {
				c.Wait(tk, m)
			}
			queue--
			consumed++
		}
		m.Unlock(tk)
	})
	k.Go("producer", func(tk Task) {
		for i := 0; i < 3; i++ {
			tk.Sleep(10 * time.Millisecond)
			m.Lock(tk)
			queue++
			c.Signal()
			m.Unlock(tk)
		}
	})
	runKernel(t, k)
	if consumed != 3 {
		t.Fatalf("consumed %d, want 3", consumed)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewVirtual(1)
	ev := k.NewEvent("never-signaled")
	k.Go("stuck", func(tk Task) { ev.Wait(tk) })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked list %v, want 1 entry", de.Blocked)
	}
}

func TestHorizonStopsRun(t *testing.T) {
	k := NewVirtual(1)
	k.SetHorizon(Time(time.Second))
	ticks := 0
	k.Go("ticker", func(tk Task) {
		for {
			tk.Sleep(100 * time.Millisecond)
			ticks++
		}
	})
	runKernel(t, k)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if k.Now() != Time(time.Second) {
		t.Fatalf("now = %v, want horizon 1s", k.Now())
	}
}

func TestSpawnFromRunningTask(t *testing.T) {
	k := NewVirtual(1)
	total := 0
	k.Go("parent", func(tk Task) {
		for i := 0; i < 3; i++ {
			k.Go("child", func(tk Task) {
				tk.Sleep(time.Millisecond)
				total++
			})
		}
	})
	runKernel(t, k)
	if total != 3 {
		t.Fatalf("children completed %d, want 3", total)
	}
}

func TestStopUnwindsTasks(t *testing.T) {
	k := NewVirtual(1)
	ev := k.NewEvent("e")
	k.Go("blocked", func(tk Task) { ev.Wait(tk) })
	k.Go("stopper", func(tk Task) {
		tk.Sleep(time.Millisecond)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run after Stop: %v", err)
	}
	if !k.Stopped() {
		t.Fatal("kernel not stopped")
	}
}

// TestStopDoesNotLeakGoroutines pins the abort-path fix: unwound
// tasks must exit instead of blocking forever on the scheduler
// hand-off, or every stopped simulation leaks its parked tasks.
func TestStopDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		k := NewVirtual(int64(i))
		ev := k.NewEvent("never")
		for j := 0; j < 10; j++ {
			k.Go("blocked", func(tk Task) { ev.Wait(tk) })
		}
		k.Go("stopper", func(tk Task) {
			tk.Sleep(time.Millisecond)
			k.Stop()
		})
		if err := k.Run(); err != nil {
			t.Fatalf("Run %d: %v", i, err)
		}
	}
	// Unwinding goroutines exit asynchronously; give them a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+5 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 20 stopped runs",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPolicyFIFOAndLIFO(t *testing.T) {
	for _, tc := range []struct {
		policy Policy
		want   string
	}{
		{FIFOPolicy{}, "[a b c]"},
		{LIFOPolicy{}, "[c b a]"},
	} {
		k := NewVirtualPolicy(1, tc.policy)
		var order []string
		for _, n := range []string{"a", "b", "c"} {
			name := n
			k.Go(name, func(tk Task) { order = append(order, name) })
		}
		if err := k.Run(); err != nil {
			t.Fatalf("%s: %v", tc.policy.Name(), err)
		}
		if fmt.Sprint(order) != tc.want {
			t.Errorf("%s order = %v, want %v", tc.policy.Name(), order, tc.want)
		}
	}
}

func TestBlockingFromWrongTaskPanics(t *testing.T) {
	k := NewVirtual(1)
	var taskA Task
	caught := false
	taskA = k.Go("a", func(tk Task) { tk.Sleep(time.Hour) })
	k.Go("b", func(tk Task) {
		defer func() {
			if recover() != nil {
				caught = true
				k.Stop()
			}
		}()
		taskA.Sleep(time.Second) // using someone else's task handle
	})
	_ = k.Run()
	if !caught {
		t.Fatal("cross-task blocking call did not panic")
	}
}

// TestTimerHeapProperty checks, for arbitrary wake times, that the
// kernel releases sleepers in nondecreasing wake-time order.
func TestTimerHeapProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 64 {
			delays = delays[:64]
		}
		k := NewVirtual(99)
		var wakes []Time
		for i, d := range delays {
			dd := time.Duration(d) * time.Microsecond
			k.Go(fmt.Sprintf("s%d", i), func(tk Task) {
				tk.Sleep(dd)
				wakes = append(wakes, k.Now())
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := 1; i < len(wakes); i++ {
			if wakes[i] < wakes[i-1] {
				return false
			}
		}
		return len(wakes) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestManyTasksStress runs a few hundred interacting tasks to shake
// out hand-off bugs.
func TestManyTasksStress(t *testing.T) {
	k := NewVirtual(123)
	ev := k.NewEvent("work")
	produced, consumed := 0, 0
	for i := 0; i < 50; i++ {
		k.Go("prod", func(tk Task) {
			for j := 0; j < 20; j++ {
				tk.Sleep(time.Duration(1+j) * time.Millisecond)
				produced++
				ev.Signal()
			}
		})
	}
	for i := 0; i < 25; i++ {
		k.Go("cons", func(tk Task) {
			for j := 0; j < 40; j++ {
				ev.Wait(tk)
				consumed++
			}
		})
	}
	runKernel(t, k)
	if produced != 1000 || consumed != 1000 {
		t.Fatalf("produced %d consumed %d, want 1000/1000", produced, consumed)
	}
}
