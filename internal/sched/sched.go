// Package sched implements the framework's thread scheduler: the
// component that gives every file-system process its own thread of
// control, provides event-based synchronization, and defines time.
//
// Two kernels implement the same interface:
//
//   - the virtual kernel (NewVirtual) is a deterministic cooperative
//     discrete-event scheduler: exactly one task runs at a time,
//     virtual time advances only when every task is blocked, and the
//     next runnable task is picked at random from a seeded source —
//     the paper's "random scheduling". Same seed, same run.
//
//   - the real kernel (NewReal) maps the same operations onto real
//     goroutines and the wall clock, so components written for the
//     simulator run unchanged in the on-line file system.
//
// Any method that may block takes the calling Task as its first
// argument, the way contexts are threaded in ordinary Go code; the
// virtual kernel needs it to hand control back to the scheduler.
package sched

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in time: nanoseconds since the kernel started.
// The virtual kernel advances it explicitly; the real kernel derives
// it from the wall clock.
type Time int64

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration returns t as a duration since kernel start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// Forever is a time later than any reachable simulation instant.
const Forever Time = 1<<63 - 1

// Task is one thread of control inside a system. Tasks are created
// with Kernel.Go and run until their function returns.
type Task interface {
	// Name returns the task's diagnostic name.
	Name() string
	// Kernel returns the kernel the task runs on.
	Kernel() Kernel
	// Sleep suspends the task for d. In the virtual kernel this
	// advances no clock until every other task has blocked too.
	Sleep(d time.Duration)
	// SleepUntil suspends the task until the kernel clock reaches
	// at. Times in the past return immediately.
	SleepUntil(at Time)
	// Yield gives other runnable tasks a chance to run.
	Yield()
}

// Event is a counting hand-off primitive: Signal increments a count,
// Wait consumes one unit, blocking until one is available. Signals
// are never lost, which makes Event safe for I/O-completion style
// hand-offs in both kernels. This follows the paper's scheduler
// ("each thread can pick a unique event and block on it; another
// thread signals the event to make the thread runnable again").
type Event interface {
	// Wait blocks t until a signal is available and consumes it.
	Wait(t Task)
	// WaitTimeout is Wait with a deadline; it reports whether a
	// signal was consumed (false means the timeout elapsed).
	WaitTimeout(t Task, d time.Duration) bool
	// Signal makes one unit available, waking one waiter if any.
	Signal()
	// Broadcast wakes every current waiter (without leaving extra
	// signals pending).
	Broadcast()
}

// Mutex is a kernel-aware mutual-exclusion lock. In the virtual
// kernel it exists because a task can block (and lose the processor)
// in the middle of a critical section.
type Mutex interface {
	Lock(t Task)
	Unlock(t Task)
}

// Cond is a condition variable tied to a Mutex, for
// check-then-block loops such as the cache's allocation path.
type Cond interface {
	// Wait atomically releases m and blocks t, reacquiring m
	// before returning.
	Wait(t Task, m Mutex)
	// Signal wakes one waiter, Broadcast all of them.
	Signal()
	Broadcast()
}

// Kernel is the scheduler component: it owns time, tasks and
// synchronization primitives.
type Kernel interface {
	// Virtual reports whether this kernel simulates time.
	Virtual() bool
	// Now returns the current kernel time.
	Now() Time
	// Rand returns the kernel's deterministic random source. In the
	// virtual kernel every random decision in the system should be
	// drawn from it so runs are reproducible.
	Rand() *rand.Rand
	// Go starts a new task named name running fn.
	Go(name string, fn func(Task)) Task
	// NewEvent, NewMutex and NewCond create synchronization
	// primitives appropriate to this kernel.
	NewEvent(name string) Event
	NewMutex(name string) Mutex
	NewCond(name string) Cond
	// Run drives the system. The virtual kernel runs until no task
	// can ever run again or the horizon set with SetHorizon is
	// reached, and returns an error on deadlock. The real kernel
	// blocks until every task has exited or Stop is called.
	Run() error
	// SetHorizon bounds the virtual clock; Run returns when time
	// would pass it. The real kernel ignores the horizon.
	SetHorizon(at Time)
	// Stop aborts the system: blocked and sleeping tasks are
	// unwound and Run returns.
	Stop()
	// Live returns the number of tasks that have started and not
	// yet exited.
	Live() int
}

// ShardName names the i-th of n lock stripes of a component's
// synchronization objects and tasks: "base.s<i>" when the component
// is actually striped, and plain "base" for a single stripe — so a
// width-1 sharded component creates primitives with exactly the
// names (and deadlock reports) of its classic unsharded form.
func ShardName(base string, i, n int) string {
	if n <= 1 {
		return base
	}
	return fmt.Sprintf("%s.s%d", base, i)
}

// Policy selects the next task to run in the virtual kernel, the
// paper's pluggable scheduling-policy point. The slice holds every
// runnable task; Pick returns the index to dispatch.
type Policy interface {
	Name() string
	Pick(rng *rand.Rand, runnable []Task) int
}

// RandomPolicy is the paper's default: pick uniformly at random.
type RandomPolicy struct{}

// Name returns "random".
func (RandomPolicy) Name() string { return "random" }

// Pick returns a uniformly random index.
func (RandomPolicy) Pick(rng *rand.Rand, runnable []Task) int {
	return rng.Intn(len(runnable))
}

// FIFOPolicy dispatches tasks in the order they became runnable.
type FIFOPolicy struct{}

// Name returns "fifo".
func (FIFOPolicy) Name() string { return "fifo" }

// Pick returns 0, the oldest runnable task.
func (FIFOPolicy) Pick(*rand.Rand, []Task) int { return 0 }

// LIFOPolicy dispatches the most recently readied task first.
type LIFOPolicy struct{}

// Name returns "lifo".
func (LIFOPolicy) Name() string { return "lifo" }

// Pick returns the newest runnable task.
func (LIFOPolicy) Pick(_ *rand.Rand, r []Task) int { return len(r) - 1 }

// DeadlockError is returned by the virtual kernel's Run when live
// tasks remain but none can ever become runnable.
type DeadlockError struct {
	At      Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sched: deadlock at %v: %d task(s) blocked forever: %v",
		e.At, len(e.Blocked), e.Blocked)
}
