package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRealKernelRunWaitsForTasks(t *testing.T) {
	k := NewReal(1)
	var n atomic.Int32
	for i := 0; i < 8; i++ {
		k.Go("t", func(tk Task) {
			tk.Sleep(5 * time.Millisecond)
			n.Add(1)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n.Load() != 8 {
		t.Fatalf("completed %d, want 8", n.Load())
	}
	if k.Live() != 0 {
		t.Fatalf("live = %d after Run", k.Live())
	}
}

func TestRealKernelNowAdvances(t *testing.T) {
	k := NewReal(1)
	t0 := k.Now()
	time.Sleep(10 * time.Millisecond)
	if k.Now()-t0 < Time(5*time.Millisecond) {
		t.Fatalf("clock barely advanced: %v", k.Now()-t0)
	}
	if !(&RKernel{}).Virtual() == false {
		t.Fatal("Virtual() should be false")
	}
}

func TestRealEventHandoff(t *testing.T) {
	k := NewReal(1)
	ev := k.NewEvent("e")
	got := make(chan struct{})
	k.Go("w", func(tk Task) {
		ev.Wait(tk)
		close(got)
	})
	k.Go("s", func(tk Task) {
		tk.Sleep(2 * time.Millisecond)
		ev.Signal()
	})
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("real event hand-off timed out")
	}
	_ = k.Run()
}

func TestRealEventSignalFirst(t *testing.T) {
	k := NewReal(1)
	ev := k.NewEvent("e")
	ev.Signal()
	done := make(chan bool, 1)
	k.Go("w", func(tk Task) { ev.Wait(tk); done <- true })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("banked signal lost in real kernel")
	}
	_ = k.Run()
}

func TestRealEventWaitTimeout(t *testing.T) {
	k := NewReal(1)
	ev := k.NewEvent("e")
	var tk Task = &rtask{k: k, name: "inline"}
	start := time.Now()
	if ev.WaitTimeout(tk, 20*time.Millisecond) {
		t.Fatal("timeout wait succeeded with no signal")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("WaitTimeout returned too early")
	}
	ev.Signal()
	if !ev.WaitTimeout(tk, time.Second) {
		t.Fatal("signaled WaitTimeout failed")
	}
}

func TestRealEventBroadcast(t *testing.T) {
	k := NewReal(1)
	ev := k.NewEvent("gate")
	var woke atomic.Int32
	for i := 0; i < 5; i++ {
		k.Go("w", func(tk Task) {
			ev.Wait(tk)
			woke.Add(1)
		})
	}
	time.Sleep(20 * time.Millisecond) // let them park
	ev.Broadcast()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke.Load() != 5 {
		t.Fatalf("broadcast woke %d of 5", woke.Load())
	}
}

func TestRealMutexExcludes(t *testing.T) {
	k := NewReal(1)
	m := k.NewMutex("m")
	var inside, maxSeen atomic.Int32
	for i := 0; i < 8; i++ {
		k.Go("t", func(tk Task) {
			for j := 0; j < 50; j++ {
				m.Lock(tk)
				v := inside.Add(1)
				if v > maxSeen.Load() {
					maxSeen.Store(v)
				}
				inside.Add(-1)
				m.Unlock(tk)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxSeen.Load() != 1 {
		t.Fatalf("mutex admitted %d tasks", maxSeen.Load())
	}
}

func TestRealCondSignal(t *testing.T) {
	k := NewReal(1)
	m := k.NewMutex("m")
	c := k.NewCond("c")
	ready := false
	done := make(chan struct{})
	k.Go("w", func(tk Task) {
		m.Lock(tk)
		for !ready {
			c.Wait(tk, m)
		}
		m.Unlock(tk)
		close(done)
	})
	k.Go("s", func(tk Task) {
		tk.Sleep(5 * time.Millisecond)
		m.Lock(tk)
		ready = true
		c.Broadcast()
		m.Unlock(tk)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cond hand-off timed out")
	}
	_ = k.Run()
}

func TestRealStopReleasesRun(t *testing.T) {
	k := NewReal(1)
	k.Go("forever", func(tk Task) { tk.Sleep(time.Hour) })
	go func() {
		time.Sleep(5 * time.Millisecond)
		k.Stop()
	}()
	done := make(chan error, 1)
	go func() { done <- k.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not release Run")
	}
}
