package sched

import (
	"container/heap"
	"fmt"
	"time"
)

// vevent is the virtual kernel's counting event. All state is
// manipulated by the single running task or the scheduler loop, so
// no locking is needed.
type vevent struct {
	k       *VKernel
	name    string
	count   int
	waiters []*vtask
}

// NewEvent creates a counting event.
func (k *VKernel) NewEvent(name string) Event {
	ev := &vevent{k: k, name: name}
	k.events = append(k.events, ev)
	return ev
}

// Wait consumes one signal, blocking until available.
func (e *vevent) Wait(t Task) {
	vt := t.(*vtask)
	if e.count > 0 {
		e.count--
		return
	}
	e.waiters = append(e.waiters, vt)
	vt.block(e.name)
	if !vt.signaled {
		panic(fmt.Sprintf("sched: task %s woke from event %s without signal", vt.name, e.name))
	}
	vt.signaled = false
}

// WaitTimeout consumes one signal or gives up after d.
func (e *vevent) WaitTimeout(t Task, d time.Duration) bool {
	vt := t.(*vtask)
	if e.count > 0 {
		e.count--
		return true
	}
	if d <= 0 {
		return false
	}
	e.waiters = append(e.waiters, vt)
	vt.state = vSleeping
	vt.wakeAt = e.k.now.Add(d)
	heap.Push(&e.k.timers, vt)
	vt.waitOn = e.name
	vt.park()
	vt.waitOn = ""
	if vt.signaled {
		vt.signaled = false
		return true
	}
	// Timed out: the scheduler popped the timer; leave the wait
	// queue ourselves.
	e.removeWaiter(vt)
	return false
}

// Signal releases one waiter, or banks the signal if none wait.
func (e *vevent) Signal() {
	if len(e.waiters) == 0 {
		e.count++
		return
	}
	e.wake(0)
}

// Broadcast wakes every current waiter without banking signals.
func (e *vevent) Broadcast() {
	for len(e.waiters) > 0 {
		e.wake(0)
	}
}

// wake readies waiter i as signaled, detaching any pending timeout.
func (e *vevent) wake(i int) {
	vt := e.waiters[i]
	e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
	if vt.timerI >= 0 {
		heap.Remove(&e.k.timers, vt.timerI)
	}
	vt.signaled = true
	e.k.ready(vt)
}

func (e *vevent) removeWaiter(vt *vtask) {
	for i, w := range e.waiters {
		if w == vt {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			return
		}
	}
}

// vmutex is the virtual kernel's mutex with FIFO hand-off and owner
// checking.
type vmutex struct {
	k       *VKernel
	name    string
	owner   *vtask
	waiters []*vtask
}

// NewMutex creates a mutex.
func (k *VKernel) NewMutex(name string) Mutex {
	m := &vmutex{k: k, name: name}
	k.mutexes = append(k.mutexes, m)
	return m
}

// Lock acquires the mutex, blocking while another task owns it.
func (m *vmutex) Lock(t Task) {
	vt := t.(*vtask)
	if m.owner == nil {
		m.owner = vt
		return
	}
	if m.owner == vt {
		panic(fmt.Sprintf("sched: task %s relocking mutex %s", vt.name, m.name))
	}
	m.waiters = append(m.waiters, vt)
	vt.block("mutex " + m.name)
	if m.owner != vt {
		panic(fmt.Sprintf("sched: mutex %s hand-off failed", m.name))
	}
}

// Unlock releases the mutex, handing it to the oldest waiter.
func (m *vmutex) Unlock(t Task) {
	vt := t.(*vtask)
	if m.owner != vt {
		panic(fmt.Sprintf("sched: task %s unlocking mutex %s owned by %v", vt.name, m.name, ownerName(m.owner)))
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	m.k.ready(next)
}

func ownerName(t *vtask) string {
	if t == nil {
		return "<nobody>"
	}
	return t.name
}

// vcond is the virtual kernel's condition variable.
type vcond struct {
	k       *VKernel
	name    string
	waiters []condWaiter
}

type condWaiter struct {
	t *vtask
	m Mutex
}

// NewCond creates a condition variable.
func (k *VKernel) NewCond(name string) Cond {
	c := &vcond{k: k, name: name}
	k.conds = append(k.conds, c)
	return c
}

// Wait releases m, blocks, and reacquires m before returning.
func (c *vcond) Wait(t Task, m Mutex) {
	vt := t.(*vtask)
	m.Unlock(t)
	c.waiters = append(c.waiters, condWaiter{vt, m})
	vt.block("cond " + c.name)
	m.Lock(t)
}

// Signal wakes the oldest waiter.
func (c *vcond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.k.ready(w.t)
}

// Broadcast wakes every waiter.
func (c *vcond) Broadcast() {
	for _, w := range c.waiters {
		c.k.ready(w.t)
	}
	c.waiters = nil
}
