package layout

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sched"
)

func TestInodeBlockMap(t *testing.T) {
	ino := &Inode{}
	if ino.BlockAddr(0) != -1 || ino.BlockAddr(-1) != -1 {
		t.Fatal("empty map should read -1")
	}
	ino.SetBlockAddr(3, 777)
	if ino.NBlocks() != 4 {
		t.Fatalf("NBlocks = %d, want 4 (grown with holes)", ino.NBlocks())
	}
	if ino.BlockAddr(3) != 777 || ino.BlockAddr(1) != -1 {
		t.Fatal("map contents wrong")
	}
}

func TestBlocksForSize(t *testing.T) {
	cases := map[int64]int64{
		0: 0, 1: 1, core.BlockSize: 1, core.BlockSize + 1: 2,
		10 * core.BlockSize: 10,
	}
	for n, want := range cases {
		if got := BlocksForSize(n); got != want {
			t.Fatalf("BlocksForSize(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestInodeCodecRoundTrip(t *testing.T) {
	d := &DiskInode{
		Ino: Inode{
			ID: 42, Type: core.TypeRegular, Size: 123456, Nlink: 3,
			Mode: 0o644, Version: 9, MTime: 111, CTime: 222, ATime: 333,
		},
		Ind:  1000,
		DInd: -1,
	}
	for i := range d.Direct {
		d.Direct[i] = int64(i * 7)
	}
	buf := make([]byte, InodeSize)
	EncodeInode(d, buf)
	got, err := DecodeInode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Ino.ID != d.Ino.ID || got.Ino.Type != d.Ino.Type ||
		got.Ino.Size != d.Ino.Size || got.Ino.Nlink != d.Ino.Nlink ||
		got.Ino.Mode != d.Ino.Mode || got.Ino.Version != d.Ino.Version ||
		got.Ino.MTime != d.Ino.MTime || got.Ino.CTime != d.Ino.CTime ||
		got.Ino.ATime != d.Ino.ATime ||
		got.Direct != d.Direct || got.Ind != d.Ind || got.DInd != d.DInd {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, d)
	}
}

func TestInodeCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeInode(make([]byte, InodeSize)); err == nil {
		t.Fatal("zero buffer decoded")
	}
	if _, err := DecodeInode(make([]byte, 10)); err == nil {
		t.Fatal("short buffer decoded")
	}
}

func TestAddrsCodec(t *testing.T) {
	addrs := []int64{5, -1, 0, 999999}
	buf := make([]byte, core.BlockSize)
	EncodeAddrs(addrs, buf)
	got := DecodeAddrs(buf, len(addrs))
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d: %d != %d", i, got[i], addrs[i])
		}
	}
	// Unwritten slots decode as holes.
	rest := DecodeAddrs(buf, 10)
	if rest[5] != -1 {
		t.Fatalf("pad slot decoded as %d", rest[5])
	}
}

func TestSplitBlockMap(t *testing.T) {
	// Small file: all direct.
	direct, ind, err := SplitBlockMap([]int64{1, 2, 3})
	if err != nil || len(ind) != 0 || direct[0] != 1 || direct[3] != -1 {
		t.Fatalf("small: %v %v %v", direct, ind, err)
	}
	// Just over direct: one indirect group.
	blocks := make([]int64, NDirect+5)
	for i := range blocks {
		blocks[i] = int64(i)
	}
	_, ind, err = SplitBlockMap(blocks)
	if err != nil || len(ind) != 1 || len(ind[0]) != 5 {
		t.Fatalf("indirect: %d groups %v", len(ind), err)
	}
	// Into double-indirect: multiple groups.
	blocks = make([]int64, NDirect+AddrsPerBlock+10)
	for i := range blocks {
		blocks[i] = int64(i)
	}
	_, ind, err = SplitBlockMap(blocks)
	if err != nil || len(ind) != 2 || len(ind[1]) != 10 {
		t.Fatalf("double: %d groups %v", len(ind), err)
	}
	// Too large is rejected.
	if _, _, err := SplitBlockMap(make([]int64, MaxFileBlocks+1)); err == nil {
		t.Fatal("oversized map accepted")
	}
}

func TestSplitBlockMapProperty(t *testing.T) {
	prop := func(n uint16) bool {
		size := int(n) % 3000
		blocks := make([]int64, size)
		for i := range blocks {
			blocks[i] = int64(i + 1)
		}
		direct, groups, err := SplitBlockMap(blocks)
		if err != nil {
			return false
		}
		// Reassemble and compare.
		var back []int64
		for i := 0; i < NDirect && i < size; i++ {
			back = append(back, direct[i])
		}
		for _, g := range groups {
			back = append(back, g...)
		}
		if len(back) != size {
			return false
		}
		for i := range back {
			if back[i] != blocks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBounds(t *testing.T) {
	k := sched.NewVirtual(1)
	drv := device.NewMemDriver(k, "m", 100, nil)
	p := NewPartition(drv, 0, 10, 50, false)
	k.Go("t", func(tk sched.Task) {
		buf := make([]byte, core.BlockSize)
		if err := p.Read(tk, 0, 1, buf); err != nil {
			t.Errorf("in-range read: %v", err)
		}
		if err := p.Read(tk, 50, 1, buf); err == nil {
			t.Error("read past partition accepted")
		}
		if err := p.Write(tk, -1, 1, buf); err == nil {
			t.Error("negative write accepted")
		}
		if err := p.WriteDeadline(tk, 0, 1, buf, 100); err != nil {
			t.Errorf("deadline write: %v", err)
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRejectsBadGeometry(t *testing.T) {
	k := sched.NewVirtual(1)
	drv := device.NewMemDriver(k, "m", 100, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized partition accepted")
		}
	}()
	NewPartition(drv, 0, 50, 60, false)
}

func TestPartitionOffsetIsolation(t *testing.T) {
	// Two partitions on one device must not see each other's data.
	k := sched.NewVirtual(1)
	drv := device.NewMemDriver(k, "m", 100, nil)
	p1 := NewPartition(drv, 0, 0, 50, false)
	p2 := NewPartition(drv, 0, 50, 50, false)
	k.Go("t", func(tk sched.Task) {
		a := make([]byte, core.BlockSize)
		b := make([]byte, core.BlockSize)
		for i := range a {
			a[i] = 0xAA
		}
		p1.Write(tk, 5, 1, a)
		p2.Read(tk, 5, 1, b)
		if b[0] == 0xAA {
			t.Error("partitions overlap")
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
