package layout

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sched"
)

// Partition is a contiguous block range of one disk, the raw-device
// view a layout formats itself onto. The paper's Sprite replay ran
// 14 file systems over 10 disks; each volume gets a partition.
type Partition struct {
	Drv    device.Driver
	Disk   int   // disk number for DiskAddr reporting
	Start  int64 // first block on the device
	Blocks int64 // length in blocks
	// Simulated partitions move no data.
	Simulated bool
	Mover     core.DataMover
}

// NewPartition describes a block range on drv.
func NewPartition(drv device.Driver, disk int, start, blocks int64, simulated bool) *Partition {
	if start < 0 || blocks <= 0 || start+blocks > drv.CapacityBlocks() {
		panic(fmt.Sprintf("layout: partition [%d,%d) outside device of %d blocks",
			start, start+blocks, drv.CapacityBlocks()))
	}
	var mover core.DataMover = core.RealMover{}
	if simulated {
		mover = core.DefaultSimMover()
	}
	return &Partition{Drv: drv, Disk: disk, Start: start, Blocks: blocks,
		Simulated: simulated, Mover: mover}
}

func (p *Partition) check(lba int64, count int) error {
	if lba < 0 || int64(count) <= 0 || lba+int64(count) > p.Blocks {
		return fmt.Errorf("layout: I/O [%d,%d) outside partition of %d blocks",
			lba, lba+int64(count), p.Blocks)
	}
	return nil
}

// Read reads count blocks at partition-relative lba into data.
func (p *Partition) Read(t sched.Task, lba int64, count int, data []byte) error {
	if err := p.check(lba, count); err != nil {
		return err
	}
	r := &device.Request{
		Op:     device.OpRead,
		Addr:   core.DiskAddr{Disk: p.Disk, LBA: p.Start + lba},
		Blocks: count,
		Data:   data,
	}
	return p.Drv.Do(t, r)
}

// Write writes count blocks at partition-relative lba from data.
func (p *Partition) Write(t sched.Task, lba int64, count int, data []byte) error {
	if err := p.check(lba, count); err != nil {
		return err
	}
	r := &device.Request{
		Op:     device.OpWrite,
		Addr:   core.DiskAddr{Disk: p.Disk, LBA: p.Start + lba},
		Blocks: count,
		Data:   data,
	}
	return p.Drv.Do(t, r)
}

// ReadVec reads count blocks at partition-relative lba, scattering
// into vec's segments in order. The segments must total
// count*BlockSize bytes and stay resident until the call returns;
// they typically alias pinned cache frames.
func (p *Partition) ReadVec(t sched.Task, lba int64, count int, vec [][]byte) error {
	if err := p.check(lba, count); err != nil {
		return err
	}
	r := &device.Request{
		Op:     device.OpRead,
		Addr:   core.DiskAddr{Disk: p.Disk, LBA: p.Start + lba},
		Blocks: count,
		Vec:    vec,
	}
	return p.Drv.Do(t, r)
}

// WriteVec writes count blocks at partition-relative lba, gathering
// from vec's segments in order. The segments must total
// count*BlockSize bytes and stay resident and unmodified until the
// call returns.
func (p *Partition) WriteVec(t sched.Task, lba int64, count int, vec [][]byte) error {
	if err := p.check(lba, count); err != nil {
		return err
	}
	r := &device.Request{
		Op:     device.OpWrite,
		Addr:   core.DiskAddr{Disk: p.Disk, LBA: p.Start + lba},
		Blocks: count,
		Vec:    vec,
	}
	return p.Drv.Do(t, r)
}

// WriteDeadline is Write with a scan-EDF deadline attached.
func (p *Partition) WriteDeadline(t sched.Task, lba int64, count int, data []byte, dl sched.Time) error {
	if err := p.check(lba, count); err != nil {
		return err
	}
	r := &device.Request{
		Op:       device.OpWrite,
		Addr:     core.DiskAddr{Disk: p.Disk, LBA: p.Start + lba},
		Blocks:   count,
		Data:     data,
		Deadline: dl,
	}
	return p.Drv.Do(t, r)
}
