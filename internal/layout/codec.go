package layout

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/core"
)

// On-disk inode geometry shared by the concrete layouts: a fixed
// 256-byte record with 12 direct block pointers, one single-indirect
// and one double-indirect pointer, in the FFS tradition. A 4 KB
// indirect block holds 512 pointers, so the map covers
// 12 + 512 + 512² blocks ≈ 1 GB per file at 4 KB blocks.
const (
	InodeSize     = 256
	NDirect       = 12
	AddrsPerBlock = core.BlockSize / 8
	InodesPerBlk  = core.BlockSize / InodeSize

	// MaxFileBlocks is the largest mappable file in blocks.
	MaxFileBlocks = NDirect + AddrsPerBlock + AddrsPerBlock*AddrsPerBlock
)

const inodeMagic = 0x50464931 // "PFI1"

// The record tail carries an FNV-1a checksum of the encoded bytes,
// mirroring the LFS segment-summary scheme: a sub-block tear that
// splices half an old record onto half a new one (the classic FFS
// inode-table hazard — the records are smaller than the device
// block) is caught at decode instead of silently serving a chimera.
const inodeSumOff = 176

func inodeSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// DiskInode is the serialized inode form: meta-data plus the root
// pointers of the block map.
type DiskInode struct {
	Ino    Inode
	Direct [NDirect]int64
	Ind    int64
	DInd   int64
}

// EncodeInode writes d into buf (at least InodeSize bytes).
func EncodeInode(d *DiskInode, buf []byte) {
	if len(buf) < InodeSize {
		panic("layout: inode buffer too small")
	}
	le := binary.LittleEndian
	le.PutUint32(buf[0:], inodeMagic)
	buf[4] = byte(d.Ino.Type)
	le.PutUint32(buf[8:], d.Ino.Nlink)
	le.PutUint32(buf[12:], d.Ino.Mode)
	le.PutUint64(buf[16:], uint64(d.Ino.ID))
	le.PutUint64(buf[24:], uint64(d.Ino.Size))
	le.PutUint64(buf[32:], d.Ino.Version)
	le.PutUint64(buf[40:], uint64(d.Ino.MTime))
	le.PutUint64(buf[48:], uint64(d.Ino.CTime))
	le.PutUint64(buf[56:], uint64(d.Ino.ATime))
	off := 64
	for i := 0; i < NDirect; i++ {
		le.PutUint64(buf[off:], uint64(d.Direct[i]))
		off += 8
	}
	le.PutUint64(buf[off:], uint64(d.Ind))
	le.PutUint64(buf[off+8:], uint64(d.DInd))
	le.PutUint64(buf[inodeSumOff:], inodeSum(buf[:inodeSumOff]))
}

// DecodeInode parses an inode record.
func DecodeInode(buf []byte) (*DiskInode, error) {
	if len(buf) < InodeSize {
		return nil, fmt.Errorf("layout: inode buffer too small")
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != inodeMagic {
		return nil, fmt.Errorf("layout: bad inode magic %#x", le.Uint32(buf[0:]))
	}
	if got, want := le.Uint64(buf[inodeSumOff:]), inodeSum(buf[:inodeSumOff]); got != want {
		return nil, fmt.Errorf("layout: torn inode record (checksum %#x, want %#x)", got, want)
	}
	d := &DiskInode{}
	d.Ino.Type = core.FileType(buf[4])
	d.Ino.Nlink = le.Uint32(buf[8:])
	d.Ino.Mode = le.Uint32(buf[12:])
	d.Ino.ID = core.FileID(le.Uint64(buf[16:]))
	d.Ino.Size = int64(le.Uint64(buf[24:]))
	d.Ino.Version = le.Uint64(buf[32:])
	d.Ino.MTime = int64(le.Uint64(buf[40:]))
	d.Ino.CTime = int64(le.Uint64(buf[48:]))
	d.Ino.ATime = int64(le.Uint64(buf[56:]))
	off := 64
	for i := 0; i < NDirect; i++ {
		d.Direct[i] = int64(le.Uint64(buf[off:]))
		off += 8
	}
	d.Ind = int64(le.Uint64(buf[off:]))
	d.DInd = int64(le.Uint64(buf[off+8:]))
	return d, nil
}

// EncodeAddrs serializes a block-pointer array into an indirect
// block image.
func EncodeAddrs(addrs []int64, buf []byte) {
	if len(addrs) > AddrsPerBlock || len(buf) < core.BlockSize {
		panic("layout: bad indirect block encode")
	}
	le := binary.LittleEndian
	for i := range buf[:core.BlockSize] {
		buf[i] = 0
	}
	for i, a := range addrs {
		le.PutUint64(buf[i*8:], uint64(a+1)) // store +1 so 0 means hole
	}
}

// DecodeAddrs parses an indirect block image into n addresses.
func DecodeAddrs(buf []byte, n int) []int64 {
	if n > AddrsPerBlock {
		n = AddrsPerBlock
	}
	le := binary.LittleEndian
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(le.Uint64(buf[i*8:])) - 1
	}
	return out
}

// SplitBlockMap decomposes a flat block map into the direct slots,
// the single-indirect pointer span and the double-indirect spans.
// The returned indirect groups hold up to AddrsPerBlock addresses
// each: group 0 is the single-indirect block, groups 1..n are the
// leaves of the double-indirect tree.
func SplitBlockMap(blocks []int64) (direct [NDirect]int64, indirect [][]int64, err error) {
	for i := range direct {
		direct[i] = -1
	}
	if len(blocks) > MaxFileBlocks {
		return direct, nil, fmt.Errorf("layout: file of %d blocks exceeds maximum %d", len(blocks), MaxFileBlocks)
	}
	n := copy(direct[:], blocks)
	rest := blocks[n:]
	for len(rest) > 0 {
		g := rest
		if len(g) > AddrsPerBlock {
			g = g[:AddrsPerBlock]
		}
		indirect = append(indirect, g)
		rest = rest[len(g):]
	}
	return direct, indirect, nil
}
