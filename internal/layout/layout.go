// Package layout defines the framework's storage-layout component:
// the object that knows where file-system data and meta-data live on
// a raw disk and is consulted whenever something must be done with
// one. The base component is deliberately interface-only — "for all
// layout and policy decisions there exists a virtual method" — and
// concrete layouts (the segmented log-structured layout in
// internal/lfs, the FFS-like layout in internal/ffs) implement it.
package layout

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Inode is the in-memory representative of a file's meta-data. The
// block map is kept flat in memory (authoritative during a run) and
// serialized to the layout's on-disk form (direct/indirect pointers
// for the LFS and FFS layouts) when written.
type Inode struct {
	ID      core.FileID
	Type    core.FileType
	Size    int64
	Nlink   uint32
	Mode    uint32
	Version uint64
	MTime   int64 // ns since volume epoch
	CTime   int64
	ATime   int64

	// Blocks maps file block numbers to partition-relative block
	// addresses; -1 marks a hole.
	Blocks []int64

	// IndAddrs records where this file's indirect map blocks live,
	// so log cleaners can judge their liveness.
	IndAddrs []int64
}

// NBlocks returns the number of mapped file blocks.
func (ino *Inode) NBlocks() int { return len(ino.Blocks) }

// BlockAddr returns the address of file block b, or -1.
func (ino *Inode) BlockAddr(b core.BlockNo) int64 {
	if int(b) >= len(ino.Blocks) || b < 0 {
		return -1
	}
	return ino.Blocks[b]
}

// SetBlockAddr grows the map as needed and sets block b's address.
func (ino *Inode) SetBlockAddr(b core.BlockNo, addr int64) {
	for int(b) >= len(ino.Blocks) {
		ino.Blocks = append(ino.Blocks, -1)
	}
	ino.Blocks[b] = addr
}

// BlocksForSize returns how many blocks a file of n bytes spans.
func BlocksForSize(n int64) int64 {
	return (n + core.BlockSize - 1) / core.BlockSize
}

// BlockWrite is one dirty block handed to the layout for placement.
type BlockWrite struct {
	Blk  core.BlockNo
	Data []byte // nil when simulated
	Size int    // valid bytes
}

// Layout is the abstract storage-layout component.
type Layout interface {
	Name() string

	// Format initializes an empty file system on the partition.
	Format(t sched.Task) error
	// Mount loads the layout's persistent state (superblock,
	// checkpoint, allocation maps).
	Mount(t sched.Task) error
	// Sync makes all accepted writes durable (checkpoint / flush
	// partial segment / write back allocation maps).
	Sync(t sched.Task) error

	// AllocInode creates a fresh inode of the given type.
	AllocInode(t sched.Task, typ core.FileType) (*Inode, error)
	// GetInode fetches an inode by number.
	GetInode(t sched.Task, id core.FileID) (*Inode, error)
	// UpdateInode records changed inode meta-data.
	UpdateInode(t sched.Task, ino *Inode) error
	// FreeInode removes the file: blocks and inode are freed.
	FreeInode(t sched.Task, id core.FileID) error

	// ReadBlock reads file block blk into data (data nil when
	// simulated; the I/O still costs time).
	ReadBlock(t sched.Task, ino *Inode, blk core.BlockNo, data []byte) error
	// ReadRun reads up to n consecutive file blocks starting at blk
	// as one clustered device request, when the layout's clustering
	// cap and the on-disk placement allow it: the run ends where the
	// disk addresses stop being adjacent (or at a hole, which reads
	// as one zeroed block). data must hold n blocks when real (nil
	// when simulated). It returns how many blocks the call covered,
	// always at least 1. With clustering off (the default) it reads
	// exactly one block — byte-identical to ReadBlock.
	ReadRun(t sched.Task, ino *Inode, blk core.BlockNo, n int, data []byte) (int, error)
	// WriteBlocks places and writes the given dirty blocks of one
	// file. A log-structured layout writes them contiguously.
	WriteBlocks(t sched.Task, ino *Inode, writes []BlockWrite) error
	// Truncate releases blocks beyond newSize.
	Truncate(t sched.Task, ino *Inode, newSize int64) error

	// PlaceExisting assigns addresses to a file that "already
	// existed" before a simulation began — the simulator's educated
	// guess: a random location, sticky once chosen. Real layouts
	// may reject it.
	PlaceExisting(t sched.Task, ino *Inode, size int64) error

	// FreeBlocks reports remaining allocatable capacity in blocks.
	FreeBlocks() int64
	// Stats registers the layout's statistics plug-ins.
	Stats(set *stats.Set)
}

// ErrNoPlaceExisting is returned by real layouts for PlaceExisting.
var ErrNoPlaceExisting = fmt.Errorf("layout: PlaceExisting is a simulator-only operation")

// DefaultClusterRun is the run-size cap instantiations use when they
// turn clustering on without naming one: 16 blocks (64 KB), a
// transfer long enough to amortize the per-request bus arbitration
// and controller overhead the disk model charges, short enough to
// keep queue latency bounded.
const DefaultClusterRun = 16

// Clustered is a layout that can coalesce block-number-contiguous,
// disk-address-contiguous runs into multi-block device requests —
// both on the write path (WriteBlocks emits one request per run) and
// on the read path (ReadRun covers whole runs). SetClusterRun sets
// the run-size cap in blocks: 0 or 1 disables clustering, the
// simulator's byte-identical default; n > 1 allows up to n blocks
// per device request.
type Clustered interface {
	SetClusterRun(n int)
	ClusterRun() int
}

// SetClusterRun applies a run-size cap to lay when it supports
// clustering (a volume array forwards to every member) and reports
// whether it did.
func SetClusterRun(lay Layout, n int) bool {
	c, ok := lay.(Clustered)
	if ok {
		c.SetClusterRun(n)
	}
	return ok
}

// Vectored is a layout that can exchange data with the device layer
// through scatter-gather vectors — clustered writes gather straight
// from the caller's per-block buffers (cache frames) and vectored run
// reads scatter straight into them, with no staging copy. Off (the
// zero value) everything goes through the flat staging path; the
// simulator never turns it on, keeping figure output byte-identical.
// Turning it on also commits the caller to the device contract: the
// per-block buffers handed to WriteBlocks must stay resident and
// unmodified for the whole call (the cache flusher's Flushing state
// guarantees exactly this).
type Vectored interface {
	SetVectored(on bool)
	VectoredIO() bool
}

// SetVectored switches lay's scatter-gather path when it supports one
// (a volume array forwards to every member) and reports whether it
// did.
func SetVectored(lay Layout, on bool) bool {
	v, ok := lay.(Vectored)
	if ok {
		v.SetVectored(on)
	}
	return ok
}

// VecRunReader is a layout that can serve a clustered read by
// scattering directly into per-block buffers — cache frames claimed
// by the readahead filler or a demand read — instead of a flat
// staging buffer. bufs must hold at least n segments of BlockSize
// bytes each; like ReadRun it returns how many blocks the call
// covered, always at least 1, and only bufs[:covered] are filled.
type VecRunReader interface {
	ReadRunVec(t sched.Task, ino *Inode, blk core.BlockNo, n int, bufs [][]byte) (int, error)
}

// ReadRunVec routes a vectored run read to lay when it supports one;
// ok=false means the caller must fall back to the flat ReadRun path.
func ReadRunVec(t sched.Task, lay Layout, ino *Inode, blk core.BlockNo, n int, bufs [][]byte) (got int, ok bool, err error) {
	vr, ok := lay.(VecRunReader)
	if !ok {
		return 0, false, nil
	}
	got, err = vr.ReadRunVec(t, ino, blk, n, bufs)
	return got, true, err
}

// StagedCopy is a layout that counts the bytes it still moves through
// staging buffers on clustered transfers (the memcpy the vectored
// path eliminates). An array reports the sum over its members; the
// telemetry layer exports it so a zero on clustered real-kernel cells
// proves the zero-copy path is engaged.
type StagedCopy interface {
	StagedCopyBytes() int64
}

// StagedCopyBytes reports lay's staged-copy byte count, 0 when it
// doesn't track one.
func StagedCopyBytes(lay Layout) int64 {
	if s, ok := lay.(StagedCopy); ok {
		return s.StagedCopyBytes()
	}
	return 0
}

// RecoveryStats summarizes one layout's crash-recovery pass.
type RecoveryStats struct {
	// RolledSegments counts post-checkpoint log segments replayed
	// (LFS roll-forward).
	RolledSegments int
	// DataBlocks counts file data blocks recovered past the last
	// durable state.
	DataBlocks int
	// InodeRecords counts inode records recovered from the log.
	InodeRecords int
	// OrphanBlocks counts rolled-over blocks whose owning file never
	// became durable — unrecoverable by design.
	OrphanBlocks int
	// TornTail reports that recovery stopped at a torn write (the
	// power cut landed mid-I/O); everything before it was applied.
	TornTail bool
	// Repairs lists human-readable fixes applied (FFS fsck-style
	// bitmap rebuilds, array shadow repairs).
	Repairs []string
}

// Add folds another pass's stats into s (array-wide totals).
func (s *RecoveryStats) Add(o RecoveryStats) {
	s.RolledSegments += o.RolledSegments
	s.DataBlocks += o.DataBlocks
	s.InodeRecords += o.InodeRecords
	s.OrphanBlocks += o.OrphanBlocks
	s.TornTail = s.TornTail || o.TornTail
	s.Repairs = append(s.Repairs, o.Repairs...)
}

// Sizer is a layout that publishes a file's logical-size growth
// under its own lock, so concurrent metadata readers — the LFS inode
// packer, the array's home-shadow mirror — never race the
// front-end's size update. The front-end uses it on the real kernel;
// the virtual kernel is cooperative (one task at a time) and writes
// the field directly, keeping simulated schedules untouched.
type Sizer interface {
	GrowSize(t sched.Task, ino *Inode, size int64)
}

// InodeLocker generalizes Sizer: fn runs under the same lock the
// layout's concurrent inode readers hold (the LFS segment packer,
// the FFS inode encoder, the array's home-shadow mirror), so a flush
// racing a namespace operation never encodes a half-applied field
// update. The front-end wraps its Nlink and exact-size mutations in
// it on the real kernel; the virtual kernel calls fn directly, per
// the Sizer rule. ino picks the lock (an array routes to the home
// member); fn must only touch inode fields — calling back into the
// layout would self-deadlock.
type InodeLocker interface {
	WithInode(t sched.Task, ino *Inode, fn func())
}

// Barrier is a layout whose accepted writes may still sit in a
// volatile staging buffer (the LFS open segment). WriteBarrier
// pushes them to stable storage without the full checkpoint a Sync
// pays. The on-line server's cache flusher issues it after every
// flush job, so "flushed" means durable — the link that makes the
// NVRAM policies' guarantee hold end to end (a block leaves the
// battery-backed domain only once the log has it). Layouts that
// write in place durably (FFS) simply don't implement it.
type Barrier interface {
	WriteBarrier(t sched.Task) error
}

// DurableWatermark is a layout that exposes a monotonically
// increasing durability sequence: it advances only when staged
// metadata actually reaches stable storage (the LFS log/checkpoint
// sequence, FFS's count of synchronous metadata writes; an array
// reports the minimum over its members). The intent-log retirement
// path snapshots it around a sync to prove the covering checkpoint
// is durable before unretiring acknowledged namespace operations.
type DurableWatermark interface {
	DurableSeq(t sched.Task) uint64
}

// Recoverer is a layout that can bring a crashed volume to a
// consistent, mountable state: the LFS rolls the log forward from
// the newer checkpoint, the FFS rebuilds its allocation bitmaps from
// the inode table. Recover subsumes Mount — afterwards the layout is
// mounted, durable and self-consistent.
type Recoverer interface {
	Recover(t sched.Task) (RecoveryStats, error)
}

// InodeEnumerator lists a mounted layout's live inode numbers in
// ascending order. Array recovery uses it to re-sync the lockstep
// inode allocators and roll back half-made allocations.
type InodeEnumerator interface {
	LiveInodes(t sched.Task) []core.FileID
}

// AllocCursor is implemented by layouts with a sequential inode
// allocator (the LFS): array recovery aligns the cursors of all
// members to the maximum so lockstep allocation resumes.
type AllocCursor interface {
	InodeCursor(t sched.Task) uint64
	SetInodeCursor(t sched.Task, cur uint64)
}

// InodeRestorer recreates a specific inode number on a mounted
// layout. Array rebuild uses it to clone a dead member's inode space
// onto a freshly formatted replacement, where the ordinary allocator
// (sequential cursor or group spreading) would assign different
// numbers than the live set being copied.
type InodeRestorer interface {
	RestoreInode(t sched.Task, id core.FileID, typ core.FileType) (*Inode, error)
}
