package layout

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// inodeEqual compares every serialized field.
func inodeEqual(a, b *DiskInode) bool {
	return a.Ino.ID == b.Ino.ID && a.Ino.Type == b.Ino.Type &&
		a.Ino.Size == b.Ino.Size && a.Ino.Nlink == b.Ino.Nlink &&
		a.Ino.Mode == b.Ino.Mode && a.Ino.Version == b.Ino.Version &&
		a.Ino.MTime == b.Ino.MTime && a.Ino.CTime == b.Ino.CTime &&
		a.Ino.ATime == b.Ino.ATime &&
		a.Direct == b.Direct && a.Ind == b.Ind && a.DInd == b.DInd
}

// TestInodeCodecTable round-trips a spread of representative inodes:
// every file type, hole pointers, extreme sizes and timestamps.
func TestInodeCodecTable(t *testing.T) {
	filled := func(v int64) (d [NDirect]int64) {
		for i := range d {
			d[i] = v
		}
		return
	}
	cases := []struct {
		name string
		ino  DiskInode
	}{
		{"zero-value", DiskInode{}},
		{"regular", DiskInode{
			Ino:    Inode{ID: 1, Type: core.TypeRegular, Size: 4096, Nlink: 1, Mode: 0o644},
			Direct: filled(77), Ind: 12, DInd: 13,
		}},
		{"directory", DiskInode{
			Ino: Inode{ID: 2, Type: core.TypeDirectory, Size: core.BlockSize, Nlink: 2, Mode: 0o755},
		}},
		{"symlink", DiskInode{
			Ino: Inode{ID: 3, Type: core.TypeSymlink, Size: 12, Nlink: 1},
		}},
		{"holes-everywhere", DiskInode{
			Ino:    Inode{ID: 4, Type: core.TypeRegular},
			Direct: filled(-1), Ind: -1, DInd: -1,
		}},
		{"extremes", DiskInode{
			Ino: Inode{
				ID: core.FileID(1<<63 - 1), Type: core.TypeRegular,
				Size: 1<<62 - 1, Nlink: ^uint32(0), Mode: ^uint32(0),
				Version: ^uint64(0), MTime: -1, CTime: 1<<63 - 1, ATime: -(1 << 62),
			},
			Direct: filled(1<<62 - 1), Ind: 1<<62 - 1, DInd: -(1 << 60),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := make([]byte, InodeSize)
			EncodeInode(&tc.ino, buf)
			got, err := DecodeInode(buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !inodeEqual(got, &tc.ino) {
				t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", tc.ino, got)
			}
			// A second encode of the decode must be byte-identical —
			// the codec has one canonical form.
			buf2 := make([]byte, InodeSize)
			EncodeInode(got, buf2)
			if !bytes.Equal(buf, buf2) {
				t.Fatal("re-encode is not canonical")
			}
		})
	}
}

// TestInodeDecodeFailures is the codec's failure-path table: short
// buffers at every interesting size and corrupted magic bytes.
func TestInodeDecodeFailures(t *testing.T) {
	good := make([]byte, InodeSize)
	EncodeInode(&DiskInode{Ino: Inode{ID: 9, Type: core.TypeRegular}}, good)

	for _, n := range []int{0, 1, 3, 4, 63, InodeSize - 1} {
		if _, err := DecodeInode(good[:n]); err == nil {
			t.Fatalf("decoded %d-byte buffer", n)
		}
	}
	for bit := 0; bit < 32; bit += 7 {
		bad := append([]byte(nil), good...)
		bad[bit/8] ^= 1 << (bit % 8) // corrupt the magic word
		if _, err := DecodeInode(bad); err == nil {
			t.Fatalf("decoded buffer with magic bit %d flipped", bit)
		}
	}
}

func TestEncodeInodePanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short encode buffer accepted")
		}
	}()
	EncodeInode(&DiskInode{}, make([]byte, InodeSize-1))
}

func TestEncodeAddrsPanicsOnBadArgs(t *testing.T) {
	t.Run("too-many-addrs", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("oversized addr list accepted")
			}
		}()
		EncodeAddrs(make([]int64, AddrsPerBlock+1), make([]byte, core.BlockSize))
	})
	t.Run("short-buffer", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("short addr buffer accepted")
			}
		}()
		EncodeAddrs([]int64{1}, make([]byte, core.BlockSize-1))
	})
}

func TestDecodeAddrsClampsCount(t *testing.T) {
	buf := make([]byte, core.BlockSize)
	EncodeAddrs([]int64{4, 5, 6}, buf)
	got := DecodeAddrs(buf, AddrsPerBlock+100)
	if len(got) != AddrsPerBlock {
		t.Fatalf("decoded %d addrs, want clamp to %d", len(got), AddrsPerBlock)
	}
	if got[0] != 4 || got[1] != 5 || got[2] != 6 || got[3] != -1 {
		t.Fatalf("prefix %v", got[:4])
	}
}

// TestAddrsCodecProperty: any addr slice up to a full block round
// trips exactly, and every slot beyond it reads back as a hole.
func TestAddrsCodecProperty(t *testing.T) {
	prop := func(raw []int64, pad uint8) bool {
		if len(raw) > AddrsPerBlock {
			raw = raw[:AddrsPerBlock]
		}
		buf := make([]byte, core.BlockSize)
		EncodeAddrs(raw, buf)
		n := len(raw) + int(pad)%8
		if n > AddrsPerBlock {
			n = AddrsPerBlock
		}
		got := DecodeAddrs(buf, n)
		for i := range got {
			if i < len(raw) {
				if got[i] != raw[i] {
					return false
				}
			} else if got[i] != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeInode feeds arbitrary bytes to the decoder: it must
// reject or accept without panicking, and anything accepted must
// re-encode to the same bytes (the codec is canonical).
func FuzzDecodeInode(f *testing.F) {
	good := make([]byte, InodeSize)
	EncodeInode(&DiskInode{
		Ino:    Inode{ID: 7, Type: core.TypeRegular, Size: 999, Nlink: 1},
		Direct: [NDirect]int64{1, 2, 3}, Ind: 4, DInd: 5,
	}, good)
	f.Add(good)
	f.Add(make([]byte, InodeSize))
	f.Add([]byte{})
	short := append([]byte(nil), good[:100]...)
	f.Add(short)
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeInode(data)
		if err != nil {
			return
		}
		if len(data) < InodeSize {
			t.Fatalf("accepted %d-byte buffer", len(data))
		}
		if binary.LittleEndian.Uint32(data) != inodeMagic {
			t.Fatal("accepted wrong magic")
		}
		out := make([]byte, InodeSize)
		EncodeInode(d, out)
		// The encoder writes bytes [0,5) and [8,176) — magic, type,
		// meta-data and block pointers; the rest of the record is
		// padding it never touches. The written ranges must survive a
		// decode/encode cycle.
		const end = 64 + NDirect*8 + 16
		if !bytes.Equal(out[:5], data[:5]) || !bytes.Equal(out[8:end], data[8:end]) {
			t.Fatalf("decode/encode not canonical:\nin  %x\nout %x", data[:InodeSize], out)
		}
	})
}
