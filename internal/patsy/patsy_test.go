package patsy

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/trace"
)

// smallConfig shrinks the replay rig to test scale: one bus, two
// disks, four volumes, 2 MB cache.
func smallConfig(seed int64, fc cache.FlushConfig) Config {
	cfg := DefaultConfig(seed, fc)
	cfg.Buses = 1
	cfg.DisksPerBus = []int{2}
	cfg.Volumes = 4
	cfg.CacheBlocks = 512
	return cfg
}

// smallTrace generates a down-scaled profile matching the topology.
func smallTrace(name string, seed int64, d time.Duration) []trace.Record {
	p := trace.Profiles()[name]
	p.Volumes = 4
	p.HotVolumes = 1
	p.Clients = 8
	if p.LargeWriters > 4 {
		p.LargeWriters = 4
	}
	p.PreexistingFiles = 40
	return trace.Generate(p, seed, d)
}

func TestRunSmallSimulation(t *testing.T) {
	recs := smallTrace("1a", 7, 90*time.Second)
	rep, err := Run(smallConfig(1, cache.UPS()), "1a", recs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.WallOps == 0 {
		t.Fatal("no operations completed")
	}
	if rep.MeanLatency() <= 0 {
		t.Fatal("zero mean latency")
	}
	if rep.Result.Errors > rep.WallOps/10 {
		t.Fatalf("errors %d of %d", rep.Result.Errors, rep.WallOps)
	}
	if rep.SimTime < 80*time.Second {
		t.Fatalf("simulation ended early at %v", rep.SimTime)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	recs := smallTrace("3", 9, 45*time.Second)
	a, err := Run(smallConfig(5, cache.WriteDelay()), "3", recs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(5, cache.WriteDelay()), "3", recs)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatency() != b.MeanLatency() || a.WallOps != b.WallOps || a.Flushed != b.Flushed {
		t.Fatalf("same seed diverged: %v/%d/%d vs %v/%d/%d",
			a.MeanLatency(), a.WallOps, a.Flushed,
			b.MeanLatency(), b.WallOps, b.Flushed)
	}
}

func TestUPSWritesLessThanWriteDelay(t *testing.T) {
	// The core write-saving claim: keeping dirty data longer means
	// fewer blocks reach the disks.
	recs := smallTrace("1a", 11, 2*time.Minute)
	ups, err := Run(smallConfig(2, cache.UPS()), "1a", recs)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := Run(smallConfig(2, cache.WriteDelay()), "1a", recs)
	if err != nil {
		t.Fatal(err)
	}
	if ups.Flushed >= wd.Flushed {
		t.Fatalf("UPS flushed %d blocks, write-delay %d; write-saving broken",
			ups.Flushed, wd.Flushed)
	}
}

func TestNVRAMLimitObserved(t *testing.T) {
	recs := smallTrace("1b", 13, time.Minute)
	cfg := smallConfig(3, cache.NVRAMPartial(64)) // tiny NVRAM
	rep, err := Run(cfg, "1b", recs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DirtyHW > 64 {
		t.Fatalf("dirty high water %d exceeded NVRAM size", rep.DirtyHW)
	}
	if rep.NVRAMWaits == 0 {
		t.Fatal("heavy writes never waited for NVRAM drain")
	}
}

func TestFFSLayoutRuns(t *testing.T) {
	cfg := smallConfig(4, cache.WriteDelay())
	cfg.Layout = "ffs"
	recs := smallTrace("2a", 15, 45*time.Second)
	rep, err := Run(cfg, "2a", recs)
	if err != nil {
		t.Fatalf("FFS run: %v", err)
	}
	if rep.WallOps == 0 {
		t.Fatal("no ops on FFS")
	}
}

func TestNaiveDiskModelRuns(t *testing.T) {
	cfg := smallConfig(6, cache.UPS())
	cfg.DiskModel = "naive"
	recs := smallTrace("1a", 17, 45*time.Second)
	rep, err := Run(cfg, "1a", recs)
	if err != nil {
		t.Fatalf("naive run: %v", err)
	}
	if rep.WallOps == 0 {
		t.Fatal("no ops on naive model")
	}
}

func TestBadConfigsRejected(t *testing.T) {
	if _, err := Build(Config{Buses: 2, DisksPerBus: []int{1}}); err == nil {
		t.Fatal("mismatched topology accepted")
	}
	cfg := smallConfig(1, cache.UPS())
	cfg.DiskModel = "warp-drive"
	if _, err := Run(cfg, "x", nil); err == nil {
		t.Fatal("unknown disk model accepted")
	}
	cfg = smallConfig(1, cache.UPS())
	cfg.QueueSched = "magic"
	if _, err := Run(cfg, "x", nil); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	cfg = smallConfig(1, cache.UPS())
	cfg.Volumes = 0
	if _, err := Build(cfg); err == nil {
		t.Fatal("zero volumes accepted")
	}
}

func TestQueueSchedulerVariants(t *testing.T) {
	recs := smallTrace("1a", 19, 30*time.Second)
	for _, qs := range []string{"fcfs", "clook", "scan-edf"} {
		cfg := smallConfig(7, cache.WriteDelay())
		cfg.QueueSched = qs
		rep, err := Run(cfg, "1a", recs)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if rep.WallOps == 0 {
			t.Fatalf("%s: no ops", qs)
		}
	}
}
