package patsy

import (
	"repro/internal/ffs"
	"repro/internal/layout"
	"repro/internal/sched"
)

// ffsNew builds the FFS baseline layout for the layout ablation.
func ffsNew(k sched.Kernel, name string, part *layout.Partition) layout.Layout {
	return ffs.New(k, name, part, ffs.DefaultConfig())
}
