// Package patsy instantiates the cut-and-paste component library
// into the trace-driven file-system simulator: a virtual-time kernel
// drives simulated SCSI-2 buses, HP 97560 disks, C-LOOK drivers, the
// shared block cache under the flush policy being studied, a
// segmented LFS per volume, and the trace replayer on top of the
// abstract client interface.
//
// The default configuration reproduces the paper's replay of the
// Sprite traces: a Sun 4/280-class server with three SCSI buses
// connecting ten disks carrying fourteen file systems, two of them
// hot.
package patsy

import (
	"fmt"
	"time"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/disk"
	"repro/internal/fsys"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/volume"
)

// Config selects the components of one simulation, every field a
// cut-and-paste policy point.
type Config struct {
	Seed int64

	// Topology.
	Buses       int
	DisksPerBus []int // len == Buses
	Volumes     int

	// Disk model: "hp97560" (default) or "naive".
	DiskModel   string
	NaiveAccess time.Duration
	// ImmediateReport can disable the disks' write caches.
	NoImmediateReport bool

	// Driver queue scheduler: fcfs, sstf, look, clook (default),
	// cscan, scan-edf.
	QueueSched string

	// Cache.
	CacheBlocks int
	Replace     string
	Flush       cache.FlushConfig
	// CacheShards lock-stripes the cache (0 or 1 = the paper's
	// single-lock cache, the byte-identical default). The virtual
	// kernel runs one task at a time, so any width stays
	// deterministic per seed; widths above 1 change contention and
	// thus the schedule.
	CacheShards int
	// ReadaheadBlocks enables sequential-read readahead in the
	// front-end (0 = off, the byte-identical default).
	ReadaheadBlocks int
	// ClusterRunBlocks caps clustered multi-block transfers per
	// device request on the data paths (0 or 1 = off, the
	// byte-identical default: every request moves one block, as the
	// paper's simulator did outside the LFS segment flush).
	ClusterRunBlocks int

	// Layout.
	SegBlocks int
	Cleaner   string
	// Layout kind: "lfs" (default) or "ffs".
	Layout string
	// MaxVolBlocks caps each volume's partition (0 = share the
	// whole disk). Small volumes make the log wrap, exercising the
	// cleaner within short traces.
	MaxVolBlocks int64

	// Host memory model.
	CopyBytesPerSec int64

	// Horizon bounds runaway simulations (0 = none).
	Horizon time.Duration

	// Volume-array mode: when ArrayVolumes >= 1 the simulator builds
	// that many independent bus + disk + driver + layout stacks and
	// mounts a single volume.Array over them as volume 1; the
	// Buses/DisksPerBus/Volumes topology fields are ignored. Width 1
	// is a transparent passthrough, byte-identical to the equivalent
	// single-stack system.
	ArrayVolumes int
	// Placement routes file data across the array: "affinity"
	// (default), "striped", or the redundant placements "mirrored"
	// (chained declustering) and "parity" (rotated RAID-5), which
	// keep serving through a member death (System.KillMember /
	// RebuildMember).
	Placement string
	// StripeBlocks is the striped placement's chunk width.
	StripeBlocks int

	// Fault, when set, installs one shared fault plan on every
	// driver — the injectable device stack. Nil leaves the stack
	// untouched (the byte-identical default).
	Fault *device.FaultConfig
	// CrashAt, when positive, cuts the power at that instant of
	// virtual time: the replay halts, the fault plan trips, the
	// cache's crash state is captured into Report.Crash — and, with
	// CrashRecover set, recovery runs inside the same simulation
	// (remount scan, NVRAM replay, checkpoint) so its virtual-time
	// cost is measured. Zero disables all of it.
	CrashAt time.Duration
	// CrashRecover runs (and times) recovery after the cut.
	CrashRecover bool
	// IntentLog attaches the namespace intent log to the cache, so a
	// crash study also measures acknowledged-namespace-op exposure.
	// Off by default: the pre-intent-log studies stay byte-identical.
	IntentLog bool
}

// CrashInfo is what a crash-instrumented run observed at (and after)
// the power cut.
type CrashInfo struct {
	At         time.Duration `json:"at"`
	Policy     string        `json:"policy"`
	Persistent bool          `json:"persistent"`
	// SurvivorBlocks counts dirty blocks the policy's battery-backed
	// domain preserved; LostBlocks the ones volatile memory lost.
	SurvivorBlocks int `json:"survivor_blocks"`
	LostBlocks     int `json:"lost_blocks"`
	// LossWindow is the age of the oldest lost dirty block — how far
	// back acknowledged writes are missing.
	LossWindow time.Duration `json:"loss_window"`
	// DiskVolatileBytes counts immediate-reported bytes still in the
	// drives' volatile caches — exposure no host policy can remove.
	DiskVolatileBytes int64 `json:"disk_volatile_bytes"`
	// Recovery timing (CrashRecover only).
	Recovered      bool          `json:"recovered"`
	RecoveryTime   time.Duration `json:"recovery_time"`
	ReplayedBlocks int           `json:"replayed_blocks"`
	DroppedBlocks  int           `json:"dropped_blocks"`
	// Namespace is the intent log's crash exposure, present only when
	// Config.IntentLog is on (pre-intent-log study output is
	// byte-identical otherwise).
	Namespace *NamespaceCrashInfo `json:"namespace,omitempty"`
}

// NamespaceCrashInfo measures acknowledged namespace operations
// (create/remove/rename/truncate/symlink) across a power cut: how
// many unretired intents the battery-backed domain preserved or a
// volatile policy lost, and what the replay did with the survivors.
type NamespaceCrashInfo struct {
	Ops             uint64        `json:"ops"`
	SurvivorIntents int           `json:"survivor_intents"`
	LostIntents     int           `json:"lost_intents"`
	LossWindow      time.Duration `json:"loss_window"`
	Replayed        int           `json:"replayed"`
	Noop            int           `json:"noop"`
	Dropped         int           `json:"dropped"`
}

// intentSlotsIf maps the IntentLog switch to the cache knob.
func intentSlotsIf(on bool) int {
	if on {
		return 1024
	}
	return 0
}

// DefaultConfig is the paper's Sprite replay setup with the flush
// policy left to the experiment: 3 SCSI-2 buses, 10 HP 97560 disks
// (4+3+3), 14 LFS volumes, a 64 MB cache (16384 4 KB blocks).
func DefaultConfig(seed int64, flush cache.FlushConfig) Config {
	return Config{
		Seed:        seed,
		Buses:       3,
		DisksPerBus: []int{4, 3, 3},
		Volumes:     14,
		DiskModel:   "hp97560",
		QueueSched:  "clook",
		CacheBlocks: 16384,
		Replace:     "lru",
		Flush:       flush,
		SegBlocks:   128,
		Cleaner:     "cost-benefit",
		Layout:      "lfs",
	}
}

// NVRAMBlocks4MB is the paper's 4 MB NVRAM in cache blocks.
const NVRAMBlocks4MB = (4 << 20) / core.BlockSize

// System is an assembled simulator.
type System struct {
	Cfg     Config
	K       *sched.VKernel
	FS      *fsys.FS
	Cache   *cache.Cache
	Buses   []*bus.Bus
	Disks   []*disk.Disk
	Drivers []device.Driver
	Layouts []layout.Layout
	Array   *volume.Array     // non-nil in array mode
	Fault   *device.FaultPlan // non-nil when Config.Fault is set
	Set     *stats.Set
}

// Build assembles the components. Volumes are formatted and mounted
// by Init, which must run inside a kernel task (Run does both).
func Build(cfg Config) (*System, error) {
	if cfg.ArrayVolumes >= 1 {
		// Array mode: one bus + disk + driver stack per array
		// member, assembled in the same order the classic topology
		// uses so a width-1 array matches it exactly.
		cfg.Buses = cfg.ArrayVolumes
		cfg.DisksPerBus = make([]int, cfg.ArrayVolumes)
		for i := range cfg.DisksPerBus {
			cfg.DisksPerBus[i] = 1
		}
		cfg.Volumes = 1
	}
	if cfg.Buses <= 0 || len(cfg.DisksPerBus) != cfg.Buses {
		return nil, fmt.Errorf("patsy: bad bus topology: %d buses, %v disks", cfg.Buses, cfg.DisksPerBus)
	}
	if cfg.Volumes <= 0 {
		return nil, fmt.Errorf("patsy: need at least one volume")
	}
	k := sched.NewVirtual(cfg.Seed)
	if cfg.Horizon > 0 {
		k.SetHorizon(sched.Time(cfg.Horizon))
	}
	sys := &System{Cfg: cfg, K: k, Set: stats.NewSet()}

	// Buses and disks.
	for b := 0; b < cfg.Buses; b++ {
		bb := bus.New(k, bus.SCSI2(fmt.Sprintf("scsi%d", b)))
		bb.Stats(sys.Set)
		sys.Buses = append(sys.Buses, bb)
		for d := 0; d < cfg.DisksPerBus[b]; d++ {
			name := fmt.Sprintf("disk%d", len(sys.Disks))
			var p disk.Params
			switch cfg.DiskModel {
			case "", "hp97560":
				p = disk.HP97560(name)
			case "naive":
				acc := cfg.NaiveAccess
				if acc <= 0 {
					acc = 15 * time.Millisecond
				}
				p = disk.Naive(name, acc)
			default:
				return nil, fmt.Errorf("patsy: unknown disk model %q", cfg.DiskModel)
			}
			if cfg.NoImmediateReport {
				p.ImmediateReport = false
			}
			dd := disk.New(k, p, bb)
			dd.Stats(sys.Set)
			dd.Start()
			sys.Disks = append(sys.Disks, dd)
			q, ok := device.NewScheduler(orDefault(cfg.QueueSched, "clook"))
			if !ok {
				return nil, fmt.Errorf("patsy: unknown queue scheduler %q", cfg.QueueSched)
			}
			drv := device.NewSimDriver(k, name+".drv", dd, bb, q)
			drv.DriverStats().Register(sys.Set)
			sys.Drivers = append(sys.Drivers, drv)
		}
	}
	if cfg.Fault != nil {
		sys.Fault = device.NewFaultPlan(*cfg.Fault)
		for _, drv := range sys.Drivers {
			drv.SetInjector(sys.Fault)
		}
	}
	if len(sys.Disks) == 0 {
		return nil, fmt.Errorf("patsy: no disks configured")
	}

	// Cache and front-end.
	store := fsys.NewStore()
	c := cache.New(k, cache.Config{
		Blocks:    cfg.CacheBlocks,
		Replace:   cfg.Replace,
		Flush:     cfg.Flush,
		Simulated: true,
		Shards:    cfg.CacheShards,
		// With clustering on, shard by run-sized chunks so dirty
		// runs stay whole; chunk 1 (the default) is the classic map.
		ShardChunk:  cfg.ClusterRunBlocks,
		IntentSlots: intentSlotsIf(cfg.IntentLog),
	}, store)
	c.Stats(sys.Set)
	mover := &core.SimMover{BytesPerSec: orDefault64(cfg.CopyBytesPerSec, 80<<20), FixedNS: 2000}
	fs := fsys.New(k, c, mover)
	if cfg.ReadaheadBlocks > 0 {
		fs.SetReadahead(cfg.ReadaheadBlocks)
	}
	fs.Stats(sys.Set)
	store.Bind(fs)
	c.Start()
	sys.Cache = c
	sys.FS = fs
	return sys, nil
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

func orDefault64(v, d int64) int64 {
	if v <= 0 {
		return d
	}
	return v
}

// Init formats and mounts the volumes, spreading them round-robin
// over the disks and splitting each disk evenly among its volumes.
// In array mode it instead builds one sub-layout per disk stack and
// mounts a single volume.Array over them. It must run inside a
// kernel task.
func (s *System) Init(t sched.Task) error {
	cfg := s.Cfg
	if cfg.ArrayVolumes >= 1 {
		return s.initArray(t)
	}
	perDisk := make([][]int, len(s.Disks))
	for v := 0; v < cfg.Volumes; v++ {
		d := v % len(s.Disks)
		perDisk[d] = append(perDisk[d], v)
	}
	for d, vols := range perDisk {
		if len(vols) == 0 {
			continue
		}
		capacity := s.Drivers[d].CapacityBlocks()
		share := capacity / int64(len(vols))
		size := share
		if cfg.MaxVolBlocks > 0 && size > cfg.MaxVolBlocks {
			size = cfg.MaxVolBlocks
		}
		for i, v := range vols {
			start := int64(i) * share
			part := layout.NewPartition(s.Drivers[d], d, start, size, true)
			lay, err := s.newLayout(fmt.Sprintf("vol%d", v+1), part)
			if err != nil {
				return err
			}
			if err := lay.Format(t); err != nil {
				return fmt.Errorf("patsy: format vol%d: %w", v+1, err)
			}
			if err := lay.Mount(t); err != nil {
				return fmt.Errorf("patsy: mount vol%d: %w", v+1, err)
			}
			lay.Stats(s.Set)
			if _, err := s.FS.AddVolume(t, core.VolumeID(v+1), lay, true); err != nil {
				return err
			}
			s.Layouts = append(s.Layouts, lay)
		}
	}
	return nil
}

// newLayout builds one concrete sub-layout on a partition.
func (s *System) newLayout(name string, part *layout.Partition) (layout.Layout, error) {
	cfg := s.Cfg
	var lay layout.Layout
	switch orDefault(cfg.Layout, "lfs") {
	case "lfs":
		lcfg := lfs.DefaultConfig()
		if cfg.SegBlocks > 0 {
			lcfg.SegBlocks = cfg.SegBlocks
		}
		lcfg.Cleaner = orDefault(cfg.Cleaner, "cost-benefit")
		lay = lfs.New(s.K, name, part, lcfg)
	case "ffs":
		lay = ffsNew(s.K, name, part)
	default:
		return nil, fmt.Errorf("patsy: unknown layout %q", cfg.Layout)
	}
	if cfg.ClusterRunBlocks > 1 {
		layout.SetClusterRun(lay, cfg.ClusterRunBlocks)
	}
	return lay, nil
}

// initArray formats and mounts a volume array: one full-disk
// partition and sub-layout per stack, a volume.Array over them,
// mounted as volume 1.
func (s *System) initArray(t sched.Task) error {
	cfg := s.Cfg
	w := cfg.ArrayVolumes
	subs := make([]layout.Layout, w)
	for i := 0; i < w; i++ {
		size := s.Drivers[i].CapacityBlocks()
		if cfg.MaxVolBlocks > 0 && size > cfg.MaxVolBlocks {
			size = cfg.MaxVolBlocks
		}
		part := layout.NewPartition(s.Drivers[i], i, 0, size, true)
		name := "vol1"
		if w > 1 {
			name = fmt.Sprintf("vol1.d%d", i)
		}
		sub, err := s.newLayout(name, part)
		if err != nil {
			return err
		}
		subs[i] = sub
	}
	arr, err := volume.New(s.K, "vol1", subs, volume.Config{
		Placement:    cfg.Placement,
		StripeBlocks: cfg.StripeBlocks,
		Simulated:    true,
	})
	if err != nil {
		return err
	}
	if err := arr.Format(t); err != nil {
		return fmt.Errorf("patsy: format array: %w", err)
	}
	if err := arr.Mount(t); err != nil {
		return fmt.Errorf("patsy: mount array: %w", err)
	}
	arr.Stats(s.Set)
	if _, err := s.FS.AddVolume(t, core.VolumeID(1), arr, true); err != nil {
		return err
	}
	s.Array = arr
	s.Layouts = append(s.Layouts, arr)
	return nil
}

// Report is one simulation's results.
type Report struct {
	Policy     string
	TraceName  string
	Result     *trace.Result
	ReadHit    float64
	Flushed    int64
	Saved      int64
	NVRAMWaits int64
	DirtyHW    int64
	WallOps    int
	SimTime    time.Duration

	// Crash is the power-cut observation of a crash-instrumented run
	// (Config.CrashAt), nil otherwise.
	Crash *CrashInfo

	// Front-end byte totals, for aggregate-throughput reporting.
	BytesRead    int64
	BytesWritten int64
	// PerVolume is the per-disk-stack I/O split (driver truth,
	// cleaner traffic included) — the array-level balance report.
	PerVolume []VolIO
}

// VolIO is one disk stack's block I/O totals, with the request
// counts alongside so transfer sizes (blocks per request — the
// clustering win) are visible, not just raw traffic.
type VolIO struct {
	Name          string
	BlocksRead    int64
	BlocksWritten int64
	Reads         int64 // read requests issued to the driver
	Writes        int64 // write requests issued to the driver
}

// DiskBlocks sums the report's per-volume disk traffic.
func (r *Report) DiskBlocks() int64 {
	var sum int64
	for _, v := range r.PerVolume {
		sum += v.BlocksRead + v.BlocksWritten
	}
	return sum
}

// DiskRequests sums the report's per-volume driver requests.
func (r *Report) DiskRequests() int64 {
	var sum int64
	for _, v := range r.PerVolume {
		sum += v.Reads + v.Writes
	}
	return sum
}

// BlocksPerRequest is the mean transfer size the disks saw — the
// per-request-overhead amortization the clustering study measures.
func (r *Report) BlocksPerRequest() float64 {
	if reqs := r.DiskRequests(); reqs > 0 {
		return float64(r.DiskBlocks()) / float64(reqs)
	}
	return 0
}

// MeanLatency is the headline number of Figure 5.
func (r *Report) MeanLatency() time.Duration { return r.Result.Overall.Mean() }

// Run builds the system, replays recs and collects the report. This
// is the one-call experiment entry point.
func Run(cfg Config, traceName string, recs []trace.Record) (*Report, error) {
	sys, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	rep := trace.NewReplayer(sys.FS, recs)
	var runErr error
	var crash *CrashInfo
	var crashDone sched.Event
	if cfg.CrashAt > 0 {
		crashDone = sys.K.NewEvent("patsy.crashdone")
	}
	sys.K.Go("patsy.main", func(t sched.Task) {
		if err := sys.Init(t); err != nil {
			runErr = err
			sys.K.Stop()
			return
		}
		if cfg.CrashAt > 0 {
			sys.K.Go("patsy.crash", func(ct sched.Task) {
				crash = sys.crashTask(ct, rep)
				crashDone.Signal()
			})
		}
		rep.Run(t)
		if crashDone != nil {
			crashDone.Wait(t)
		}
		sys.K.Stop()
	})
	if err := sys.K.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	cs := sys.Cache.CacheStats()
	fss := sys.FS.FSStats()
	perVol := make([]VolIO, len(sys.Drivers))
	for i, drv := range sys.Drivers {
		ds := drv.DriverStats()
		perVol[i] = VolIO{
			Name:          drv.Name(),
			BlocksRead:    ds.BlocksRead.Value(),
			BlocksWritten: ds.BlocksWritten.Value(),
			Reads:         ds.Reads.Value(),
			Writes:        ds.Writes.Value(),
		}
	}
	return &Report{
		Policy:       cfg.Flush.Name,
		Crash:        crash,
		TraceName:    traceName,
		Result:       rep.Result(),
		ReadHit:      fss.ReadHitRate(),
		Flushed:      cs.FlushedBlocks.Value(),
		Saved:        cs.SavedWrites.Value(),
		NVRAMWaits:   cs.NVRAMWaits.Value(),
		DirtyHW:      cs.DirtyHW.Value(),
		WallOps:      rep.Result().Ops,
		SimTime:      time.Duration(sys.K.Now()),
		BytesRead:    fss.BytesRead.Value(),
		BytesWritten: fss.BytesWritten.Value(),
		PerVolume:    perVol,
	}, nil
}
