package patsy

import (
	"testing"

	"repro/internal/core"
)

// TestComponentCatalogue verifies every cut-and-paste component is
// discoverable in the shared registry once the assembly's packages
// are linked in.
func TestComponentCatalogue(t *testing.T) {
	r := core.Components()
	want := map[string][]string{
		core.KindFlushPolicy:   {"nvram-partial", "nvram-whole", "ups", "writedelay"},
		core.KindReplacePolicy: {"lfu", "lru", "lru2", "random", "slru"},
		core.KindQueueSched:    {"cscan", "fcfs", "look", "scan-edf", "sstf", "clook"},
		core.KindLayout:        {"ffs", "lfs"},
		core.KindCleaner:       {"cost-benefit", "greedy"},
		core.KindDiskModel:     {"hp97560", "naive"},
		core.KindTraceFormat:   {"coda", "sprite"},
		core.KindWorkload:      {"1a", "1b", "2a", "2b", "3", "4", "5"},
	}
	for kind, names := range want {
		have := map[string]bool{}
		for _, n := range r.Names(kind) {
			have[n] = true
		}
		for _, n := range names {
			if !have[n] {
				t.Errorf("kind %s missing component %q (have %v)", kind, n, r.Names(kind))
			}
		}
	}
}
