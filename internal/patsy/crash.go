package patsy

import (
	"time"

	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/trace"
)

// crashTask is the simulator's power cut: at Config.CrashAt it halts
// the replay, trips the fault plan (nothing reaches the media
// afterwards), freezes the cache, and measures the crash exposure —
// dirty blocks lost vs. NVRAM-preserved, the loss window, and the
// bytes sitting in the drives' volatile write caches. With
// CrashRecover it then plays the recovery inside the same simulation
// so the study gets deterministic virtual-time recovery costs: every
// layout's remount/roll-forward scan, the NVRAM replay through the
// layouts, and the closing checkpoint.
func (s *System) crashTask(t sched.Task, rep *trace.Replayer) *CrashInfo {
	t.SleepUntil(sched.Time(s.Cfg.CrashAt))
	rep.Halt()
	if s.Fault != nil {
		s.Fault.Cut()
	}
	s.Cache.PowerOff()
	// Give in-flight operations one simulated second to drain into
	// their (injected) completions before the state is read.
	t.Sleep(time.Second)

	cr := s.Cache.Crash(t)
	info := &CrashInfo{
		At:             time.Duration(s.K.Now()),
		Policy:         cr.Policy,
		Persistent:     cr.Persistent,
		SurvivorBlocks: len(cr.Survivors),
		LostBlocks:     cr.LostBlocks,
		LossWindow:     cr.LossWindow,
	}
	if log := s.Cache.Intents(); log != nil {
		info.Namespace = &NamespaceCrashInfo{
			Ops:             log.Total(),
			SurvivorIntents: len(cr.Intents),
			LostIntents:     cr.LostIntents,
			LossWindow:      cr.IntentLossWindow,
		}
	}
	for _, d := range s.Disks {
		info.DiskVolatileBytes += d.VolatileBytes()
	}
	if !s.Cfg.CrashRecover {
		return info
	}

	// Power restored: recover on the same (simulated) stack. The
	// in-memory layout state doubles as the disk image, so recovery
	// here charges the I/O a real remount performs.
	if s.Fault != nil {
		s.Fault.Restore()
	}
	start := s.K.Now()
	for _, lay := range s.Layouts {
		if rec, ok := lay.(layout.Recoverer); ok {
			if _, err := rec.Recover(t); err != nil {
				return info
			}
		}
	}
	st, err := s.FS.ReplayNVRAM(t, cr.Survivors, cr.Intents)
	info.ReplayedBlocks, info.DroppedBlocks = st.Replayed, st.Dropped
	if info.Namespace != nil {
		info.Namespace.Replayed = st.IntentsApplied
		info.Namespace.Noop = st.IntentsNoop
		info.Namespace.Dropped = st.IntentsDropped
	}
	if err != nil {
		return info
	}
	for _, lay := range s.Layouts {
		if err := lay.Sync(t); err != nil {
			return info
		}
	}
	info.Recovered = true
	info.RecoveryTime = s.K.Now().Sub(start)
	return info
}
