package patsy

// Member-loss operations on a simulated array: the virtual-kernel
// twins of pfs.Server.KillMember / RebuildMember, so degraded and
// rebuilding cells can be measured deterministically.

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/sched"
)

// KillMember declares array member m dead (array mode only): the
// array stops routing to it and serves its share from redundancy,
// and the fault plan (when installed) makes the member's driver
// reject every request — the full member-loss fault.
func (s *System) KillMember(m int) error {
	if s.Array == nil {
		return fmt.Errorf("patsy: kill member: not in array mode")
	}
	if err := s.Array.KillMember(m); err != nil {
		return err
	}
	if s.Fault != nil {
		s.Fault.Kill(m)
	}
	return nil
}

// RebuildMember rebuilds dead member m online onto a fresh sub-layout
// over the member's disk stack — the same simulated drive standing in
// for a swapped replacement, so the rebuild's seeks and transfers are
// costed like any other traffic. Blocks until the copy completes.
func (s *System) RebuildMember(t sched.Task, m int) error {
	if s.Array == nil {
		return fmt.Errorf("patsy: rebuild member: not in array mode")
	}
	if s.Fault != nil {
		s.Fault.Revive()
	}
	size := s.Drivers[m].CapacityBlocks()
	if s.Cfg.MaxVolBlocks > 0 && size > s.Cfg.MaxVolBlocks {
		size = s.Cfg.MaxVolBlocks
	}
	part := layout.NewPartition(s.Drivers[m], m, 0, size, true)
	sub, err := s.newLayout(fmt.Sprintf("vol1.d%d", m), part)
	if err != nil {
		return err
	}
	return s.Array.Rebuild(t, sub)
}
