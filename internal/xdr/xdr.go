// Package xdr implements the XDR (RFC 1014-style) encoding the
// NFS-like front-end speaks: big-endian 32-bit words, lengths
// followed by payloads, everything padded to 4-byte alignment.
package xdr

import (
	"encoding/binary"
	"fmt"
)

// Encoder appends XDR-encoded values to a buffer.
type Encoder struct {
	buf []byte
	// Borrowed segments spliced into the stream without copying
	// (OpaqueVec): cuts[i] is the owned-buffer offset after which
	// borrowed[i] appears on the wire. blen caches their total.
	cuts     []int
	borrowed [][]byte
	blen     int
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer. With borrowed segments present
// it flattens the stream into a fresh contiguous copy; use Parts to
// transmit without that copy.
func (e *Encoder) Bytes() []byte {
	if len(e.borrowed) == 0 {
		return e.buf
	}
	out := make([]byte, 0, e.Len())
	for _, p := range e.Parts() {
		out = append(out, p...)
	}
	return out
}

// Len returns the encoded size so far, borrowed segments included.
func (e *Encoder) Len() int { return len(e.buf) + e.blen }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Uint64 encodes a 64-bit unsigned integer (XDR hyper).
func (e *Encoder) Uint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Int64 encodes a signed hyper.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool encodes an XDR boolean.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// Opaque encodes variable-length opaque data: length then bytes,
// padded to a 4-byte boundary.
func (e *Encoder) Opaque(p []byte) {
	e.Uint32(uint32(len(p)))
	e.buf = append(e.buf, p...)
	for len(e.buf)%4 != 0 {
		e.buf = append(e.buf, 0)
	}
}

// FixedOpaque encodes fixed-length opaque data (length known to both
// sides), padded.
func (e *Encoder) FixedOpaque(p []byte) {
	e.buf = append(e.buf, p...)
	for len(e.buf)%4 != 0 {
		e.buf = append(e.buf, 0)
	}
}

// String encodes an XDR string.
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// OpaqueVec encodes variable-length opaque data whose payload is
// supplied as segments borrowed from the caller (typically cache
// frames): the length header and trailing padding land in the owned
// buffer while the segments are recorded by reference, so Parts can
// hand the whole message to a vectored socket write without the
// payload ever being copied. n must equal the segments' total
// length. The caller must keep the segments resident and unmodified
// until the message has been transmitted or flattened with Bytes —
// the encode side of the OpaqueBorrow contract.
func (e *Encoder) OpaqueVec(segs [][]byte, n int) {
	e.Uint32(uint32(n))
	for _, s := range segs {
		if len(s) == 0 {
			continue
		}
		e.cuts = append(e.cuts, len(e.buf))
		e.borrowed = append(e.borrowed, s)
		e.blen += len(s)
	}
	for e.Len()%4 != 0 {
		e.buf = append(e.buf, 0)
	}
}

// Parts returns the encoded message as an ordered list of segments:
// the owned buffer split at each borrow point with the borrowed
// segments spliced in, suitable for writev. With no borrows it is
// the single owned buffer. The view aliases the encoder's state and
// goes stale if more values are encoded.
func (e *Encoder) Parts() [][]byte {
	if len(e.borrowed) == 0 {
		return [][]byte{e.buf}
	}
	parts := make([][]byte, 0, 2*len(e.borrowed)+1)
	prev := 0
	for i, cut := range e.cuts {
		if cut > prev {
			parts = append(parts, e.buf[prev:cut])
			prev = cut
		}
		parts = append(parts, e.borrowed[i])
	}
	if prev < len(e.buf) {
		parts = append(parts, e.buf[prev:])
	}
	return parts
}

// Decoder consumes XDR-encoded values from a buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) need(n int) error {
	if d.off+n > len(d.buf) {
		return fmt.Errorf("xdr: truncated: need %d bytes at %d of %d", n, d.off, len(d.buf))
	}
	return nil
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Uint64 decodes an unsigned hyper.
func (d *Decoder) Uint64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Int64 decodes a signed hyper.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes an XDR boolean.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	return v != 0, err
}

// Opaque decodes variable-length opaque data. A failed decode
// consumes nothing: the cursor stays on the length header, so a
// caller can report the error against the unconsumed stream.
func (d *Decoder) Opaque() ([]byte, error) {
	start := d.off
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	padded := (int(n) + 3) &^ 3
	if err := d.need(padded); err != nil {
		d.off = start
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += padded
	return out, nil
}

// OpaqueBorrow decodes variable-length opaque data without copying:
// the returned slice aliases the decoder's buffer. The caller must
// consume (or copy) the bytes before the underlying buffer is reused
// and must not write through the slice — it is a borrow, not a
// transfer. The NFS server's write path uses it: the payload is the
// bulk of the frame, it is copied into the block cache before the
// handler returns, and the frame buffer is never reused while the
// call executes. A failed decode consumes nothing, like Opaque.
func (d *Decoder) OpaqueBorrow() ([]byte, error) {
	start := d.off
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	padded := (int(n) + 3) &^ 3
	if err := d.need(padded); err != nil {
		d.off = start
		return nil, err
	}
	out := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += padded
	return out, nil
}

// FixedOpaque decodes n fixed bytes plus padding.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	padded := (n + 3) &^ 3
	if err := d.need(padded); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += padded
	return out, nil
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}
