// Package xdr implements the XDR (RFC 1014-style) encoding the
// NFS-like front-end speaks: big-endian 32-bit words, lengths
// followed by payloads, everything padded to 4-byte alignment.
package xdr

import (
	"encoding/binary"
	"fmt"
)

// Encoder appends XDR-encoded values to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded size so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Uint64 encodes a 64-bit unsigned integer (XDR hyper).
func (e *Encoder) Uint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Int64 encodes a signed hyper.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool encodes an XDR boolean.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// Opaque encodes variable-length opaque data: length then bytes,
// padded to a 4-byte boundary.
func (e *Encoder) Opaque(p []byte) {
	e.Uint32(uint32(len(p)))
	e.buf = append(e.buf, p...)
	for len(e.buf)%4 != 0 {
		e.buf = append(e.buf, 0)
	}
}

// FixedOpaque encodes fixed-length opaque data (length known to both
// sides), padded.
func (e *Encoder) FixedOpaque(p []byte) {
	e.buf = append(e.buf, p...)
	for len(e.buf)%4 != 0 {
		e.buf = append(e.buf, 0)
	}
}

// String encodes an XDR string.
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// Decoder consumes XDR-encoded values from a buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) need(n int) error {
	if d.off+n > len(d.buf) {
		return fmt.Errorf("xdr: truncated: need %d bytes at %d of %d", n, d.off, len(d.buf))
	}
	return nil
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Uint64 decodes an unsigned hyper.
func (d *Decoder) Uint64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Int64 decodes a signed hyper.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes an XDR boolean.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	return v != 0, err
}

// Opaque decodes variable-length opaque data. A failed decode
// consumes nothing: the cursor stays on the length header, so a
// caller can report the error against the unconsumed stream.
func (d *Decoder) Opaque() ([]byte, error) {
	start := d.off
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	padded := (int(n) + 3) &^ 3
	if err := d.need(padded); err != nil {
		d.off = start
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += padded
	return out, nil
}

// OpaqueBorrow decodes variable-length opaque data without copying:
// the returned slice aliases the decoder's buffer. The caller must
// consume (or copy) the bytes before the underlying buffer is reused
// and must not write through the slice — it is a borrow, not a
// transfer. The NFS server's write path uses it: the payload is the
// bulk of the frame, it is copied into the block cache before the
// handler returns, and the frame buffer is never reused while the
// call executes. A failed decode consumes nothing, like Opaque.
func (d *Decoder) OpaqueBorrow() ([]byte, error) {
	start := d.off
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	padded := (int(n) + 3) &^ 3
	if err := d.need(padded); err != nil {
		d.off = start
		return nil, err
	}
	out := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += padded
	return out, nil
}

// FixedOpaque decodes n fixed bytes plus padding.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	padded := (n + 3) &^ 3
	if err := d.need(padded); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += padded
	return out, nil
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}
