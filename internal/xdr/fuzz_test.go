package xdr

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// TestDecodeFailureTable truncates a valid stream at every length
// below each scalar's requirement: every decode must fail cleanly,
// never panic or return garbage silently.
func TestDecodeFailureTable(t *testing.T) {
	cases := []struct {
		name   string
		need   int
		decode func(*Decoder) error
	}{
		{"uint32", 4, func(d *Decoder) error { _, err := d.Uint32(); return err }},
		{"uint64", 8, func(d *Decoder) error { _, err := d.Uint64(); return err }},
		{"int64", 8, func(d *Decoder) error { _, err := d.Int64(); return err }},
		{"bool", 4, func(d *Decoder) error { _, err := d.Bool(); return err }},
		{"opaque-header", 4, func(d *Decoder) error { _, err := d.Opaque(); return err }},
		{"string-header", 4, func(d *Decoder) error { _, err := d.String(); return err }},
		{"fixed-5", 8, func(d *Decoder) error { _, err := d.FixedOpaque(5); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for n := 0; n < tc.need; n++ {
				d := NewDecoder(make([]byte, n))
				if err := tc.decode(d); err == nil {
					t.Fatalf("%d of %d bytes accepted", n, tc.need)
				}
			}
			d := NewDecoder(make([]byte, tc.need))
			if err := tc.decode(d); err != nil {
				t.Fatalf("exact size rejected: %v", err)
			}
			if d.Remaining() != 0 {
				t.Fatalf("consumed %d of %d bytes", tc.need-d.Remaining(), tc.need)
			}
		})
	}
}

// TestOpaqueLengthLies covers opaque headers whose claimed length
// exceeds the data, including lengths whose padded form would
// overflow smaller integer types. A failed decode must also leave
// the cursor on the header, not past it.
func TestOpaqueLengthLies(t *testing.T) {
	for _, claim := range []uint32{8, 1000, 1 << 30, math.MaxUint32 - 3, math.MaxUint32} {
		e := NewEncoder()
		e.Uint32(claim)
		e.FixedOpaque([]byte{1, 2, 3}) // 4 padded bytes, fewer than claimed
		d := NewDecoder(e.Bytes())
		if _, err := d.Opaque(); err == nil {
			t.Fatalf("claimed length %d accepted with 4 bytes present", claim)
		}
		if got, err := d.Uint32(); err != nil || got != claim {
			t.Fatalf("failed opaque moved the cursor: %d %v", got, err)
		}
	}
}

// TestDecoderPartialConsumption: a failed decode must not advance
// the cursor past valid data that follows.
func TestDecoderTrailingDataAfterError(t *testing.T) {
	e := NewEncoder()
	e.Uint32(42)
	d := NewDecoder(e.Bytes())
	if _, err := d.Uint64(); err == nil { // needs 8, only 4 present
		t.Fatal("short uint64 accepted")
	}
	if v, err := d.Uint32(); err != nil || v != 42 {
		t.Fatalf("cursor moved by failed decode: %d %v", v, err)
	}
}

// TestMixedSequenceRoundTrip is the property test of the whole
// codec: arbitrary typed sequences encode then decode to the same
// values with nothing left over.
func TestMixedSequenceRoundTrip(t *testing.T) {
	prop := func(a uint32, b uint64, c int64, fl bool, op []byte, s string, fx []byte) bool {
		if len(fx) > 64 {
			fx = fx[:64]
		}
		e := NewEncoder()
		e.Uint32(a)
		e.Opaque(op)
		e.Int64(c)
		e.String(s)
		e.Bool(fl)
		e.FixedOpaque(fx)
		e.Uint64(b)
		if e.Len()%4 != 0 {
			return false
		}
		d := NewDecoder(e.Bytes())
		ga, err := d.Uint32()
		if err != nil || ga != a {
			return false
		}
		gop, err := d.Opaque()
		if err != nil || !bytes.Equal(gop, op) {
			return false
		}
		gc, err := d.Int64()
		if err != nil || gc != c {
			return false
		}
		gs, err := d.String()
		if err != nil || gs != s {
			return false
		}
		gfl, err := d.Bool()
		if err != nil || gfl != fl {
			return false
		}
		gfx, err := d.FixedOpaque(len(fx))
		if err != nil || !bytes.Equal(gfx, fx) {
			return false
		}
		gb, err := d.Uint64()
		if err != nil || gb != b {
			return false
		}
		return d.Remaining() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecoder drains arbitrary bytes through every decoder method in
// a fixed rotation: decoding must either fail cleanly or consume
// 4-byte-aligned chunks, and never panic.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder()
	e.Uint32(7)
	e.String("seed corpus")
	e.Uint64(1 << 40)
	e.Opaque([]byte{9, 9, 9})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for i := 0; d.Remaining() > 0; i++ {
			before := d.Remaining()
			var err error
			switch i % 6 {
			case 0:
				_, err = d.Uint32()
			case 1:
				_, err = d.Opaque()
			case 2:
				_, err = d.Uint64()
			case 3:
				_, err = d.String()
			case 4:
				_, err = d.Bool()
			case 5:
				_, err = d.FixedOpaque(int(uint(before) % 16))
			}
			if err != nil {
				if d.Remaining() != before {
					t.Fatalf("failed decode consumed %d bytes", before-d.Remaining())
				}
				return
			}
			consumed := before - d.Remaining()
			if consumed%4 != 0 {
				t.Fatalf("unaligned consumption of %d bytes", consumed)
			}
			if consumed == 0 && i%6 != 5 { // only FixedOpaque(0) may consume nothing
				t.Fatal("successful decode consumed nothing")
			}
		}
	})
}

// FuzzStringRoundTrip: any byte string survives String encode/decode
// with correct padding.
func FuzzStringRoundTrip(f *testing.F) {
	f.Add("")
	f.Add("abc")
	f.Add("padded to boundary!")
	f.Fuzz(func(t *testing.T, s string) {
		e := NewEncoder()
		e.String(s)
		if e.Len()%4 != 0 {
			t.Fatalf("unaligned encoding of %q", s)
		}
		d := NewDecoder(e.Bytes())
		got, err := d.String()
		if err != nil || got != s {
			t.Fatalf("round trip of %q: %q %v", s, got, err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("%d bytes left over", d.Remaining())
		}
	})
}
