package xdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestOpaqueBorrowAliasing pins the borrow variant's contract: the
// returned slice aliases the decoder's buffer (no copy), its
// capacity is clipped so appends cannot clobber the following
// fields, decoding continues correctly past the padding, and a
// truncated buffer consumes nothing — exactly like Opaque.
func TestOpaqueBorrowAliasing(t *testing.T) {
	e := NewEncoder()
	e.Opaque([]byte("hello!!")) // 7 bytes + 1 pad
	e.Uint32(0xDEADBEEF)
	buf := e.Bytes()

	d := NewDecoder(buf)
	got, err := d.OpaqueBorrow()
	if err != nil {
		t.Fatalf("OpaqueBorrow: %v", err)
	}
	if !bytes.Equal(got, []byte("hello!!")) {
		t.Fatalf("borrowed bytes = %q", got)
	}
	// No copy: the slice must point into the decoder's buffer.
	if &got[0] != &buf[4] {
		t.Fatal("OpaqueBorrow copied; the slice must alias the buffer")
	}
	// The borrow is capacity-clipped: an append must reallocate, not
	// overwrite the padding/next field in place.
	if cap(got) != len(got) {
		t.Fatalf("cap = %d, want %d (clipped to the payload)", cap(got), len(got))
	}
	next, err := d.Uint32()
	if err != nil || next != 0xDEADBEEF {
		t.Fatalf("field after borrow = %x, %v", next, err)
	}
	// Writes through the borrow are visible in the buffer — which is
	// why the contract forbids them; pin the aliasing direction too.
	got[0] = 'H'
	if buf[4] != 'H' {
		t.Fatal("borrow stopped aliasing the buffer")
	}

	// Truncated: nothing consumed, same as Opaque.
	d2 := NewDecoder(buf[:6])
	if _, err := d2.OpaqueBorrow(); err == nil {
		t.Fatal("truncated borrow succeeded")
	}
	if d2.Remaining() != 6 {
		t.Fatalf("failed borrow consumed bytes: %d remaining", d2.Remaining())
	}
}

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint32(0xDEADBEEF)
	e.Uint64(0x0123456789ABCDEF)
	e.Int64(-42)
	e.Bool(true)
	e.Bool(false)
	d := NewDecoder(e.Bytes())
	if v, _ := d.Uint32(); v != 0xDEADBEEF {
		t.Fatalf("uint32 %#x", v)
	}
	if v, _ := d.Uint64(); v != 0x0123456789ABCDEF {
		t.Fatalf("uint64 %#x", v)
	}
	if v, _ := d.Int64(); v != -42 {
		t.Fatalf("int64 %d", v)
	}
	if v, _ := d.Bool(); !v {
		t.Fatal("bool true")
	}
	if v, _ := d.Bool(); v {
		t.Fatal("bool false")
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining %d", d.Remaining())
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n < 9; n++ {
		e := NewEncoder()
		payload := bytes.Repeat([]byte{7}, n)
		e.Opaque(payload)
		e.Uint32(99) // must land on aligned boundary
		if e.Len()%4 != 0 {
			t.Fatalf("n=%d: unaligned length %d", n, e.Len())
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque()
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: opaque %v %v", n, got, err)
		}
		if v, _ := d.Uint32(); v != 99 {
			t.Fatalf("n=%d: trailer %d", n, v)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	prop := func(s string) bool {
		e := NewEncoder()
		e.String(s)
		e.String("sentinel")
		d := NewDecoder(e.Bytes())
		got, err := d.String()
		if err != nil || got != s {
			return false
		}
		tail, err := d.String()
		return err == nil && tail == "sentinel"
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedOpaque(t *testing.T) {
	e := NewEncoder()
	e.FixedOpaque([]byte{1, 2, 3})
	if e.Len() != 4 {
		t.Fatalf("fixed(3) length %d", e.Len())
	}
	d := NewDecoder(e.Bytes())
	got, err := d.FixedOpaque(3)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("fixed round trip: %v %v", got, err)
	}
}

func TestTruncatedDecodeErrors(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); err == nil {
		t.Fatal("short uint32 accepted")
	}
	e := NewEncoder()
	e.Uint32(1000) // claims 1000 bytes follow
	d = NewDecoder(e.Bytes())
	if _, err := d.Opaque(); err == nil {
		t.Fatal("lying opaque length accepted")
	}
}
