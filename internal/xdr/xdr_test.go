package xdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint32(0xDEADBEEF)
	e.Uint64(0x0123456789ABCDEF)
	e.Int64(-42)
	e.Bool(true)
	e.Bool(false)
	d := NewDecoder(e.Bytes())
	if v, _ := d.Uint32(); v != 0xDEADBEEF {
		t.Fatalf("uint32 %#x", v)
	}
	if v, _ := d.Uint64(); v != 0x0123456789ABCDEF {
		t.Fatalf("uint64 %#x", v)
	}
	if v, _ := d.Int64(); v != -42 {
		t.Fatalf("int64 %d", v)
	}
	if v, _ := d.Bool(); !v {
		t.Fatal("bool true")
	}
	if v, _ := d.Bool(); v {
		t.Fatal("bool false")
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining %d", d.Remaining())
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n < 9; n++ {
		e := NewEncoder()
		payload := bytes.Repeat([]byte{7}, n)
		e.Opaque(payload)
		e.Uint32(99) // must land on aligned boundary
		if e.Len()%4 != 0 {
			t.Fatalf("n=%d: unaligned length %d", n, e.Len())
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque()
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: opaque %v %v", n, got, err)
		}
		if v, _ := d.Uint32(); v != 99 {
			t.Fatalf("n=%d: trailer %d", n, v)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	prop := func(s string) bool {
		e := NewEncoder()
		e.String(s)
		e.String("sentinel")
		d := NewDecoder(e.Bytes())
		got, err := d.String()
		if err != nil || got != s {
			return false
		}
		tail, err := d.String()
		return err == nil && tail == "sentinel"
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedOpaque(t *testing.T) {
	e := NewEncoder()
	e.FixedOpaque([]byte{1, 2, 3})
	if e.Len() != 4 {
		t.Fatalf("fixed(3) length %d", e.Len())
	}
	d := NewDecoder(e.Bytes())
	got, err := d.FixedOpaque(3)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("fixed round trip: %v %v", got, err)
	}
}

func TestTruncatedDecodeErrors(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); err == nil {
		t.Fatal("short uint32 accepted")
	}
	e := NewEncoder()
	e.Uint32(1000) // claims 1000 bytes follow
	d = NewDecoder(e.Bytes())
	if _, err := d.Opaque(); err == nil {
		t.Fatal("lying opaque length accepted")
	}
}
