// Package trace implements the simulator's work-load side: the
// file-system trace record model, codecs in the style of the Sprite
// (binary) and Coda (text) trace distributions, a probabilistic
// work-load generator with per-trace profiles calibrated to the
// published characterizations of the Sprite traces, and the replayer
// that maps records onto the abstract client interface.
//
// Real trace files omit detail (recording everything would perturb
// the traced system), so the replayer synthesizes what is missing,
// exactly as the paper describes: read and write times are placed
// equidistant between their open and close, and files that predate
// the trace get sticky random disk locations via the layout's
// educated guess.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// Op is a traced file-system operation.
type Op uint8

const (
	OpOpen Op = iota + 1
	OpClose
	OpRead
	OpWrite
	OpCreate
	OpDelete
	OpTruncate
	OpStat
	OpMkdir
	OpRmdir
	OpRename
)

var opNames = map[Op]string{
	OpOpen: "open", OpClose: "close", OpRead: "read", OpWrite: "write",
	OpCreate: "create", OpDelete: "delete", OpTruncate: "truncate",
	OpStat: "stat", OpMkdir: "mkdir", OpRmdir: "rmdir", OpRename: "rename",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// opFromName inverts String for the text codec.
func opFromName(s string) (Op, bool) {
	for o, n := range opNames {
		if n == s {
			return o, true
		}
	}
	return 0, false
}

// Flags on a record.
const (
	// FlagPreexisting marks a file assumed to exist before the
	// trace started; the simulator synthesizes its initial layout.
	FlagPreexisting uint16 = 1 << iota
)

// Record is one traced operation. T is the offset from trace start;
// zero T on a read or write means "unknown, synthesize at replay",
// as real traces record session boundaries more reliably than the
// I/O within them.
type Record struct {
	T      time.Duration
	Client uint16
	Vol    core.VolumeID
	Op     Op
	Path   string
	Path2  string // rename target
	Off    int64
	Len    int64
	Size   int64 // file size at open (drives preexisting placement)
	Flags  uint16
}

// Format encodes and decodes record streams.
type Format interface {
	Name() string
	Write(w io.Writer, recs []Record) error
	Read(r io.Reader) ([]Record, error)
}

// NewFormat returns the named codec: "sprite" (binary) or "coda"
// (text).
func NewFormat(name string) (Format, bool) {
	switch name {
	case "", "sprite":
		return SpriteFormat{}, true
	case "coda":
		return CodaFormat{}, true
	}
	return nil, false
}

// SpriteFormat is the compact binary codec, in the spirit of the
// Sprite trace distribution.
type SpriteFormat struct{}

// Name returns "sprite".
func (SpriteFormat) Name() string { return "sprite" }

const spriteMagic = 0x53545231 // "STR1"

// Write encodes recs.
func (SpriteFormat) Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], spriteMagic)
	le.PutUint64(hdr[4:], uint64(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [44]byte
	for _, r := range recs {
		le.PutUint64(buf[0:], uint64(r.T))
		le.PutUint16(buf[8:], r.Client)
		le.PutUint16(buf[10:], uint16(r.Vol))
		buf[12] = byte(r.Op)
		le.PutUint16(buf[14:], r.Flags)
		le.PutUint64(buf[16:], uint64(r.Off))
		le.PutUint64(buf[24:], uint64(r.Len))
		le.PutUint64(buf[32:], uint64(r.Size))
		le.PutUint16(buf[40:], uint16(len(r.Path)))
		le.PutUint16(buf[42:], uint16(len(r.Path2)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(r.Path); err != nil {
			return err
		}
		if _, err := bw.WriteString(r.Path2); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a stream written by Write.
func (SpriteFormat) Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != spriteMagic {
		return nil, fmt.Errorf("trace: bad sprite magic %#x", le.Uint32(hdr[0:]))
	}
	n := int(le.Uint64(hdr[4:]))
	recs := make([]Record, 0, n)
	var buf [44]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		rec := Record{
			T:      time.Duration(le.Uint64(buf[0:])),
			Client: le.Uint16(buf[8:]),
			Vol:    core.VolumeID(le.Uint16(buf[10:])),
			Op:     Op(buf[12]),
			Flags:  le.Uint16(buf[14:]),
			Off:    int64(le.Uint64(buf[16:])),
			Len:    int64(le.Uint64(buf[24:])),
			Size:   int64(le.Uint64(buf[32:])),
		}
		pl := int(le.Uint16(buf[40:]))
		p2l := int(le.Uint16(buf[42:]))
		pb := make([]byte, pl+p2l)
		if _, err := io.ReadFull(br, pb); err != nil {
			return nil, err
		}
		rec.Path = string(pb[:pl])
		rec.Path2 = string(pb[pl:])
		recs = append(recs, rec)
	}
	return recs, nil
}

// CodaFormat is a line-oriented text codec in the style of the Coda
// trace tools: one op per line,
//
//	<usec> <client> <vol> <op> <path> [<off> <len> <size> <flags> [<path2>]]
type CodaFormat struct{}

// Name returns "coda".
func (CodaFormat) Name() string { return "coda" }

// Write encodes recs as text.
func (CodaFormat) Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		fmt.Fprintf(bw, "%d %d %d %s %s %d %d %d %d",
			r.T.Microseconds(), r.Client, r.Vol, r.Op, r.Path,
			r.Off, r.Len, r.Size, r.Flags)
		if r.Path2 != "" {
			fmt.Fprintf(bw, " %s", r.Path2)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses the text form.
func (CodaFormat) Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) < 9 {
			return nil, fmt.Errorf("trace: coda line %d: %d fields", line, len(f))
		}
		usec, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: coda line %d: %v", line, err)
		}
		client, _ := strconv.ParseUint(f[1], 10, 16)
		vol, _ := strconv.ParseUint(f[2], 10, 16)
		op, ok := opFromName(f[3])
		if !ok {
			return nil, fmt.Errorf("trace: coda line %d: unknown op %q", line, f[3])
		}
		off, _ := strconv.ParseInt(f[5], 10, 64)
		ln, _ := strconv.ParseInt(f[6], 10, 64)
		size, _ := strconv.ParseInt(f[7], 10, 64)
		flags, _ := strconv.ParseUint(f[8], 10, 16)
		rec := Record{
			T:      time.Duration(usec) * time.Microsecond,
			Client: uint16(client),
			Vol:    core.VolumeID(vol),
			Op:     op,
			Path:   f[4],
			Off:    off,
			Len:    ln,
			Size:   size,
			Flags:  uint16(flags),
		}
		if len(f) > 9 {
			rec.Path2 = f[9]
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}
