package trace

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fsys"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
)

func sampleRecords() []Record {
	return []Record{
		{T: 0, Client: 1, Vol: 2, Op: OpOpen, Path: "/a/b", Size: 8192, Flags: FlagPreexisting},
		{Client: 1, Vol: 2, Op: OpRead, Path: "/a/b", Off: 0, Len: 4096},
		{Client: 1, Vol: 2, Op: OpRead, Path: "/a/b", Off: 4096, Len: 4096},
		{T: 40 * time.Millisecond, Client: 1, Vol: 2, Op: OpClose, Path: "/a/b"},
		{T: 50 * time.Millisecond, Client: 2, Vol: 1, Op: OpRename, Path: "/x", Path2: "/y"},
		{T: 60 * time.Millisecond, Client: 2, Vol: 1, Op: OpStat, Path: "/y"},
	}
}

func TestSpriteRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	f := SpriteFormat{}
	if err := f.Write(&buf, recs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := f.Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("count %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestCodaRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	f := CodaFormat{}
	if err := f.Write(&buf, recs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := f.Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("count %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		// Text codec keeps microsecond resolution.
		want := recs[i]
		want.T = want.T.Truncate(time.Microsecond)
		if got[i] != want {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want)
		}
	}
}

func TestCodaSkipsComments(t *testing.T) {
	in := "# comment\n\n0 1 1 stat /f 0 0 0 0\n"
	got, err := (CodaFormat{}).Read(bytes.NewBufferString(in))
	if err != nil || len(got) != 1 || got[0].Op != OpStat {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestSpriteRoundTripProperty(t *testing.T) {
	f := SpriteFormat{}
	prop := func(ts []uint32, ops []uint8) bool {
		var recs []Record
		for i := range ts {
			op := OpStat
			if len(ops) > 0 {
				op = Op(1 + ops[i%len(ops)]%11)
			}
			recs = append(recs, Record{
				T:      time.Duration(ts[i]),
				Client: uint16(i),
				Vol:    core.VolumeID(i % 14),
				Op:     op,
				Path:   "/p",
				Off:    int64(ts[i]) * 3,
				Len:    int64(ts[i]) % 65536,
			})
		}
		var buf bytes.Buffer
		if err := f.Write(&buf, recs); err != nil {
			return false
		}
		got, err := f.Read(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestNewFormatNames(t *testing.T) {
	for _, n := range []string{"", "sprite", "coda"} {
		if _, ok := NewFormat(n); !ok {
			t.Fatalf("NewFormat(%q) failed", n)
		}
	}
	if _, ok := NewFormat("bogus"); ok {
		t.Fatal("bogus format accepted")
	}
}

// TestZipfExponentSkew checks the configurable Zipf popularity: a
// steeper exponent concentrates operations on fewer distinct paths,
// and the knob stays deterministic in the seed.
func TestZipfExponentSkew(t *testing.T) {
	distinct := func(s float64) int {
		p := Profiles()["1a"]
		p.ZipfS = s
		recs := Generate(p, 42, 5*time.Minute)
		if len(recs) == 0 {
			t.Fatal("empty trace")
		}
		paths := map[string]bool{}
		for _, r := range recs {
			if r.Op == OpOpen || r.Op == OpStat {
				paths[r.Path] = true
			}
		}
		return len(paths)
	}
	flat, steep := distinct(1.05), distinct(3.5)
	if steep >= flat {
		t.Fatalf("zipf 3.5 touches %d distinct files, zipf 1.05 %d: steeper should concentrate", steep, flat)
	}
	// Deterministic: same seed, same stream.
	p := Profiles()["1a"]
	p.ZipfS = 2.0
	a := Generate(p, 7, 2*time.Minute)
	b := Generate(p, 7, 2*time.Minute)
	if len(a) != len(b) {
		t.Fatalf("zipf trace not deterministic: %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zipf trace record %d differs", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profiles()["1a"]
	a := Generate(p, 42, 5*time.Minute)
	b := Generate(p, 42, 5*time.Minute)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := Generate(p, 43, 5*time.Minute)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestProfilesCoverAllSeven(t *testing.T) {
	ps := Profiles()
	for _, name := range ProfileNames() {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		if p.Name != name {
			t.Fatalf("profile %s misnamed %q", name, p.Name)
		}
		recs := Generate(p, 7, 2*time.Minute)
		if len(recs) == 0 {
			t.Fatalf("profile %s generated nothing", name)
		}
		sum := Summary(recs)
		if sum[OpOpen]+sum[OpCreate] == 0 || sum[OpClose] == 0 {
			t.Fatalf("profile %s has no sessions: %v", name, sum)
		}
	}
}

func TestTrace1bHasLargeWrites(t *testing.T) {
	recs := Generate(Profiles()["1b"], 11, 5*time.Minute)
	var bigWrites int
	for _, r := range recs {
		if r.Op == OpWrite && r.Len >= 8*core.BlockSize {
			bigWrites++
		}
	}
	if bigWrites < 50 {
		t.Fatalf("trace 1b large writes = %d, want many", bigWrites)
	}
}

func TestTrace5HasStats(t *testing.T) {
	recs := Generate(Profiles()["5"], 11, 5*time.Minute)
	sum := Summary(recs)
	if sum[OpStat] == 0 {
		t.Fatal("trace 5 has no stat traffic")
	}
	if sum[OpWrite] == 0 {
		t.Fatal("trace 5 has no writes")
	}
}

func TestOverwriteFactorProducesDeletes(t *testing.T) {
	recs := Generate(Profiles()["3"], 13, 10*time.Minute)
	sum := Summary(recs)
	if sum[OpDelete] == 0 {
		t.Fatal("compile trace produced no deletes")
	}
	frac := float64(sum[OpDelete]+sum[OpTruncate]) / float64(sum[OpCreate]+sum[OpOpen])
	if frac < 0.1 {
		t.Fatalf("overwrite factor too low: %.2f", frac)
	}
}

func TestSynthesizeTimesEquidistant(t *testing.T) {
	recs := []Record{
		{T: 100 * time.Millisecond, Op: OpOpen, Path: "/f"},
		{Op: OpRead, Path: "/f"},
		{Op: OpRead, Path: "/f"},
		{Op: OpRead, Path: "/f"},
		{T: 500 * time.Millisecond, Op: OpClose, Path: "/f"},
	}
	out := synthesizeTimes(recs)
	want := []time.Duration{200, 300, 400}
	for i, w := range want {
		if out[i+1].T != w*time.Millisecond {
			t.Fatalf("read %d at %v, want %vms", i, out[i+1].T, w)
		}
	}
}

func TestSynthesizeLeavesRecordedTimes(t *testing.T) {
	recs := []Record{
		{T: 100 * time.Millisecond, Op: OpOpen, Path: "/f"},
		{T: 150 * time.Millisecond, Op: OpRead, Path: "/f"},
		{T: 500 * time.Millisecond, Op: OpClose, Path: "/f"},
	}
	out := synthesizeTimes(recs)
	if out[1].T != 150*time.Millisecond {
		t.Fatalf("recorded time overwritten: %v", out[1].T)
	}
}

// replayRig builds a minimal simulated FS for replay tests. The
// returned mount function must be called from a kernel task before
// replaying.
func replayRig(t *testing.T, seed int64, vols int) (*sched.VKernel, *fsys.FS, func(tk sched.Task)) {
	t.Helper()
	k := sched.NewVirtual(seed)
	store := fsys.NewStore()
	c := cache.New(k, cache.Config{Blocks: 512, Flush: cache.UPS(), Simulated: true}, store)
	fs := fsys.New(k, c, core.DefaultSimMover())
	store.Bind(fs)
	c.Start()
	mount := func(tk sched.Task) {
		for v := 1; v <= vols; v++ {
			drv := nullDrv{k, 1 << 20}
			part := layout.NewPartition(drv, v, 0, 1<<20, true)
			lay := lfs.New(k, "vol", part, lfs.Config{SegBlocks: 64})
			if err := lay.Format(tk); err != nil {
				t.Errorf("format: %v", err)
			}
			if err := lay.Mount(tk); err != nil {
				t.Errorf("mount: %v", err)
			}
			if _, err := fs.AddVolume(tk, core.VolumeID(v), lay, true); err != nil {
				t.Errorf("AddVolume: %v", err)
			}
		}
	}
	return k, fs, mount
}

func TestReplaySmallTrace(t *testing.T) {
	k, fs, mount := replayRig(t, 21, 14)
	recs := Generate(Profiles()["1a"], 5, 2*time.Minute)
	rep := NewReplayer(fs, recs)
	k.Go("driver", func(tk sched.Task) {
		mount(tk)
		rep.Run(tk)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("replay: %v", err)
	}
	res := rep.Result()
	if res.Ops == 0 {
		t.Fatal("no operations measured")
	}
	if res.Errors > res.Ops/20 {
		t.Fatalf("errors %d out of %d ops", res.Errors, res.Ops)
	}
	if res.Overall.Mean() <= 0 {
		t.Fatal("zero mean latency")
	}
	if len(res.PerOp) < 4 {
		t.Fatalf("only %d op classes measured", len(res.PerOp))
	}
}

func TestReplayDeterministic(t *testing.T) {
	runOnce := func() (int, time.Duration) {
		k, fs, mount := replayRig(t, 33, 3)
		p := Profiles()["3"]
		p.Volumes = 3
		recs := Generate(p, 9, time.Minute)
		rep := NewReplayer(fs, recs)
		k.Go("driver", func(tk sched.Task) {
			mount(tk)
			rep.Run(tk)
			k.Stop()
		})
		if err := k.Run(); err != nil {
			t.Fatalf("replay: %v", err)
		}
		return rep.Result().Ops, rep.Result().Overall.Mean()
	}
	ops1, mean1 := runOnce()
	ops2, mean2 := runOnce()
	if ops1 != ops2 || mean1 != mean2 {
		t.Fatalf("nondeterministic replay: (%d,%v) vs (%d,%v)", ops1, mean1, ops2, mean2)
	}
}

type nullDrv struct {
	k      sched.Kernel
	blocks int64
}

func (d nullDrv) Name() string                           { return "null" }
func (d nullDrv) Submit(t sched.Task, r *device.Request) {}
func (d nullDrv) Wait(t sched.Task, r *device.Request)   {}
func (d nullDrv) Do(t sched.Task, r *device.Request) error {
	t.Sleep(5 * time.Millisecond)
	return nil
}
func (d nullDrv) QueueLen() int                    { return 0 }
func (d nullDrv) CapacityBlocks() int64            { return d.blocks }
func (d nullDrv) DriverStats() *device.DriverStats { return nil }
func (d nullDrv) SetInjector(device.Interceptor)   {}
func (d nullDrv) Close() error                     { return nil }
