package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
)

// Profile parameterizes the probabilistic work-load generator — the
// "component that hand crafts work loads using probabilistic means"
// the paper proposes. Each of the seven Sprite replay traces gets a
// profile tuned to its published character: trace 1b has many large
// parallel writes, trace 5 mixes large writes with a fair amount of
// stat and read traffic, and all Unix-style traces share the high
// overwrite factor early in file lifetimes.
type Profile struct {
	Name     string
	Clients  int
	Duration time.Duration
	// ThinkMean is the mean idle time between a client's sessions.
	ThinkMean time.Duration
	// Session mixture.
	PWrite float64 // write session probability (else read)
	PStat  float64 // probability an "op" is a lone stat
	// Overwrite behaviour: written files are deleted or truncated
	// after an exponential delay with the given mean.
	PDeleteAfter    float64
	PTruncate       float64 // fraction of those that truncate instead
	DeleteDelayMean time.Duration
	// File population and sizes (blocks of 4 KB).
	FileBlocksMean   int
	FileBlocksMax    int
	IOChunkBlocks    int
	PreexistingFiles int // initial population per volume
	// Volume topology: traffic skews toward the first HotVolumes.
	Volumes    int
	HotVolumes int
	HotWeight  float64
	// ZipfS is the Zipf exponent of file popularity (> 1; 0 means
	// the default 1.2). Larger values concentrate traffic on fewer
	// hot files — the knob that stresses hot/cold placement across
	// a volume array.
	ZipfS float64
	// Large writers model trace 1b/5: clients that continuously
	// create files of LargeWriteBlocks.
	LargeWriters     int
	LargeWriteBlocks int
}

// Profiles returns the seven replay profiles (1a, 1b, 2a, 2b, 3, 4,
// 5), 2 hours each at full scale.
func Profiles() map[string]Profile {
	// Calibration: Unix files die young (Baker/Ousterhout), so most
	// written bytes are deleted or truncated before long — that is
	// the overwrite factor write-saving exploits. The two hot
	// volumes concentrate traffic, as in the replayed server.
	base := Profile{
		Clients:          60,
		Duration:         2 * time.Hour,
		ThinkMean:        3500 * time.Millisecond,
		PWrite:           0.30,
		PStat:            0.20,
		PDeleteAfter:     0.80,
		PTruncate:        0.15,
		DeleteDelayMean:  45 * time.Second,
		FileBlocksMean:   5,
		FileBlocksMax:    64,
		IOChunkBlocks:    2,
		PreexistingFiles: 200,
		Volumes:          14,
		HotVolumes:       2,
		HotWeight:        0.65,
	}
	p := map[string]Profile{}

	t1a := base
	t1a.Name = "1a"
	p["1a"] = t1a

	// 1b: many large parallel writes in bursts that dwarf a 4 MB
	// NVRAM, but whose bytes mostly die young, so a big volatile
	// cache absorbs them.
	t1b := base
	t1b.Name = "1b"
	t1b.Clients = 40
	t1b.LargeWriters = 6
	t1b.LargeWriteBlocks = 192 // 768 KB files; 6 in parallel swamp 4 MB NVRAM
	t1b.PDeleteAfter = 0.90
	t1b.DeleteDelayMean = 30 * time.Second
	p["1b"] = t1b

	t2a := base
	t2a.Name = "2a"
	t2a.Clients = 70
	t2a.PWrite = 0.15
	t2a.ThinkMean = 3 * time.Second
	p["2a"] = t2a

	t2b := base
	t2b.Name = "2b"
	t2b.Clients = 70
	t2b.PWrite = 0.20
	t2b.ThinkMean = 3 * time.Second
	p["2b"] = t2b

	// 3: compile-like churn — many small short-lived files.
	t3 := base
	t3.Name = "3"
	t3.Clients = 30
	t3.ThinkMean = 1500 * time.Millisecond
	t3.PWrite = 0.45
	t3.PStat = 0.35
	t3.PDeleteAfter = 0.85
	t3.DeleteDelayMean = 20 * time.Second
	t3.FileBlocksMean = 2
	t3.FileBlocksMax = 16
	p["3"] = t3

	t4 := base
	t4.Name = "4"
	t4.ThinkMean = 4 * time.Second
	t4.FileBlocksMean = 8
	p["4"] = t4

	// 5: large streams that mostly stay, plus a fair amount of stat
	// and read traffic — the cache-clutter pathology.
	t5 := base
	t5.Name = "5"
	t5.Clients = 30
	t5.PWrite = 0.25
	t5.PStat = 0.30
	t5.LargeWriters = 3
	t5.LargeWriteBlocks = 384 // 1.5 MB streams
	t5.ThinkMean = 4 * time.Second
	t5.PDeleteAfter = 0.40 // most of the stream data survives
	t5.DeleteDelayMean = 60 * time.Second
	p["5"] = t5

	return p
}

// ProfileNames lists the profiles in order.
func ProfileNames() []string { return []string{"1a", "1b", "2a", "2b", "3", "4", "5"} }

// genFile is a generator-side file.
type genFile struct {
	path   string
	vol    core.VolumeID
	blocks int
	fresh  bool // created during the trace (not preexisting)
}

// pendingDelete schedules the overwrite/delete behaviour.
type pendingDelete struct {
	at       time.Duration
	f        *genFile
	truncate bool
}

// Generate builds the record stream for a profile, deterministic in
// seed. The duration overrides the profile's when positive.
func Generate(p Profile, seed int64, duration time.Duration) []Record {
	if duration <= 0 {
		duration = p.Duration
	}
	rng := rand.New(rand.NewSource(seed))
	g := &generator{p: p, rng: rng, horizon: duration}
	g.buildPopulation()
	var all []Record
	totalClients := p.Clients + p.LargeWriters
	for c := 0; c < totalClients; c++ {
		all = append(all, g.clientStream(uint16(c), c >= p.Clients)...)
	}
	return all
}

type generator struct {
	p       Profile
	rng     *rand.Rand
	horizon time.Duration
	files   []*genFile // population across volumes
	zipf    *rand.Zipf
	nextID  int
}

func (g *generator) buildPopulation() {
	vols := g.p.Volumes
	if vols <= 0 {
		vols = 1
	}
	for v := 0; v < vols; v++ {
		for i := 0; i < g.p.PreexistingFiles; i++ {
			g.files = append(g.files, &genFile{
				path:   fmt.Sprintf("/u%d/f%04d", v, i),
				vol:    core.VolumeID(v + 1),
				blocks: g.fileSize(),
			})
		}
	}
	if len(g.files) > 1 {
		s := g.p.ZipfS
		if s <= 1 {
			s = 1.2
		}
		g.zipf = rand.NewZipf(g.rng, s, 1, uint64(len(g.files)-1))
	}
}

// fileSize draws an exponential-ish size in blocks.
func (g *generator) fileSize() int {
	mean := g.p.FileBlocksMean
	if mean <= 0 {
		mean = 4
	}
	n := int(g.rng.ExpFloat64()*float64(mean)) + 1
	if g.p.FileBlocksMax > 0 && n > g.p.FileBlocksMax {
		n = g.p.FileBlocksMax
	}
	return n
}

// pickVol draws a volume with hot-spot skew.
func (g *generator) pickVol() core.VolumeID {
	vols := g.p.Volumes
	if vols <= 0 {
		vols = 1
	}
	if g.p.HotVolumes > 0 && g.rng.Float64() < g.p.HotWeight {
		return core.VolumeID(1 + g.rng.Intn(g.p.HotVolumes))
	}
	return core.VolumeID(1 + g.rng.Intn(vols))
}

// pickFile draws a population file, zipf-skewed toward the front.
func (g *generator) pickFile() *genFile {
	if len(g.files) == 0 {
		return nil
	}
	if g.zipf == nil {
		return g.files[0]
	}
	return g.files[int(g.zipf.Uint64())%len(g.files)]
}

func (g *generator) exp(mean time.Duration) time.Duration {
	return time.Duration(g.rng.ExpFloat64() * float64(mean))
}

// clientStream generates one client's time-ordered records.
func (g *generator) clientStream(client uint16, largeWriter bool) []Record {
	var recs []Record
	var pend []pendingDelete
	now := g.exp(g.p.ThinkMean) // stagger start
	emit := func(r Record) { recs = append(recs, r) }

	flushPending := func() {
		// Emit due deletes in time order.
		sort.Slice(pend, func(i, j int) bool { return pend[i].at < pend[j].at })
		for len(pend) > 0 && pend[0].at <= now {
			d := pend[0]
			pend = pend[1:]
			if d.truncate {
				emit(Record{T: d.at, Client: client, Vol: d.f.vol, Op: OpTruncate,
					Path: d.f.path, Size: 0})
			} else {
				emit(Record{T: d.at, Client: client, Vol: d.f.vol, Op: OpDelete,
					Path: d.f.path})
			}
		}
	}

	for now < g.horizon {
		flushPending()
		switch {
		case largeWriter:
			now = g.largeWriteSession(client, now, emit, &pend)
		case g.rng.Float64() < g.p.PStat:
			f := g.pickFile()
			if f != nil {
				emit(Record{T: now, Client: client, Vol: f.vol, Op: OpStat,
					Path: f.path, Flags: preFlag(f)})
			}
			now += g.exp(g.p.ThinkMean / 4)
		case g.rng.Float64() < g.p.PWrite:
			now = g.writeSession(client, now, emit, &pend)
		default:
			now = g.readSession(client, now, emit)
		}
		now += g.exp(g.p.ThinkMean)
	}
	// Trailing deletes still due before the horizon.
	sort.Slice(pend, func(i, j int) bool { return pend[i].at < pend[j].at })
	for _, d := range pend {
		if d.at >= g.horizon {
			break
		}
		if d.truncate {
			emit(Record{T: d.at, Client: client, Vol: d.f.vol, Op: OpTruncate, Path: d.f.path})
		} else {
			emit(Record{T: d.at, Client: client, Vol: d.f.vol, Op: OpDelete, Path: d.f.path})
		}
	}
	return recs
}

func preFlag(f *genFile) uint16 {
	if f.fresh {
		return 0
	}
	return FlagPreexisting
}

// readSession opens a file, reads it in chunks (times synthesized at
// replay), and closes it.
func (g *generator) readSession(client uint16, now time.Duration, emit func(Record)) time.Duration {
	f := g.pickFile()
	if f == nil {
		return now
	}
	size := int64(f.blocks) * core.BlockSize
	emit(Record{T: now, Client: client, Vol: f.vol, Op: OpOpen, Path: f.path,
		Size: size, Flags: preFlag(f)})
	chunk := g.p.IOChunkBlocks
	if chunk <= 0 {
		chunk = 1
	}
	n := 0
	for off := int64(0); off < size; off += int64(chunk) * core.BlockSize {
		l := int64(chunk) * core.BlockSize
		if off+l > size {
			l = size - off
		}
		emit(Record{Client: client, Vol: f.vol, Op: OpRead, Path: f.path, Off: off, Len: l})
		n++
	}
	dur := time.Duration(n+1) * 10 * time.Millisecond
	emit(Record{T: now + dur, Client: client, Vol: f.vol, Op: OpClose, Path: f.path})
	return now + dur
}

// writeSession creates or rewrites a file in chunks and may schedule
// its deletion — the overwrite factor that write-saving exploits.
func (g *generator) writeSession(client uint16, now time.Duration, emit func(Record), pend *[]pendingDelete) time.Duration {
	// Half the write sessions overwrite an existing file, half make
	// a new one.
	var f *genFile
	if g.rng.Float64() < 0.5 {
		f = g.pickFile()
	}
	if f == nil {
		vol := g.pickVol()
		f = &genFile{
			path:   fmt.Sprintf("/u%d/n%d-%06d", int(vol)-1, client, g.nextID),
			vol:    vol,
			blocks: g.fileSize(),
			fresh:  true,
		}
		g.nextID++
		g.files = append(g.files, f)
		emit(Record{T: now, Client: client, Vol: f.vol, Op: OpCreate, Path: f.path})
	} else {
		emit(Record{T: now, Client: client, Vol: f.vol, Op: OpOpen, Path: f.path,
			Size: int64(f.blocks) * core.BlockSize, Flags: preFlag(f)})
	}
	size := int64(f.blocks) * core.BlockSize
	chunk := g.p.IOChunkBlocks
	if chunk <= 0 {
		chunk = 1
	}
	n := 0
	for off := int64(0); off < size; off += int64(chunk) * core.BlockSize {
		l := int64(chunk) * core.BlockSize
		if off+l > size {
			l = size - off
		}
		emit(Record{Client: client, Vol: f.vol, Op: OpWrite, Path: f.path, Off: off, Len: l})
		n++
	}
	dur := time.Duration(n+1) * 12 * time.Millisecond
	emit(Record{T: now + dur, Client: client, Vol: f.vol, Op: OpClose, Path: f.path})
	if g.rng.Float64() < g.p.PDeleteAfter {
		*pend = append(*pend, pendingDelete{
			at:       now + dur + g.exp(g.p.DeleteDelayMean),
			f:        f,
			truncate: g.rng.Float64() < g.p.PTruncate,
		})
	}
	return now + dur
}

// largeWriteSession is the trace-1b/5 pattern: stream a large new
// file.
func (g *generator) largeWriteSession(client uint16, now time.Duration, emit func(Record), pend *[]pendingDelete) time.Duration {
	vol := g.pickVol()
	blocks := g.p.LargeWriteBlocks
	if blocks <= 0 {
		blocks = 256
	}
	f := &genFile{
		path:   fmt.Sprintf("/u%d/big%d-%06d", int(vol)-1, client, g.nextID),
		vol:    vol,
		blocks: blocks,
		fresh:  true,
	}
	g.nextID++
	g.files = append(g.files, f)
	emit(Record{T: now, Client: client, Vol: vol, Op: OpCreate, Path: f.path})
	size := int64(blocks) * core.BlockSize
	chunkB := int64(8 * core.BlockSize) // 32 KB writes
	n := 0
	for off := int64(0); off < size; off += chunkB {
		l := chunkB
		if off+l > size {
			l = size - off
		}
		emit(Record{Client: client, Vol: vol, Op: OpWrite, Path: f.path, Off: off, Len: l})
		n++
	}
	dur := time.Duration(n) * 15 * time.Millisecond
	emit(Record{T: now + dur, Client: client, Vol: vol, Op: OpClose, Path: f.path})
	if g.rng.Float64() < g.p.PDeleteAfter {
		*pend = append(*pend, pendingDelete{
			at: now + dur + g.exp(g.p.DeleteDelayMean), f: f,
		})
	}
	return now + dur
}

// Summary counts records per op, for reports and tests.
func Summary(recs []Record) map[Op]int {
	out := map[Op]int{}
	for _, r := range recs {
		out[r.Op]++
	}
	return out
}
