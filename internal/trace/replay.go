package trace

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fsys"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Result collects replay measurements: the cumulative latency
// distributions behind the paper's Figures 2-4, the per-15-minute
// interval reports, and error counts.
type Result struct {
	Overall   *stats.LatencyDist
	PerOp     map[Op]*stats.LatencyDist
	Intervals *stats.IntervalTracker
	Ops       int
	Errors    int
}

// NewResult returns an empty result.
func NewResult() *Result {
	return &Result{
		Overall:   stats.NewLatencyDist("ops"),
		PerOp:     make(map[Op]*stats.LatencyDist),
		Intervals: stats.NewIntervalTracker(),
	}
}

func (r *Result) observe(op Op, lat time.Duration) {
	r.Overall.Observe(lat)
	d := r.PerOp[op]
	if d == nil {
		d = stats.NewLatencyDist("op." + op.String())
		r.PerOp[op] = d
	}
	d.Observe(lat)
	r.Intervals.Observe(lat)
	r.Ops++
}

// Replayer maps trace records onto the abstract client interface.
// Clients are modeled by separate threads of control; each reads its
// part of the trace, groups operations that belong together (an
// open ... close sequence), and dispatches them at their recorded —
// or synthesized — times.
type Replayer struct {
	fs  *fsys.FS
	k   sched.Kernel
	mu  sched.Mutex
	res *Result
	// ReportEvery cuts interval reports (the paper prints every 15
	// minutes of simulation time).
	ReportEvery time.Duration
	// Quiet suppresses interval printing (results still recorded).
	Quiet   bool
	clients map[uint16][]Record
	horizon time.Duration
	done    int
	total   int
	finish  sched.Event
	// halted stops every client before its next operation — the
	// machine lost power mid-replay. Atomic so the crash task can set
	// it without taking the replay lock (and without perturbing the
	// virtual schedule when never used).
	halted atomic.Bool
}

// Halt makes every client stop before its next operation and skip
// its shutdown closes: the power is off. Replay finishes (Run
// returns) as the clients notice.
func (r *Replayer) Halt() { r.halted.Store(true) }

// NewReplayer prepares recs for replay against fs.
func NewReplayer(fs *fsys.FS, recs []Record) *Replayer {
	r := &Replayer{
		fs:          fs,
		k:           fs.Kernel(),
		res:         NewResult(),
		ReportEvery: 15 * time.Minute,
		Quiet:       true,
		clients:     make(map[uint16][]Record),
	}
	r.mu = r.k.NewMutex("replay")
	r.finish = r.k.NewEvent("replay.finish")
	for _, rec := range recs {
		r.clients[rec.Client] = append(r.clients[rec.Client], rec)
		if rec.T > r.horizon {
			r.horizon = rec.T
		}
	}
	return r
}

// Result returns the measurements (valid after Run).
func (r *Replayer) Result() *Result { return r.res }

// Run spawns one task per traced client plus the interval reporter
// and returns when every client has drained its stream. It must be
// called from a kernel task.
func (r *Replayer) Run(t sched.Task) {
	ids := make([]int, 0, len(r.clients))
	for id := range r.clients {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	r.total = len(ids)
	if r.total == 0 {
		return
	}
	for _, id := range ids {
		recs := synthesizeTimes(r.clients[uint16(id)])
		r.k.Go(fmt.Sprintf("client%d", id), func(ct sched.Task) {
			r.runClient(ct, recs)
			r.mu.Lock(ct)
			r.done++
			last := r.done == r.total
			r.mu.Unlock(ct)
			if last {
				r.finish.Signal()
			}
		})
	}
	if r.ReportEvery > 0 {
		r.k.Go("replay.reporter", r.reporterLoop)
	}
	r.finish.Wait(t)
	r.res.Intervals.Cut(time.Duration(r.k.Now()))
}

// reporterLoop cuts an interval report every ReportEvery of
// simulation time until the replay completes.
func (r *Replayer) reporterLoop(t sched.Task) {
	for {
		t.Sleep(r.ReportEvery)
		r.mu.Lock(t)
		finished := r.done == r.total
		r.mu.Unlock(t)
		if finished {
			return
		}
		rep := r.res.Intervals.Cut(time.Duration(r.k.Now()))
		if !r.Quiet {
			fmt.Println(rep)
		}
	}
}

// synthesizeTimes fills in the missing read/write times: operations
// with zero T inside an open...close group are positioned
// equidistant between the open and the close, as the paper does for
// the Sprite traces.
func synthesizeTimes(recs []Record) []Record {
	out := append([]Record(nil), recs...)
	for i := 0; i < len(out); i++ {
		if out[i].Op != OpOpen && out[i].Op != OpCreate {
			continue
		}
		// Find the matching close for this path.
		closeIdx := -1
		for j := i + 1; j < len(out); j++ {
			if out[j].Op == OpClose && out[j].Path == out[i].Path {
				closeIdx = j
				break
			}
		}
		if closeIdx < 0 {
			continue
		}
		inner := closeIdx - i - 1
		if inner <= 0 {
			continue
		}
		t0, t1 := out[i].T, out[closeIdx].T
		if t1 <= t0 {
			t1 = t0 + time.Duration(inner)*time.Millisecond
		}
		step := (t1 - t0) / time.Duration(inner+1)
		for n := 1; n <= inner; n++ {
			if out[i+n].T == 0 {
				out[i+n].T = t0 + time.Duration(n)*step
			}
		}
	}
	return out
}

// runClient executes one client's stream.
func (r *Replayer) runClient(t sched.Task, recs []Record) {
	handles := make(map[string]*fsys.Handle)
	for _, rec := range recs {
		if r.halted.Load() {
			return // power cut: nothing more is issued, nothing closed
		}
		t.SleepUntil(sched.Time(rec.T))
		v := r.fs.Vol(rec.Vol)
		if v == nil {
			r.countError(t)
			continue
		}
		start := r.k.Now()
		err := r.execute(t, v, rec, handles)
		lat := r.k.Now().Sub(start)
		r.mu.Lock(t)
		if err != nil {
			r.res.Errors++
		} else {
			r.res.observe(rec.Op, lat)
		}
		r.mu.Unlock(t)
	}
	// Close anything the trace left open.
	for path, h := range handles {
		v := r.fs.Vol(h.File().VolID())
		if v != nil {
			v.Close(t, h)
		}
		delete(handles, path)
	}
}

func (r *Replayer) countError(t sched.Task) {
	r.mu.Lock(t)
	r.res.Errors++
	r.mu.Unlock(t)
}

// execute performs one record against the abstract client interface.
func (r *Replayer) execute(t sched.Task, v *fsys.Volume, rec Record, handles map[string]*fsys.Handle) error {
	pre := rec.Flags&FlagPreexisting != 0
	switch rec.Op {
	case OpOpen:
		h, err := v.EnsureFile(t, rec.Path, rec.Size, pre)
		if err != nil {
			return err
		}
		handles[rec.Path] = h
		return nil

	case OpCreate:
		h, err := v.EnsureFile(t, rec.Path, 0, false)
		if err != nil {
			return err
		}
		handles[rec.Path] = h
		return nil

	case OpClose:
		h := handles[rec.Path]
		if h == nil {
			return nil
		}
		delete(handles, rec.Path)
		return v.Close(t, h)

	case OpRead:
		h := handles[rec.Path]
		if h == nil {
			var err error
			h, err = v.EnsureFile(t, rec.Path, rec.Off+rec.Len, pre)
			if err != nil {
				return err
			}
			defer v.Close(t, h)
		}
		_, err := v.ReadAt(t, h, rec.Off, nil, rec.Len)
		return err

	case OpWrite:
		h := handles[rec.Path]
		if h == nil {
			var err error
			h, err = v.EnsureFile(t, rec.Path, 0, false)
			if err != nil {
				return err
			}
			defer v.Close(t, h)
		}
		return v.WriteAt(t, h, rec.Off, nil, rec.Len)

	case OpDelete:
		err := v.Remove(t, rec.Path)
		if err == core.ErrNotFound {
			return nil // deleted before it was materialized; fine
		}
		return err

	case OpTruncate:
		h := handles[rec.Path]
		transient := false
		if h == nil {
			var err error
			h, err = v.EnsureFile(t, rec.Path, rec.Size, pre)
			if err != nil {
				return err
			}
			transient = true
		}
		err := v.Truncate(t, h, rec.Size)
		if transient {
			v.Close(t, h)
		}
		return err

	case OpStat:
		_, err := v.Stat(t, rec.Path)
		if err == core.ErrNotFound && pre {
			// The traced system had it; synthesize and retry.
			h, cerr := v.EnsureFile(t, rec.Path, rec.Size, true)
			if cerr != nil {
				return cerr
			}
			v.Close(t, h)
			_, err = v.Stat(t, rec.Path)
		}
		return err

	case OpMkdir:
		err := v.Mkdir(t, rec.Path)
		if err == core.ErrExists {
			return nil
		}
		return err

	case OpRmdir:
		err := v.Rmdir(t, rec.Path)
		if err == core.ErrNotFound {
			return nil
		}
		return err

	case OpRename:
		err := v.Rename(t, rec.Path, rec.Path2)
		if err == core.ErrNotFound {
			return nil
		}
		return err
	}
	return core.ErrInval
}
