package trace

import "repro/internal/core"

func init() {
	r := core.Components()
	r.Register(core.KindTraceFormat, "sprite", SpriteFormat{})
	r.Register(core.KindTraceFormat, "coda", CodaFormat{})
	for _, name := range ProfileNames() {
		n := name
		r.Register(core.KindWorkload, n, func() Profile { return Profiles()[n] })
	}
}
