package health

import (
	"fmt"
	"sync"
	"testing"
)

// fakeSource is a hand-cranked evidence counter set.
type fakeSource struct {
	mu   sync.Mutex
	name string
	ev   Evidence
}

func (f *fakeSource) Name() string { return f.name }

func (f *fakeSource) HealthEvidence() Evidence {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ev
}

// fail records n transient failures, extending the back-to-back run.
func (f *fakeSource) fail(n int64) {
	f.mu.Lock()
	f.ev.Errors += n
	f.ev.Consec += n
	f.mu.Unlock()
}

func (f *fakeSource) slow(n int64) {
	f.mu.Lock()
	f.ev.SlowIOs += n
	f.mu.Unlock()
}

func (f *fakeSource) succeed() {
	f.mu.Lock()
	f.ev.Consec = 0
	f.mu.Unlock()
}

func (f *fakeSource) dead() {
	f.mu.Lock()
	f.ev.DeadErrors++
	f.ev.Consec++
	f.mu.Unlock()
}

func newTestMonitor(n int) (*Monitor, []*fakeSource) {
	srcs := make([]*fakeSource, n)
	members := make([]Source, n)
	for i := range srcs {
		srcs[i] = &fakeSource{name: fmt.Sprintf("d%d", i)}
		members[i] = srcs[i]
	}
	return NewMonitor(Config{}, members), srcs
}

// TestEscalationAndDecay walks one member up the ladder with
// transient evidence and back down with clean samples: transient
// evidence must never confirm Dead.
func TestEscalationAndDecay(t *testing.T) {
	m, srcs := newTestMonitor(1)
	s := srcs[0]
	cfg := Config{}.withDefaults()

	m.Observe() // prime the baseline
	if v := m.Verdict(0); v != Healthy {
		t.Fatalf("baseline verdict %v, want healthy", v)
	}

	// Enough windowed evidence raises Suspect...
	s.fail(cfg.SuspectScore)
	s.succeed()
	m.Observe()
	if v := m.Verdict(0); v != Suspect {
		t.Fatalf("after %d errors: %v, want suspect", cfg.SuspectScore, v)
	}
	// ...and sustained evidence-bearing samples escalate to Probation.
	for i := 0; i < cfg.ProbationAfter; i++ {
		s.fail(1)
		s.succeed()
		m.Observe()
	}
	if v := m.Verdict(0); v != Probation {
		t.Fatalf("after sustained evidence: %v, want probation", v)
	}

	// Clean samples decay one state at a time: the verdict must pass
	// back through Suspect on its way down, never jump straight home.
	var seen []Verdict
	last := Probation
	for i := 0; i < 4*(cfg.Window+cfg.ClearAfter); i++ {
		m.Observe()
		if v := m.Verdict(0); v != last {
			seen = append(seen, v)
			last = v
		}
		if last == Healthy {
			break
		}
	}
	if len(seen) != 2 || seen[0] != Suspect || seen[1] != Healthy {
		t.Fatalf("decay path %v, want [suspect healthy]", seen)
	}
	if n := m.ConfirmedDeaths(); n != 0 {
		t.Fatalf("transient evidence confirmed %d deaths", n)
	}
}

// TestIntermittentNeverDies is the anti-flapping guarantee: a member
// that errors intermittently forever — every error run broken by a
// success before KillConsec — oscillates below Dead for thousands of
// samples.
func TestIntermittentNeverDies(t *testing.T) {
	m, srcs := newTestMonitor(2)
	flaky := srcs[0]
	cfg := Config{}.withDefaults()
	var died int
	m.OnDead(func(int) { died++ })
	for i := 0; i < 5000; i++ {
		// A nasty rhythm: bursts just under the consecutive-failure
		// bound, then a single success, repeatedly.
		flaky.fail(cfg.KillConsec - 1)
		flaky.succeed()
		flaky.slow(2)
		m.Observe()
		if v := m.Verdict(0); v == Dead {
			t.Fatalf("intermittent member confirmed dead at sample %d", i)
		}
	}
	if v := m.Verdict(0); v != Suspect && v != Probation {
		t.Fatalf("persistently flaky member settled at %v, want suspect/probation", v)
	}
	if v := m.Verdict(1); v != Healthy {
		t.Fatalf("quiet member dragged to %v by its neighbor", v)
	}
	if died != 0 || m.ConfirmedDeaths() != 0 {
		t.Fatalf("OnDead fired %d times for transient evidence", died)
	}
}

// TestHardEvidenceConfirmsDead pins the two hard paths: a permanent
// dead-member rejection confirms within one sample, as does an
// unbroken failure run reaching KillConsec. The verdict is sticky
// until Replace, and OnDead fires exactly once per death.
func TestHardEvidenceConfirmsDead(t *testing.T) {
	m, srcs := newTestMonitor(2)
	cfg := Config{}.withDefaults()
	var mu sync.Mutex
	var deaths []int
	m.OnDead(func(i int) { mu.Lock(); deaths = append(deaths, i); mu.Unlock() })
	m.Observe() // prime

	srcs[0].dead()
	m.Observe()
	if v := m.Verdict(0); v != Dead {
		t.Fatalf("dead rejection sampled as %v, want dead", v)
	}

	srcs[1].fail(cfg.KillConsec)
	m.Observe()
	if v := m.Verdict(1); v != Dead {
		t.Fatalf("unbroken run of %d sampled as %v, want dead", cfg.KillConsec, v)
	}

	// Sticky: clean samples do not resurrect a confirmed death.
	srcs[0].succeed()
	srcs[1].succeed()
	for i := 0; i < 3*cfg.Window; i++ {
		m.Observe()
	}
	if m.Verdict(0) != Dead || m.Verdict(1) != Dead {
		t.Fatal("confirmed death decayed without Replace")
	}
	mu.Lock()
	n := len(deaths)
	mu.Unlock()
	if n != 2 || m.ConfirmedDeaths() != 2 {
		t.Fatalf("OnDead fired %d times (counter %d), want 2", n, m.ConfirmedDeaths())
	}

	// Replace resets the slot to a fresh healthy machine.
	m.Replace(0, &fakeSource{name: "s0"})
	m.Observe()
	if v := m.Verdict(0); v != Healthy {
		t.Fatalf("replaced member starts %v, want healthy", v)
	}
	if st := m.State(0); st.Name != "s0" || st.Transitions != 0 {
		t.Fatalf("replaced state %+v, want fresh s0", st)
	}
}

// TestFirstSamplePrimesBaseline ensures pre-attach history is not
// charged against a member — except hard evidence already on the
// books, which must confirm immediately.
func TestFirstSamplePrimesBaseline(t *testing.T) {
	noisy := &fakeSource{name: "noisy", ev: Evidence{Errors: 500, SlowIOs: 200}}
	corpse := &fakeSource{name: "corpse", ev: Evidence{DeadErrors: 1}}
	m := NewMonitor(Config{}, []Source{noisy, corpse})
	m.Observe()
	if v := m.Verdict(0); v != Healthy {
		t.Fatalf("historic counters charged at attach: %v", v)
	}
	if v := m.Verdict(1); v != Dead {
		t.Fatalf("pre-existing dead rejection ignored at attach: %v", v)
	}
}

// TestMarkDeadManualOverride checks the operator path: the verdict
// flips, callbacks fire once, and a second override is a no-op.
func TestMarkDeadManualOverride(t *testing.T) {
	m, _ := newTestMonitor(1)
	var fired int
	m.OnDead(func(int) { fired++ })
	m.MarkDead(0)
	m.MarkDead(0)
	if v := m.Verdict(0); v != Dead {
		t.Fatalf("verdict %v after MarkDead", v)
	}
	if fired != 1 || m.ConfirmedDeaths() != 1 {
		t.Fatalf("override fired %d callbacks (counter %d), want 1", fired, m.ConfirmedDeaths())
	}
}

// TestConcurrentObserveAndScrape hammers Observe against the
// scrape-side accessors under -race.
func TestConcurrentObserveAndScrape(t *testing.T) {
	m, srcs := newTestMonitor(3)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			srcs[i%3].fail(1)
			if i%5 == 0 {
				srcs[i%3].succeed()
			}
			m.Observe()
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = m.States()
			_ = m.Verdict(1)
			_ = m.ConfirmedDeaths()
		}
	}()
	for i := 0; i < 200; i++ {
		_ = m.State(i % 3)
	}
	close(stop)
	wg.Wait()
}
