// Package health turns raw per-member I/O evidence into verdicts a
// repair supervisor can act on. The device layer accumulates
// cumulative error and latency-SLO counters (device.DriverStats); a
// Monitor samples them periodically and runs a small hysteresis state
// machine per member:
//
//	Healthy ─evidence─▶ Suspect ─sustained─▶ Probation
//	   ▲                   │                     │
//	   └──── clean window ──┴──── clean window ───┘
//
//	any state ─(dead-member rejection | consecutive-error run)─▶ Dead
//
// Transient evidence (injected read/write errors, slow completions)
// can only raise a member to Suspect or Probation — states it decays
// back out of after a clean window. Only hard evidence confirms Dead:
// a permanent dead-member rejection (device.ErrDiskDead) or an
// unbroken run of failures longer than KillConsec. An intermittently
// flaky member therefore oscillates between Suspect and Probation
// forever without being flapped to death, while a genuinely dead one
// is confirmed within a single evidence sample of its first rejected
// I/O.
//
// The Monitor holds only plain mutexes and atomics, so verdicts and
// state snapshots are safe to read from metric scrapers and admin
// handlers without touching kernel state.
package health

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Verdict is a member's current health classification.
type Verdict int

const (
	Healthy Verdict = iota
	Suspect
	Probation
	Dead
)

func (v Verdict) String() string {
	switch v {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Probation:
		return "probation"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Evidence is one cumulative sample of a member's health counters.
// All fields are monotonic totals; the Monitor differences successive
// samples itself.
type Evidence struct {
	Errors     int64 // transient I/O errors
	DeadErrors int64 // permanent dead-member rejections
	SlowIOs    int64 // completions over the latency SLO
	Consec     int64 // current run of back-to-back failures
}

// Source supplies evidence for one member.
type Source interface {
	Name() string
	HealthEvidence() Evidence
}

// Config tunes the state machine. Zero values select the defaults.
type Config struct {
	// Window is the number of samples in the sliding evidence window.
	Window int
	// SuspectScore is the windowed evidence (errors + SLO breaches)
	// that raises Healthy to Suspect.
	SuspectScore int64
	// ProbationAfter is the number of consecutive evidence-bearing
	// samples that escalates Suspect to Probation.
	ProbationAfter int
	// ClearAfter is the number of consecutive clean samples (with an
	// empty window) that steps a member back down one state.
	ClearAfter int
	// KillConsec is the unbroken failure run that confirms Dead even
	// without a permanent rejection.
	KillConsec int64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.SuspectScore <= 0 {
		c.SuspectScore = 3
	}
	if c.ProbationAfter <= 0 {
		c.ProbationAfter = 2
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = c.Window
	}
	if c.KillConsec <= 0 {
		c.KillConsec = 12
	}
	return c
}

// MemberState is a point-in-time snapshot for admin surfaces.
type MemberState struct {
	Name        string
	Verdict     Verdict
	WindowErrs  int64 // transient errors in the evidence window
	WindowSlow  int64 // SLO breaches in the evidence window
	Consec      int64 // current back-to-back failure run
	DeadErrors  int64 // cumulative permanent rejections
	Samples     int64 // evidence samples taken
	Transitions int64 // verdict changes since attach
}

type sampleDelta struct {
	errs, slow int64
}

type memberFSM struct {
	src     Source
	prev    Evidence
	primed  bool // prev is valid (first sample only establishes a baseline)
	ring    []sampleDelta
	idx     int
	verdict Verdict
	hot     int // consecutive evidence-bearing samples
	cool    int // consecutive clean samples
	samples int64
	trans   int64
}

func (f *memberFSM) windowScore() (errs, slow int64) {
	for _, d := range f.ring {
		errs += d.errs
		slow += d.slow
	}
	return
}

// Monitor runs one state machine per member over sampled evidence.
type Monitor struct {
	cfg    Config
	mu     sync.Mutex
	fsm    []*memberFSM
	onDead []func(member int)
	deaths atomic.Int64
}

// NewMonitor builds a monitor over the given member sources.
func NewMonitor(cfg Config, members []Source) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{cfg: cfg}
	for _, s := range members {
		m.fsm = append(m.fsm, &memberFSM{src: s, ring: make([]sampleDelta, cfg.Window)})
	}
	return m
}

// OnDead registers fn to run (on the Observe caller's goroutine,
// outside the monitor lock) once per confirmed death.
func (m *Monitor) OnDead(fn func(member int)) {
	m.mu.Lock()
	m.onDead = append(m.onDead, fn)
	m.mu.Unlock()
}

// Members returns the number of members under watch.
func (m *Monitor) Members() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.fsm)
}

// Observe takes one evidence sample from every member, advances the
// state machines, and returns the verdicts. Deaths confirmed by this
// sample fire the OnDead callbacks after the lock is released.
func (m *Monitor) Observe() []Verdict {
	m.mu.Lock()
	verdicts := make([]Verdict, len(m.fsm))
	var died []int
	for i, f := range m.fsm {
		was := f.verdict
		m.step(f)
		verdicts[i] = f.verdict
		if f.verdict != was {
			f.trans++
			if f.verdict == Dead {
				m.deaths.Add(1)
				died = append(died, i)
			}
		}
	}
	callbacks := m.onDead
	m.mu.Unlock()
	for _, i := range died {
		for _, fn := range callbacks {
			fn(i)
		}
	}
	return verdicts
}

func (m *Monitor) step(f *memberFSM) {
	ev := f.src.HealthEvidence()
	f.samples++
	if !f.primed {
		// First contact: adopt the counters as the baseline so
		// pre-attach history is not charged against the member, but
		// still honor hard evidence already on the books.
		f.prev, f.primed = ev, true
		if ev.DeadErrors > 0 || ev.Consec >= m.cfg.KillConsec {
			f.verdict = Dead
		}
		return
	}
	d := sampleDelta{
		errs: ev.Errors - f.prev.Errors,
		slow: ev.SlowIOs - f.prev.SlowIOs,
	}
	newDead := ev.DeadErrors - f.prev.DeadErrors
	f.prev = ev
	f.ring[f.idx] = d
	f.idx = (f.idx + 1) % len(f.ring)

	if f.verdict == Dead {
		return // sticky until Replace
	}
	// Hard evidence: a permanent rejection or an unbroken failure run.
	if newDead > 0 || ev.Consec >= m.cfg.KillConsec {
		f.verdict = Dead
		return
	}
	if d.errs+d.slow > 0 {
		f.hot++
		f.cool = 0
	} else {
		f.cool++
		if f.cool >= m.cfg.ClearAfter {
			f.hot = 0
		}
	}
	errs, slow := f.windowScore()
	score := errs + slow
	switch f.verdict {
	case Healthy:
		if score >= m.cfg.SuspectScore {
			f.verdict = Suspect
		}
	case Suspect:
		if f.hot >= m.cfg.ProbationAfter {
			f.verdict = Probation
		} else if score == 0 && f.cool >= m.cfg.ClearAfter {
			f.verdict = Healthy
		}
	case Probation:
		if score == 0 && f.cool >= m.cfg.ClearAfter {
			f.verdict = Suspect
			f.hot = 0
		}
	}
}

// Verdict returns member i's current verdict.
func (m *Monitor) Verdict(i int) Verdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fsm[i].verdict
}

// MarkDead is the manual override: it forces member i's verdict to
// Dead and fires the usual callbacks, exactly as if the evidence had
// confirmed the death.
func (m *Monitor) MarkDead(i int) {
	m.mu.Lock()
	f := m.fsm[i]
	already := f.verdict == Dead
	if !already {
		f.verdict = Dead
		f.trans++
		m.deaths.Add(1)
	}
	callbacks := m.onDead
	m.mu.Unlock()
	if already {
		return
	}
	for _, fn := range callbacks {
		fn(i)
	}
}

// Replace points member i at a fresh source (a promoted spare) and
// resets its state machine to Healthy with an empty window.
func (m *Monitor) Replace(i int, s Source) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fsm[i] = &memberFSM{src: s, ring: make([]sampleDelta, m.cfg.Window)}
}

// State snapshots member i for admin surfaces.
func (m *Monitor) State(i int) MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stateLocked(i)
}

// States snapshots every member.
func (m *Monitor) States() []MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberState, len(m.fsm))
	for i := range m.fsm {
		out[i] = m.stateLocked(i)
	}
	return out
}

func (m *Monitor) stateLocked(i int) MemberState {
	f := m.fsm[i]
	errs, slow := f.windowScore()
	return MemberState{
		Name:        f.src.Name(),
		Verdict:     f.verdict,
		WindowErrs:  errs,
		WindowSlow:  slow,
		Consec:      f.prev.Consec,
		DeadErrors:  f.prev.DeadErrors,
		Samples:     f.samples,
		Transitions: f.trans,
	}
}

// ConfirmedDeaths returns the number of deaths the monitor has
// confirmed (including manual overrides). Safe for scrapers.
func (m *Monitor) ConfirmedDeaths() int64 { return m.deaths.Load() }
