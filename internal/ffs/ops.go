package ffs

import (
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// AllocInode creates an inode, spreading directories across groups
// and clustering files with their parents in the FFS manner (the
// parent affinity arrives through allocHintGroup set by callers;
// absent a hint, the least-loaded group wins).
func (f *FFS) AllocInode(t sched.Task, typ core.FileType) (*layout.Inode, error) {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	g, idx := -1, -1
	if typ == core.TypeDirectory && !f.inoBits[0].get(int(core.RootFile)) {
		// The volume's first directory is its root, which lives at
		// the conventional fixed inode number.
		g, idx = 0, int(core.RootFile)
	} else {
		g = f.pickInodeGroup(typ)
		if g < 0 {
			return nil, core.ErrNoSpace
		}
		for i := 0; i < f.cfg.InodesPerGroup; i++ {
			if !f.inoBits[g].get(i) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, core.ErrNoSpace
		}
	}
	f.inoBits[g].set(idx)
	f.bitsDirty = true
	id := core.FileID(g*f.cfg.InodesPerGroup + idx)
	ino := &layout.Inode{
		ID:    id,
		Type:  typ,
		Nlink: 1,
		// The generation number: FFS reuses freed inode numbers, so a
		// fresh Version is what distinguishes the new file from stale
		// handles (NFS) naming the old one.
		Version: uint64(f.k.Now()),
		MTime:   int64(f.k.Now()),
		CTime:   int64(f.k.Now()),
	}
	f.inodes[id] = ino
	if err := f.writeInode(t, ino); err != nil {
		// The synchronous inode write is the commit point. Roll the
		// slot back on failure (a power cut mid-allocation), or this
		// member's bitmap drifts from its peers' and the array's
		// lockstep allocator breaks on the next create.
		f.inoBits[g].clear(idx)
		delete(f.inodes, id)
		return nil, err
	}
	return ino, nil
}

// pickInodeGroup returns the group for a new inode: directories go
// to the emptiest group, files to the fullest non-full one (keeping
// them near existing data), -1 when everything is full.
func (f *FFS) pickInodeGroup(typ core.FileType) int {
	best, bestFree := -1, -1
	for g := 0; g < f.ngroups; g++ {
		free := 0
		for i := 0; i < f.cfg.InodesPerGroup; i++ {
			if !f.inoBits[g].get(i) {
				free++
			}
		}
		if free == 0 {
			continue
		}
		if typ == core.TypeDirectory {
			if free > bestFree {
				best, bestFree = g, free
			}
		} else {
			if best < 0 || free < bestFree {
				best, bestFree = g, free
			}
		}
	}
	return best
}

// RestoreInode implements layout.InodeRestorer: it creates an inode
// at a caller-chosen number (the group and slot follow from the
// number). Array rebuild replays a dead member's live inode set this
// way, since pickInodeGroup on a fresh layout would spread the same
// creations differently.
func (f *FFS) RestoreInode(t sched.Task, id core.FileID, typ core.FileType) (*layout.Inode, error) {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	g := int(id) / f.cfg.InodesPerGroup
	idx := int(id) % f.cfg.InodesPerGroup
	if g >= f.ngroups {
		return nil, core.ErrNoSpace
	}
	if f.inoBits[g].get(idx) {
		return nil, core.ErrExists
	}
	f.inoBits[g].set(idx)
	f.bitsDirty = true
	ino := &layout.Inode{
		ID:      id,
		Type:    typ,
		Nlink:   1,
		Version: uint64(f.k.Now()),
		MTime:   int64(f.k.Now()),
		CTime:   int64(f.k.Now()),
	}
	f.inodes[id] = ino
	if err := f.writeInode(t, ino); err != nil {
		f.inoBits[g].clear(idx)
		delete(f.inodes, id)
		return nil, err
	}
	return ino, nil
}

// GetInode fetches an inode from memory or the inode table.
func (f *FFS) GetInode(t sched.Task, id core.FileID) (*layout.Inode, error) {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	return f.getInodeLocked(t, id)
}

func (f *FFS) getInodeLocked(t sched.Task, id core.FileID) (*layout.Inode, error) {
	if ino := f.inodes[id]; ino != nil {
		return ino, nil
	}
	g := int(id) / f.cfg.InodesPerGroup
	if g >= f.ngroups || !f.inoBits[g].get(int(id)%f.cfg.InodesPerGroup) {
		return nil, core.ErrNotFound
	}
	if f.part.Simulated {
		return nil, core.ErrNotFound
	}
	_, blk, slot := f.inodeLoc(id)
	buf := make([]byte, core.BlockSize)
	if err := f.part.Read(t, blk, 1, buf); err != nil {
		return nil, err
	}
	di, err := layout.DecodeInode(buf[slot*layout.InodeSize:])
	if err != nil {
		return nil, err
	}
	ino := &di.Ino
	if err := f.loadBlockMap(t, ino, di); err != nil {
		return nil, err
	}
	f.inodes[id] = ino
	return ino, nil
}

// loadBlockMap rebuilds the flat block map from the pointer tree.
func (f *FFS) loadBlockMap(t sched.Task, ino *layout.Inode, di *layout.DiskInode) error {
	nblocks := layout.BlocksForSize(ino.Size)
	ino.Blocks = ino.Blocks[:0]
	for i := 0; i < layout.NDirect && int64(len(ino.Blocks)) < nblocks; i++ {
		ino.Blocks = append(ino.Blocks, di.Direct[i])
	}
	if int64(len(ino.Blocks)) < nblocks && di.Ind >= 0 {
		ino.IndAddrs = append(ino.IndAddrs, di.Ind)
		buf := make([]byte, core.BlockSize)
		if err := f.part.Read(t, di.Ind, 1, buf); err != nil {
			return err
		}
		n := int(nblocks) - len(ino.Blocks)
		if n > layout.AddrsPerBlock {
			n = layout.AddrsPerBlock
		}
		ino.Blocks = append(ino.Blocks, layout.DecodeAddrs(buf, n)...)
	}
	if int64(len(ino.Blocks)) < nblocks && di.DInd >= 0 {
		dbuf := make([]byte, core.BlockSize)
		if err := f.part.Read(t, di.DInd, 1, dbuf); err != nil {
			return err
		}
		remaining := int(nblocks) - len(ino.Blocks)
		nleaves := (remaining + layout.AddrsPerBlock - 1) / layout.AddrsPerBlock
		buf := make([]byte, core.BlockSize)
		for _, leaf := range layout.DecodeAddrs(dbuf, nleaves) {
			if leaf < 0 {
				// The size over-covers the map (a volume-manager
				// shadow carries the array-global size): a nil leaf
				// ends the tree, it is never a legal address.
				break
			}
			ino.IndAddrs = append(ino.IndAddrs, leaf)
			if err := f.part.Read(t, leaf, 1, buf); err != nil {
				return err
			}
			n := int(nblocks) - len(ino.Blocks)
			if n > layout.AddrsPerBlock {
				n = layout.AddrsPerBlock
			}
			ino.Blocks = append(ino.Blocks, layout.DecodeAddrs(buf, n)...)
		}
		ino.IndAddrs = append(ino.IndAddrs, di.DInd)
	}
	return nil
}

// writeInode writes an inode record in place (synchronous metadata,
// as FFS does), including its indirect map blocks.
func (f *FFS) writeInode(t sched.Task, ino *layout.Inode) error {
	// (Re)write indirect blocks first so the record points at them.
	if err := f.writeIndirects(t, ino); err != nil {
		return err
	}
	_, blk, slot := f.inodeLoc(ino.ID)
	var buf []byte
	if !f.part.Simulated {
		buf = make([]byte, core.BlockSize)
		if err := f.part.Read(t, blk, 1, buf); err != nil {
			return err
		}
		di := &layout.DiskInode{Ino: *ino, Ind: -1, DInd: -1}
		di.Ino.Blocks = nil
		di.Ino.IndAddrs = nil
		direct, groups, err := layout.SplitBlockMap(ino.Blocks)
		if err != nil {
			return err
		}
		di.Direct = direct
		if len(groups) >= 1 {
			di.Ind = ino.IndAddrs[0]
		}
		if len(groups) > 1 {
			di.DInd = ino.IndAddrs[len(ino.IndAddrs)-1]
		}
		layout.EncodeInode(di, buf[slot*layout.InodeSize:])
	}
	f.inoWrites.Inc()
	f.durSeq++
	return f.part.Write(t, blk, 1, buf)
}

// writeIndirects allocates (once) and writes the file's indirect map
// blocks in place.
func (f *FFS) writeIndirects(t sched.Task, ino *layout.Inode) error {
	_, groups, err := layout.SplitBlockMap(ino.Blocks)
	if err != nil {
		return err
	}
	need := len(groups)
	if need > 1 {
		need++ // double-indirect root
	}
	// Allocate missing map blocks near the file's tail.
	hint := tailHint(ino)
	for len(ino.IndAddrs) < need {
		a, err := f.allocDataLocked(hint)
		if err != nil {
			return err
		}
		ino.IndAddrs = append(ino.IndAddrs, a)
	}
	for len(ino.IndAddrs) > need {
		last := ino.IndAddrs[len(ino.IndAddrs)-1]
		f.freeDataLocked(last)
		ino.IndAddrs = ino.IndAddrs[:len(ino.IndAddrs)-1]
	}
	if len(groups) == 0 {
		return nil
	}
	var buf []byte
	if !f.part.Simulated {
		buf = make([]byte, core.BlockSize)
	}
	for gi, g := range groups {
		if buf != nil {
			layout.EncodeAddrs(g, buf)
		}
		if err := f.part.Write(t, ino.IndAddrs[gi], 1, buf); err != nil {
			return err
		}
	}
	if len(groups) > 1 {
		if buf != nil {
			layout.EncodeAddrs(ino.IndAddrs[1:len(groups)], buf)
		}
		if err := f.part.Write(t, ino.IndAddrs[len(ino.IndAddrs)-1], 1, buf); err != nil {
			return err
		}
	}
	return nil
}

// UpdateInode persists inode meta-data synchronously.
func (f *FFS) UpdateInode(t sched.Task, ino *layout.Inode) error {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	f.inodes[ino.ID] = ino
	return f.writeInode(t, ino)
}

// FreeInode releases the inode and all its blocks. The on-disk
// record is cleared synchronously — FFS metadata discipline, and
// what makes a deletion durable for the table-scan repair path (a
// lingering record would resurrect the file after a crash).
func (f *FFS) FreeInode(t sched.Task, id core.FileID) error {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	ino, err := f.getInodeLocked(t, id)
	if err != nil {
		return err
	}
	for _, a := range ino.Blocks {
		if a >= 0 {
			f.freeDataLocked(a)
		}
	}
	for _, a := range ino.IndAddrs {
		f.freeDataLocked(a)
	}
	g := int(id) / f.cfg.InodesPerGroup
	f.inoBits[g].clear(int(id) % f.cfg.InodesPerGroup)
	f.bitsDirty = true
	delete(f.inodes, id)
	return f.clearInodeRecord(t, id)
}

// clearInodeRecord zeroes one slot of the on-disk inode table.
func (f *FFS) clearInodeRecord(t sched.Task, id core.FileID) error {
	_, blk, slot := f.inodeLoc(id)
	var buf []byte
	if !f.part.Simulated {
		buf = make([]byte, core.BlockSize)
		if err := f.part.Read(t, blk, 1, buf); err != nil {
			return err
		}
		for i := slot * layout.InodeSize; i < (slot+1)*layout.InodeSize; i++ {
			buf[i] = 0
		}
	}
	f.inoWrites.Inc()
	f.durSeq++
	return f.part.Write(t, blk, 1, buf)
}

// allocDataLocked finds one free data block near the hint.
func (f *FFS) allocDataLocked(hint int64) (int64, error) {
	run, err := f.allocRunLocked(hint, 1)
	if err != nil {
		return -1, err
	}
	return run[0], nil
}

// allocRunLocked reserves up to want free data blocks as one
// disk-contiguous run: first the blocks directly after hint (so a
// growing file's appends land adjacent — the contiguity clustered
// transfers feed on), then the first free run of the hint's group
// scanning forward from the hint, then the first free run of any
// group. It returns at least one block; a fragmented bitmap may
// yield fewer than want.
func (f *FFS) allocRunLocked(hint int64, want int) ([]int64, error) {
	if want < 1 {
		want = 1
	}
	// take claims the free run starting at (g, i), bounded by want,
	// the group end and the next allocated block.
	take := func(g, i int) []int64 {
		run := make([]int64, 0, want)
		for len(run) < want && i < f.cfg.BlocksPerGroup && !f.dataBits[g].get(i) {
			f.dataBits[g].set(i)
			f.bitsDirty = true
			f.freeData--
			run = append(run, f.groupBase(g)+int64(i))
			i++
		}
		return run
	}
	var hg, hi = -1, -1
	if hint >= 0 {
		hg = int((hint - 1)) / f.cfg.BlocksPerGroup
		hi = int(hint - f.groupBase(hg))
	}
	if hg >= 0 && hg < f.ngroups {
		// Forward within the hint's group, starting right after it:
		// the first free block found this way extends the hint's run
		// when the neighbor is free, and otherwise stays ahead of the
		// file instead of re-walking the group head.
		for i := max(hi+1, f.dataStart); i < f.cfg.BlocksPerGroup; i++ {
			if !f.dataBits[hg].get(i) {
				return take(hg, i), nil
			}
		}
	}
	for off := 0; off < f.ngroups+1; off++ {
		// The hint's group gets one more pass (its pre-hint half),
		// then every group in order.
		g := hg
		if off > 0 {
			g = off - 1
		}
		if g < 0 || g >= f.ngroups {
			continue
		}
		for i := f.dataStart; i < f.cfg.BlocksPerGroup; i++ {
			if !f.dataBits[g].get(i) {
				return take(g, i), nil
			}
		}
	}
	return nil, core.ErrNoSpace
}

// tailHint returns the address of the file's highest mapped block —
// where the file last grew — or -1 for an empty map. The allocator
// hints with the tail, not Blocks[0]: first-fit from the file's
// first block re-scans a full group head on every append and
// scatters growing files behind other allocations.
func tailHint(ino *layout.Inode) int64 {
	for i := len(ino.Blocks) - 1; i >= 0; i-- {
		if ino.Blocks[i] >= 0 {
			return ino.Blocks[i]
		}
	}
	return -1
}

func (f *FFS) freeDataLocked(addr int64) {
	if addr < 1 {
		return
	}
	g := int((addr - 1)) / f.cfg.BlocksPerGroup
	i := int(addr - f.groupBase(g))
	if g < 0 || g >= f.ngroups || i < f.dataStart || i >= f.cfg.BlocksPerGroup {
		return
	}
	if f.dataBits[g].get(i) {
		f.dataBits[g].clear(i)
		f.bitsDirty = true
		f.freeData++
	}
}

// ReadBlock reads one file block in place.
func (f *FFS) ReadBlock(t sched.Task, ino *layout.Inode, blk core.BlockNo, data []byte) error {
	f.mu.Lock(t)
	addr := ino.BlockAddr(blk)
	f.mu.Unlock(t)
	if addr < 0 {
		if data != nil {
			for i := range data {
				data[i] = 0
			}
		}
		return nil
	}
	f.reads.Inc()
	return f.part.Read(t, addr, 1, data)
}

// ReadRun implements the clustered read: it probes the inode's
// address array for a disk-contiguous run starting at blk and moves
// the whole run in one device request. A hole reads as a single
// zeroed block.
func (f *FFS) ReadRun(t sched.Task, ino *layout.Inode, blk core.BlockNo, n int, data []byte) (int, error) {
	if lim := f.ClusterRun(); n > lim {
		n = lim
	}
	if n < 1 {
		n = 1
	}
	f.mu.Lock(t)
	addr := ino.BlockAddr(blk)
	run := 1
	for addr >= 0 && run < n && ino.BlockAddr(blk+core.BlockNo(run)) == addr+int64(run) {
		run++
	}
	f.mu.Unlock(t)
	if addr < 0 {
		if data != nil {
			for i := range data[:core.BlockSize] {
				data[i] = 0
			}
		}
		return 1, nil
	}
	if data != nil {
		data = data[:run*core.BlockSize]
	}
	f.reads.Add(int64(run))
	return run, f.part.Read(t, addr, run, data)
}

// ReadRunVec implements layout.VecRunReader: the clustered read with
// the run scattered directly into per-block buffers (cache frames the
// caller has claimed), no staging buffer. Same run discovery and
// return convention as ReadRun.
func (f *FFS) ReadRunVec(t sched.Task, ino *layout.Inode, blk core.BlockNo, n int, bufs [][]byte) (int, error) {
	if lim := f.ClusterRun(); n > lim {
		n = lim
	}
	if n > len(bufs) {
		n = len(bufs)
	}
	if n < 1 {
		n = 1
	}
	f.mu.Lock(t)
	addr := ino.BlockAddr(blk)
	run := 1
	for addr >= 0 && run < n && ino.BlockAddr(blk+core.BlockNo(run)) == addr+int64(run) {
		run++
	}
	f.mu.Unlock(t)
	if addr < 0 {
		for i := range bufs[0][:core.BlockSize] {
			bufs[0][i] = 0
		}
		return 1, nil
	}
	f.reads.Add(int64(run))
	if run == 1 {
		return 1, f.part.Read(t, addr, 1, bufs[0][:core.BlockSize])
	}
	vec := make([][]byte, run)
	for i := 0; i < run; i++ {
		vec[i] = bufs[i][:core.BlockSize]
	}
	return run, f.part.ReadVec(t, addr, run, vec)
}

// WriteBlocks writes the dirty blocks in place and then the inode
// synchronously. Missing blocks are allocated first, as contiguous
// forward runs off the file's tail, so sequential appends land
// adjacent; the write pass then coalesces block-number-contiguous,
// address-contiguous stretches into single multi-block requests up
// to the clustering cap (cap 1 — the default — is the classic
// one-request-per-block FFS).
func (f *FFS) WriteBlocks(t sched.Task, ino *layout.Inode, writes []layout.BlockWrite) error {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	hint := tailHint(ino)
	for i := 0; i < len(writes); {
		if addr := ino.BlockAddr(writes[i].Blk); addr >= 0 {
			hint = addr
			i++
			continue
		}
		// Reserve one run for the whole stretch of consecutive
		// missing file blocks.
		want := 1
		for i+want < len(writes) && writes[i+want].Blk == writes[i].Blk+core.BlockNo(want) &&
			ino.BlockAddr(writes[i+want].Blk) < 0 {
			want++
		}
		run, err := f.allocRunLocked(hint, want)
		if err != nil {
			return err
		}
		for j, addr := range run {
			ino.SetBlockAddr(writes[i+j].Blk, addr)
		}
		hint = run[len(run)-1]
		i += len(run)
	}
	lim := f.ClusterRun()
	var scratch []byte
	for i := 0; i < len(writes); {
		addr := ino.BlockAddr(writes[i].Blk)
		run := 1
		for run < lim && i+run < len(writes) &&
			writes[i+run].Blk == writes[i].Blk+core.BlockNo(run) &&
			ino.BlockAddr(writes[i+run].Blk) == addr+int64(run) {
			run++
		}
		if run > 1 && f.vectored {
			// Scatter-gather straight from the callers' block buffers
			// (cache frames held Flushing-stable for this call): one
			// device request, zero staging copies.
			vec := make([][]byte, run)
			for j := 0; j < run; j++ {
				vec[j] = writes[i+j].Data[:core.BlockSize]
			}
			f.writes.Add(int64(run))
			if err := f.part.WriteVec(t, addr, run, vec); err != nil {
				return err
			}
			i += run
			continue
		}
		var data []byte
		if run == 1 {
			data = writes[i].Data
		} else if !f.part.Simulated {
			// Gather the run into one staging buffer: one memcpy per
			// block buys one device request for the whole run.
			if scratch == nil {
				scratch = make([]byte, lim*core.BlockSize)
			}
			data = scratch[:run*core.BlockSize]
			for j := 0; j < run; j++ {
				copy(data[j*core.BlockSize:(j+1)*core.BlockSize], writes[i+j].Data)
			}
			f.staged.Add(int64(run) * core.BlockSize)
		}
		f.writes.Add(int64(run))
		if err := f.part.Write(t, addr, run, data); err != nil {
			return err
		}
		i += run
	}
	ino.MTime = int64(f.k.Now())
	return f.writeInode(t, ino)
}

// Truncate frees blocks beyond newSize and rewrites the inode.
func (f *FFS) Truncate(t sched.Task, ino *layout.Inode, newSize int64) error {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	keep := layout.BlocksForSize(newSize)
	for i := keep; i < int64(len(ino.Blocks)); i++ {
		if ino.Blocks[i] >= 0 {
			f.freeDataLocked(ino.Blocks[i])
		}
	}
	if keep < int64(len(ino.Blocks)) {
		ino.Blocks = ino.Blocks[:keep]
	}
	ino.Size = newSize
	ino.MTime = int64(f.k.Now())
	return f.writeInode(t, ino)
}

// PlaceExisting assigns sticky placement to a pre-existing simulated
// file: a random group position, then the whole free run from there
// — the educated guess matches what FFS's own allocator produces
// (files laid down once are mostly contiguous), so rewrites and
// readahead over pre-existing files see the same run structure real
// allocation would have left.
func (f *FFS) PlaceExisting(t sched.Task, ino *layout.Inode, size int64) error {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	if !f.part.Simulated {
		return layout.ErrNoPlaceExisting
	}
	need := layout.BlocksForSize(size)
	rng := f.k.Rand()
	span := f.cfg.BlocksPerGroup - f.dataStart
	for need > 0 {
		placed := false
		g := rng.Intn(f.ngroups)
		for tries := 0; tries < f.ngroups && !placed; tries++ {
			gg := (g + tries) % f.ngroups
			start := rng.Intn(span)
			for i := 0; i < span; i++ {
				idx := f.dataStart + (start+i)%span
				if f.dataBits[gg].get(idx) {
					continue
				}
				// Take the whole free run from the first gap found.
				for need > 0 && idx < f.cfg.BlocksPerGroup && !f.dataBits[gg].get(idx) {
					f.dataBits[gg].set(idx)
					f.freeData--
					ino.SetBlockAddr(core.BlockNo(len(ino.Blocks)), f.groupBase(gg)+int64(idx))
					need--
					idx++
				}
				placed = true
				break
			}
		}
		if !placed {
			return core.ErrNoSpace
		}
	}
	ino.Size = size
	f.inodes[ino.ID] = ino
	return nil
}
