package ffs

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/stats"
)

type rig struct {
	k   *sched.VKernel
	drv device.Driver
	f   *FFS
}

func newRig(seed int64, blocks int64) *rig {
	k := sched.NewVirtual(seed)
	drv := device.NewMemDriver(k, "mem0", blocks, nil)
	part := layout.NewPartition(drv, 0, 0, blocks, false)
	f := New(k, "vol0", part, Config{BlocksPerGroup: 512, InodesPerGroup: 64})
	return &rig{k: k, drv: drv, f: f}
}

func run(t *testing.T, k *sched.VKernel, body func(tk sched.Task)) {
	t.Helper()
	k.Go("test", func(tk sched.Task) {
		body(tk)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func blockOf(b byte) []byte { return bytes.Repeat([]byte{b}, core.BlockSize) }

func TestFormatMountWriteRead(t *testing.T) {
	r := newRig(1, 2048)
	run(t, r.k, func(tk sched.Task) {
		if err := r.f.Format(tk); err != nil {
			t.Fatalf("Format: %v", err)
		}
		if err := r.f.Mount(tk); err != nil {
			t.Fatalf("Mount: %v", err)
		}
		ino, err := r.f.AllocInode(tk, core.TypeRegular)
		if err != nil {
			t.Fatalf("AllocInode: %v", err)
		}
		ino.Size = 2 * core.BlockSize
		err = r.f.WriteBlocks(tk, ino, []layout.BlockWrite{
			{Blk: 0, Data: blockOf(0xA1), Size: core.BlockSize},
			{Blk: 1, Data: blockOf(0xB2), Size: core.BlockSize},
		})
		if err != nil {
			t.Fatalf("WriteBlocks: %v", err)
		}
		got := make([]byte, core.BlockSize)
		r.f.ReadBlock(tk, ino, 1, got)
		if !bytes.Equal(got, blockOf(0xB2)) {
			t.Fatal("read-back mismatch")
		}
	})
}

func TestInPlaceOverwrite(t *testing.T) {
	r := newRig(2, 2048)
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		ino, _ := r.f.AllocInode(tk, core.TypeRegular)
		ino.Size = core.BlockSize
		r.f.WriteBlocks(tk, ino, []layout.BlockWrite{{Blk: 0, Data: blockOf(1), Size: core.BlockSize}})
		a1 := ino.BlockAddr(0)
		r.f.WriteBlocks(tk, ino, []layout.BlockWrite{{Blk: 0, Data: blockOf(2), Size: core.BlockSize}})
		a2 := ino.BlockAddr(0)
		if a1 != a2 {
			t.Fatalf("FFS moved a block on overwrite: %d → %d", a1, a2)
		}
	})
}

func TestRemountRecovers(t *testing.T) {
	r := newRig(3, 2048)
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		ino, _ := r.f.AllocInode(tk, core.TypeRegular)
		id := ino.ID
		ino.Size = core.BlockSize
		r.f.WriteBlocks(tk, ino, []layout.BlockWrite{{Blk: 0, Data: blockOf(0xCD), Size: core.BlockSize}})
		r.f.Sync(tk)
		f2 := New(r.k, "vol0", layout.NewPartition(r.drv, 0, 0, r.drv.CapacityBlocks(), false), Config{})
		if err := f2.Mount(tk); err != nil {
			t.Fatalf("remount: %v", err)
		}
		ino2, err := f2.GetInode(tk, id)
		if err != nil {
			t.Fatalf("GetInode: %v", err)
		}
		got := make([]byte, core.BlockSize)
		f2.ReadBlock(tk, ino2, 0, got)
		if !bytes.Equal(got, blockOf(0xCD)) {
			t.Fatal("data lost across remount")
		}
	})
}

func TestIndirectFileRemount(t *testing.T) {
	r := newRig(4, 4096)
	n := layout.NDirect + 8
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		ino, _ := r.f.AllocInode(tk, core.TypeRegular)
		id := ino.ID
		var ws []layout.BlockWrite
		for i := 0; i < n; i++ {
			ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(i), Data: blockOf(byte(i + 1)), Size: core.BlockSize})
		}
		ino.Size = int64(n) * core.BlockSize
		if err := r.f.WriteBlocks(tk, ino, ws); err != nil {
			t.Fatalf("WriteBlocks: %v", err)
		}
		r.f.Sync(tk)
		f2 := New(r.k, "vol0", layout.NewPartition(r.drv, 0, 0, r.drv.CapacityBlocks(), false), Config{})
		f2.Mount(tk)
		ino2, err := f2.GetInode(tk, id)
		if err != nil {
			t.Fatalf("GetInode: %v", err)
		}
		got := make([]byte, core.BlockSize)
		f2.ReadBlock(tk, ino2, core.BlockNo(n-1), got)
		if got[0] != byte(n) {
			t.Fatalf("indirect block lost: %#x", got[0])
		}
	})
}

func TestFreeInodeReleasesSpace(t *testing.T) {
	r := newRig(5, 2048)
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		before := r.f.FreeBlocks()
		ino, _ := r.f.AllocInode(tk, core.TypeRegular)
		ino.Size = 4 * core.BlockSize
		var ws []layout.BlockWrite
		for i := 0; i < 4; i++ {
			ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(i), Data: blockOf(1), Size: core.BlockSize})
		}
		r.f.WriteBlocks(tk, ino, ws)
		if r.f.FreeBlocks() != before-4 {
			t.Fatalf("free space %d, want %d", r.f.FreeBlocks(), before-4)
		}
		r.f.FreeInode(tk, ino.ID)
		if r.f.FreeBlocks() != before {
			t.Fatalf("space not reclaimed: %d vs %d", r.f.FreeBlocks(), before)
		}
		if _, err := r.f.GetInode(tk, ino.ID); err != core.ErrNotFound {
			t.Fatalf("freed inode still readable: %v", err)
		}
	})
}

func TestTruncate(t *testing.T) {
	r := newRig(6, 2048)
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		ino, _ := r.f.AllocInode(tk, core.TypeRegular)
		ino.Size = 3 * core.BlockSize
		var ws []layout.BlockWrite
		for i := 0; i < 3; i++ {
			ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(i), Data: blockOf(1), Size: core.BlockSize})
		}
		r.f.WriteBlocks(tk, ino, ws)
		free := r.f.FreeBlocks()
		r.f.Truncate(tk, ino, core.BlockSize)
		if r.f.FreeBlocks() != free+2 {
			t.Fatalf("truncate freed %d, want 2", r.f.FreeBlocks()-free)
		}
	})
}

func TestDirectorySpreadFilesCluster(t *testing.T) {
	r := newRig(7, 4096) // multiple groups
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		d1, _ := r.f.AllocInode(tk, core.TypeDirectory)
		d2, _ := r.f.AllocInode(tk, core.TypeDirectory)
		g1 := int(d1.ID) / r.f.cfg.InodesPerGroup
		g2 := int(d2.ID) / r.f.cfg.InodesPerGroup
		if r.f.ngroups > 1 && g1 == g2 {
			t.Fatalf("directories not spread: both in group %d", g1)
		}
	})
}

func TestSimulatedFFS(t *testing.T) {
	k := sched.NewVirtual(8)
	part := layout.NewPartition(nullDriver{k, 4096}, 0, 0, 4096, true)
	f := New(k, "simvol", part, Config{BlocksPerGroup: 512, InodesPerGroup: 64})
	run(t, k, func(tk sched.Task) {
		f.Format(tk)
		f.Mount(tk)
		ino, err := f.AllocInode(tk, core.TypeRegular)
		if err != nil {
			t.Fatalf("AllocInode: %v", err)
		}
		ino.Size = core.BlockSize
		if err := f.WriteBlocks(tk, ino, []layout.BlockWrite{{Blk: 0, Size: core.BlockSize}}); err != nil {
			t.Fatalf("sim write: %v", err)
		}
		if err := f.PlaceExisting(tk, ino, 0); err != nil {
			t.Fatalf("PlaceExisting: %v", err)
		}
	})
}

func TestStats(t *testing.T) {
	r := newRig(9, 2048)
	set := stats.NewSet()
	r.f.Stats(set)
	if set.Len() != 4 {
		t.Fatalf("sources = %d", set.Len())
	}
	if r.f.Name() != "ffs" || r.f.String() == "" {
		t.Fatal("descriptions wrong")
	}
}

type nullDriver struct {
	k      sched.Kernel
	blocks int64
}

func (d nullDriver) Name() string                           { return "null" }
func (d nullDriver) Submit(t sched.Task, r *device.Request) {}
func (d nullDriver) Wait(t sched.Task, r *device.Request)   {}
func (d nullDriver) Do(t sched.Task, r *device.Request) error {
	return nil
}
func (d nullDriver) QueueLen() int                    { return 0 }
func (d nullDriver) CapacityBlocks() int64            { return d.blocks }
func (d nullDriver) DriverStats() *device.DriverStats { return nil }
func (d nullDriver) SetInjector(device.Interceptor)   {}
func (d nullDriver) Close() error                     { return nil }
