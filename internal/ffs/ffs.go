// Package ffs implements an FFS-like in-place storage layout — the
// kind of layout the paper names as the natural alternative to its
// segmented LFS ("to implement other storage-layouts such as a Unix
// FFS, a new derived storage-layout class needs to be written"). It
// serves as the comparison baseline in the layout ablation: cylinder
// groups with inode and data bitmaps, inodes at fixed locations,
// data allocated near its inode, updates written in place, and
// metadata written synchronously in the FFS tradition.
package ffs

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Config tunes the layout.
type Config struct {
	// BlocksPerGroup is the cylinder-group size in blocks.
	BlocksPerGroup int
	// InodesPerGroup fixes the inode table size per group.
	InodesPerGroup int
}

// DefaultConfig mirrors a small FFS: 2048-block (8 MB) groups with
// 256 inodes each.
func DefaultConfig() Config {
	return Config{BlocksPerGroup: 2048, InodesPerGroup: 256}
}

const superMagic = 0x46465331 // "FFS1"

// group bookkeeping offsets within a group (in blocks):
// 0 = inode bitmap, 1 = data bitmap, 2.. = inode table, then data.
const (
	gInoBitmap  = 0
	gDataBitmap = 1
	gInoTable   = 2
)

// FFS is the in-place layout.
type FFS struct {
	name string
	k    sched.Kernel
	part *layout.Partition
	cfg  Config
	mu   sched.Mutex

	ngroups   int
	itblks    int // inode-table blocks per group
	dataStart int // first data block within a group

	inoBits   []bitset // per group
	dataBits  []bitset
	bitsDirty bool
	tornMeta  []string // bitmap checksum mismatches found at Mount

	// durSeq counts synchronous metadata writes (inode records and
	// bitmap syncs) — the layout's durability watermark.
	durSeq uint64

	inodes  map[core.FileID]*layout.Inode
	mounted bool

	// clusterRun caps multi-block transfers (see layout.Clustered);
	// <= 1 keeps the classic one-block-per-request behavior.
	clusterRun int
	// vectored routes clustered transfers through scatter-gather
	// device requests built straight from the caller's per-block
	// buffers (see layout.Vectored); never set on simulated
	// partitions.
	vectored bool

	reads, writes *stats.Counter
	inoWrites     *stats.Counter
	staged        *stats.Counter // bytes memcpy'd through staging buffers
	freeData      int64
}

// bitset is a simple block-sized bitmap. The last 8 bytes of the
// block are reserved for an FNV-1a checksum of the rest, stamped at
// every bitmap write: a sub-block tear of an in-place bitmap update
// would otherwise splice stale and fresh allocation state together
// undetectably. bitmapBits caps the usable bit space accordingly.
type bitset []byte

const bitmapBits = (core.BlockSize - 8) * 8

func bitmapSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b[:core.BlockSize-8])
	return h.Sum64()
}

func (b bitset) get(i int) bool { return b[i/8]&(1<<(i%8)) != 0 }
func (b bitset) set(i int)      { b[i/8] |= 1 << (i % 8) }
func (b bitset) clear(i int)    { b[i/8] &^= 1 << (i % 8) }

// New builds an FFS over part.
func New(k sched.Kernel, name string, part *layout.Partition, cfg Config) *FFS {
	if cfg.BlocksPerGroup <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.InodesPerGroup <= 0 {
		cfg.InodesPerGroup = 256
	}
	if cfg.InodesPerGroup%layout.InodesPerBlk != 0 {
		cfg.InodesPerGroup += layout.InodesPerBlk - cfg.InodesPerGroup%layout.InodesPerBlk
	}
	// The checksum tail of each bitmap block bounds the bit space.
	if cfg.BlocksPerGroup > bitmapBits {
		cfg.BlocksPerGroup = bitmapBits
	}
	if cfg.InodesPerGroup > bitmapBits {
		cfg.InodesPerGroup = bitmapBits
	}
	f := &FFS{
		name:      name,
		k:         k,
		part:      part,
		cfg:       cfg,
		mu:        k.NewMutex(name + ".ffs"),
		inodes:    make(map[core.FileID]*layout.Inode),
		reads:     stats.NewCounter(name + ".data_reads"),
		writes:    stats.NewCounter(name + ".data_writes"),
		inoWrites: stats.NewCounter(name + ".inode_writes"),
		staged:    stats.NewCounter(name + ".staged_copy_bytes"),
	}
	f.deriveGeometry()
	return f
}

// deriveGeometry recomputes sizes from the current configuration
// (set at New for Format, or read from the superblock by Mount).
func (f *FFS) deriveGeometry() {
	f.itblks = f.cfg.InodesPerGroup / layout.InodesPerBlk
	f.dataStart = gInoTable + f.itblks
	f.ngroups = int((f.part.Blocks - 1) / int64(f.cfg.BlocksPerGroup))
}

// Name returns "ffs".
func (f *FFS) Name() string { return "ffs" }

// SetClusterRun implements layout.Clustered: data reads and writes
// may move up to n contiguous blocks per device request.
func (f *FFS) SetClusterRun(n int) {
	if n < 1 {
		n = 1
	}
	f.clusterRun = n
}

// ClusterRun implements layout.Clustered.
func (f *FFS) ClusterRun() int {
	if f.clusterRun < 1 {
		return 1
	}
	return f.clusterRun
}

// SetVectored implements layout.Vectored: clustered writes gather
// straight from the per-block buffers and vectored run reads scatter
// straight into them. Simulated partitions move no data, so the flag
// stays off there.
func (f *FFS) SetVectored(on bool) {
	f.vectored = on && !f.part.Simulated
}

// VectoredIO implements layout.Vectored.
func (f *FFS) VectoredIO() bool { return f.vectored }

// StagedCopyBytes implements layout.StagedCopy.
func (f *FFS) StagedCopyBytes() int64 { return f.staged.Value() }

// groupBase returns the first block of group g (block 0 is the
// superblock).
func (f *FFS) groupBase(g int) int64 {
	return 1 + int64(g)*int64(f.cfg.BlocksPerGroup)
}

// inodeLoc maps an inode number to its group, table block and slot.
func (f *FFS) inodeLoc(id core.FileID) (g int, blk int64, slot int) {
	n := int(id)
	g = n / f.cfg.InodesPerGroup
	idx := n % f.cfg.InodesPerGroup
	blk = f.groupBase(g) + gInoTable + int64(idx/layout.InodesPerBlk)
	slot = idx % layout.InodesPerBlk
	return
}

// Format initializes empty groups.
func (f *FFS) Format(t sched.Task) error {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	if f.ngroups < 1 {
		return fmt.Errorf("ffs %s: partition of %d blocks too small for one %d-block group",
			f.name, f.part.Blocks, f.cfg.BlocksPerGroup)
	}
	f.inoBits = make([]bitset, f.ngroups)
	f.dataBits = make([]bitset, f.ngroups)
	f.freeData = 0
	for g := 0; g < f.ngroups; g++ {
		f.inoBits[g] = make(bitset, core.BlockSize)
		f.dataBits[g] = make(bitset, core.BlockSize)
		// Bookkeeping blocks are permanently allocated.
		for i := 0; i < f.dataStart; i++ {
			f.dataBits[g].set(i)
		}
		f.freeData += int64(f.cfg.BlocksPerGroup - f.dataStart)
	}
	// Inode 0 and 1 reserved (Unix tradition); root is inode 2.
	f.inoBits[0].set(0)
	f.inoBits[0].set(1)
	if err := f.writeSuper(t); err != nil {
		return err
	}
	return f.syncBitmaps(t)
}

// Mount loads the superblock and bitmaps.
func (f *FFS) Mount(t sched.Task) error {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	if f.part.Simulated {
		if f.inoBits == nil {
			return fmt.Errorf("ffs %s: simulated mount requires Format first", f.name)
		}
		f.mounted = true
		return nil
	}
	buf := make([]byte, core.BlockSize)
	if err := f.part.Read(t, 0, 1, buf); err != nil {
		return err
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != superMagic {
		return fmt.Errorf("ffs %s: bad superblock magic", f.name)
	}
	f.cfg.BlocksPerGroup = int(le.Uint32(buf[4:]))
	f.cfg.InodesPerGroup = int(le.Uint32(buf[8:]))
	f.deriveGeometry()
	f.ngroups = int(le.Uint32(buf[12:]))
	f.inoBits = make([]bitset, f.ngroups)
	f.dataBits = make([]bitset, f.ngroups)
	f.tornMeta = nil
	f.freeData = 0
	for g := 0; g < f.ngroups; g++ {
		f.inoBits[g] = make(bitset, core.BlockSize)
		f.dataBits[g] = make(bitset, core.BlockSize)
		if err := f.part.Read(t, f.groupBase(g)+gInoBitmap, 1, f.inoBits[g]); err != nil {
			return err
		}
		if err := f.part.Read(t, f.groupBase(g)+gDataBitmap, 1, f.dataBits[g]); err != nil {
			return err
		}
		// A checksum mismatch marks a torn bitmap write. The mount
		// proceeds (the bits may still be mostly right) but Check
		// reports it and Repair rebuilds from the inode table.
		if got := binary.LittleEndian.Uint64(f.inoBits[g][core.BlockSize-8:]); got != bitmapSum(f.inoBits[g]) {
			f.tornMeta = append(f.tornMeta,
				fmt.Sprintf("group %d inode bitmap checksum mismatch (torn write)", g))
		}
		if got := binary.LittleEndian.Uint64(f.dataBits[g][core.BlockSize-8:]); got != bitmapSum(f.dataBits[g]) {
			f.tornMeta = append(f.tornMeta,
				fmt.Sprintf("group %d data bitmap checksum mismatch (torn write)", g))
		}
		for i := f.dataStart; i < f.cfg.BlocksPerGroup; i++ {
			if !f.dataBits[g].get(i) {
				f.freeData++
			}
		}
	}
	f.mounted = true
	return nil
}

func (f *FFS) writeSuper(t sched.Task) error {
	var buf []byte
	if !f.part.Simulated {
		buf = make([]byte, core.BlockSize)
		le := binary.LittleEndian
		le.PutUint32(buf[0:], superMagic)
		le.PutUint32(buf[4:], uint32(f.cfg.BlocksPerGroup))
		le.PutUint32(buf[8:], uint32(f.cfg.InodesPerGroup))
		le.PutUint32(buf[12:], uint32(f.ngroups))
	}
	return f.part.Write(t, 0, 1, buf)
}

// syncBitmaps writes every group's bitmaps, stamping each block's
// checksum tail.
func (f *FFS) syncBitmaps(t sched.Task) error {
	le := binary.LittleEndian
	for g := 0; g < f.ngroups; g++ {
		var ib, db []byte
		if !f.part.Simulated {
			ib, db = f.inoBits[g], f.dataBits[g]
			le.PutUint64(ib[core.BlockSize-8:], bitmapSum(ib))
			le.PutUint64(db[core.BlockSize-8:], bitmapSum(db))
		}
		if err := f.part.Write(t, f.groupBase(g)+gInoBitmap, 1, ib); err != nil {
			return err
		}
		if err := f.part.Write(t, f.groupBase(g)+gDataBitmap, 1, db); err != nil {
			return err
		}
	}
	f.bitsDirty = false
	f.durSeq++
	return nil
}

// DurableSeq implements layout.DurableWatermark: FFS metadata is
// written synchronously, so the watermark is simply a count of the
// synchronous metadata writes performed.
func (f *FFS) DurableSeq(t sched.Task) uint64 {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	return f.durSeq
}

// Sync flushes bitmaps (inodes are written synchronously already).
func (f *FFS) Sync(t sched.Task) error {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	if f.bitsDirty {
		return f.syncBitmaps(t)
	}
	return nil
}

// FreeBlocks reports free data blocks.
func (f *FFS) FreeBlocks() int64 {
	// Same publication rule as the LFS log head: allocators move
	// freeData under f.mu on the real kernel.
	if !f.k.Virtual() {
		f.mu.Lock(nil)
		defer f.mu.Unlock(nil)
	}
	return f.freeData
}

// Stats registers the layout's counters.
func (f *FFS) Stats(set *stats.Set) {
	set.Add(f.reads)
	set.Add(f.writes)
	set.Add(f.inoWrites)
	set.Add(f.staged)
}

func (f *FFS) String() string {
	return fmt.Sprintf("ffs %s: %d groups × %d blocks, %d inodes/group",
		f.name, f.ngroups, f.cfg.BlocksPerGroup, f.cfg.InodesPerGroup)
}
