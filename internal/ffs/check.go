package ffs

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// This file is the FFS consistency machinery. FFS writes inode
// records synchronously but defers its allocation bitmaps to Sync,
// so a crash leaves the inode table authoritative and the bitmaps
// stale — the classic fsck situation. Check reports the divergence;
// Repair rebuilds the bitmaps (and the in-memory state) from a full
// scan of the inode table, bringing the volume to a mountable state
// that Check then accepts.

// Check verifies the layout's invariants against the reachable file
// tree:
//
//   - every allocated inode has a readable record (real volumes),
//   - every block and indirect pointer is in range, inside a group's
//     data area, and marked used in the data bitmap,
//   - no two files claim the same block,
//   - no data block is marked used without a claimant (leaks),
//   - no inode record exists for a bitmap-free inode number.
//
// It returns every violation found (nil means consistent).
func (f *FFS) Check(t sched.Task) []error {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)

	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("ffs %s: "+format, append([]any{f.name}, args...)...))
	}

	// Torn bitmap writes found at Mount (checksum mismatches).
	for _, m := range f.tornMeta {
		bad("%s", m)
	}

	owner := map[int64]string{}
	claimed := map[int64]bool{}
	claim := func(addr int64, what string) {
		g, i, ok := f.locateData(addr)
		if !ok {
			bad("%s at %d outside any group's data area", what, addr)
			return
		}
		if prev, dup := owner[addr]; dup {
			bad("address %d claimed by both %s and %s", addr, prev, what)
			return
		}
		owner[addr] = what
		claimed[addr] = true
		if !f.dataBits[g].get(i) {
			bad("%s at %d is free in the data bitmap", what, addr)
		}
	}

	// One pass over the on-disk inode table (real volumes) records
	// which slots hold a live record.
	recorded := map[core.FileID]bool{}
	if !f.part.Simulated {
		buf := make([]byte, core.BlockSize)
		for g := 0; g < f.ngroups; g++ {
			for tb := 0; tb < f.itblks; tb++ {
				if err := f.part.Read(t, f.groupBase(g)+gInoTable+int64(tb), 1, buf); err != nil {
					bad("inode table read (group %d block %d): %v", g, tb, err)
					continue
				}
				for slot := 0; slot < layout.InodesPerBlk; slot++ {
					id := core.FileID(g*f.cfg.InodesPerGroup + tb*layout.InodesPerBlk + slot)
					if di, err := layout.DecodeInode(buf[slot*layout.InodeSize:]); err == nil &&
						di.Ino.ID == id && di.Ino.Type != core.TypeFree {
						recorded[id] = true
					}
				}
			}
		}
	}

	for g := 0; g < f.ngroups; g++ {
		for i := 0; i < f.cfg.InodesPerGroup; i++ {
			if g == 0 && i < int(core.RootFile) {
				continue // reserved inodes 0 and 1
			}
			id := core.FileID(g*f.cfg.InodesPerGroup + i)
			if !f.inoBits[g].get(i) {
				// A record on disk for a bitmap-free inode: the
				// allocation outlived a lost bitmap write.
				if recorded[id] {
					bad("inode %d has an on-disk record but is free in the inode bitmap", id)
				}
				continue
			}
			ino, err := f.getInodeLocked(t, id)
			if err != nil {
				bad("allocated inode %d unreadable: %v", id, err)
				continue
			}
			for b, addr := range ino.Blocks {
				if addr >= 0 {
					claim(addr, fmt.Sprintf("f%d/b%d", id, b))
				}
			}
			for x, addr := range ino.IndAddrs {
				claim(addr, fmt.Sprintf("f%d/ind%d", id, x))
			}
		}
	}

	// Leaks: used data bits nobody claims.
	for g := 0; g < f.ngroups; g++ {
		leaks := 0
		for i := f.dataStart; i < f.cfg.BlocksPerGroup; i++ {
			if f.dataBits[g].get(i) && !claimed[f.groupBase(g)+int64(i)] {
				leaks++
			}
		}
		if leaks > 0 {
			bad("group %d leaks %d data blocks (marked used, unreachable)", g, leaks)
		}
	}
	return errs
}

// locateData maps a partition-relative address into (group, offset)
// and reports whether it lies in a data area.
func (f *FFS) locateData(addr int64) (g, i int, ok bool) {
	if addr < 1 {
		return 0, 0, false
	}
	g = int(addr-1) / f.cfg.BlocksPerGroup
	if g < 0 || g >= f.ngroups {
		return 0, 0, false
	}
	i = int(addr - f.groupBase(g))
	if i < f.dataStart || i >= f.cfg.BlocksPerGroup {
		return 0, 0, false
	}
	return g, i, true
}

// Repair is the fsck write pass: it scans the on-disk inode table —
// the synchronously-written truth — and rebuilds both allocation
// bitmaps, the free count and the in-memory tables from it. Stale
// bitmap state (the normal crash damage: Sync never ran) is healed;
// resurrected allocations and reclaimed blocks are reported. The
// rebuilt bitmaps are written back and the volume is mounted.
func (f *FFS) Repair(t sched.Task) ([]string, error) {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	if f.part.Simulated {
		return nil, fmt.Errorf("ffs %s: Repair needs a real volume", f.name)
	}
	var notes []string
	notef := func(format string, args ...any) {
		notes = append(notes, fmt.Sprintf(format, args...))
	}

	newIno := make([]bitset, f.ngroups)
	newData := make([]bitset, f.ngroups)
	for g := 0; g < f.ngroups; g++ {
		newIno[g] = make(bitset, core.BlockSize)
		newData[g] = make(bitset, core.BlockSize)
		for i := 0; i < f.dataStart; i++ {
			newData[g].set(i)
		}
	}
	newIno[0].set(0)
	newIno[0].set(1)

	owner := map[int64]core.FileID{}
	f.inodes = make(map[core.FileID]*layout.Inode)
	var rewrite []core.FileID // inodes with cleared pointers, written back after bitmap adoption
	buf := make([]byte, core.BlockSize)
	for g := 0; g < f.ngroups; g++ {
		for tb := 0; tb < f.itblks; tb++ {
			blk := f.groupBase(g) + gInoTable + int64(tb)
			if err := f.part.Read(t, blk, 1, buf); err != nil {
				return notes, err
			}
			for slot := 0; slot < layout.InodesPerBlk; slot++ {
				id := core.FileID(g*f.cfg.InodesPerGroup + tb*layout.InodesPerBlk + slot)
				di, err := layout.DecodeInode(buf[slot*layout.InodeSize:])
				if err != nil || di.Ino.ID != id || di.Ino.Type == core.TypeFree {
					continue // empty or garbage slot
				}
				ino := &di.Ino
				if err := f.loadBlockMap(t, ino, di); err != nil {
					notef("inode %d: unreadable block map, dropped: %v", id, err)
					continue
				}
				dirtyIno := false
				for b := range ino.Blocks {
					addr := ino.Blocks[b]
					if addr < 0 {
						continue
					}
					gg, i, ok := f.locateData(addr)
					if !ok {
						notef("inode %d block %d: address %d out of range, cleared", id, b, addr)
						ino.Blocks[b] = -1
						dirtyIno = true
						continue
					}
					if prev, dup := owner[addr]; dup {
						notef("inode %d block %d: address %d already owned by inode %d, cleared", id, b, addr, prev)
						ino.Blocks[b] = -1
						dirtyIno = true
						continue
					}
					owner[addr] = id
					newData[gg].set(i)
				}
				// Indirect map blocks get the same duplicate/range
				// policy as data: a cross-linked or wild pointer is
				// dropped, and the rewrite below reissues the map
				// from the flat block list into fresh blocks.
				keptInd := ino.IndAddrs[:0]
				for x, addr := range ino.IndAddrs {
					gg, i, ok := f.locateData(addr)
					if !ok {
						notef("inode %d indirect %d: address %d out of range, reissued", id, x, addr)
						dirtyIno = true
						continue
					}
					if prev, dup := owner[addr]; dup {
						notef("inode %d indirect %d: address %d already owned by inode %d, reissued", id, x, addr, prev)
						dirtyIno = true
						continue
					}
					owner[addr] = id
					newData[gg].set(i)
					keptInd = append(keptInd, addr)
				}
				ino.IndAddrs = keptInd
				newIno[g].set(int(id) % f.cfg.InodesPerGroup)
				f.inodes[id] = ino
				if !f.inoBits[g].get(int(id) % f.cfg.InodesPerGroup) {
					notef("inode %d: resurrected from the table (bitmap said free)", id)
				}
				if dirtyIno {
					rewrite = append(rewrite, id)
				}
			}
		}
	}

	// Diff the data bitmaps for the report, then adopt the rebuild.
	reclaimed, adopted := 0, 0
	for g := 0; g < f.ngroups; g++ {
		for i := f.dataStart; i < f.cfg.BlocksPerGroup; i++ {
			was, now := f.dataBits[g].get(i), newData[g].get(i)
			switch {
			case was && !now:
				reclaimed++
			case !was && now:
				adopted++
			}
		}
	}
	if reclaimed > 0 {
		notef("reclaimed %d leaked data blocks", reclaimed)
	}
	if adopted > 0 {
		notef("marked %d reachable data blocks used (bitmap said free)", adopted)
	}
	// Drop bitmap-only inode allocations the table does not back.
	for g := 0; g < f.ngroups; g++ {
		for i := 0; i < f.cfg.InodesPerGroup; i++ {
			if g == 0 && i < int(core.RootFile) {
				continue
			}
			if f.inoBits[g].get(i) && !newIno[g].get(i) {
				notef("inode %d: allocation without a record, freed", g*f.cfg.InodesPerGroup+i)
			}
		}
	}
	if len(f.tornMeta) > 0 {
		notef("rewrote %d torn bitmap blocks from the inode table", len(f.tornMeta))
		f.tornMeta = nil
	}
	f.inoBits = newIno
	f.dataBits = newData
	f.freeData = 0
	for g := 0; g < f.ngroups; g++ {
		for i := f.dataStart; i < f.cfg.BlocksPerGroup; i++ {
			if !f.dataBits[g].get(i) {
				f.freeData++
			}
		}
	}
	// Rewrite inodes whose pointers were cleared, now that block
	// allocation runs against the rebuilt bitmaps.
	for _, id := range rewrite {
		if err := f.writeInode(t, f.inodes[id]); err != nil {
			return notes, err
		}
	}
	if err := f.syncBitmaps(t); err != nil {
		return notes, err
	}
	f.mounted = true
	sort.Strings(notes)
	return notes, nil
}

// Recover implements layout.Recoverer: mount from the superblock,
// then repair the bitmaps from the inode table. On simulated volumes
// — whose state survives in memory — it charges the scan I/O a real
// repair performs and rewrites the bitmaps, the recovery-time model
// the reliability study measures.
func (f *FFS) Recover(t sched.Task) (layout.RecoveryStats, error) {
	var st layout.RecoveryStats
	if f.part.Simulated {
		f.mu.Lock(t)
		defer f.mu.Unlock(t)
		if f.inoBits == nil {
			return st, fmt.Errorf("ffs %s: simulated recovery requires Format first", f.name)
		}
		if err := f.part.Read(t, 0, 1, nil); err != nil {
			return st, err
		}
		for g := 0; g < f.ngroups; g++ {
			// Bitmaps plus the full inode table of every group.
			if err := f.part.Read(t, f.groupBase(g), f.dataStart, nil); err != nil {
				return st, err
			}
		}
		if err := f.syncBitmaps(t); err != nil {
			return st, err
		}
		f.mounted = true
		return st, nil
	}
	if err := f.Mount(t); err != nil {
		return st, err
	}
	notes, err := f.Repair(t)
	st.Repairs = notes
	st.InodeRecords = len(f.inodes)
	return st, err
}

// GrowSize implements layout.Sizer: the size grows under f.mu, the
// lock the inode writer holds when it encodes the record.
func (f *FFS) GrowSize(t sched.Task, ino *layout.Inode, size int64) {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	if size > ino.Size {
		ino.Size = size
	}
}

// WithInode implements layout.InodeLocker: fn runs under f.mu, the
// lock the inode writer holds when it encodes the record.
func (f *FFS) WithInode(t sched.Task, ino *layout.Inode, fn func()) {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	fn()
}

// LiveInodes implements layout.InodeEnumerator.
func (f *FFS) LiveInodes(t sched.Task) []core.FileID {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	var ids []core.FileID
	for g := 0; g < f.ngroups; g++ {
		for i := 0; i < f.cfg.InodesPerGroup; i++ {
			if g == 0 && i < int(core.RootFile) {
				continue
			}
			if f.inoBits[g].get(i) {
				ids = append(ids, core.FileID(g*f.cfg.InodesPerGroup+i))
			}
		}
	}
	return ids
}
