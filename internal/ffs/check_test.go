package ffs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// reopen builds a fresh FFS over the rig's device, as after a crash.
func (r *rig) reopen() *FFS {
	part := layout.NewPartition(r.drv, 0, 0, r.drv.CapacityBlocks(), false)
	return New(r.k, "vol0", part, Config{})
}

// TestCheckCleanAfterSync verifies a synced volume passes fsck.
func TestCheckCleanAfterSync(t *testing.T) {
	r := newRig(21, 2048)
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		ino, _ := r.f.AllocInode(tk, core.TypeRegular)
		ino.Size = 2 * core.BlockSize
		r.f.WriteBlocks(tk, ino, []layout.BlockWrite{
			{Blk: 0, Data: blockOf(1), Size: core.BlockSize},
			{Blk: 1, Data: blockOf(2), Size: core.BlockSize},
		})
		r.f.Sync(tk)
		if errs := r.f.Check(tk); len(errs) != 0 {
			t.Fatalf("clean volume flagged: %v", errs)
		}
		f2 := r.reopen()
		if err := f2.Mount(tk); err != nil {
			t.Fatalf("remount: %v", err)
		}
		if errs := f2.Check(tk); len(errs) != 0 {
			t.Fatalf("remounted clean volume flagged: %v", errs)
		}
	})
}

// TestCheckFlagsStaleBitmaps crashes before Sync: the inode records
// are durable, the bitmaps are stale, and Check must say so.
func TestCheckFlagsStaleBitmaps(t *testing.T) {
	r := newRig(22, 2048)
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		ino, _ := r.f.AllocInode(tk, core.TypeRegular)
		ino.Size = 2 * core.BlockSize
		r.f.WriteBlocks(tk, ino, []layout.BlockWrite{
			{Blk: 0, Data: blockOf(1), Size: core.BlockSize},
			{Blk: 1, Data: blockOf(2), Size: core.BlockSize},
		})
		// No Sync: crash. The fresh incarnation reads stale bitmaps.
		f2 := r.reopen()
		if err := f2.Mount(tk); err != nil {
			t.Fatalf("remount: %v", err)
		}
		if errs := f2.Check(tk); len(errs) == 0 {
			t.Fatal("stale bitmaps not flagged")
		}
	})
}

// TestRepairRebuildsFromInodeTable repairs the crashed volume of the
// previous test to a state fsck accepts, with the data intact.
func TestRepairRebuildsFromInodeTable(t *testing.T) {
	r := newRig(23, 2048)
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		ino, _ := r.f.AllocInode(tk, core.TypeRegular)
		id := ino.ID
		ino.Size = 2 * core.BlockSize
		r.f.WriteBlocks(tk, ino, []layout.BlockWrite{
			{Blk: 0, Data: blockOf(0x5A), Size: core.BlockSize},
			{Blk: 1, Data: blockOf(0x6B), Size: core.BlockSize},
		})
		// Crash without Sync, then recover.
		f2 := r.reopen()
		st, err := f2.Recover(tk)
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if len(st.Repairs) == 0 {
			t.Fatalf("no repairs reported for stale bitmaps: %+v", st)
		}
		if errs := f2.Check(tk); len(errs) != 0 {
			t.Fatalf("fsck dirty after repair: %v", errs)
		}
		ino2, err := f2.GetInode(tk, id)
		if err != nil {
			t.Fatalf("GetInode after repair: %v", err)
		}
		got := make([]byte, core.BlockSize)
		f2.ReadBlock(tk, ino2, 0, got)
		if got[0] != 0x5A {
			t.Fatalf("block 0 = %#x after repair, want 0x5A", got[0])
		}
		// Allocation keeps working against the rebuilt bitmaps.
		if _, err := f2.AllocInode(tk, core.TypeRegular); err != nil {
			t.Fatalf("alloc after repair: %v", err)
		}
	})
}

// TestRepairReclaimsDeletedFile deletes a file, crashes before the
// bitmap sync, and checks repair reclaims its blocks instead of
// resurrecting it (FreeInode clears the record durably).
func TestRepairReclaimsDeletedFile(t *testing.T) {
	r := newRig(24, 2048)
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		keep, _ := r.f.AllocInode(tk, core.TypeRegular)
		keep.Size = core.BlockSize
		r.f.WriteBlocks(tk, keep, []layout.BlockWrite{{Blk: 0, Data: blockOf(1), Size: core.BlockSize}})
		gone, _ := r.f.AllocInode(tk, core.TypeRegular)
		goneID := gone.ID
		gone.Size = core.BlockSize
		r.f.WriteBlocks(tk, gone, []layout.BlockWrite{{Blk: 0, Data: blockOf(2), Size: core.BlockSize}})
		r.f.Sync(tk)
		if err := r.f.FreeInode(tk, goneID); err != nil {
			t.Fatalf("FreeInode: %v", err)
		}
		// Crash before the bitmap sync: the bitmaps still say the
		// deleted file exists.
		f2 := r.reopen()
		if _, err := f2.Recover(tk); err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if errs := f2.Check(tk); len(errs) != 0 {
			t.Fatalf("fsck dirty after repair: %v", errs)
		}
		if _, err := f2.GetInode(tk, goneID); err != core.ErrNotFound {
			t.Fatalf("deleted file resurrected: %v", err)
		}
		if _, err := f2.GetInode(tk, keep.ID); err != nil {
			t.Fatalf("surviving file lost: %v", err)
		}
	})
}
