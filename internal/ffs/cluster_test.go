package ffs

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

func seqWrites(from, n int, b byte) []layout.BlockWrite {
	ws := make([]layout.BlockWrite, n)
	for i := range ws {
		ws[i] = layout.BlockWrite{Blk: core.BlockNo(from + i), Data: blockOf(b + byte(i)), Size: core.BlockSize}
	}
	return ws
}

// TestAllocHintTail is the allocation-hint bugfix pinned on its own:
// a file that grows after another file has been allocated behind it
// must keep appending adjacent to its own tail, not re-scan from its
// first block (the old Blocks[0] hint first-fits the group head and
// scatters growing files).
func TestAllocHintTail(t *testing.T) {
	r := newRig(11, 2048)
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		a, _ := r.f.AllocInode(tk, core.TypeRegular)
		b, _ := r.f.AllocInode(tk, core.TypeRegular)
		if err := r.f.WriteBlocks(tk, a, seqWrites(0, 4, 1)); err != nil {
			t.Fatalf("write a: %v", err)
		}
		// b's blocks land right after a's; a's tail is now "walled in"
		// from the front, but its forward neighborhood is free.
		if err := r.f.WriteBlocks(tk, b, seqWrites(0, 4, 0x40)); err != nil {
			t.Fatalf("write b: %v", err)
		}
		if err := r.f.WriteBlocks(tk, a, seqWrites(4, 4, 5)); err != nil {
			t.Fatalf("append a: %v", err)
		}
		tail := a.BlockAddr(3)
		bEnd := b.BlockAddr(3)
		for i := 4; i < 8; i++ {
			got := a.BlockAddr(core.BlockNo(i))
			if got <= tail {
				t.Fatalf("append block %d allocated at %d, before the file tail %d", i, got, tail)
			}
			if got <= bEnd {
				t.Fatalf("append block %d allocated at %d, inside/behind file b (ends %d)", i, got, bEnd)
			}
		}
		// And the appended run itself is contiguous: the allocator
		// reserved a forward run, not four scattered first-fits.
		for i := 5; i < 8; i++ {
			if a.BlockAddr(core.BlockNo(i)) != a.BlockAddr(core.BlockNo(i-1))+1 {
				t.Fatalf("append run not contiguous: blocks %v", a.Blocks)
			}
		}
	})
}

// TestClusteredWriteRequests proves the write path coalesces: the
// same 8-block append (direct blocks only, so no indirect-map
// writes muddy the count) costs 8 data requests classic and
// ceil(8/cap) clustered, with identical bytes on disk.
func TestClusteredWriteRequests(t *testing.T) {
	for _, cluster := range []int{1, 4} {
		r := newRig(12, 2048)
		r.f.SetClusterRun(cluster)
		run(t, r.k, func(tk sched.Task) {
			r.f.Format(tk)
			r.f.Mount(tk)
			ino, _ := r.f.AllocInode(tk, core.TypeRegular)
			ino.Size = 8 * core.BlockSize
			before := r.drv.DriverStats().Writes.Value()
			if err := r.f.WriteBlocks(tk, ino, seqWrites(0, 8, 1)); err != nil {
				t.Fatalf("WriteBlocks: %v", err)
			}
			// Data requests = total write requests minus the one inode
			// table write at the end.
			reqs := r.drv.DriverStats().Writes.Value() - before - 1
			want := int64(8)
			if cluster > 1 {
				want = 2 // 8 blocks / cap 4
			}
			if reqs != want {
				t.Fatalf("cluster=%d: %d data write requests, want %d", cluster, reqs, want)
			}
			for i := 0; i < 8; i++ {
				got := make([]byte, core.BlockSize)
				if err := r.f.ReadBlock(tk, ino, core.BlockNo(i), got); err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if !bytes.Equal(got, blockOf(1+byte(i))) {
					t.Fatalf("cluster=%d: block %d corrupt after clustered write", cluster, i)
				}
			}
		})
	}
}

// TestReadRunDiscovery checks run discovery against the address
// array: contiguous stretches read in one request, holes read as one
// zeroed block, and broken adjacency stops the run.
func TestReadRunDiscovery(t *testing.T) {
	r := newRig(13, 2048)
	r.f.SetClusterRun(8)
	run(t, r.k, func(tk sched.Task) {
		r.f.Format(tk)
		r.f.Mount(tk)
		ino, _ := r.f.AllocInode(tk, core.TypeRegular)
		ino.Size = 6 * core.BlockSize
		if err := r.f.WriteBlocks(tk, ino, seqWrites(0, 6, 0x10)); err != nil {
			t.Fatalf("WriteBlocks: %v", err)
		}
		buf := make([]byte, 8*core.BlockSize)
		before := r.drv.DriverStats().Reads.Value()
		got, err := r.f.ReadRun(tk, ino, 0, 6, buf)
		if err != nil || got != 6 {
			t.Fatalf("ReadRun = %d, %v; want 6 blocks in one call", got, err)
		}
		if n := r.drv.DriverStats().Reads.Value() - before; n != 1 {
			t.Fatalf("clustered read issued %d requests, want 1", n)
		}
		for i := 0; i < 6; i++ {
			if !bytes.Equal(buf[i*core.BlockSize:(i+1)*core.BlockSize], blockOf(0x10+byte(i))) {
				t.Fatalf("run block %d corrupt", i)
			}
		}
		// Break the adjacency: rewriting block 2 keeps its address
		// (in-place layout), so instead map a hole at 6 and check the
		// hole semantics.
		ino.SetBlockAddr(7, ino.BlockAddr(5)+2) // leave 6 a hole
		ino.Size = 8 * core.BlockSize
		got, err = r.f.ReadRun(tk, ino, 6, 2, buf)
		if err != nil || got != 1 {
			t.Fatalf("ReadRun over hole = %d, %v; want 1", got, err)
		}
		if !bytes.Equal(buf[:core.BlockSize], make([]byte, core.BlockSize)) {
			t.Fatal("hole did not read as zeros")
		}
		// Cap respected.
		got, err = r.f.ReadRun(tk, ino, 0, 100, buf[:8*core.BlockSize])
		if err != nil || got > 8 {
			t.Fatalf("ReadRun ignored the run cap: %d, %v", got, err)
		}
	})
}
