package ffs

import "repro/internal/core"

func init() {
	core.Components().Register(core.KindLayout, "ffs", New)
}
