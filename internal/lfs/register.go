package lfs

import "repro/internal/core"

func init() {
	r := core.Components()
	r.Register(core.KindLayout, "lfs", New)
	for _, name := range []string{"greedy", "cost-benefit"} {
		n := name
		r.Register(core.KindCleaner, n, func() (CleanerPolicy, bool) { return NewCleanerPolicy(n) })
	}
}
