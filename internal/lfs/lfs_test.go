package lfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/stats"
)

// realRig is an LFS over a RAM-backed "real" device.
type realRig struct {
	k   *sched.VKernel
	drv device.Driver
	l   *LFS
}

func newRealRig(seed int64, blocks int64) *realRig {
	k := sched.NewVirtual(seed)
	drv := device.NewMemDriver(k, "mem0", blocks, nil)
	part := layout.NewPartition(drv, 0, 0, blocks, false)
	l := New(k, "vol0", part, Config{SegBlocks: 16, MaxInodes: 1 << 12})
	return &realRig{k: k, drv: drv, l: l}
}

// remount builds a fresh LFS instance over the same device, as after
// a crash or restart.
func (r *realRig) remount() *LFS {
	part := layout.NewPartition(r.drv, 0, 0, r.drv.CapacityBlocks(), false)
	return New(r.k, "vol0", part, Config{})
}

func run(t *testing.T, k *sched.VKernel, body func(tk sched.Task)) {
	t.Helper()
	k.Go("test", func(tk sched.Task) {
		body(tk)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func blockOf(b byte) []byte { return bytes.Repeat([]byte{b}, core.BlockSize) }

func writeFile(tk sched.Task, l *LFS, ino *layout.Inode, blocks ...byte) error {
	var ws []layout.BlockWrite
	for i, b := range blocks {
		ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(i), Data: blockOf(b), Size: core.BlockSize})
	}
	ino.Size = int64(len(blocks)) * core.BlockSize
	return l.WriteBlocks(tk, ino, ws)
}

func TestFormatAndMountReal(t *testing.T) {
	r := newRealRig(1, 4096)
	run(t, r.k, func(tk sched.Task) {
		if err := r.l.Format(tk); err != nil {
			t.Fatalf("Format: %v", err)
		}
		if err := r.l.Mount(tk); err != nil {
			t.Fatalf("Mount: %v", err)
		}
		if r.l.FreeBlocks() == 0 {
			t.Fatal("no free space after format")
		}
	})
}

func TestWriteReadBack(t *testing.T) {
	r := newRealRig(2, 4096)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, err := r.l.AllocInode(tk, core.TypeRegular)
		if err != nil {
			t.Fatalf("AllocInode: %v", err)
		}
		if err := writeFile(tk, r.l, ino, 0x11, 0x22, 0x33); err != nil {
			t.Fatalf("WriteBlocks: %v", err)
		}
		for i, want := range []byte{0x11, 0x22, 0x33} {
			got := make([]byte, core.BlockSize)
			if err := r.l.ReadBlock(tk, ino, core.BlockNo(i), got); err != nil {
				t.Fatalf("ReadBlock %d: %v", i, err)
			}
			if !bytes.Equal(got, blockOf(want)) {
				t.Fatalf("block %d contents wrong (pending-path)", i)
			}
		}
		// Force the segment to disk and read again (device path).
		if err := r.l.Sync(tk); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		for i, want := range []byte{0x11, 0x22, 0x33} {
			got := make([]byte, core.BlockSize)
			r.l.ReadBlock(tk, ino, core.BlockNo(i), got)
			if !bytes.Equal(got, blockOf(want)) {
				t.Fatalf("block %d contents wrong after sync", i)
			}
		}
	})
}

func TestHoleReadsZero(t *testing.T) {
	r := newRealRig(3, 4096)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		got := blockOf(0xFF)
		if err := r.l.ReadBlock(tk, ino, 5, got); err != nil {
			t.Fatalf("hole read: %v", err)
		}
		if !bytes.Equal(got, blockOf(0)) {
			t.Fatal("hole not zero-filled")
		}
	})
}

func TestRemountRecoversFiles(t *testing.T) {
	r := newRealRig(4, 4096)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		id := ino.ID
		writeFile(tk, r.l, ino, 0xAA, 0xBB)
		r.l.Sync(tk)
		// "Crash": a fresh instance over the same device must
		// recover everything from the checkpoint.
		r2 := r.remount()
		if err := r2.Mount(tk); err != nil {
			t.Fatalf("remount: %v", err)
		}
		ino2, err := r2.GetInode(tk, id)
		if err != nil {
			t.Fatalf("GetInode after remount: %v", err)
		}
		if ino2.Size != 2*core.BlockSize || ino2.Type != core.TypeRegular {
			t.Fatalf("inode meta lost: size=%d type=%v", ino2.Size, ino2.Type)
		}
		got := make([]byte, core.BlockSize)
		r2.ReadBlock(tk, ino2, 0, got)
		if !bytes.Equal(got, blockOf(0xAA)) {
			t.Fatal("block 0 lost across remount")
		}
		r2.ReadBlock(tk, ino2, 1, got)
		if !bytes.Equal(got, blockOf(0xBB)) {
			t.Fatal("block 1 lost across remount")
		}
	})
}

func TestLargeFileIndirect(t *testing.T) {
	// More blocks than NDirect forces the indirect path.
	r := newRealRig(6, 8192)
	n := layout.NDirect + 20
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		id := ino.ID
		var ws []layout.BlockWrite
		for i := 0; i < n; i++ {
			ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(i), Data: blockOf(byte(i)), Size: core.BlockSize})
		}
		ino.Size = int64(n) * core.BlockSize
		if err := r.l.WriteBlocks(tk, ino, ws); err != nil {
			t.Fatalf("WriteBlocks: %v", err)
		}
		r.l.Sync(tk)
		r2 := r.remount()
		if err := r2.Mount(tk); err != nil {
			t.Fatalf("remount: %v", err)
		}
		ino2, err := r2.GetInode(tk, id)
		if err != nil {
			t.Fatalf("GetInode: %v", err)
		}
		if len(ino2.Blocks) != n {
			t.Fatalf("block map %d entries, want %d", len(ino2.Blocks), n)
		}
		got := make([]byte, core.BlockSize)
		for i := 0; i < n; i += 7 {
			r2.ReadBlock(tk, ino2, core.BlockNo(i), got)
			if got[0] != byte(i) {
				t.Fatalf("block %d contents %#x, want %#x", i, got[0], byte(i))
			}
		}
	})
}

func TestOverwriteKillsOldBlocks(t *testing.T) {
	r := newRealRig(7, 4096)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		writeFile(tk, r.l, ino, 1)
		addr1 := ino.BlockAddr(0)
		writeFile(tk, r.l, ino, 2)
		addr2 := ino.BlockAddr(0)
		if addr1 == addr2 {
			t.Fatal("LFS overwrote in place")
		}
		seg1 := r.l.segOf(addr1)
		if r.l.sut[seg1].live != int32(r.l.cur.used) && r.l.sut[seg1].live < 0 {
			t.Fatalf("usage accounting wrong: live=%d", r.l.sut[seg1].live)
		}
		got := make([]byte, core.BlockSize)
		r.l.ReadBlock(tk, ino, 0, got)
		if got[0] != 2 {
			t.Fatal("read returned stale version")
		}
	})
}

func TestTruncateFreesBlocks(t *testing.T) {
	r := newRealRig(8, 4096)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		writeFile(tk, r.l, ino, 1, 2, 3, 4)
		if err := r.l.Truncate(tk, ino, core.BlockSize); err != nil {
			t.Fatalf("Truncate: %v", err)
		}
		if len(ino.Blocks) != 1 || ino.Size != core.BlockSize {
			t.Fatalf("truncate left %d blocks size %d", len(ino.Blocks), ino.Size)
		}
	})
}

func TestFreeInode(t *testing.T) {
	r := newRealRig(9, 4096)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		id := ino.ID
		writeFile(tk, r.l, ino, 1, 2)
		if err := r.l.FreeInode(tk, id); err != nil {
			t.Fatalf("FreeInode: %v", err)
		}
		if _, err := r.l.GetInode(tk, id); err != core.ErrNotFound {
			t.Fatalf("GetInode after free: %v", err)
		}
	})
}

func TestCleanerReclaimsSpace(t *testing.T) {
	// Small volume (≈31 16-block segments) so the log wraps.
	r := newRealRig(10, 512)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		for round := 0; round < 100; round++ {
			ino, err := r.l.AllocInode(tk, core.TypeRegular)
			if err != nil {
				t.Fatalf("round %d: AllocInode: %v", round, err)
			}
			if err := writeFile(tk, r.l, ino, byte(round), byte(round+1), byte(round+2), byte(round+3)); err != nil {
				t.Fatalf("round %d: write: %v", round, err)
			}
			if round%2 == 0 {
				if err := r.l.FreeInode(tk, ino.ID); err != nil {
					t.Fatalf("round %d: free: %v", round, err)
				}
			}
		}
		r.l.Sync(tk)
	})
	if r.l.segsCleaned.Value() == 0 {
		t.Fatal("cleaner never ran on a wrapping log")
	}
}

func TestCleanerPreservesLiveData(t *testing.T) {
	r := newRealRig(11, 512)
	var keeper core.FileID
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		keeper = ino.ID
		writeFile(tk, r.l, ino, 0x77, 0x88)
		r.l.Sync(tk)
		// Churn to force cleaning around the keeper.
		for round := 0; round < 100; round++ {
			tmp, err := r.l.AllocInode(tk, core.TypeRegular)
			if err != nil {
				t.Fatalf("churn alloc: %v", err)
			}
			if err := writeFile(tk, r.l, tmp, byte(round), byte(round), byte(round), byte(round)); err != nil {
				t.Fatalf("churn write: %v", err)
			}
			if err := r.l.FreeInode(tk, tmp.ID); err != nil {
				t.Fatalf("churn free: %v", err)
			}
		}
		r.l.Sync(tk)
		ino2, err := r.l.GetInode(tk, keeper)
		if err != nil {
			t.Fatalf("keeper lost: %v", err)
		}
		got := make([]byte, core.BlockSize)
		r.l.ReadBlock(tk, ino2, 0, got)
		if got[0] != 0x77 {
			t.Fatalf("keeper block 0 corrupted: %#x", got[0])
		}
		r.l.ReadBlock(tk, ino2, 1, got)
		if got[0] != 0x88 {
			t.Fatalf("keeper block 1 corrupted: %#x", got[0])
		}
	})
	if r.l.segsCleaned.Value() == 0 {
		t.Fatal("test did not exercise the cleaner")
	}
}

func TestSimulatedVolume(t *testing.T) {
	k := sched.NewVirtual(12)
	// Simulated device stack is not needed; a mem driver with nil
	// data tolerance is — use the sim partition flag with a real
	// driver would fail on nil data, so build a sim driver pair.
	drv := device.NewMemDriver(k, "mem0", 4096, nil)
	_ = drv
	// Simulated partitions pass nil data; the mem backend rejects
	// that, so the sim stack uses the device/disk pair instead.
	// Here we only verify the layout logic with a tolerant driver.
	part := layout.NewPartition(newNullDriver(k, 4096), 0, 0, 4096, true)
	l := New(k, "simvol", part, Config{SegBlocks: 16})
	run(t, k, func(tk sched.Task) {
		l.Format(tk)
		l.Mount(tk)
		ino, err := l.AllocInode(tk, core.TypeRegular)
		if err != nil {
			t.Fatalf("AllocInode: %v", err)
		}
		ws := []layout.BlockWrite{{Blk: 0, Size: core.BlockSize}, {Blk: 1, Size: core.BlockSize}}
		ino.Size = 2 * core.BlockSize
		if err := l.WriteBlocks(tk, ino, ws); err != nil {
			t.Fatalf("sim WriteBlocks: %v", err)
		}
		if err := l.ReadBlock(tk, ino, 0, nil); err != nil {
			t.Fatalf("sim ReadBlock: %v", err)
		}
		if err := l.Sync(tk); err != nil {
			t.Fatalf("sim Sync: %v", err)
		}
	})
}

func TestPlaceExistingSticky(t *testing.T) {
	k := sched.NewVirtual(13)
	part := layout.NewPartition(newNullDriver(k, 8192), 0, 0, 8192, true)
	l := New(k, "simvol", part, Config{SegBlocks: 16})
	run(t, k, func(tk sched.Task) {
		l.Format(tk)
		l.Mount(tk)
		ino, _ := l.AllocInode(tk, core.TypeRegular)
		if err := l.PlaceExisting(tk, ino, 10*core.BlockSize); err != nil {
			t.Fatalf("PlaceExisting: %v", err)
		}
		if len(ino.Blocks) != 10 {
			t.Fatalf("placed %d blocks, want 10", len(ino.Blocks))
		}
		first := append([]int64(nil), ino.Blocks...)
		// Sticky: reading does not move it; re-placing is not done.
		for i, a := range ino.Blocks {
			if a != first[i] {
				t.Fatal("addresses moved")
			}
			if a < l.seg0 {
				t.Fatal("placed inside reserved area")
			}
		}
	})
}

func TestPlaceExistingRejectedOnReal(t *testing.T) {
	r := newRealRig(14, 2048)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		if err := r.l.PlaceExisting(tk, ino, core.BlockSize); err != layout.ErrNoPlaceExisting {
			t.Fatalf("PlaceExisting on real volume: %v", err)
		}
	})
}

func TestStatsRegistered(t *testing.T) {
	r := newRealRig(15, 2048)
	set := stats.NewSet()
	r.l.Stats(set)
	if set.Len() != 7 {
		t.Fatalf("stat sources = %d", set.Len())
	}
	if r.l.Name() != "lfs" || r.l.String() == "" {
		t.Fatal("descriptions wrong")
	}
}

func TestGreedyVsCostBenefitPick(t *testing.T) {
	segs := []SegState{
		{Index: 0, Live: 10, DataSlots: 15, Seq: 1, Cleanable: true}, // old, 5 dead
		{Index: 1, Live: 2, DataSlots: 15, Seq: 90, Cleanable: true}, // new, 13 dead
		{Index: 2, Live: 15, DataSlots: 15, Seq: 1, Cleanable: true}, // full
		{Index: 3, Live: 0, DataSlots: 15, Seq: 0, Cleanable: false}, // free
	}
	if v := (Greedy{}).Pick(segs, 100); v != 1 {
		t.Fatalf("greedy picked %d, want 1 (most dead)", v)
	}
	// Cost-benefit weighs age: segment 0 is much older; with u=0.67
	// score0=(0.33*100)/1.67=19.8 vs seg1 u=0.13 score=(0.87*11)/1.13=8.5.
	if v := (CostBenefit{}).Pick(segs, 100); v != 0 {
		t.Fatalf("cost-benefit picked %d, want 0 (old cold segment)", v)
	}
	empty := []SegState{{Index: 0, Live: 15, DataSlots: 15, Cleanable: true}}
	if v := (Greedy{}).Pick(empty, 5); v != -1 {
		t.Fatalf("greedy picked full segment %d", v)
	}
	if v := (CostBenefit{}).Pick(empty, 5); v != -1 {
		t.Fatalf("cost-benefit picked full segment %d", v)
	}
	if _, ok := NewCleanerPolicy("nope"); ok {
		t.Fatal("unknown cleaner accepted")
	}
}

// nullDriver accepts any request without touching data: the layout
// tests' stand-in for the simulated disk stack.
type nullDriver struct {
	k      sched.Kernel
	blocks int64
	st     *device.DriverStats
}

func newNullDriver(k sched.Kernel, blocks int64) device.Driver {
	return &nullDriver{k: k, blocks: blocks}
}

func (d *nullDriver) Name() string { return "null" }
func (d *nullDriver) Submit(t sched.Task, r *device.Request) {
	panic("null driver: use Do")
}
func (d *nullDriver) Wait(t sched.Task, r *device.Request) {}
func (d *nullDriver) Do(t sched.Task, r *device.Request) error {
	t.Sleep(100 * time.Microsecond) // token latency
	return nil
}
func (d *nullDriver) QueueLen() int                    { return 0 }
func (d *nullDriver) CapacityBlocks() int64            { return d.blocks }
func (d *nullDriver) DriverStats() *device.DriverStats { return d.st }
func (d *nullDriver) SetInjector(device.Interceptor)   {}
func (d *nullDriver) Close() error                     { return nil }

var _ = fmt.Sprintf
