package lfs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sched"
)

const (
	superMagic = 0x4C465331 // "LFS1"
	cpMagic    = 0x4C465343 // "LFSC"

	cpHeaderSize = 64
	// imap entries are 16 bytes: addr+1 (8), version (4), slot (1),
	// pad (3); 256 per 4 KB chunk.
	imapEntSize  = 16
	imapPerChunk = core.BlockSize / imapEntSize
	// SUT entries are 16 bytes: live (4), seq (4), state (1), pad.
	sutEntSize = 16
	// Summary entries are 24 bytes: kind (1), pad (3), data
	// checksum (4), file (8), blk (8).
	sumEntSize = 24
	// Summary header: magic (4), count (4), log seq (8). The seq
	// dates the segment against the checkpoints; roll-forward replays
	// only segments newer than the one it mounted from.
	sumHeaderSize = 16
)

// blockSum is the FNV-1a digest recovery uses to detect torn writes:
// each summary entry checksums its data block, the checkpoint header
// checksums the whole region.
func blockSum(data []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range data {
		h ^= uint32(b)
		h *= prime32
	}
	return h
}

// writeSuper writes the superblock (block 0).
func (l *LFS) writeSuper(t sched.Task) error {
	var buf []byte
	if !l.part.Simulated {
		buf = make([]byte, core.BlockSize)
		le := binary.LittleEndian
		le.PutUint32(buf[0:], superMagic)
		le.PutUint32(buf[4:], uint32(l.cfg.SegBlocks))
		le.PutUint64(buf[8:], uint64(l.nsegs))
		le.PutUint64(buf[16:], uint64(l.cpSize))
		le.PutUint64(buf[24:], uint64(l.seg0))
		le.PutUint64(buf[32:], uint64(l.cfg.MaxInodes))
	}
	return l.part.Write(t, 0, 1, buf)
}

// readSuper loads geometry from the superblock.
func (l *LFS) readSuper(t sched.Task) error {
	buf := make([]byte, core.BlockSize)
	if err := l.part.Read(t, 0, 1, buf); err != nil {
		return err
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != superMagic {
		return fmt.Errorf("lfs %s: bad superblock magic %#x", l.name, le.Uint32(buf[0:]))
	}
	l.cfg.SegBlocks = int(le.Uint32(buf[4:]))
	l.nsegs = int(le.Uint64(buf[8:]))
	l.cpSize = int64(le.Uint64(buf[16:]))
	l.seg0 = int64(le.Uint64(buf[24:]))
	l.cfg.MaxInodes = int(le.Uint64(buf[32:]))
	l.dataSlots = l.cfg.SegBlocks - 1
	chunks := (l.cfg.MaxInodes + imapPerChunk - 1) / imapPerChunk
	l.imapAddr = make([]int64, chunks)
	for i := range l.imapAddr {
		l.imapAddr[i] = -1
	}
	return nil
}

// cpBase returns the first block of checkpoint region r (0 or 1).
func (l *LFS) cpBase(r int) int64 { return 1 + int64(r)*l.cpSize }

// checkpointLocked flushes dirty imap chunks into the log and writes
// a checkpoint region: header (seq, next inode, imap chunk table)
// followed by the segment usage table. Regions alternate so a crash
// during the write leaves the previous checkpoint intact.
func (l *LFS) checkpointLocked(t sched.Task) error {
	// 1. Dirty imap chunks go into the log.
	if len(l.imapDirty) > 0 {
		chunks := make([]int, 0, len(l.imapDirty))
		for c := range l.imapDirty {
			chunks = append(chunks, c)
		}
		sort.Ints(chunks)
		var buf []byte
		if !l.part.Simulated {
			buf = make([]byte, core.BlockSize)
		}
		for _, c := range chunks {
			if buf != nil {
				l.encodeImapChunk(c, buf)
			}
			if old := l.imapAddr[c]; old >= 0 {
				l.deadBlock(old)
			}
			addr, err := l.appendBlock(t, kindImap, 0, int64(c), buf)
			if err != nil {
				return err
			}
			l.imapAddr[c] = addr
		}
		l.imapDirty = make(map[int]bool)
		// The chunks must be on disk before the checkpoint points
		// at them.
		if err := l.flushSegBuf(t); err != nil {
			return err
		}
	}

	// 2. Header + SUT into the alternate region. The header carries a
	// checksum over the whole region (computed with the field zeroed)
	// so a torn checkpoint write is detected at mount and the intact
	// sibling region wins — a crash mid-checkpoint never leaves the
	// volume without a valid checkpoint.
	region := l.cpNext
	l.cpNext ^= 1
	var data []byte
	if !l.part.Simulated {
		data = make([]byte, l.cpSize*core.BlockSize)
		le := binary.LittleEndian
		le.PutUint32(data[0:], cpMagic)
		le.PutUint64(data[8:], l.seq)
		le.PutUint64(data[16:], uint64(l.nextIno))
		le.PutUint32(data[24:], uint32(len(l.imapAddr)))
		off := cpHeaderSize
		for _, a := range l.imapAddr {
			le.PutUint64(data[off:], uint64(a+1))
			off += 8
		}
		sutOff := core.BlockSize
		for i, s := range l.sut {
			o := sutOff + i*sutEntSize
			le.PutUint32(data[o:], uint32(s.live))
			le.PutUint32(data[o+4:], s.seq)
			data[o+8] = s.state
		}
		le.PutUint32(data[4:], blockSum(data))
	}
	if err := l.part.Write(t, l.cpBase(region), int(l.cpSize), data); err != nil {
		return err
	}
	l.seq++
	return nil
}

// readCheckpoint loads the newer of the two checkpoint regions and
// rebuilds the inode map and usage table.
func (l *LFS) readCheckpoint(t sched.Task) error {
	best := -1
	var bestSeq uint64
	var bestData []byte
	for r := 0; r < 2; r++ {
		data := make([]byte, l.cpSize*core.BlockSize)
		if err := l.part.Read(t, l.cpBase(r), int(l.cpSize), data); err != nil {
			continue
		}
		le := binary.LittleEndian
		if le.Uint32(data[0:]) != cpMagic {
			continue
		}
		// A torn region (power cut mid-checkpoint) fails its checksum
		// and is ignored; the alternate region is always intact.
		want := le.Uint32(data[4:])
		le.PutUint32(data[4:], 0)
		if blockSum(data) != want {
			continue
		}
		le.PutUint32(data[4:], want)
		if seq := le.Uint64(data[8:]); best < 0 || seq > bestSeq {
			best, bestSeq, bestData = r, seq, data
		}
	}
	if best < 0 {
		return fmt.Errorf("lfs %s: no valid checkpoint", l.name)
	}
	le := binary.LittleEndian
	l.seq = bestSeq + 1
	l.cpNext = best ^ 1
	l.nextIno = core.FileID(le.Uint64(bestData[16:]))
	nchunks := int(le.Uint32(bestData[24:]))
	if nchunks > len(l.imapAddr) {
		nchunks = len(l.imapAddr)
	}
	off := cpHeaderSize
	for i := 0; i < nchunks; i++ {
		l.imapAddr[i] = int64(le.Uint64(bestData[off:])) - 1
		off += 8
	}
	// Usage table.
	l.sut = make([]segInfo, l.nsegs)
	l.freeSegs = l.freeSegs[:0]
	sutOff := core.BlockSize
	for i := range l.sut {
		o := sutOff + i*sutEntSize
		l.sut[i] = segInfo{
			live:  int32(le.Uint32(bestData[o:])),
			seq:   le.Uint32(bestData[o+4:]),
			state: bestData[o+8],
		}
		if l.sut[i].state == segFree || l.sut[i].state == segCurrent {
			// A segment open at checkpoint time was lost with the
			// crash; its blocks were not yet referenced.
			l.sut[i] = segInfo{state: segFree}
			l.freeSegs = append(l.freeSegs, i)
		}
	}
	// Inode map chunks.
	l.imap = make(map[core.FileID]*imapEnt)
	buf := make([]byte, core.BlockSize)
	for c, addr := range l.imapAddr {
		if addr < 0 {
			continue
		}
		if err := l.part.Read(t, addr, 1, buf); err != nil {
			return err
		}
		l.decodeImapChunk(c, buf)
	}
	return nil
}

// encodeImapChunk serializes chunk c of the inode map.
func (l *LFS) encodeImapChunk(c int, buf []byte) {
	le := binary.LittleEndian
	for i := range buf[:core.BlockSize] {
		buf[i] = 0
	}
	base := core.FileID(c * imapPerChunk)
	for i := 0; i < imapPerChunk; i++ {
		ent := l.imap[base+core.FileID(i)]
		if ent == nil {
			continue
		}
		o := i * imapEntSize
		le.PutUint64(buf[o:], uint64(ent.addr+1))
		le.PutUint32(buf[o+8:], ent.version)
		buf[o+12] = ent.slot
	}
}

// decodeImapChunk loads chunk c of the inode map.
func (l *LFS) decodeImapChunk(c int, buf []byte) {
	le := binary.LittleEndian
	base := core.FileID(c * imapPerChunk)
	for i := 0; i < imapPerChunk; i++ {
		o := i * imapEntSize
		raw := le.Uint64(buf[o:])
		version := le.Uint32(buf[o+8:])
		if raw == 0 && version == 0 {
			continue
		}
		l.imap[base+core.FileID(i)] = &imapEnt{
			addr:    int64(raw) - 1,
			version: version,
			slot:    buf[o+12],
		}
	}
}

// encodeSummary serializes the open segment's summary into its first
// block: header with the log sequence the segment is written under,
// then one entry per data slot carrying a checksum of the slot's
// bytes — what lets roll-forward date a segment against a checkpoint
// and stop at a torn tail.
func (l *LFS) encodeSummary(s *segBuf, seq uint64) {
	buf := s.summary()
	for i := range buf {
		buf[i] = 0
	}
	le := binary.LittleEndian
	le.PutUint32(buf[0:], superMagic)
	le.PutUint32(buf[4:], uint32(len(s.entries)))
	le.PutUint64(buf[8:], seq)
	for i, e := range s.entries {
		o := sumHeaderSize + i*sumEntSize
		buf[o] = e.Kind
		if s.vec != nil {
			// Vectored: the checksum was captured when the slot's
			// bytes hit the device (writeThrough) — the alias may be
			// gone by now.
			le.PutUint32(buf[o+4:], s.sums[i])
		} else {
			le.PutUint32(buf[o+4:], blockSum(s.slot(i)))
		}
		le.PutUint64(buf[o+8:], uint64(e.File))
		le.PutUint64(buf[o+16:], uint64(e.Blk))
	}
}

// readSummary reads a segment summary from disk (real remounts).
func (l *LFS) readSummary(t sched.Task, seg int) ([]sumEntry, error) {
	out, _, _, err := l.readSummaryFull(t, seg)
	if err != nil {
		return nil, err
	}
	l.summaries[seg] = out
	return out, nil
}

// readSummaryFull reads a summary plus the recovery fields: the log
// sequence the segment was written under and the per-entry data
// checksums. It does not cache into l.summaries — roll-forward
// probes segments it may then reject.
func (l *LFS) readSummaryFull(t sched.Task, seg int) ([]sumEntry, uint64, []uint32, error) {
	buf := make([]byte, core.BlockSize)
	if err := l.part.Read(t, l.segStart(seg), 1, buf); err != nil {
		return nil, 0, nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != superMagic {
		return nil, 0, nil, fmt.Errorf("lfs %s: segment %d has no summary", l.name, seg)
	}
	n := int(le.Uint32(buf[4:]))
	max := (core.BlockSize - sumHeaderSize) / sumEntSize
	if n > max {
		return nil, 0, nil, fmt.Errorf("lfs %s: summary of %d entries exceeds block", l.name, n)
	}
	seq := le.Uint64(buf[8:])
	out := make([]sumEntry, n)
	sums := make([]uint32, n)
	for i := range out {
		o := sumHeaderSize + i*sumEntSize
		out[i] = sumEntry{
			Kind: buf[o],
			File: core.FileID(le.Uint64(buf[o+8:])),
			Blk:  int64(le.Uint64(buf[o+16:])),
		}
		sums[i] = le.Uint32(buf[o+4:])
	}
	return out, seq, sums, nil
}
