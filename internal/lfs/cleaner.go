package lfs

import (
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// CleanerPolicy picks the next victim segment, the paper's pluggable
// log-cleaner decision. Implementations see the usage table through
// SegState values and return the victim index, or -1 when nothing
// profitable remains.
type CleanerPolicy interface {
	Name() string
	Pick(segs []SegState, nowSeq uint32) int
}

// SegState is the cleaner's view of one segment.
type SegState struct {
	Index     int
	Live      int
	DataSlots int
	Seq       uint32 // log sequence when written (age proxy)
	Cleanable bool
}

// NewCleanerPolicy builds the named policy: "greedy" or
// "cost-benefit".
func NewCleanerPolicy(name string) (CleanerPolicy, bool) {
	switch name {
	case "greedy":
		return Greedy{}, true
	case "", "cost-benefit":
		return CostBenefit{}, true
	}
	return nil, false
}

// Greedy picks the segment with the most dead blocks.
type Greedy struct{}

// Name returns "greedy".
func (Greedy) Name() string { return "greedy" }

// Pick returns the fullest-of-dead segment, or -1 if none has any
// dead block.
func (Greedy) Pick(segs []SegState, _ uint32) int {
	best, bestDead := -1, 0
	for _, s := range segs {
		if !s.Cleanable {
			continue
		}
		dead := s.DataSlots - s.Live
		if dead > bestDead {
			best, bestDead = s.Index, dead
		}
	}
	return best
}

// CostBenefit implements Rosenblum's cost-benefit policy: clean the
// segment maximizing (1-u)·age/(1+u), preferring cold, mostly-dead
// segments.
type CostBenefit struct{}

// Name returns "cost-benefit".
func (CostBenefit) Name() string { return "cost-benefit" }

// Pick returns the best cost-benefit victim with any dead space.
func (CostBenefit) Pick(segs []SegState, nowSeq uint32) int {
	best := -1
	var bestScore float64
	for _, s := range segs {
		if !s.Cleanable || s.Live >= s.DataSlots {
			continue
		}
		u := float64(s.Live) / float64(s.DataSlots)
		age := float64(nowSeq-s.Seq) + 1
		score := (1 - u) * age / (1 + u)
		if score > bestScore {
			best, bestScore = s.Index, score
		}
	}
	return best
}

// cleanLocked runs cleaning passes until the free pool reaches the
// target. Caller holds l.mu.
func (l *LFS) cleanLocked(t sched.Task) error {
	if l.cleaning {
		return nil // re-entered from our own segment writes
	}
	l.cleaning = true
	defer func() { l.cleaning = false }()
	cleaned := 0
	for len(l.freeSegs) < l.cfg.CleanTargetSegs {
		victim := l.cleaner.Pick(l.segViews(), uint32(l.seq))
		if victim < 0 {
			break
		}
		if err := l.cleanSegment(t, victim); err != nil {
			return err
		}
		cleaned++
	}
	// Commit the new locations so the freed segments are safe to
	// reuse across a checkpoint boundary.
	if cleaned > 0 {
		if err := l.writeCurSegment(t, true); err != nil {
			return err
		}
		return l.checkpointLocked(t)
	}
	return nil
}

// segViews snapshots the usage table for the policy.
func (l *LFS) segViews() []SegState {
	out := make([]SegState, l.nsegs)
	for i := range l.sut {
		out[i] = SegState{
			Index:     i,
			Live:      int(l.sut[i].live),
			DataSlots: l.dataSlots,
			Seq:       l.sut[i].seq,
			Cleanable: l.sut[i].state == segInUse,
		}
	}
	return out
}

// cleanSegment copies a victim's live blocks to the log head and
// frees it.
func (l *LFS) cleanSegment(t sched.Task, victim int) error {
	entries := l.summaries[victim]
	if entries == nil && !l.part.Simulated {
		var err error
		entries, err = l.readSummary(t, victim)
		if err != nil {
			return err
		}
	}
	l.cleanerUtil.Observe(float64(l.sut[victim].live) / float64(l.dataSlots))

	// One sequential read of the whole used portion.
	var segData []byte
	if len(entries) > 0 {
		if !l.part.Simulated {
			segData = make([]byte, (1+len(entries))*core.BlockSize)
		}
		if err := l.part.Read(t, l.segStart(victim), 1+len(entries), segData); err != nil {
			return err
		}
	}

	base := l.segStart(victim) + 1
	for i, e := range entries {
		addr := base + int64(i)
		var blockData []byte
		if segData != nil {
			blockData = segData[(1+i)*core.BlockSize : (2+i)*core.BlockSize]
		}
		switch e.Kind {
		case kindData:
			ino, err := l.getInodeLocked(t, e.File)
			if err != nil || ino.BlockAddr(core.BlockNo(e.Blk)) != addr {
				continue // dead
			}
			newAddr, err := l.appendBlock(t, kindData, e.File, e.Blk, blockData)
			if err != nil {
				return err
			}
			ino.SetBlockAddr(core.BlockNo(e.Blk), newAddr)
			l.dirtyInodes[e.File] = true
			l.liveCopied.Inc()

		case kindIndirect:
			ino, err := l.getInodeLocked(t, e.File)
			if err != nil {
				continue
			}
			for _, a := range ino.IndAddrs {
				if a == addr {
					// Rewrite the whole map now so no reference
					// into the victim survives.
					if err := l.rewriteIndirects(t, ino); err != nil {
						return err
					}
					l.dirtyInodes[e.File] = true
					break
				}
			}

		case kindInode:
			for _, id := range l.inodeBlockIDs[addr] {
				if ent := l.imap[id]; ent != nil && ent.addr == addr {
					if _, err := l.getInodeLocked(t, id); err == nil {
						l.dirtyInodes[id] = true
					}
				}
			}
			delete(l.inodeBlockIDs, addr)

		case kindImap:
			chunk := int(e.Blk)
			if chunk >= 0 && chunk < len(l.imapAddr) && l.imapAddr[chunk] == addr {
				l.imapDirty[chunk] = true
				l.imapAddr[chunk] = -1
			}
		}
	}

	delete(l.summaries, victim)
	l.sut[victim] = segInfo{state: segFree}
	l.freeSegs = append(l.freeSegs, victim)
	l.segsCleaned.Inc()
	return nil
}

// rewriteIndirects reissues a file's indirect blocks at the log
// head, making room first.
func (l *LFS) rewriteIndirects(t sched.Task, ino *layout.Inode) error {
	need := l.indirectBlocksNeeded(ino)
	if need+1 > l.dataSlots {
		return core.ErrNoSpace
	}
	if l.cur == nil || l.cur.used+need > l.dataSlots {
		if err := l.writeCurSegment(t, false); err != nil {
			return err
		}
		if err := l.openSegment(t); err != nil {
			return err
		}
	}
	return l.writeIndirects(t, ino)
}

// getInodeLocked is GetInode without taking the mutex (held by the
// cleaner).
func (l *LFS) getInodeLocked(t sched.Task, id core.FileID) (*layout.Inode, error) {
	if ino := l.inodes[id]; ino != nil {
		return ino, nil
	}
	ent := l.imap[id]
	if ent == nil || ent.addr < 0 || l.part.Simulated {
		return nil, core.ErrNotFound
	}
	ino, err := l.readInodeFromLog(t, ent)
	if err != nil {
		return nil, err
	}
	l.inodes[id] = ino
	return ino, nil
}
