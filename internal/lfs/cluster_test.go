package lfs

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/sched"
)

// deviceImage reads or writes the rig's whole device in one raw
// request, so a recovery pass (which commits a fresh checkpoint) can
// be replayed from the same crashed image.
func deviceImage(tk sched.Task, t *testing.T, r *realRig, op device.Op, img []byte) {
	t.Helper()
	req := &device.Request{Op: op, Blocks: int(r.drv.CapacityBlocks()), Data: img}
	if err := r.drv.Do(tk, req); err != nil {
		t.Fatalf("device image %v: %v", op, err)
	}
}

// TestReadRunAdjacency checks run discovery in the log: blocks
// written together sit at adjacent addresses and read back in one
// request; blocks still pending in the open segment are served from
// memory one at a time.
func TestReadRunAdjacency(t *testing.T) {
	r := newRealRig(21, 2048)
	r.l.SetClusterRun(8)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		if err := writeFile(tk, r.l, ino, 1, 2, 3, 4, 5, 6); err != nil {
			t.Fatalf("write: %v", err)
		}
		buf := make([]byte, 8*core.BlockSize)
		// Still pending in the open segment: served from memory,
		// one block per call, no device read.
		before := r.drv.DriverStats().Reads.Value()
		got, err := r.l.ReadRun(tk, ino, 0, 6, buf)
		if err != nil || got != 1 {
			t.Fatalf("pending ReadRun = %d, %v; want 1 from memory", got, err)
		}
		if n := r.drv.DriverStats().Reads.Value() - before; n != 0 {
			t.Fatalf("pending read went to the device (%d requests)", n)
		}
		// Flush the segment; now the six blocks are adjacent on disk.
		if err := r.l.WriteBarrier(tk); err != nil {
			t.Fatalf("barrier: %v", err)
		}
		before = r.drv.DriverStats().Reads.Value()
		got, err = r.l.ReadRun(tk, ino, 0, 6, buf)
		if err != nil || got != 6 {
			t.Fatalf("ReadRun = %d, %v; want 6", got, err)
		}
		if n := r.drv.DriverStats().Reads.Value() - before; n != 1 {
			t.Fatalf("clustered read issued %d requests, want 1", n)
		}
		for i := 0; i < 6; i++ {
			if !bytes.Equal(buf[i*core.BlockSize:(i+1)*core.BlockSize], blockOf(byte(1+i))) {
				t.Fatalf("run block %d corrupt", i)
			}
		}
		// Overwrite block 2: it moves to the log head, breaking the
		// run after block 1.
		if err := r.l.WriteBlocks(tk, ino, []layout.BlockWrite{
			{Blk: 2, Data: blockOf(0x77), Size: core.BlockSize},
		}); err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		if err := r.l.WriteBarrier(tk); err != nil {
			t.Fatalf("barrier: %v", err)
		}
		got, err = r.l.ReadRun(tk, ino, 0, 6, buf)
		if err != nil || got != 2 {
			t.Fatalf("ReadRun across a rewrite = %d, %v; want 2", got, err)
		}
	})
}

// TestClusteredRecoveryEquivalent proves the clustered roll-forward
// recovers exactly the state the one-block-at-a-time path does: same
// workload, same torn log, two recovery incarnations (cluster off
// and on) must agree block for block.
func TestClusteredRecoveryEquivalent(t *testing.T) {
	r := newRealRig(22, 2048)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		id := ino.ID
		if err := writeFile(tk, r.l, ino, 1, 2); err != nil {
			t.Fatalf("baseline write: %v", err)
		}
		r.l.Sync(tk) // checkpoint: the inode is durable
		// Data past the checkpoint — a rewrite plus appends, flushed
		// as a partial segment; recovery must roll it forward off the
		// segment summaries.
		var ws []layout.BlockWrite
		for i := 0; i < 8; i++ {
			ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(i), Data: blockOf(byte(9 - i)), Size: core.BlockSize})
		}
		ino.Size = 8 * core.BlockSize
		if err := r.l.WriteBlocks(tk, ino, ws); err != nil {
			t.Fatalf("post-cp write: %v", err)
		}
		if err := r.l.WriteBarrier(tk); err != nil {
			t.Fatalf("barrier: %v", err)
		}
		readAll := func(cluster int) ([]byte, int) {
			l := r.remount()
			l.SetClusterRun(cluster)
			st, err := l.Recover(tk)
			if err != nil {
				t.Fatalf("cluster=%d: Recover: %v", cluster, err)
			}
			ino, err := l.GetInode(tk, id)
			if err != nil {
				t.Fatalf("cluster=%d: GetInode: %v", cluster, err)
			}
			var out []byte
			buf := make([]byte, core.BlockSize)
			for b := 0; b < ino.NBlocks(); b++ {
				if err := l.ReadBlock(tk, ino, core.BlockNo(b), buf); err != nil {
					t.Fatalf("cluster=%d: read %d: %v", cluster, b, err)
				}
				out = append(out, buf...)
			}
			return out, st.RolledSegments
		}
		// Recovery commits a fresh checkpoint, so snapshot the crashed
		// image first and restore it between the two passes.
		img := make([]byte, r.drv.CapacityBlocks()*core.BlockSize)
		deviceImage(tk, t, r, device.OpRead, img)
		off, rolledOff := readAll(1)
		deviceImage(tk, t, r, device.OpWrite, img)
		on, rolledOn := readAll(16)
		if rolledOff == 0 {
			t.Fatal("recovery rolled no segments; the test exercised nothing")
		}
		if rolledOff != rolledOn {
			t.Fatalf("rolled segments differ: %d off vs %d on", rolledOff, rolledOn)
		}
		if !bytes.Equal(off, on) {
			t.Fatal("clustered recovery produced different file contents")
		}
	})
}
