// Package lfs implements the framework's segmented log-structured
// storage layout, the layout the paper runs on every volume of the
// Sprite replay: file-system updates are appended to the end of a
// log divided into fixed-size segments, files are found through an
// inode map (the IFILE), and a pluggable log-cleaner reclaims
// segments. The same component instantiates for the on-line system
// (real bytes through the driver) and the simulator (timing only).
//
// On-disk layout, in file-system blocks, all partition-relative:
//
//	0                  superblock
//	1 .. cp            checkpoint region A (header + segment-usage table)
//	1+cp .. 2cp        checkpoint region B (alternate)
//	seg0 ...           segments: [summary block][data blocks...]
//
// The inode map is chunked (256 inodes of 16 bytes per chunk); dirty
// chunks are written into the log like data and their addresses are
// recorded in the checkpoint header, which is what makes them — and
// everything else — findable after a crash.
package lfs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Config tunes the layout.
type Config struct {
	// SegBlocks is the segment size in blocks (summary included).
	SegBlocks int
	// MinFreeSegs triggers the cleaner; CleanTargetSegs is where it
	// stops.
	MinFreeSegs     int
	CleanTargetSegs int
	// Cleaner names the victim-selection policy: "greedy" or
	// "cost-benefit" (default).
	Cleaner string
	// MaxInodes bounds the inode map.
	MaxInodes int
}

// DefaultConfig returns the configuration used by the experiments:
// 512 KB segments, cost-benefit cleaning.
func DefaultConfig() Config {
	return Config{
		SegBlocks:       128,
		MinFreeSegs:     4,
		CleanTargetSegs: 8,
		Cleaner:         "cost-benefit",
		MaxInodes:       1 << 16,
	}
}

// entry kinds recorded in segment summaries.
const (
	kindData uint8 = iota + 1
	kindIndirect
	kindInode
	kindImap
)

// sumEntry describes one block of a segment.
type sumEntry struct {
	Kind uint8
	File core.FileID
	Blk  int64 // block-in-file (data), group index (indirect), chunk (imap)
}

// imapEnt is one inode-map slot.
type imapEnt struct {
	addr    int64 // block holding the inode record, -1 if free
	slot    uint8 // record index within the block
	version uint32
}

// segInfo is one segment-usage-table entry.
type segInfo struct {
	live  int32  // live blocks (excluding summary)
	seq   uint32 // log sequence when last written (age proxy)
	state uint8  // segFree, segInUse, segCurrent
}

const (
	segFree uint8 = iota
	segInUse
	segCurrent
)

// segBuf is the in-memory open segment. Real mode stages blocks one
// of two ways: flat (data holds the whole segment, every appended
// block is copied in) or vectored (vec holds one segment per block —
// vec[0] an owned summary buffer, vec[1+i] slot i's bytes, which for
// full data blocks alias the appender's buffer: a Flushing-stable
// cache frame or the cleaner's immutable victim read). A cache-frame
// alias is only stable while its flush job is in flight, so vectored
// slots are written through to the device before the job returns
// (writeThrough); done and sums record how far that has progressed
// and the checksums captured from the bytes the device actually saw.
type segBuf struct {
	seg     int
	entries []sumEntry
	data    []byte   // flat real mode: (SegBlocks)*BlockSize, block 0 = summary
	vec     [][]byte // vectored real mode: SegBlocks per-block segments
	used    int      // data slots filled (slot i lives at segment block 1+i)
	done    int      // slots already written through to the device (vectored)
	sums    []uint32 // per-slot checksums, captured at device-write time (vectored)
}

// real reports that the open segment carries bytes (either staging
// form); false on simulated partitions.
func (s *segBuf) real() bool { return s.data != nil || s.vec != nil }

// summary returns the summary block's buffer.
func (s *segBuf) summary() []byte {
	if s.data != nil {
		return s.data[:core.BlockSize]
	}
	return s.vec[0]
}

// slot returns data slot i's buffer.
func (s *segBuf) slot(i int) []byte {
	if s.data != nil {
		return s.data[(1+i)*core.BlockSize : (2+i)*core.BlockSize]
	}
	return s.vec[1+i]
}

// LFS is the segmented log-structured layout.
type LFS struct {
	name string
	k    sched.Kernel
	part *layout.Partition
	cfg  Config
	mu   sched.Mutex

	// Geometry (from the superblock).
	cpSize    int64
	seg0      int64
	nsegs     int
	dataSlots int // per segment

	seq       uint64
	cpNext    int // which checkpoint region to write next
	nextIno   core.FileID
	imap      map[core.FileID]*imapEnt
	imapAddr  []int64 // chunk index → log address (-1 unwritten)
	imapDirty map[int]bool

	sut      []segInfo
	freeSegs []int // FIFO of free segment indexes
	cur      *segBuf

	// In-memory mirrors (authoritative during a run; rebuilt from
	// disk on a real mount).
	inodes        map[core.FileID]*layout.Inode
	dirtyInodes   map[core.FileID]bool
	summaries     map[int][]sumEntry
	inodeBlockIDs map[int64][]core.FileID // inode-block addr → packed ids
	pending       map[int64][]byte        // unflushed log addr → bytes (real)

	cleaner  CleanerPolicy
	cleaning bool
	mounted  bool

	// clusterRun caps multi-block read transfers (segment writes are
	// clustered by construction); <= 1 keeps one-block requests.
	clusterRun int
	// vectored stages open segments as scatter-gather vectors that
	// alias full data blocks in place of copying them (see
	// layout.Vectored); never set on simulated partitions.
	vectored bool

	segsWritten *stats.Counter
	partialSegs *stats.Counter
	segsCleaned *stats.Counter
	liveCopied  *stats.Counter
	blocksOut   *stats.Counter
	staged      *stats.Counter // data bytes memcpy'd into the open segment
	cleanerUtil *stats.Moments
}

// New builds an LFS over part. Call Format (fresh partition) or
// Mount (existing) before use.
func New(k sched.Kernel, name string, part *layout.Partition, cfg Config) *LFS {
	if cfg.SegBlocks < 8 {
		cfg.SegBlocks = DefaultConfig().SegBlocks
	}
	if cfg.MinFreeSegs <= 0 {
		cfg.MinFreeSegs = 4
	}
	if cfg.CleanTargetSegs <= cfg.MinFreeSegs {
		cfg.CleanTargetSegs = cfg.MinFreeSegs + 4
	}
	if cfg.MaxInodes <= 0 {
		cfg.MaxInodes = 1 << 16
	}
	cl, ok := NewCleanerPolicy(cfg.Cleaner)
	if !ok {
		panic(fmt.Sprintf("lfs: unknown cleaner policy %q", cfg.Cleaner))
	}
	return &LFS{
		name:          name,
		k:             k,
		part:          part,
		cfg:           cfg,
		mu:            k.NewMutex(name + ".lfs"),
		imap:          make(map[core.FileID]*imapEnt),
		imapDirty:     make(map[int]bool),
		inodes:        make(map[core.FileID]*layout.Inode),
		dirtyInodes:   make(map[core.FileID]bool),
		summaries:     make(map[int][]sumEntry),
		inodeBlockIDs: make(map[int64][]core.FileID),
		pending:       make(map[int64][]byte),
		cleaner:       cl,
		segsWritten:   stats.NewCounter(name + ".segs_written"),
		partialSegs:   stats.NewCounter(name + ".partial_segs"),
		segsCleaned:   stats.NewCounter(name + ".segs_cleaned"),
		liveCopied:    stats.NewCounter(name + ".live_blocks_copied"),
		blocksOut:     stats.NewCounter(name + ".log_blocks_written"),
		staged:        stats.NewCounter(name + ".staged_copy_bytes"),
		cleanerUtil:   stats.NewMoments(name + ".cleaned_utilization"),
	}
}

// Name returns "lfs".
func (l *LFS) Name() string { return "lfs" }

// SetClusterRun implements layout.Clustered. The log's writes are
// already segment-sized; the cap governs the read side (ReadRun run
// discovery, roll-forward segment reads).
func (l *LFS) SetClusterRun(n int) {
	if n < 1 {
		n = 1
	}
	l.clusterRun = n
}

// ClusterRun implements layout.Clustered.
func (l *LFS) ClusterRun() int {
	if l.clusterRun < 1 {
		return 1
	}
	return l.clusterRun
}

// SetVectored implements layout.Vectored: open segments become
// scatter-gather vectors whose full data blocks alias the appender's
// buffers instead of being copied. The aliases live in the pending
// map until the segment reaches disk, so vectored mode requires the
// flusher to barrier every flush job (the durable store does) — that
// keeps every cache-frame alias inside the window the frame is
// Flushing-stable. Simulated partitions move no data; the flag stays
// off there.
func (l *LFS) SetVectored(on bool) {
	l.vectored = on && !l.part.Simulated
}

// VectoredIO implements layout.Vectored.
func (l *LFS) VectoredIO() bool { return l.vectored }

// StagedCopyBytes implements layout.StagedCopy.
func (l *LFS) StagedCopyBytes() int64 { return l.staged.Value() }

// geometry computes the reserved-area sizes for the partition.
func (l *LFS) geometry() {
	blocks := l.part.Blocks
	sb := int64(1)
	// Fixpoint on checkpoint size (depends on nsegs).
	nsegs := int((blocks - sb) / int64(l.cfg.SegBlocks))
	for i := 0; i < 3; i++ {
		sutBlocks := (int64(nsegs)*sutEntSize + core.BlockSize - 1) / core.BlockSize
		l.cpSize = 1 + sutBlocks
		l.seg0 = sb + 2*l.cpSize
		nsegs = int((blocks - l.seg0) / int64(l.cfg.SegBlocks))
	}
	l.nsegs = nsegs
	l.dataSlots = l.cfg.SegBlocks - 1
	if maxSum := (core.BlockSize - sumHeaderSize) / sumEntSize; l.dataSlots > maxSum {
		panic(fmt.Sprintf("lfs %s: SegBlocks %d needs %d summary entries, block holds %d",
			l.name, l.cfg.SegBlocks, l.dataSlots, maxSum))
	}
	if l.nsegs < l.cfg.CleanTargetSegs+2 {
		panic(fmt.Sprintf("lfs %s: partition of %d blocks too small for %d-block segments",
			l.name, blocks, l.cfg.SegBlocks))
	}
	chunks := (l.cfg.MaxInodes + imapPerChunk - 1) / imapPerChunk
	if maxChunks := int((core.BlockSize - cpHeaderSize) / 8); chunks > maxChunks {
		panic(fmt.Sprintf("lfs %s: MaxInodes %d needs %d imap chunks, checkpoint holds %d",
			l.name, l.cfg.MaxInodes, chunks, maxChunks))
	}
	l.imapAddr = make([]int64, chunks)
	for i := range l.imapAddr {
		l.imapAddr[i] = -1
	}
}

// Format initializes an empty log on the partition.
func (l *LFS) Format(t sched.Task) error {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	l.geometry()
	l.sut = make([]segInfo, l.nsegs)
	l.freeSegs = l.freeSegs[:0]
	for i := 0; i < l.nsegs; i++ {
		l.freeSegs = append(l.freeSegs, i)
	}
	l.seq = 1
	l.nextIno = core.RootFile
	l.cur = nil
	if err := l.writeSuper(t); err != nil {
		return err
	}
	return l.checkpointLocked(t)
}

// Mount loads the most recent checkpoint. Simulated partitions may
// call Mount right after Format; real partitions may Mount a volume
// written by an earlier incarnation.
func (l *LFS) Mount(t sched.Task) error {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	if l.part.Simulated {
		if l.sut == nil {
			return fmt.Errorf("lfs %s: simulated mount requires Format first", l.name)
		}
		l.mounted = true
		return nil
	}
	if err := l.readSuper(t); err != nil {
		return err
	}
	if err := l.readCheckpoint(t); err != nil {
		return err
	}
	l.mounted = true
	return nil
}

// FreeBlocks reports allocatable capacity: free segments plus the
// open segment's remaining slots.
func (l *LFS) FreeBlocks() int64 {
	// On the real kernel a StatFS-driven call races the log head
	// moving under l.mu; the cooperative virtual kernel cannot.
	if !l.k.Virtual() {
		l.mu.Lock(nil)
		defer l.mu.Unlock(nil)
	}
	free := int64(len(l.freeSegs)) * int64(l.dataSlots)
	if l.cur != nil {
		free += int64(l.dataSlots - l.cur.used)
	}
	return free
}

// Stats registers the layout's statistics plug-ins.
func (l *LFS) Stats(set *stats.Set) {
	set.Add(l.segsWritten)
	set.Add(l.partialSegs)
	set.Add(l.segsCleaned)
	set.Add(l.liveCopied)
	set.Add(l.blocksOut)
	set.Add(l.staged)
	set.Add(l.cleanerUtil)
}

// segStart returns the first block (the summary) of segment s.
func (l *LFS) segStart(s int) int64 {
	return l.seg0 + int64(s)*int64(l.cfg.SegBlocks)
}

// segOf maps a log address to its segment index.
func (l *LFS) segOf(addr int64) int {
	return int((addr - l.seg0) / int64(l.cfg.SegBlocks))
}

func (l *LFS) String() string {
	return fmt.Sprintf("lfs %s: %d segments × %d blocks, cleaner=%s",
		l.name, l.nsegs, l.cfg.SegBlocks, l.cleaner.Name())
}
