package lfs

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

func mustClean(t *testing.T, tk sched.Task, l *LFS, when string) {
	t.Helper()
	if errs := l.Check(tk); len(errs) != 0 {
		for _, e := range errs {
			t.Errorf("%s: %v", when, e)
		}
		t.FailNow()
	}
}

func TestCheckCleanAfterFormat(t *testing.T) {
	r := newRealRig(31, 1024)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		mustClean(t, tk, r.l, "after format")
	})
}

func TestCheckCleanAfterOps(t *testing.T) {
	r := newRealRig(32, 1024)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		a, _ := r.l.AllocInode(tk, core.TypeRegular)
		writeFile(tk, r.l, a, 1, 2, 3)
		b, _ := r.l.AllocInode(tk, core.TypeRegular)
		writeFile(tk, r.l, b, 4, 5)
		r.l.Sync(tk)
		mustClean(t, tk, r.l, "after writes+sync")
		r.l.Truncate(tk, a, core.BlockSize)
		r.l.FreeInode(tk, b.ID)
		r.l.Sync(tk)
		mustClean(t, tk, r.l, "after truncate+free+sync")
	})
}

// TestCheckPropertyRandomOps is the fsck property test: any sequence
// of creates, writes, overwrites, truncates and deletes — enough to
// wrap the log and run the cleaner — leaves a consistent volume.
func TestCheckPropertyRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1996} {
		r := newRealRig(seed, 768)
		run(t, r.k, func(tk sched.Task) {
			rng := rand.New(rand.NewSource(seed))
			r.l.Format(tk)
			r.l.Mount(tk)
			var files []*layout.Inode
			for op := 0; op < 300; op++ {
				switch {
				case len(files) == 0 || rng.Float64() < 0.35:
					ino, err := r.l.AllocInode(tk, core.TypeRegular)
					if err != nil {
						continue
					}
					n := 1 + rng.Intn(5)
					blocks := make([]byte, n)
					for i := range blocks {
						blocks[i] = byte(rng.Intn(256))
					}
					if err := writeFile(tk, r.l, ino, blocks...); err != nil {
						t.Fatalf("seed %d op %d write: %v", seed, op, err)
					}
					files = append(files, ino)
				case rng.Float64() < 0.4 && len(files) > 0:
					// Overwrite one block of an existing file.
					f := files[rng.Intn(len(files))]
					if len(f.Blocks) == 0 {
						continue
					}
					blk := core.BlockNo(rng.Intn(len(f.Blocks)))
					w := []layout.BlockWrite{{Blk: blk, Data: blockOf(0xEE), Size: core.BlockSize}}
					if err := r.l.WriteBlocks(tk, f, w); err != nil {
						t.Fatalf("seed %d op %d overwrite: %v", seed, op, err)
					}
				case rng.Float64() < 0.5 && len(files) > 0:
					i := rng.Intn(len(files))
					if err := r.l.FreeInode(tk, files[i].ID); err != nil {
						t.Fatalf("seed %d op %d free: %v", seed, op, err)
					}
					files = append(files[:i], files[i+1:]...)
				default:
					if len(files) > 0 {
						f := files[rng.Intn(len(files))]
						r.l.Truncate(tk, f, int64(rng.Intn(3))*core.BlockSize)
					}
				}
			}
			r.l.Sync(tk)
			mustClean(t, tk, r.l, "after 300 random ops")
		})
		if r.l.segsCleaned.Value() == 0 {
			t.Logf("seed %d: cleaner did not run (volume large enough)", seed)
		}
	}
}

func TestCheckCleanAfterRemount(t *testing.T) {
	r := newRealRig(33, 1024)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		for i := 0; i < 10; i++ {
			ino, _ := r.l.AllocInode(tk, core.TypeRegular)
			writeFile(tk, r.l, ino, byte(i), byte(i+1))
			if i%3 == 0 {
				r.l.FreeInode(tk, ino.ID)
			}
		}
		r.l.Sync(tk)
		r2 := r.remount()
		if err := r2.Mount(tk); err != nil {
			t.Fatalf("remount: %v", err)
		}
		mustClean(t, tk, r2, "after remount")
	})
}

func TestCrashLosesOnlyUncheckpointedData(t *testing.T) {
	// Write A, sync; write B, do NOT sync; "crash"; remount: A must
	// exist, the volume must be consistent, B is gone.
	r := newRealRig(34, 1024)
	var idA, idB core.FileID
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		a, _ := r.l.AllocInode(tk, core.TypeRegular)
		idA = a.ID
		writeFile(tk, r.l, a, 0xA1)
		r.l.Sync(tk)
		b, _ := r.l.AllocInode(tk, core.TypeRegular)
		idB = b.ID
		writeFile(tk, r.l, b, 0xB2)
		// no sync — crash now
		r2 := r.remount()
		if err := r2.Mount(tk); err != nil {
			t.Fatalf("post-crash mount: %v", err)
		}
		if _, err := r2.GetInode(tk, idA); err != nil {
			t.Fatalf("checkpointed file lost: %v", err)
		}
		if _, err := r2.GetInode(tk, idB); err == nil {
			t.Fatal("uncheckpointed file survived the crash (roll-forward is not implemented)")
		}
		mustClean(t, tk, r2, "after crash recovery")
	})
}
