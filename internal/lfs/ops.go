package lfs

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

func timeNS(ns int64) time.Duration { return time.Duration(ns) }

// AllocInode creates a fresh inode of the given type.
func (l *LFS) AllocInode(t sched.Task, typ core.FileType) (*layout.Inode, error) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	if int(l.nextIno) >= l.cfg.MaxInodes {
		return nil, core.ErrNoSpace
	}
	id := l.nextIno
	l.nextIno++
	ino := &layout.Inode{
		ID:    id,
		Type:  typ,
		Nlink: 1,
		// The generation number: a reused inode id gets a fresh
		// Version, so stale handles (NFS) can be told from the new
		// file after recovery reallocates the slot.
		Version: uint64(l.k.Now()),
		MTime:   int64(l.k.Now()),
		CTime:   int64(l.k.Now()),
	}
	ent := &imapEnt{addr: -1}
	if old := l.imap[id]; old != nil {
		ent.version = old.version + 1
	}
	l.imap[id] = ent
	l.imapDirty[int(id)/imapPerChunk] = true
	l.inodes[id] = ino
	l.dirtyInodes[id] = true
	return ino, nil
}

// RestoreInode implements layout.InodeRestorer: it creates an inode
// at a caller-chosen number, bumping the sequential cursor past it.
// Array rebuild replays a dead member's live inode set this way.
func (l *LFS) RestoreInode(t sched.Task, id core.FileID, typ core.FileType) (*layout.Inode, error) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	if int(id) >= l.cfg.MaxInodes {
		return nil, core.ErrNoSpace
	}
	if ent := l.imap[id]; ent != nil && ent.addr >= 0 {
		return nil, core.ErrExists
	}
	if l.inodes[id] != nil {
		return nil, core.ErrExists
	}
	ino := &layout.Inode{
		ID:      id,
		Type:    typ,
		Nlink:   1,
		Version: uint64(l.k.Now()),
		MTime:   int64(l.k.Now()),
		CTime:   int64(l.k.Now()),
	}
	ent := &imapEnt{addr: -1}
	if old := l.imap[id]; old != nil {
		ent.version = old.version + 1
	}
	l.imap[id] = ent
	l.imapDirty[int(id)/imapPerChunk] = true
	l.inodes[id] = ino
	l.dirtyInodes[id] = true
	if id >= l.nextIno {
		l.nextIno = id + 1
	}
	return ino, nil
}

// GetInode fetches an inode, from the in-memory table or — on a real
// volume — from the log.
func (l *LFS) GetInode(t sched.Task, id core.FileID) (*layout.Inode, error) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	if ino := l.inodes[id]; ino != nil {
		return ino, nil
	}
	ent := l.imap[id]
	if ent == nil || ent.addr < 0 {
		return nil, core.ErrNotFound
	}
	if l.part.Simulated {
		// A simulated volume has every live inode in memory; an
		// imap entry without one cannot happen within a run.
		return nil, core.ErrNotFound
	}
	ino, err := l.readInodeFromLog(t, ent)
	if err != nil {
		return nil, err
	}
	l.inodes[id] = ino
	return ino, nil
}

// readInodeFromLog reads and decodes an inode record plus its block
// map.
func (l *LFS) readInodeFromLog(t sched.Task, ent *imapEnt) (*layout.Inode, error) {
	buf := make([]byte, core.BlockSize)
	if err := l.readLogBlock(t, ent.addr, buf); err != nil {
		return nil, err
	}
	di, err := layout.DecodeInode(buf[int(ent.slot)*layout.InodeSize:])
	if err != nil {
		return nil, err
	}
	ino := &di.Ino
	nblocks := layout.BlocksForSize(ino.Size)
	ino.Blocks = make([]int64, 0, nblocks)
	for i := 0; i < layout.NDirect && int64(len(ino.Blocks)) < nblocks; i++ {
		ino.Blocks = append(ino.Blocks, di.Direct[i])
	}
	if int64(len(ino.Blocks)) < nblocks && di.Ind >= 0 {
		ino.IndAddrs = append(ino.IndAddrs, di.Ind)
		ibuf := make([]byte, core.BlockSize)
		if err := l.readLogBlock(t, di.Ind, ibuf); err != nil {
			return nil, err
		}
		n := int(nblocks) - len(ino.Blocks)
		if n > layout.AddrsPerBlock {
			n = layout.AddrsPerBlock
		}
		ino.Blocks = append(ino.Blocks, layout.DecodeAddrs(ibuf, n)...)
	}
	if int64(len(ino.Blocks)) < nblocks && di.DInd >= 0 {
		dbuf := make([]byte, core.BlockSize)
		if err := l.readLogBlock(t, di.DInd, dbuf); err != nil {
			return nil, err
		}
		remaining := int(nblocks) - len(ino.Blocks)
		nleaves := (remaining + layout.AddrsPerBlock - 1) / layout.AddrsPerBlock
		leaves := layout.DecodeAddrs(dbuf, nleaves)
		ibuf := make([]byte, core.BlockSize)
		for _, leaf := range leaves {
			if leaf < 0 {
				// The size over-covers the map (a volume-manager
				// shadow carries the array-global size): a nil leaf
				// ends the tree, it is never a legal address.
				break
			}
			ino.IndAddrs = append(ino.IndAddrs, leaf)
			if err := l.readLogBlock(t, leaf, ibuf); err != nil {
				return nil, err
			}
			n := int(nblocks) - len(ino.Blocks)
			if n > layout.AddrsPerBlock {
				n = layout.AddrsPerBlock
			}
			ino.Blocks = append(ino.Blocks, layout.DecodeAddrs(ibuf, n)...)
		}
		ino.IndAddrs = append(ino.IndAddrs, di.DInd)
	}
	return ino, nil
}

// toDiskInode splits the flat block map into the on-disk pointer
// form. Indirect addresses must already have been assigned by
// writeIndirects.
func (l *LFS) toDiskInode(ino *layout.Inode) *layout.DiskInode {
	di := &layout.DiskInode{Ino: *ino, Ind: -1, DInd: -1}
	di.Ino.Blocks = nil
	di.Ino.IndAddrs = nil
	direct, groups, _ := layout.SplitBlockMap(ino.Blocks)
	di.Direct = direct
	if len(groups) >= 1 && len(ino.IndAddrs) >= 1 {
		di.Ind = ino.IndAddrs[0]
	}
	if len(groups) > 1 && len(ino.IndAddrs) == len(groups)+1 {
		di.DInd = ino.IndAddrs[len(ino.IndAddrs)-1]
	}
	return di
}

// UpdateInode marks the inode dirty; it reaches the log with the
// next segment write.
func (l *LFS) UpdateInode(t sched.Task, ino *layout.Inode) error {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	if l.imap[ino.ID] == nil {
		return core.ErrStale
	}
	l.inodes[ino.ID] = ino
	l.dirtyInodes[ino.ID] = true
	return nil
}

// FreeInode deletes the file: all its blocks die in the usage table
// and the imap slot is invalidated.
func (l *LFS) FreeInode(t sched.Task, id core.FileID) error {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	ent := l.imap[id]
	if ent == nil {
		return core.ErrNotFound
	}
	if ino := l.inodes[id]; ino != nil {
		for _, a := range ino.Blocks {
			if a >= 0 {
				l.deadBlock(a)
			}
		}
		for _, a := range ino.IndAddrs {
			l.deadBlock(a)
		}
	}
	// Invalidate the imap slot before the dead-slot scan: the scan
	// walks the block's inode list against the imap, and this entry
	// must not keep its own (now dead) block alive.
	addr := ent.addr
	ent.addr = -1
	ent.version++
	l.imapDirty[int(id)/imapPerChunk] = true
	if addr >= 0 {
		l.noteInodeSlotDead(addr)
	}
	delete(l.inodes, id)
	delete(l.dirtyInodes, id)
	return nil
}

// noteInodeSlotDead kills a whole inode block in the usage table
// when its last live slot dies.
func (l *LFS) noteInodeSlotDead(addr int64) {
	ids := l.inodeBlockIDs[addr]
	for _, other := range ids {
		if e := l.imap[other]; e != nil && e.addr == addr {
			return // block still hosts a live inode
		}
	}
	l.deadBlock(addr)
	delete(l.inodeBlockIDs, addr)
}

// ReadBlock reads one file block. Holes cost nothing; blocks still
// in the open segment are served from memory.
func (l *LFS) ReadBlock(t sched.Task, ino *layout.Inode, blk core.BlockNo, data []byte) error {
	l.mu.Lock(t)
	addr := ino.BlockAddr(blk)
	if addr < 0 {
		l.mu.Unlock(t)
		if data != nil {
			for i := range data {
				data[i] = 0
			}
		}
		return nil
	}
	if buf, ok := l.pending[addr]; ok {
		if data != nil {
			copy(data, buf)
		} else if l.part.Mover != nil {
			t.Sleep(timeNS(l.part.Mover.CopyCost(core.BlockSize)))
		}
		l.mu.Unlock(t)
		return nil
	}
	l.mu.Unlock(t)
	return l.part.Read(t, addr, 1, data)
}

// ReadRun implements the clustered read: file blocks written
// together sit at adjacent log addresses, so the run is discovered
// by address adjacency in the block map and moved in one device
// request. Blocks still in the open segment (pending) are served
// from memory one at a time, holes as a single zeroed block.
func (l *LFS) ReadRun(t sched.Task, ino *layout.Inode, blk core.BlockNo, n int, data []byte) (int, error) {
	if lim := l.ClusterRun(); n > lim {
		n = lim
	}
	if n < 1 {
		n = 1
	}
	l.mu.Lock(t)
	addr := ino.BlockAddr(blk)
	if addr < 0 {
		l.mu.Unlock(t)
		if data != nil {
			for i := range data[:core.BlockSize] {
				data[i] = 0
			}
		}
		return 1, nil
	}
	if buf, ok := l.pending[addr]; ok {
		if data != nil {
			copy(data, buf)
		} else if l.part.Mover != nil {
			t.Sleep(timeNS(l.part.Mover.CopyCost(core.BlockSize)))
		}
		l.mu.Unlock(t)
		return 1, nil
	}
	run := 1
	for run < n {
		next := addr + int64(run)
		if ino.BlockAddr(blk+core.BlockNo(run)) != next {
			break
		}
		if _, pend := l.pending[next]; pend {
			break
		}
		run++
	}
	l.mu.Unlock(t)
	if data != nil {
		data = data[:run*core.BlockSize]
	}
	return run, l.part.Read(t, addr, run, data)
}

// ReadRunVec implements layout.VecRunReader: ReadRun with the run
// scattered directly into per-block buffers. Pending and hole blocks
// still cover exactly one block, served into bufs[0].
func (l *LFS) ReadRunVec(t sched.Task, ino *layout.Inode, blk core.BlockNo, n int, bufs [][]byte) (int, error) {
	if lim := l.ClusterRun(); n > lim {
		n = lim
	}
	if n > len(bufs) {
		n = len(bufs)
	}
	if n < 1 {
		n = 1
	}
	l.mu.Lock(t)
	addr := ino.BlockAddr(blk)
	if addr < 0 {
		l.mu.Unlock(t)
		for i := range bufs[0][:core.BlockSize] {
			bufs[0][i] = 0
		}
		return 1, nil
	}
	if buf, ok := l.pending[addr]; ok {
		copy(bufs[0][:core.BlockSize], buf)
		l.mu.Unlock(t)
		return 1, nil
	}
	run := 1
	for run < n {
		next := addr + int64(run)
		if ino.BlockAddr(blk+core.BlockNo(run)) != next {
			break
		}
		if _, pend := l.pending[next]; pend {
			break
		}
		run++
	}
	l.mu.Unlock(t)
	if run == 1 {
		return 1, l.part.Read(t, addr, 1, bufs[0][:core.BlockSize])
	}
	vec := make([][]byte, run)
	for i := 0; i < run; i++ {
		vec[i] = bufs[i][:core.BlockSize]
	}
	return run, l.part.ReadVec(t, addr, run, vec)
}

// readLogBlock reads one metadata block, honoring the pending map.
func (l *LFS) readLogBlock(t sched.Task, addr int64, data []byte) error {
	if buf, ok := l.pending[addr]; ok {
		copy(data, buf)
		return nil
	}
	return l.part.Read(t, addr, 1, data)
}

// WriteBlocks appends the file's dirty blocks to the log
// contiguously, replacing any older versions, and marks the inode
// dirty. This is the path every cache flush takes.
func (l *LFS) WriteBlocks(t sched.Task, ino *layout.Inode, writes []layout.BlockWrite) (err error) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	if !l.mounted {
		return fmt.Errorf("lfs %s: not mounted", l.name)
	}
	// Any error return leaves this job's frame aliases staged past
	// their Flushing window — copy them out first (see
	// materializeCur).
	defer func() {
		if err != nil {
			l.materializeCur()
		}
	}()
	for _, w := range writes {
		if old := ino.BlockAddr(w.Blk); old >= 0 {
			l.deadBlock(old)
		}
		addr, err := l.appendBlock(t, kindData, ino.ID, int64(w.Blk), w.Data)
		if err != nil {
			return err
		}
		ino.SetBlockAddr(w.Blk, addr)
	}
	ino.MTime = int64(l.k.Now())
	l.dirtyInodes[ino.ID] = true
	// Vectored slots alias this job's cache frames; push them to the
	// device while the frames are still Flushing-stable (no-op on the
	// flat and simulated paths).
	return l.writeThrough(t)
}

// Truncate drops blocks past newSize.
func (l *LFS) Truncate(t sched.Task, ino *layout.Inode, newSize int64) error {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	keep := layout.BlocksForSize(newSize)
	for i := keep; i < int64(len(ino.Blocks)); i++ {
		if ino.Blocks[i] >= 0 {
			l.deadBlock(ino.Blocks[i])
		}
	}
	if keep < int64(len(ino.Blocks)) {
		ino.Blocks = ino.Blocks[:keep]
	}
	ino.Size = newSize
	ino.MTime = int64(l.k.Now())
	l.dirtyInodes[ino.ID] = true
	return nil
}

// Sync packs every dirty inode, writes the partial segment, flushes
// dirty inode-map chunks into the log, and commits a checkpoint.
func (l *LFS) Sync(t sched.Task) error {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	if err := l.writeCurSegment(t, true); err != nil {
		return err
	}
	return l.checkpointLocked(t)
}

// PlaceExisting gives a file that "existed before the simulation"
// sticky random addresses: whole free segments are taken from the
// pool, marked fully live, and carved up — the simulator's educated
// guess at the initial layout of the file system.
func (l *LFS) PlaceExisting(t sched.Task, ino *layout.Inode, size int64) error {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	if !l.part.Simulated {
		return layout.ErrNoPlaceExisting
	}
	need := layout.BlocksForSize(size)
	rng := l.k.Rand()
	for need > 0 {
		if len(l.freeSegs) <= l.cfg.MinFreeSegs {
			return core.ErrNoSpace
		}
		// Pick a random free segment: sticky once chosen.
		i := rng.Intn(len(l.freeSegs))
		seg := l.freeSegs[i]
		l.freeSegs = append(l.freeSegs[:i], l.freeSegs[i+1:]...)
		l.sut[seg] = segInfo{state: segInUse, seq: 0}
		var sum []sumEntry
		base := l.segStart(seg) + 1
		for s := 0; s < l.dataSlots && need > 0; s++ {
			blk := core.BlockNo(len(ino.Blocks))
			ino.SetBlockAddr(blk, base+int64(s))
			sum = append(sum, sumEntry{Kind: kindData, File: ino.ID, Blk: int64(blk)})
			l.sut[seg].live++
			need--
		}
		l.summaries[seg] = sum
	}
	ino.Size = size
	l.inodes[ino.ID] = ino
	l.dirtyInodes[ino.ID] = true
	return nil
}
