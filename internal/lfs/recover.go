package lfs

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// This file is the LFS crash-recovery path: mount from the newer
// valid checkpoint, then roll the log forward through the segment
// summaries written after it — data blocks re-attach to their
// inodes, packed inode records and inode-map chunks become the
// newest locations, and a torn tail (the power cut's final, partial
// segment write) is detected by the per-entry checksums and cut off.
// Recovery ends with a full usage recount from the reachable tree
// and a fresh checkpoint, so fsck reports the volume clean.

// Recover implements layout.Recoverer. It must be called on an LFS
// that has not been mounted yet (a fresh incarnation over a crashed
// partition). On simulated partitions — whose state survives in
// memory — it charges the I/O a real recovery would perform (reading
// both checkpoint regions and every in-use summary) and recommits a
// checkpoint, which is the recovery-time model the reliability study
// measures.
func (l *LFS) Recover(t sched.Task) (layout.RecoveryStats, error) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	var st layout.RecoveryStats
	if l.part.Simulated {
		if l.sut == nil {
			return st, fmt.Errorf("lfs %s: simulated recovery requires Format first", l.name)
		}
		if err := l.part.Read(t, 0, 1, nil); err != nil {
			return st, err
		}
		for r := 0; r < 2; r++ {
			if err := l.part.Read(t, l.cpBase(r), int(l.cpSize), nil); err != nil {
				return st, err
			}
		}
		for seg := 0; seg < l.nsegs; seg++ {
			if l.sut[seg].state == segFree {
				continue
			}
			if err := l.part.Read(t, l.segStart(seg), 1, nil); err != nil {
				return st, err
			}
			st.RolledSegments++
		}
	} else {
		if err := l.readSuper(t); err != nil {
			return st, err
		}
		if err := l.readCheckpoint(t); err != nil {
			return st, err
		}
		if err := l.rollForwardLocked(t, &st); err != nil {
			return st, err
		}
		if err := l.recountLocked(t, &st); err != nil {
			return st, err
		}
	}
	l.mounted = true
	// Make the recovered state durable: pack rolled-forward inodes,
	// flush dirty imap chunks, commit a checkpoint.
	if err := l.writeCurSegment(t, true); err != nil {
		return st, err
	}
	if err := l.checkpointLocked(t); err != nil {
		return st, err
	}
	return st, nil
}

// rollForwardLocked replays post-checkpoint segments in log order.
func (l *LFS) rollForwardLocked(t sched.Task, st *layout.RecoveryStats) error {
	cpSeq := l.seq - 1 // the mounted checkpoint's sequence
	type cand struct {
		seg     int
		seq     uint64
		entries []sumEntry
		sums    []uint32
	}
	var cands []cand
	for seg := 0; seg < l.nsegs; seg++ {
		if l.sut[seg].state != segFree {
			continue // already referenced by the checkpoint
		}
		entries, seq, sums, err := l.readSummaryFull(t, seg)
		if err != nil || seq <= cpSeq {
			continue // never written, or a stale pre-checkpoint life
		}
		cands = append(cands, cand{seg, seq, entries, sums})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })

	for _, c := range cands {
		if st.TornTail {
			// Segments past a torn write postdate the power cut's
			// final I/O; nothing there can be trusted.
			break
		}
		l.claimSegLocked(c.seg, uint32(c.seq))
		st.RolledSegments++
		// The rolled segment's used blocks are read lazily in
		// clustered runs (one block per request with clustering off)
		// as the entry loop advances, so a torn entry — unreadable
		// block or bad checksum — stops the reading exactly where the
		// one-block-at-a-time path did.
		segData := make([]byte, len(c.entries)*core.BlockSize)
		readable := 0
		applied := 0
		for i, e := range c.entries {
			addr := l.segStart(c.seg) + 1 + int64(i)
			if i >= readable {
				readable += l.readSegRun(t, c.seg, segData, readable, len(c.entries))
				if i >= readable {
					st.TornTail = true
					break
				}
			}
			buf := segData[i*core.BlockSize : (i+1)*core.BlockSize]
			if blockSum(buf) != c.sums[i] {
				st.TornTail = true
				break
			}
			applied = i + 1
			switch e.Kind {
			case kindData:
				l.rollDataLocked(t, e, addr, st)
			case kindInode:
				l.rollInodeBlockLocked(buf, addr, st)
			case kindImap:
				l.rollImapChunkLocked(buf, e, addr)
			case kindIndirect:
				// Re-attached through the inode records that point at
				// it; the recount settles its liveness.
			}
		}
		l.summaries[c.seg] = c.entries[:applied]
		// New segments must be dated after everything rolled forward,
		// or a second crash would mis-order the log.
		if c.seq >= l.seq {
			l.seq = c.seq + 1
		}
	}
	return nil
}

// readSegRun reads the next clustered run of seg's data blocks —
// starting at block index from, at most the run cap, never past
// count — into its place in buf, returning how many blocks it could
// read. A failed multi-block read falls back to single-block reads
// so the exact tear point is found — the same
// stop-at-first-unreadable-block semantics the one-block-at-a-time
// path has (and exactly that path when the cap is 1).
func (l *LFS) readSegRun(t sched.Task, seg int, buf []byte, from, count int) int {
	run := count - from
	if lim := l.ClusterRun(); run > lim {
		run = lim
	}
	if run <= 0 {
		return 0
	}
	base := l.segStart(seg) + 1
	dst := buf[from*core.BlockSize : (from+run)*core.BlockSize]
	if err := l.part.Read(t, base+int64(from), run, dst); err == nil {
		return run
	}
	if run == 1 {
		return 0
	}
	// Retry the failed run block by block to locate the tear.
	for i := 0; i < run; i++ {
		one := buf[(from+i)*core.BlockSize : (from+i+1)*core.BlockSize]
		if err := l.part.Read(t, base+int64(from+i), 1, one); err != nil {
			return i
		}
	}
	return run
}

// claimSegLocked withdraws seg from the free pool and marks it in
// use under the given sequence.
func (l *LFS) claimSegLocked(seg int, seq uint32) {
	for i, s := range l.freeSegs {
		if s == seg {
			l.freeSegs = append(l.freeSegs[:i], l.freeSegs[i+1:]...)
			break
		}
	}
	l.sut[seg] = segInfo{state: segInUse, seq: seq}
}

// rollDataLocked re-attaches one rolled-forward data block to its
// file. A file whose inode never reached the disk is an orphan: its
// data cannot be reached and is dropped (counted, not silently).
func (l *LFS) rollDataLocked(t sched.Task, e sumEntry, addr int64, st *layout.RecoveryStats) {
	if l.imap[e.File] == nil {
		st.OrphanBlocks++
		return
	}
	ino, err := l.getInodeLocked(t, e.File)
	if err != nil {
		st.OrphanBlocks++
		return
	}
	blk := core.BlockNo(e.Blk)
	if old := ino.BlockAddr(blk); old >= 0 && old != addr {
		l.deadBlock(old)
	}
	ino.SetBlockAddr(blk, addr)
	// A block wholly beyond the recorded size is an append the inode
	// never captured; grow to cover it. Rewrites within the known
	// size leave the size alone (the tail of a partial final block is
	// not recoverable without its inode record).
	if end := (e.Blk + 1) * core.BlockSize; blk >= core.BlockNo(layout.BlocksForSize(ino.Size)) && end > ino.Size {
		ino.Size = end
	}
	l.dirtyInodes[e.File] = true
	st.DataBlocks++
}

// rollInodeBlockLocked adopts a packed inode-record block as the
// newest home of the records it carries.
func (l *LFS) rollInodeBlockLocked(buf []byte, addr int64, st *layout.RecoveryStats) {
	var ids []core.FileID
	for slot := 0; slot < layout.InodesPerBlk; slot++ {
		di, err := layout.DecodeInode(buf[slot*layout.InodeSize:])
		if err != nil {
			continue // empty slot
		}
		id := di.Ino.ID
		ent := l.imap[id]
		if ent == nil {
			ent = &imapEnt{addr: -1}
			l.imap[id] = ent
		}
		ent.addr = addr
		ent.slot = uint8(slot)
		l.imapDirty[int(id)/imapPerChunk] = true
		// Drop any cached copy so reads load this newer record (it
		// subsumes the data entries replayed before it).
		delete(l.inodes, id)
		delete(l.dirtyInodes, id)
		if id >= l.nextIno {
			l.nextIno = id + 1
		}
		ids = append(ids, id)
		st.InodeRecords++
	}
	l.inodeBlockIDs[addr] = ids
}

// rollImapChunkLocked adopts an inode-map chunk flushed into the log
// just before a checkpoint that never completed.
func (l *LFS) rollImapChunkLocked(buf []byte, e sumEntry, addr int64) {
	chunk := int(e.Blk)
	if chunk < 0 || chunk >= len(l.imapAddr) {
		return
	}
	l.imapAddr[chunk] = addr
	l.decodeImapChunk(chunk, buf)
	delete(l.imapDirty, chunk)
	base := core.FileID(chunk * imapPerChunk)
	for i := 0; i < imapPerChunk; i++ {
		id := base + core.FileID(i)
		if ent := l.imap[id]; ent != nil && ent.addr >= 0 && id >= l.nextIno {
			l.nextIno = id + 1
		}
	}
}

// recountLocked rebuilds the usage table, free list and inode-block
// index from the reachable file tree — the recovered state must
// satisfy exactly the invariants Check verifies.
func (l *LFS) recountLocked(t sched.Task, st *layout.RecoveryStats) error {
	live := make([]int32, l.nsegs)
	count := func(addr int64) {
		if addr < l.seg0 {
			return
		}
		if seg := l.segOf(addr); seg >= 0 && seg < l.nsegs {
			live[seg]++
		}
	}
	ids := make([]core.FileID, 0, len(l.imap))
	for id, ent := range l.imap {
		if ent.addr >= 0 || l.inodes[id] != nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	inodeBlocks := make(map[int64][]core.FileID)
	for _, id := range ids {
		ino, err := l.getInodeLocked(t, id)
		if err != nil {
			// Unreadable past roll-forward: corruption beyond what the
			// log can repair. Drop the file rather than the volume.
			st.Repairs = append(st.Repairs, fmt.Sprintf("dropped unreadable inode %d: %v", id, err))
			ent := l.imap[id]
			ent.addr = -1
			ent.version++
			l.imapDirty[int(id)/imapPerChunk] = true
			delete(l.inodes, id)
			delete(l.dirtyInodes, id)
			continue
		}
		for _, a := range ino.Blocks {
			if a >= 0 {
				count(a)
			}
		}
		for _, a := range ino.IndAddrs {
			count(a)
		}
		if ent := l.imap[id]; ent != nil && ent.addr >= 0 {
			inodeBlocks[ent.addr] = append(inodeBlocks[ent.addr], id)
		}
	}
	// Shared inode blocks count once, imap chunks once each.
	addrs := make([]int64, 0, len(inodeBlocks))
	for a := range inodeBlocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		count(a)
	}
	for _, a := range l.imapAddr {
		if a >= 0 {
			count(a)
		}
	}
	l.freeSegs = l.freeSegs[:0]
	for seg := 0; seg < l.nsegs; seg++ {
		if live[seg] == 0 {
			l.sut[seg] = segInfo{state: segFree}
			l.freeSegs = append(l.freeSegs, seg)
			delete(l.summaries, seg)
			continue
		}
		l.sut[seg].live = live[seg]
		if l.sut[seg].state == segFree {
			l.sut[seg].state = segInUse
		}
	}
	l.inodeBlockIDs = inodeBlocks
	return nil
}

// GrowSize implements layout.Sizer: the size grows under l.mu, the
// lock every metadata reader (inode packing, log decode) holds.
func (l *LFS) GrowSize(t sched.Task, ino *layout.Inode, size int64) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	if size > ino.Size {
		ino.Size = size
		l.dirtyInodes[ino.ID] = true
	}
}

// WithInode implements layout.InodeLocker: fn runs under l.mu, so
// the segment packer never encodes the inode mid-mutation.
func (l *LFS) WithInode(t sched.Task, ino *layout.Inode, fn func()) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	fn()
}

// WriteBarrier implements layout.Barrier: the open segment (with the
// blocks WriteBlocks has staged so far) goes to disk as a partial
// segment, together with every dirty inode record. Packing the
// inodes matters for the paper's no-acknowledged-loss argument: a
// barrier that flushed only data would leave the records volatile,
// and roll-forward would count the just-hardened blocks of a fresh
// file as orphans of an inode that never reached the log. With the
// records in the same barrier, data made durable this way needs no
// checkpoint to survive.
func (l *LFS) WriteBarrier(t sched.Task) error {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	return l.writeCurSegment(t, true)
}

// DurableSeq implements layout.DurableWatermark: the log sequence
// number advances with every segment flush and checkpoint, so a
// caller that snapshots it around a sync can tell the covering
// barrier really reached the disk.
func (l *LFS) DurableSeq(t sched.Task) uint64 {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	return l.seq
}

// LiveInodes implements layout.InodeEnumerator.
func (l *LFS) LiveInodes(t sched.Task) []core.FileID {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	ids := make([]core.FileID, 0, len(l.imap))
	for id, ent := range l.imap {
		if ent.addr >= 0 || l.inodes[id] != nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// InodeCursor implements layout.AllocCursor.
func (l *LFS) InodeCursor(t sched.Task) uint64 {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	return uint64(l.nextIno)
}

// SetInodeCursor implements layout.AllocCursor.
func (l *LFS) SetInodeCursor(t sched.Task, cur uint64) {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)
	if core.FileID(cur) > l.nextIno {
		l.nextIno = core.FileID(cur)
	}
}
