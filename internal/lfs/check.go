package lfs

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sched"
)

// Check is the layout's fsck: it loads every live inode and verifies
// the log's invariants —
//
//   - every inode-map entry points into an in-use segment,
//   - every file block and indirect block address is in range and
//     lands in an in-use (or open) segment,
//   - no two live blocks share an address,
//   - the segment usage table's live counts match a recount from
//     the reachable file tree,
//   - the free list is exact: free state, no duplicates, not the
//     open segment.
//
// It returns every violation found (nil means consistent).
func (l *LFS) Check(t sched.Task) []error {
	l.mu.Lock(t)
	defer l.mu.Unlock(t)

	var errs []error
	bad := func(f string, args ...any) {
		errs = append(errs, fmt.Errorf("lfs %s: "+f, append([]any{l.name}, args...)...))
	}

	inSeg := func(addr int64) int {
		if addr < l.seg0 || addr >= l.seg0+int64(l.nsegs)*int64(l.cfg.SegBlocks) {
			return -1
		}
		seg := l.segOf(addr)
		// The summary block is never a data address.
		if addr == l.segStart(seg) {
			return -1
		}
		return seg
	}
	segUsable := func(seg int) bool {
		st := l.sut[seg].state
		return st == segInUse || st == segCurrent
	}

	live := make([]int32, l.nsegs)
	owner := make(map[int64]string)
	claim := func(addr int64, what string) {
		seg := inSeg(addr)
		if seg < 0 {
			bad("%s at %d outside any segment", what, addr)
			return
		}
		if !segUsable(seg) {
			bad("%s at %d lands in segment %d with state %d", what, addr, seg, l.sut[seg].state)
			return
		}
		if prev, dup := owner[addr]; dup {
			bad("address %d claimed by both %s and %s", addr, prev, what)
			return
		}
		owner[addr] = what
		live[seg]++
	}

	// Walk every live inode.
	ids := make([]core.FileID, 0, len(l.imap))
	for id, ent := range l.imap {
		if ent.addr >= 0 || l.inodes[id] != nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	inodeBlocks := map[int64]bool{}
	for _, id := range ids {
		ino, err := l.getInodeLocked(t, id)
		if err != nil {
			bad("inode %d unreadable: %v", id, err)
			continue
		}
		for b, addr := range ino.Blocks {
			if addr >= 0 {
				claim(addr, fmt.Sprintf("f%d/b%d", id, b))
			}
		}
		for i, addr := range ino.IndAddrs {
			claim(addr, fmt.Sprintf("f%d/ind%d", id, i))
		}
		if ent := l.imap[id]; ent != nil && ent.addr >= 0 {
			inodeBlocks[ent.addr] = true
		}
	}
	// Inode blocks are shared; claim each once.
	addrs := make([]int64, 0, len(inodeBlocks))
	for a := range inodeBlocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		claim(a, fmt.Sprintf("inode-block@%d", a))
	}
	// Inode-map chunks.
	for c, a := range l.imapAddr {
		if a >= 0 {
			claim(a, fmt.Sprintf("imap-chunk%d", c))
		}
	}

	// Usage-table recount. Dirty (unpacked) inodes are not yet in
	// the log, so their inode-block slot may be pending; allow the
	// recount to undershoot by the open segment's bookkeeping only
	// when strictly consistent data is expected — here, demand
	// equality, which holds after Sync.
	for seg := 0; seg < l.nsegs; seg++ {
		if l.sut[seg].state == segFree {
			if live[seg] != 0 {
				bad("free segment %d has %d reachable blocks", seg, live[seg])
			}
			continue
		}
		if l.sut[seg].live != live[seg] {
			bad("segment %d usage: table says %d live, recount %d",
				seg, l.sut[seg].live, live[seg])
		}
	}

	// Free-list exactness.
	seen := map[int]bool{}
	for _, s := range l.freeSegs {
		if s < 0 || s >= l.nsegs {
			bad("free list holds invalid segment %d", s)
			continue
		}
		if seen[s] {
			bad("segment %d on free list twice", s)
		}
		seen[s] = true
		if l.sut[s].state != segFree {
			bad("free-listed segment %d has state %d", s, l.sut[s].state)
		}
		if l.cur != nil && s == l.cur.seg {
			bad("open segment %d is on the free list", s)
		}
	}
	for seg := 0; seg < l.nsegs; seg++ {
		if l.sut[seg].state == segFree && !seen[seg] {
			bad("free segment %d missing from free list", seg)
		}
	}
	return errs
}
