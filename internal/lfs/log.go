package lfs

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/sched"
)

// appendBlock reserves the next log slot for one block, copying data
// into the open segment (real mode) and recording the summary entry.
// It returns the block's new address. Full segments are written out
// and a fresh one opened; the caller must hold l.mu.
func (l *LFS) appendBlock(t sched.Task, kind uint8, file core.FileID, blk int64, data []byte) (int64, error) {
	if l.cur != nil && l.cur.used >= l.dataSlots {
		if err := l.writeCurSegment(t, false); err != nil {
			return -1, err
		}
	}
	if l.cur == nil {
		if err := l.openSegment(t); err != nil {
			return -1, err
		}
	}
	s := l.cur
	slot := s.used
	addr := l.segStart(s.seg) + 1 + int64(slot)
	switch {
	case s.vec != nil:
		if kind == kindData && len(data) == core.BlockSize {
			// Zero-copy: the slot aliases the appender's block — a
			// Flushing-stable cache frame or the cleaner's immutable
			// victim read. A frame alias must not outlive its flush
			// job (a front-end rewrite of the block mutates the frame
			// the moment the job's Flushing window closes), so
			// WriteBlocks drains its slots to the device before
			// returning (writeThrough). Metadata kinds never alias:
			// their appenders reuse one scratch buffer across blocks.
			s.vec[1+slot] = data
			l.pending[addr] = data
		} else {
			dst := make([]byte, core.BlockSize)
			copy(dst, data)
			s.vec[1+slot] = dst
			l.pending[addr] = dst
			if kind == kindData {
				l.staged.Add(int64(len(data)))
			}
		}
	case s.data != nil:
		dst := s.data[(1+slot)*core.BlockSize : (2+slot)*core.BlockSize]
		for i := range dst {
			dst[i] = 0
		}
		copy(dst, data)
		l.pending[addr] = dst
		if kind == kindData {
			l.staged.Add(int64(len(data)))
		}
	case l.part.Mover != nil:
		// Simulated: charge the memory-copy cost of staging the
		// block into the segment buffer.
		t.Sleep(timeNS(l.part.Mover.CopyCost(core.BlockSize)))
	}
	s.entries = append(s.entries, sumEntry{Kind: kind, File: file, Blk: blk})
	s.used++
	l.sut[s.seg].live++
	l.blocksOut.Inc()
	return addr, nil
}

// openSegment takes the next free segment as the log head, cleaning
// first if free space has run low.
func (l *LFS) openSegment(t sched.Task) error {
	if len(l.freeSegs) <= l.cfg.MinFreeSegs {
		if err := l.cleanLocked(t); err != nil {
			return err
		}
	}
	if len(l.freeSegs) == 0 {
		return core.ErrNoSpace
	}
	seg := l.freeSegs[0]
	l.freeSegs = l.freeSegs[1:]
	sb := &segBuf{seg: seg}
	if !l.part.Simulated {
		if l.vectored {
			sb.vec = make([][]byte, l.cfg.SegBlocks)
			sb.vec[0] = make([]byte, core.BlockSize) // owned summary block
			sb.sums = make([]uint32, l.cfg.SegBlocks)
		} else {
			sb.data = make([]byte, l.cfg.SegBlocks*core.BlockSize)
		}
	}
	l.sut[seg] = segInfo{live: 0, seq: uint32(l.seq), state: segCurrent}
	l.cur = sb
	return nil
}

// writeCurSegment packs dirty inodes (as many as fit), writes the
// open segment to disk in one sequential I/O, and closes it. With
// sync set, every dirty inode is packed, spilling into further
// segments until none remain.
func (l *LFS) writeCurSegment(t sched.Task, sync bool) error {
	if l.cur == nil && len(l.dirtyInodes) == 0 {
		return nil
	}
	for {
		if l.cur == nil {
			if err := l.openSegment(t); err != nil {
				return err
			}
		}
		l.packInodes(t)
		if err := l.flushSegBuf(t); err != nil {
			return err
		}
		if !sync || len(l.dirtyInodes) == 0 {
			return nil
		}
	}
}

// packInodes serializes dirty inodes (and their indirect map blocks)
// into the open segment until the segment fills or no dirty inodes
// remain. Inodes are packed InodesPerBlk to a block; the inode map
// is updated to the new locations.
func (l *LFS) packInodes(t sched.Task) {
	ids := make([]core.FileID, 0, len(l.dirtyInodes))
	for id := range l.dirtyInodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var batch []core.FileID
	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		buf := make([]byte, core.BlockSize)
		addr, err := l.appendBlockNoRefill(kindInode, batch[0], 0, nil)
		if err != nil {
			return
		}
		blkIDs := append([]core.FileID(nil), batch...)
		oldAddrs := map[int64]bool{}
		for i, id := range blkIDs {
			ino := l.inodes[id]
			if l.cur.real() {
				di := l.toDiskInode(ino)
				layout.EncodeInode(di, buf[i*layout.InodeSize:])
			}
			ent := l.imap[id]
			if ent.addr >= 0 && ent.addr != addr {
				oldAddrs[ent.addr] = true
			}
			ent.addr = addr
			ent.slot = uint8(i)
			l.imapDirty[int(id)/imapPerChunk] = true
			delete(l.dirtyInodes, id)
		}
		if l.cur.real() {
			copy(l.pending[addr], buf)
		}
		l.inodeBlockIDs[addr] = blkIDs
		// Previous homes of these inodes may now be fully dead.
		for old := range oldAddrs {
			l.noteInodeSlotDead(old)
		}
		batch = batch[:0]
	}

	for _, id := range ids {
		ino := l.inodes[id]
		if ino == nil {
			delete(l.dirtyInodes, id)
			continue
		}
		need := l.indirectBlocksNeeded(ino)
		// need slots for indirects plus one (shared) inode block —
		// reserved whether the batch is empty or already open.
		if l.cur.used+need+1 > l.dataSlots {
			break // no room; stays dirty for the next segment
		}
		if need > 0 {
			if err := l.writeIndirects(t, ino); err != nil {
				break
			}
		}
		batch = append(batch, id)
		if len(batch) == layout.InodesPerBlk {
			flushBatch()
		}
		if l.cur.used >= l.dataSlots {
			break
		}
	}
	flushBatch()
}

// appendBlockNoRefill is appendBlock without the write-and-reopen
// path: packInodes guarantees room before calling.
func (l *LFS) appendBlockNoRefill(kind uint8, file core.FileID, blk int64, data []byte) (int64, error) {
	if l.cur == nil || l.cur.used >= l.dataSlots {
		return -1, fmt.Errorf("lfs %s: internal: no room reserved for metadata block", l.name)
	}
	s := l.cur
	slot := s.used
	addr := l.segStart(s.seg) + 1 + int64(slot)
	if s.vec != nil {
		// Metadata blocks always get an owned copy: the callers
		// (packInodes, writeIndirects) reuse one scratch buffer across
		// blocks and write into l.pending[addr] after the append.
		dst := make([]byte, core.BlockSize)
		copy(dst, data)
		s.vec[1+slot] = dst
		l.pending[addr] = dst
	} else if s.data != nil {
		dst := s.data[(1+slot)*core.BlockSize : (2+slot)*core.BlockSize]
		for i := range dst {
			dst[i] = 0
		}
		copy(dst, data)
		l.pending[addr] = dst
	}
	s.entries = append(s.entries, sumEntry{Kind: kind, File: file, Blk: blk})
	s.used++
	l.sut[s.seg].live++
	l.blocksOut.Inc()
	return addr, nil
}

// indirectBlocksNeeded counts the map blocks a file's inode needs.
func (l *LFS) indirectBlocksNeeded(ino *layout.Inode) int {
	if len(ino.Blocks) <= layout.NDirect {
		return 0
	}
	_, groups, err := layout.SplitBlockMap(ino.Blocks)
	if err != nil {
		return 0
	}
	n := len(groups)
	if n > 1 {
		n++ // the double-indirect root
	}
	return n
}

// writeIndirects appends the file's indirect map blocks to the log
// and records their addresses in the inode. Old indirect blocks die.
func (l *LFS) writeIndirects(t sched.Task, ino *layout.Inode) error {
	for _, a := range ino.IndAddrs {
		l.deadBlock(a)
	}
	ino.IndAddrs = ino.IndAddrs[:0]
	_, groups, err := layout.SplitBlockMap(ino.Blocks)
	if err != nil {
		return err
	}
	if len(groups) == 0 {
		return nil
	}
	var buf []byte
	if !l.part.Simulated {
		buf = make([]byte, core.BlockSize)
	}
	leafAddrs := make([]int64, 0, len(groups))
	for gi, g := range groups {
		if buf != nil {
			layout.EncodeAddrs(g, buf)
		}
		addr, err := l.appendBlockNoRefill(kindIndirect, ino.ID, int64(gi), buf)
		if err != nil {
			return err
		}
		leafAddrs = append(leafAddrs, addr)
		ino.IndAddrs = append(ino.IndAddrs, addr)
	}
	if len(groups) > 1 {
		// Double-indirect root: addresses of leaves 1..n (leaf 0 is
		// the single-indirect block reachable from the inode).
		if buf != nil {
			layout.EncodeAddrs(leafAddrs[1:], buf)
		}
		addr, err := l.appendBlockNoRefill(kindIndirect, ino.ID, -1, buf)
		if err != nil {
			return err
		}
		ino.IndAddrs = append(ino.IndAddrs, addr)
	}
	return nil
}

// writeThrough pushes the open segment's not-yet-written slots to
// the device as one scatter-gather request. Cache-frame aliases are
// only stable while their flush job holds the blocks Flushing
// (BeginWrite waits on that window), so every vectored WriteBlocks
// drains its slots here before returning: the frame's bytes — and
// the checksum the summary will carry for them — are read inside the
// stable window, never after it. Caller holds l.mu.
func (l *LFS) writeThrough(t sched.Task) error {
	s := l.cur
	if s == nil || s.vec == nil || s.done >= s.used {
		return nil
	}
	for i := s.done; i < s.used; i++ {
		s.sums[i] = blockSum(s.vec[1+i])
	}
	start := l.segStart(s.seg) + 1 + int64(s.done)
	if err := l.part.WriteVec(t, start, s.used-s.done, s.vec[1+s.done:1+s.used]); err != nil {
		// The slots stay staged for a retry, but the job's Flushing
		// window closes when this error surfaces — clients may then
		// rewrite the frames, so the staged slots must own their
		// bytes from here on.
		l.materializeCur()
		return err
	}
	// The bytes are on the media: drop the aliases (the frames may
	// be rewritten freely now) and serve readers from the device.
	base := l.segStart(s.seg) + 1
	for i := s.done; i < s.used; i++ {
		delete(l.pending, base+int64(i))
		s.vec[1+i] = nil
	}
	s.done = s.used
	return nil
}

// materializeCur replaces every not-yet-written-through slot of the
// open segment with an owned copy of its bytes. Vectored slots alias
// cache frames, and those aliases are only safe inside the flush
// job's Flushing window — when an error aborts the job before
// writeThrough drains the slots, the window closes with the slots
// still staged, and the retry (or the next job's writeThrough) must
// read the bytes the job appended, not whatever the frames hold by
// then. The copies count as staged bytes: they are exactly the flat
// engine's memcpy, paid only on failed writes. Caller holds l.mu.
func (l *LFS) materializeCur() {
	s := l.cur
	if s == nil || s.vec == nil {
		return
	}
	base := l.segStart(s.seg) + 1
	for i := s.done; i < s.used; i++ {
		src := s.vec[1+i]
		if src == nil {
			continue
		}
		cp := make([]byte, len(src))
		copy(cp, src)
		l.staged.Add(int64(len(cp)))
		s.vec[1+i] = cp
		if _, ok := l.pending[base+int64(i)]; ok {
			l.pending[base+int64(i)] = cp
		}
	}
}

// flushSegBuf writes the open segment (summary + used slots) to the
// device and retires it.
func (l *LFS) flushSegBuf(t sched.Task) error {
	s := l.cur
	if s == nil {
		return nil
	}
	if s.used == 0 {
		// Nothing written: return the segment to the free pool.
		l.sut[s.seg] = segInfo{state: segFree}
		l.freeSegs = append(l.freeSegs, s.seg)
		l.cur = nil
		return nil
	}
	var err error
	if s.vec != nil {
		// Data slots went out as they were appended (writeThrough);
		// drain any remainder (inode packs, cleaner copies), then
		// commit the segment with its summary block — data before
		// summary, so a cut between the two reads as a torn tail.
		// The summary carries the seq the usage table records below:
		// roll-forward dates segments by it.
		if err = l.writeThrough(t); err == nil {
			l.encodeSummary(s, l.seq)
			err = l.part.Write(t, l.segStart(s.seg), 1, s.vec[0])
		}
	} else {
		if s.real() {
			l.encodeSummary(s, l.seq)
		}
		var data []byte
		if s.data != nil {
			data = s.data[:(1+s.used)*core.BlockSize]
		}
		err = l.part.Write(t, l.segStart(s.seg), 1+s.used, data)
	}
	if err != nil {
		return err
	}
	l.summaries[s.seg] = s.entries
	l.sut[s.seg].state = segInUse
	l.sut[s.seg].seq = uint32(l.seq)
	l.seq++
	l.segsWritten.Inc()
	if s.used < l.dataSlots {
		l.partialSegs.Inc()
	}
	// Blocks are durable; forget the pending copies.
	base := l.segStart(s.seg) + 1
	for i := 0; i < s.used; i++ {
		delete(l.pending, base+int64(i))
	}
	l.cur = nil
	return nil
}

// deadBlock marks a previously live log block dead in the usage
// table.
func (l *LFS) deadBlock(addr int64) {
	if addr < l.seg0 {
		return
	}
	seg := l.segOf(addr)
	if seg < 0 || seg >= l.nsegs {
		return
	}
	if l.sut[seg].live > 0 {
		l.sut[seg].live--
	}
}
