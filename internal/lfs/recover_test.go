package lfs

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/sched"
)

// crashRig is an LFS over a RAM-backed device with a fault plan on
// the driver — the unit-level crash laboratory.
type crashRig struct {
	k    *sched.VKernel
	drv  device.Driver
	l    *LFS
	plan *device.FaultPlan
}

func newCrashRig(seed int64, blocks int64) *crashRig {
	k := sched.NewVirtual(seed)
	drv := device.NewMemDriver(k, "mem0", blocks, nil)
	part := layout.NewPartition(drv, 0, 0, blocks, false)
	l := New(k, "vol0", part, Config{SegBlocks: 16, MaxInodes: 1 << 12})
	return &crashRig{k: k, drv: drv, l: l}
}

// recoverFresh builds a fresh LFS over the crashed device (power
// restored) and runs recovery.
func (r *crashRig) recoverFresh(tk sched.Task, t *testing.T) (*LFS, layout.RecoveryStats) {
	t.Helper()
	r.drv.SetInjector(nil)
	part := layout.NewPartition(r.drv, 0, 0, r.drv.CapacityBlocks(), false)
	l2 := New(r.k, "vol0", part, Config{})
	st, err := l2.Recover(tk)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return l2, st
}

// TestRollForwardRecoversPostCheckpointWrites loses a checkpoint's
// worth of log tail and gets it back: data written (and flushed into
// full segments) after the last Sync must survive a crash.
func TestRollForwardRecoversPostCheckpointWrites(t *testing.T) {
	r := newCrashRig(11, 4096)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		if err := writeFile(tk, r.l, ino, 0x01, 0x02); err != nil {
			t.Fatalf("write: %v", err)
		}
		r.l.Sync(tk)

		// Post-checkpoint: overwrite block 0 and append 40 more, which
		// forces several full-segment flushes (15 data slots each);
		// the unflushed tail stays in memory and dies with the crash.
		var ws []layout.BlockWrite
		ws = append(ws, layout.BlockWrite{Blk: 0, Data: blockOf(0xA0), Size: core.BlockSize})
		for i := 2; i < 42; i++ {
			ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(i), Data: blockOf(byte(i)), Size: core.BlockSize})
		}
		ino.Size = 42 * core.BlockSize
		if err := r.l.WriteBlocks(tk, ino, ws); err != nil {
			t.Fatalf("post-cp write: %v", err)
		}

		// Crash: fresh instance, recover, fsck.
		l2, st := r.recoverFresh(tk, t)
		if st.RolledSegments == 0 || st.DataBlocks == 0 {
			t.Fatalf("nothing rolled forward: %+v", st)
		}
		if errs := l2.Check(tk); len(errs) != 0 {
			t.Fatalf("fsck dirty after recovery: %v", errs)
		}
		ino2, err := l2.GetInode(tk, ino.ID)
		if err != nil {
			t.Fatalf("GetInode: %v", err)
		}
		// The checkpointed blocks must be intact, and the rolled-over
		// overwrite of block 0 must win over the checkpointed version.
		got := make([]byte, core.BlockSize)
		l2.ReadBlock(tk, ino2, 0, got)
		if got[0] != 0xA0 {
			t.Fatalf("block 0 = %#x, want rolled-forward 0xA0", got[0])
		}
		l2.ReadBlock(tk, ino2, 1, got)
		if got[0] != 0x02 {
			t.Fatalf("block 1 = %#x, want checkpointed 0x02", got[0])
		}
		// Every block that reached a flushed segment must be back.
		recovered := 0
		for i := 2; i < 42; i++ {
			if ino2.BlockAddr(core.BlockNo(i)) >= 0 {
				l2.ReadBlock(tk, ino2, core.BlockNo(i), got)
				if got[0] != byte(i) {
					t.Fatalf("rolled block %d = %#x, want %#x", i, got[0], byte(i))
				}
				recovered++
			}
		}
		if recovered != st.DataBlocks-1 { // -1: the block-0 overwrite
			t.Fatalf("recovered %d appended blocks, stats say %d data blocks", recovered, st.DataBlocks)
		}
		if recovered < 20 {
			t.Fatalf("only %d of 40 appended blocks rolled forward", recovered)
		}
	})
}

// TestRollForwardOrphansUndurableFiles checks data of a file whose
// inode never reached the disk is dropped and counted, not leaked.
func TestRollForwardOrphansUndurableFiles(t *testing.T) {
	r := newCrashRig(12, 4096)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		r.l.Sync(tk)
		// File allocated after the sync: its imap entry and inode
		// record exist only in memory.
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		var ws []layout.BlockWrite
		for i := 0; i < 20; i++ {
			ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(i), Data: blockOf(0xEE), Size: core.BlockSize})
		}
		ino.Size = 20 * core.BlockSize
		r.l.WriteBlocks(tk, ino, ws)

		l2, st := r.recoverFresh(tk, t)
		if st.OrphanBlocks == 0 {
			t.Fatalf("expected orphan blocks, got %+v", st)
		}
		if _, err := l2.GetInode(tk, ino.ID); err != core.ErrNotFound {
			t.Fatalf("undurable file resurrected: %v", err)
		}
		if errs := l2.Check(tk); len(errs) != 0 {
			t.Fatalf("fsck dirty after orphan recovery: %v", errs)
		}
	})
}

// TestRollForwardStopsAtTornTail corrupts one rolled-forward block
// (as a torn multi-block segment write would) and checks recovery
// applies the intact prefix, stops there, and still checks clean.
func TestRollForwardStopsAtTornTail(t *testing.T) {
	r := newCrashRig(13, 4096)
	run(t, r.k, func(tk sched.Task) {
		r.l.Format(tk)
		r.l.Mount(tk)
		ino, _ := r.l.AllocInode(tk, core.TypeRegular)
		writeFile(tk, r.l, ino, 0x01)
		r.l.Sync(tk)
		var ws []layout.BlockWrite
		for i := 1; i < 20; i++ {
			ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(i), Data: blockOf(byte(0x40 + i)), Size: core.BlockSize})
		}
		ino.Size = 20 * core.BlockSize
		r.l.WriteBlocks(tk, ino, ws)
		// Tear the flushed segment: blocks 1 and 2 reached the disk,
		// the slot holding block 3 did not (overwrite it raw).
		tornAddr := ino.BlockAddr(3)
		if tornAddr < 0 {
			t.Fatal("block 3 not flushed; widen the write")
		}
		if err := r.drv.Do(tk, &device.Request{
			Op: device.OpWrite, Addr: core.DiskAddr{Disk: 0, LBA: tornAddr},
			Blocks: 1, Data: blockOf(0xDD),
		}); err != nil {
			t.Fatalf("raw corrupt: %v", err)
		}

		l2, st := r.recoverFresh(tk, t)
		if !st.TornTail {
			t.Fatalf("torn tail not detected: %+v", st)
		}
		ino2, err := l2.GetInode(tk, ino.ID)
		if err != nil {
			t.Fatalf("GetInode: %v", err)
		}
		got := make([]byte, core.BlockSize)
		l2.ReadBlock(tk, ino2, 1, got)
		if got[0] != 0x41 {
			t.Fatalf("pre-tear block 1 = %#x, want 0x41", got[0])
		}
		if a := ino2.BlockAddr(3); a == tornAddr {
			t.Fatal("torn block re-attached")
		}
		if errs := l2.Check(tk); len(errs) != 0 {
			t.Fatalf("fsck dirty after torn-tail recovery: %v", errs)
		}
	})
}

// TestPowerCutSweepNeverLosesBothCheckpoints is the dual-region
// regression: run a fixed workload of writes and syncs with a power
// cut injected at every possible I/O (torn writes included), and
// require that recovery always finds a valid checkpoint, mounts, and
// passes fsck — in particular a cut landing inside a checkpoint
// region write must leave the sibling region intact.
func TestPowerCutSweepNeverLosesBothCheckpoints(t *testing.T) {
	script := func(tk sched.Task, l *LFS) {
		// Errors are expected once the cut trips; the script just
		// keeps issuing its fixed plan.
		ino, err := l.AllocInode(tk, core.TypeRegular)
		if err != nil {
			return
		}
		for phase := byte(1); phase <= 3; phase++ {
			n := 8
			if phase == 2 {
				n = 24 // spills over a 15-slot segment mid-phase
			}
			var ws []layout.BlockWrite
			for i := 0; i < n; i++ {
				ws = append(ws, layout.BlockWrite{Blk: core.BlockNo(i), Data: blockOf(phase), Size: core.BlockSize})
			}
			ino.Size = int64(n) * core.BlockSize
			if l.WriteBlocks(tk, ino, ws) != nil {
				return
			}
			if l.Sync(tk) != nil {
				return
			}
		}
	}

	// Dry run: count the I/Os the script performs.
	var total int64
	{
		r := newCrashRig(20, 4096)
		plan := device.NewFaultPlan(device.FaultConfig{})
		run(t, r.k, func(tk sched.Task) {
			r.l.Format(tk)
			r.l.Mount(tk)
			r.drv.SetInjector(plan)
			script(tk, r.l)
		})
		total = plan.IOs()
	}
	if total < 8 {
		t.Fatalf("dry run did only %d I/Os", total)
	}

	for k := int64(1); k <= total; k++ {
		r := newCrashRig(20, 4096)
		plan := device.NewFaultPlan(device.FaultConfig{Seed: k, CutAfterIO: k, CutTearsWrite: true})
		run(t, r.k, func(tk sched.Task) {
			r.l.Format(tk)
			r.l.Mount(tk)
			r.drv.SetInjector(plan) // injected only after format: mkfs is not atomic
			script(tk, r.l)

			l2, _ := r.recoverFresh(tk, t)
			if errs := l2.Check(tk); len(errs) != 0 {
				t.Fatalf("cut at I/O %d: fsck dirty after recovery: %v", k, errs)
			}
			// The recovered volume must keep allocating without
			// colliding with recovered files.
			seen := map[core.FileID]bool{}
			for _, id := range l2.LiveInodes(tk) {
				seen[id] = true
			}
			nino, err := l2.AllocInode(tk, core.TypeRegular)
			if err != nil {
				t.Fatalf("cut at I/O %d: alloc after recovery: %v", k, err)
			}
			if seen[nino.ID] {
				t.Fatalf("cut at I/O %d: recovered allocator reissued live inode %d", k, nino.ID)
			}
			// Any readable file block must hold one of the phase
			// patterns — torn garbage must never surface.
			for _, id := range l2.LiveInodes(tk) {
				ino2, err := l2.GetInode(tk, id)
				if err != nil {
					t.Fatalf("cut at I/O %d: live inode %d unreadable: %v", k, id, err)
				}
				got := make([]byte, core.BlockSize)
				for b := 0; b < ino2.NBlocks(); b++ {
					if ino2.BlockAddr(core.BlockNo(b)) < 0 {
						continue
					}
					if err := l2.ReadBlock(tk, ino2, core.BlockNo(b), got); err != nil {
						t.Fatalf("cut at I/O %d: read f%d/b%d: %v", k, id, b, err)
					}
					if !bytes.Equal(got, blockOf(got[0])) || got[0] > 3 {
						t.Fatalf("cut at I/O %d: f%d/b%d holds torn garbage (lead byte %#x)", k, id, b, got[0])
					}
				}
			}
		})
	}
}
