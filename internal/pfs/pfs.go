// Package pfs instantiates the cut-and-paste component library into
// the on-line Pegasus file system: the same cache, layout and
// abstract-client components the simulator runs, bound to the
// real-time kernel, a real memory arena, a Unix file (or raw device)
// as the disk back-end, and the NFS-like network front-end. This is
// the paper's point: nothing here is a reimplementation — only the
// helper components differ from Patsy.
package pfs

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ffs"
	"repro/internal/fsys"
	"repro/internal/health"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/nfs"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/volume"
)

// Config describes one PFS instance.
type Config struct {
	// Path is the backing Unix file (created and sized if absent).
	// With Volumes > 1 it is the base name: member i backs onto
	// "<Path>.v<i>".
	Path string
	// Blocks is the per-volume size in 4 KB blocks.
	Blocks int64
	// Volumes is the disk-array width: that many independent image +
	// driver + LFS stacks behind one volume.Array (default 1, the
	// classic single-volume server).
	Volumes int
	// Placement routes file data across the array: "affinity"
	// (default), "striped", or the redundant placements "mirrored"
	// (chained declustering) and "parity" (rotated RAID-5), which
	// keep serving through a member death (Server.KillMember /
	// RebuildMember).
	Placement string
	// StripeBlocks is the striped placement's chunk width.
	StripeBlocks int
	// CacheBlocks sizes the block cache (default 4096 = 16 MB).
	CacheBlocks int
	// CacheShards lock-stripes the cache so concurrent NFS clients
	// stop convoying on one mutex: 0 = the default (8), 1 = the
	// classic single-lock cache, negative is invalid.
	CacheShards int
	// Pipeline is the per-connection NFS window (decode-ahead
	// depth): 0 = nfs.DefaultPipeline, 1 = no pipelining.
	Pipeline int
	// ReadaheadBlocks is the sequential-read readahead window:
	// 0 = the default (8), negative = disabled.
	ReadaheadBlocks int
	// ClusterRunBlocks caps clustered multi-block transfers — the
	// run size a single device request may carry on the data paths
	// (cache flush writes, readahead fills, LFS roll-forward):
	// 0 = the default (layout.DefaultClusterRun, clustering on),
	// negative = off (one block per request).
	ClusterRunBlocks int
	// Flush selects the write policy (default: the UPS write-saving
	// policy the paper's experiments recommend).
	Flush cache.FlushConfig
	// Replace names the cache replacement policy.
	Replace string
	// SegBlocks sizes LFS segments.
	SegBlocks int
	// QueueSched names the disk-queue scheduler (default clook).
	QueueSched string
	// Seed drives policy randomness.
	Seed int64
	// Layout selects the per-member storage layout: "lfs" (default)
	// or "ffs".
	Layout string
	// Fault, when set, installs a shared fault plan on every member's
	// driver: injected I/O errors, torn writes, and the power cut the
	// crash harness drives. The plan is reachable as Server.Fault.
	Fault *device.FaultConfig
	// Dead lists array members to declare dead before the mount — the
	// degraded reopen after a member loss, when the member's image is
	// stale (or gone) and its share must be served from redundancy.
	// Requires a redundant placement; at most one member (the
	// single-fault model). RebuildMember brings the member back.
	Dead []int
	// Recover mounts an existing image set through the crash-recovery
	// path (LFS roll-forward / FFS repair / array-wide repairs)
	// instead of the plain mount; the result lands in
	// Server.Recovery. Fresh image sets are formatted as usual.
	Recover bool
	// SlowOpThreshold sets the tracer's slow-op capture threshold
	// (0 = telemetry.DefaultSlowThreshold).
	SlowOpThreshold time.Duration
	// NoIntentLog disables the metadata intent log. By default the
	// on-line server records every acknowledged namespace operation
	// into a battery-backed intent ring (it survives Crash with the
	// dirty blocks), closing the create+write+crash loss hole; this
	// switch restores the checkpoint-only discipline for A/B runs.
	NoIntentLog bool
	// NoVectorIO disables zero-copy vectored I/O. By default the
	// on-line server scatter-gathers directly between cache frames,
	// the disk (preadv/pwritev) and the wire (writev read replies);
	// this switch restores the flat staging-buffer paths for A/B
	// runs. Simulated assemblies never vectorize either way.
	NoVectorIO bool
	// Spares sizes the hot-spare pool: that many idle, pre-built
	// member stacks backed by "<Path>.s<j>", attached to the array
	// and promoted automatically (SelfHeal) or via PromoteSpare.
	Spares int
	// SelfHeal runs the repair supervisor: a health monitor samples
	// per-member driver evidence, and a confirmed death is isolated,
	// rebuilt onto a spare and scrub-verified with no operator call.
	// It also unhooks the fault plan's instant OnKill → KillMember
	// shortcut so deaths are detected from the evidence (the array's
	// own lazy ErrDiskDead detection keeps it serving meanwhile).
	SelfHeal bool
	// HealthInterval paces the supervisor's evidence sampling
	// (0 = 25ms).
	HealthInterval time.Duration
	// Health tunes the monitor's hysteresis state machine.
	Health health.Config
	// LatencySLO, when positive, counts device completions slower
	// than this as health evidence (suspect/probation, never death).
	LatencySLO time.Duration
	// RebuildBatchDelay throttles online rebuilds: the copy task
	// pauses this long after each batch, yielding the members to
	// foreground traffic (0 = full speed).
	RebuildBatchDelay time.Duration
}

// Server is a running PFS.
type Server struct {
	K     *sched.RKernel
	FS    *fsys.FS
	Vol   *fsys.Volume
	Cache *cache.Cache
	Array *volume.Array
	Set   *stats.Set
	// Drivers are the per-array-member disk drivers, in member
	// order (observability: per-volume I/O counters).
	Drivers []device.Driver
	// Fault is the installed fault plan (nil without Config.Fault).
	Fault *device.FaultPlan
	// Recovery reports what the recovery mount repaired (nil unless
	// Config.Recover ran against an existing image set).
	Recovery *layout.RecoveryStats
	// Tracer carries per-operation latency breakdowns from the NFS
	// executor down through the cache and disk paths.
	Tracer *telemetry.Tracer
	// Monitor is the health monitor driving the self-heal supervisor
	// (nil unless Config.SelfHeal).
	Monitor *health.Monitor

	cfg      Config
	pipeline int
	cluster  int
	net      *nfs.Server
	admin    *telemetry.Server

	// drvMu guards Drivers, spareDrvs and retired against a
	// concurrent rebuild/promotion swapping in a replacement driver.
	drvMu sync.Mutex
	// spareDrvs holds the spare pool's drivers by slot (nil once the
	// slot's spare is consumed by a promotion).
	spareDrvs []device.Driver
	// retired holds drivers of members replaced by RebuildMember or a
	// spare promotion; their images are released with the server.
	retired []device.Driver

	// Self-heal supervisor state (see selfheal.go).
	healMu       sync.Mutex
	healStop     chan struct{}
	healDone     chan struct{}
	healStopOnce sync.Once
	evMu         sync.Mutex
	healEvents   []HealEvent
	killTimes    map[int]time.Time
}

// ClusterRun reports the effective run-size cap (1 = clustering off).
func (s *Server) ClusterRun() int { return s.cluster }

// VectoredIO reports whether zero-copy vectored I/O is on.
func (s *Server) VectoredIO() bool { return !s.cfg.NoVectorIO }

// StagedCopyBytes reports how many bytes the data paths bounced
// through staging buffers — the copies vectored I/O exists to
// eliminate (flat fallbacks, short blocks, scratch-staged runs),
// summed over the layouts and the front-end.
func (s *Server) StagedCopyBytes() int64 {
	return layout.StagedCopyBytes(s.Array) + s.FS.FSStats().StagedCopy.Value()
}

// Open creates or reopens a PFS on cfg.Path. A fresh image (set) is
// formatted; an existing one is mounted and recovered from its
// checkpoint. With Volumes > 1 the server runs on a disk array: one
// image, driver and LFS per member behind a volume.Array, whose
// on-image label guards against reopening with the wrong geometry.
func Open(cfg Config) (*Server, error) {
	if cfg.Blocks <= 0 {
		cfg.Blocks = 16384 // 64 MB
	}
	if cfg.CacheBlocks <= 0 {
		cfg.CacheBlocks = 4096
	}
	if cfg.Flush.Name == "" {
		cfg.Flush = cache.UPS()
	}
	if cfg.Volumes <= 0 {
		cfg.Volumes = 1
	}
	k := sched.NewReal(cfg.Seed)
	lcfg := lfsConfigFor(cfg)

	var plan *device.FaultPlan
	if cfg.Fault != nil {
		plan = device.NewFaultPlan(*cfg.Fault)
	}
	dead := make(map[int]bool, len(cfg.Dead))
	for _, m := range cfg.Dead {
		if m < 0 || m >= cfg.Volumes {
			return nil, fmt.Errorf("pfs: dead member %d out of range (%d volumes)", m, cfg.Volumes)
		}
		dead[m] = true
	}
	subs := make([]layout.Layout, cfg.Volumes)
	drvs := make([]device.Driver, cfg.Volumes)
	freshCount := 0
	for i := 0; i < cfg.Volumes; i++ {
		path, _ := memberPath(cfg, i)
		// A dead member's image is stale or missing; its freshness says
		// nothing about the array (the driver below recreates a missing
		// file as an inert placeholder).
		if !dead[i] {
			f, err := isFresh(path)
			if err != nil {
				return nil, err
			}
			if f {
				freshCount++
			}
		}
		drv, sub, err := newMember(k, cfg, lcfg, plan, i)
		if err != nil {
			return nil, err
		}
		drvs[i], subs[i] = drv, sub
	}
	alive := cfg.Volumes - len(dead)
	if freshCount != 0 && freshCount != alive {
		return nil, fmt.Errorf("pfs: inconsistent array image set under %s: %d of %d members are fresh",
			cfg.Path, freshCount, alive)
	}
	if freshCount != 0 && len(dead) > 0 {
		return nil, fmt.Errorf("pfs: cannot open a fresh image set under %s with a dead member declared", cfg.Path)
	}
	fresh := freshCount == cfg.Volumes
	lay, err := volume.New(k, "pfs", subs, volume.Config{
		Placement:    cfg.Placement,
		StripeBlocks: cfg.StripeBlocks,
	})
	if err != nil {
		return nil, err
	}
	for m := range dead {
		if err := lay.KillMember(m); err != nil {
			return nil, err
		}
	}
	if plan != nil && !cfg.SelfHeal {
		// A death fault at the driver seam marks the member dead in the
		// volume manager the instant it trips, so the very next I/O is
		// already served from redundancy (the array would also notice
		// lazily from the first ErrDiskDead). Non-redundant placements
		// refuse the kill and keep surfacing raw I/O errors.
		//
		// Self-heal mode skips this shortcut on purpose: isolating the
		// member instantly would starve the drivers of the ErrDiskDead
		// evidence the health monitor detects deaths from. The array's
		// lazy detection (first dead error from live traffic) keeps the
		// window to a handful of failed requests.
		plan.OnKill(func(m int) { _ = lay.KillMember(m) })
	}
	spareDrvs := make([]device.Driver, 0, cfg.Spares)
	for j := 0; j < cfg.Spares; j++ {
		drv, sub, err := newSpare(k, cfg, lcfg, plan, j)
		if err != nil {
			return nil, err
		}
		lay.AttachSpare(sub)
		spareDrvs = append(spareDrvs, drv)
	}
	if cfg.RebuildBatchDelay > 0 {
		lay.SetRebuildBudget(cfg.RebuildBatchDelay)
	}
	if cfg.LatencySLO > 0 {
		for _, drv := range drvs {
			drv.DriverStats().SetLatencySLO(cfg.LatencySLO)
		}
	}

	if cfg.CacheShards == 0 {
		cfg.CacheShards = 8
	}
	if cfg.ReadaheadBlocks == 0 {
		cfg.ReadaheadBlocks = 8
	}
	if cfg.ClusterRunBlocks == 0 {
		cfg.ClusterRunBlocks = layout.DefaultClusterRun
	}
	if cfg.ClusterRunBlocks < 1 {
		cfg.ClusterRunBlocks = 1
	}
	layout.SetClusterRun(lay, cfg.ClusterRunBlocks)
	if !cfg.NoVectorIO {
		// Zero-copy vectored I/O, the whole stack: layouts build
		// scatter-gather vectors straight from cache frames, and the
		// front-end lends frames to read replies. Default on for the
		// real server; the simulator keeps the flat paths.
		layout.SetVectored(lay, true)
	}
	store := fsys.NewStore()
	// The on-line server's flushes are durable on completion: a block
	// the cache frees from its (battery-backed) dirty set is on the
	// log, not in the volatile open-segment buffer.
	store.SetDurable(true)
	c := cache.New(k, cache.Config{
		Blocks:  cfg.CacheBlocks,
		Replace: cfg.Replace,
		Flush:   cfg.Flush,
		Shards:  cfg.CacheShards,
		// Shard by cluster-sized chunks so a file's contiguous dirty
		// run flushes from one shard as one multi-block write.
		ShardChunk:  cfg.ClusterRunBlocks,
		IntentSlots: intentSlots(cfg.NoIntentLog),
	}, store)
	fs := fsys.New(k, c, core.RealMover{})
	store.Bind(fs)
	if cfg.ReadaheadBlocks > 0 {
		fs.SetReadahead(cfg.ReadaheadBlocks)
	}
	fs.SetVectored(!cfg.NoVectorIO)
	c.Start()

	tr := telemetry.NewTracer(k, cfg.SlowOpThreshold)
	fs.SetTracer(tr)

	srv := &Server{K: k, FS: fs, Cache: c, Array: lay, Set: stats.NewSet(), Drivers: drvs, spareDrvs: spareDrvs, Fault: plan, Tracer: tr, cfg: cfg, pipeline: cfg.Pipeline, cluster: cfg.ClusterRunBlocks}
	if plan != nil {
		// The instant the cut trips, the cache stops issuing flushes:
		// a dead machine writes nothing more.
		plan.OnCut(c.PowerOff)
	}
	c.Stats(srv.Set)
	fs.Stats(srv.Set)
	lay.Stats(srv.Set)
	for _, drv := range drvs {
		drv.DriverStats().Register(srv.Set)
	}
	for _, drv := range spareDrvs {
		drv.DriverStats().Register(srv.Set)
	}

	// Mount on a kernel task and wait.
	errc := make(chan error, 1)
	k.Go("pfs.mount", func(t sched.Task) {
		if fresh {
			if err := lay.Format(t); err != nil {
				errc <- err
				return
			}
			if err := lay.Mount(t); err != nil {
				errc <- err
				return
			}
		} else if cfg.Recover {
			st, err := lay.Recover(t)
			if err != nil {
				errc <- err
				return
			}
			srv.Recovery = &st
		} else if err := lay.Mount(t); err != nil {
			errc <- err
			return
		}
		v, err := fs.AddVolume(t, 1, lay, false)
		if err != nil {
			errc <- err
			return
		}
		srv.Vol = v
		errc <- nil
	})
	if err := <-errc; err != nil {
		return nil, err
	}
	if cfg.SelfHeal {
		srv.startSupervisor()
	}
	return srv, nil
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// lfsConfigFor derives the per-member LFS configuration.
func lfsConfigFor(cfg Config) lfs.Config {
	lcfg := lfs.DefaultConfig()
	if cfg.SegBlocks > 0 {
		lcfg.SegBlocks = cfg.SegBlocks
	}
	return lcfg
}

// memberPath names member i's backing image and component prefix.
func memberPath(cfg Config, i int) (path, name string) {
	path, name = cfg.Path, "pfs"
	if cfg.Volumes > 1 {
		path = fmt.Sprintf("%s.v%d", cfg.Path, i)
		name = fmt.Sprintf("pfs.d%d", i)
	}
	return path, name
}

// sparePath names spare slot j's backing image and component prefix.
func sparePath(cfg Config, j int) (path, name string) {
	return fmt.Sprintf("%s.s%d", cfg.Path, j), fmt.Sprintf("pfs.s%d", j)
}

// newMember builds one array member's driver + layout stack over its
// backing image (created and sized if absent). RebuildMember reuses
// it to stand up a replacement member.
func newMember(k *sched.RKernel, cfg Config, lcfg lfs.Config, plan *device.FaultPlan, i int) (device.Driver, layout.Layout, error) {
	path, name := memberPath(cfg, i)
	return newStack(k, cfg, lcfg, plan, path, name, i)
}

// newSpare builds one idle spare stack over a fresh image (a stale
// spare image from an interrupted promotion is dropped first: a spare
// must be unformatted). Its partition claims a disk address beyond
// the array (Volumes+j) so the fault plan's member addressing never
// confuses a spare with the member it replaces.
func newSpare(k *sched.RKernel, cfg Config, lcfg lfs.Config, plan *device.FaultPlan, j int) (device.Driver, layout.Layout, error) {
	path, name := sparePath(cfg, j)
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("pfs: drop stale spare image %s: %w", path, err)
	}
	return newStack(k, cfg, lcfg, plan, path, name, cfg.Volumes+j)
}

// newStack assembles a driver + layout stack over one backing image.
func newStack(k *sched.RKernel, cfg Config, lcfg lfs.Config, plan *device.FaultPlan, path, name string, disk int) (device.Driver, layout.Layout, error) {
	q, ok := device.NewScheduler(orDefault(cfg.QueueSched, "clook"))
	if !ok {
		return nil, nil, fmt.Errorf("pfs: unknown queue scheduler %q", cfg.QueueSched)
	}
	drv, err := device.NewFileDriver(k, name+"disk", path, cfg.Blocks, q)
	if err != nil {
		return nil, nil, err
	}
	if plan != nil {
		drv.SetInjector(plan)
	}
	part := layout.NewPartition(drv, disk, 0, cfg.Blocks, false)
	var sub layout.Layout
	switch orDefault(cfg.Layout, "lfs") {
	case "lfs":
		sub = lfs.New(k, name, part, lcfg)
	case "ffs":
		fcfg := ffs.DefaultConfig()
		if cfg.Blocks <= int64(fcfg.BlocksPerGroup) {
			// Small (test-sized) volumes still need >= 1 group.
			fcfg.BlocksPerGroup = 512
			fcfg.InodesPerGroup = 64
		}
		sub = ffs.New(k, name, part, fcfg)
	default:
		drv.Close()
		return nil, nil, fmt.Errorf("pfs: unknown layout %q", cfg.Layout)
	}
	return drv, sub, nil
}

// intentSlots maps the NoIntentLog switch to the cache knob.
func intentSlots(off bool) int {
	if off {
		return 0
	}
	return 1024
}

// isFresh reports whether path is missing or empty (needs Format).
func isFresh(path string) (bool, error) {
	fi, err := os.Stat(path)
	if os.IsNotExist(err) {
		return true, nil
	}
	if err != nil {
		return false, err
	}
	return fi.Size() == 0, nil
}

// ServeNFS exposes the volume over the network protocol; addr
// "127.0.0.1:0" picks a free port. Returns the bound address.
func (s *Server) ServeNFS(addr string) (string, error) {
	srv, err := nfs.ServeOpts(s.K, s.FS, addr, nfs.Options{Pipeline: s.pipeline, Tracer: s.Tracer})
	if err != nil {
		return "", err
	}
	srv.SetVectored(!s.cfg.NoVectorIO)
	s.net = srv
	srv.Stats(s.Set)
	return srv.Addr(), nil
}

// Do runs fn on a kernel task and waits — the local (in-process)
// client interface.
func (s *Server) Do(fn func(t sched.Task) error) error {
	errc := make(chan error, 1)
	s.K.Go("pfs.client", func(t sched.Task) { errc <- fn(t) })
	return <-errc
}

// Sync flushes everything to the image.
func (s *Server) Sync() error {
	return s.Do(func(t sched.Task) error { return s.FS.SyncAll(t) })
}

// Close syncs, stops the network front-end and the kernel. Open
// connections are cut; use Shutdown for a graceful exit.
func (s *Server) Close() error {
	s.stopSupervisor()
	err := s.Sync()
	s.closeAdmin()
	if s.net != nil {
		s.net.Close()
	}
	s.K.Stop()
	s.closeDrivers()
	return err
}

func (s *Server) closeAdmin() {
	if s.admin != nil {
		_ = s.admin.Close()
	}
}

// AllDrivers snapshots the member drivers plus any retired by a
// supervised repair, under the swap lock: counter aggregation over
// the snapshot stays monotonic across a mid-run driver swap.
func (s *Server) AllDrivers() []device.Driver {
	s.drvMu.Lock()
	defer s.drvMu.Unlock()
	out := append([]device.Driver(nil), s.Drivers...)
	return append(out, s.retired...)
}

func (s *Server) closeDrivers() {
	s.drvMu.Lock()
	defer s.drvMu.Unlock()
	for _, drv := range s.Drivers {
		drv.Close()
	}
	for _, drv := range s.spareDrvs {
		if drv != nil {
			drv.Close()
		}
	}
	for _, drv := range s.retired {
		drv.Close()
	}
	s.retired = nil
}

// Crash simulates a power cut: the fault plan (if any) is tripped so
// nothing further reaches the images, the cache is frozen and its
// battery-backed dirty blocks captured, and the kernel halts WITHOUT
// any sync. Reopen the same configuration with Recover set and feed
// the returned report's Survivors to FS.ReplayNVRAM to complete the
// paper's NVRAM recovery story.
func (s *Server) Crash() *cache.CrashReport {
	if s.Fault != nil {
		s.Fault.Cut()
	}
	// With the power out, an in-flight supervised rebuild fails fast
	// (every I/O is an ErrPowerCut rejection); wait it out so nothing
	// races the teardown.
	s.stopSupervisor()
	s.Cache.PowerOff()
	repc := make(chan *cache.CrashReport, 1)
	s.K.Go("pfs.crash", func(t sched.Task) {
		repc <- s.Cache.Crash(t)
	})
	rep := <-repc
	s.closeAdmin()
	if s.net != nil {
		s.net.Close()
	}
	s.K.Stop()
	s.closeDrivers()
	return rep
}

// Shutdown is the graceful exit: stop accepting network calls, let
// every in-flight request complete and its reply reach the wire,
// then sync all volumes (the array fans the final flush out over its
// members concurrently) and stop the kernel.
func (s *Server) Shutdown() error {
	s.stopSupervisor()
	if s.net != nil {
		s.net.Drain()
	}
	err := s.Sync()
	s.closeAdmin()
	if s.net != nil {
		s.net.Close()
	}
	s.K.Stop()
	s.closeDrivers()
	return err
}
