// Package pfs instantiates the cut-and-paste component library into
// the on-line Pegasus file system: the same cache, layout and
// abstract-client components the simulator runs, bound to the
// real-time kernel, a real memory arena, a Unix file (or raw device)
// as the disk back-end, and the NFS-like network front-end. This is
// the paper's point: nothing here is a reimplementation — only the
// helper components differ from Patsy.
package pfs

import (
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fsys"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/nfs"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Config describes one PFS instance.
type Config struct {
	// Path is the backing Unix file (created and sized if absent).
	Path string
	// Blocks is the volume size in 4 KB blocks.
	Blocks int64
	// CacheBlocks sizes the block cache (default 4096 = 16 MB).
	CacheBlocks int
	// Flush selects the write policy (default: the UPS write-saving
	// policy the paper's experiments recommend).
	Flush cache.FlushConfig
	// Replace names the cache replacement policy.
	Replace string
	// SegBlocks sizes LFS segments.
	SegBlocks int
	// QueueSched names the disk-queue scheduler (default clook).
	QueueSched string
	// Seed drives policy randomness.
	Seed int64
}

// Server is a running PFS.
type Server struct {
	K     *sched.RKernel
	FS    *fsys.FS
	Vol   *fsys.Volume
	Cache *cache.Cache
	Set   *stats.Set
	net   *nfs.Server
}

// Open creates or reopens a PFS on cfg.Path. A fresh image is
// formatted; an existing one is mounted and recovered from its
// checkpoint.
func Open(cfg Config) (*Server, error) {
	if cfg.Blocks <= 0 {
		cfg.Blocks = 16384 // 64 MB
	}
	if cfg.CacheBlocks <= 0 {
		cfg.CacheBlocks = 4096
	}
	if cfg.Flush.Name == "" {
		cfg.Flush = cache.UPS()
	}
	k := sched.NewReal(cfg.Seed)
	q, ok := device.NewScheduler(orDefault(cfg.QueueSched, "clook"))
	if !ok {
		return nil, fmt.Errorf("pfs: unknown queue scheduler %q", cfg.QueueSched)
	}
	fresh, err := isFresh(cfg.Path)
	if err != nil {
		return nil, err
	}
	drv, err := device.NewFileDriver(k, "pfsdisk", cfg.Path, cfg.Blocks, q)
	if err != nil {
		return nil, err
	}
	part := layout.NewPartition(drv, 0, 0, cfg.Blocks, false)
	lcfg := lfs.DefaultConfig()
	if cfg.SegBlocks > 0 {
		lcfg.SegBlocks = cfg.SegBlocks
	}
	lay := lfs.New(k, "pfs", part, lcfg)

	store := fsys.NewStore()
	c := cache.New(k, cache.Config{
		Blocks:  cfg.CacheBlocks,
		Replace: cfg.Replace,
		Flush:   cfg.Flush,
	}, store)
	fs := fsys.New(k, c, core.RealMover{})
	store.Bind(fs)
	c.Start()

	srv := &Server{K: k, FS: fs, Cache: c, Set: stats.NewSet()}
	c.Stats(srv.Set)
	fs.Stats(srv.Set)
	lay.Stats(srv.Set)
	drv.DriverStats().Register(srv.Set)

	// Mount on a kernel task and wait.
	errc := make(chan error, 1)
	k.Go("pfs.mount", func(t sched.Task) {
		if fresh {
			if err := lay.Format(t); err != nil {
				errc <- err
				return
			}
		}
		if err := lay.Mount(t); err != nil {
			errc <- err
			return
		}
		v, err := fs.AddVolume(t, 1, lay, false)
		if err != nil {
			errc <- err
			return
		}
		srv.Vol = v
		errc <- nil
	})
	if err := <-errc; err != nil {
		return nil, err
	}
	return srv, nil
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// isFresh reports whether path is missing or empty (needs Format).
func isFresh(path string) (bool, error) {
	fi, err := os.Stat(path)
	if os.IsNotExist(err) {
		return true, nil
	}
	if err != nil {
		return false, err
	}
	return fi.Size() == 0, nil
}

// ServeNFS exposes the volume over the network protocol; addr
// "127.0.0.1:0" picks a free port. Returns the bound address.
func (s *Server) ServeNFS(addr string) (string, error) {
	srv, err := nfs.Serve(s.K, s.FS, addr)
	if err != nil {
		return "", err
	}
	s.net = srv
	return srv.Addr(), nil
}

// Do runs fn on a kernel task and waits — the local (in-process)
// client interface.
func (s *Server) Do(fn func(t sched.Task) error) error {
	errc := make(chan error, 1)
	s.K.Go("pfs.client", func(t sched.Task) { errc <- fn(t) })
	return <-errc
}

// Sync flushes everything to the image.
func (s *Server) Sync() error {
	return s.Do(func(t sched.Task) error { return s.FS.SyncAll(t) })
}

// Close syncs, stops the network front-end and the kernel.
func (s *Server) Close() error {
	err := s.Sync()
	if s.net != nil {
		s.net.Close()
	}
	s.K.Stop()
	return err
}
