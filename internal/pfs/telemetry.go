package pfs

// This file binds the whole PFS stack into the telemetry registry:
// every component's statistics objects become stable Prometheus
// families, and the Server grows the admin HTTP endpoint (/metrics,
// /healthz, /statusz, pprof). The registry builder is exported and
// component-wise (Observables) so tests can wire a deterministic
// VKernel assembly through the exact same families the production
// server exports.
//
// Scrape safety: collectors run on plain HTTP goroutines, so only
// atomic counters and plain-mutex statistics objects may be read
// here. In particular the driver's live queue length is kernel-mutex
// state and is deliberately NOT exported — the queue-depth histogram
// (observed by the driver's own task) carries that signal instead.

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/fsys"
	"repro/internal/health"
	"repro/internal/layout"
	"repro/internal/nfs"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/volume"
)

// Observables lists the components a metrics registry exports. Any
// field may be nil (or empty); its families are simply absent.
type Observables struct {
	Cache    *cache.Cache
	FS       *fsys.FS
	NFS      *nfs.Server
	Array    *volume.Array
	Drivers  []device.Driver
	Fault    *device.FaultPlan
	Recovery *layout.RecoveryStats
	Tracer   *telemetry.Tracer
	Monitor  *health.Monitor
}

// NewRegistry builds the PFS metrics registry over o. Family names
// and label sets are a stable interface (the golden test pins them);
// add, don't rename.
func NewRegistry(o Observables) *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.AddGaugeFunc("pfs_build_info",
		"Constant 1, labelled with the Go runtime version.",
		telemetry.Labels{"go": runtime.Version()},
		func() float64 { return 1 })

	if c := o.Cache; c != nil {
		registerCache(reg, c)
	}
	if fs := o.FS; fs != nil {
		registerFS(reg, fs)
	}
	if n := o.NFS; n != nil {
		registerNFS(reg, n)
	}
	if a := o.Array; a != nil {
		registerArray(reg, a)
	}
	for i, drv := range o.Drivers {
		registerDriver(reg, fmt.Sprintf("d%d", i), drv.DriverStats())
	}
	if p := o.Fault; p != nil {
		registerFault(reg, p)
	}
	if m := o.Monitor; m != nil {
		registerHealth(reg, m)
	}
	if a := o.Array; a != nil && a.SpareSlots() > 0 {
		registerSpares(reg, a)
	}
	if rs := o.Recovery; rs != nil {
		registerRecovery(reg, rs)
	}
	if o.FS != nil || o.Array != nil {
		// Staging copies are counted wherever a data path falls back
		// from scatter-gather to a bounce buffer (layout gathers,
		// readahead scratch, short blocks); with vectoring on and
		// clustered transfers this stays ~0.
		fs, arr := o.FS, o.Array
		reg.AddCounterFunc("pfs_io_staging_copy_bytes_total",
			"Bytes bounced through staging buffers on the data paths (flat fallbacks of the zero-copy vectored I/O).", nil,
			func() float64 {
				var n int64
				if fs != nil {
					n += fs.FSStats().StagedCopy.Value()
				}
				if arr != nil {
					n += arr.StagedCopyBytes()
				}
				return float64(n)
			})
	}
	o.Tracer.Register(reg)
	return reg
}

func registerCache(reg *telemetry.Registry, c *cache.Cache) {
	st := c.CacheStats()
	reg.AddCounter("pfs_cache_lookups_total", "Block cache lookups.", nil, st.Lookups)
	reg.AddCounter("pfs_cache_hits_total", "Block cache hits.", nil, st.Hits)
	reg.AddCounter("pfs_cache_evictions_total", "Clean frames evicted for reuse.", nil, st.Evictions)
	reg.AddCounter("pfs_cache_flushed_blocks_total", "Dirty blocks written out by the flusher.", nil, st.FlushedBlocks)
	reg.AddCounter("pfs_cache_flush_jobs_total", "Flush jobs issued (multi-block writes count once).", nil, st.FlushJobs)
	reg.AddCounter("pfs_cache_saved_writes_total", "Dirty blocks discarded before any flush (the UPS write-saving policy's yield).", nil, st.SavedWrites)
	reg.AddCounter("pfs_cache_pressure_waits_total", "Allocations that had to wait for the flusher to free frames.", nil, st.PressureWaits)
	reg.AddCounter("pfs_cache_nvram_waits_total", "Writes that waited for NVRAM (dirty-bound) headroom.", nil, st.NVRAMWaits)
	reg.AddCounter("pfs_cache_readahead_fills_total", "Frames claimed by readahead fills.", nil, st.ReadaheadFills)
	reg.AddGaugeFunc("pfs_cache_capacity_blocks", "Configured cache size in blocks.", nil,
		func() float64 { return float64(c.Capacity()) })
	reg.AddGaugeFunc("pfs_cache_nvram_limit_blocks", "Battery-backed dirty-block bound (0 = unbounded).", nil,
		func() float64 { return float64(c.MaxDirtyBlocks()) })
	reg.AddGaugeFunc("pfs_cache_dirty_blocks", "Dirty (NVRAM-parked) blocks right now.", nil,
		func() float64 { return float64(c.DirtyCount()) })
	reg.AddGaugeFunc("pfs_cache_dirty_highwater_blocks", "High-water mark of dirty blocks.", nil,
		func() float64 { return float64(st.DirtyHW.Value()) })
	reg.AddGaugeFunc("pfs_cache_powered_off", "1 after a (simulated) power cut froze the cache.", nil,
		func() float64 { return boolGauge(c.Off()) })
	for i := 0; i < c.Shards(); i++ {
		i := i
		reg.AddGaugeFunc("pfs_cache_shard_dirty_blocks", "Dirty blocks per cache shard.",
			telemetry.Labels{"shard": strconv.Itoa(i)},
			func() float64 { return float64(c.ShardDirty(i)) })
	}
	if il := c.Intents(); il != nil {
		reg.AddGaugeFunc("pfs_intent_log_depth", "Unretired intents in the metadata intent ring.", nil,
			func() float64 { return float64(il.Len()) })
		reg.AddGaugeFunc("pfs_intent_log_capacity", "Intent ring capacity (pressure trips at 3/4).", nil,
			func() float64 { return float64(il.Cap()) })
		reg.AddCounterFunc("pfs_intent_recorded_total", "Intents ever recorded (retired or not).", nil,
			func() float64 { return float64(il.Total()) })
	}
}

func registerFS(reg *telemetry.Registry, fs *fsys.FS) {
	st := fs.FSStats()
	reg.AddCounter("pfs_fs_opens_total", "File opens.", nil, st.Opens)
	reg.AddCounter("pfs_fs_closes_total", "File closes.", nil, st.Closes)
	reg.AddCounter("pfs_fs_reads_total", "Read calls.", nil, st.Reads)
	reg.AddCounter("pfs_fs_writes_total", "Write calls.", nil, st.Writes)
	reg.AddCounter("pfs_fs_read_bytes_total", "Bytes read.", nil, st.BytesRead)
	reg.AddCounter("pfs_fs_written_bytes_total", "Bytes written.", nil, st.BytesWritten)
	reg.AddCounter("pfs_fs_creates_total", "Files created.", nil, st.Creates)
	reg.AddCounter("pfs_fs_removes_total", "Files removed.", nil, st.Removes)
	reg.AddCounter("pfs_readahead_batches_total", "Readahead batches issued.", nil, st.Readaheads)
	reg.AddCounter("pfs_readahead_stream_verdicts_total", "Sequential-stream verdicts by the readahead detector.", nil, st.RAStreams)
	reg.AddCounter("pfs_readahead_random_verdicts_total", "Broken-sequence (random) verdicts by the readahead detector.", nil, st.RARandoms)
	reg.AddCounter("pfs_intent_forced_syncs_total", "Syncs forced by intent-ring pressure.", nil, st.IntentSyncs)
	reg.AddGaugeFunc("pfs_io_vectored", "1 when the zero-copy vectored I/O path is enabled.", nil,
		func() float64 { return boolGauge(fs.VectoredIO()) })
}

func registerNFS(reg *telemetry.Registry, n *nfs.Server) {
	st := n.ServerStats()
	reg.AddGroup("pfs_nfs_calls_total", "NFS calls by procedure.", "op", nil, st.Calls)
	reg.AddCounter("pfs_nfs_errors_total", "NFS calls answered with a non-OK status.", nil, st.Errors)
	reg.AddIntHistogram("pfs_nfs_pipeline_depth", "Per-connection pipeline depth observed at each admission.", nil, st.Depth)
	for i := 0; i < nfs.NumProcs; i++ {
		reg.AddHistogramSummary("pfs_nfs_latency_seconds",
			"NFS call latency (admission to reply) by procedure.",
			telemetry.Labels{"op": nfs.ProcName(uint32(i))}, st.Latency[i])
	}
	reg.AddGaugeFunc("pfs_nfs_connections", "Open client connections.", nil,
		func() float64 { return float64(n.Connections()) })
	reg.AddGaugeFunc("pfs_nfs_inflight_calls", "Calls admitted but not yet replied.", nil,
		func() float64 { return float64(n.InflightCalls()) })
	reg.AddGaugeFunc("pfs_nfs_draining", "1 while the server drains for graceful shutdown.", nil,
		func() float64 { return boolGauge(n.Draining()) })
}

func registerArray(reg *telemetry.Registry, a *volume.Array) {
	reg.AddGaugeFunc("pfs_volume_width", "Disk-array width (member count).", nil,
		func() float64 { return float64(a.Width()) })
	// Width-1 arrays are pure passthrough and keep no routing stats;
	// the per-device families below carry the traffic counters then.
	if g := a.ReadGroup(); g != nil {
		reg.AddGroup("pfs_volume_read_blocks_total", "Blocks routed to each array member by reads.", "member", nil, g)
	}
	if g := a.WriteGroup(); g != nil {
		reg.AddGroup("pfs_volume_write_blocks_total", "Blocks routed to each array member by writes.", "member", nil, g)
	}
	if sc := a.SyncCounter(); sc != nil {
		reg.AddCounter("pfs_volume_syncs_total", "Array-wide sync fan-outs.", nil, sc)
	}
	// The member-loss families exist only where member loss is
	// survivable; non-redundant assemblies keep their family set (and
	// so their exposition) unchanged.
	if p := a.Placement(); p == volume.PlacementMirrored || p == volume.PlacementParity {
		reg.AddGaugeFunc("pfs_volume_degraded", "1 while a member is dead and its share is served from redundancy.", nil,
			func() float64 { return boolGauge(a.Degraded()) })
		reg.AddGaugeFunc("pfs_volume_dead_member", "Index of the dead member (-1 when healthy).", nil,
			func() float64 { return float64(a.DeadMember()) })
		reg.AddCounterFunc("pfs_volume_degraded_reads_total", "Block reads served by redundancy (mirror partner or parity reconstruction).", nil,
			func() float64 { return float64(a.DegradedReads()) })
		reg.AddGaugeFunc("pfs_volume_rebuild_done_files", "Files already copied by the current (or last) online rebuild.", nil,
			func() float64 { done, _ := a.RebuildProgress(); return float64(done) })
		reg.AddGaugeFunc("pfs_volume_rebuild_total_files", "Files the current (or last) online rebuild covers.", nil,
			func() float64 { _, total := a.RebuildProgress(); return float64(total) })
	}
}

func registerDriver(reg *telemetry.Registry, member string, ds *device.DriverStats) {
	lbl := telemetry.Labels{"member": member}
	reg.AddCounter("pfs_device_reads_total", "Read requests completed by the disk driver.", lbl, ds.Reads)
	reg.AddCounter("pfs_device_writes_total", "Write requests completed by the disk driver.", lbl, ds.Writes)
	reg.AddCounter("pfs_device_read_blocks_total", "Blocks read by the disk driver.", lbl, ds.BlocksRead)
	reg.AddCounter("pfs_device_written_blocks_total", "Blocks written by the disk driver.", lbl, ds.BlocksWritten)
	reg.AddCounter("pfs_device_disk_cache_hits_total", "Requests absorbed by the on-disk cache model.", lbl, ds.DiskCacheHits)
	reg.AddCounter("pfs_device_vectored_reads_total", "Scatter-gather (preadv-style) read requests completed.", lbl, ds.VecReads)
	reg.AddCounter("pfs_device_vectored_writes_total", "Gather (pwritev-style) write requests completed.", lbl, ds.VecWrites)
	reg.AddIntHistogram("pfs_device_queue_depth", "Driver queue depth sampled at each request arrival.", lbl, ds.QueueHist)
	reg.AddMoments("pfs_device_wait_seconds", "Time requests spent queued in the driver.", lbl, ds.WaitMS, 1e-3)
	reg.AddMoments("pfs_device_service_seconds", "Device service time per request.", lbl, ds.ServiceMS, 1e-3)
	reg.AddGaugeFunc("pfs_device_blocks_per_request", "Mean transfer size in blocks — the I/O clustering yield.", lbl,
		ds.BlocksPerRequest)
	reg.AddCounter("pfs_device_io_errors_total", "Requests failed with a transient I/O error.", lbl, ds.IOErrors)
	reg.AddCounter("pfs_device_dead_errors_total", "Requests rejected because the member's disk is dead.", lbl, ds.DeadErrors)
	reg.AddCounter("pfs_device_slow_ios_total", "Completions over the configured latency SLO.", lbl, ds.SlowIOs)
}

// registerHealth exports the health monitor's per-member verdicts and
// evidence windows. Present only on self-healing servers.
func registerHealth(reg *telemetry.Registry, m *health.Monitor) {
	for i := 0; i < m.Members(); i++ {
		i := i
		lbl := telemetry.Labels{"member": fmt.Sprintf("d%d", i)}
		reg.AddGaugeFunc("pfs_health_state", "Member health verdict (0 healthy, 1 suspect, 2 probation, 3 dead).", lbl,
			func() float64 { return float64(m.Verdict(i)) })
		reg.AddGaugeFunc("pfs_health_window_errors", "Transient I/O errors in the member's evidence window.", lbl,
			func() float64 { return float64(m.State(i).WindowErrs) })
		reg.AddGaugeFunc("pfs_health_window_slow", "Latency-SLO breaches in the member's evidence window.", lbl,
			func() float64 { return float64(m.State(i).WindowSlow) })
	}
	reg.AddCounterFunc("pfs_health_confirmed_deaths_total", "Member deaths confirmed by the health monitor (manual overrides included).", nil,
		func() float64 { return float64(m.ConfirmedDeaths()) })
}

// registerSpares exports the hot-spare pool. Present only when the
// server attached spares.
func registerSpares(reg *telemetry.Registry, a *volume.Array) {
	reg.AddGaugeFunc("pfs_spare_pool_size", "Idle spares in the hot-spare pool.", nil,
		func() float64 { return float64(a.SpareCount()) })
	reg.AddCounterFunc("pfs_spare_promotions_total", "Spares consumed by promotions (auto or manual).", nil,
		func() float64 { return float64(a.SparePromotions()) })
	reg.AddCounterFunc("pfs_spare_refusals_total", "Promotions refused: empty pool, concurrent maintenance, or a second fault.", nil,
		func() float64 { return float64(a.SpareRefusals()) })
}

func registerFault(reg *telemetry.Registry, p *device.FaultPlan) {
	kinds := []struct {
		kind string
		pick func(r, w, t, c int64) int64
	}{
		{"read_error", func(r, _, _, _ int64) int64 { return r }},
		{"write_error", func(_, w, _, _ int64) int64 { return w }},
		{"torn_write", func(_, _, t, _ int64) int64 { return t }},
		{"cut_reject", func(_, _, _, c int64) int64 { return c }},
	}
	for _, k := range kinds {
		k := k
		reg.AddCounterFunc("pfs_fault_injected_total", "Faults injected at the driver/hardware seam, by kind.",
			telemetry.Labels{"kind": k.kind},
			func() float64 { return float64(k.pick(p.Injected())) })
	}
	reg.AddCounterFunc("pfs_fault_intercepted_total", "Requests seen by the fault interceptor.", nil,
		func() float64 { return float64(p.IOs()) })
	reg.AddGaugeFunc("pfs_fault_power_cut", "1 after the plan's power cut tripped.", nil,
		func() float64 { return boolGauge(p.HasCut()) })
}

func registerRecovery(reg *telemetry.Registry, rs *layout.RecoveryStats) {
	// A recovery report is immutable once the mount returns; these
	// gauges describe what the last recovery mount repaired.
	reg.AddGaugeFunc("pfs_recovery_rolled_segments", "Post-checkpoint log segments replayed by roll-forward.", nil,
		func() float64 { return float64(rs.RolledSegments) })
	reg.AddGaugeFunc("pfs_recovery_data_blocks", "File data blocks recovered past the last durable state.", nil,
		func() float64 { return float64(rs.DataBlocks) })
	reg.AddGaugeFunc("pfs_recovery_inode_records", "Inode records recovered from the log.", nil,
		func() float64 { return float64(rs.InodeRecords) })
	reg.AddGaugeFunc("pfs_recovery_orphan_blocks", "Rolled-over blocks whose owner never became durable.", nil,
		func() float64 { return float64(rs.OrphanBlocks) })
	reg.AddGaugeFunc("pfs_recovery_torn_tail", "1 when recovery stopped at a torn write.", nil,
		func() float64 { return boolGauge(rs.TornTail) })
	reg.AddGaugeFunc("pfs_recovery_repairs", "Repairs applied by the recovery mount.", nil,
		func() float64 { return float64(len(rs.Repairs)) })
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Registry builds the production registry over this server's
// components. Call after ServeNFS so the NFS families are present.
func (s *Server) Registry() *telemetry.Registry {
	s.drvMu.Lock()
	drvs := append([]device.Driver(nil), s.Drivers...)
	s.drvMu.Unlock()
	return NewRegistry(Observables{
		Cache:    s.Cache,
		FS:       s.FS,
		NFS:      s.net,
		Array:    s.Array,
		Drivers:  drvs,
		Fault:    s.Fault,
		Recovery: s.Recovery,
		Tracer:   s.Tracer,
		Monitor:  s.Monitor,
	})
}

// ServeAdmin starts the admin HTTP endpoint on addr (":0" picks a
// free port): /metrics, /healthz, /statusz (+?slow=1), /debug/pprof.
// Returns the bound address. Start it after ServeNFS so the NFS
// families are registered.
func (s *Server) ServeAdmin(addr string) (string, error) {
	reg := s.Registry()
	start := time.Now()
	reg.AddGaugeFunc("pfs_uptime_seconds", "Seconds since the admin endpoint started.", nil,
		func() float64 { return time.Since(start).Seconds() })
	adm := telemetry.NewServer(reg, s.Tracer, s.Health, s.renderStatusz)
	if s.Monitor != nil {
		adm.SetHealthDetail(s.healthDetail)
	}
	bound, err := adm.Start(addr)
	if err != nil {
		return "", err
	}
	s.admin = adm
	return bound, nil
}

// AdminAddr returns the admin endpoint's bound address ("" when not
// serving).
func (s *Server) AdminAddr() string {
	if s.admin == nil {
		return ""
	}
	return s.admin.Addr()
}

// healthTimeout bounds the /healthz root-stat probe: the kernel and
// its flusher tasks are live if a namespace operation completes.
const healthTimeout = 2 * time.Second

// Health reports nil when the server is live: power on, root volume
// mounted, not draining, and a root stat completes on a kernel task
// within the probe timeout (which exercises the scheduler and the
// cache paths a hung flusher would stall).
func (s *Server) Health() error {
	if s.Cache.Off() {
		return errors.New("cache powered off")
	}
	if s.Vol == nil {
		return errors.New("no volume mounted")
	}
	if s.net != nil && s.net.Draining() {
		return errors.New("draining")
	}
	done := make(chan error, 1)
	s.K.Go("pfs.health", func(t sched.Task) {
		_, err := s.Vol.StatByID(t, s.Vol.Root())
		done <- err
	})
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("root stat: %w", err)
		}
		return nil
	case <-time.After(healthTimeout):
		return errors.New("root stat probe timed out")
	}
}

// renderStatusz is the /statusz body: a configuration header, the
// live gauges the registry exports, and the full statistics set.
func (s *Server) renderStatusz() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pfs status\n")
	fmt.Fprintf(&b, "  array: width=%d cluster_run=%d\n", s.Array.Width(), s.cluster)
	if s.Array.Degraded() {
		done, total := s.Array.RebuildProgress()
		fmt.Fprintf(&b, "  DEGRADED: member %d dead, degraded_reads=%d rebuild=%d/%d\n",
			s.Array.DeadMember(), s.Array.DegradedReads(), done, total)
	}
	if mnt := s.Array.Maintenance(); mnt != "" {
		fmt.Fprintf(&b, "  maintenance: %s\n", mnt)
	}
	if s.Monitor != nil {
		b.WriteString("  health:")
		for _, ms := range s.Monitor.States() {
			fmt.Fprintf(&b, " %s=%s(errs=%d slow=%d consec=%d)",
				ms.Name, ms.Verdict, ms.WindowErrs, ms.WindowSlow, ms.Consec)
		}
		fmt.Fprintf(&b, " deaths=%d\n", s.Monitor.ConfirmedDeaths())
	}
	if s.Array.SpareSlots() > 0 {
		fmt.Fprintf(&b, "  spares: idle=%d promoted=%d refused=%d origins=%v\n",
			s.Array.SpareCount(), s.Array.SparePromotions(), s.Array.SpareRefusals(), s.Array.Origins())
	}
	for _, ev := range s.HealEvents() {
		fmt.Fprintf(&b, "  heal: member=%d spare=%d detect_ms=%.1f mttr_ms=%.1f mismatches=%d err=%q\n",
			ev.Member, ev.Spare, ev.DetectMS, ev.MTTRMS, ev.ScrubMismatches, ev.Err)
	}
	fmt.Fprintf(&b, "  cache: blocks=%d shards=%d dirty=%d nvram_limit=%d off=%v\n",
		s.Cache.Capacity(), s.Cache.Shards(), s.Cache.DirtyCount(), s.Cache.MaxDirtyBlocks(), s.Cache.Off())
	if il := s.Cache.Intents(); il != nil {
		fmt.Fprintf(&b, "  intent log: depth=%d/%d recorded=%d\n", il.Len(), il.Cap(), il.Total())
	}
	if s.net != nil {
		fmt.Fprintf(&b, "  nfs: addr=%s conns=%d inflight=%d draining=%v\n",
			s.net.Addr(), s.net.Connections(), s.net.InflightCalls(), s.net.Draining())
	}
	if s.Fault != nil {
		r, w, torn, rej := s.Fault.Injected()
		fmt.Fprintf(&b, "  faults: intercepted=%d read_errs=%d write_errs=%d torn=%d cut=%v rejected=%d\n",
			s.Fault.IOs(), r, w, torn, s.Fault.HasCut(), rej)
	}
	if s.Recovery != nil {
		fmt.Fprintf(&b, "  recovery: segments=%d data_blocks=%d inodes=%d orphans=%d torn_tail=%v repairs=%d\n",
			s.Recovery.RolledSegments, s.Recovery.DataBlocks, s.Recovery.InodeRecords,
			s.Recovery.OrphanBlocks, s.Recovery.TornTail, len(s.Recovery.Repairs))
	}
	b.WriteString("\nstatistics\n")
	b.WriteString(s.Set.Render())
	return b.String()
}
