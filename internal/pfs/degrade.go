package pfs

// Member-loss operations on the live server: declare an array member
// dead (the operator's trigger; the fault seam and the volume
// manager's own lazy detection cover the involuntary case), rebuild a
// replacement online against live traffic, and scrub the redundancy
// invariant. All of it requires a redundant placement ("mirrored" or
// "parity"); the volume manager refuses otherwise.

import (
	"fmt"
	"os"

	"repro/internal/sched"
	"repro/internal/volume"
)

// KillMember declares array member m dead: the volume manager stops
// routing to it and serves its share from redundancy, and the fault
// plan (when installed) makes the member's driver reject every
// request with ErrDiskDead — the full member-loss fault, hardware
// seam included.
func (s *Server) KillMember(m int) error {
	if err := s.Array.KillMember(m); err != nil {
		return err
	}
	if s.Fault != nil {
		s.Fault.Kill(m)
	}
	return nil
}

// RebuildMember replaces dead member m with a freshly formatted image
// and rebuilds its share online, against live traffic: reads and
// writes keep flowing (degraded) while the volume manager copies the
// member's content back from the survivors. Blocks until the rebuild
// completes; progress is visible through Array.RebuildProgress and
// the admin metrics. The dead member's old driver is retired (its
// unlinked image is released with the server).
func (s *Server) RebuildMember(m int) error {
	if !s.Array.Degraded() || s.Array.DeadMember() != m {
		return fmt.Errorf("pfs: member %d is not the dead member (dead: %d)", m, s.Array.DeadMember())
	}
	path, _ := memberPath(s.cfg, m)
	// Unlink the stale image first: the old driver keeps its (now
	// anonymous) file; the replacement starts from an empty one.
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("pfs: drop stale image of member %d: %w", m, err)
	}
	drv, sub, err := newMember(s.K, s.cfg, lfsConfigFor(s.cfg), s.Fault, m)
	if err != nil {
		return err
	}
	if s.Fault != nil {
		// Let I/O reach the replacement: the plan still addresses the
		// member by index, and the rebuild is about to write there.
		s.Fault.Revive()
	}
	errc := make(chan error, 1)
	s.K.Go("pfs.rebuild", func(t sched.Task) { errc <- s.Array.Rebuild(t, sub) })
	if err := <-errc; err != nil {
		drv.Close()
		return err
	}
	s.drvMu.Lock()
	s.retired = append(s.retired, s.Drivers[m])
	s.Drivers[m] = drv
	s.drvMu.Unlock()
	return nil
}

// Scrub walks the array's redundancy invariant online (mirror copies
// agree, parity equals the XOR of its stripe) and, with repair set,
// rewrites whichever side the policy trusts. See volume.Array.Scrub.
func (s *Server) Scrub(repair bool) (volume.ScrubStats, error) {
	var st volume.ScrubStats
	err := s.Do(func(t sched.Task) error {
		var err error
		st, err = s.Array.Scrub(t, repair)
		return err
	})
	return st, err
}
