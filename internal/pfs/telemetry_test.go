package pfs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fsys"
	"repro/internal/nfs"
	"repro/internal/patsy"
	"repro/internal/sched"
)

// The exported family set is a stable interface: every family the
// registry emits for a full simulator assembly (array of 2, sharded
// cache, intent log; no NFS front-end, fault plan or tracer), with
// its type. Renames break dashboards — add, don't rename.
var goldenSimFamilies = map[string]string{
	"pfs_build_info":                      "gauge",
	"pfs_cache_lookups_total":             "counter",
	"pfs_cache_hits_total":                "counter",
	"pfs_cache_evictions_total":           "counter",
	"pfs_cache_flushed_blocks_total":      "counter",
	"pfs_cache_flush_jobs_total":          "counter",
	"pfs_cache_saved_writes_total":        "counter",
	"pfs_cache_pressure_waits_total":      "counter",
	"pfs_cache_nvram_waits_total":         "counter",
	"pfs_cache_readahead_fills_total":     "counter",
	"pfs_cache_capacity_blocks":           "gauge",
	"pfs_cache_nvram_limit_blocks":        "gauge",
	"pfs_cache_dirty_blocks":              "gauge",
	"pfs_cache_dirty_highwater_blocks":    "gauge",
	"pfs_cache_powered_off":               "gauge",
	"pfs_cache_shard_dirty_blocks":        "gauge",
	"pfs_intent_log_depth":                "gauge",
	"pfs_intent_log_capacity":             "gauge",
	"pfs_intent_recorded_total":           "counter",
	"pfs_intent_forced_syncs_total":       "counter",
	"pfs_fs_opens_total":                  "counter",
	"pfs_fs_closes_total":                 "counter",
	"pfs_fs_reads_total":                  "counter",
	"pfs_fs_writes_total":                 "counter",
	"pfs_fs_read_bytes_total":             "counter",
	"pfs_fs_written_bytes_total":          "counter",
	"pfs_fs_creates_total":                "counter",
	"pfs_fs_removes_total":                "counter",
	"pfs_readahead_batches_total":         "counter",
	"pfs_readahead_stream_verdicts_total": "counter",
	"pfs_readahead_random_verdicts_total": "counter",
	"pfs_io_vectored":                     "gauge",
	"pfs_io_staging_copy_bytes_total":     "counter",
	"pfs_volume_width":                    "gauge",
	"pfs_volume_read_blocks_total":        "counter",
	"pfs_volume_write_blocks_total":       "counter",
	"pfs_volume_syncs_total":              "counter",
	"pfs_device_reads_total":              "counter",
	"pfs_device_writes_total":             "counter",
	"pfs_device_read_blocks_total":        "counter",
	"pfs_device_written_blocks_total":     "counter",
	"pfs_device_disk_cache_hits_total":    "counter",
	"pfs_device_vectored_reads_total":     "counter",
	"pfs_device_vectored_writes_total":    "counter",
	"pfs_device_queue_depth":              "histogram",
	"pfs_device_wait_seconds":             "summary",
	"pfs_device_service_seconds":          "summary",
	"pfs_device_blocks_per_request":       "gauge",
	"pfs_device_io_errors_total":          "counter",
	"pfs_device_dead_errors_total":        "counter",
	"pfs_device_slow_ios_total":           "counter",
}

// parseFamilies extracts name -> type from # TYPE lines.
func parseFamilies(body string) map[string]string {
	out := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		var name, typ string
		if _, err := fmt.Sscanf(sc.Text(), "# TYPE %s %s", &name, &typ); err == nil {
			out[name] = typ
		}
	}
	return out
}

// metricValue finds the value of one exact series in the exposition.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(line[len(series)+1:], 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in:\n%s", series, body)
	return 0
}

// TestMetricsGoldenFamilies pins the exported family set and label
// shapes over a deterministic VKernel workload: same components as
// the production server, no wall clock anywhere.
func TestMetricsGoldenFamilies(t *testing.T) {
	sys, err := patsy.Build(patsy.Config{
		Seed:         1,
		ArrayVolumes: 2,
		DiskModel:    "hp97560",
		QueueSched:   "clook",
		CacheBlocks:  256,
		Replace:      "lru",
		Flush:        cache.UPS(),
		SegBlocks:    64,
		Cleaner:      "cost-benefit",
		Layout:       "lfs",
		CacheShards:  2,
		IntentLog:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	sys.K.Go("workload", func(task sched.Task) {
		defer sys.K.Stop()
		if runErr = sys.Init(task); runErr != nil {
			return
		}
		v := sys.FS.Vol(1)
		var h *fsys.Handle
		if h, runErr = v.EnsureFile(task, "/golden", 0, false); runErr != nil {
			return
		}
		for blk := int64(0); blk < 32; blk++ {
			if runErr = v.WriteAt(task, h, blk*core.BlockSize, nil, core.BlockSize); runErr != nil {
				return
			}
		}
		if _, runErr = v.ReadAt(task, h, 0, nil, 8*core.BlockSize); runErr != nil {
			return
		}
		v.Close(task, h)
		runErr = sys.FS.SyncAll(task)
	})
	if err := sys.K.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}

	reg := NewRegistry(Observables{
		Cache:   sys.Cache,
		FS:      sys.FS,
		Array:   sys.Array,
		Drivers: sys.Drivers,
	})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()

	got := parseFamilies(body)
	for name, typ := range goldenSimFamilies {
		if got[name] != typ {
			t.Errorf("family %s: got type %q, want %q", name, got[name], typ)
		}
	}
	for name, typ := range got {
		if goldenSimFamilies[name] != typ {
			t.Errorf("unexpected family %s (%s) — extend the golden set", name, typ)
		}
	}

	// Label shapes: per-member and per-shard series.
	for _, series := range []string{
		`pfs_volume_read_blocks_total{member="d0"}`,
		`pfs_volume_write_blocks_total{member="d1"}`,
		`pfs_device_reads_total{member="d0"}`,
		`pfs_device_written_blocks_total{member="d1"}`,
		`pfs_cache_shard_dirty_blocks{shard="0"}`,
		`pfs_cache_shard_dirty_blocks{shard="1"}`,
		`pfs_device_queue_depth_bucket{le="+Inf",member="d0"}`,
		`pfs_device_wait_seconds{member="d1",quantile="0.5"}`,
	} {
		if !strings.Contains(body, series+" ") {
			t.Errorf("missing series %s", series)
		}
	}

	// The quiescent exposition is a pure function of the stats
	// objects: the values match the sources exactly, and a second
	// render is byte-identical.
	cs := sys.Cache.CacheStats()
	if v := metricValue(t, body, "pfs_cache_lookups_total"); v != float64(cs.Lookups.Value()) {
		t.Errorf("lookups: exported %v, source %d", v, cs.Lookups.Value())
	}
	if v := metricValue(t, body, "pfs_fs_writes_total"); v != float64(sys.FS.FSStats().Writes.Value()) {
		t.Errorf("fs writes: exported %v, source %d", v, sys.FS.FSStats().Writes.Value())
	}
	if v := metricValue(t, body, "pfs_volume_width"); v != 2 {
		t.Errorf("width = %v", v)
	}
	// The simulator never vectorizes; its flat staging paths move no
	// real bytes either, so both zero-copy families read zero.
	if v := metricValue(t, body, "pfs_io_vectored"); v != 0 {
		t.Errorf("pfs_io_vectored = %v in the simulator, want 0", v)
	}
	if v := metricValue(t, body, "pfs_io_staging_copy_bytes_total"); v != 0 {
		t.Errorf("pfs_io_staging_copy_bytes_total = %v in the simulator, want 0", v)
	}
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != body {
		t.Error("second render differs — exposition is not deterministic")
	}
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Path == "" {
		cfg.Path = filepath.Join(t.TempDir(), "pfs.img")
	}
	srv, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func adminGet(t *testing.T, addr, path string) (string, int) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.StatusCode
}

// TestAdminEndpointEndToEnd drives real NFS traffic through the
// production server and checks the whole admin surface: NFS and
// tracer families on /metrics, health, statusz and the slow-op log.
func TestAdminEndpointEndToEnd(t *testing.T) {
	srv := testServer(t, Config{
		Blocks:          2048,
		Volumes:         2,
		CacheBlocks:     256,
		CacheShards:     2,
		Flush:           cache.UPS(),
		SlowOpThreshold: time.Nanosecond, // every traced op lands in the slow ring
		Fault:           &device.FaultConfig{},
	})
	addr, err := srv.ServeNFS("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	admin, err := srv.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if srv.AdminAddr() != admin {
		t.Fatalf("AdminAddr %q != %q", srv.AdminAddr(), admin)
	}

	cl, err := nfs.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := cl.Mount(1)
	if err != nil {
		t.Fatal(err)
	}
	fh, _, err := cl.Create(root, "traced")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16<<10)
	for i := 0; i < 8; i++ {
		if _, err := cl.Write(fh, int64(i)*int64(len(buf)), buf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Read(fh, 0, len(buf)); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := srv.Sync(); err != nil {
		t.Fatal(err)
	}

	body, code := adminGet(t, admin, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`pfs_nfs_calls_total{op="write"} 8`,
		`pfs_nfs_calls_total{op="read"} 1`,
		`pfs_nfs_latency_seconds{op="write",quantile="0.99"}`,
		"pfs_nfs_pipeline_depth_bucket",
		"pfs_nfs_connections 0",
		"pfs_nfs_draining 0",
		"pfs_op_seconds_bucket",
		`pfs_op_stage_seconds_sum{stage="queue"}`,
		`pfs_op_stage_seconds_sum{stage="cache"}`,
		`pfs_op_stage_seconds_sum{stage="disk"}`,
		"pfs_op_slow_total",
		`pfs_volume_write_blocks_total{member="d0"}`,
		`pfs_fault_injected_total{kind="read_error"} 0`,
		"pfs_fault_power_cut 0",
		"pfs_uptime_seconds",
		"pfs_intent_recorded_total 1",
		"pfs_io_vectored 1",
		"pfs_io_staging_copy_bytes_total",
		`pfs_device_vectored_reads_total{member="d0"}`,
		`pfs_device_vectored_writes_total{member="d0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics", want)
		}
	}

	// Quiescent counters export exactly what the source objects hold.
	v1 := srv.Cache.CacheStats().Lookups.Value()
	body2, _ := adminGet(t, admin, "/metrics")
	v2 := srv.Cache.CacheStats().Lookups.Value()
	got := metricValue(t, body2, "pfs_cache_lookups_total")
	if got < float64(v1) || got > float64(v2) {
		t.Errorf("lookups drifted: exported %v, source [%d, %d]", got, v1, v2)
	}

	if body, code := adminGet(t, admin, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz %d: %s", code, body)
	}
	if body, code := adminGet(t, admin, "/statusz"); code != 200 ||
		!strings.Contains(body, "pfs status") || !strings.Contains(body, "nfs: addr=") {
		t.Fatalf("/statusz %d:\n%s", code, body)
	}
	body, code = adminGet(t, admin, "/statusz?slow=1")
	if code != 200 || !strings.Contains(body, "slow-op log") || !strings.Contains(body, "write") {
		t.Fatalf("/statusz?slow=1 %d:\n%s", code, body)
	}

	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestHealthReflectsCrash: a tripped power cut turns /healthz red.
func TestHealthReflectsCrash(t *testing.T) {
	srv := testServer(t, Config{
		Blocks:      2048,
		CacheBlocks: 128,
		Flush:       cache.UPS(),
		Fault:       &device.FaultConfig{},
	})
	if err := srv.Health(); err != nil {
		t.Fatalf("fresh server unhealthy: %v", err)
	}
	srv.Fault.Cut() // trips OnCut -> Cache.PowerOff
	if err := srv.Health(); err == nil {
		t.Fatal("health nil after power cut")
	}
	srv.Crash()
}

// TestConcurrentScrapeHammer races pipelined NFS clients against
// admin scrapes — the data-race gate for every collector.
func TestConcurrentScrapeHammer(t *testing.T) {
	srv := testServer(t, Config{
		Blocks:      4096,
		Volumes:     2,
		CacheBlocks: 256,
		CacheShards: 2,
		Flush:       cache.UPS(),
	})
	addr, err := srv.ServeNFS("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	admin, err := srv.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const clients, opsPer = 4, 100
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl, err := nfs.DialPipeline(addr, 4)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			root, _, err := cl.Mount(1)
			if err != nil {
				errc <- err
				return
			}
			fh, _, err := cl.Create(root, fmt.Sprintf("hammer%d", ci))
			if err != nil {
				errc <- err
				return
			}
			buf := make([]byte, 8<<10)
			for i := 0; i < opsPer; i++ {
				off := int64(i%16) * int64(len(buf))
				if i%4 == 0 {
					if _, err := cl.Read(fh, off, len(buf)); err != nil {
						errc <- err
						return
					}
				} else if _, err := cl.Write(fh, off, buf); err != nil {
					errc <- err
					return
				}
			}
		}(ci)
	}
	done := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, p := range []string{"/metrics", "/statusz?slow=1", "/healthz"} {
					if _, code := adminGet(t, admin, p); code != 200 && code != 503 {
						t.Errorf("%s status %d", p, code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapers.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsRedundantFamilies pins the member-loss families: they
// appear only for redundant placements (the golden set above proves
// non-redundant assemblies don't grow them), and they move when a
// member dies and reads are served from redundancy.
func TestMetricsRedundantFamilies(t *testing.T) {
	sys, err := patsy.Build(patsy.Config{
		Seed:         1,
		ArrayVolumes: 3,
		Placement:    "mirrored",
		DiskModel:    "hp97560",
		QueueSched:   "clook",
		CacheBlocks:  64,
		Replace:      "lru",
		Flush:        cache.UPS(),
		SegBlocks:    64,
		Cleaner:      "cost-benefit",
		Layout:       "lfs",
	})
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	sys.K.Go("workload", func(task sched.Task) {
		defer sys.K.Stop()
		if runErr = sys.Init(task); runErr != nil {
			return
		}
		v := sys.FS.Vol(1)
		var h *fsys.Handle
		if h, runErr = v.EnsureFile(task, "/redundant", 0, false); runErr != nil {
			return
		}
		// Overflow the 64-block cache so the post-kill reads miss and
		// actually reach the degraded read path.
		for blk := int64(0); blk < 128; blk++ {
			if runErr = v.WriteAt(task, h, blk*core.BlockSize, nil, core.BlockSize); runErr != nil {
				return
			}
		}
		if runErr = sys.FS.SyncAll(task); runErr != nil {
			return
		}
		if runErr = sys.KillMember(1); runErr != nil {
			return
		}
		if _, runErr = v.ReadAt(task, h, 0, nil, 32*core.BlockSize); runErr != nil {
			return
		}
		v.Close(task, h)
	})
	if err := sys.K.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}

	reg := NewRegistry(Observables{
		Cache:   sys.Cache,
		FS:      sys.FS,
		Array:   sys.Array,
		Drivers: sys.Drivers,
	})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	fams := parseFamilies(body)
	for name, typ := range map[string]string{
		"pfs_volume_degraded":             "gauge",
		"pfs_volume_dead_member":          "gauge",
		"pfs_volume_degraded_reads_total": "counter",
		"pfs_volume_rebuild_done_files":   "gauge",
		"pfs_volume_rebuild_total_files":  "gauge",
	} {
		if fams[name] != typ {
			t.Errorf("family %s: got type %q, want %q", name, fams[name], typ)
		}
	}
	if v := metricValue(t, body, "pfs_volume_degraded"); v != 1 {
		t.Errorf("pfs_volume_degraded = %v, want 1", v)
	}
	if v := metricValue(t, body, "pfs_volume_dead_member"); v != 1 {
		t.Errorf("pfs_volume_dead_member = %v, want 1", v)
	}
	if v := metricValue(t, body, "pfs_volume_degraded_reads_total"); v <= 0 {
		t.Errorf("no degraded reads recorded (got %v)", v)
	}
}
