package pfs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cache"
)

// fastWriteDelay is the write-delay policy scaled to test time: the
// update daemon scans every 3ms and flushes blocks older than 10ms,
// so its loss bound is MaxAge+ScanInterval of real time.
func fastWriteDelay() cache.FlushConfig {
	return cache.FlushConfig{Name: "writedelay", ScanInterval: 3 * time.Millisecond,
		MaxAge: 10 * time.Millisecond, WholeFile: true}
}

// TestCrashMatrix is the crash-injection sweep: both layouts × one
// and two volumes × three write policies × clustering off and on,
// each cut at several device I/O ordinals. Every cell must recover
// to a mountable, fsck-clean state with no torn or foreign bytes
// visible; the persistent policies must additionally lose zero
// acknowledged writes. The clustered cells make multi-block FFS data
// writes — and so torn data runs — possible, and CutTearsWrite tears
// the final one.
func TestCrashMatrix(t *testing.T) {
	layouts := []string{"lfs", "ffs"}
	widths := []int{1, 2}
	policies := []cache.FlushConfig{
		cache.UPS(),
		cache.NVRAMWhole(12),
		fastWriteDelay(),
	}
	cuts := []int64{1, 7, 23}
	clusters := []int{0, 16}
	if testing.Short() {
		layouts = []string{"lfs"}
		widths = []int{1}
		cuts = []int64{7}
	}
	for _, lay := range layouts {
		for _, w := range widths {
			for _, fc := range policies {
				for _, cut := range cuts {
					for _, cl := range clusters {
						name := fmt.Sprintf("%s/%s/cl%d", lay, fc.Name, cl)
						res, err := RunCrashPoint(CrashSpec{
							Dir:              t.TempDir(),
							Layout:           lay,
							Volumes:          w,
							Flush:            fc,
							CutAfterIO:       cut,
							Seed:             cut,
							ClusterRunBlocks: cl,
						})
						if err != nil {
							t.Fatalf("%s vol=%d cut=%d: %v", name, w, cut, err)
						}
						if len(res.FsckErrors) != 0 {
							t.Fatalf("%s vol=%d cut=%d: fsck/policy errors: %v", name, w, cut, res.FsckErrors)
						}
						if fc.Persistent && res.LostAcked != 0 {
							t.Fatalf("%s vol=%d cut=%d: %d acknowledged writes lost under a persistent policy",
								name, w, cut, res.LostAcked)
						}
						if !fc.Persistent && res.Survivors != 0 {
							t.Fatalf("%s vol=%d cut=%d: volatile policy returned %d survivors",
								name, w, cut, res.Survivors)
						}
					}
				}
			}
		}
	}
}

// TestCrashTornClusteredRun aims the cut straight at the clustered
// write path: whole-file flushes of multi-block files under
// clustering produce multi-block data writes on both layouts, and
// CutTearsWrite persists only a prefix of the final one. Recovery
// (fsck + NVRAM replay) must still produce a clean volume with zero
// acknowledged loss. Sweeping many cut points makes it overwhelmingly
// likely several cells land mid-data-run.
func TestCrashTornClusteredRun(t *testing.T) {
	cuts := []int64{2, 3, 5, 9, 13, 17, 21, 29}
	if testing.Short() {
		cuts = []int64{5, 13}
	}
	for _, lay := range []string{"lfs", "ffs"} {
		for _, cut := range cuts {
			res, err := RunCrashPoint(CrashSpec{
				Dir:              t.TempDir(),
				Layout:           lay,
				Volumes:          1,
				Flush:            cache.NVRAMWhole(24), // whole-file: flush jobs carry runs
				CutAfterIO:       cut,
				Seed:             1000 + cut,
				ClusterRunBlocks: 8,
			})
			if err != nil {
				t.Fatalf("%s cut=%d: %v", lay, cut, err)
			}
			if len(res.FsckErrors) != 0 {
				t.Fatalf("%s cut=%d: fsck errors after torn clustered run: %v", lay, cut, res.FsckErrors)
			}
			if res.LostAcked != 0 {
				t.Fatalf("%s cut=%d: lost %d acknowledged writes", lay, cut, res.LostAcked)
			}
		}
	}
}

// TestCrashQuiescentNVRAMReplay crashes after the workload drains
// (no forced cut): everything dirty sits in NVRAM and the entire
// working set must come back through replay.
func TestCrashQuiescentNVRAMReplay(t *testing.T) {
	res, err := RunCrashPoint(CrashSpec{
		Dir:     t.TempDir(),
		Layout:  "lfs",
		Volumes: 1,
		Flush:   cache.NVRAMWhole(24),
		Seed:    42,
		Rounds:  64,
	})
	if err != nil {
		t.Fatalf("RunCrashPoint: %v", err)
	}
	if res.LostAcked != 0 {
		t.Fatalf("lost %d acknowledged writes", res.LostAcked)
	}
	if res.Survivors == 0 || res.Replayed != res.Survivors {
		t.Fatalf("replay incomplete: %d survivors, %d replayed", res.Survivors, res.Replayed)
	}
	if len(res.FsckErrors) != 0 {
		t.Fatalf("fsck errors: %v", res.FsckErrors)
	}
}
