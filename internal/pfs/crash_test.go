package pfs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cache"
)

// fastWriteDelay is the write-delay policy scaled to test time: the
// update daemon scans every 3ms and flushes blocks older than 10ms,
// so its loss bound is MaxAge+ScanInterval of real time.
func fastWriteDelay() cache.FlushConfig {
	return cache.FlushConfig{Name: "writedelay", ScanInterval: 3 * time.Millisecond,
		MaxAge: 10 * time.Millisecond, WholeFile: true}
}

// TestCrashMatrix is the crash-injection sweep: both layouts × one
// and two volumes × three write policies × clustering off and on,
// each cut at several device I/O ordinals. Every cell must recover
// to a mountable, fsck-clean state with no torn or foreign bytes
// visible; the persistent policies must additionally lose zero
// acknowledged writes. The clustered cells make multi-block FFS data
// writes — and so torn data runs — possible, and CutTearsWrite tears
// the final one.
func TestCrashMatrix(t *testing.T) {
	layouts := []string{"lfs", "ffs"}
	widths := []int{1, 2}
	policies := []cache.FlushConfig{
		cache.UPS(),
		cache.NVRAMWhole(12),
		fastWriteDelay(),
	}
	cuts := []int64{1, 7, 23}
	clusters := []int{0, 16}
	if testing.Short() {
		layouts = []string{"lfs"}
		widths = []int{1}
		cuts = []int64{7}
	}
	for _, lay := range layouts {
		for _, w := range widths {
			for _, fc := range policies {
				for _, cut := range cuts {
					for _, cl := range clusters {
						name := fmt.Sprintf("%s/%s/cl%d", lay, fc.Name, cl)
						res, err := RunCrashPoint(CrashSpec{
							Dir:              t.TempDir(),
							Layout:           lay,
							Volumes:          w,
							Flush:            fc,
							CutAfterIO:       cut,
							Seed:             cut,
							ClusterRunBlocks: cl,
							Namespace:        true,
						})
						if err != nil {
							t.Fatalf("%s vol=%d cut=%d: %v", name, w, cut, err)
						}
						if len(res.FsckErrors) != 0 {
							t.Fatalf("%s vol=%d cut=%d: fsck/policy errors: %v", name, w, cut, res.FsckErrors)
						}
						if fc.Persistent && res.LostAcked != 0 {
							t.Fatalf("%s vol=%d cut=%d: %d acknowledged writes lost under a persistent policy",
								name, w, cut, res.LostAcked)
						}
						if fc.Persistent && res.NamespaceLost != 0 {
							t.Fatalf("%s vol=%d cut=%d: %d acknowledged namespace ops lost under a persistent policy",
								name, w, cut, res.NamespaceLost)
						}
						if !fc.Persistent && res.Survivors != 0 {
							t.Fatalf("%s vol=%d cut=%d: volatile policy returned %d survivors",
								name, w, cut, res.Survivors)
						}
						if !fc.Persistent && res.Intents != 0 {
							t.Fatalf("%s vol=%d cut=%d: volatile policy returned %d surviving intents",
								name, w, cut, res.Intents)
						}
					}
				}
			}
		}
	}
}

// TestCrashTornClusteredRun aims the cut straight at the clustered
// write path: whole-file flushes of multi-block files under
// clustering produce multi-block data writes on both layouts, and
// CutTearsWrite persists only a prefix of the final one. Recovery
// (fsck + NVRAM replay) must still produce a clean volume with zero
// acknowledged loss. Sweeping many cut points makes it overwhelmingly
// likely several cells land mid-data-run.
func TestCrashTornClusteredRun(t *testing.T) {
	cuts := []int64{2, 3, 5, 9, 13, 17, 21, 29}
	if testing.Short() {
		cuts = []int64{5, 13}
	}
	for _, lay := range []string{"lfs", "ffs"} {
		for _, cut := range cuts {
			res, err := RunCrashPoint(CrashSpec{
				Dir:              t.TempDir(),
				Layout:           lay,
				Volumes:          1,
				Flush:            cache.NVRAMWhole(24), // whole-file: flush jobs carry runs
				CutAfterIO:       cut,
				Seed:             1000 + cut,
				ClusterRunBlocks: 8,
			})
			if err != nil {
				t.Fatalf("%s cut=%d: %v", lay, cut, err)
			}
			if len(res.FsckErrors) != 0 {
				t.Fatalf("%s cut=%d: fsck errors after torn clustered run: %v", lay, cut, res.FsckErrors)
			}
			if res.LostAcked != 0 {
				t.Fatalf("%s cut=%d: lost %d acknowledged writes", lay, cut, res.LostAcked)
			}
		}
	}
}

// TestCrashTornVectoredRun is the A/B pair for the zero-copy path:
// the same torn clustered-run sweep with vectored I/O explicitly on
// and off. Vectored flush jobs issue one scatter-gather request per
// run, so the injected tear may end mid-iovec; recovery must still
// hold every acknowledged byte in both transfer forms.
func TestCrashTornVectoredRun(t *testing.T) {
	cuts := []int64{3, 7, 11, 19}
	if testing.Short() {
		cuts = []int64{7}
	}
	for _, lay := range []string{"lfs", "ffs"} {
		for _, novec := range []bool{false, true} {
			for _, cut := range cuts {
				res, err := RunCrashPoint(CrashSpec{
					Dir:              t.TempDir(),
					Layout:           lay,
					Volumes:          1,
					Flush:            cache.NVRAMWhole(24),
					CutAfterIO:       cut,
					Seed:             3000 + cut,
					ClusterRunBlocks: 8,
					NoVectorIO:       novec,
				})
				if err != nil {
					t.Fatalf("%s novec=%v cut=%d: %v", lay, novec, cut, err)
				}
				if len(res.FsckErrors) != 0 {
					t.Fatalf("%s novec=%v cut=%d: fsck errors after torn vectored run: %v", lay, novec, cut, res.FsckErrors)
				}
				if res.LostAcked != 0 {
					t.Fatalf("%s novec=%v cut=%d: lost %d acknowledged writes", lay, novec, cut, res.LostAcked)
				}
			}
		}
	}
}

// TestCrashQuiescentNVRAMReplay crashes after the workload drains
// (no forced cut): everything dirty sits in NVRAM and the entire
// working set must come back through replay.
func TestCrashQuiescentNVRAMReplay(t *testing.T) {
	res, err := RunCrashPoint(CrashSpec{
		Dir:     t.TempDir(),
		Layout:  "lfs",
		Volumes: 1,
		Flush:   cache.NVRAMWhole(24),
		Seed:    42,
		Rounds:  64,
	})
	if err != nil {
		t.Fatalf("RunCrashPoint: %v", err)
	}
	if res.LostAcked != 0 {
		t.Fatalf("lost %d acknowledged writes", res.LostAcked)
	}
	if res.Survivors == 0 || res.Replayed != res.Survivors {
		t.Fatalf("replay incomplete: %d survivors, %d replayed", res.Survivors, res.Replayed)
	}
	if len(res.FsckErrors) != 0 {
		t.Fatalf("fsck errors: %v", res.FsckErrors)
	}
}

// TestCrashCreateWriteCut is the regression cell for the paper's last
// acknowledged-loss hole: files created and written just before the
// cut, under the policies that promise zero acknowledged loss. With
// the intent log on, every acknowledged create/rename/remove must be
// reflected after recovery — across both layouts and array widths.
func TestCrashCreateWriteCut(t *testing.T) {
	layouts := []string{"lfs", "ffs"}
	widths := []int{1, 2}
	cuts := []int64{3, 11, 19}
	if testing.Short() {
		widths = []int{1}
		cuts = []int64{11}
	}
	policies := []cache.FlushConfig{cache.UPS(), cache.NVRAMWhole(12)}
	for _, lay := range layouts {
		for _, w := range widths {
			for _, fc := range policies {
				for _, cut := range cuts {
					res, err := RunCrashPoint(CrashSpec{
						Dir:        t.TempDir(),
						Layout:     lay,
						Volumes:    w,
						Flush:      fc,
						CutAfterIO: cut,
						Seed:       7000 + cut,
						Namespace:  true,
					})
					if err != nil {
						t.Fatalf("%s/%s vol=%d cut=%d: %v", lay, fc.Name, w, cut, err)
					}
					if len(res.FsckErrors) != 0 {
						t.Fatalf("%s/%s vol=%d cut=%d: %v", lay, fc.Name, w, cut, res.FsckErrors)
					}
					if res.NamespaceLost != 0 {
						t.Fatalf("%s/%s vol=%d cut=%d: %d acknowledged namespace ops lost (intent log on)",
							lay, fc.Name, w, cut, res.NamespaceLost)
					}
					if res.LostAcked != 0 {
						t.Fatalf("%s/%s vol=%d cut=%d: %d acknowledged writes lost",
							lay, fc.Name, w, cut, res.LostAcked)
					}
				}
			}
		}
	}
}

// TestCrashNamespaceDropWithoutIntentLog pins the historical bug the
// intent log fixes: with the log disabled, the same create+write+cut
// cells must show acknowledged namespace loss (dropped survivors or
// missing files) at some cut point — otherwise the regression cell
// above is not actually exercising the hole.
func TestCrashNamespaceDropWithoutIntentLog(t *testing.T) {
	cuts := []int64{3, 7, 11, 19, 27}
	if testing.Short() {
		cuts = []int64{7, 19}
	}
	lost := 0
	for _, cut := range cuts {
		res, err := RunCrashPoint(CrashSpec{
			Dir:         t.TempDir(),
			Layout:      "lfs",
			Volumes:     1,
			Flush:       cache.NVRAMWhole(12),
			CutAfterIO:  cut,
			Seed:        8000 + cut,
			Namespace:   true,
			NoIntentLog: true,
		})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		lost += res.NamespaceLost + res.Dropped
	}
	if lost == 0 {
		t.Fatalf("expected the checkpoint-only discipline to drop acknowledged namespace state at some cut point")
	}
}

// TestCrashDoubleCut cuts the power a second time during recovery
// itself — at a sweep of recovery I/O ordinals — then recovers from
// the merged crash state. Intent replay re-records what it applies,
// so the double cut must converge to the same fsck-clean, zero-loss
// state a single recovery reaches.
func TestCrashDoubleCut(t *testing.T) {
	recuts := []int64{1, 2, 4, 8, 16, 32}
	if testing.Short() {
		recuts = []int64{2, 8}
	}
	for _, lay := range []string{"lfs", "ffs"} {
		for _, rc := range recuts {
			res, err := RunCrashPoint(CrashSpec{
				Dir:        t.TempDir(),
				Layout:     lay,
				Volumes:    1,
				Flush:      cache.NVRAMWhole(12),
				CutAfterIO: 9,
				Seed:       9000 + rc,
				Namespace:  true,
				RecoverCut: rc,
			})
			if err != nil {
				t.Fatalf("%s recut=%d: %v", lay, rc, err)
			}
			if len(res.FsckErrors) != 0 {
				t.Fatalf("%s recut=%d: fsck errors after double cut: %v", lay, rc, res.FsckErrors)
			}
			if res.NamespaceLost != 0 {
				t.Fatalf("%s recut=%d: %d acknowledged namespace ops lost after double cut",
					lay, rc, res.NamespaceLost)
			}
			if res.LostAcked != 0 {
				t.Fatalf("%s recut=%d: %d acknowledged writes lost after double cut",
					lay, rc, res.LostAcked)
			}
		}
	}
}

// TestCrashMemberDeath is the disk-death axis of the crash matrix:
// under a redundant placement, kill any single member mid-workload —
// the traffic keeps running degraded — and then cut the power. After
// recovery (which reopens with the member declared dead, so every
// verification read goes through the mirror copy or the parity
// column) zero acknowledged data may be missing. For parity arrays
// this is precisely the RAID-5 write-hole cell: the battery-backed
// partial-parity records must carry the in-flight degraded columns
// across the cut.
func TestCrashMemberDeath(t *testing.T) {
	layouts := []string{"lfs", "ffs"}
	placements := []string{"mirrored", "parity"}
	members := []int{0, 1, 2}
	kills := []int64{0, 6, 17}
	if testing.Short() {
		layouts = []string{"lfs"}
		members = []int{1}
		kills = []int64{6}
	}
	parityRecords := 0
	for _, lay := range layouts {
		for _, pl := range placements {
			for _, m := range members {
				for _, kio := range kills {
					res, err := RunCrashPoint(CrashSpec{
						Dir:     t.TempDir(),
						Layout:  lay,
						Volumes: 3,
						// Chunk width 2: the 8-block files span several
						// parity columns, so partially-dirty flushes take
						// the small-write RMW path — degraded, that is
						// the write-hole shape the parity log guards.
						StripeBlocks: 2,
						Placement:    pl,
						Flush:        cache.NVRAMWhole(12),
						Kill:         true,
						KillMember:   m,
						KillAfterIO:  kio,
						CutAfterIO:   40,
						Seed:         2000 + int64(m)*100 + kio,
					})
					name := fmt.Sprintf("%s/%s m=%d killio=%d", lay, pl, m, kio)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if res.DeadMember != m {
						t.Fatalf("%s: dead member %d after recovery", name, res.DeadMember)
					}
					if len(res.FsckErrors) != 0 {
						t.Fatalf("%s: fsck/policy errors: %v", name, res.FsckErrors)
					}
					if res.LostAcked != 0 {
						t.Fatalf("%s: lost %d acknowledged writes reading through redundancy",
							name, res.LostAcked)
					}
					parityRecords += res.ParityRecords
					if res.ParityApplied > res.ParityRecords {
						t.Fatalf("%s: applied %d of %d parity records", name, res.ParityApplied, res.ParityRecords)
					}
				}
			}
		}
	}
	t.Logf("partial-parity records carried across the sweep: %d", parityRecords)
	if !testing.Short() && parityRecords == 0 {
		t.Fatalf("the sweep no longer reaches the degraded RMW path: no partial-parity record was ever pending at a cut, so the write-hole cell is not being exercised")
	}
}

// TestCrashMemberDeathWriteDelay pins the paper's loss bound on the
// degraded array: write-delay may lose acknowledged writes at the
// cut, but never older than the update daemon's age limit — member
// loss must not widen the window.
func TestCrashMemberDeathWriteDelay(t *testing.T) {
	fc := fastWriteDelay()
	for _, pl := range []string{"mirrored", "parity"} {
		res, err := RunCrashPoint(CrashSpec{
			Dir:          t.TempDir(),
			Layout:       "lfs",
			Volumes:      3,
			StripeBlocks: 2,
			Placement:    pl,
			Flush:        fc,
			Kill:         true,
			KillMember:   1,
			KillAfterIO:  4,
			CutAfterIO:   30,
			Seed:         2600,
		})
		if err != nil {
			t.Fatalf("%s: %v", pl, err)
		}
		if len(res.FsckErrors) != 0 {
			t.Fatalf("%s: fsck errors: %v", pl, res.FsckErrors)
		}
		// The bound is MaxAge + ScanInterval of real time; the slack
		// absorbs scheduler jitter on a loaded CI machine.
		if bound := fc.MaxAge + fc.ScanInterval + 2*time.Second; res.LossWindow > bound {
			t.Fatalf("%s: loss window %v exceeds the write-delay bound %v", pl, res.LossWindow, bound)
		}
	}
}

// TestCrashDuringRebuild sweeps the power cut across the online
// rebuild itself: at every cut ordinal the recovery — degraded
// remount, replay, a fresh rebuild — must converge to a healthy,
// fsck-clean, scrub-clean array holding exactly the acknowledged
// versions. Cut 0 is the control run (no crash); large ordinals let
// the rebuild outrun the cut, exercising the heal-then-crash tail.
func TestCrashDuringRebuild(t *testing.T) {
	layouts := []string{"lfs", "ffs"}
	cuts := []int64{0, 1, 3, 9, 33, 90}
	if testing.Short() {
		layouts = []string{"lfs"}
		cuts = []int64{0, 3, 33}
	}
	for _, lay := range layouts {
		for _, pl := range []string{"mirrored", "parity"} {
			for _, cut := range cuts {
				res, err := RunRebuildCrash(RebuildCrashSpec{
					Dir:          t.TempDir(),
					Layout:       lay,
					Volumes:      3,
					StripeBlocks: 2,
					Placement:    pl,
					KillMember:   1,
					CutAfterIO:   cut,
					Seed:         3000 + cut,
				})
				name := fmt.Sprintf("%s/%s cut=%d", lay, pl, cut)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if cut == 0 && (res.Interrupted || res.RebuildErr != "") {
					t.Fatalf("%s: control run crashed: interrupted=%v err=%q", name, res.Interrupted, res.RebuildErr)
				}
				if len(res.FsckErrors) != 0 {
					t.Fatalf("%s: did not converge: %v", name, res.FsckErrors)
				}
				if res.Scrub.Mismatches != 0 || res.Scrub.Skipped != 0 {
					t.Fatalf("%s: scrub after convergence: %+v", name, res.Scrub)
				}
			}
		}
	}
}

// TestCrashAutoRebuild sweeps the power cut across the SUPERVISED
// repair: the server's own self-heal — isolate, promote the hot
// spare, rebuild onto it, scrub-verify — interrupted at arbitrary
// device I/Os. Whatever the cut leaves (a half-rebuilt spare still in
// the pool, an adopted image mid-copy), recovery must reopen degraded
// and converge to a healthy, fsck-clean, scrub-clean array holding
// exactly the acknowledged versions. Cut 0 is the control run: the
// heal must complete and the healed images must reopen clean.
func TestCrashAutoRebuild(t *testing.T) {
	cuts := []int64{0, 1, 4, 12, 40, 120}
	placements := []string{"mirrored", "parity"}
	if testing.Short() {
		cuts = []int64{0, 4, 40}
		placements = []string{"mirrored"}
	}
	for _, pl := range placements {
		for _, cut := range cuts {
			res, err := RunAutoRebuildCrash(AutoRebuildCrashSpec{
				Dir:          t.TempDir(),
				Layout:       "lfs",
				Volumes:      3,
				StripeBlocks: 2,
				Placement:    pl,
				KillMember:   1,
				CutAfterIO:   cut,
				Seed:         4000 + cut,
			})
			name := fmt.Sprintf("%s cut=%d", pl, cut)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if cut == 0 {
				if res.Interrupted || res.Heal.Err != "" {
					t.Fatalf("%s: control run crashed: interrupted=%v heal=%+v", name, res.Interrupted, res.Heal)
				}
				if res.Heal.Spare != 0 || res.Heal.Member != 1 {
					t.Fatalf("%s: control heal event %+v, want member 1 onto spare 0", name, res.Heal)
				}
			}
			if res.Interrupted && res.Heal.Err == "" && res.Heal.Spare != 0 {
				t.Fatalf("%s: cut tripped but the heal neither completed nor failed: %+v", name, res.Heal)
			}
			if len(res.FsckErrors) != 0 {
				t.Fatalf("%s: did not converge: %v", name, res.FsckErrors)
			}
			if res.Scrub.Mismatches != 0 || res.Scrub.Skipped != 0 {
				t.Fatalf("%s: scrub after convergence: %+v", name, res.Scrub)
			}
		}
	}
}

// TestCrashTornMetadataWrite aims the cut at FFS's synchronous
// metadata writes: the cut request tears its single block to a random
// byte prefix, splicing half an inode-table or bitmap update onto
// stale bytes. The per-record checksums must catch the tear at
// recovery and repair must rebuild — still with zero acknowledged
// loss under NVRAM, since the intent log re-creates what the torn
// record lost.
func TestCrashTornMetadataWrite(t *testing.T) {
	cuts := []int64{2, 5, 9, 14, 21}
	if testing.Short() {
		cuts = []int64{5, 14}
	}
	for _, cut := range cuts {
		res, err := RunCrashPoint(CrashSpec{
			Dir:          t.TempDir(),
			Layout:       "ffs",
			Volumes:      1,
			Flush:        cache.NVRAMWhole(12),
			CutAfterIO:   cut,
			Seed:         5000 + cut,
			Namespace:    true,
			TearSubBlock: true,
		})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(res.FsckErrors) != 0 {
			t.Fatalf("cut=%d: fsck errors after torn metadata write: %v", cut, res.FsckErrors)
		}
		if res.NamespaceLost != 0 {
			t.Fatalf("cut=%d: %d acknowledged namespace ops lost", cut, res.NamespaceLost)
		}
		if res.LostAcked != 0 {
			t.Fatalf("cut=%d: %d acknowledged writes lost", cut, res.LostAcked)
		}
	}
}
