package pfs

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sched"
)

func TestOpenWriteReadClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	msg := []byte("the real thing")
	err = srv.Do(func(tk sched.Task) error {
		h, err := srv.Vol.Create(tk, "/greeting", core.TypeRegular)
		if err != nil {
			return err
		}
		if err := srv.Vol.Write(tk, h, msg, int64(len(msg))); err != nil {
			return err
		}
		h.SetPos(0)
		buf := make([]byte, len(msg))
		if _, err := srv.Vol.Read(tk, h, buf, int64(len(msg))); err != nil {
			return err
		}
		if !bytes.Equal(buf, msg) {
			t.Error("read-back mismatch")
		}
		return srv.Vol.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRestartRecoversData(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	msg := bytes.Repeat([]byte{0xE7}, 3*core.BlockSize)
	{
		srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128})
		if err != nil {
			t.Fatalf("first open: %v", err)
		}
		err = srv.Do(func(tk sched.Task) error {
			h, err := srv.Vol.Create(tk, "/persist.bin", core.TypeRegular)
			if err != nil {
				return err
			}
			if err := srv.Vol.Write(tk, h, msg, int64(len(msg))); err != nil {
				return err
			}
			return srv.Vol.Close(tk, h)
		})
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	// Reopen: the file must come back from the image.
	srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer srv.Close()
	err = srv.Do(func(tk sched.Task) error {
		h, err := srv.Vol.Open(tk, "/persist.bin")
		if err != nil {
			return err
		}
		buf := make([]byte, len(msg))
		n, err := srv.Vol.Read(tk, h, buf, int64(len(msg)))
		if err != nil {
			return err
		}
		if int(n) != len(msg) || !bytes.Equal(buf, msg) {
			t.Error("data lost across restart")
		}
		return srv.Vol.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
}

// TestConcurrentLocalClients hammers one PFS through the in-process
// client interface from many goroutines at once: each Do call is a
// kernel task acting as one client representative, so this exercises
// the same cache/layout paths the simulator runs — under real
// concurrency. Run with -race it certifies the on-line instantiation.
func TestConcurrentLocalClients(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test in -short mode")
	}
	path := filepath.Join(t.TempDir(), "pfs.img")
	srv, err := Open(Config{Path: path, Blocks: 4096, CacheBlocks: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer srv.Close()
	const (
		clients = 8
		rounds  = 10
	)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		id := i
		go func() {
			errs <- func() error {
				dir := fmt.Sprintf("/c%d", id)
				if err := srv.Do(func(tk sched.Task) error {
					return srv.Vol.Mkdir(tk, dir)
				}); err != nil {
					return fmt.Errorf("client %d: mkdir: %w", id, err)
				}
				payload := bytes.Repeat([]byte{byte('a' + id)}, core.BlockSize+512)
				for r := 0; r < rounds; r++ {
					name := fmt.Sprintf("%s/f%d", dir, r)
					err := srv.Do(func(tk sched.Task) error {
						h, err := srv.Vol.Create(tk, name, core.TypeRegular)
						if err != nil {
							return err
						}
						if err := srv.Vol.Write(tk, h, payload, int64(len(payload))); err != nil {
							return err
						}
						h.SetPos(0)
						buf := make([]byte, len(payload))
						if _, err := srv.Vol.Read(tk, h, buf, int64(len(payload))); err != nil {
							return err
						}
						if !bytes.Equal(buf, payload) {
							return fmt.Errorf("read-back mismatch")
						}
						if err := srv.Vol.Close(tk, h); err != nil {
							return err
						}
						if r%2 == 1 {
							return srv.Vol.Remove(tk, name)
						}
						return nil
					})
					if err != nil {
						return fmt.Errorf("client %d round %d: %w", id, r, err)
					}
				}
				return srv.Do(func(tk sched.Task) error {
					names, err := srv.Vol.Readdir(tk, dir)
					if err != nil {
						return fmt.Errorf("client %d: readdir: %w", id, err)
					}
					if want := rounds - rounds/2; len(names) != want {
						return fmt.Errorf("client %d: %d files survived, want %d", id, len(names), want)
					}
					return nil
				})
			}()
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFlushPolicySelectable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128,
		Flush: cache.WriteDelay()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if srv.Cache.Policy().Name != "writedelay" {
		t.Fatalf("policy %q", srv.Cache.Policy().Name)
	}
	srv.Close()
}

func TestBadSchedulerRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	if _, err := Open(Config{Path: path, Blocks: 2048, QueueSched: "nope"}); err == nil {
		t.Fatal("bad scheduler accepted")
	}
}
