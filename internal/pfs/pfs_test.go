package pfs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/sched"
)

func TestOpenWriteReadClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	msg := []byte("the real thing")
	err = srv.Do(func(tk sched.Task) error {
		h, err := srv.Vol.Create(tk, "/greeting", core.TypeRegular)
		if err != nil {
			return err
		}
		if err := srv.Vol.Write(tk, h, msg, int64(len(msg))); err != nil {
			return err
		}
		h.SetPos(0)
		buf := make([]byte, len(msg))
		if _, err := srv.Vol.Read(tk, h, buf, int64(len(msg))); err != nil {
			return err
		}
		if !bytes.Equal(buf, msg) {
			t.Error("read-back mismatch")
		}
		return srv.Vol.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRestartRecoversData(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	msg := bytes.Repeat([]byte{0xE7}, 3*core.BlockSize)
	{
		srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128})
		if err != nil {
			t.Fatalf("first open: %v", err)
		}
		err = srv.Do(func(tk sched.Task) error {
			h, err := srv.Vol.Create(tk, "/persist.bin", core.TypeRegular)
			if err != nil {
				return err
			}
			if err := srv.Vol.Write(tk, h, msg, int64(len(msg))); err != nil {
				return err
			}
			return srv.Vol.Close(tk, h)
		})
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	// Reopen: the file must come back from the image.
	srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer srv.Close()
	err = srv.Do(func(tk sched.Task) error {
		h, err := srv.Vol.Open(tk, "/persist.bin")
		if err != nil {
			return err
		}
		buf := make([]byte, len(msg))
		n, err := srv.Vol.Read(tk, h, buf, int64(len(msg)))
		if err != nil {
			return err
		}
		if int(n) != len(msg) || !bytes.Equal(buf, msg) {
			t.Error("data lost across restart")
		}
		return srv.Vol.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
}

// TestConcurrentLocalClients hammers one PFS through the in-process
// client interface from many goroutines at once: each Do call is a
// kernel task acting as one client representative, so this exercises
// the same cache/layout paths the simulator runs — under real
// concurrency. Run with -race it certifies the on-line instantiation.
func TestConcurrentLocalClients(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test in -short mode")
	}
	path := filepath.Join(t.TempDir(), "pfs.img")
	srv, err := Open(Config{Path: path, Blocks: 4096, CacheBlocks: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer srv.Close()
	const (
		clients = 8
		rounds  = 10
	)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		id := i
		go func() {
			errs <- func() error {
				dir := fmt.Sprintf("/c%d", id)
				if err := srv.Do(func(tk sched.Task) error {
					return srv.Vol.Mkdir(tk, dir)
				}); err != nil {
					return fmt.Errorf("client %d: mkdir: %w", id, err)
				}
				payload := bytes.Repeat([]byte{byte('a' + id)}, core.BlockSize+512)
				for r := 0; r < rounds; r++ {
					name := fmt.Sprintf("%s/f%d", dir, r)
					err := srv.Do(func(tk sched.Task) error {
						h, err := srv.Vol.Create(tk, name, core.TypeRegular)
						if err != nil {
							return err
						}
						if err := srv.Vol.Write(tk, h, payload, int64(len(payload))); err != nil {
							return err
						}
						h.SetPos(0)
						buf := make([]byte, len(payload))
						if _, err := srv.Vol.Read(tk, h, buf, int64(len(payload))); err != nil {
							return err
						}
						if !bytes.Equal(buf, payload) {
							return fmt.Errorf("read-back mismatch")
						}
						if err := srv.Vol.Close(tk, h); err != nil {
							return err
						}
						if r%2 == 1 {
							return srv.Vol.Remove(tk, name)
						}
						return nil
					})
					if err != nil {
						return fmt.Errorf("client %d round %d: %w", id, r, err)
					}
				}
				return srv.Do(func(tk sched.Task) error {
					names, err := srv.Vol.Readdir(tk, dir)
					if err != nil {
						return fmt.Errorf("client %d: readdir: %w", id, err)
					}
					if want := rounds - rounds/2; len(names) != want {
						return fmt.Errorf("client %d: %d files survived, want %d", id, len(names), want)
					}
					return nil
				})
			}()
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestArrayRestartRecoversData writes through a 2-wide striped
// array PFS, closes it, reopens the image set and reads the bytes
// back — the volume manager's persistence path end to end.
func TestArrayRestartRecoversData(t *testing.T) {
	base := filepath.Join(t.TempDir(), "arr.img")
	cfg := Config{Path: base, Blocks: 2048, CacheBlocks: 128,
		Volumes: 2, Placement: "striped", StripeBlocks: 2}
	msg := bytes.Repeat([]byte{0xA5, 0x5A, 0x42}, 7*core.BlockSize/3)
	{
		srv, err := Open(cfg)
		if err != nil {
			t.Fatalf("first open: %v", err)
		}
		if srv.Array.Width() != 2 {
			t.Fatalf("array width %d", srv.Array.Width())
		}
		err = srv.Do(func(tk sched.Task) error {
			h, err := srv.Vol.Create(tk, "/striped.bin", core.TypeRegular)
			if err != nil {
				return err
			}
			if err := srv.Vol.Write(tk, h, msg, int64(len(msg))); err != nil {
				return err
			}
			return srv.Vol.Close(tk, h)
		})
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(fmt.Sprintf("%s.v%d", base, i)); err != nil {
			t.Fatalf("member image: %v", err)
		}
	}
	srv, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer srv.Close()
	err = srv.Do(func(tk sched.Task) error {
		h, err := srv.Vol.Open(tk, "/striped.bin")
		if err != nil {
			return err
		}
		if h.Size() != int64(len(msg)) {
			return fmt.Errorf("size after restart: %d, want %d", h.Size(), len(msg))
		}
		buf := make([]byte, len(msg))
		n, err := srv.Vol.Read(tk, h, buf, int64(len(msg)))
		if err != nil {
			return err
		}
		if int(n) != len(msg) || !bytes.Equal(buf, msg) {
			return fmt.Errorf("data lost across array restart")
		}
		return srv.Vol.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
}

// TestArrayGeometryMismatchRejected reopens an array image set under
// the wrong flags and expects the label to refuse it.
func TestArrayGeometryMismatchRejected(t *testing.T) {
	base := filepath.Join(t.TempDir(), "arr.img")
	cfg := Config{Path: base, Blocks: 2048, CacheBlocks: 128,
		Volumes: 2, Placement: "striped", StripeBlocks: 4}
	srv, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	bad := cfg
	bad.Placement = "affinity"
	if _, err := Open(bad); err == nil {
		t.Fatal("affinity reopen of a striped image set accepted")
	}
	bad = cfg
	bad.StripeBlocks = 8
	if _, err := Open(bad); err == nil {
		t.Fatal("stripe-width change accepted")
	}
}

// TestConcurrentNFSClientsOn4VolumeArray hammers a 4-wide striped
// array PFS over the network protocol from concurrent clients; with
// -race it certifies the volume manager's fan-out paths under real
// concurrency.
func TestConcurrentNFSClientsOn4VolumeArray(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test in -short mode")
	}
	base := filepath.Join(t.TempDir(), "arr4.img")
	srv, err := Open(Config{Path: base, Blocks: 2048, CacheBlocks: 256,
		Volumes: 4, Placement: "striped", StripeBlocks: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer srv.Close()
	addr, err := srv.ServeNFS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	const (
		clients = 6
		rounds  = 8
	)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		id := i
		go func() {
			errs <- func() error {
				c, err := nfs.Dial(addr)
				if err != nil {
					return err
				}
				defer c.Close()
				root, _, err := c.Mount(1)
				if err != nil {
					return fmt.Errorf("client %d: mount: %w", id, err)
				}
				dir, _, err := c.Mkdir(root, fmt.Sprintf("c%d", id))
				if err != nil {
					return fmt.Errorf("client %d: mkdir: %w", id, err)
				}
				payload := bytes.Repeat([]byte{byte('A' + id)}, 3*core.BlockSize+511)
				for r := 0; r < rounds; r++ {
					name := fmt.Sprintf("f%d", r)
					fh, _, err := c.Create(dir, name)
					if err != nil {
						return fmt.Errorf("client %d round %d: create: %w", id, r, err)
					}
					if _, err := c.Write(fh, 0, payload); err != nil {
						return fmt.Errorf("client %d round %d: write: %w", id, r, err)
					}
					got, err := c.Read(fh, 0, len(payload))
					if err != nil {
						return fmt.Errorf("client %d round %d: read: %w", id, r, err)
					}
					if !bytes.Equal(got, payload) {
						return fmt.Errorf("client %d round %d: read-back mismatch", id, r)
					}
					if r%2 == 1 {
						if err := c.Remove(dir, name); err != nil {
							return fmt.Errorf("client %d round %d: remove: %w", id, r, err)
						}
					}
				}
				ents, err := c.Readdir(dir)
				if err != nil {
					return fmt.Errorf("client %d: readdir: %w", id, err)
				}
				if want := rounds - rounds/2; len(ents) != want {
					return fmt.Errorf("client %d: %d files survived, want %d", id, len(ents), want)
				}
				return nil
			}()
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Data really spread: flush the cache and check every member
	// received writes.
	if err := srv.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	_, wr := srv.Array.RoutedBlocks()
	for i, w := range wr {
		if w == 0 {
			t.Errorf("array member %d saw no writes: %v", i, wr)
		}
	}
}

// TestGracefulShutdownDrains checks Shutdown completes in-flight
// NFS work, syncs, and leaves a reopenable image, while new calls
// after the drain fail.
func TestGracefulShutdownDrains(t *testing.T) {
	base := filepath.Join(t.TempDir(), "drain.img")
	cfg := Config{Path: base, Blocks: 2048, CacheBlocks: 128,
		Volumes: 2, Placement: "striped", StripeBlocks: 2}
	srv, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	addr, err := srv.ServeNFS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	c, err := nfs.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	root, _, err := c.Mount(1)
	if err != nil {
		t.Fatalf("mount: %v", err)
	}
	payload := bytes.Repeat([]byte{0x3C}, 2*core.BlockSize)
	fh, _, err := c.Create(root, "last-write")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Write(fh, 0, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := c.Null(); err == nil {
		t.Error("call succeeded after drain")
	}
	// The write that completed before the drain must be durable.
	srv2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen after shutdown: %v", err)
	}
	defer srv2.Close()
	err = srv2.Do(func(tk sched.Task) error {
		h, err := srv2.Vol.Open(tk, "/last-write")
		if err != nil {
			return err
		}
		buf := make([]byte, len(payload))
		if _, err := srv2.Vol.Read(tk, h, buf, int64(len(payload))); err != nil {
			return err
		}
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("pre-drain write lost")
		}
		return srv2.Vol.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
}

func TestFlushPolicySelectable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128,
		Flush: cache.WriteDelay()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if srv.Cache.Policy().Name != "writedelay" {
		t.Fatalf("policy %q", srv.Cache.Policy().Name)
	}
	srv.Close()
}

func TestBadSchedulerRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	if _, err := Open(Config{Path: path, Blocks: 2048, QueueSched: "nope"}); err == nil {
		t.Fatal("bad scheduler accepted")
	}
}
