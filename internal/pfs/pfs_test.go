package pfs

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sched"
)

func TestOpenWriteReadClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	msg := []byte("the real thing")
	err = srv.Do(func(tk sched.Task) error {
		h, err := srv.Vol.Create(tk, "/greeting", core.TypeRegular)
		if err != nil {
			return err
		}
		if err := srv.Vol.Write(tk, h, msg, int64(len(msg))); err != nil {
			return err
		}
		h.SetPos(0)
		buf := make([]byte, len(msg))
		if _, err := srv.Vol.Read(tk, h, buf, int64(len(msg))); err != nil {
			return err
		}
		if !bytes.Equal(buf, msg) {
			t.Error("read-back mismatch")
		}
		return srv.Vol.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRestartRecoversData(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	msg := bytes.Repeat([]byte{0xE7}, 3*core.BlockSize)
	{
		srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128})
		if err != nil {
			t.Fatalf("first open: %v", err)
		}
		err = srv.Do(func(tk sched.Task) error {
			h, err := srv.Vol.Create(tk, "/persist.bin", core.TypeRegular)
			if err != nil {
				return err
			}
			if err := srv.Vol.Write(tk, h, msg, int64(len(msg))); err != nil {
				return err
			}
			return srv.Vol.Close(tk, h)
		})
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	// Reopen: the file must come back from the image.
	srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer srv.Close()
	err = srv.Do(func(tk sched.Task) error {
		h, err := srv.Vol.Open(tk, "/persist.bin")
		if err != nil {
			return err
		}
		buf := make([]byte, len(msg))
		n, err := srv.Vol.Read(tk, h, buf, int64(len(msg)))
		if err != nil {
			return err
		}
		if int(n) != len(msg) || !bytes.Equal(buf, msg) {
			t.Error("data lost across restart")
		}
		return srv.Vol.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
}

func TestFlushPolicySelectable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	srv, err := Open(Config{Path: path, Blocks: 2048, CacheBlocks: 128,
		Flush: cache.WriteDelay()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if srv.Cache.Policy().Name != "writedelay" {
		t.Fatalf("policy %q", srv.Cache.Policy().Name)
	}
	srv.Close()
}

func TestBadSchedulerRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pfs.img")
	if _, err := Open(Config{Path: path, Blocks: 2048, QueueSched: "nope"}); err == nil {
		t.Fatal("bad scheduler accepted")
	}
}
