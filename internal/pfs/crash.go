// Crash-injection harness: run a journaled write workload against a
// live PFS, cut the power at an arbitrary device I/O through the
// fault seam, then recover — remount through roll-forward/repair,
// replay the NVRAM survivors — fsck the result, and verify every
// surviving byte against the journal. This is the machinery behind
// the paper's reliability claim: under the UPS/NVRAM policies an
// acknowledged write must never be lost; under write-delay the loss
// is real and bounded by the update daemon's age limit.
package pfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ffs"
	"repro/internal/fsys"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
	"repro/internal/volume"
)

// CrashSpec configures one crash-recovery exercise.
type CrashSpec struct {
	// Dir is a scratch directory for the image set.
	Dir string
	// Layout is "lfs" (default) or "ffs"; Volumes the array width.
	Layout  string
	Volumes int
	// Placement selects the array placement ("affinity" default,
	// "striped", "mirrored", "parity"). The redundant placements
	// enable the member-death axis below.
	Placement string
	// StripeBlocks is the redundant/striped chunk width. The default
	// (8) makes each 8-block crash file a single chunk; 2 gives the
	// files multiple parity columns with partially-written updates —
	// the RAID-5 small-write (and, degraded, write-hole) shape.
	StripeBlocks int
	// Kill arms the disk-death axis: member KillMember dies at the
	// KillAfterIO-th device I/O of the crash window (0 = before the
	// first), and the workload keeps running — degraded — into the
	// power cut. Requires a redundant Placement. Verification then
	// reopens the image set with the member declared dead, so every
	// surviving byte is read back through the redundancy.
	Kill        bool
	KillMember  int
	KillAfterIO int64
	// Flush is the write policy under test.
	Flush cache.FlushConfig
	// CutAfterIO trips the power cut at the Nth device I/O issued
	// after the durable baseline (0: cut when the workload ends).
	CutAfterIO int64
	// Files and Rounds size the workload (defaults 6 and 200).
	Files, Rounds int
	// Seed drives the server's policy randomness.
	Seed int64
	// ClusterRunBlocks is the clustered-transfer cap under test
	// (0 = off: the classic one-block-per-request stack; > 1 makes
	// multi-block data writes — and so torn data runs — possible).
	ClusterRunBlocks int
	// Namespace interleaves journaled namespace operations (create+
	// write, rename, remove) with the data workload — the
	// create+write+crash cell. Verification then also checks that no
	// acknowledged namespace operation is lost or resurrected.
	Namespace bool
	// NoIntentLog disables the server's metadata intent log, exposing
	// the historical drop-acknowledged-creates behavior for A/B runs.
	NoIntentLog bool
	// RecoverCut, when positive, cuts the power a second time at the
	// Nth device I/O of the recovery itself (remount, intent replay,
	// survivor write-back), then recovers again from the merged crash
	// state — the crash-under-recovery sweep. Replay must be
	// idempotent for this to converge.
	RecoverCut int64
	// TearSubBlock makes the cut tear single-block writes to a random
	// byte prefix — the sector-granular tear through an inode table or
	// allocation bitmap that the per-record checksums must catch.
	TearSubBlock bool
	// NoVectorIO restores the flat staging-buffer I/O paths for the
	// exercise. The default (false) runs vectored — scatter-gather
	// requests whose torn prefixes may end mid-iovec — so the A/B pair
	// shows crash safety is independent of the transfer form.
	NoVectorIO bool
}

// CrashResult is what one exercise observed.
type CrashResult struct {
	// CutIO is the device I/O ordinal the cut actually tripped at.
	CutIO int64
	// Acked counts block writes acknowledged before the cut; Issued
	// includes writes in flight or issued into the dying machine.
	Acked, Issued int
	// LostAcked counts acknowledged writes missing after recovery —
	// must be zero under a persistent (UPS/NVRAM) policy.
	LostAcked int
	// LossWindow is the age of the oldest lost acknowledged write at
	// the cut (zero when nothing was lost).
	LossWindow time.Duration
	// Survivors/Replayed/Dropped trace the NVRAM replay path.
	Survivors, Replayed, Dropped int
	// DirBlocks counts directory/symlink survivors superseded by the
	// intent replay (their content is rebuilt from intents instead).
	DirBlocks int
	// Intents counts unretired namespace intents that survived the cut
	// in battery-backed memory; LostIntents those a volatile policy
	// lost, with IntentLossWindow the age of the oldest.
	Intents          int
	LostIntents      int
	IntentLossWindow time.Duration
	// IntentsApplied/IntentsNoop/IntentsDropped classify the replay of
	// the surviving intents.
	IntentsApplied, IntentsNoop, IntentsDropped int
	// NamespaceOps counts acknowledged namespace operations;
	// NamespaceLost those missing (or resurrected) after recovery —
	// must be zero under a persistent policy with the intent log on.
	NamespaceOps, NamespaceLost int
	// DeadMember is the member the death axis killed (-1 none);
	// KillIO the device I/O ordinal the death tripped at.
	DeadMember int
	KillIO     int64
	// ParityRecords/ParityApplied trace the battery-backed partial-
	// parity log across the crash (degraded parity arrays only): how
	// many in-flight column records survived the cut, and how many
	// the recovery replayed to close the RAID-5 write hole.
	ParityRecords, ParityApplied int
	// SecondCutIO is the recovery-time cut ordinal (RecoverCut runs).
	SecondCutIO int64
	// Recovery reports the layouts' own recovery work.
	Recovery layout.RecoveryStats
	// FsckErrors holds post-recovery consistency violations (must be
	// empty).
	FsckErrors []string
}

const crashFileBlocks = 8

// journal tracks, per (file, block), the newest acknowledged-before-
// cut version and the newest issued version, with ack times.
type journal struct {
	mu     sync.Mutex
	acked  map[[2]int]byte
	issued map[[2]int]byte
	ackAt  map[[2]int]time.Time
}

func crashPath(i int) string { return fmt.Sprintf("/crash-f%d", i) }

// nsOp is one journaled namespace operation. A create carries a
// one-block body (tagged with tag) written right after — the
// create+write sequence whose durability the intent log guarantees.
type nsOp struct {
	kind        string // create, rename, remove
	path, path2 string
	tag         byte
}

// nsJournal drives and records the namespace workload. The workload
// is a single task, so the ops are totally ordered and at most the
// final ones are issued-but-unacknowledged.
type nsJournal struct {
	mu    sync.Mutex
	ops   []nsOp
	acked int      // ops[:acked] were acknowledged before the cut
	queue []string // live paths of the issued model, oldest first
	tags  map[string]byte
	next  int
}

func newNSJournal() *nsJournal { return &nsJournal{tags: map[string]byte{}} }

// step issues the next namespace operation and journals its outcome.
func (nj *nsJournal) step(t sched.Task, v *fsys.Volume, plan *device.FaultPlan) {
	nj.mu.Lock()
	k := nj.next
	nj.next++
	var op nsOp
	switch {
	case k%4 == 2 && len(nj.queue) > 0:
		p := nj.queue[0]
		op = nsOp{kind: "rename", path: p, path2: p + "m", tag: nj.tags[p]}
	case k%4 == 3 && len(nj.queue) > 0:
		p := nj.queue[0]
		op = nsOp{kind: "remove", path: p, tag: nj.tags[p]}
	default:
		op = nsOp{kind: "create", path: fmt.Sprintf("/ns-%d", k), tag: byte(100 + k%100)}
	}
	nj.ops = append(nj.ops, op)
	wasAcked := nj.acked == len(nj.ops)-1
	nj.mu.Unlock()

	var err error
	switch op.kind {
	case "create":
		var h *fsys.Handle
		h, err = v.Create(t, op.path, core.TypeRegular)
		if err == nil {
			buf := crashBlock(int(op.tag), 0, 1)
			err = v.WriteAt(t, h, 0, buf, core.BlockSize)
			if cerr := v.Close(t, h); err == nil {
				err = cerr
			}
		}
	case "rename":
		err = v.Rename(t, op.path, op.path2)
	case "remove":
		err = v.Remove(t, op.path)
	}
	if err != nil || plan.HasCut() || !wasAcked {
		return // not acknowledged
	}
	nj.mu.Lock()
	switch op.kind {
	case "create":
		nj.queue = append(nj.queue, op.path)
		nj.tags[op.path] = op.tag
	case "rename":
		nj.queue[0] = op.path2
		nj.tags[op.path2] = op.tag
		delete(nj.tags, op.path)
	case "remove":
		nj.queue = nj.queue[1:]
		delete(nj.tags, op.path)
	}
	nj.acked = len(nj.ops)
	nj.mu.Unlock()
}

func crashBlock(file, blk int, ver byte) []byte {
	buf := make([]byte, core.BlockSize)
	for i := range buf {
		buf[i] = ver
	}
	buf[0], buf[1] = byte(file), byte(blk)
	return buf
}

// RunCrashPoint builds a fresh server, lays a durable baseline, runs
// the journaled workload into a power cut, recovers, and verifies.
func RunCrashPoint(spec CrashSpec) (*CrashResult, error) {
	if spec.Files <= 0 {
		spec.Files = 6
	}
	if spec.Rounds <= 0 {
		spec.Rounds = 200
	}
	if spec.Volumes <= 0 {
		spec.Volumes = 1
	}
	cluster := spec.ClusterRunBlocks
	if cluster < 1 {
		cluster = -1 // pfs.Config: negative = clustering off
	}
	cfg := Config{
		Path:             filepath.Join(spec.Dir, "crash.img"),
		Blocks:           2048,
		Volumes:          spec.Volumes,
		Placement:        spec.Placement,
		StripeBlocks:     spec.StripeBlocks,
		CacheBlocks:      96,
		CacheShards:      1,
		Flush:            spec.Flush,
		SegBlocks:        64,
		Layout:           spec.Layout,
		Seed:             spec.Seed,
		ClusterRunBlocks: cluster,
		// The plan is installed with the cut disarmed; the workload
		// arms it after the baseline is durable.
		Fault:       &device.FaultConfig{Seed: spec.Seed},
		NoIntentLog: spec.NoIntentLog,
		NoVectorIO:  spec.NoVectorIO,
	}
	srv, err := Open(cfg)
	if err != nil {
		return nil, err
	}

	// Durable baseline: every file exists with version-1 blocks and a
	// completed sync, so the crash window contains only data writes —
	// the objects the paper's policies protect.
	err = srv.Do(func(t sched.Task) error {
		v := srv.Vol
		for f := 0; f < spec.Files; f++ {
			h, err := v.Create(t, crashPath(f), core.TypeRegular)
			if err != nil {
				return err
			}
			for b := 0; b < crashFileBlocks; b++ {
				buf := crashBlock(f, b, 1)
				if err := v.WriteAt(t, h, int64(b)*core.BlockSize, buf, core.BlockSize); err != nil {
					return err
				}
			}
			if err := v.Close(t, h); err != nil {
				return err
			}
		}
		return srv.FS.SyncAll(t)
	})
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("crash baseline: %w", err)
	}

	// Arm the cut, counting I/Os from here.
	fc := device.FaultConfig{
		Seed: spec.Seed, CutAfterIO: spec.CutAfterIO, CutTearsWrite: true,
		CutTearsSubBlock: spec.TearSubBlock,
	}
	if spec.Kill && spec.KillAfterIO > 0 {
		fc.KillAfterIO, fc.KillMember = spec.KillAfterIO, spec.KillMember
	}
	plan := device.NewFaultPlan(fc)
	plan.OnCut(srv.Cache.PowerOff)
	if spec.Kill {
		plan.OnKill(func(m int) { _ = srv.Array.KillMember(m) })
	}
	for _, drv := range srv.Drivers {
		drv.SetInjector(plan)
	}
	if spec.Kill && spec.KillAfterIO <= 0 {
		// Death before the window's first I/O: the whole crash window
		// runs degraded.
		if err := srv.Array.KillMember(spec.KillMember); err != nil {
			srv.Close()
			return nil, fmt.Errorf("crash kill: %w", err)
		}
		plan.Kill(spec.KillMember)
	}

	j := &journal{
		acked:  map[[2]int]byte{},
		issued: map[[2]int]byte{},
		ackAt:  map[[2]int]time.Time{},
	}
	for f := 0; f < spec.Files; f++ {
		for b := 0; b < crashFileBlocks; b++ {
			j.acked[[2]int{f, b}] = 1
			j.issued[[2]int{f, b}] = 1
			j.ackAt[[2]int{f, b}] = time.Now()
		}
	}

	nj := newNSJournal()
	cutCh := make(chan struct{})
	plan.OnCut(func() { close(cutCh) })
	done := make(chan struct{})
	srv.K.Go("crash.workload", func(t sched.Task) {
		defer close(done)
		v := srv.Vol
		handles := make(map[int]*fsys.Handle)
		for f := 0; f < spec.Files; f++ {
			h, err := v.Open(t, crashPath(f))
			if err != nil {
				return
			}
			handles[f] = h
		}
		for r := 0; r < spec.Rounds && !plan.HasCut(); r++ {
			if spec.Namespace && r%3 == 2 {
				nj.step(t, v, plan)
				if plan.HasCut() {
					break
				}
			}
			f := r % spec.Files
			b := (r / spec.Files) % crashFileBlocks
			key := [2]int{f, b}
			j.mu.Lock()
			ver := j.issued[key] + 1
			j.issued[key] = ver
			j.mu.Unlock()
			buf := crashBlock(f, b, ver)
			err := v.WriteAt(t, handles[f], int64(b)*core.BlockSize, buf, core.BlockSize)
			if err != nil {
				return // the machine is dying; stop issuing
			}
			if !plan.HasCut() {
				j.mu.Lock()
				j.acked[key] = ver
				j.ackAt[key] = time.Now()
				j.mu.Unlock()
			}
			if r%8 == 7 {
				t.Sleep(time.Millisecond) // let the update daemon age blocks
			}
		}
	})

	select {
	case <-done:
		// Workload drained without tripping the cut (or died): crash
		// at quiescence.
		plan.Cut()
	case <-cutCh:
	}
	crashAt := time.Now()
	rep := srv.Crash()
	// With the kernel halted, dump the battery-backed partial-parity
	// records next to the cache's survivors: they are what a degraded
	// parity array needs to close the write hole on recovery.
	precs := srv.Array.PendingParity()
	res := &CrashResult{
		CutIO:            plan.CutIO(),
		Survivors:        len(rep.Survivors),
		Intents:          len(rep.Intents),
		LostIntents:      rep.LostIntents,
		IntentLossWindow: rep.IntentLossWindow,
		DeadMember:       srv.Array.DeadMember(),
		KillIO:           plan.KillIO(),
		ParityRecords:    len(precs),
	}
	j.mu.Lock()
	res.Acked = len(j.acked)
	res.Issued = len(j.issued)
	j.mu.Unlock()

	// Dump the battery-backed intents the way an NVRAM region would be
	// read off at boot — the artifact cmd/fsck -intents verifies.
	if len(rep.Intents) > 0 && spec.Dir != "" {
		_ = os.WriteFile(filepath.Join(spec.Dir, "intents.bin"),
			cache.EncodeIntents(rep.Intents), 0o644)
	}

	// Power restored: recover on a fresh server over the same images.
	// A member the death axis killed stays dead across the reboot —
	// its image is stale — so the mount is the degraded reopen and
	// every verification read goes through the redundancy.
	cfg.Fault = nil
	cfg.Recover = true
	if res.DeadMember >= 0 {
		cfg.Dead = []int{res.DeadMember}
	}
	surv, intents := rep.Survivors, rep.Intents
	if spec.RecoverCut > 0 {
		surv, intents, precs = crashUnderRecovery(cfg, spec, rep, res, precs)
	}
	srv2, err := Open(cfg)
	if err != nil {
		return res, fmt.Errorf("recovery mount: %w", err)
	}
	defer srv2.Close()
	if srv2.Recovery != nil {
		res.Recovery = *srv2.Recovery
	}
	err = srv2.Do(func(t sched.Task) error {
		// The partial-parity records must land before the survivor
		// replay: they re-establish the degraded columns' parity so the
		// replay's read-modify-writes fold a consistent parity forward.
		n, perr := srv2.Array.ReplayParity(t, precs)
		res.ParityApplied = n
		if perr != nil {
			return fmt.Errorf("parity replay: %w", perr)
		}
		st, err := srv2.FS.ReplayNVRAM(t, surv, intents)
		res.Replayed, res.Dropped, res.DirBlocks = st.Replayed, st.Dropped, st.DirBlocks
		res.IntentsApplied, res.IntentsNoop, res.IntentsDropped =
			st.IntentsApplied, st.IntentsNoop, st.IntentsDropped
		if err != nil {
			return err
		}
		return srv2.FS.SyncAll(t)
	})
	if err != nil {
		return res, fmt.Errorf("NVRAM replay: %w", err)
	}

	// fsck every live member, then verify the journal. The dead
	// member's image is stale by definition; its share is checked
	// through the parity/mirror reads the journal verification does.
	err = srv2.Do(func(t sched.Task) error {
		deadm := srv2.Array.DeadMember()
		for i, sub := range srv2.Array.Subs() {
			if i == deadm {
				continue
			}
			switch l := sub.(type) {
			case *lfs.LFS:
				for _, e := range l.Check(t) {
					res.FsckErrors = append(res.FsckErrors, e.Error())
				}
			case *ffs.FFS:
				for _, e := range l.Check(t) {
					res.FsckErrors = append(res.FsckErrors, e.Error())
				}
			}
		}
		if err := verifyJournal(t, srv2, spec, j, crashAt, res); err != nil {
			return err
		}
		if spec.Namespace {
			verifyNamespace(t, srv2, spec, nj, res)
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	return res, nil
}

// crashUnderRecovery runs the recovery with a second armed power cut
// and returns the crash state the *final* recovery must work from:
// the original report if the second cut preempted everything, or the
// merge of both reports if the cut interrupted the replay midway.
func crashUnderRecovery(cfg Config, spec CrashSpec, rep *cache.CrashReport, res *CrashResult, precs []volume.ParityRecord) ([]cache.Survivor, []cache.Intent, []volume.ParityRecord) {
	cfg.Fault = &device.FaultConfig{
		Seed: spec.Seed + 1, CutAfterIO: spec.RecoverCut, CutTearsWrite: true,
	}
	mid, err := Open(cfg)
	if err != nil {
		// The cut tripped inside the recovery mount itself: nothing
		// new was acknowledged, the original report stands.
		res.SecondCutIO = spec.RecoverCut
		return rep.Survivors, rep.Intents, precs
	}
	rerr := mid.Do(func(t sched.Task) error {
		if _, err := mid.Array.ReplayParity(t, precs); err != nil {
			return err
		}
		if _, err := mid.FS.ReplayNVRAM(t, rep.Survivors, rep.Intents); err != nil {
			return err
		}
		return mid.FS.SyncAll(t)
	})
	if rerr == nil && !mid.Fault.HasCut() {
		// Recovery outran the cut point; close cleanly. The final
		// recovery re-replays over finished state — the idempotence
		// case.
		mid.Close()
		return rep.Survivors, rep.Intents, precs
	}
	res.SecondCutIO = mid.Fault.CutIO()
	rep2 := mid.Crash()
	// Parity records torn a second time: the ORIGINAL record for a
	// column wins (its pp was computed against consistent state; the
	// interrupted recovery's re-records read possibly-torn cells).
	precs2 := mergeParity(precs, mid.Array.PendingParity())
	surv, intents := mergeCrashState(rep, rep2)
	return surv, intents, precs2
}

// mergeParity keeps, per column, the earliest record across both
// crashes — the one computed against consistent media.
func mergeParity(a, b []volume.ParityRecord) []volume.ParityRecord {
	type key struct {
		f    core.FileID
		s, o int64
	}
	seen := map[key]bool{}
	out := append([]volume.ParityRecord(nil), a...)
	for _, r := range a {
		seen[key{r.File, r.Stripe, r.Offset}] = true
	}
	for _, r := range b {
		if !seen[key{r.File, r.Stripe, r.Offset}] {
			out = append(out, r)
		}
	}
	return out
}

// mergeCrashState combines two crash reports: the later report's
// survivors win per block, and its intents (re-recorded during the
// interrupted replay) are renumbered after the first report's so the
// concatenation replays in chronological order.
func mergeCrashState(a, b *cache.CrashReport) ([]cache.Survivor, []cache.Intent) {
	idx := map[core.BlockKey]int{}
	surv := append([]cache.Survivor(nil), a.Survivors...)
	for i, s := range surv {
		idx[s.Key] = i
	}
	for _, s := range b.Survivors {
		if i, ok := idx[s.Key]; ok {
			surv[i] = s
		} else {
			idx[s.Key] = len(surv)
			surv = append(surv, s)
		}
	}
	sort.Slice(surv, func(i, j int) bool {
		x, y := surv[i].Key, surv[j].Key
		if x.Vol != y.Vol {
			return x.Vol < y.Vol
		}
		if x.File != y.File {
			return x.File < y.File
		}
		return x.Blk < y.Blk
	})
	var base uint64
	for _, it := range a.Intents {
		if it.Seq > base {
			base = it.Seq
		}
	}
	intents := append([]cache.Intent(nil), a.Intents...)
	for _, it := range b.Intents {
		it.Seq += base
		intents = append(intents, it)
	}
	return surv, intents
}

// RebuildCrashSpec configures one crash-during-rebuild exercise: lose
// a member, rebuild it online, and cut the power at an arbitrary
// device I/O of the rebuild itself.
type RebuildCrashSpec struct {
	Dir       string
	Layout    string
	Volumes   int
	Placement string
	// StripeBlocks is the redundant chunk width (0 = default).
	StripeBlocks int
	// KillMember is the member declared dead before the rebuild.
	KillMember int
	// CutAfterIO trips the power cut at the Nth device I/O issued by
	// the rebuild (0 = never: the control run, which must converge
	// without a crash).
	CutAfterIO int64
	// Files sizes the dataset (default 4, crashFileBlocks blocks each).
	Files int
	Seed  int64
}

// RebuildCrashResult is what one exercise observed.
type RebuildCrashResult struct {
	// CutIO is the rebuild I/O ordinal the cut tripped at (0: the
	// rebuild outran the cut point).
	CutIO int64
	// Interrupted reports whether the power cut tripped mid-rebuild;
	// RebuildErr carries the first rebuild's error when it failed.
	Interrupted bool
	RebuildErr  string
	// Scrub is the final full-array consistency scan: Mismatches and
	// Skipped must be zero on the converged array.
	Scrub volume.ScrubStats
	// FsckErrors holds post-convergence violations (must be empty).
	FsckErrors []string
}

// RunRebuildCrash drives the crash-during-rebuild cell: build a
// dataset, kill a member, update the survivors degraded, then rebuild
// the member online with a power cut armed at an arbitrary rebuild
// I/O. Whatever the cut leaves behind — a half-copied replacement
// image, a torn survivor checkpoint — recovery reopens (degraded if
// the rebuild had not completed), rebuilds again from scratch, and
// must converge to an fsck-clean, scrub-clean array holding exactly
// the acknowledged data. The rebuild's correctness argument makes
// this safe at ANY cut point: the replacement is write-only state,
// the survivors still hold every byte.
func RunRebuildCrash(spec RebuildCrashSpec) (*RebuildCrashResult, error) {
	if spec.Files <= 0 {
		spec.Files = 4
	}
	if spec.Volumes <= 0 {
		spec.Volumes = 3
	}
	cfg := Config{
		Path:         filepath.Join(spec.Dir, "rebuild.img"),
		Blocks:       2048,
		Volumes:      spec.Volumes,
		Placement:    spec.Placement,
		StripeBlocks: spec.StripeBlocks,
		CacheBlocks:  96,
		CacheShards:  1,
		SegBlocks:    64,
		Layout:       spec.Layout,
		Seed:         spec.Seed,
	}
	srv, err := Open(cfg)
	if err != nil {
		return nil, err
	}

	// Versioned dataset: v1 everywhere, then — degraded — v2 over a
	// deterministic subset. Everything is acknowledged and synced, so
	// the armed cut counts rebuild I/Os only and recovery has nothing
	// to replay but the rebuild's own state.
	want := make(map[[2]int]byte)
	err = srv.Do(func(t sched.Task) error {
		v := srv.Vol
		for f := 0; f < spec.Files; f++ {
			h, err := v.Create(t, crashPath(f), core.TypeRegular)
			if err != nil {
				return err
			}
			for b := 0; b < crashFileBlocks; b++ {
				if err := v.WriteAt(t, h, int64(b)*core.BlockSize, crashBlock(f, b, 1), core.BlockSize); err != nil {
					return err
				}
				want[[2]int{f, b}] = 1
			}
			if err := v.Close(t, h); err != nil {
				return err
			}
		}
		return srv.FS.SyncAll(t)
	})
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("rebuild baseline: %w", err)
	}
	if err := srv.KillMember(spec.KillMember); err != nil {
		srv.Close()
		return nil, err
	}
	err = srv.Do(func(t sched.Task) error {
		v := srv.Vol
		for f := 0; f < spec.Files; f++ {
			h, err := v.Open(t, crashPath(f))
			if err != nil {
				return err
			}
			for b := 0; b < crashFileBlocks; b += 2 {
				if err := v.WriteAt(t, h, int64(b)*core.BlockSize, crashBlock(f, b, 2), core.BlockSize); err != nil {
					return err
				}
				want[[2]int{f, b}] = 2
			}
			if err := v.Close(t, h); err != nil {
				return err
			}
		}
		return srv.FS.SyncAll(t)
	})
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("degraded update: %w", err)
	}

	// Arm the cut over the members' drivers and rebuild. (The
	// replacement's own driver, stood up mid-rebuild, bypasses the
	// plan — a torn replacement image is exactly the state the
	// recovery must shrug off.)
	plan := device.NewFaultPlan(device.FaultConfig{
		Seed: spec.Seed, CutAfterIO: spec.CutAfterIO, CutTearsWrite: true,
	})
	plan.OnCut(srv.Cache.PowerOff)
	for _, drv := range srv.Drivers {
		drv.SetInjector(plan)
	}
	res := &RebuildCrashResult{}
	if rerr := srv.RebuildMember(spec.KillMember); rerr != nil {
		res.RebuildErr = rerr.Error()
	}
	res.CutIO = plan.CutIO()
	res.Interrupted = plan.HasCut()
	degraded := srv.Array.Degraded()
	rep := srv.Crash()
	precs := srv.Array.PendingParity()

	cfg.Recover = true
	if degraded {
		cfg.Dead = []int{spec.KillMember}
	}
	srv2, err := Open(cfg)
	if err != nil {
		return res, fmt.Errorf("recovery mount: %w", err)
	}
	defer srv2.Close()
	err = srv2.Do(func(t sched.Task) error {
		if _, err := srv2.Array.ReplayParity(t, precs); err != nil {
			return err
		}
		if _, err := srv2.FS.ReplayNVRAM(t, rep.Survivors, rep.Intents); err != nil {
			return err
		}
		return srv2.FS.SyncAll(t)
	})
	if err != nil {
		return res, fmt.Errorf("recovery replay: %w", err)
	}
	if srv2.Array.Degraded() {
		if err := srv2.RebuildMember(spec.KillMember); err != nil {
			return res, fmt.Errorf("converging rebuild: %w", err)
		}
	}

	// The converged array must be healthy, fsck-clean, scrub-clean and
	// hold exactly the acknowledged versions.
	err = srv2.Do(func(t sched.Task) error {
		for _, sub := range srv2.Array.Subs() {
			switch l := sub.(type) {
			case *lfs.LFS:
				for _, e := range l.Check(t) {
					res.FsckErrors = append(res.FsckErrors, e.Error())
				}
			case *ffs.FFS:
				for _, e := range l.Check(t) {
					res.FsckErrors = append(res.FsckErrors, e.Error())
				}
			}
		}
		st, err := srv2.Array.Scrub(t, false)
		if err != nil {
			return err
		}
		res.Scrub = st
		if st.Mismatches > 0 || st.Skipped > 0 {
			res.FsckErrors = append(res.FsckErrors, fmt.Sprintf(
				"scrub after rebuild: %d mismatch(es), %d block(s) unverifiable", st.Mismatches, st.Skipped))
		}
		v := srv2.Vol
		buf := make([]byte, core.BlockSize)
		for f := 0; f < spec.Files; f++ {
			h, err := v.Open(t, crashPath(f))
			if err != nil {
				return fmt.Errorf("file %d lost after rebuild: %w", f, err)
			}
			for b := 0; b < crashFileBlocks; b++ {
				if _, err := v.ReadAt(t, h, int64(b)*core.BlockSize, buf, core.BlockSize); err != nil {
					return fmt.Errorf("read f%d/b%d: %w", f, b, err)
				}
				wantv := want[[2]int{f, b}]
				if buf[0] != byte(f) || buf[1] != byte(b) || buf[2] != wantv {
					res.FsckErrors = append(res.FsckErrors, fmt.Sprintf(
						"f%d/b%d: want v%d, have tags %d/%d v%d", f, b, wantv, buf[0], buf[1], buf[2]))
				}
			}
			v.Close(t, h)
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	return res, nil
}

// AutoRebuildCrashSpec configures one crash-during-supervised-repair
// exercise: a self-healing server (hot spare attached, supervisor on)
// loses a member at the fault seam, serves a degraded update, then
// runs the supervised repair — isolate, promote the spare, rebuild,
// scrub-verify — with a power cut armed at an arbitrary device I/O of
// the repair itself.
type AutoRebuildCrashSpec struct {
	Dir       string
	Layout    string
	Volumes   int
	Placement string
	// StripeBlocks is the redundant chunk width (0 = default).
	StripeBlocks int
	// KillMember is the member killed at the fault seam.
	KillMember int
	// CutAfterIO trips the power cut at the Nth device I/O after the
	// supervised repair is triggered (0 = never: the control run,
	// which must heal and converge without a crash).
	CutAfterIO int64
	// Files sizes the dataset (default 4, crashFileBlocks blocks each).
	Files int
	Seed  int64
}

// AutoRebuildCrashResult is what one exercise observed.
type AutoRebuildCrashResult struct {
	// CutIO is the I/O ordinal the cut tripped at (0: the repair
	// outran the cut point).
	CutIO int64
	// Interrupted reports whether the power cut tripped mid-repair.
	Interrupted bool
	// Heal is the supervised repair's event: Err carries the repair's
	// failure when the cut interrupted it.
	Heal HealEvent
	// Scrub is the final full-array consistency scan: Mismatches and
	// Skipped must be zero on the converged array.
	Scrub volume.ScrubStats
	// FsckErrors holds post-convergence violations (must be empty).
	FsckErrors []string
}

// RunAutoRebuildCrash drives the crash-during-supervised-repair cell.
// Unlike RunRebuildCrash, the repair here is the server's own: the
// spare was pre-provisioned at Open, the kill lands at the fault seam
// (so the array self-isolates from live evidence), and the rebuild
// target is the promoted spare — whose image adoption (the rename
// onto the member path) is itself exposed to the cut. Whatever state
// the cut leaves — a half-rebuilt spare still at its pool path, or an
// adopted member image mid-copy — recovery must reopen (degraded if
// the repair had not completed), rebuild from the survivors, and
// converge to an fsck-clean, scrub-clean array holding exactly the
// acknowledged data.
func RunAutoRebuildCrash(spec AutoRebuildCrashSpec) (*AutoRebuildCrashResult, error) {
	if spec.Files <= 0 {
		spec.Files = 4
	}
	if spec.Volumes <= 0 {
		spec.Volumes = 3
	}
	cfg := Config{
		Path:         filepath.Join(spec.Dir, "autorebuild.img"),
		Blocks:       2048,
		Volumes:      spec.Volumes,
		Placement:    spec.Placement,
		StripeBlocks: spec.StripeBlocks,
		CacheBlocks:  96,
		CacheShards:  1,
		SegBlocks:    64,
		Layout:       spec.Layout,
		Seed:         spec.Seed,
		Spares:       1,
		SelfHeal:     true,
		// The sweep drives the repair synchronously through the manual
		// override; an hour-long tick keeps the background Observe from
		// racing the cut arming.
		HealthInterval: time.Hour,
		Fault:          &device.FaultConfig{Seed: spec.Seed, CutTearsWrite: true},
	}
	srv, err := Open(cfg)
	if err != nil {
		return nil, err
	}

	// Versioned dataset: v1 everywhere, synced durable.
	want := make(map[[2]int]byte)
	err = srv.Do(func(t sched.Task) error {
		v := srv.Vol
		for f := 0; f < spec.Files; f++ {
			h, err := v.Create(t, crashPath(f), core.TypeRegular)
			if err != nil {
				return err
			}
			for b := 0; b < crashFileBlocks; b++ {
				if err := v.WriteAt(t, h, int64(b)*core.BlockSize, crashBlock(f, b, 1), core.BlockSize); err != nil {
					return err
				}
				want[[2]int{f, b}] = 1
			}
			if err := v.Close(t, h); err != nil {
				return err
			}
		}
		return srv.FS.SyncAll(t)
	})
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("autorebuild baseline: %w", err)
	}

	// The member dies at the fault seam; the degraded update lands on
	// the survivors (the array self-isolates on the first dead error),
	// synced durable — so the dead member is genuinely stale and the
	// armed cut counts repair I/Os only.
	srv.Fault.Kill(spec.KillMember)
	err = srv.Do(func(t sched.Task) error {
		v := srv.Vol
		for f := 0; f < spec.Files; f++ {
			h, err := v.Open(t, crashPath(f))
			if err != nil {
				return err
			}
			for b := 0; b < crashFileBlocks; b += 2 {
				if err := v.WriteAt(t, h, int64(b)*core.BlockSize, crashBlock(f, b, 2), core.BlockSize); err != nil {
					return err
				}
				want[[2]int{f, b}] = 2
			}
			if err := v.Close(t, h); err != nil {
				return err
			}
		}
		return srv.FS.SyncAll(t)
	})
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("degraded update: %w", err)
	}

	// Arm the cut and run the supervised repair to its end (success or
	// the cut's interruption — MarkMemberDead drives the heal inline).
	srv.Fault.ArmCut(spec.CutAfterIO)
	res := &AutoRebuildCrashResult{}
	if err := srv.MarkMemberDead(spec.KillMember); err != nil {
		srv.Close()
		return nil, fmt.Errorf("mark dead: %w", err)
	}
	if evs := srv.HealEvents(); len(evs) > 0 {
		res.Heal = evs[len(evs)-1]
	}
	res.CutIO = srv.Fault.CutIO()
	res.Interrupted = srv.Fault.HasCut()
	degraded := srv.Array.Degraded()
	rep := srv.Crash()
	precs := srv.Array.PendingParity()

	// Power restored: the self-heal machinery stays off for the
	// converging pass — the question is whether the images recover.
	cfg.Fault = nil
	cfg.SelfHeal = false
	cfg.Spares = 0
	cfg.Recover = true
	if degraded {
		cfg.Dead = []int{spec.KillMember}
	}
	srv2, err := Open(cfg)
	if err != nil {
		return res, fmt.Errorf("recovery mount: %w", err)
	}
	defer srv2.Close()
	err = srv2.Do(func(t sched.Task) error {
		if _, err := srv2.Array.ReplayParity(t, precs); err != nil {
			return err
		}
		if _, err := srv2.FS.ReplayNVRAM(t, rep.Survivors, rep.Intents); err != nil {
			return err
		}
		return srv2.FS.SyncAll(t)
	})
	if err != nil {
		return res, fmt.Errorf("recovery replay: %w", err)
	}
	if srv2.Array.Degraded() {
		if err := srv2.RebuildMember(spec.KillMember); err != nil {
			return res, fmt.Errorf("converging rebuild: %w", err)
		}
	}

	// The converged array must be healthy, fsck-clean, scrub-clean and
	// hold exactly the acknowledged versions.
	err = srv2.Do(func(t sched.Task) error {
		for _, sub := range srv2.Array.Subs() {
			switch l := sub.(type) {
			case *lfs.LFS:
				for _, e := range l.Check(t) {
					res.FsckErrors = append(res.FsckErrors, e.Error())
				}
			case *ffs.FFS:
				for _, e := range l.Check(t) {
					res.FsckErrors = append(res.FsckErrors, e.Error())
				}
			}
		}
		st, err := srv2.Array.Scrub(t, false)
		if err != nil {
			return err
		}
		res.Scrub = st
		if st.Mismatches > 0 || st.Skipped > 0 {
			res.FsckErrors = append(res.FsckErrors, fmt.Sprintf(
				"scrub after auto-rebuild: %d mismatch(es), %d block(s) unverifiable", st.Mismatches, st.Skipped))
		}
		v := srv2.Vol
		buf := make([]byte, core.BlockSize)
		for f := 0; f < spec.Files; f++ {
			h, err := v.Open(t, crashPath(f))
			if err != nil {
				return fmt.Errorf("file %d lost after auto-rebuild: %w", f, err)
			}
			for b := 0; b < crashFileBlocks; b++ {
				if _, err := v.ReadAt(t, h, int64(b)*core.BlockSize, buf, core.BlockSize); err != nil {
					return fmt.Errorf("read f%d/b%d: %w", f, b, err)
				}
				wantv := want[[2]int{f, b}]
				if buf[0] != byte(f) || buf[1] != byte(b) || buf[2] != wantv {
					res.FsckErrors = append(res.FsckErrors, fmt.Sprintf(
						"f%d/b%d: want v%d, have tags %d/%d v%d", f, b, wantv, buf[0], buf[1], buf[2]))
				}
			}
			v.Close(t, h)
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	return res, nil
}

// verifyNamespace checks every journaled namespace operation against
// the recovered tree. Acknowledged state must be exactly present: a
// created file exists with its full tagged body, a removed or
// renamed-away path stays absent. Paths the unacknowledged tail
// touched may land either way. Violations count as NamespaceLost and
// — under a persistent policy with the intent log on — as errors.
func verifyNamespace(t sched.Task, srv *Server, spec CrashSpec, nj *nsJournal, res *CrashResult) {
	nj.mu.Lock()
	ops := append([]nsOp(nil), nj.ops...)
	acked := nj.acked
	nj.mu.Unlock()
	res.NamespaceOps = acked

	type fstate struct {
		exists bool
		tag    byte
	}
	want := map[string]fstate{}
	for _, op := range ops[:acked] {
		switch op.kind {
		case "create":
			want[op.path] = fstate{exists: true, tag: op.tag}
		case "rename":
			want[op.path] = fstate{}
			want[op.path2] = fstate{exists: true, tag: op.tag}
		case "remove":
			want[op.path] = fstate{}
		}
	}
	loose := map[string]bool{}
	for _, op := range ops[acked:] {
		loose[op.path] = true
		if op.path2 != "" {
			loose[op.path2] = true
		}
	}
	paths := make([]string, 0, len(want))
	for p := range want {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	v := srv.Vol
	strict := spec.Flush.Persistent && !spec.NoIntentLog
	fail := func(format string, args ...any) {
		res.NamespaceLost++
		if strict {
			res.FsckErrors = append(res.FsckErrors, fmt.Sprintf(format, args...))
		}
	}
	for _, p := range paths {
		if loose[p] {
			continue
		}
		w := want[p]
		h, err := v.Open(t, p)
		if !w.exists {
			if err == nil {
				v.Close(t, h)
				fail("policy %s resurrected removed path %s after recovery", spec.Flush.Name, p)
			}
			continue
		}
		if err != nil {
			fail("policy %s lost acknowledged namespace op: %s missing after recovery",
				spec.Flush.Name, p)
			continue
		}
		buf := make([]byte, core.BlockSize)
		n, rerr := v.ReadAt(t, h, 0, buf, core.BlockSize)
		bad := rerr != nil || n != core.BlockSize || buf[0] != w.tag || buf[1] != 0
		if !bad {
			for i := 2; i < core.BlockSize; i++ {
				if buf[i] != 1 {
					bad = true
					break
				}
			}
		}
		v.Close(t, h)
		if bad {
			fail("policy %s lost the acknowledged body of created file %s", spec.Flush.Name, p)
		}
	}
}

// verifyJournal reads every journaled block back and classifies it.
func verifyJournal(t sched.Task, srv *Server, spec CrashSpec, j *journal, crashAt time.Time, res *CrashResult) error {
	v := srv.Vol
	persistent := spec.Flush.Persistent
	for f := 0; f < spec.Files; f++ {
		h, err := v.Open(t, crashPath(f))
		if err != nil {
			return fmt.Errorf("file %d lost entirely after recovery: %w", f, err)
		}
		for b := 0; b < crashFileBlocks; b++ {
			key := [2]int{f, b}
			buf := make([]byte, core.BlockSize)
			n, err := v.ReadAt(t, h, int64(b)*core.BlockSize, buf, core.BlockSize)
			if err != nil {
				return fmt.Errorf("read f%d/b%d: %w", f, b, err)
			}
			got := byte(0)
			if n == core.BlockSize {
				got = buf[2]
				// Torn or cross-linked content must never surface.
				if buf[0] != byte(f) || buf[1] != byte(b) {
					return fmt.Errorf("f%d/b%d: foreign content (tags %d/%d)", f, b, buf[0], buf[1])
				}
				for i := 3; i < core.BlockSize; i++ {
					if buf[i] != got {
						return fmt.Errorf("f%d/b%d: torn block surfaced (byte %d)", f, b, i)
					}
				}
			}
			j.mu.Lock()
			acked, issued, ackAt := j.acked[key], j.issued[key], j.ackAt[key]
			j.mu.Unlock()
			if got > issued {
				return fmt.Errorf("f%d/b%d: version %d from the future (issued %d)", f, b, got, issued)
			}
			if got < 1 {
				return fmt.Errorf("f%d/b%d: durable baseline lost", f, b)
			}
			if got < acked {
				res.LostAcked++
				if age := crashAt.Sub(ackAt); age > res.LossWindow {
					res.LossWindow = age
				}
				if persistent {
					res.FsckErrors = append(res.FsckErrors, fmt.Sprintf(
						"policy %s lost acknowledged write f%d/b%d (have v%d, acked v%d)",
						spec.Flush.Name, f, b, got, acked))
				}
			}
		}
		v.Close(t, h)
	}
	return nil
}
