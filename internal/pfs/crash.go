// Crash-injection harness: run a journaled write workload against a
// live PFS, cut the power at an arbitrary device I/O through the
// fault seam, then recover — remount through roll-forward/repair,
// replay the NVRAM survivors — fsck the result, and verify every
// surviving byte against the journal. This is the machinery behind
// the paper's reliability claim: under the UPS/NVRAM policies an
// acknowledged write must never be lost; under write-delay the loss
// is real and bounded by the update daemon's age limit.
package pfs

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ffs"
	"repro/internal/fsys"
	"repro/internal/layout"
	"repro/internal/lfs"
	"repro/internal/sched"
)

// CrashSpec configures one crash-recovery exercise.
type CrashSpec struct {
	// Dir is a scratch directory for the image set.
	Dir string
	// Layout is "lfs" (default) or "ffs"; Volumes the array width.
	Layout  string
	Volumes int
	// Flush is the write policy under test.
	Flush cache.FlushConfig
	// CutAfterIO trips the power cut at the Nth device I/O issued
	// after the durable baseline (0: cut when the workload ends).
	CutAfterIO int64
	// Files and Rounds size the workload (defaults 6 and 200).
	Files, Rounds int
	// Seed drives the server's policy randomness.
	Seed int64
	// ClusterRunBlocks is the clustered-transfer cap under test
	// (0 = off: the classic one-block-per-request stack; > 1 makes
	// multi-block data writes — and so torn data runs — possible).
	ClusterRunBlocks int
}

// CrashResult is what one exercise observed.
type CrashResult struct {
	// CutIO is the device I/O ordinal the cut actually tripped at.
	CutIO int64
	// Acked counts block writes acknowledged before the cut; Issued
	// includes writes in flight or issued into the dying machine.
	Acked, Issued int
	// LostAcked counts acknowledged writes missing after recovery —
	// must be zero under a persistent (UPS/NVRAM) policy.
	LostAcked int
	// LossWindow is the age of the oldest lost acknowledged write at
	// the cut (zero when nothing was lost).
	LossWindow time.Duration
	// Survivors/Replayed/Dropped trace the NVRAM replay path.
	Survivors, Replayed, Dropped int
	// Recovery reports the layouts' own recovery work.
	Recovery layout.RecoveryStats
	// FsckErrors holds post-recovery consistency violations (must be
	// empty).
	FsckErrors []string
}

const crashFileBlocks = 8

// journal tracks, per (file, block), the newest acknowledged-before-
// cut version and the newest issued version, with ack times.
type journal struct {
	mu     sync.Mutex
	acked  map[[2]int]byte
	issued map[[2]int]byte
	ackAt  map[[2]int]time.Time
}

func crashPath(i int) string { return fmt.Sprintf("/crash-f%d", i) }

func crashBlock(file, blk int, ver byte) []byte {
	buf := make([]byte, core.BlockSize)
	for i := range buf {
		buf[i] = ver
	}
	buf[0], buf[1] = byte(file), byte(blk)
	return buf
}

// RunCrashPoint builds a fresh server, lays a durable baseline, runs
// the journaled workload into a power cut, recovers, and verifies.
func RunCrashPoint(spec CrashSpec) (*CrashResult, error) {
	if spec.Files <= 0 {
		spec.Files = 6
	}
	if spec.Rounds <= 0 {
		spec.Rounds = 200
	}
	if spec.Volumes <= 0 {
		spec.Volumes = 1
	}
	cluster := spec.ClusterRunBlocks
	if cluster < 1 {
		cluster = -1 // pfs.Config: negative = clustering off
	}
	cfg := Config{
		Path:             filepath.Join(spec.Dir, "crash.img"),
		Blocks:           2048,
		Volumes:          spec.Volumes,
		CacheBlocks:      96,
		CacheShards:      1,
		Flush:            spec.Flush,
		SegBlocks:        64,
		Layout:           spec.Layout,
		Seed:             spec.Seed,
		ClusterRunBlocks: cluster,
		// The plan is installed with the cut disarmed; the workload
		// arms it after the baseline is durable.
		Fault: &device.FaultConfig{Seed: spec.Seed},
	}
	srv, err := Open(cfg)
	if err != nil {
		return nil, err
	}

	// Durable baseline: every file exists with version-1 blocks and a
	// completed sync, so the crash window contains only data writes —
	// the objects the paper's policies protect.
	err = srv.Do(func(t sched.Task) error {
		v := srv.Vol
		for f := 0; f < spec.Files; f++ {
			h, err := v.Create(t, crashPath(f), core.TypeRegular)
			if err != nil {
				return err
			}
			for b := 0; b < crashFileBlocks; b++ {
				buf := crashBlock(f, b, 1)
				if err := v.WriteAt(t, h, int64(b)*core.BlockSize, buf, core.BlockSize); err != nil {
					return err
				}
			}
			if err := v.Close(t, h); err != nil {
				return err
			}
		}
		return srv.FS.SyncAll(t)
	})
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("crash baseline: %w", err)
	}

	// Arm the cut, counting I/Os from here.
	plan := device.NewFaultPlan(device.FaultConfig{
		Seed: spec.Seed, CutAfterIO: spec.CutAfterIO, CutTearsWrite: true,
	})
	plan.OnCut(srv.Cache.PowerOff)
	for _, drv := range srv.Drivers {
		drv.SetInjector(plan)
	}

	j := &journal{
		acked:  map[[2]int]byte{},
		issued: map[[2]int]byte{},
		ackAt:  map[[2]int]time.Time{},
	}
	for f := 0; f < spec.Files; f++ {
		for b := 0; b < crashFileBlocks; b++ {
			j.acked[[2]int{f, b}] = 1
			j.issued[[2]int{f, b}] = 1
			j.ackAt[[2]int{f, b}] = time.Now()
		}
	}

	cutCh := make(chan struct{})
	plan.OnCut(func() { close(cutCh) })
	done := make(chan struct{})
	srv.K.Go("crash.workload", func(t sched.Task) {
		defer close(done)
		v := srv.Vol
		handles := make(map[int]*fsys.Handle)
		for f := 0; f < spec.Files; f++ {
			h, err := v.Open(t, crashPath(f))
			if err != nil {
				return
			}
			handles[f] = h
		}
		for r := 0; r < spec.Rounds && !plan.HasCut(); r++ {
			f := r % spec.Files
			b := (r / spec.Files) % crashFileBlocks
			key := [2]int{f, b}
			j.mu.Lock()
			ver := j.issued[key] + 1
			j.issued[key] = ver
			j.mu.Unlock()
			buf := crashBlock(f, b, ver)
			err := v.WriteAt(t, handles[f], int64(b)*core.BlockSize, buf, core.BlockSize)
			if err != nil {
				return // the machine is dying; stop issuing
			}
			if !plan.HasCut() {
				j.mu.Lock()
				j.acked[key] = ver
				j.ackAt[key] = time.Now()
				j.mu.Unlock()
			}
			if r%8 == 7 {
				t.Sleep(time.Millisecond) // let the update daemon age blocks
			}
		}
	})

	select {
	case <-done:
		// Workload drained without tripping the cut (or died): crash
		// at quiescence.
		plan.Cut()
	case <-cutCh:
	}
	crashAt := time.Now()
	rep := srv.Crash()
	res := &CrashResult{
		CutIO:     plan.CutIO(),
		Survivors: len(rep.Survivors),
	}
	j.mu.Lock()
	res.Acked = len(j.acked)
	res.Issued = len(j.issued)
	j.mu.Unlock()

	// Power restored: recover on a fresh server over the same images.
	cfg.Fault = nil
	cfg.Recover = true
	srv2, err := Open(cfg)
	if err != nil {
		return res, fmt.Errorf("recovery mount: %w", err)
	}
	defer srv2.Close()
	if srv2.Recovery != nil {
		res.Recovery = *srv2.Recovery
	}
	err = srv2.Do(func(t sched.Task) error {
		replayed, dropped, err := srv2.FS.ReplayNVRAM(t, rep.Survivors)
		res.Replayed, res.Dropped = replayed, dropped
		if err != nil {
			return err
		}
		return srv2.FS.SyncAll(t)
	})
	if err != nil {
		return res, fmt.Errorf("NVRAM replay: %w", err)
	}

	// fsck every member, then verify the journal.
	err = srv2.Do(func(t sched.Task) error {
		for _, sub := range srv2.Array.Subs() {
			switch l := sub.(type) {
			case *lfs.LFS:
				for _, e := range l.Check(t) {
					res.FsckErrors = append(res.FsckErrors, e.Error())
				}
			case *ffs.FFS:
				for _, e := range l.Check(t) {
					res.FsckErrors = append(res.FsckErrors, e.Error())
				}
			}
		}
		return verifyJournal(t, srv2, spec, j, crashAt, res)
	})
	if err != nil {
		return res, err
	}
	return res, nil
}

// verifyJournal reads every journaled block back and classifies it.
func verifyJournal(t sched.Task, srv *Server, spec CrashSpec, j *journal, crashAt time.Time, res *CrashResult) error {
	v := srv.Vol
	persistent := spec.Flush.Persistent
	for f := 0; f < spec.Files; f++ {
		h, err := v.Open(t, crashPath(f))
		if err != nil {
			return fmt.Errorf("file %d lost entirely after recovery: %w", f, err)
		}
		for b := 0; b < crashFileBlocks; b++ {
			key := [2]int{f, b}
			buf := make([]byte, core.BlockSize)
			n, err := v.ReadAt(t, h, int64(b)*core.BlockSize, buf, core.BlockSize)
			if err != nil {
				return fmt.Errorf("read f%d/b%d: %w", f, b, err)
			}
			got := byte(0)
			if n == core.BlockSize {
				got = buf[2]
				// Torn or cross-linked content must never surface.
				if buf[0] != byte(f) || buf[1] != byte(b) {
					return fmt.Errorf("f%d/b%d: foreign content (tags %d/%d)", f, b, buf[0], buf[1])
				}
				for i := 3; i < core.BlockSize; i++ {
					if buf[i] != got {
						return fmt.Errorf("f%d/b%d: torn block surfaced (byte %d)", f, b, i)
					}
				}
			}
			j.mu.Lock()
			acked, issued, ackAt := j.acked[key], j.issued[key], j.ackAt[key]
			j.mu.Unlock()
			if got > issued {
				return fmt.Errorf("f%d/b%d: version %d from the future (issued %d)", f, b, got, issued)
			}
			if got < 1 {
				return fmt.Errorf("f%d/b%d: durable baseline lost", f, b)
			}
			if got < acked {
				res.LostAcked++
				if age := crashAt.Sub(ackAt); age > res.LossWindow {
					res.LossWindow = age
				}
				if persistent {
					res.FsckErrors = append(res.FsckErrors, fmt.Sprintf(
						"policy %s lost acknowledged write f%d/b%d (have v%d, acked v%d)",
						spec.Flush.Name, f, b, got, acked))
				}
			}
		}
		v.Close(t, h)
	}
	return nil
}
