package pfs

// The self-healing supervisor: the piece that closes the
// detect → isolate → rebuild → verify loop with no operator in it.
//
//	device evidence ──▶ health.Monitor ──▶ confirmed death
//	                                            │
//	      ┌─────────────────────────────────────┘
//	      ▼
//	KillMember (usually a no-op: the array killed itself on the
//	first ErrDiskDead) ──▶ PromoteSpare (rebuild onto the pool's
//	next idle stack) ──▶ Scrub (certify the invariant) ──▶ healthy
//
// Refusals — empty pool, a second fault, a concurrent maintenance
// pass — leave the array serving degraded and are recorded as loud
// HealEvents instead of being retried blindly.
//
// The supervisor samples evidence on a plain goroutine (the monitor
// holds only plain mutexes); only the rebuild and the verify scrub
// run on kernel tasks, exactly like their manual counterparts.

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/health"
	"repro/internal/sched"
)

// defaultHealthInterval paces the supervisor's evidence sampling.
const defaultHealthInterval = 25 * time.Millisecond

// HealEvent records one supervised repair pass over a confirmed
// member death.
type HealEvent struct {
	// Member is the member that died; Spare the pool slot consumed
	// (-1 when the promotion was refused or failed).
	Member, Spare int
	// KilledAt is when the fault seam killed the member (zero when
	// the death had no injected kill, e.g. a manual override).
	KilledAt time.Time
	// DetectedAt is when the monitor confirmed the death.
	DetectedAt time.Time
	// RebuiltAt / ScrubbedAt mark the rebuild and the post-rebuild
	// verify completing (zero on refusal).
	RebuiltAt, ScrubbedAt time.Time
	// DetectMS is kill → confirmation; MTTRMS is kill (or, without a
	// kill time, confirmation) → scrubbed clean.
	DetectMS, MTTRMS float64
	// ScrubMismatches is the verify scrub's violation count (0 on a
	// clean repair).
	ScrubMismatches int64
	// Err records why the repair stopped ("" on success).
	Err string
}

// driverSource adapts a member driver's statistics to health.Source.
type driverSource struct {
	name string
	ds   *device.DriverStats
}

func (s driverSource) Name() string { return s.name }
func (s driverSource) HealthEvidence() health.Evidence {
	return health.Evidence{
		Errors:     s.ds.IOErrors.Value(),
		DeadErrors: s.ds.DeadErrors.Value(),
		SlowIOs:    s.ds.SlowIOs.Value(),
		Consec:     s.ds.ConsecutiveErrors(),
	}
}

// startSupervisor builds the health monitor over the member drivers
// and runs the repair loop. Called from Open (Config.SelfHeal) after
// the mount succeeded.
func (s *Server) startSupervisor() {
	srcs := make([]health.Source, len(s.Drivers))
	for i, drv := range s.Drivers {
		srcs[i] = driverSource{name: fmt.Sprintf("d%d", i), ds: drv.DriverStats()}
	}
	s.Monitor = health.NewMonitor(s.cfg.Health, srcs)
	s.Monitor.OnDead(func(m int) { s.heal(m) })
	if s.Fault != nil {
		// Timestamp the injected kill so HealEvents can report true
		// detection latency (the OnKill list is one-shot; promoteSpare
		// re-arms it after each Revive).
		s.Fault.OnKill(func(m int) { s.noteKill(m) })
	}
	interval := s.cfg.HealthInterval
	if interval <= 0 {
		interval = defaultHealthInterval
	}
	s.healStop = make(chan struct{})
	s.healDone = make(chan struct{})
	go func() {
		defer close(s.healDone)
		// A member declared dead before the mount (Config.Dead) never
		// produces evidence — the array routes around it — so adopt the
		// array's verdict directly.
		if dm := s.Array.DeadMember(); dm >= 0 {
			s.Monitor.MarkDead(dm)
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-s.healStop:
				return
			case <-tick.C:
				// Confirmed deaths heal inline via the OnDead callback.
				s.Monitor.Observe()
			}
		}
	}()
}

// stopSupervisor halts the repair loop and waits for an in-flight
// repair to finish (or fail — a power cut makes its I/O fail fast).
func (s *Server) stopSupervisor() {
	if s.healStop == nil {
		return
	}
	s.healStopOnce.Do(func() { close(s.healStop) })
	<-s.healDone
}

func (s *Server) noteKill(m int) {
	s.evMu.Lock()
	if s.killTimes == nil {
		s.killTimes = make(map[int]time.Time)
	}
	if _, ok := s.killTimes[m]; !ok {
		s.killTimes[m] = time.Now()
	}
	s.evMu.Unlock()
}

func (s *Server) takeKillTime(m int) (time.Time, bool) {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	t, ok := s.killTimes[m]
	if ok {
		delete(s.killTimes, m)
	}
	return t, ok
}

func (s *Server) pushHealEvent(ev HealEvent) {
	s.evMu.Lock()
	s.healEvents = append(s.healEvents, ev)
	s.evMu.Unlock()
}

// HealEvents snapshots the supervised repairs so far, in order.
func (s *Server) HealEvents() []HealEvent {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	return append([]HealEvent(nil), s.healEvents...)
}

// MarkMemberDead is the manual override: it forces the monitor's
// verdict for member m to Dead, which triggers the same supervised
// repair as an evidence-confirmed death (and blocks until it
// completes or is refused). Without a supervisor it degrades to the
// plain KillMember.
func (s *Server) MarkMemberDead(m int) error {
	if s.Monitor == nil {
		return s.KillMember(m)
	}
	if m < 0 || m >= s.Monitor.Members() {
		return fmt.Errorf("pfs: mark member %d dead of %d", m, s.Monitor.Members())
	}
	s.Monitor.MarkDead(m)
	return nil
}

// heal is one supervised repair pass, serialized by healMu (a second
// confirmed death queues behind the first repair and is then judged
// on its own merits).
func (s *Server) heal(m int) {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	ev := HealEvent{Member: m, Spare: -1, DetectedAt: time.Now()}
	if kt, ok := s.takeKillTime(m); ok {
		ev.KilledAt = kt
		ev.DetectMS = float64(ev.DetectedAt.Sub(kt)) / float64(time.Millisecond)
	}
	// Isolate. The array usually beat us here (it kills the member on
	// the first ErrDiskDead from live traffic); a refusal with some
	// OTHER member dead is the second fault — refuse loudly, keep
	// serving degraded.
	if err := s.KillMember(m); err != nil && s.Array.DeadMember() != m {
		ev.Err = fmt.Sprintf("isolate: %v", err)
		s.pushHealEvent(ev)
		return
	}
	slot, err := s.promoteSpare(m)
	if err != nil {
		ev.Err = fmt.Sprintf("promote: %v", err)
		s.pushHealEvent(ev)
		return
	}
	ev.Spare = slot
	ev.RebuiltAt = time.Now()
	st, err := s.Scrub(false)
	if err != nil {
		ev.Err = fmt.Sprintf("verify: %v", err)
		s.pushHealEvent(ev)
		return
	}
	ev.ScrubMismatches = st.Mismatches
	ev.ScrubbedAt = time.Now()
	base := ev.KilledAt
	if base.IsZero() {
		base = ev.DetectedAt
	}
	ev.MTTRMS = float64(ev.ScrubbedAt.Sub(base)) / float64(time.Millisecond)
	s.pushHealEvent(ev)
}

// promoteSpare rebuilds dead member m onto the pool's next spare and
// moves the member's identity — backing image name, driver slot,
// monitor source — over to it.
func (s *Server) promoteSpare(m int) (int, error) {
	type res struct {
		slot int
		err  error
	}
	resc := make(chan res, 1)
	s.K.Go("pfs.selfheal", func(t sched.Task) {
		slot, err := s.Array.PromoteSpare(t)
		resc <- res{slot, err}
	})
	r := <-resc
	if r.err != nil {
		return -1, r.err
	}
	// The spare's image takes over the member's name (the open
	// descriptor follows the rename), so the next Open of this
	// configuration finds the rebuilt member at the member path.
	vpath, _ := memberPath(s.cfg, m)
	spath, _ := sparePath(s.cfg, r.slot)
	if err := os.Rename(spath, vpath); err != nil {
		return r.slot, fmt.Errorf("pfs: adopt spare image for member %d: %w", m, err)
	}
	if s.Fault != nil {
		s.Fault.Revive()
		s.Fault.OnKill(func(mm int) { s.noteKill(mm) })
	}
	s.drvMu.Lock()
	drv := s.spareDrvs[r.slot]
	s.spareDrvs[r.slot] = nil
	s.retired = append(s.retired, s.Drivers[m])
	s.Drivers[m] = drv
	s.drvMu.Unlock()
	if s.Monitor != nil {
		s.Monitor.Replace(m, driverSource{name: fmt.Sprintf("d%d", m), ds: drv.DriverStats()})
	}
	return r.slot, nil
}

// healthDetail renders the /healthz supplement: per-member verdicts,
// degraded/maintenance state, and the spare pool.
func (s *Server) healthDetail() string {
	var b strings.Builder
	for _, ms := range s.Monitor.States() {
		fmt.Fprintf(&b, "member %s: %s\n", ms.Name, ms.Verdict)
	}
	if s.Array.Degraded() {
		fmt.Fprintf(&b, "degraded: member %d dead\n", s.Array.DeadMember())
	}
	if mnt := s.Array.Maintenance(); mnt != "" {
		fmt.Fprintf(&b, "maintenance: %s\n", mnt)
	}
	fmt.Fprintf(&b, "spares: %d idle\n", s.Array.SpareCount())
	return b.String()
}
