package pfs

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/health"
	"repro/internal/nfs"
	"repro/internal/sched"
)

// TestSelfHealClosedLoop is the acceptance demo: a redundant array
// with a hot spare and the supervisor on serves live NFS traffic; the
// fault seam kills a member with NO manual repair call anywhere; the
// monitor detects the death from driver evidence, promotes the spare,
// rebuilds and scrub-verifies — all while the clients keep writing —
// and every acknowledged byte reads back, including after a restart.
func TestSelfHealClosedLoop(t *testing.T) {
	base := filepath.Join(t.TempDir(), "heal.img")
	cfg := Config{
		Path: base, Blocks: 8192, CacheBlocks: 256,
		Volumes: 3, Placement: "mirrored", StripeBlocks: 2,
		Spares: 1, SelfHeal: true, HealthInterval: 5 * time.Millisecond,
		Fault: &device.FaultConfig{},
	}
	srv, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if srv.Monitor == nil || srv.Monitor.Members() != 3 {
		t.Fatalf("supervisor not running over 3 members")
	}
	addr, err := srv.ServeNFS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}

	// Live traffic: each client creates, writes and reads files in a
	// loop until told to stop, recording every acknowledged file. The
	// clients ride the transient-fault retry transport — the same one
	// a real deployment would use through a repair window.
	const clients = 4
	type acked struct {
		path    string
		payload []byte
	}
	var ackMu sync.Mutex
	var ackedFiles []acked
	stop := make(chan struct{})
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		id := i
		go func() {
			errs <- func() error {
				c, err := nfs.DialRetry(addr, nfs.RetryConfig{Attempts: 6})
				if err != nil {
					return err
				}
				defer c.Close()
				root, _, err := c.Mount(1)
				if err != nil {
					return fmt.Errorf("client %d: mount: %w", id, err)
				}
				dir, _, err := c.Mkdir(root, fmt.Sprintf("c%d", id))
				if err != nil {
					return fmt.Errorf("client %d: mkdir: %w", id, err)
				}
				// maxFiles bounds the log volume (the member logs must
				// not fill to the cleaning threshold mid-test); past it
				// the client keeps the array under read load.
				const maxFiles = 40
				for r := 0; ; r++ {
					select {
					case <-stop:
						return nil
					default:
					}
					name := fmt.Sprintf("f%d", r%maxFiles)
					payload := bytes.Repeat([]byte{byte(1 + id*31 + (r%maxFiles)%191)}, 2*core.BlockSize+511)
					if r < maxFiles {
						fh, _, err := c.Create(dir, name)
						if err != nil {
							return fmt.Errorf("client %d round %d: create: %w", id, r, err)
						}
						if _, err := c.Write(fh, 0, payload); err != nil {
							return fmt.Errorf("client %d round %d: write: %w", id, r, err)
						}
						ackMu.Lock()
						ackedFiles = append(ackedFiles, acked{fmt.Sprintf("c%d/f%d", id, r), payload})
						ackMu.Unlock()
					}
					fh, _, err := c.Lookup(dir, name)
					if err != nil {
						return fmt.Errorf("client %d round %d: lookup: %w", id, r, err)
					}
					got, err := c.Read(fh, 0, len(payload))
					if err != nil {
						return fmt.Errorf("client %d round %d: read: %w", id, r, err)
					}
					if !bytes.Equal(got, payload) {
						return fmt.Errorf("client %d round %d: read-back mismatch", id, r)
					}
				}
			}()
		}()
	}

	// Let the traffic warm up, then kill a member at the fault seam.
	// From here, no test code touches the repair path.
	time.Sleep(100 * time.Millisecond)
	const victim = 1
	srv.Fault.Kill(victim)

	var evs []HealEvent
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		if evs = srv.HealEvents(); len(evs) > 0 {
			break
		}
	}
	close(stop)
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if len(evs) == 0 {
		t.Fatal("no supervised repair within 30s of the kill")
	}
	ev := evs[0]
	if ev.Member != victim || ev.Err != "" || ev.Spare != 0 {
		t.Fatalf("heal event %+v, want member %d healed onto spare 0", ev, victim)
	}
	if ev.KilledAt.IsZero() || ev.DetectMS < 0 || ev.MTTRMS <= 0 {
		t.Fatalf("heal event timings missing: %+v", ev)
	}
	if ev.ScrubMismatches != 0 {
		t.Fatalf("verify scrub found %d mismatches", ev.ScrubMismatches)
	}
	if srv.Array.Degraded() {
		t.Fatal("array degraded after supervised repair")
	}
	if v := srv.Monitor.Verdict(victim); v != health.Healthy {
		t.Fatalf("promoted member's verdict %v, want healthy", v)
	}
	if n := srv.Array.SparePromotions(); n != 1 {
		t.Fatalf("promotions = %d, want 1", n)
	}
	if n := srv.Array.SpareCount(); n != 0 {
		t.Fatalf("%d spares idle after promotion, want 0", n)
	}
	if got := srv.Array.Origins(); got[victim] != 0 {
		t.Fatalf("origins %v, want member %d from spare 0", got, victim)
	}

	// Zero acknowledged loss: every acked file reads back through the
	// healed array.
	verify := func(addr string, tag string) {
		t.Helper()
		c, err := nfs.Dial(addr)
		if err != nil {
			t.Fatalf("%s: dial: %v", tag, err)
		}
		defer c.Close()
		root, _, err := c.Mount(1)
		if err != nil {
			t.Fatalf("%s: mount: %v", tag, err)
		}
		ackMu.Lock()
		files := append([]acked(nil), ackedFiles...)
		ackMu.Unlock()
		for _, f := range files {
			dir, name := filepath.Split(f.path)
			dfh, _, err := c.Lookup(root, filepath.Clean(dir))
			if err != nil {
				t.Fatalf("%s: lookup %s: %v", tag, dir, err)
			}
			fh, _, err := c.Lookup(dfh, name)
			if err != nil {
				t.Fatalf("%s: lookup %s: %v", tag, f.path, err)
			}
			got, err := c.Read(fh, 0, len(f.payload))
			if err != nil {
				t.Fatalf("%s: read %s: %v", tag, f.path, err)
			}
			if !bytes.Equal(got, f.payload) {
				t.Fatalf("%s: acknowledged bytes of %s lost", tag, f.path)
			}
		}
	}
	verify(addr, "healed")
	if len(ackedFiles) == 0 {
		t.Fatal("no acknowledged writes — the loop was not exercised under load")
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The promoted spare is a first-class member across a restart: the
	// renamed image mounts in the member slot, lineage intact.
	cfg.SelfHeal, cfg.Spares, cfg.Fault = false, 0, nil
	srv2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	defer srv2.Close()
	if got := srv2.Array.Origins(); got[victim] != 0 {
		t.Fatalf("lineage lost across restart: origins %v", got)
	}
	addr2, err := srv2.ServeNFS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve after reopen: %v", err)
	}
	verify(addr2, "reopened")
}

// TestSelfHealSecondFaultRefused pins the graceful-degradation story:
// with the pool empty (one spare, two deaths) the second confirmed
// death is refused loudly — the array keeps serving degraded, nothing
// crashes, and the refusal is visible in the heal log and counters.
func TestSelfHealSecondFaultRefused(t *testing.T) {
	base := filepath.Join(t.TempDir(), "heal2.img")
	srv, err := Open(Config{
		Path: base, Blocks: 2048, CacheBlocks: 128,
		Volumes: 3, Placement: "mirrored", StripeBlocks: 2,
		Spares: 1, SelfHeal: true, HealthInterval: 5 * time.Millisecond,
		Fault: &device.FaultConfig{},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer srv.Close()
	msg := bytes.Repeat([]byte{0xA5}, 3*core.BlockSize)
	err = srv.Do(func(tk sched.Task) error {
		h, err := srv.Vol.Create(tk, "/keep.bin", core.TypeRegular)
		if err != nil {
			return err
		}
		if err := srv.Vol.Write(tk, h, msg, int64(len(msg))); err != nil {
			return err
		}
		return srv.Vol.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("seed write: %v", err)
	}

	// First death: healed onto the only spare via the manual override
	// (same supervised path, no traffic needed to generate evidence).
	if err := srv.MarkMemberDead(0); err != nil {
		t.Fatalf("mark dead: %v", err)
	}
	waitEvents := func(n int) []HealEvent {
		t.Helper()
		for deadline := time.Now().Add(20 * time.Second); time.Now().Before(deadline); time.Sleep(5 * time.Millisecond) {
			if evs := srv.HealEvents(); len(evs) >= n {
				return evs
			}
		}
		t.Fatalf("no %dth heal event", n)
		return nil
	}
	evs := waitEvents(1)
	if evs[0].Err != "" || evs[0].Spare != 0 {
		t.Fatalf("first heal %+v, want clean promotion of spare 0", evs[0])
	}

	// Second death: the pool is dry. Refused, degraded, still serving.
	if err := srv.MarkMemberDead(2); err != nil {
		t.Fatalf("mark dead: %v", err)
	}
	evs = waitEvents(2)
	if evs[1].Err == "" || evs[1].Spare != -1 {
		t.Fatalf("second heal %+v, want a loud refusal", evs[1])
	}
	if !srv.Array.Degraded() || srv.Array.DeadMember() != 2 {
		t.Fatalf("array not serving degraded after refusal (dead=%d)", srv.Array.DeadMember())
	}
	if n := srv.Array.SpareRefusals(); n == 0 {
		t.Fatal("refusal not counted")
	}
	err = srv.Do(func(tk sched.Task) error {
		h, err := srv.Vol.Open(tk, "/keep.bin")
		if err != nil {
			return err
		}
		buf := make([]byte, len(msg))
		if _, err := srv.Vol.Read(tk, h, buf, int64(len(msg))); err != nil {
			return err
		}
		if !bytes.Equal(buf, msg) {
			t.Error("degraded read-back mismatch")
		}
		return srv.Vol.Close(tk, h)
	})
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
}
