package pfs

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/nfs"
)

// vecDriverCounts sums the scatter-gather request counters across the
// server's drivers.
func vecDriverCounts(s *Server) (reads, writes int64) {
	for _, d := range s.Drivers {
		if st := d.DriverStats(); st != nil {
			reads += st.VecReads.Value()
			writes += st.VecWrites.Value()
		}
	}
	return
}

// TestVectoredColdStreamZeroStagedCopies certifies the zero-copy
// claim end to end: a streaming write followed by a cold sequential
// read-back (fresh server, empty cache) moves every data byte by
// scatter-gather — the staging-copy counters stay at exactly zero —
// and the bytes that come back over the wire are right, including at
// unaligned offsets that slice mid-frame.
func TestVectoredColdStreamZeroStagedCopies(t *testing.T) {
	const fileBlocks = 32
	for _, lay := range []string{"lfs", "ffs"} {
		t.Run(lay, func(t *testing.T) {
			cfg := Config{
				Path:        filepath.Join(t.TempDir(), "vec.img"),
				Blocks:      4096,
				CacheBlocks: 128,
				Layout:      lay,
				Seed:        11,
				// Whole-file flush jobs carry multi-block runs, so both
				// layouts issue gather writes, not just the LFS segments.
				Flush: cache.NVRAMWhole(24),
			}
			srv, err := Open(cfg)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			payload := make([]byte, fileBlocks*core.BlockSize+511)
			for i := range payload {
				payload[i] = byte(i>>8) ^ byte(i)
			}
			addr, err := srv.ServeNFS("127.0.0.1:0")
			if err != nil {
				t.Fatalf("serve: %v", err)
			}
			c, err := nfs.Dial(addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			root, _, err := c.Mount(1)
			if err != nil {
				t.Fatalf("mount: %v", err)
			}
			fh, _, err := c.Create(root, "stream")
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			for off := 0; off < len(payload); off += 4 * core.BlockSize {
				end := off + 4*core.BlockSize
				if end > len(payload) {
					end = len(payload)
				}
				if _, err := c.Write(fh, int64(off), payload[off:end]); err != nil {
					t.Fatalf("write at %d: %v", off, err)
				}
			}
			c.Close()
			if err := srv.Shutdown(); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			if got := srv.StagedCopyBytes(); got != 0 {
				t.Errorf("write path staged %d bytes through flat buffers, want 0", got)
			}
			if _, w := vecDriverCounts(srv); w == 0 {
				t.Error("no vectored write requests reached the devices")
			}

			// Cold read-back: a fresh server with an empty cache, so the
			// sequential sweep exercises the vectored demand-miss and
			// readahead fills and the borrowed-frame reply path.
			srv2, err := Open(cfg)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer srv2.Close()
			addr, err = srv2.ServeNFS("127.0.0.1:0")
			if err != nil {
				t.Fatalf("serve: %v", err)
			}
			c2, err := nfs.Dial(addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer c2.Close()
			root, _, err = c2.Mount(1)
			if err != nil {
				t.Fatalf("mount: %v", err)
			}
			fh, _, err = c2.Lookup(root, "stream")
			if err != nil {
				t.Fatalf("lookup: %v", err)
			}
			// Unaligned chunks: every read slices frames mid-block on
			// both ends.
			chunk := 3*core.BlockSize + 7
			for off := 1; off < len(payload); off += chunk {
				n := chunk
				if off+n > len(payload) {
					n = len(payload) - off
				}
				got, err := c2.Read(fh, int64(off), n)
				if err != nil {
					t.Fatalf("read at %d: %v", off, err)
				}
				if !bytes.Equal(got, payload[off:off+n]) {
					t.Fatalf("read at %d: %d bytes came back wrong", off, n)
				}
			}
			if got := srv2.StagedCopyBytes(); got != 0 {
				t.Errorf("cold stream staged %d bytes through flat buffers, want 0", got)
			}
			if r, _ := vecDriverCounts(srv2); r == 0 {
				t.Error("no vectored read requests reached the devices")
			}
			if !srv2.VectoredIO() {
				t.Error("server reports vectoring off under the default config")
			}
		})
	}
}

// TestVectoredFramePinningHammer races streaming vectored reads —
// whose cache frames stay loaned to in-flight device requests and
// socket writes — against truncation, removal, recreation, sync and
// scrub of the same file. Under -race this certifies the loan
// accounting: a borrowed frame must never be reused, freed or
// truncated away while a scatter-gather request or a writev still
// references its memory.
func TestVectoredFramePinningHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test in -short mode")
	}
	const (
		fileBlocks = 24
		readers    = 3
		rounds     = 40
	)
	srv, err := Open(Config{
		Path:        filepath.Join(t.TempDir(), "pin.img"),
		Blocks:      4096,
		CacheBlocks: 64, // small: readers and refills fight for frames
		Layout:      "lfs",
		Seed:        13,
		Volumes:     2,
		Placement:   "mirrored", // scrub needs redundancy to compare
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer srv.Close()
	addr, err := srv.ServeNFS("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	payload := bytes.Repeat([]byte{0x5A}, fileBlocks*core.BlockSize)
	write := func(c *nfs.Client, dir nfs.FH, name string) error {
		fh, _, err := c.Create(dir, name)
		if err != nil {
			return err
		}
		for off := 0; off < len(payload); off += 8 * core.BlockSize {
			if _, err := c.Write(fh, int64(off), payload[off:off+8*core.BlockSize]); err != nil {
				return err
			}
		}
		return nil
	}
	c0, err := nfs.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	root, _, err := c0.Mount(1)
	if err != nil {
		t.Fatalf("mount: %v", err)
	}
	if err := write(c0, root, "victim"); err != nil {
		t.Fatalf("seed write: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers+3)
	// Readers: stream the file sequentially, over and over. The file
	// shrinks, vanishes and reappears underneath them — short reads
	// and lookup failures are expected; data races and lost frames are
	// not.
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := nfs.Dial(addr)
			if err != nil {
				errs <- fmt.Errorf("reader %d: dial: %w", id, err)
				return
			}
			defer c.Close()
			r, _, err := c.Mount(1)
			if err != nil {
				errs <- fmt.Errorf("reader %d: mount: %w", id, err)
				return
			}
			for n := 0; n < rounds; n++ {
				fh, _, err := c.Lookup(r, "victim")
				if err != nil {
					continue // removed out from under us
				}
				for off := int64(0); off < int64(len(payload)); off += 3*core.BlockSize + 1 {
					got, err := c.Read(fh, off, 3*core.BlockSize+1)
					if err != nil {
						break // truncated or removed mid-stream
					}
					for _, b := range got {
						// A truncate-then-regrow racing a recreate can
						// legitimately expose zero-filled holes; any
						// OTHER byte means a loaned frame was reused.
						if b != 0x5A && b != 0 {
							errs <- fmt.Errorf("reader %d: byte %#x surfaced in victim", id, b)
							return
						}
					}
				}
			}
		}(i)
	}
	// Truncator: shrink and regrow.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := nfs.Dial(addr)
		if err != nil {
			errs <- fmt.Errorf("truncator: dial: %w", err)
			return
		}
		defer c.Close()
		r, _, err := c.Mount(1)
		if err != nil {
			errs <- fmt.Errorf("truncator: mount: %w", err)
			return
		}
		for n := 0; n < rounds; n++ {
			fh, _, err := c.Lookup(r, "victim")
			if err != nil {
				continue
			}
			if _, err := c.SetSize(fh, 2*core.BlockSize); err != nil {
				continue
			}
			for off := 0; off < len(payload); off += 8 * core.BlockSize {
				if _, err := c.Write(fh, int64(off), payload[off:off+8*core.BlockSize]); err != nil {
					break
				}
			}
		}
	}()
	// Remover: delete and recreate the whole file.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := nfs.Dial(addr)
		if err != nil {
			errs <- fmt.Errorf("remover: dial: %w", err)
			return
		}
		defer c.Close()
		r, _, err := c.Mount(1)
		if err != nil {
			errs <- fmt.Errorf("remover: mount: %w", err)
			return
		}
		for n := 0; n < rounds/2; n++ {
			if err := c.Remove(r, "victim"); err != nil {
				continue
			}
			if err := write(c, r, "victim"); err != nil {
				errs <- fmt.Errorf("remover: recreate: %w", err)
				return
			}
		}
	}()
	// Syncer+scrubber: force flusher activity (vectored segment and
	// run writes pin frames too) and walk the array behind it all.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < rounds/2; n++ {
			if err := srv.Sync(); err != nil {
				errs <- fmt.Errorf("sync: %w", err)
				return
			}
			if _, err := srv.Scrub(false); err != nil {
				errs <- fmt.Errorf("scrub: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The server must still be fully functional: a fresh write after
	// the storm reads back exactly, and the array scrubs clean.
	if err := write(c0, root, "after"); err != nil {
		t.Fatalf("post-storm write: %v", err)
	}
	if err := srv.Sync(); err != nil {
		t.Fatalf("final sync: %v", err)
	}
	fh, _, err := c0.Lookup(root, "after")
	if err != nil {
		t.Fatalf("final lookup: %v", err)
	}
	for off := 0; off < len(payload); off += 4 * core.BlockSize {
		got, err := c0.Read(fh, int64(off), 4*core.BlockSize)
		if err != nil {
			t.Fatalf("final read at %d: %v", off, err)
		}
		if !bytes.Equal(got, payload[off:off+4*core.BlockSize]) {
			t.Fatalf("final read at %d came back wrong", off)
		}
	}
	st, err := srv.Scrub(false)
	if err != nil {
		t.Fatalf("final scrub: %v", err)
	}
	if st.Mismatches != 0 {
		t.Fatalf("final scrub found %d mismatches", st.Mismatches)
	}
	c0.Close()
}
