package telemetry

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
)

func TestTracerLifecycle(t *testing.T) {
	k := sched.NewVirtual(1)
	tr := NewTracer(k, 50*time.Millisecond)
	k.Go("op", func(task sched.Task) {
		start := k.Now()
		op := tr.Begin("read", start)
		tr.Bind(task, op)
		if tr.Current(task) != op {
			t.Error("Current did not return the bound op")
		}
		task.Sleep(10 * time.Millisecond)
		op.Add(StageCache, k.Now().Sub(start))
		task.Sleep(100 * time.Millisecond)
		op.Add(StageDisk, 100*time.Millisecond)
		tr.Unbind(task)
		if tr.Current(task) != nil {
			t.Error("Current returned an op after Unbind")
		}
		tr.Finish(op, k.Now())

		// A second, fast op stays out of the slow ring.
		op2 := tr.Begin("getattr", k.Now())
		tr.Finish(op2, k.Now().Add(time.Millisecond))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n := tr.TotalHist().Total(); n != 2 {
		t.Fatalf("total observations = %d", n)
	}
	if tr.SlowCount().Value() != 1 {
		t.Fatalf("slow count = %d", tr.SlowCount().Value())
	}
	slow := tr.Slow()
	if len(slow) != 1 || slow[0].Name != "read" {
		t.Fatalf("slow ring = %+v", slow)
	}
	if slow[0].Stages[StageDisk] != 100*time.Millisecond {
		t.Fatalf("disk stage = %v", slow[0].Stages[StageDisk])
	}
	if slow[0].Total != 110*time.Millisecond {
		t.Fatalf("total = %v", slow[0].Total)
	}
	if other := slow[0].Other(); other != 0 {
		t.Fatalf("other = %v", other)
	}
	if out := tr.RenderSlow(); !strings.Contains(out, "read") || !strings.Contains(out, "disk=") {
		t.Fatalf("render:\n%s", out)
	}

	reg := NewRegistry()
	tr.Register(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE pfs_op_seconds histogram",
		`pfs_op_stage_seconds_count{stage="disk"} 2`,
		`pfs_op_stage_seconds_count{stage="cache"} 2`,
		`pfs_op_stage_seconds_count{stage="queue"} 2`,
		"pfs_op_slow_total 1",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, b.String())
		}
	}
}

// A nil tracer (simulator assemblies) must be a complete no-op.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	op := tr.Begin("x", 0)
	if op != nil {
		t.Fatal("nil tracer minted an op")
	}
	op.Add(StageCache, time.Second) // nil op: no-op
	if op.StageTime(StageCache) != 0 {
		t.Fatal("nil op accumulated")
	}
	tr.Finish(op, 0)
	if tr.Slow() != nil {
		t.Fatal("nil tracer has a ring")
	}
	if !strings.Contains(tr.RenderSlow(), "disabled") {
		t.Fatal("nil RenderSlow")
	}
	tr.Register(NewRegistry())
	if tr.Now() != 0 {
		t.Fatal("nil Now")
	}
}

func TestAdminServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.AddGaugeFunc("pfs_test_gauge", "G.", nil, func() float64 { return 42 })
	healthy := true
	srv := NewServer(reg, nil,
		func() error {
			if !healthy {
				return errTest
			}
			return nil
		},
		func() string { return "status body\n" })
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() != addr {
		t.Fatalf("Addr %q != %q", srv.Addr(), addr)
	}
	if body, code := httpGet(t, addr, "/metrics"); code != 200 || !strings.Contains(body, "pfs_test_gauge 42") {
		t.Fatalf("metrics %d:\n%s", code, body)
	}
	if body, code := httpGet(t, addr, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz %d: %s", code, body)
	}
	healthy = false
	if body, code := httpGet(t, addr, "/healthz"); code != 503 || !strings.Contains(body, "unhealthy") {
		t.Fatalf("unhealthy healthz %d: %s", code, body)
	}
	if body, code := httpGet(t, addr, "/statusz"); code != 200 || !strings.Contains(body, "status body") {
		t.Fatalf("statusz %d: %s", code, body)
	}
	if body, code := httpGet(t, addr, "/statusz?slow=1"); code != 200 || !strings.Contains(body, "tracing disabled") {
		t.Fatalf("statusz?slow=1 %d: %s", code, body)
	}
	if _, code := httpGet(t, addr, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof %d", code)
	}
}
