package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRegistryCounterGaugeGroup(t *testing.T) {
	r := NewRegistry()
	c := stats.NewCounter("c")
	c.Add(3)
	r.AddCounter("pfs_x_total", "X events.", nil, c)
	r.AddGaugeFunc("pfs_g", "A gauge.", Labels{"b": "2", "a": "1"}, func() float64 { return 1.5 })
	g := stats.NewGroup("g")
	g.Member("d0")
	g.Member("d1")
	g.Add(1, 7)
	r.AddGroup("pfs_m_total", "Per-member.", "member", nil, g)

	out := render(t, r)
	for _, want := range []string{
		"# HELP pfs_x_total X events.\n",
		"# TYPE pfs_x_total counter\n",
		"pfs_x_total 3\n",
		"# TYPE pfs_g gauge\n",
		`pfs_g{a="1",b="2"} 1.5` + "\n", // label keys sorted
		`pfs_m_total{member="d0"} 0` + "\n",
		`pfs_m_total{member="d1"} 7` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "pfs_g") > strings.Index(out, "pfs_x_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestRegistryHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := stats.NewLogHistogram("h", time.Second, 2, 2) // bounds 1s, 2s
	h.Observe(500 * time.Millisecond)
	h.Observe(1500 * time.Millisecond)
	h.Observe(time.Hour)
	r.AddDurationHistogram("pfs_h_seconds", "H.", nil, h)
	out := render(t, r)
	for _, want := range []string{
		"# TYPE pfs_h_seconds histogram\n",
		`pfs_h_seconds_bucket{le="1"} 1` + "\n",
		`pfs_h_seconds_bucket{le="2"} 2` + "\n",
		`pfs_h_seconds_bucket{le="+Inf"} 3` + "\n",
		"pfs_h_seconds_count 3\n",
		"pfs_h_seconds_sum 3602\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistrySummaries(t *testing.T) {
	r := NewRegistry()
	d := stats.NewLatencyDist("d")
	for i := 1; i <= 100; i++ {
		d.Observe(time.Duration(i) * time.Millisecond)
	}
	r.AddSummary("pfs_d_seconds", "D.", Labels{"op": "read"}, d)
	h := stats.NewLatencyHistogram("h")
	h.Observe(10 * time.Millisecond)
	r.AddHistogramSummary("pfs_hs_seconds", "HS.", nil, h)
	out := render(t, r)
	for _, want := range []string{
		"# TYPE pfs_d_seconds summary\n",
		`pfs_d_seconds{op="read",quantile="0.5"} 0.05` + "\n",
		`pfs_d_seconds_count{op="read"} 100` + "\n",
		"# TYPE pfs_hs_seconds summary\n",
		`pfs_hs_seconds{quantile="0.99"}`,
		"pfs_hs_seconds_sum 0.01\n",
		"pfs_hs_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.AddCounter("pfs_x", "X.", nil, stats.NewCounter("c"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type mismatch")
		}
	}()
	r.AddGaugeFunc("pfs_x", "X.", nil, func() float64 { return 0 })
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.AddGaugeFunc("pfs_e", "E.", Labels{"p": "a\\b\"c\nd"}, func() float64 { return 1 })
	out := render(t, r)
	if !strings.Contains(out, `pfs_e{p="a\\b\"c\nd"} 1`+"\n") {
		t.Fatalf("escaping wrong:\n%s", out)
	}
}

// Scrapes must be safe concurrently with registration and updates.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := stats.NewCounter("c")
	r.AddCounter("pfs_c_total", "C.", nil, c)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.Inc()
			r.AddGaugeFunc("pfs_reg_during_scrape", "R.", Labels{"i": "x"}, func() float64 { return 0 })
		}
		close(stop)
	}()
	for {
		render(t, r)
		select {
		case <-stop:
			wg.Wait()
			return
		default:
		}
	}
}
