// Package telemetry exports the framework's statistics objects as
// live observables: a Prometheus-style metrics registry layered on
// internal/stats, a per-operation tracer that splits NFS latency
// into pipeline/cache/disk stages, and the pfsd admin HTTP server
// (/metrics, /healthz, /statusz, pprof).
//
// The package deliberately depends only on internal/stats and
// internal/sched so every subsystem can be wired into it without
// import cycles; the PFS-specific registration lives in internal/pfs.
//
// Everything here must be callable from plain goroutines (HTTP
// handlers): collectors may only read atomic counters and
// plain-mutex statistics objects, never state guarded by a kernel
// mutex — sched.Mutex needs a kernel task the scrape doesn't have.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// Labels is one metric series' label set. Keys render sorted, so any
// map order yields the same exposition text.
type Labels map[string]string

// sample is one exposition line: name+suffix{labels} value.
type sample struct {
	suffix string
	labels string
	value  float64
}

// collector produces a family's samples at scrape time.
type collector func() []sample

type family struct {
	name       string
	help       string
	typ        string // counter | gauge | histogram | summary
	collectors []collector
}

// Registry maps stats objects to stable Prometheus families. All
// Add* calls with the same family name must agree on the type; each
// call contributes one series (or one expansion, for groups) to the
// family. Registration normally happens once at assembly; scraping
// is safe concurrently with registration and with the workload.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) add(name, help, typ string, c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: family %s registered as %s and %s", name, f.typ, typ))
	}
	f.collectors = append(f.collectors, c)
}

// AddCounter registers a stats.Counter as a counter series.
func (r *Registry) AddCounter(name, help string, labels Labels, c *stats.Counter) {
	ls := renderLabels(labels)
	r.add(name, help, "counter", func() []sample {
		return []sample{{labels: ls, value: float64(c.Value())}}
	})
}

// AddCounterFunc registers a counter series computed at scrape time.
// fn must be monotonic and safe to call from a plain goroutine.
func (r *Registry) AddCounterFunc(name, help string, labels Labels, fn func() float64) {
	ls := renderLabels(labels)
	r.add(name, help, "counter", func() []sample {
		return []sample{{labels: ls, value: fn()}}
	})
}

// AddGaugeFunc registers a gauge series computed at scrape time.
// fn must be safe to call from a plain goroutine.
func (r *Registry) AddGaugeFunc(name, help string, labels Labels, fn func() float64) {
	ls := renderLabels(labels)
	r.add(name, help, "gauge", func() []sample {
		return []sample{{labels: ls, value: fn()}}
	})
}

// AddGroup registers a stats.Group as a counter family with one
// series per member, labelled key=<member label> (plus any fixed
// labels). Members added to the group after registration appear on
// the next scrape.
func (r *Registry) AddGroup(name, help, key string, labels Labels, g *stats.Group) {
	r.add(name, help, "counter", func() []sample {
		members, vals := g.Labels(), g.Values()
		out := make([]sample, len(vals))
		for i := range vals {
			with := Labels{key: members[i]}
			for k, v := range labels {
				with[k] = v
			}
			out[i] = sample{labels: renderLabels(with), value: float64(vals[i])}
		}
		return out
	})
}

// AddDurationHistogram registers a stats.LogHistogram as a
// Prometheus histogram in seconds.
func (r *Registry) AddDurationHistogram(name, help string, labels Labels, h *stats.LogHistogram) {
	r.add(name, help, "histogram", func() []sample {
		bounds, counts, total, sum := h.Snapshot()
		return histogramSamples(labels, bounds, counts, total, float64(sum)/float64(time.Second), 1/float64(time.Second))
	})
}

// AddIntHistogram registers a stats.Histogram (unitless integer
// buckets — queue depths, sector counts) as a Prometheus histogram.
func (r *Registry) AddIntHistogram(name, help string, labels Labels, h *stats.Histogram) {
	r.add(name, help, "histogram", func() []sample {
		bounds, counts, total, sum := h.Snapshot()
		return histogramSamples(labels, bounds, counts, total, float64(sum), 1)
	})
}

// histogramSamples renders cumulative le-buckets plus _sum/_count.
// scale converts a native bound into the exported unit.
func histogramSamples(labels Labels, bounds, counts []int64, total int64, sum, scale float64) []sample {
	out := make([]sample, 0, len(counts)+2)
	var cum int64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatValue(float64(bounds[i]) * scale)
		}
		with := Labels{"le": le}
		for k, v := range labels {
			with[k] = v
		}
		out = append(out, sample{suffix: "_bucket", labels: renderLabels(with), value: float64(cum)})
	}
	ls := renderLabels(labels)
	out = append(out,
		sample{suffix: "_sum", labels: ls, value: sum},
		sample{suffix: "_count", labels: ls, value: float64(total)})
	return out
}

// AddSummary registers a stats.LatencyDist as a Prometheus summary
// in seconds with the given quantiles (defaults to .5/.9/.99).
func (r *Registry) AddSummary(name, help string, labels Labels, d *stats.LatencyDist, quantiles ...float64) {
	if len(quantiles) == 0 {
		quantiles = []float64{0.5, 0.9, 0.99}
	}
	r.add(name, help, "summary", func() []sample {
		out := make([]sample, 0, len(quantiles)+2)
		for _, q := range quantiles {
			with := Labels{"quantile": formatValue(q)}
			for k, v := range labels {
				with[k] = v
			}
			out = append(out, sample{labels: renderLabels(with), value: d.Quantile(q).Seconds()})
		}
		ls := renderLabels(labels)
		n := d.N()
		out = append(out,
			sample{suffix: "_sum", labels: ls, value: d.Mean().Seconds() * float64(n)},
			sample{suffix: "_count", labels: ls, value: float64(n)})
		return out
	})
}

// AddHistogramSummary registers a stats.LogHistogram as a Prometheus
// summary in seconds: quantiles interpolated from the log buckets
// plus exact _sum/_count (defaults to .5/.9/.99). For families whose
// stable shape is `name{op=...,quantile=...}` rather than le-buckets.
func (r *Registry) AddHistogramSummary(name, help string, labels Labels, h *stats.LogHistogram, quantiles ...float64) {
	if len(quantiles) == 0 {
		quantiles = []float64{0.5, 0.9, 0.99}
	}
	r.add(name, help, "summary", func() []sample {
		out := make([]sample, 0, len(quantiles)+2)
		for _, q := range quantiles {
			with := Labels{"quantile": formatValue(q)}
			for k, v := range labels {
				with[k] = v
			}
			out = append(out, sample{labels: renderLabels(with), value: h.Quantile(q).Seconds()})
		}
		ls := renderLabels(labels)
		_, _, total, sum := h.Snapshot()
		out = append(out,
			sample{suffix: "_sum", labels: ls, value: sum.Seconds()},
			sample{suffix: "_count", labels: ls, value: float64(total)})
		return out
	})
}

// AddMoments registers a stats.Moments as a summary with only
// _sum/_count (plus min/mean/max as 0/0.5/1 "quantiles" — the
// moments object keeps no distribution, but the extremes are exact).
// scale converts a native sample into the exported unit.
func (r *Registry) AddMoments(name, help string, labels Labels, m *stats.Moments, scale float64) {
	r.add(name, help, "summary", func() []sample {
		n := m.N()
		ls := renderLabels(labels)
		withQ := func(q string) string {
			with := Labels{"quantile": q}
			for k, v := range labels {
				with[k] = v
			}
			return renderLabels(with)
		}
		return []sample{
			{labels: withQ("0"), value: m.Min() * scale},
			{labels: withQ("0.5"), value: m.Mean() * scale},
			{labels: withQ("1"), value: m.Max() * scale},
			{suffix: "_sum", labels: ls, value: m.Mean() * float64(n) * scale},
			{suffix: "_count", labels: ls, value: float64(n)},
		}
	})
}

// WritePrometheus renders the whole registry in the Prometheus text
// exposition format, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		// Collectors run outside r.mu: they may take stats locks and
		// must never nest under the registry's.
		r.mu.Lock()
		colls := append([]collector(nil), f.collectors...)
		r.mu.Unlock()
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range colls {
			for _, s := range c() {
				fmt.Fprintf(bw, "%s%s%s %s\n", f.name, s.suffix, s.labels, formatValue(s.value))
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// renderLabels renders a label set as {k="v",...} with sorted keys,
// or "" when empty.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a float the way Prometheus clients do: exact
// integers without a fraction, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
