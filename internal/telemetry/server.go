package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the pfsd admin endpoint: /metrics (Prometheus text),
// /healthz (liveness probe), /statusz (human-readable statistics,
// ?slow=1 appends the slow-op log) and /debug/pprof. It runs on
// plain goroutines — everything it reads must be plain-mutex or
// atomic state, never kernel-mutex state.
type Server struct {
	reg     *Registry
	tracer  *Tracer
	health  func() error
	detail  func() string
	statusz func() string

	ln   net.Listener
	http *http.Server
}

// NewServer builds an admin server over reg. health returns nil when
// the served file system is live (non-nil bodies become a 503);
// statusz renders the human-readable statistics page. tracer may be
// nil (the slow-op view reports tracing disabled). Any callback may
// be nil.
func NewServer(reg *Registry, tracer *Tracer, health func() error, statusz func() string) *Server {
	return &Server{reg: reg, tracer: tracer, health: health, statusz: statusz}
}

// SetHealthDetail appends fn's text to the /healthz body after the
// liveness verdict — per-member health, repair state. Call before
// Start.
func (s *Server) SetHealthDetail(fn func() string) { s.detail = fn }

// Start listens on addr (host:port; :0 picks a free port) and serves
// in the background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	if s.reg != nil {
		mux.Handle("/metrics", s.reg.Handler())
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.health != nil {
			if err := s.health(); err != nil {
				http.Error(w, "unhealthy: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		if s.detail != nil {
			fmt.Fprint(w, s.detail())
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.statusz != nil {
			fmt.Fprint(w, s.statusz())
		}
		if req.URL.Query().Get("slow") != "" {
			fmt.Fprint(w, s.tracer.RenderSlow())
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.ln = ln
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.http.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and open connections. Safe before Start
// and safe to call twice.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}
