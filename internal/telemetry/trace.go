package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/stats"
)

// Stage is one segment of an operation's latency breakdown.
type Stage int

const (
	// StageQueue is time spent queued behind the connection's
	// pipeline window before the executor picked the call up.
	StageQueue Stage = iota
	// StageCache is time spent inside the block cache: lookup,
	// waiting for frames under pressure, waiting on NVRAM headroom,
	// waiting out a concurrent fill.
	StageCache
	// StageDisk is time spent in the layout/device path: reading
	// missed blocks (and read-modify-write fills) from the array.
	StageDisk
	numStages
)

// String names the stage for labels and renders.
func (s Stage) String() string {
	switch s {
	case StageQueue:
		return "queue"
	case StageCache:
		return "cache"
	case StageDisk:
		return "disk"
	}
	return fmt.Sprintf("stage#%d", int(s))
}

// Stages lists every stage in order.
func Stages() []Stage { return []Stage{StageQueue, StageCache, StageDisk} }

// Op is one traced operation. It is owned by the task executing the
// operation from Begin to Finish — stage accumulation needs no lock —
// and is immutable (snapshotted into the slow ring) afterwards.
type Op struct {
	Name  string
	Start sched.Time
	stage [numStages]time.Duration
}

// Add accumulates d into stage s. Safe on a nil Op (untraced paths
// pass the nil through rather than branching).
func (o *Op) Add(s Stage, d time.Duration) {
	if o == nil || d <= 0 {
		return
	}
	o.stage[s] += d
}

// StageTime returns the accumulated time in stage s.
func (o *Op) StageTime(s Stage) time.Duration {
	if o == nil {
		return 0
	}
	return o.stage[s]
}

// SlowOp is one slow-ring entry: a finished op over the threshold.
type SlowOp struct {
	Name   string
	Start  sched.Time
	Total  time.Duration
	Stages [numStages]time.Duration
}

// Other is the part of Total not attributed to any stage (request
// decode, data copy, layout metadata under cached inodes, reply
// encode).
func (s SlowOp) Other() time.Duration {
	d := s.Total
	for _, st := range s.Stages {
		d -= st
	}
	if d < 0 {
		d = 0
	}
	return d
}

// DefaultSlowThreshold is the slow-op ring's capture threshold when
// the assembly doesn't pick one.
const DefaultSlowThreshold = 100 * time.Millisecond

// slowRingSize bounds the slow-op log.
const slowRingSize = 128

// Tracer threads per-op context through the stack. The NFS executor
// Begins an op and Binds it to its task; fsys and the cache look the
// op up by task (Current) and Add stage time; Finish folds the op
// into the per-stage histograms and, over the threshold, the slow
// ring. A nil *Tracer is a valid no-op tracer — the simulator and
// benches that don't serve an admin endpoint pass nil and every
// method returns immediately.
type Tracer struct {
	k         sched.Kernel
	threshold time.Duration
	total     *stats.LogHistogram
	stage     [numStages]*stats.LogHistogram
	slow      *stats.Counter

	mu     sync.Mutex
	byTask map[sched.Task]*Op
	ring   [slowRingSize]SlowOp
	ringN  uint64 // ops ever written to the ring
}

// NewTracer returns a tracer on kernel k capturing ops slower than
// threshold (DefaultSlowThreshold if <= 0) in the slow ring.
func NewTracer(k sched.Kernel, threshold time.Duration) *Tracer {
	if threshold <= 0 {
		threshold = DefaultSlowThreshold
	}
	tr := &Tracer{
		k:         k,
		threshold: threshold,
		total:     stats.NewLatencyHistogram("trace.total"),
		slow:      stats.NewCounter("trace.slow"),
		byTask:    make(map[sched.Task]*Op),
	}
	for _, s := range Stages() {
		tr.stage[s] = stats.NewLatencyHistogram("trace.stage." + s.String())
	}
	return tr
}

// Begin starts a traced op named name that entered the system at
// start (admission time, so the total includes the pipeline wait).
func (tr *Tracer) Begin(name string, start sched.Time) *Op {
	if tr == nil {
		return nil
	}
	return &Op{Name: name, Start: start}
}

// Bind associates op with task t so the layers below can find it.
func (tr *Tracer) Bind(t sched.Task, op *Op) {
	if tr == nil || op == nil {
		return
	}
	tr.mu.Lock()
	tr.byTask[t] = op
	tr.mu.Unlock()
}

// Unbind removes t's op association.
func (tr *Tracer) Unbind(t sched.Task) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	delete(tr.byTask, t)
	tr.mu.Unlock()
}

// Current returns the op bound to t, or nil.
func (tr *Tracer) Current(t sched.Task) *Op {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	op := tr.byTask[t]
	tr.mu.Unlock()
	return op
}

// Now returns the tracer's clock reading (kernel time). Callers
// compute stage durations as differences of these. Safe on nil (0).
func (tr *Tracer) Now() sched.Time {
	if tr == nil {
		return 0
	}
	return tr.k.Now()
}

// Finish completes op at end: per-stage histograms absorb the
// breakdown and ops over the threshold enter the slow ring.
func (tr *Tracer) Finish(op *Op, end sched.Time) {
	if tr == nil || op == nil {
		return
	}
	total := time.Duration(end - op.Start)
	if total < 0 {
		total = 0
	}
	tr.total.Observe(total)
	for _, s := range Stages() {
		tr.stage[s].Observe(op.stage[s])
	}
	if total < tr.threshold {
		return
	}
	tr.slow.Inc()
	so := SlowOp{Name: op.Name, Start: op.Start, Total: total, Stages: op.stage}
	tr.mu.Lock()
	tr.ring[tr.ringN%slowRingSize] = so
	tr.ringN++
	tr.mu.Unlock()
}

// TotalHist returns the all-ops latency histogram.
func (tr *Tracer) TotalHist() *stats.LogHistogram {
	if tr == nil {
		return nil
	}
	return tr.total
}

// StageHist returns the histogram for stage s.
func (tr *Tracer) StageHist(s Stage) *stats.LogHistogram {
	if tr == nil {
		return nil
	}
	return tr.stage[s]
}

// SlowCount returns the slow-op counter.
func (tr *Tracer) SlowCount() *stats.Counter {
	if tr == nil {
		return nil
	}
	return tr.slow
}

// Slow snapshots the slow ring, newest first.
func (tr *Tracer) Slow() []SlowOp {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	n := tr.ringN
	ring := tr.ring
	tr.mu.Unlock()
	count := int(n)
	if count > slowRingSize {
		count = slowRingSize
	}
	out := make([]SlowOp, 0, count)
	for i := 1; i <= count; i++ {
		out = append(out, ring[(n-uint64(i))%slowRingSize])
	}
	return out
}

// RenderSlow renders the slow-op log as text, newest first, with the
// per-stage split — the body of /statusz?slow=1.
func (tr *Tracer) RenderSlow() string {
	if tr == nil {
		return "slow-op log: tracing disabled\n"
	}
	ops := tr.Slow()
	var b strings.Builder
	fmt.Fprintf(&b, "slow-op log: threshold=%v captured=%d total-slow=%d\n",
		tr.threshold, len(ops), tr.slow.Value())
	for _, so := range ops {
		fmt.Fprintf(&b, "  t=%-12v %-10s total=%-10v", time.Duration(so.Start).Round(time.Millisecond), so.Name, so.Total.Round(time.Microsecond))
		for _, s := range Stages() {
			fmt.Fprintf(&b, " %s=%-10v", s, so.Stages[s].Round(time.Microsecond))
		}
		fmt.Fprintf(&b, " other=%v\n", so.Other().Round(time.Microsecond))
	}
	return b.String()
}

// Register wires the tracer's histograms and slow counter into reg
// under the pfs_op_* families.
func (tr *Tracer) Register(reg *Registry) {
	if tr == nil || reg == nil {
		return
	}
	reg.AddDurationHistogram("pfs_op_seconds",
		"End-to-end latency of traced operations (admission to reply).", nil, tr.total)
	stages := Stages()
	sort.Slice(stages, func(i, j int) bool { return stages[i].String() < stages[j].String() })
	for _, s := range stages {
		reg.AddDurationHistogram("pfs_op_stage_seconds",
			"Per-stage latency breakdown of traced operations.",
			Labels{"stage": s.String()}, tr.stage[s])
	}
	reg.AddCounter("pfs_op_slow_total",
		"Traced operations slower than the slow-op threshold.", nil, tr.slow)
}
