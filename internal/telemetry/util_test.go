package telemetry

import (
	"errors"
	"io"
	"net/http"
	"testing"
)

var errTest = errors.New("test failure")

func httpGet(t *testing.T, addr, path string) (string, int) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.StatusCode
}
