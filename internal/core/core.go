// Package core holds the shared vocabulary of the cut-and-paste
// component library: identifiers, disk addressing, block geometry,
// the DataMover abstraction that separates real systems from
// simulators, and the component registry used to assemble systems.
//
// Every other package in the framework depends on core and nothing
// else below it; core itself depends only on the standard library.
package core

import (
	"errors"
	"fmt"
)

// BlockSize is the file-system block size in bytes. The Sprite file
// servers the paper replays used 4 KB blocks; the framework is
// parameterized elsewhere but this is the default everywhere.
const BlockSize = 4096

// SectorSize is the disk sector size in bytes (SCSI standard 512).
const SectorSize = 512

// SectorsPerBlock is the number of disk sectors in one FS block.
const SectorsPerBlock = BlockSize / SectorSize

// FileID identifies a file within a volume (an inode number).
type FileID uint64

// NoFile is the zero FileID; it never names a real file.
const NoFile FileID = 0

// RootFile is the conventional inode number of a volume's root
// directory, mirroring Unix tradition (inode 2).
const RootFile FileID = 2

// VolumeID identifies one file system among the volumes a server
// exports. The paper's Sprite replay had 14 volumes over 10 disks.
type VolumeID uint16

// BlockNo is a block index within a file (0 = first block).
type BlockNo int64

// DiskAddr is a physical block address on a disk: the disk number
// within the system and the logical block address on that disk, in
// file-system blocks (not sectors).
type DiskAddr struct {
	Disk int
	LBA  int64
}

// NilAddr is the distinguished "no address" value. LBA -1 is never a
// valid location.
var NilAddr = DiskAddr{Disk: -1, LBA: -1}

// IsNil reports whether a is the distinguished nil address.
func (a DiskAddr) IsNil() bool { return a.LBA < 0 }

func (a DiskAddr) String() string {
	if a.IsNil() {
		return "addr(nil)"
	}
	return fmt.Sprintf("addr(d%d:%d)", a.Disk, a.LBA)
}

// BlockKey names a cached block: a (volume, file, block-in-file)
// triple. Cache identity is file-relative, as in the paper's cache
// component, so a block keeps its identity when the layout relocates
// it on disk (as the LFS does on every write).
type BlockKey struct {
	Vol  VolumeID
	File FileID
	Blk  BlockNo
}

func (k BlockKey) String() string {
	return fmt.Sprintf("v%d/f%d/b%d", k.Vol, k.File, k.Blk)
}

// FileType discriminates the instantiated-file classes of the
// framework. The abstract client interface inspects the type stored
// in the inode and instantiates the matching derived component.
type FileType uint8

const (
	TypeFree FileType = iota // unused inode
	TypeRegular
	TypeDirectory
	TypeSymlink
	TypeMultimedia // continuous-media file with rate requirements
)

func (t FileType) String() string {
	switch t {
	case TypeFree:
		return "free"
	case TypeRegular:
		return "regular"
	case TypeDirectory:
		return "directory"
	case TypeSymlink:
		return "symlink"
	case TypeMultimedia:
		return "multimedia"
	default:
		return fmt.Sprintf("filetype(%d)", uint8(t))
	}
}

// Errors shared across the framework. These mirror the abstract
// client interface's failure modes and are mapped onto protocol
// status codes by the NFS-like front-end.
var (
	ErrNotFound   = errors.New("file not found")
	ErrExists     = errors.New("file exists")
	ErrNotDir     = errors.New("not a directory")
	ErrIsDir      = errors.New("is a directory")
	ErrNotEmpty   = errors.New("directory not empty")
	ErrNoSpace    = errors.New("no space on volume")
	ErrStale      = errors.New("stale file handle")
	ErrNameTooLon = errors.New("name too long")
	ErrInval      = errors.New("invalid argument")
	ErrRofs       = errors.New("read-only file system")
	ErrShutdown   = errors.New("file system shut down")
)

// MaxNameLen bounds a single path component, as in FFS.
const MaxNameLen = 255
