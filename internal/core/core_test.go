package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDiskAddrNil(t *testing.T) {
	if !NilAddr.IsNil() {
		t.Fatal("NilAddr not nil")
	}
	a := DiskAddr{Disk: 2, LBA: 100}
	if a.IsNil() {
		t.Fatal("valid addr reads as nil")
	}
	if !strings.Contains(a.String(), "d2:100") {
		t.Fatalf("addr render %q", a.String())
	}
	if NilAddr.String() != "addr(nil)" {
		t.Fatalf("nil render %q", NilAddr.String())
	}
}

func TestBlockKeyString(t *testing.T) {
	k := BlockKey{Vol: 3, File: 7, Blk: 11}
	if k.String() != "v3/f7/b11" {
		t.Fatalf("key render %q", k.String())
	}
}

func TestFileTypeNames(t *testing.T) {
	for ft, want := range map[FileType]string{
		TypeFree: "free", TypeRegular: "regular", TypeDirectory: "directory",
		TypeSymlink: "symlink", TypeMultimedia: "multimedia",
	} {
		if ft.String() != want {
			t.Fatalf("%d renders %q, want %q", ft, ft.String(), want)
		}
	}
	if !strings.Contains(FileType(99).String(), "99") {
		t.Fatal("unknown type render")
	}
}

func TestRealMoverCopies(t *testing.T) {
	m := RealMover{}
	src := []byte{1, 2, 3, 4}
	dst := make([]byte, 4)
	if n := m.Move(dst, src, 4); n != 4 || dst[3] != 4 {
		t.Fatalf("move n=%d dst=%v", n, dst)
	}
	// Bounded by both slices.
	if n := m.Move(dst[:2], src, 4); n != 2 {
		t.Fatalf("short dst n=%d", n)
	}
	if n := m.Move(dst, src[:1], 4); n != 1 {
		t.Fatalf("short src n=%d", n)
	}
	if n := m.Move(dst, src, -1); n != 0 {
		t.Fatalf("negative n=%d", n)
	}
	if m.CopyCost(1<<20) != 0 || m.Simulated() {
		t.Fatal("real mover claims simulation properties")
	}
}

func TestSimMoverCharges(t *testing.T) {
	m := DefaultSimMover()
	if !m.Simulated() {
		t.Fatal("not simulated")
	}
	if m.Move(nil, nil, 100) != 100 {
		t.Fatal("sim move should report full count")
	}
	c1 := m.CopyCost(4096)
	c2 := m.CopyCost(8192)
	if c1 <= 0 || c2 <= c1 {
		t.Fatalf("copy cost not increasing: %d, %d", c1, c2)
	}
	if m.CopyCost(0) != 0 {
		t.Fatal("zero bytes should cost nothing")
	}
	// Zero-bandwidth config falls back to the default.
	z := &SimMover{}
	if z.CopyCost(1<<20) <= 0 {
		t.Fatal("fallback bandwidth missing")
	}
}

func TestSimMoverCostMonotone(t *testing.T) {
	m := DefaultSimMover()
	prop := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.CopyCost(x) <= m.CopyCost(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	r.Register("flush", "ups", 42)
	r.Register("flush", "writedelay", 43)
	r.Register("layout", "lfs", 44)

	v, err := r.Lookup("flush", "ups")
	if err != nil || v.(int) != 42 {
		t.Fatalf("lookup: %v %v", v, err)
	}
	if _, err := r.Lookup("flush", "nope"); err == nil {
		t.Fatal("missing name accepted")
	}
	if _, err := r.Lookup("nokind", "x"); err == nil {
		t.Fatal("missing kind accepted")
	}
	names := r.Names("flush")
	if len(names) != 2 || names[0] != "ups" || names[1] != "writedelay" {
		t.Fatalf("names %v", names)
	}
	kinds := r.Kinds()
	if len(kinds) != 2 || kinds[0] != "flush" {
		t.Fatalf("kinds %v", kinds)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register("k", "n", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration accepted")
		}
	}()
	r.Register("k", "n", 2)
}

func TestDefaultRegistryShared(t *testing.T) {
	if Components() == nil || Components() != Components() {
		t.Fatal("default registry not a singleton")
	}
}
