package core

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the cut-and-paste component catalogue. Each policy
// point in the framework (flush policy, replacement policy, queue
// scheduler, storage layout, cleaner, disk model, trace codec)
// registers named constructors here; system assembly looks them up
// by name from a configuration. This is the Go rendition of the
// paper's "components are instantiated from their classes and bound
// to global variables when a system starts" — except nothing is
// global: a Registry is a value owned by the assembly.
//
// A Registry is safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	kinds map[string]map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{kinds: make(map[string]map[string]any)}
}

// Register records constructor ctor for the (kind, name) pair.
// Registering the same pair twice panics: duplicate registrations
// are programming errors in component libraries.
func (r *Registry) Register(kind, name string, ctor any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.kinds[kind]
	if m == nil {
		m = make(map[string]any)
		r.kinds[kind] = m
	}
	if _, dup := m[name]; dup {
		panic(fmt.Sprintf("core: duplicate registration %s/%s", kind, name))
	}
	m[name] = ctor
}

// Lookup returns the constructor registered under (kind, name).
func (r *Registry) Lookup(kind, name string) (any, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m := r.kinds[kind]
	if m == nil {
		return nil, fmt.Errorf("core: unknown component kind %q", kind)
	}
	c, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("core: no %s component named %q (have %v)", kind, name, keysLocked(m))
	}
	return c, nil
}

// Names lists the registered component names of one kind, sorted.
func (r *Registry) Names(kind string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return keysLocked(r.kinds[kind])
}

// Kinds lists the registered component kinds, sorted.
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.kinds))
	for k := range r.kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func keysLocked(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Components returns the default registry shared by the framework's
// packages. Packages register their implementations in init();
// assemblies may also build private registries for tests.
func Components() *Registry { return defaultRegistry }

var defaultRegistry = NewRegistry()

// Well-known component kinds.
const (
	KindFlushPolicy   = "flush-policy"
	KindReplacePolicy = "replacement-policy"
	KindQueueSched    = "queue-scheduler"
	KindLayout        = "storage-layout"
	KindCleaner       = "lfs-cleaner"
	KindDiskModel     = "disk-model"
	KindTraceFormat   = "trace-format"
	KindWorkload      = "workload-profile"
)
