package core

// DataMover separates the on-line system from the simulator at the
// one point where they must differ: moving bytes. In PFS a mover
// really copies memory; in Patsy the mover accounts for the time a
// copy of that size would take and moves nothing. Components written
// against DataMover run unchanged in both instantiations — this is
// the paper's "helper components compensate for the lack of real
// data".
type DataMover interface {
	// Move transfers n bytes from src to dst. Either slice may be
	// nil in a simulator. It returns the number of bytes moved.
	Move(dst, src []byte, n int) int
	// CopyCost reports the time in nanoseconds that moving n bytes
	// costs on the configured memory system. Real movers report 0:
	// the cost is paid for real.
	CopyCost(n int) int64
	// Simulated reports whether this mover is the simulated kind.
	Simulated() bool
}

// RealMover copies bytes with copy(); moving data costs real time,
// so CopyCost reports zero.
type RealMover struct{}

// Move copies min(n, len(dst), len(src)) bytes.
func (RealMover) Move(dst, src []byte, n int) int {
	if n > len(src) {
		n = len(src)
	}
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	return copy(dst[:n], src[:n])
}

// CopyCost is zero for a real mover: the copy itself takes the time.
func (RealMover) CopyCost(int) int64 { return 0 }

// Simulated reports false.
func (RealMover) Simulated() bool { return false }

// SimMover moves no data and charges virtual time per byte, modeling
// the host memory system of the simulated machine.
type SimMover struct {
	// BytesPerSec is the modeled memory-copy bandwidth. The paper's
	// Sun 4/280 host is modeled at 80 MB/s by default.
	BytesPerSec int64
	// FixedNS is a fixed per-copy overhead in nanoseconds.
	FixedNS int64
}

// DefaultSimMover models the Sun 4/280-class host used in the
// paper's Sprite replay.
func DefaultSimMover() *SimMover {
	return &SimMover{BytesPerSec: 80 << 20, FixedNS: 2000}
}

// Move moves nothing and returns n; the caller charges CopyCost.
func (*SimMover) Move(_, _ []byte, n int) int { return n }

// CopyCost reports the modeled copy time for n bytes.
func (m *SimMover) CopyCost(n int) int64 {
	if n <= 0 {
		return 0
	}
	bps := m.BytesPerSec
	if bps <= 0 {
		bps = 80 << 20
	}
	return m.FixedNS + (int64(n)*1e9)/bps
}

// Simulated reports true.
func (*SimMover) Simulated() bool { return true }
