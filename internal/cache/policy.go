package cache

import (
	"container/heap"
	"math/rand"

	"repro/internal/sched"
)

// ReplacePolicy orders the replacement candidates: blocks that are
// valid, clean and unpinned. The cache moves blocks in and out of
// the candidate set as their state changes; the policy only decides
// *which* candidate goes. Re-implementing this interface is how the
// paper's derived cache classes experiment with RR, LFU, SLRU,
// LRU-K and adaptive replacement without touching the base cache.
type ReplacePolicy interface {
	Name() string
	// Add puts b into the candidate set.
	Add(b *Block)
	// Remove takes b out of the candidate set.
	Remove(b *Block)
	// Touched records a reference to candidate b (only called
	// while b is in the set).
	Touched(b *Block)
	// Victim removes and returns the next block to evict, or nil
	// if the set is empty.
	Victim() *Block
	// Len reports the candidate count.
	Len() int
}

// NewReplacePolicy builds the named policy with the kernel's random
// source. Known names: lru, random, lfu, slru, lru2.
func NewReplacePolicy(name string, rng *rand.Rand) (ReplacePolicy, bool) {
	switch name {
	case "", "lru":
		return NewLRU(), true
	case "random", "rr":
		return NewRandom(rng), true
	case "lfu":
		return NewLFU(), true
	case "slru":
		return NewSLRU(0), true
	case "lru2", "lru-k":
		return NewLRUK(2), true
	}
	return nil, false
}

// LRU is the base policy: least-recently-used, an intrusive list
// from head (coldest) to tail (hottest).
type LRU struct{ list blockList }

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name returns "lru".
func (p *LRU) Name() string { return "lru" }

// Add appends b at the hot end.
func (p *LRU) Add(b *Block) { p.list.pushTail(b) }

// Remove unlinks b.
func (p *LRU) Remove(b *Block) { p.list.remove(b) }

// Touched moves b to the hot end.
func (p *LRU) Touched(b *Block) {
	p.list.remove(b)
	p.list.pushTail(b)
}

// Victim evicts the coldest block.
func (p *LRU) Victim() *Block { return p.list.popHead() }

// Len reports the candidate count.
func (p *LRU) Len() int { return p.list.len() }

// Random (the paper's "RR") evicts a uniformly random candidate.
type Random struct {
	rng    *rand.Rand
	blocks []*Block
}

// NewRandom returns a random-replacement policy.
func NewRandom(rng *rand.Rand) *Random { return &Random{rng: rng} }

// Name returns "random".
func (p *Random) Name() string { return "random" }

// Add records b's slot index in policyItem for O(1) removal.
func (p *Random) Add(b *Block) {
	b.policyItem = len(p.blocks)
	p.blocks = append(p.blocks, b)
}

// Remove swap-deletes b.
func (p *Random) Remove(b *Block) {
	i := b.policyItem.(int)
	last := len(p.blocks) - 1
	p.blocks[i] = p.blocks[last]
	p.blocks[i].policyItem = i
	p.blocks = p.blocks[:last]
	b.policyItem = nil
}

// Touched is a no-op: randomness ignores recency.
func (p *Random) Touched(*Block) {}

// Victim evicts a random candidate.
func (p *Random) Victim() *Block {
	if len(p.blocks) == 0 {
		return nil
	}
	b := p.blocks[p.rng.Intn(len(p.blocks))]
	p.Remove(b)
	return b
}

// Len reports the candidate count.
func (p *Random) Len() int { return len(p.blocks) }

// LFU evicts the least-frequently-used candidate (block Freq counts
// references over the block's cache lifetime), ties broken by
// recency.
type LFU struct{ h lfuHeap }

// NewLFU returns an LFU policy.
func NewLFU() *LFU { return &LFU{} }

// Name returns "lfu".
func (p *LFU) Name() string { return "lfu" }

// Add inserts b into the frequency heap.
func (p *LFU) Add(b *Block) { heap.Push(&p.h, b) }

// Remove deletes b from the heap.
func (p *LFU) Remove(b *Block) {
	heap.Remove(&p.h, b.policyItem.(int))
	b.policyItem = nil
}

// Touched restores heap order after b's frequency grew.
func (p *LFU) Touched(b *Block) { heap.Fix(&p.h, b.policyItem.(int)) }

// Victim evicts the lowest-frequency block.
func (p *LFU) Victim() *Block {
	if p.h.Len() == 0 {
		return nil
	}
	b := heap.Pop(&p.h).(*Block)
	b.policyItem = nil
	return b
}

// Len reports the candidate count.
func (p *LFU) Len() int { return p.h.Len() }

type lfuHeap []*Block

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].Freq != h[j].Freq {
		return h[i].Freq < h[j].Freq
	}
	return h[i].LastUsed < h[j].LastUsed
}
func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].policyItem = i
	h[j].policyItem = j
}
func (h *lfuHeap) Push(x any) {
	b := x.(*Block)
	b.policyItem = len(*h)
	*h = append(*h, b)
}
func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	b := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return b
}

// SLRU is segmented LRU (Karedla, Love & Wherry): new blocks enter a
// probationary segment; a hit promotes to the protected segment,
// whose overflow demotes back to probation. Victims come from
// probation first.
type SLRU struct {
	probation, protected blockList
	maxProtected         int
}

// NewSLRU returns an SLRU policy; maxProtected 0 means "size on
// first use" (set by the cache to ~2/3 of capacity).
func NewSLRU(maxProtected int) *SLRU { return &SLRU{maxProtected: maxProtected} }

// Name returns "slru".
func (p *SLRU) Name() string { return "slru" }

// SetProtectedLimit fixes the protected-segment capacity.
func (p *SLRU) SetProtectedLimit(n int) { p.maxProtected = n }

type slruSeg uint8

const (
	segProbation slruSeg = iota
	segProtected
)

// Add enters b on probation.
func (p *SLRU) Add(b *Block) {
	b.policyItem = segProbation
	p.probation.pushTail(b)
}

// Remove unlinks b from its segment.
func (p *SLRU) Remove(b *Block) {
	if b.policyItem.(slruSeg) == segProtected {
		p.protected.remove(b)
	} else {
		p.probation.remove(b)
	}
	b.policyItem = nil
}

// Touched promotes b to protected, demoting protected overflow.
func (p *SLRU) Touched(b *Block) {
	if b.policyItem.(slruSeg) == segProtected {
		p.protected.remove(b)
		p.protected.pushTail(b)
		return
	}
	p.probation.remove(b)
	b.policyItem = segProtected
	p.protected.pushTail(b)
	limit := p.maxProtected
	if limit <= 0 {
		limit = 64
	}
	for p.protected.len() > limit {
		d := p.protected.popHead()
		d.policyItem = segProbation
		p.probation.pushTail(d)
	}
}

// Victim evicts from probation, falling back to protected.
func (p *SLRU) Victim() *Block {
	if b := p.probation.popHead(); b != nil {
		b.policyItem = nil
		return b
	}
	if b := p.protected.popHead(); b != nil {
		b.policyItem = nil
		return b
	}
	return nil
}

// Len reports the candidate count.
func (p *SLRU) Len() int { return p.probation.len() + p.protected.len() }

// LRUK evicts by the K-th most recent reference time (O'Neil's
// LRU-K); blocks with fewer than K references order before those
// with K, by oldest reference.
type LRUK struct {
	k int
	h lrukHeap
}

// NewLRUK returns an LRU-K policy.
func NewLRUK(k int) *LRUK {
	if k < 1 {
		k = 2
	}
	return &LRUK{k: k}
}

// Name returns "lru-k".
func (p *LRUK) Name() string { return "lru-k" }

// kDist returns the K-th most recent reference time, or a value
// that sorts before every real time when the history is short.
func (p *LRUK) kDist(b *Block) sched.Time {
	if len(b.History) < p.k {
		if len(b.History) == 0 {
			return -1
		}
		// Backward-K distance is infinite; order by oldest seen,
		// shifted below all full-history blocks.
		return b.History[0] - sched.Forever/2
	}
	return b.History[len(b.History)-p.k]
}

// Add inserts b.
func (p *LRUK) Add(b *Block) {
	p.trim(b)
	heap.Push(&p.h, lrukEntry{b, p.kDist(b)})
}

// Remove deletes b.
func (p *LRUK) Remove(b *Block) {
	heap.Remove(&p.h, b.policyItem.(int))
	b.policyItem = nil
}

// Touched reorders b after a new reference.
func (p *LRUK) Touched(b *Block) {
	p.trim(b)
	i := b.policyItem.(int)
	p.h[i].dist = p.kDist(b)
	heap.Fix(&p.h, i)
}

func (p *LRUK) trim(b *Block) {
	if len(b.History) > p.k {
		b.History = b.History[len(b.History)-p.k:]
	}
}

// Victim evicts the block with the oldest K-distance.
func (p *LRUK) Victim() *Block {
	if p.h.Len() == 0 {
		return nil
	}
	e := heap.Pop(&p.h).(lrukEntry)
	e.b.policyItem = nil
	return e.b
}

// Len reports the candidate count.
func (p *LRUK) Len() int { return p.h.Len() }

type lrukEntry struct {
	b    *Block
	dist sched.Time
}

type lrukHeap []lrukEntry

func (h lrukHeap) Len() int           { return len(h) }
func (h lrukHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h lrukHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].b.policyItem = i
	h[j].b.policyItem = j
}
func (h *lrukHeap) Push(x any) {
	e := x.(lrukEntry)
	e.b.policyItem = len(*h)
	*h = append(*h, e)
}
func (h *lrukHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = lrukEntry{}
	*h = old[:n-1]
	return e
}
